(* Command-line interface to the tiered-pricing reproduction.

   tiered-cli list
   tiered-cli run [EXPERIMENT...] [--csv DIR] [--jobs N] [--cache] [--metrics]
   tiered-cli dataset NETWORK [--netflow-sample N]
   tiered-cli evaluate NETWORK [--demand ced|logit] [--cost MODEL]
       [--theta T] [--bundles B] [--strategy S] ...
   tiered-cli sweep NETWORK --param alpha|p0|s0 [--strategy S] [--jobs N]
       [--manifest FILE]
   tiered-cli serve NETWORK [--days D] [--every SECONDS] [--decay KIND] ...
   tiered-cli worker --listen PORT

   Grid-shaped commands (run, sweep) execute on the Engine pool:
   --jobs picks the worker count, --backend picks the execution
   substrate (worker domains in-process, worker subprocesses, or a TCP
   worker fleet — results are merged in submission order, so any
   --jobs/--backend combination prints byte-identical output) and
   --cache persists calibrated workloads / fitted markets in the
   content-addressed store under _cas/ across invocations. `sweep
   --manifest FILE` additionally records the grid and each completed
   cell's artifact digest, so an interrupted sweep resumes computing
   only the cells whose artifacts the store is missing. *)

open Cmdliner
open Tiered

let ppf = Format.std_formatter

(* --- shared argument parsers -------------------------------------------- *)

let network_conv =
  (* A network may carry a synthetic scale suffix, e.g. eu_isp@200000:
     the same calibration with n_flows overridden (Workload.preset). *)
  let parse s =
    let base =
      match String.index_opt s '@' with
      | None -> s
      | Some i -> String.sub s 0 i
    in
    if not (List.mem base Netsim.Presets.all_names) then
      Error (`Msg ("unknown network: " ^ s ^ " (expected eu_isp, cdn or internet2, optionally name@N)"))
    else
      match Flowgen.Workload.preset_params s with
      | (_ : Flowgen.Workload.params) -> Ok s
      | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_string)

let strategy_conv =
  let parse s =
    match Strategy.of_name s with
    | strategy -> Ok strategy
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Strategy.name s))

let network_arg =
  Arg.(required & pos 0 (some network_conv) None & info [] ~docv:"NETWORK")

let demand_arg =
  Arg.(value
       & opt (enum [ ("ced", `Ced); ("logit", `Logit); ("linear", `Linear) ]) `Ced
       & info [ "demand" ] ~docv:"MODEL" ~doc:"Demand model: ced, logit or linear.")

let cost_arg =
  Arg.(value
       & opt (enum [ ("linear", `Linear); ("concave", `Concave); ("regional", `Regional);
                     ("destination-type", `Destination_type) ])
           `Linear
       & info [ "cost" ] ~docv:"MODEL" ~doc:"Cost model.")

let theta_arg =
  Arg.(value & opt (some float) None
       & info [ "theta" ] ~docv:"T" ~doc:"Cost-model tuning parameter.")

let alpha_arg =
  Arg.(value & opt float Experiment.Defaults.alpha
       & info [ "alpha" ] ~docv:"A" ~doc:"Price sensitivity.")

let p0_arg =
  Arg.(value & opt float Experiment.Defaults.p0
       & info [ "p0" ] ~docv:"P" ~doc:"Observed blended rate, \\$/Mbps/month.")

let s0_arg =
  Arg.(value & opt float Experiment.Defaults.s0
       & info [ "s0" ] ~docv:"S" ~doc:"Logit non-participating share.")

let strategy_arg =
  Arg.(value & opt strategy_conv Strategy.Optimal
       & info [ "strategy" ] ~docv:"S"
           ~doc:"Bundling strategy (optimal, profit-weighted, cost-weighted, \
                 demand-weighted, profit-weighted-classes, cost-division, \
                 index-division).")

let bundles_arg =
  Arg.(value & opt int 3 & info [ "bundles" ] ~docv:"B" ~doc:"Number of pricing tiers.")

let jobs_arg =
  Arg.(value & opt int (Engine.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for grid execution (1 = serial). Output is \
                 byte-identical at any value; defaults to the host's core \
                 count minus one.")

let backend_arg =
  Arg.(value
       & opt (enum [ ("domains", Engine.Pool.Domains); ("procs", Engine.Pool.Procs);
                     ("remote", Engine.Pool.Remote) ])
           Engine.Pool.Domains
       & info [ "backend" ] ~docv:"B"
           ~doc:"Pool backend: $(b,domains) runs worker domains inside this \
                 process; $(b,procs) forks worker processes of this \
                 executable and recovers from worker crashes (requeue on a \
                 surviving worker, bounded retries, replacement spawn); \
                 $(b,remote) drives a TCP worker fleet (see $(b,--workers)) \
                 with the same crash recovery plus work stealing, so a slow \
                 host does not serialize the tail. Output is byte-identical \
                 in every case.")

let workers_conv =
  let parse s =
    match Engine.Remote.parse_spec s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print fmt = function
    | Engine.Remote.Exec n -> Format.fprintf fmt "exec:%d" n
    | Engine.Remote.Addrs addrs ->
        Format.pp_print_string fmt
          (String.concat ","
             (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) addrs))
  in
  Arg.conv (parse, print)

let workers_arg =
  Arg.(value & opt (some workers_conv) None
       & info [ "workers" ] ~docv:"SPEC"
           ~doc:"With --backend remote: the worker fleet, either \
                 $(b,host:port)[$(b,,host:port)…] — addresses of daemons \
                 started out-of-band with $(b,tiered-cli worker --listen \
                 PORT) — or $(b,exec:N) to spawn $(i,N) loopback worker \
                 children of this executable. Defaults to $(b,exec:)$(i,jobs).")

let worker_retries_arg =
  Arg.(value & opt int 2
       & info [ "worker-retries" ] ~docv:"N"
           ~doc:"With --backend procs or remote: how many times a task whose \
                 worker died is re-executed before the run fails.")

let task_timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "task-timeout" ] ~docv:"SECONDS"
           ~doc:"With --backend procs or remote: kill and replace a worker \
                 whose task runs longer than $(docv) (the task is retried \
                 like a crash). On standalone daemons ($(b,--workers \
                 host:port,…)) this severs the connection but cannot abort \
                 the computation already running on the remote host — the \
                 daemon finishes it, then rejoins the fleet; only \
                 exec-spawned and $(b,procs) workers are actually killed.")

let cache_arg =
  Arg.(value & flag
       & info [ "cache" ]
           ~doc:"Persist expensive artifacts (calibrated workloads, fitted \
                 markets) in the content-addressed store under _cas/ and \
                 reuse them across runs.")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES"
           ~doc:"Bound the on-disk cache tier at $(docv) payload bytes; \
                 least-recently-used artifacts are evicted first. Implies \
                 --cache.")

let enable_cache cache max_bytes =
  if cache || max_bytes <> None then
    Engine.Cache.enable_disk ?max_bytes ~dir:"_cas" ()

let cost_model_of ~cost ~theta =
  let theta_or default = Option.value ~default theta in
  match cost with
  | `Linear -> Cost_model.linear ~theta:(theta_or Experiment.Defaults.theta)
  | `Concave -> Cost_model.concave ~theta:(theta_or Experiment.Defaults.theta)
  | `Regional -> Cost_model.regional ~theta:(theta_or 1.1)
  | `Destination_type -> Cost_model.destination_type ~theta:(theta_or 0.1)

let spec_of ~demand ~s0 =
  match demand with
  | `Ced -> Market.Ced
  | `Logit -> Market.Logit { s0 }
  | `Linear -> Market.Linear { epsilon = 1.8 }

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Format.fprintf ppf "%-8s %s@." e.Experiment.id e.Experiment.description)
      Experiment.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible experiments.")
    Term.(const run $ const ())

(* --- run ------------------------------------------------------------------ *)

let run_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let csv_arg =
    Arg.(value & opt (some dir) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let md_arg =
    Arg.(value & opt (some dir) None
         & info [ "markdown" ] ~docv:"DIR"
             ~doc:"Also write each table as a Markdown file into $(docv).")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print run metrics (per-task wall time, cache hit/miss \
                   counters, pool utilization) after the tables.")
  in
  let metrics_json_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Dump the run metrics as JSON into $(docv).")
  in
  let run ids csv_dir md_dir backend retries timeout_s jobs workers cache
      cache_max_bytes show_metrics metrics_json =
    enable_cache cache cache_max_bytes;
    let experiments =
      match ids with
      | [] -> Experiment.all
      | ids ->
          List.map
            (fun id ->
              match Experiment.find id with
              | e -> e
              | exception Not_found ->
                  Format.eprintf
                    "tiered-cli: unknown experiment id %S@.known ids: %s@." id
                    (String.concat ", " (Experiment.ids ()));
                  exit 1)
            ids
    in
    let write dir ext render i id t =
      let path = Filename.concat dir (Printf.sprintf "%s_%d.%s" id i ext) in
      let oc = open_out path in
      output_string oc (render t);
      close_out oc;
      Format.fprintf ppf "  wrote %s@." path
    in
    let metrics = Engine.Metrics.create () in
    let results =
      Runner.run_experiments ~backend ~retries ?timeout_s ~jobs ?workers
        ~metrics experiments
    in
    List.iter
      (fun (r : Runner.result) ->
        List.iter (Report.print ppf) r.Runner.tables;
        Option.iter
          (fun dir ->
            List.iteri
              (fun i t -> write dir "csv" Report.to_csv i r.Runner.id t)
              r.Runner.tables)
          csv_dir;
        Option.iter
          (fun dir ->
            List.iteri
              (fun i t -> write dir "md" Report.to_markdown i r.Runner.id t)
              r.Runner.tables)
          md_dir)
      results;
    let snapshot () = Engine.Metrics.snapshot metrics in
    if show_metrics then
      List.iter (Report.print ppf) (Runner.metrics_reports (snapshot ()));
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Engine.Metrics.to_json (snapshot ()));
        close_out oc;
        Format.fprintf ppf "  wrote %s@." path)
      metrics_json
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate paper tables/figures (all by default).")
    Term.(const run $ ids_arg $ csv_arg $ md_arg $ backend_arg
          $ worker_retries_arg $ task_timeout_arg $ jobs_arg $ workers_arg
          $ cache_arg $ cache_max_bytes_arg $ metrics_arg $ metrics_json_arg)

(* --- dataset ---------------------------------------------------------------- *)

let dataset_cmd =
  let sample_arg =
    Arg.(value & opt (some int) None
         & info [ "netflow-sample" ] ~docv:"N"
             ~doc:"Also run the 1-in-$(docv) sampled NetFlow pipeline and compare.")
  in
  let run network sample =
    let w = Experiment.workload network in
    let target = Flowgen.Workload.table1_targets network in
    Format.fprintf ppf "%s workload: %a@." network Flowgen.Workload.pp_stats
      (Flowgen.Workload.stats w);
    Format.fprintf ppf
      "paper targets: w-avg dist %.0f mi, CV(dist) %.2f, %.1f Gbps, CV(demand) %.2f@."
      target.Flowgen.Workload.t_w_avg_distance target.Flowgen.Workload.t_cv_distance
      target.Flowgen.Workload.t_aggregate_gbps target.Flowgen.Workload.t_cv_demand;
    match sample with
    | None -> ()
    | Some rate ->
        let measured = Dataset.via_netflow ~sampling_rate:rate w in
        Format.fprintf ppf "measured through 1-in-%d sampling: %d flows, %.1f Gbps@."
          rate (Array.length measured)
          (Flow.total_demand_mbps measured /. 1000.)
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Show a calibrated workload vs its Table 1 targets.")
    Term.(const run $ network_arg $ sample_arg)

(* --- evaluate ----------------------------------------------------------------- *)

let evaluate_cmd =
  let run network demand cost theta alpha p0 s0 strategy bundles =
    let market =
      Experiment.market ~alpha ~p0 ~cost_model:(cost_model_of ~cost ~theta)
        ~spec:(spec_of ~demand ~s0) network
    in
    let partition = Strategy.apply strategy market ~n_bundles:bundles in
    let outcome = Pricing.evaluate market partition in
    let ctx = Capture.context market in
    Format.fprintf ppf "%a@." Market.pp market;
    Array.iteri
      (fun b group ->
        let demand_gbps =
          Numerics.Stats.sum
            (Array.map (fun i -> market.Market.flows.(i).Flow.demand_mbps) group)
          /. 1000.
        in
        Format.fprintf ppf "tier %d: $%.2f/Mbps, %d destinations, %.1f Gbps observed@."
          b outcome.Pricing.bundle_prices.(b) (Array.length group) demand_gbps)
      (partition :> int array array);
    Format.fprintf ppf "profit $%.4g (blended $%.4g, per-flow max $%.4g)@."
      outcome.Pricing.profit ctx.Capture.original ctx.Capture.maximum;
    Format.fprintf ppf "profit capture: %s@."
      (Report.cell_pct (Capture.value ctx outcome.Pricing.profit))
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Price one tier configuration on a network.")
    Term.(const run $ network_arg $ demand_arg $ cost_arg $ theta_arg $ alpha_arg
          $ p0_arg $ s0_arg $ strategy_arg $ bundles_arg)

(* --- sweep ----------------------------------------------------------------------- *)

let sweep_cmd =
  let param_arg =
    Arg.(required
         & opt (some (enum [ ("alpha", `Alpha); ("p0", `P0); ("s0", `S0) ])) None
         & info [ "param" ] ~docv:"P" ~doc:"Parameter to sweep: alpha, p0 or s0.")
  in
  let manifest_arg =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"FILE"
             ~doc:"Write (or resume) a sweep manifest at $(docv): a \
                   deterministic grid file naming every cell with its input \
                   digest, appended with each completed cell's artifact \
                   digest. On re-invocation only cells whose artifacts are \
                   missing from the content-addressed store are scheduled; \
                   the assembled table is byte-identical to an uninterrupted \
                   serial run. Implies --cache.")
  in
  let manifest_chunk_arg =
    (* Validated at parse time: a negative K must be a CLI error, not
       silently read as "no chunk limit". *)
    let nonneg_int =
      let parse s =
        match int_of_string_opt s with
        | Some k when k >= 0 -> Ok k
        | Some _ -> Error (`Msg "--manifest-chunk must be >= 0")
        | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt (some nonneg_int) None
         & info [ "manifest-chunk" ] ~docv:"K"
             ~doc:"With --manifest: compute at most $(docv) missing cells \
                   this invocation, then stop (without printing the table \
                   unless the grid completed). Lets a long sweep run as a \
                   sequence of resumable slices.")
  in
  let run network demand s0 strategy param backend retries timeout_s jobs
      workers cache cache_max_bytes manifest chunk =
    enable_cache cache cache_max_bytes;
    let values, fit =
      match param with
      | `Alpha ->
          ( Sensitivity.alpha_range ~steps:8 ~lo:1.1 ~hi:10. (),
            fun v -> Experiment.market ~alpha:v ~spec:(spec_of ~demand ~s0) network )
      | `P0 ->
          ( Sensitivity.linear_range ~steps:8 ~lo:5. ~hi:30. (),
            fun v -> Experiment.market ~p0:v ~spec:(spec_of ~demand ~s0) network )
      | `S0 ->
          ( Sensitivity.linear_range ~steps:8 ~lo:0.06 ~hi:0.9 (),
            fun v -> Experiment.market ~spec:(Market.Logit { s0 = v }) network )
    in
    (* One grid cell per swept value: fit + capture across the bundle
       counts. Cells are independent, so they go through the pool;
       rows come back in value order regardless of jobs or backend. *)
    let compute v =
      let market = fit v in
      Report.cell_f v
      :: List.map
           (fun b ->
             Report.cell_f
               (Sensitivity.capture_at market strategy ~n_bundles:b))
           Experiment.Defaults.bundle_counts
    in
    let map_cells f cells =
      Engine.Pool.with_pool ~backend ~retries ?timeout_s ~jobs ?workers
        (fun pool -> Engine.Pool.map_list pool f cells)
    in
    let print_table rows =
      Report.print ppf
        (Report.make
           ~title:(Printf.sprintf "capture on %s while sweeping the parameter" network)
           ~header:("value" :: List.map string_of_int Experiment.Defaults.bundle_counts)
           rows)
    in
    match manifest with
    | None -> print_table (map_cells compute values)
    | Some path ->
        (* The artifact store is the resume source of truth, so the
           disk tier must be on even without --cache. *)
        if Engine.Cache.disk_dir () = None then
          Engine.Cache.enable_disk ?max_bytes:cache_max_bytes ~dir:"_cas" ();
        let artifacts =
          Engine.Cache.create ~name:"sweep-cell" ~schema:"sweep-cell/1" ()
        in
        let param_name =
          match param with `Alpha -> "alpha" | `P0 -> "p0" | `S0 -> "s0"
        in
        let demand_name =
          match demand with `Ced -> "ced" | `Logit -> "logit" | `Linear -> "linear"
        in
        (* Everything that determines a cell's bytes, in one key. *)
        let cell_key v =
          ( "sweep-cell", network, demand_name, s0, Strategy.name strategy,
            param_name, v, Experiment.Defaults.bundle_counts )
        in
        let cells =
          List.mapi
            (fun i v ->
              { Engine.Manifest.index = i;
                name = Printf.sprintf "%s=%.12g" param_name v;
                input_digest = Engine.Cache.key_digest (cell_key v) })
            values
        in
        let m =
          match Engine.Manifest.load_or_create ~path cells with
          | m -> m
          | exception Failure msg ->
              Format.eprintf "sweep: %s@." msg;
              exit 1
        in
        Fun.protect ~finally:(fun () -> Engine.Manifest.close m) @@ fun () ->
        let varr = Array.of_list values in
        let restored =
          Array.map (fun v -> Engine.Cache.disk_get artifacts ~key:(cell_key v))
            varr
        in
        Array.iteri
          (fun i r ->
            match r with
            | Some (_, digest) ->
                Engine.Manifest.record_done m ~index:i ~artifact:digest
            | None -> ())
          restored;
        let missing =
          List.filter_map
            (fun i -> if restored.(i) = None then Some (i, varr.(i)) else None)
            (List.init (Array.length varr) Fun.id)
        in
        let scheduled =
          match chunk with
          | Some k -> List.filteri (fun j _ -> j < k) missing
          | None -> missing
        in
        let computed =
          match scheduled with
          | [] -> []
          | scheduled -> map_cells (fun (_, v) -> compute v) scheduled
        in
        List.iter2
          (fun (i, v) row ->
            match Engine.Cache.disk_put artifacts ~key:(cell_key v) row with
            | Some digest ->
                Engine.Manifest.record_done m ~index:i ~artifact:digest
            | None -> ())
          scheduled computed;
        let n = Array.length varr in
        let n_restored = n - List.length missing in
        let n_computed = List.length scheduled in
        let n_remaining = List.length missing - n_computed in
        Format.eprintf
          "manifest %s: %d cells, %d restored from the store, %d computed, \
           %d remaining@."
          path n n_restored n_computed n_remaining;
        if n_remaining = 0 then begin
          let rows = Array.map (fun r -> Option.map fst r) restored in
          List.iter2 (fun (i, _) row -> rows.(i) <- Some row) scheduled computed;
          print_table (List.filter_map Fun.id (Array.to_list rows))
        end
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep a model parameter and tabulate profit capture.")
    Term.(const run $ network_arg $ demand_arg $ s0_arg $ strategy_arg $ param_arg
          $ backend_arg $ worker_retries_arg $ task_timeout_arg $ jobs_arg
          $ workers_arg $ cache_arg $ cache_max_bytes_arg $ manifest_arg
          $ manifest_chunk_arg)

(* --- trace ----------------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the trace to $(docv).")
  in
  let sample_arg =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N" ~doc:"Apply 1-in-$(docv) packet sampling.")
  in
  let seed_arg =
    Arg.(value & opt int 99 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("csv", `Csv); ("wire", `Wire) ]) `Csv
         & info [ "format" ] ~docv:"FMT"
             ~doc:"$(b,csv) (one record per line) or $(b,wire) (binary \
                   NetFlow v5/IPFIX packets, the format $(b,serve --from) \
                   replays).")
  in
  let run network out sample seed format =
    let w = Experiment.workload network in
    let rng = Numerics.Rng.create seed in
    let records = Flowgen.Netflow.synthesize ~rng (Flowgen.Workload.to_ground_truth w) in
    let records =
      if sample <= 1 then records
      else Flowgen.Sampling.sample rng (Flowgen.Sampling.make sample) records
    in
    (match format with
    | `Csv -> Flowgen.Trace.save ~path:out records
    | `Wire -> Flowgen.Netflow.Wire.write_file out records);
    Format.fprintf ppf "wrote %s: %s@." out (Flowgen.Trace.summarize records)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Synthesize a day of NetFlow for a network and dump it as CSV \
             or binary wire packets.")
    Term.(const run $ network_arg $ out_arg $ sample_arg $ seed_arg $ format_arg)

(* --- loading ---------------------------------------------------------------------- *)

let loading_cmd =
  let run network =
    let w = Experiment.workload network in
    let report = Flowgen.Loading.of_workload w in
    Flowgen.Loading.pp ppf report
  in
  Cmd.v
    (Cmd.info "loading" ~doc:"Show link utilization of a network's workload.")
    Term.(const run $ network_arg)

(* --- tiers ------------------------------------------------------------------------ *)

let tiers_cmd =
  let overhead_arg =
    Arg.(value & opt float 0.
         & info [ "overhead" ] ~docv:"X" ~doc:"Per-tier monthly overhead in dollars.")
  in
  let max_arg =
    Arg.(value & opt int 8 & info [ "max" ] ~docv:"B" ~doc:"Largest tier count to consider.")
  in
  let run network demand s0 strategy overhead max_bundles =
    let market = Experiment.market ~spec:(spec_of ~demand ~s0) network in
    let o = Tier_count.overhead ~per_tier:overhead () in
    let series = Tier_count.series market strategy o ~max_bundles in
    let best = Tier_count.optimal market strategy o ~max_bundles in
    List.iter
      (fun (p : Tier_count.point) ->
        Format.fprintf ppf "%s%d tier(s): gross $%.0f, overhead $%.0f, net $%.0f@."
          (if p.Tier_count.n_bundles = best.Tier_count.n_bundles then "* " else "  ")
          p.Tier_count.n_bundles p.Tier_count.gross_profit p.Tier_count.overhead_cost
          p.Tier_count.net_profit)
      series;
    Format.fprintf ppf "answer: %d tier(s)@." best.Tier_count.n_bundles
  in
  Cmd.v
    (Cmd.info "tiers"
       ~doc:"Answer the title question: the net-profit-optimal tier count.")
    Term.(const run $ network_arg $ demand_arg $ s0_arg $ strategy_arg $ overhead_arg
          $ max_arg)

(* --- serve -------------------------------------------------------------------- *)

let serve_cmd =
  let days_arg =
    Arg.(value & opt int 1
         & info [ "days" ] ~docv:"D"
             ~doc:"Stream length: one synthesized day of NetFlow replayed \
                   $(docv) times (timestamps shifted by whole days).")
  in
  let seed_arg =
    Arg.(value & opt int 11
         & info [ "seed" ] ~docv:"N" ~doc:"NetFlow synthesis seed.")
  in
  let bin_arg =
    Arg.(value & opt int 3600
         & info [ "bin-s" ] ~docv:"SECONDS" ~doc:"Window bin width.")
  in
  let bins_arg =
    Arg.(value & opt int 24
         & info [ "bins" ] ~docv:"N" ~doc:"Bins in the sliding window.")
  in
  let every_arg =
    Arg.(value & opt int 3600
         & info [ "every" ] ~docv:"SECONDS"
             ~doc:"Re-tier cadence in stream seconds.")
  in
  let decay_arg =
    Arg.(value
         & opt (enum [ ("none", `None); ("exponential", `Exponential);
                       ("diurnal", `Diurnal) ])
             `None
         & info [ "decay" ] ~docv:"KIND"
             ~doc:"Demand weighting across the window: $(b,none), \
                   $(b,exponential) (see --half-life) or $(b,diurnal) \
                   (see --amplitude / --peak-bin).")
  in
  let half_life_arg =
    Arg.(value & opt float 12.
         & info [ "half-life" ] ~docv:"BINS"
             ~doc:"Exponential decay half-life, in bins.")
  in
  let amplitude_arg =
    Arg.(value & opt float 0.5
         & info [ "amplitude" ] ~docv:"A"
             ~doc:"Diurnal modulation amplitude in [0, 1].")
  in
  let peak_arg =
    Arg.(value & opt int 0
         & info [ "peak-bin" ] ~docv:"N" ~doc:"Diurnal peak bin.")
  in
  let cold_every_arg =
    Arg.(value & opt int 24
         & info [ "cold-every" ] ~docv:"N"
             ~doc:"Force the divergence fallback (a full re-solve through \
                   the exact path) on every $(docv)-th solve; 0 disables \
                   the drill.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the run's counters as JSON to $(docv).")
  in
  let from_arg =
    Arg.(value & opt (some string) None
         & info [ "from" ] ~docv:"FILE"
             ~doc:"Replay binary NetFlow v5/IPFIX packets from $(docv) \
                   ($(b,-) reads stdin, so a socket can be piped in) \
                   instead of synthesizing records; $(b,--days)/$(b,--seed) \
                   are ignored. NETWORK still provides the flow metadata \
                   the calibration joins against. Produce such files with \
                   $(b,tiered-cli trace --format wire).")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Partition ingest (dedup + window state) across $(docv) \
                   shards drained by a domain pool; posted tiers are \
                   bitwise-identical at any shard count.")
  in
  let usage fmt =
    Format.kasprintf
      (fun msg ->
        Format.eprintf "serve: %s@." msg;
        exit Cmd.Exit.cli_error)
      fmt
  in
  let run network demand cost theta alpha p0 s0 bundles days seed bin_s bins
      every decay half_life amplitude peak cold_every cache max_bytes json
      from_ shards =
    enable_cache cache max_bytes;
    let spec = spec_of ~demand ~s0 in
    (match spec with
    | Market.Linear _ ->
        usage "linear demand has no parametric rebuild (use ced or logit)"
    | Market.Ced | Market.Logit _ -> ());
    (* Surface bad numeric parameters as CLI errors here; past this
       point the same invalid_arg guards in lib/serve would read as
       internal errors. *)
    if days < 1 then usage "--days must be at least 1";
    if bin_s < 1 then usage "--bin-s must be at least 1";
    if bins < 1 then usage "--bins must be at least 1";
    if every < 1 then usage "--every must be at least 1";
    if bundles < 1 then usage "--bundles must be at least 1";
    if cold_every < 0 then usage "--cold-every must be non-negative";
    if shards < 1 then usage "--shards must be at least 1";
    (match decay with
    | `Exponential when not (half_life > 0. && Float.is_finite half_life) ->
        usage "--half-life must be a positive number of bins"
    | `Diurnal when not (amplitude >= 0. && amplitude <= 1.) ->
        usage "--amplitude must lie in [0, 1]"
    | `None | `Exponential | `Diurnal -> ());
    let w = Flowgen.Workload.preset network in
    let decay =
      match decay with
      | `None -> Serve.Window.No_decay
      | `Exponential -> Serve.Window.Exponential { half_life_bins = half_life }
      | `Diurnal -> Serve.Window.Diurnal { amplitude; peak_bin = peak }
    in
    let shard_state =
      Serve.Shards.create
        ~expected:(List.length w.Flowgen.Workload.flows)
        ~shards ~dedup:true
        { Serve.Window.bin_s; bins; decay }
    in
    let retier =
      Serve.Retier.create
        {
          Serve.Retier.spec;
          alpha;
          p0;
          n_bundles = bundles;
          cost_model = cost_model_of ~cost ~theta;
          samples = 8;
          cold_every;
          use_cache = cache || max_bytes <> None;
        }
        ~meta_of:(Serve.Retier.meta_of_workload w)
    in
    let ingest, cleanup =
      match from_ with
      | None -> (Serve.Ingest.of_workload ~days ~seed w, fun () -> ())
      | Some "-" ->
          ( Serve.Ingest.of_reader (Flowgen.Netflow.Wire.of_channel stdin),
            fun () -> () )
      | Some path -> (
          match open_in_bin path with
          | ic ->
              ( Serve.Ingest.of_reader (Flowgen.Netflow.Wire.of_channel ic),
                fun () -> close_in_noerr ic )
          | exception Sys_error msg -> usage "%s" msg)
    in
    let run_daemon pool =
      Serve.Daemon.run
        ~clock:(Serve.Clock.of_fn Unix.gettimeofday)
        ?pool ~shards:shard_state ~retier
        { Serve.Daemon.every_s = every }
        ingest
    in
    let result =
      if shards > 1 then
        Engine.Pool.with_pool ~jobs:shards (fun pool -> run_daemon (Some pool))
      else run_daemon None
    in
    cleanup ();
    let s = result.Serve.Daemon.r_stats in
    let run_row = result.Serve.Daemon.r_run in
    Report.print ppf (Serve.Stats.report s run_row);
    (match List.rev result.Serve.Daemon.r_outcomes with
    | last :: _ when last.Serve.Retier.o_n_flows > 0 ->
        Format.fprintf ppf "@.posted tiers (final window, %d flows):@."
          last.Serve.Retier.o_n_flows;
        Array.iteri
          (fun i price ->
            Format.fprintf ppf "  tier %d: $%.2f/Mbps/month@." (i + 1) price)
          last.Serve.Retier.o_prices
    | _ -> ());
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Serve.Stats.to_json s run_row);
        output_string oc "\n";
        close_out oc;
        Format.fprintf ppf "@.wrote %s@." file
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the streaming pricing service on a synthesized NetFlow \
             stream: sliding-window demand, incremental re-tiering with \
             warm-started solves, posted tiers identical to from-scratch \
             solves.")
    Term.(const run $ network_arg $ demand_arg $ cost_arg $ theta_arg
          $ alpha_arg $ p0_arg $ s0_arg $ bundles_arg $ days_arg $ seed_arg
          $ bin_arg $ bins_arg $ every_arg $ decay_arg $ half_life_arg
          $ amplitude_arg $ peak_arg $ cold_every_arg $ cache_arg
          $ cache_max_bytes_arg $ json_arg $ from_arg $ shards_arg)

(* --- worker -------------------------------------------------------------------- *)

let worker_cmd =
  let listen_arg =
    Arg.(required & opt (some int) None
         & info [ "listen" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let bind_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "bind" ] ~docv:"ADDR"
             ~doc:"Address to listen on. Defaults to loopback; pass an \
                   interface address (or $(b,0.0.0.0)) to accept external \
                   parents — which additionally requires a shared secret \
                   ($(b,--token-file) or $(b,TIERED_WORKER_TOKEN)), because \
                   task frames execute arbitrary code in this daemon. Only \
                   expose workers on trusted, firewalled networks: the \
                   secret authenticates, it does not encrypt.")
  in
  let token_file_arg =
    Arg.(value & opt (some string) None
         & info [ "token-file" ] ~docv:"FILE"
             ~doc:"Read the shared secret (trailing whitespace trimmed) from \
                   $(docv). The parent presents the same secret, taken from \
                   its $(b,TIERED_WORKER_TOKEN) environment variable, before \
                   any task frame is accepted. Defaults to the daemon's own \
                   $(b,TIERED_WORKER_TOKEN).")
  in
  let run port bind token_file =
    if port < 1 || port > 65535 then begin
      Format.eprintf "worker: --listen must be a port in 1..65535@.";
      exit Cmd.Exit.cli_error
    end;
    let token =
      match token_file with
      | None -> (
          match Sys.getenv_opt Engine.Remote.token_env with
          | Some t -> t
          | None -> "")
      | Some f -> (
          match In_channel.with_open_bin f In_channel.input_all with
          | contents -> String.trim contents
          | exception Sys_error msg ->
              Format.eprintf "worker: cannot read --token-file: %s@." msg;
              exit Cmd.Exit.cli_error)
    in
    try Engine.Remote.serve_forever ~bind ~token ~port with
    | Unix.Unix_error (e, _, _) ->
        (* EADDRINUSE from a daemon already on the port is the common
           operator mistake; report it as a CLI error, not a crash. *)
        Format.eprintf "worker: cannot listen on %s:%d: %s@." bind port
          (Unix.error_message e);
        exit Cmd.Exit.cli_error
    | Failure msg | Engine.Remote.Spawn_failure msg ->
        (* Unresolvable --bind, or a non-loopback bind without a
           secret. *)
        Format.eprintf "worker: %s@." msg;
        exit Cmd.Exit.cli_error
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Run a standalone fleet worker daemon: listen for a parent \
             driving $(b,--backend remote --workers host:port,…) and serve \
             its task and artifact frames, one parent connection at a time, \
             forever. In-memory artifact caches stay warm across \
             connections. Listens on loopback unless $(b,--bind) says \
             otherwise; non-loopback binds require a shared secret and a \
             trusted network (task frames execute arbitrary code).")
    Term.(const run $ listen_arg $ bind_arg $ token_file_arg)

(* --- main ---------------------------------------------------------------------- *)

let () =
  (* Must come first: when this executable is re-invoked as an engine
     worker subprocess (--backend procs) or a loopback fleet child
     (--backend remote), serve tasks and exit before any CLI parsing
     happens. *)
  Engine.Proc.maybe_run_worker ();
  Engine.Remote.maybe_run_worker ();
  let info =
    Cmd.info "tiered-cli" ~version:"1.0.0"
      ~doc:"Tiered transit pricing: reproduction of Valancius et al., SIGCOMM 2011."
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; run_cmd; dataset_cmd; evaluate_cmd; sweep_cmd; trace_cmd; loading_cmd;
         tiers_cmd; serve_cmd; worker_cmd ]))
