(* tiered-lint: the repo's determinism/hygiene static-analysis pass.
   See lib/analysis for the rule catalog and DESIGN.md §10 for the
   rationale.  Two engines share one reporting pipeline: the textual
   AST rules (D/H/S) and, whenever `dune build` has left cmt
   artifacts around, the typed interprocedural pass (T001-T003) over
   lib/.  Exit codes: 0 clean, 1 active findings, 2 usage or baseline
   errors. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let () =
  let root = ref "." in
  let baseline_path = ref "lint/baseline.json" in
  let json_path = ref "" in
  let sarif_path = ref "" in
  let effects_path = ref "" in
  let write_baseline = ref false in
  let list_rules = ref false in
  let quiet = ref false in
  let typed = ref true in
  let typed_only = ref false in
  let typed_dump = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan from (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE baseline path, relative to --root (default lint/baseline.json)" );
      ( "--json",
        Arg.Set_string json_path,
        "FILE also write the JSON report here (relative to cwd)" );
      ( "--sarif",
        Arg.Set_string sarif_path,
        "FILE also write a SARIF 2.1.0 report here (relative to cwd)" );
      ( "--typed",
        Arg.Set typed,
        " run the typed cmt pass (default: on when cmts exist)" );
      ( "--no-typed",
        Arg.Clear typed,
        " skip the typed cmt pass even if cmts exist" );
      ( "--typed-only",
        Arg.Set typed_only,
        " run only the typed pass (textual rules skipped)" );
      ( "--typed-dump",
        Arg.Set typed_dump,
        " print every non-pure effect summary and exit" );
      ( "--effects-out",
        Arg.Set_string effects_path,
        "FILE write the effect-summary golden JSON here (relative to cwd)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the baseline to grandfather every currently-active finding" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
      ("--quiet", Arg.Set quiet, " suppress the report body (summary only)");
    ]
  in
  let usage =
    "tiered-lint [options] [dir ...]\n\
     Scans every .ml/.mli under the given directories (default: lib bin \
     bench test) for determinism/hygiene violations, and lib/ cmt \
     artifacts for interprocedural ones.\n"
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (m : Analysis.Rules.meta) ->
        Printf.printf "%s  %s\n      %s\n" m.Analysis.Rules.id
          m.Analysis.Rules.title m.Analysis.Rules.rationale)
      Analysis.Rules.catalog;
    exit 0
  end;
  let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
  let baseline_file = Filename.concat !root !baseline_path in
  let baseline =
    match Analysis.Baseline.load baseline_file with
    | Ok b -> b
    | Error msg ->
        Printf.eprintf "tiered-lint: cannot read baseline: %s\n" msg;
        exit 2
  in
  let run_typed =
    (!typed || !typed_only)
    && Analysis_typed.Typed_lint.available ~root:!root
  in
  let typed_outcome =
    if run_typed then Some (Analysis_typed.Typed_lint.run ~root:!root ())
    else None
  in
  if !typed_dump then begin
    (match typed_outcome with
    | Some o -> print_string (Analysis_typed.Typed_lint.dump o)
    | None -> print_endline "typed pass unavailable: no cmt artifacts found");
    exit 0
  end;
  (match (!effects_path, typed_outcome) with
  | "", _ | _, None -> ()
  | path, Some o ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Analysis_typed.Typed_lint.golden_string
               o.Analysis_typed.Typed_lint.summaries)));
  let extra =
    match typed_outcome with
    | Some o -> o.Analysis_typed.Typed_lint.findings
    | None -> []
  in
  let outcome =
    if !typed_only then
      Analysis.Lint.run_sources ~baseline ~extra
        (List.map
           (fun file ->
             let path = Filename.concat !root file in
             let ic = open_in_bin path in
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> (file, really_input_string ic (in_channel_length ic))))
           (Analysis.Lint.scan_files ~root:!root ~dirs:[ "lib" ]))
      |> fun o ->
      {
        o with
        Analysis.Lint.reported =
          List.filter
            (fun ((f : Analysis.Finding.t), _) ->
              String.length f.Analysis.Finding.rule > 0
              && (f.Analysis.Finding.rule.[0] = 'T'
                 || f.Analysis.Finding.rule = "E002"))
            o.Analysis.Lint.reported;
      }
    else Analysis.Lint.run ~baseline ~extra ~root:!root ~dirs ()
  in
  if !write_baseline then begin
    let entries = Analysis.Baseline.of_findings (Analysis.Lint.active outcome) in
    Analysis.Baseline.save baseline_file entries;
    Printf.printf "tiered-lint: wrote %d baseline entr%s to %s\n"
      (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      baseline_file;
    exit 0
  end;
  let report =
    Analysis.Reporter.text ~reported:outcome.Analysis.Lint.reported
      ~stale:outcome.Analysis.Lint.stale
  in
  if !quiet then begin
    match String.rindex_opt (String.trim report) '\n' with
    | Some i ->
        let t = String.trim report in
        print_endline (String.sub t (i + 1) (String.length t - i - 1))
    | None -> print_string report
  end
  else print_string report;
  if (!typed || !typed_only) && not run_typed then
    prerr_endline
      "tiered-lint: note: typed pass skipped (no cmt artifacts; run `dune \
       build` first, or pass --no-typed to silence)";
  if !json_path <> "" then begin
    let oc = open_out_bin !json_path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Analysis.Json.to_string
             (Analysis.Reporter.json ~reported:outcome.Analysis.Lint.reported
                ~stale:outcome.Analysis.Lint.stale)))
  end;
  if !sarif_path <> "" then begin
    let oc = open_out_bin !sarif_path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Analysis.Json.to_string
             (Analysis.Sarif.render ~reported:outcome.Analysis.Lint.reported)))
  end;
  if Analysis.Lint.active outcome <> [] then exit 1
