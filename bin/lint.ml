(* tiered-lint: the repo's determinism/hygiene static-analysis pass.
   See lib/analysis for the rule catalog and DESIGN.md §10 for the
   rationale.  Exit codes: 0 clean, 1 active findings, 2 usage or
   baseline errors. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let () =
  let root = ref "." in
  let baseline_path = ref "lint/baseline.json" in
  let json_path = ref "" in
  let write_baseline = ref false in
  let list_rules = ref false in
  let quiet = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan from (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE baseline path, relative to --root (default lint/baseline.json)" );
      ( "--json",
        Arg.Set_string json_path,
        "FILE also write the JSON report here (relative to cwd)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the baseline to grandfather every currently-active finding" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalog and exit");
      ("--quiet", Arg.Set quiet, " suppress the report body (summary only)");
    ]
  in
  let usage =
    "tiered-lint [options] [dir ...]\n\
     Scans every .ml/.mli under the given directories (default: lib bin \
     bench test) for determinism/hygiene violations.\n"
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (m : Analysis.Rules.meta) ->
        Printf.printf "%s  %s\n      %s\n" m.Analysis.Rules.id
          m.Analysis.Rules.title m.Analysis.Rules.rationale)
      Analysis.Rules.catalog;
    exit 0
  end;
  let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
  let baseline_file = Filename.concat !root !baseline_path in
  let baseline =
    match Analysis.Baseline.load baseline_file with
    | Ok b -> b
    | Error msg ->
        Printf.eprintf "tiered-lint: cannot read baseline: %s\n" msg;
        exit 2
  in
  let outcome = Analysis.Lint.run ~baseline ~root:!root ~dirs () in
  if !write_baseline then begin
    let entries = Analysis.Baseline.of_findings (Analysis.Lint.active outcome) in
    Analysis.Baseline.save baseline_file entries;
    Printf.printf "tiered-lint: wrote %d baseline entr%s to %s\n"
      (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      baseline_file;
    exit 0
  end;
  let report =
    Analysis.Reporter.text ~reported:outcome.Analysis.Lint.reported
      ~stale:outcome.Analysis.Lint.stale
  in
  if !quiet then begin
    match String.rindex_opt (String.trim report) '\n' with
    | Some i ->
        let t = String.trim report in
        print_endline (String.sub t (i + 1) (String.length t - i - 1))
    | None -> print_string report
  end
  else print_string report;
  if !json_path <> "" then begin
    let oc = open_out_bin !json_path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Analysis.Json.to_string
             (Analysis.Reporter.json ~reported:outcome.Analysis.Lint.reported
                ~stale:outcome.Analysis.Lint.stale)))
  end;
  if Analysis.Lint.active outcome <> [] then exit 1
