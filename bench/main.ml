(* The reproduction harness: regenerates every table and figure of the
   paper (see DESIGN.md's experiment index), runs the ablations called
   out there, and finishes with Bechamel micro-benchmarks of the core
   algorithms.

   Usage: dune exec bench/main.exe [section ...]
   with sections among: experiments fig2 fig17 ablations extensions
   sweep pool dp serve micro (default: all). A specific experiment id
   (e.g. fig8) also works.

   The experiments section executes on the Engine pool
   ([--backend=procs] switches it to worker subprocesses); the sweep
   section times the full grid serial vs parallel, checks the outputs
   are byte-identical and records the result in BENCH_sweep.json; the
   pool section sweeps task granularity across the serial / domain /
   subprocess substrates and records per-task dispatch overhead in
   BENCH_pool.json (regenerate with `make bench-json`). *)

open Tiered

let ppf = Format.std_formatter
let section title = Format.fprintf ppf "@.@.######## %s ########@." title

(* --- paper experiments --------------------------------------------------- *)

let run_experiment (e : Experiment.t) =
  Format.fprintf ppf "@.---- %s: %s ----@." e.Experiment.id e.Experiment.description;
  List.iter (Report.print ppf) (e.Experiment.run ())

let print_result (r : Runner.result) =
  Format.fprintf ppf "@.---- %s: %s ----@." r.Runner.id r.Runner.description;
  List.iter (Report.print ppf) r.Runner.tables

let run_experiments ~backend () =
  section "Paper tables and figures";
  (* The whole registry goes through the engine pool; results are
     merged in submission order, so the output is identical to the
     historical serial walk at any job count or backend. *)
  let metrics = Engine.Metrics.create () in
  let results = Runner.run_experiments ~backend ~metrics Experiment.all in
  List.iter print_result results;
  List.iter (Report.print ppf) (Runner.metrics_reports (Engine.Metrics.snapshot metrics))

(* --- Figure 2: the direct-peering bypass -------------------------------- *)

let run_fig2 () =
  section "Figure 2: blended rates push customers to direct peering";
  let isp_cost = 5.0 and isp_margin = 0.3 and accounting_overhead = 0.5 in
  let blended_rate = 20. in
  let rows =
    List.map
      (fun direct_cost ->
        let v =
          Routing.Policy.Bypass.decide
            {
              Routing.Policy.Bypass.blended_rate;
              direct_cost;
              isp_cost;
              isp_margin;
              accounting_overhead;
            }
        in
        [
          Printf.sprintf "$%.0f" direct_cost;
          (if v.Routing.Policy.Bypass.customer_bypasses then "yes" else "no");
          Printf.sprintf "$%.2f" v.Routing.Policy.Bypass.tiered_price;
          (if v.Routing.Policy.Bypass.market_failure then "market failure" else "-");
          Report.cell_f v.Routing.Policy.Bypass.customer_saving;
        ])
      [ 4.; 7.; 10.; 15.; 19.; 25. ]
  in
  Report.print ppf
    (Report.make
       ~title:
         (Printf.sprintf
            "CDN bypass decision (blended R=$%.0f, ISP cost $%.1f, margin %.0f%%, overhead $%.1f)"
            blended_rate isp_cost (100. *. isp_margin) accounting_overhead)
       ~header:[ "c_direct"; "bypasses?"; "tier price"; "efficiency"; "saving" ]
       rows
       ~notes:
         [
           "bypass with c_direct above the tier price is the Fig. 2 market \
            failure: a tiered offer would have kept the traffic";
         ])

(* --- Figure 17: accounting architectures --------------------------------- *)

let run_fig17 () =
  section "Figure 17: link-based vs flow-based tier accounting";
  let w = Experiment.workload "eu_isp" in
  let flows = Dataset.of_workload w in
  let market =
    Market.fit ~spec:Market.Ced ~alpha:Experiment.Defaults.alpha
      ~p0:Experiment.Defaults.p0
      ~cost_model:(Cost_model.linear ~theta:Experiment.Defaults.theta)
      flows
  in
  let bundles = Strategy.apply Strategy.Optimal market ~n_bundles:3 in
  let outcome = Pricing.evaluate market bundles in
  let owner = Bundle.member_of bundles ~n_flows:(Market.n_flows market) in
  (* Tag one route per workload flow with its tier. *)
  let assignments =
    List.map
      (fun (f : Flowgen.Workload.flow) ->
        {
          Routing.Tagging.dst_prefix = Flowgen.Ipv4.prefix f.Flowgen.Workload.dst_addr 24;
          tier = owner.(f.Flowgen.Workload.id);
          next_hop = f.Flowgen.Workload.entry.Netsim.Node.id;
        })
      w.Flowgen.Workload.flows
  in
  let rib = Routing.Tagging.build_rib ~asn:65000 assignments in
  let rng = Numerics.Rng.create 99 in
  let records = Flowgen.Netflow.synthesize ~rng (Flowgen.Workload.to_ground_truth w) in
  let records = Flowgen.Dedup.dedup records in
  let snmp = Routing.Accounting.Snmp.create ~n_tiers:(Bundle.count bundles) () in
  Routing.Accounting.Snmp.observe snmp ~rib records;
  let link_usage = Routing.Accounting.Snmp.usage snmp in
  let flow_usage = Routing.Accounting.flow_based ~rib records in
  let rows =
    List.map2
      (fun (tier, link_bytes) (_, flow_bytes) ->
        [
          string_of_int tier;
          Printf.sprintf "$%.2f" outcome.Pricing.bundle_prices.(tier);
          Printf.sprintf "%.2f" (link_bytes /. 1e12);
          Printf.sprintf "%.2f" (flow_bytes /. 1e12);
          Report.cell_pct (abs_float (link_bytes -. flow_bytes) /. flow_bytes);
        ])
      link_usage.Routing.Accounting.tier_bytes flow_usage.Routing.Accounting.tier_bytes
  in
  Report.print ppf
    (Report.make ~title:"Per-tier accounted volume, EU ISP, 3 optimal tiers"
       ~header:[ "tier"; "price"; "link-based (TB)"; "flow-based (TB)"; "divergence" ]
       rows
       ~notes:[ "both architectures must account the same wire traffic" ])

(* --- ablations ------------------------------------------------------------ *)

let ablation_dp_vs_exhaustive () =
  (* Sub-sample a real market to 10 flows so exhaustive search is
     feasible, then compare the production DP against it. *)
  let w = Experiment.workload "internet2" in
  let all_flows = Dataset.of_workload w in
  let flows =
    Array.init 10 (fun i ->
        let f = all_flows.(i * (Array.length all_flows / 10)) in
        Flow.make ~locality:f.Flow.locality ~on_net:f.Flow.on_net ~id:i
          ~demand_mbps:f.Flow.demand_mbps ~distance_miles:f.Flow.distance_miles ())
  in
  let rows =
    List.concat_map
      (fun spec ->
        let m =
          Market.fit ~spec ~alpha:Experiment.Defaults.alpha ~p0:Experiment.Defaults.p0
            ~cost_model:(Cost_model.linear ~theta:Experiment.Defaults.theta)
            flows
        in
        List.map
          (fun b ->
            let dp =
              (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b))
                .Pricing.profit
            in
            let ex =
              (Pricing.evaluate m (Strategy.exhaustive_optimal m ~n_bundles:b))
                .Pricing.profit
            in
            [
              Market.demand_spec_name m.Market.spec;
              string_of_int b;
              Report.cell_f dp;
              Report.cell_f ex;
              Report.cell_pct ((ex -. dp) /. ex);
            ])
          [ 2; 3; 4 ])
      [ Market.Ced; Market.Logit { s0 = Experiment.Defaults.s0 } ]
  in
  Report.print ppf
    (Report.make ~title:"Ablation: contiguous-DP optimal vs exhaustive set partitions"
       ~header:[ "demand"; "bundles"; "DP profit"; "exhaustive"; "gap" ]
       rows
       ~notes:[ "the DP is provably exact for CED; near-exact for logit" ])

let ablation_logit_pricing () =
  let m = Experiment.market ~spec:(Market.Logit { s0 = Experiment.Defaults.s0 }) "eu_isp" in
  let rows =
    List.map
      (fun b ->
        let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:b in
        let closed = Pricing.evaluate m bundles in
        (* Numeric check: ascend profit directly over bundle prices. *)
        let profit prices = (Pricing.evaluate_at_prices m bundles prices).Pricing.profit in
        let numeric =
          Numerics.Gradient.ascent ~step0:0.1 ~max_iter:5000 ~f:profit
            ~grad:(Numerics.Gradient.numeric_grad profit)
            closed.Pricing.bundle_prices
        in
        [
          string_of_int b;
          Report.cell_f closed.Pricing.profit;
          Report.cell_f numeric.Numerics.Gradient.value;
          Report.cell_pct
            ((numeric.Numerics.Gradient.value -. closed.Pricing.profit)
            /. closed.Pricing.profit);
        ])
      [ 2; 3; 4 ]
  in
  Report.print ppf
    (Report.make
       ~title:"Ablation: logit closed-form margin (Eqs. 9-11) vs numeric gradient ascent"
       ~header:[ "bundles"; "closed-form profit"; "ascended profit"; "gain" ]
       rows
       ~notes:[ "a positive gain would falsify the common-margin optimality" ])

let ablation_class_aware () =
  let m =
    Experiment.market ~spec:Market.Ced
      ~cost_model:(Cost_model.destination_type ~theta:0.1) "eu_isp"
  in
  let ctx = Capture.context m in
  let capture strategy b =
    Capture.value ctx
      (Pricing.evaluate m (Strategy.apply strategy m ~n_bundles:b)).Pricing.profit
  in
  let rows =
    List.map
      (fun b ->
        [
          string_of_int b;
          Report.cell_f (capture Strategy.Profit_weighted b);
          Report.cell_f (capture Strategy.Profit_weighted_classes b);
        ])
      Experiment.Defaults.bundle_counts
  in
  Report.print ppf
    (Report.make
       ~title:
         "Ablation: plain vs class-aware profit weighting (destination-type cost, theta=0.1)"
       ~header:[ "bundles"; "plain"; "class-aware" ]
       rows
       ~notes:
         [
           "the paper's Section 4.3.1 fix: never group on-net and off-net \
            flows in one bundle";
         ])

let ablation_sampling () =
  (* Methodology robustness: how much does packet sampling distort the
     fitted capture curve? *)
  let w = Experiment.workload "eu_isp" in
  let capture_at_rate rate =
    let flows =
      if rate = 1 then Dataset.of_workload w else Dataset.via_netflow ~sampling_rate:rate w
    in
    let m =
      Market.fit ~spec:Market.Ced ~alpha:Experiment.Defaults.alpha
        ~p0:Experiment.Defaults.p0
        ~cost_model:(Cost_model.linear ~theta:Experiment.Defaults.theta)
        flows
    in
    Sensitivity.capture_at m Strategy.Optimal ~n_bundles:4
  in
  let rows =
    List.map
      (fun rate -> [ string_of_int rate; Report.cell_f (capture_at_rate rate) ])
      [ 1; 100; 1000; 10000 ]
  in
  Report.print ppf
    (Report.make
       ~title:"Ablation: packet-sampling rate vs fitted optimal capture (EU ISP, B=4)"
       ~header:[ "1-in-N sampling"; "capture" ]
       rows
       ~notes:[ "rate 1 = ground truth; the paper's traces were sampled NetFlow" ])

let ablation_cv_claims () =
  (* Two side claims from the paper's 4.2.2: (1) "given fixed demand, a
     high CV of distance (cost) leads to higher absolute profits";
     (2) "networks with higher coefficient of variation of demand need
     more bundles to extract maximum profit". *)
  let rows =
    List.map
      (fun (network, theta) ->
        let m =
          Experiment.market ~spec:Market.Ced
            ~cost_model:(Cost_model.linear ~theta) network
        in
        let cost_cv = Numerics.Stats.cv m.Market.costs in
        let demand_cv = Numerics.Stats.cv (Flow.demands m.Market.flows) in
        let ctx = Capture.context m in
        let headroom_share = Capture.headroom ctx /. ctx.Capture.original in
        let bundles_to_90 =
          let rec search b =
            if b > 16 then 16
            else if
              Capture.value ctx
                (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b))
                  .Pricing.profit
              >= 0.9
            then b
            else search (b + 1)
          in
          search 1
        in
        [
          Printf.sprintf "%s theta=%.2f" network theta;
          Report.cell_f cost_cv;
          Report.cell_pct headroom_share;
          Report.cell_f demand_cv;
          string_of_int bundles_to_90;
        ])
      [
        ("eu_isp", 0.05); ("eu_isp", 0.2); ("eu_isp", 0.5); ("internet2", 0.2);
        ("cdn", 0.2);
      ]
  in
  Report.print ppf
    (Report.make
       ~title:"Ablation: the paper's CV claims (4.2.2), CED demand"
       ~header:
         [ "network"; "CV of cost"; "headroom / blended profit"; "CV of demand";
           "bundles to 90% capture" ]
       rows
       ~notes:
         [
           "claim 1: headroom should increase with cost CV; claim 2: \
            bundles-to-90% should increase with demand CV";
         ])

let ablation_demand_families () =
  (* Robustness to the demand family itself: the paper argues its
     results hold because CED and logit agree; linear demand (extension)
     is a third, independent family. *)
  let specs =
    [
      Market.Ced; Market.Logit { s0 = Experiment.Defaults.s0 };
      Market.Linear { epsilon = 1.8 };
    ]
  in
  let markets = List.map (fun spec -> Experiment.market ~spec "eu_isp") specs in
  let rows =
    List.map
      (fun b ->
        string_of_int b
        :: List.map
             (fun m ->
               Report.cell_f (Sensitivity.capture_at m Strategy.Optimal ~n_bundles:b))
             markets)
      Experiment.Defaults.bundle_counts
  in
  Report.print ppf
    (Report.make
       ~title:"Ablation: optimal capture across demand families (EU ISP)"
       ~header:("bundles" :: List.map Market.demand_spec_name specs)
       rows
       ~notes:
         [
           "linear demand is an extension (common point elasticity 1.8 at \
            p0); the 3-4 tier conclusion must not hinge on the demand \
            family";
         ])

let run_ablations () =
  section "Ablations";
  ablation_cv_claims ();
  ablation_demand_families ();
  ablation_dp_vs_exhaustive ();
  ablation_logit_pricing ();
  ablation_class_aware ();
  ablation_sampling ()

(* --- extensions ----------------------------------------------------------- *)

let extension_welfare () =
  let rows_for spec =
    let m = Experiment.market ~spec "eu_isp" in
    List.map
      (fun b ->
        let a = Welfare.of_strategy m Strategy.Optimal ~n_bundles:b in
        [
          Market.demand_spec_name m.Market.spec;
          string_of_int b;
          Report.cell_f a.Welfare.profit;
          Report.cell_f a.Welfare.consumer_surplus;
          Report.cell_pct a.Welfare.efficiency;
          Report.cell_f a.Welfare.deadweight_loss;
        ])
      [ 1; 2; 3; 4; 6 ]
  in
  Report.print ppf
    (Report.make
       ~title:"Extension: welfare decomposition vs tier count (EU ISP, optimal bundling)"
       ~header:[ "demand"; "bundles"; "profit"; "surplus"; "efficiency"; "DWL" ]
       (rows_for Market.Ced @ rows_for (Market.Logit { s0 = Experiment.Defaults.s0 }))
       ~notes:
         [
           "efficiency = welfare / first-best (marginal-cost) welfare; \
            tiering helps both sides (Section 2.2.1 writ large)";
         ])

let extension_dynamics () =
  let truth = Experiment.market ~spec:Market.Ced "eu_isp" in
  let rows =
    List.map
      (fun est ->
        let rounds =
          Dynamics.simulate
            {
              Dynamics.truth;
              estimated_alpha = est;
              strategy = Strategy.Optimal;
              n_bundles = 3;
              rounds = 12;
              damping = 0.7;
            }
        in
        let capture_at i = (List.nth rounds i).Dynamics.capture in
        let blended = (List.hd rounds).Dynamics.true_profit in
        let final = List.nth rounds (List.length rounds - 1) in
        [
          Printf.sprintf "%.2f" est;
          Report.cell_f (capture_at 1);
          Report.cell_f (Dynamics.final_capture rounds);
          Report.cell_pct (final.Dynamics.true_profit /. blended);
          (if Dynamics.converged ~tol:1e-4 rounds then "yes" else "no");
        ])
      [ 1.05; 1.1; 1.5; 2.5; 4.0 ]
  in
  let calibrated_row =
    let rounds =
      Estimate.calibrated_dynamics ~noise_cv:0.02 ~truth ~strategy:Strategy.Optimal
        ~n_bundles:3 ~rounds:12 ()
    in
    let blended = (List.hd rounds).Dynamics.true_profit in
    let final = List.nth rounds (List.length rounds - 1) in
    [
      "probe-calibrated";
      Report.cell_f (List.nth rounds 1).Dynamics.capture;
      Report.cell_f (Dynamics.final_capture rounds);
      Report.cell_pct (final.Dynamics.true_profit /. blended);
      (if Dynamics.converged ~tol:1e-4 rounds then "yes" else "no");
    ]
  in
  let rows = rows @ [ calibrated_row ] in
  Report.print ppf
    (Report.make
       ~title:
         "Extension: repricing dynamics under elasticity misestimation (true alpha = 1.1)"
       ~header:[ "believed alpha"; "capture r1"; "final capture"; "profit vs blended"; "converged" ]
       rows
       ~notes:
         [
           "the ISP re-fits demand from observations each round with its \
            own alpha belief; misestimating elasticity costs orders of \
            magnitude more profit than coarse tiering ever does (capture \
            is relative to the small tiering headroom, hence the large \
            negative values). The probe-calibrated row estimates alpha \
            from a wide-spread price experiment first (Tiered.Estimate)";
         ])

let extension_competition () =
  (* A stylized transit duopoly over the market's fitted valuations. *)
  let m = Experiment.market ~spec:(Market.Logit { s0 = Experiment.Defaults.s0 }) "eu_isp" in
  (* Thin to 100 flows to keep the table readable cheaply. *)
  let idx = Array.init 100 (fun i -> i * (Market.n_flows m / 100)) in
  let valuations = Array.map (fun i -> m.Market.valuations.(i)) idx in
  let costs_a = Array.map (fun i -> m.Market.costs.(i)) idx in
  let incumbent = Competition.firm ~name:"incumbent" ~costs:costs_a in
  let entrant_at scale =
    Competition.firm ~name:"entrant"
      ~costs:(Array.map (fun c -> c *. scale) costs_a)
  in
  let alpha = m.Market.alpha in
  let mono = Competition.monopoly ~alpha ~valuations incumbent in
  let rows =
    ([
       "monopoly"; Report.cell_f mono.Competition.margins.(0); "-";
       Report.cell_f mono.Competition.shares.(0); "-";
       Report.cell_f mono.Competition.profits.(0); "-";
     ]
    :: List.map
         (fun (label, scale) ->
           let eq = Competition.nash ~alpha ~valuations [| incumbent; entrant_at scale |] in
           [
             label;
             Report.cell_f eq.Competition.margins.(0);
             Report.cell_f eq.Competition.margins.(1);
             Report.cell_f eq.Competition.shares.(0);
             Report.cell_f eq.Competition.shares.(1);
             Report.cell_f eq.Competition.profits.(0);
             Report.cell_f eq.Competition.profits.(1);
           ])
         [
           ("entrant @ 100% cost", 1.0); ("entrant @ 70% (year 1)", 0.7);
           ("entrant @ 49% (year 2)", 0.49); ("entrant @ 34% (year 3)", 0.34);
         ])
  in
  Report.print ppf
    (Report.make
       ~title:"Extension: Bertrand-logit duopoly; entrant costs fall 30%/year"
       ~header:
         [ "scenario"; "margin A"; "margin B"; "share A"; "share B"; "profit A"; "profit B" ]
       rows
       ~notes:
         [
           "margins compress as the entrant's cost advantage grows -- the \
            Section 1 story of transit prices falling ~30%/year under \
            competition";
         ])

let extension_commit () =
  (* Volume tiering over a heterogeneous customer population. *)
  let rng = Numerics.Rng.create 7001 in
  let alpha = 2.0 and unit_cost = 2.0 in
  let valuations =
    Array.init 500 (fun _ -> Numerics.Dist.lognormal_of_mean_cv rng ~mean:10. ~cv:1.2)
  in
  let menu_row label menu =
    let o = Commit.evaluate ~alpha ~unit_cost ~valuations menu in
    [
      label;
      String.concat " "
        (Array.to_list
           (Array.map
              (fun t -> Printf.sprintf "%.0f@$%.2f" t.Commit.commit_mbps t.Commit.rate)
              menu));
      Report.cell_f o.Commit.profit;
      Report.cell_f o.Commit.consumer_surplus;
      string_of_int o.Commit.opted_out;
    ]
  in
  let rows =
    List.map
      (fun n ->
        let commits = Commit.commit_quantiles ~alpha ~p0:4. ~valuations ~n in
        let menu = Commit.optimize_rates ~alpha ~unit_cost ~valuations ~commits in
        menu_row (Printf.sprintf "%d commit tier(s)" n) menu)
      [ 1; 2; 3; 4 ]
  in
  Report.print ppf
    (Report.make
       ~title:"Extension: volume (commit) tiering -- the other axis of Section 2.1"
       ~header:[ "menu"; "tiers (commit@rate)"; "profit"; "surplus"; "opt-outs" ]
       rows
       ~notes:
         [
           "under CED the single usage rate is already the monopoly \
            optimum for every customer, so menus gain only through commit \
            floors (second-degree discrimination) -- a structural reason \
            volume discounts alone are weak, supporting the paper's focus \
            on destination tiers";
         ])

let extension_peak () =
  (* A higher elasticity makes margins thin enough that peak-load costs
     bite; at the default alpha = 1.1 the 11x markup drowns them. *)
  let m = Experiment.market ~alpha:3.0 ~spec:Market.Ced "eu_isp" in
  let shape = Flowgen.Netflow.default_shape in
  let rows =
    List.concat_map
      (fun premium ->
        List.map
          (fun (label, periods) ->
            let o = Peak.evaluate ~congestion_premium:premium m Strategy.Optimal ~n_bundles:3 periods in
            [
              Printf.sprintf "%.1f" premium;
              label;
              Report.cell_f o.Peak.single_price_profit;
              Report.cell_f o.Peak.per_period_profit;
              Report.cell_pct o.Peak.gain;
            ])
          [
            ("peak/off-peak", Array.to_list (Peak.peak_offpeak shape) |> Array.of_list);
            ("6 periods", Peak.periods_of_shape shape ~n_periods:6);
          ])
      [ 0.0; 0.5; 1.0 ]
  in
  Report.print ppf
    (Report.make
       ~title:"Extension: time-of-day pricing under peak-load delivery costs (EU ISP, alpha=3)"
       ~header:[ "cost premium"; "periods"; "single-price"; "per-period"; "gain" ]
       rows
       ~notes:
         [
           "with flat costs (premium 0) CED's scale invariance makes \
            time-of-day pricing worthless; gains appear only through \
            peak-load cost";
         ])

let extension_how_many_tiers () =
  (* The title question, answered: net profit once each tier carries an
     explicit monthly overhead (extra sessions, links, billing plumbing). *)
  let m = Experiment.market ~spec:(Market.Logit { s0 = Experiment.Defaults.s0 }) "eu_isp" in
  let headroom = Capture.headroom (Capture.context m) in
  let rows =
    List.map
      (fun share ->
        let per_tier = share *. headroom in
        let o = Tier_count.overhead ~per_tier () in
        let best = Tier_count.optimal m Strategy.Optimal o ~max_bundles:8 in
        [
          Printf.sprintf "%.0f%% of headroom" (100. *. share);
          Printf.sprintf "$%.0f" per_tier;
          string_of_int best.Tier_count.n_bundles;
          Report.cell_f best.Tier_count.net_profit;
        ])
      [ 0.001; 0.01; 0.03; 0.1; 0.3 ]
  in
  let break_even b =
    Tier_count.break_even_overhead m Strategy.Optimal ~from_bundles:b ~to_bundles:(b + 1)
  in
  Report.print ppf
    (Report.make
       ~title:"Extension: how many tiers? net-optimal tier count vs per-tier overhead (EU ISP, logit)"
       ~header:[ "per-tier overhead"; "$/month"; "optimal #tiers"; "net profit" ]
       rows
       ~notes:
         [
           Printf.sprintf
             "marginal value of the 2nd/3rd/4th tier: $%.0f / $%.0f / $%.0f per \
              month -- overhead above these caps the tier count, which is why \
              real contracts stop at 2-4 tiers"
             (break_even 1) (break_even 2) (break_even 3);
         ])

let extension_failures () =
  (* Operational robustness: when a backbone link fails, flow distances
     (and with them the cost model) shift. How many destinations would a
     distance-defined tier sheet re-classify, and what does serving the
     new distances at the stale tier prices cost? *)
  let topo = Netsim.Presets.internet2 () in
  let w = Experiment.workload "internet2" in
  let fit flows =
    Market.fit ~spec:Market.Ced ~alpha:Experiment.Defaults.alpha
      ~p0:Experiment.Defaults.p0
      ~cost_model:(Cost_model.linear ~theta:Experiment.Defaults.theta)
      flows
  in
  let baseline_flows = Dataset.of_workload w in
  let baseline = fit baseline_flows in
  let bundles = Strategy.apply Strategy.Optimal baseline ~n_bundles:3 in
  let owner = Bundle.member_of bundles ~n_flows:(Market.n_flows baseline) in
  let stale_prices = (Pricing.evaluate baseline bundles).Pricing.bundle_prices in
  let all_links = Netsim.Graph.links topo.Netsim.Topology.graph in
  let nodes = Array.to_list (Netsim.Graph.nodes topo.Netsim.Topology.graph) in
  let reroute_flows failed =
    let remaining = List.filter (fun l -> l != failed) all_links in
    match Netsim.Topology.of_nodes_links ~name:"degraded" nodes remaining with
    | exception Invalid_argument _ -> None (* bridge link: network splits *)
    | degraded ->
        let dist =
          let cache = Hashtbl.create 16 in
          fun src ->
            match Hashtbl.find_opt cache src with
            | Some d -> d
            | None ->
                let d =
                  Netsim.Graph.shortest_path_lengths degraded.Netsim.Topology.graph
                    ~src
                in
                Hashtbl.add cache src d;
                d
        in
        Some
          (Array.of_list
             (List.map
                (fun (f : Flowgen.Workload.flow) ->
                  let dst_pop =
                    Netsim.Topology.pop_by_city degraded
                      f.Flowgen.Workload.dst_city.Netsim.Cities.name
                  in
                  let base = f.Flowgen.Workload.distance_miles in
                  let old_path =
                    match
                      Netsim.Graph.path_distance_miles topo.Netsim.Topology.graph
                        ~src:f.Flowgen.Workload.entry.Netsim.Node.id
                        ~dst:dst_pop.Netsim.Node.id
                    with
                    | Some d -> d
                    | None -> 0.
                  in
                  let new_path = (dist f.Flowgen.Workload.entry.Netsim.Node.id).(dst_pop.Netsim.Node.id) in
                  (* Keep the flow's local tail, swap the backbone leg. *)
                  Flow.make ~id:f.Flowgen.Workload.id
                    ~demand_mbps:f.Flowgen.Workload.mbps
                    ~distance_miles:(Float.max 0. (base -. old_path) +. new_path)
                    ())
                w.Flowgen.Workload.flows))
  in
  let rows =
    List.filter_map
      (fun (failed : Netsim.Link.t) ->
        match reroute_flows failed with
        | None -> None
        | Some flows ->
            let degraded_market = fit flows in
            let reassigned =
              let fresh = Strategy.apply Strategy.Optimal degraded_market ~n_bundles:3 in
              let fresh_owner =
                Bundle.member_of fresh ~n_flows:(Market.n_flows degraded_market)
              in
              Array.fold_left ( + ) 0
                (Array.mapi (fun i o -> if o <> fresh_owner.(i) then 1 else 0) owner)
            in
            let stale_profit =
              (Pricing.evaluate_at_prices degraded_market bundles stale_prices)
                .Pricing.profit
            in
            let fresh_profit =
              (Pricing.evaluate degraded_market
                 (Strategy.apply Strategy.Optimal degraded_market ~n_bundles:3))
                .Pricing.profit
            in
            let a = Netsim.Graph.node topo.Netsim.Topology.graph failed.Netsim.Link.a in
            let b = Netsim.Graph.node topo.Netsim.Topology.graph failed.Netsim.Link.b in
            Some
              [
                Printf.sprintf "%s-%s" a.Netsim.Node.city.Netsim.Cities.name
                  b.Netsim.Node.city.Netsim.Cities.name;
                string_of_int reassigned;
                Report.cell_pct ((fresh_profit -. stale_profit) /. fresh_profit);
              ])
      all_links
  in
  Report.print ppf
    (Report.make
       ~title:
         "Extension: Internet2 link failures -- tier churn and the cost of stale prices"
       ~header:[ "failed link"; "flows re-tiered"; "profit left on stale sheet" ]
       rows
       ~notes:
         [
           "flows re-routed over longer paths shift cost classes; the last \
            column is the profit gap between re-optimized and stale tier \
            prices on the degraded network";
         ])

let extension_tomogravity () =
  (* Run the whole evaluation from SNMP link counters only: estimate the
     traffic matrix by tomogravity, fit the market from the estimate,
     and compare tier structure quality against ground truth. *)
  let topo = Netsim.Presets.internet2 () in
  let w = Experiment.workload "internet2" in
  let pops = Array.of_list topo.Netsim.Topology.pops in
  let n = Array.length pops in
  let index_of_node =
    let table = Hashtbl.create 16 in
    Array.iteri (fun i (p : Netsim.Node.t) -> Hashtbl.add table p.Netsim.Node.id i) pops;
    Hashtbl.find table
  in
  (* Ground-truth PoP-level demands from the workload. *)
  let truth = Array.make_matrix n n 0. in
  List.iter
    (fun (f : Flowgen.Workload.flow) ->
      let i = index_of_node f.Flowgen.Workload.entry.Netsim.Node.id in
      let dst = Netsim.Topology.pop_by_city topo f.Flowgen.Workload.dst_city.Netsim.Cities.name in
      let j = index_of_node dst.Netsim.Node.id in
      if i <> j then truth.(i).(j) <- truth.(i).(j) +. f.Flowgen.Workload.mbps)
    w.Flowgen.Workload.flows;
  let demands = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if truth.(i).(j) > 0. then demands := (i, j, truth.(i).(j)) :: !demands
    done
  done;
  let obs = Flowgen.Tomogravity.observe topo !demands in
  let estimated = Flowgen.Tomogravity.estimate topo obs in
  let quality = Flowgen.Tomogravity.compare_to_truth ~truth estimated in
  (* Fit a market from each matrix and compare capture at 3 tiers. *)
  let market_of matrix =
    let flows = ref [] in
    let id = ref 0 in
    let dist = Netsim.Topology.distance_matrix topo in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && matrix.(i).(j) > 0.01 then begin
          flows :=
            Flow.make ~id:!id ~demand_mbps:matrix.(i).(j)
              ~distance_miles:dist.(i).(j) ()
            :: !flows;
          incr id
        end
      done
    done;
    Market.fit ~spec:Market.Ced ~alpha:Experiment.Defaults.alpha
      ~p0:Experiment.Defaults.p0
      ~cost_model:(Cost_model.linear ~theta:Experiment.Defaults.theta)
      (Array.of_list (List.rev !flows))
  in
  let capture_of m = Sensitivity.capture_at m Strategy.Optimal ~n_bundles:3 in
  Report.print ppf
    (Report.make
       ~title:"Extension: evaluation from SNMP link counters only (tomogravity, Internet2)"
       ~header:[ "quantity"; "value" ]
       [
         [ "TM correlation vs truth"; Report.cell_f quality.Flowgen.Tomogravity.correlation ];
         [ "TM mean relative error"; Report.cell_pct quality.Flowgen.Tomogravity.mean_relative_error ];
         [ "capture@3 from true TM"; Report.cell_f (capture_of (market_of truth)) ];
         [ "capture@3 from estimated TM"; Report.cell_f (capture_of (market_of estimated)) ];
       ]
       ~notes:
         [
           "the capture from the estimated matrix is computed against the \
            estimated market's own headroom -- the point is that tier \
            design survives NetFlow-less measurement";
         ])

let extension_loading () =
  let w = Experiment.workload "eu_isp" in
  let report = Flowgen.Loading.of_workload w in
  Format.fprintf ppf "@.Extension: link loading of the EU ISP workload@.";
  Flowgen.Loading.pp ppf report

let run_extensions () =
  section "Extensions (beyond the paper)";
  extension_welfare ();
  extension_dynamics ();
  extension_competition ();
  extension_commit ();
  extension_peak ();
  extension_how_many_tiers ();
  extension_tomogravity ();
  extension_failures ();
  extension_loading ()

(* --- sweep: serial vs parallel grid timing -------------------------------- *)

(* Runs the full experiment grid from cold caches — once serial
   (jobs=1) and, when the host exposes more than one domain, once on
   the domain pool — asserts the rendered output is byte-identical,
   and appends the wall-clock comparison to BENCH_sweep.json so the
   perf trajectory accumulates across PRs. On a single-core host the
   parallel leg is skipped: a pool of domains multiplexed onto one
   core measures scheduler contention, not the engine, so the JSON
   carries ["speedup": null] and a ["note"] instead of a misleading
   sub-1x figure, and no speedup target is asserted. *)

let timed_grid ~jobs =
  Engine.Cache.clear_all ();
  let metrics = Engine.Metrics.create () in
  let t0 = Unix.gettimeofday () in
  let results = Runner.run_experiments ~jobs ~metrics Experiment.all in
  let wall_s = Unix.gettimeofday () -. t0 in
  (Runner.render results, wall_s, Engine.Metrics.snapshot metrics)

let run_sweep_bench () =
  section "Sweep: full experiment grid, serial vs domain pool";
  let host_domains = Domain.recommended_domain_count () in
  let n_tasks =
    List.fold_left
      (fun acc (e : Experiment.t) -> acc + List.length (e.Experiment.cells ()))
      0 Experiment.all
  in
  let serial_out, serial_s, _ = timed_grid ~jobs:1 in
  let parallel =
    if host_domains <= 1 then None
    else begin
      let parallel_jobs = max 2 (Engine.Pool.default_jobs ()) in
      let parallel_out, parallel_s, parallel_snap =
        timed_grid ~jobs:parallel_jobs
      in
      Some (parallel_jobs, parallel_out, parallel_s, parallel_snap)
    end
  in
  let identical =
    match parallel with
    | None -> true
    | Some (_, parallel_out, _, _) -> String.equal serial_out parallel_out
  in
  let rows =
    [
      [ "grid";
        Printf.sprintf "%d experiments / %d cells"
          (List.length Experiment.all) n_tasks ];
      [ "host domains"; string_of_int host_domains ];
      [ "serial (jobs=1)"; Printf.sprintf "%.3f s" serial_s ];
    ]
    @ (match parallel with
      | None ->
          [
            [ "parallel"; "skipped (single-core host)" ];
            [ "speedup"; "n/a" ];
          ]
      | Some (parallel_jobs, _, parallel_s, parallel_snap) ->
          let speedup = if parallel_s > 0. then serial_s /. parallel_s else 0. in
          [
            [ Printf.sprintf "parallel (jobs=%d)" parallel_jobs;
              Printf.sprintf "%.3f s" parallel_s ];
            [ "speedup"; Printf.sprintf "%.2fx" speedup ];
            [ "pool utilization";
              Printf.sprintf "%.1f%%"
                (100. *. parallel_snap.Engine.Metrics.utilization) ];
          ])
    @ [ [ "byte-identical output"; (if identical then "yes" else "NO") ] ]
  in
  Report.print ppf
    (Report.make ~title:"Serial vs parallel wall clock (cold caches)"
       ~header:[ "quantity"; "value" ] rows
       ~notes:
         [
           "results are keyed by task index and merged in submission order, \
            so the parallel grid must reproduce the serial bytes exactly";
         ]);
  let base =
    Json_out.
      [
        ("grid", Str "experiments");
        ("tasks", Int n_tasks);
        ("host_domains", Int host_domains);
        ("jobs_serial", Int 1);
        ("serial_s", num "%.6f" serial_s);
      ]
  in
  let rest =
    match parallel with
    | None ->
        Json_out.
          [
            ("jobs_parallel", Null);
            ("parallel_s", Null);
            ("speedup", Null);
            ("pool_utilization", Null);
            ("byte_identical", Bool true);
            ( "note",
              Str
                "single-core host: parallel leg skipped, no speedup target \
                 asserted" );
          ]
    | Some (parallel_jobs, _, parallel_s, parallel_snap) ->
        let speedup = if parallel_s > 0. then serial_s /. parallel_s else 0. in
        Json_out.
          [
            ("jobs_parallel", Int parallel_jobs);
            ("parallel_s", num "%.6f" parallel_s);
            ("speedup", num "%.4f" speedup);
            ( "pool_utilization",
              num "%.4f" parallel_snap.Engine.Metrics.utilization );
            ("byte_identical", Bool identical);
          ]
  in
  Json_out.write ppf "BENCH_sweep.json" (base @ rest);
  if not identical then
    failwith "sweep: parallel grid output diverged from the serial run"

(* --- pool: dispatch overhead per backend ----------------------------------- *)

(* Pool-aware micro-benchmark: spin-wait tasks of known duration
   (~1ms / ~10ms / ~100ms) dispatched through each execution substrate
   (serial fast path, worker domains, worker subprocesses), so the
   per-task dispatch cost of each backend is isolated from real
   workload noise. The headline number is overhead per task:
   (wall - ideal) / tasks, where ideal assumes perfect balance of the
   spin time over the workers. Subprocess dispatch pays a Marshal
   round-trip per task, so its overhead floor is the interesting
   datum: it says how coarse a grid cell must be before --backend
   procs is free. Results go to BENCH_pool.json. On a single-core
   host the multi-worker legs are skipped (they would measure
   scheduler contention, not dispatch cost). *)

let spin task_s =
  let t0 = Unix.gettimeofday () in
  (* Busy-wait: sleep would hide dispatch overhead behind the kernel
     timer slack that Unix.sleepf itself carries. *)
  while Unix.gettimeofday () -. t0 < task_s do
    ()
  done;
  0

type pool_case = {
  pc_backend : string;
  pc_jobs : int;
  pc_task_s : float;
  pc_tasks : int;
  pc_wall_s : float;
  pc_overhead_us : float;  (* dispatch overhead per task, microseconds *)
}

let run_pool_bench () =
  section "Pool: dispatch overhead per backend and task granularity";
  let host_domains = Domain.recommended_domain_count () in
  let grains = [ (0.001, 64); (0.01, 32); (0.1, 8) ] in
  let parallel_jobs = max 2 (Engine.Pool.default_jobs ()) in
  let legs =
    (* The domains leg is meaningless on a host that reports one domain
       (workers would multiplex on the submitter's core), but the procs
       and remote legs always run: worker *processes* are scheduled by
       the OS and reach real cores even when [recommended_domain_count]
       under-reports. The remote leg spawns 2 loopback TCP workers, so
       its row prices the socket round-trip on top of the Marshal cost
       the procs row isolates. *)
    (("serial", Engine.Pool.Domains, 1)
     ::
     (if host_domains <= 1 then []
      else [ ("domains", Engine.Pool.Domains, parallel_jobs) ]))
    @ [ ("procs", Engine.Pool.Procs, parallel_jobs);
        ("remote", Engine.Pool.Remote, 2) ]
  in
  let cases =
    List.concat_map
      (fun (label, backend, jobs) ->
        Engine.Pool.with_pool ~backend ~jobs (fun pool ->
            (* Report the backend actually used: a procs or remote
               request can degrade to domains on hosts where fork/exec
               (or loopback sockets) fail. *)
            let label =
              if
                (String.equal label "procs" || String.equal label "remote")
                && Engine.Pool.backend pool = Engine.Pool.Domains
              then label ^ "(degraded:domains)"
              else label
            in
            List.map
              (fun (task_s, tasks) ->
                (* One warm-up map so worker spawn / first-dispatch costs
                   don't pollute the steady-state figure. *)
                ignore (Engine.Pool.map pool spin (Array.make jobs 0.0001));
                let inputs = Array.make tasks task_s in
                let t0 = Unix.gettimeofday () in
                ignore (Engine.Pool.map pool spin inputs);
                let wall_s = Unix.gettimeofday () -. t0 in
                let ideal_s =
                  task_s
                  *. float_of_int ((tasks + jobs - 1) / jobs)
                in
                {
                  pc_backend = label;
                  pc_jobs = jobs;
                  pc_task_s = task_s;
                  pc_tasks = tasks;
                  pc_wall_s = wall_s;
                  pc_overhead_us =
                    1e6 *. Float.max 0. (wall_s -. ideal_s)
                    /. float_of_int tasks;
                })
              grains))
      legs
  in
  Report.print ppf
    (Report.make
       ~title:
         (Printf.sprintf
            "Per-task dispatch overhead by backend (host domains: %d)"
            host_domains)
       ~header:[ "backend"; "jobs"; "task"; "tasks"; "wall (s)"; "overhead/task" ]
       (List.map
          (fun c ->
            [
              c.pc_backend;
              string_of_int c.pc_jobs;
              Printf.sprintf "%.0f ms" (1000. *. c.pc_task_s);
              string_of_int c.pc_tasks;
              Printf.sprintf "%.3f" c.pc_wall_s;
              Printf.sprintf "%.0f us" c.pc_overhead_us;
            ])
          cases)
       ~notes:
         [
           "overhead = (wall - ideal) / tasks with ideal assuming perfect \
            balance; the procs row prices the per-task Marshal round-trip";
         ]);
  Json_out.(
    write ppf "BENCH_pool.json"
      [
        ("grid", Str "pool-dispatch");
        ("host_domains", Int host_domains);
        ( "cases",
          Arr
            (List.map
               (fun c ->
                 Obj
                   [
                     ("backend", Str c.pc_backend);
                     ("jobs", Int c.pc_jobs);
                     ("task_s", num "%g" c.pc_task_s);
                     ("tasks", Int c.pc_tasks);
                     ("wall_s", num "%.6f" c.pc_wall_s);
                     ("overhead_us_per_task", num "%.3f" c.pc_overhead_us);
                   ])
               cases) );
      ])

(* --- dp: tier-DP kernel, quadratic vs divide-and-conquer ------------------- *)

(* Times [Numerics.Segdp.solve] (the region-wise D&C / SMAWK /
   quadratic-backstop ladder) against [Numerics.Segdp.solve_quadratic]
   (the exact O(B n^2) reference) on the exact (seg_value, regions) the
   Optimal strategy runs ([Strategy.dp_inputs]), across demand specs
   and synthetic market sizes built from the eu_isp calibration via the
   Workload scale suffix (eu_isp@N). Every cell is checked against the
   reference — the run aborts otherwise: cells up to [--dp-max-exact]
   flows run the full quadratic leg; larger cells re-solve up to 64
   deterministically sampled columns of every retained layer with exact
   scans ([Segdp.verify_columns], untimed), so no cell ships unchecked.
   The run also aborts if any cell needed a quadratic-backstop layer:
   the default grid is certified fast-path-only, and a regression
   reintroducing the O(n^2) cliff fails CI here rather than surfacing
   in a later full-size run. *)

type dp_case = {
  dc_spec : string;
  dc_n : int;
  dc_bundles : int;
  dc_fast_s : float;
  dc_fast_evals : int;
  dc_smawk_layers : int;
  dc_fallback_layers : int;
  dc_regions : int;
  dc_quad_s : float option;
  dc_quad_evals : int option;
  dc_speedup : float option;
  dc_check : string;
  dc_cuts_identical : bool;
}

(* Wall-clock one run; re-run small cases until ~0.2 s total so the
   per-solve figure is not timer noise. *)
let dp_time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  if dt >= 0.2 then (r, dt)
  else begin
    let reps = max 1 (int_of_float (Float.ceil (0.2 /. Float.max 1e-6 dt))) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    let total = dt +. (Unix.gettimeofday () -. t0) in
    (r, total /. float_of_int (reps + 1))
  end

let run_dp_bench ~sizes ~bundle_counts ~max_exact () =
  section "DP: tier-partition kernel, quadratic vs divide-and-conquer";
  let specs =
    [
      ("ced", Market.Ced);
      ("logit", Market.Logit { s0 = Experiment.Defaults.s0 });
      ("linear", Market.Linear { epsilon = 1.8 });
    ]
  in
  let cases =
    List.concat_map
      (fun (spec_name, spec) ->
        List.concat_map
          (fun n ->
            let m = Experiment.market ~spec (Printf.sprintf "eu_isp@%d" n) in
            let n = Market.n_flows m in
            let _order, seg_value, regions = Strategy.dp_inputs m in
            List.map
              (fun b ->
                Format.fprintf ppf "  %s n=%d B=%d...@?" spec_name n b;
                let fast, fast_s =
                  dp_time (fun () ->
                      Numerics.Segdp.solve ~regions ~n ~n_bundles:b seg_value)
                in
                let quad =
                  if n > max_exact then None
                  else
                    Some
                      (dp_time (fun () ->
                           Numerics.Segdp.solve_quadratic ~n ~n_bundles:b seg_value))
                in
                let check, cuts_identical =
                  match quad with
                  | Some ((q : Numerics.Segdp.result), _) ->
                      ( "exact",
                        q.Numerics.Segdp.cuts = fast.Numerics.Segdp.cuts
                        && Float.equal q.Numerics.Segdp.value
                             fast.Numerics.Segdp.value )
                  | None ->
                      (* Too big for the full quadratic leg: re-solve the
                         same instance into a retained state and check up
                         to 64 sampled columns of every layer with exact
                         scans, bit-for-bit (untimed). *)
                      let from_state, st =
                        Numerics.Segdp.solve_with_state ~regions ~n
                          ~n_bundles:b seg_value
                      in
                      ( "sampled-columns",
                        from_state.Numerics.Segdp.cuts
                        = fast.Numerics.Segdp.cuts
                        && Float.equal from_state.Numerics.Segdp.value
                             fast.Numerics.Segdp.value
                        && Numerics.Segdp.verify_columns ~samples:64 st
                             seg_value )
                in
                if not cuts_identical then
                  failwith
                    (Printf.sprintf
                       "bench dp: fast-path cuts diverged from the exact \
                        reference (%s, n=%d, B=%d, check=%s)"
                       spec_name n b check);
                if fast.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers > 0
                then
                  failwith
                    (Printf.sprintf
                       "bench dp: quadratic-backstop layer on the default \
                        grid (%s, n=%d, B=%d) — the fast rungs regressed"
                       spec_name n b);
                let speedup =
                  Option.map (fun (_, quad_s) -> quad_s /. fast_s) quad
                in
                Format.fprintf ppf " %.4fs fast%s@." fast_s
                  (match quad with
                  | None -> ", quadratic skipped"
                  | Some (_, quad_s) -> Printf.sprintf ", %.4fs quadratic" quad_s);
                {
                  dc_spec = spec_name;
                  dc_n = n;
                  dc_bundles = b;
                  dc_fast_s = fast_s;
                  dc_fast_evals = fast.Numerics.Segdp.stats.Numerics.Segdp.evaluations;
                  dc_smawk_layers =
                    fast.Numerics.Segdp.stats.Numerics.Segdp.smawk_layers;
                  dc_fallback_layers =
                    fast.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers;
                  dc_regions = fast.Numerics.Segdp.stats.Numerics.Segdp.regions;
                  dc_quad_s = Option.map snd quad;
                  dc_quad_evals =
                    Option.map
                      (fun ((q : Numerics.Segdp.result), _) ->
                        q.Numerics.Segdp.stats.Numerics.Segdp.evaluations)
                      quad;
                  dc_speedup = speedup;
                  dc_check = check;
                  dc_cuts_identical = cuts_identical;
                })
              bundle_counts)
          sizes)
      specs
  in
  let opt_cell f = function None -> "-" | Some v -> f v in
  Report.print ppf
    (Report.make
       ~title:
         (Printf.sprintf
            "Tier-DP kernel wall clock (eu_isp@@N synthetic markets, exact leg \
             up to n=%d)"
            max_exact)
       ~header:
         [ "demand"; "n"; "B"; "fast (s)"; "evals"; "smawk"; "backstop";
           "quadratic (s)"; "speedup"; "check"; "cuts =" ]
       (List.map
          (fun c ->
            [
              c.dc_spec;
              string_of_int c.dc_n;
              string_of_int c.dc_bundles;
              Printf.sprintf "%.4f" c.dc_fast_s;
              string_of_int c.dc_fast_evals;
              string_of_int c.dc_smawk_layers;
              string_of_int c.dc_fallback_layers;
              opt_cell (Printf.sprintf "%.4f") c.dc_quad_s;
              opt_cell (Printf.sprintf "%.1fx") c.dc_speedup;
              c.dc_check;
              (if c.dc_cuts_identical then "yes" else "NO");
            ])
          cases)
       ~notes:
         [
           "both solvers run the (seg_value, regions) of Strategy.dp_inputs; \
            every cell is checked against the exact reference (full \
            quadratic leg up to max_exact_n, 64 sampled columns per layer \
            above) and must finish without quadratic-backstop layers";
         ]);
  Json_out.(
    write ppf "BENCH_dp.json"
      [
        ("grid", Str "tier-dp");
        ("workload", Str "eu_isp@N (scale suffix over the eu_isp calibration)");
        ("max_exact_n", Int max_exact);
        ( "cases",
          Arr
            (List.map
               (fun c ->
                 Obj
                   [
                     ("spec", Str c.dc_spec);
                     ("n", Int c.dc_n);
                     ("bundles", Int c.dc_bundles);
                     ("fast_s", num "%.6f" c.dc_fast_s);
                     ("fast_evals", Int c.dc_fast_evals);
                     ("smawk_layers", Int c.dc_smawk_layers);
                     ("fallback_layers", Int c.dc_fallback_layers);
                     ("regions", Int c.dc_regions);
                     ("quadratic_s", opt (num "%.6f") c.dc_quad_s);
                     ("quadratic_evals", opt (fun v -> Int v) c.dc_quad_evals);
                     ("speedup", opt (num "%.4f") c.dc_speedup);
                     ("check", Str c.dc_check);
                     ("cuts_identical", Bool c.dc_cuts_identical);
                   ])
               cases) );
      ])

(* --- serve: streaming ingest + incremental re-tiering ---------------------- *)

(* The streaming service under load, end to end from the wire: a
   NetFlow stream synthesized from the eu_isp calibration (scale
   suffix, [days] days of duplicated per-router records, with a churn
   cohort of flows absent on odd days so windows see genuine arrivals
   and departures) is encoded to a binary NetFlow v5/IPFIX file, then
   replayed through the framed reader into the sharded daemon — per-
   shard streaming dedup + sliding 24h windows, deterministic merge,
   re-tier every [every_s] stream seconds. Two legs run on the same
   file: [--serve-shards] shards on a domain pool, and an unsharded
   golden leg; posted tiers must be bitwise-identical between them.
   The sharded leg's windows are then re-verified cut-for-cut against
   from-scratch solves, and the solve mix is pinned: arrivals and
   departures must warm-start, so cold solves number exactly
   1 + (actual solves / cold_every) — the first window plus the drill.
   Any violation fails the bench like a sweep divergence would.
   BENCH_serve.json records throughput, latency histogram, shard
   equality, wire counters and steady-state RSS. *)

let rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:"
                then
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d" (fun kb -> Some (float_of_int kb /. 1024.))
                else go ()
          in
          go ())

let run_serve_bench ~flows ~days ~every_s ~shards () =
  section "Streaming serve: wire ingest throughput and re-tier latency";
  let host_domains = Domain.recommended_domain_count () in
  (* The multi-shard leg drains shards on a domain pool; on a host that
     reports a single domain it would only measure multiplexing on the
     submitter's core, so it is skipped (the golden-equality leg then
     trivially compares the 1-shard run against itself) and the JSON
     says why instead of shipping a meaningless speedup. *)
  let requested_shards = shards in
  let shards = if host_domains <= 1 then 1 else shards in
  let name = Printf.sprintf "eu_isp@%d" flows in
  let w = Flowgen.Workload.preset name in
  let bin_s = 3600 and bins = 24 in
  let wp = { Serve.Window.bin_s; bins; decay = Serve.Window.No_decay } in
  let make_retier () =
    Serve.Retier.create
      {
        Serve.Retier.spec = Market.Ced;
        alpha = 2.0;
        p0 = 30.;
        n_bundles = 4;
        cost_model = Cost_model.concave ~theta:0.5;
        samples = 8;
        cold_every = 24;  (* one forced divergence drill per stream day *)
        use_cache = false;
      }
      ~meta_of:(Serve.Retier.meta_of_workload w)
  in
  (* One synthesized day, emission-stable sort by first_s (the wire file
     must honor the daemon's nondecreasing-first_s contract). *)
  let template =
    let rng = Numerics.Rng.create 11 in
    List.stable_sort
      (fun (a : Flowgen.Netflow.record) b ->
        Int.compare a.Flowgen.Netflow.first_s b.Flowgen.Netflow.first_s)
      (Flowgen.Netflow.synthesize ~rng (Flowgen.Workload.to_ground_truth w))
  in
  (* Churn cohort: every 11th flow id is dark on odd days, so day
     boundaries produce windows whose flow *set* changes — the
     structural-delta path — while the rest of each day exercises
     plain suffix-dirty warm starts. *)
  let churn = Hashtbl.create 256 in
  List.iter
    (fun (f : Flowgen.Workload.flow) ->
      if f.Flowgen.Workload.id mod 11 = 0 then
        Hashtbl.replace churn
          ( Flowgen.Ipv4.to_int f.Flowgen.Workload.src_addr,
            Flowgen.Ipv4.to_int f.Flowgen.Workload.dst_addr )
          ())
    w.Flowgen.Workload.flows;
  let stream =
    List.concat_map
      (fun day ->
        let shift = day * Flowgen.Netflow.day_seconds in
        List.filter_map
          (fun (r : Flowgen.Netflow.record) ->
            let dark =
              day mod 2 = 1
              && Hashtbl.mem churn
                   ( Flowgen.Ipv4.to_int r.Flowgen.Netflow.src,
                     Flowgen.Ipv4.to_int r.Flowgen.Netflow.dst )
            in
            if dark then None
            else
              Some
                {
                  r with
                  Flowgen.Netflow.first_s = r.Flowgen.Netflow.first_s + shift;
                  last_s = r.Flowgen.Netflow.last_s + shift;
                })
          template)
      (List.init days Fun.id)
  in
  let wire_file = Filename.temp_file "tiered_bench_serve" ".nf" in
  Flowgen.Netflow.Wire.write_file wire_file stream;
  let wire_bytes = (Unix.stat wire_file).Unix.st_size in
  Format.fprintf ppf "wire file: %d records, %.1f MB@." (List.length stream)
    (float_of_int wire_bytes /. 1e6);
  let run_leg ~shards ~pool =
    let shard_state =
      Serve.Shards.create ~expected:flows ~shards ~dedup:true wp
    in
    let retier = make_retier () in
    let ic = open_in_bin wire_file in
    let posted = ref [] in
    let result =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Serve.Daemon.run
            ~on_retier:(fun snap o -> posted := (snap, o) :: !posted)
            ~clock:(Serve.Clock.of_fn Unix.gettimeofday)
            ?pool ~shards:shard_state ~retier
            { Serve.Daemon.every_s }
            (Serve.Ingest.of_reader (Flowgen.Netflow.Wire.of_channel ic)))
    in
    (result, List.rev !posted, retier)
  in
  let result, posted, retier =
    if shards > 1 then
      Engine.Pool.with_pool ~jobs:shards (fun pool ->
          run_leg ~shards ~pool:(Some pool))
    else run_leg ~shards ~pool:None
  in
  let rss = rss_mb () in
  let result1, posted1, _ = run_leg ~shards:1 ~pool:None in
  Sys.remove wire_file;
  let s = result.Serve.Daemon.r_stats in
  let run = result.Serve.Daemon.r_run in
  let outcome_matches (o : Serve.Retier.outcome) (c : Serve.Retier.outcome) =
    List.equal Int.equal o.Serve.Retier.o_cuts c.Serve.Retier.o_cuts
    && Array.length o.Serve.Retier.o_prices
       = Array.length c.Serve.Retier.o_prices
    && Array.for_all2 Float.equal o.Serve.Retier.o_prices
         c.Serve.Retier.o_prices
    && Float.equal o.Serve.Retier.o_profit c.Serve.Retier.o_profit
  in
  (* Golden leg: the sharded run's posted tiers must match the 1-shard
     run's bitwise, window for window. *)
  let shards_identical =
    List.length posted = List.length posted1
    && List.for_all2 (fun (_, o) (_, o1) -> outcome_matches o o1) posted
         posted1
  in
  let verified =
    List.for_all
      (fun (snap, o) -> outcome_matches o (Serve.Retier.solve_cold retier snap))
      posted
  in
  (* Arrival/departure-only windows must warm-start: cold solves are
     exactly the first window plus the cold_every drills (the drill
     fires on every 24th actual solve; solve #1 is the ordinary cold
     start, never a drill). *)
  let actual_solves = s.Serve.Stats.warm + s.Serve.Stats.cold in
  let cold_expected = 1 + (actual_solves / 24) in
  let drills_only = s.Serve.Stats.cold = cold_expected in
  (* Shard speedup: 1-shard ingest wall over the sharded leg's. Only
     meaningful when the sharded leg actually ran on >1 shard. *)
  let shard_speedup =
    if shards > 1 && run.Serve.Stats.wall_s > 0. then
      Some (result1.Serve.Daemon.r_run.Serve.Stats.wall_s /. run.Serve.Stats.wall_s)
    else None
  in
  Report.print ppf (Serve.Stats.report s run);
  Format.fprintf ppf "windows verified against cold solve: %d (%s)@."
    s.Serve.Stats.retiers
    (if verified then "cut-for-cut identical" else "DIVERGED");
  Format.fprintf ppf "%d-shard vs 1-shard posted tiers: %s@." shards
    (if shards_identical then "bitwise identical" else "DIVERGED");
  Format.fprintf ppf "cold solves: %d (expected %d = 1 + drills)@."
    s.Serve.Stats.cold cold_expected;
  Json_out.(
    write ppf "BENCH_serve.json"
      [
        ("grid", Str "serve");
        ("workload", Str name);
        ("days", Int days);
        ("every_s", Int every_s);
        ("bin_s", Int bin_s);
        ("bins", Int bins);
        ("flows", Int result.Serve.Daemon.r_flows);
        ("host_domains", Int host_domains);
        ("shards", Int shards);
        ("requested_shards", Int requested_shards);
        ("shard_speedup", opt (num "%.3f") shard_speedup);
        ( "shard_note",
          Str
            (if shards = requested_shards then
               "multi-shard leg drained on a domain pool"
             else
               "host reports a single domain: multi-shard leg skipped, \
                speedup not measurable") );
        ("wire_bytes", Int wire_bytes);
        ("seq_gaps", Int run.Serve.Stats.seq_gaps);
        ("malformed", Int run.Serve.Stats.malformed);
        ("rss_mb", opt (num "%.1f") rss);
        ("daemon", Raw (Serve.Stats.to_json s run));
        ( "daemon_1shard",
          Raw
            (Serve.Stats.to_json result1.Serve.Daemon.r_stats
               result1.Serve.Daemon.r_run) );
        ("windows_verified", Int s.Serve.Stats.retiers);
        ("warm_equals_cold", Bool verified);
        ("shards_identical", Bool shards_identical);
        ("cold_only_drills", Bool drills_only);
      ]);
  if not verified then
    failwith "serve: warm-started tiers diverged from the cold solve";
  if not shards_identical then
    failwith "serve: sharded posted tiers diverged from the 1-shard run";
  if not drills_only then
    failwith "serve: flow churn forced cold solves outside the drill cadence"

(* --- micro-benchmarks ----------------------------------------------------- *)

let run_micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let ced = Experiment.market ~spec:Market.Ced "eu_isp" in
  let logit = Experiment.market ~spec:(Market.Logit { s0 = Experiment.Defaults.s0 }) "eu_isp" in
  let topo = Netsim.Presets.eu_isp () in
  let strategy_bench name m =
    List.map
      (fun s ->
        Test.make
          ~name:(Printf.sprintf "%s %s B=4" name (Strategy.name s))
          (Staged.stage (fun () -> ignore (Strategy.apply s m ~n_bundles:4))))
      [ Strategy.Optimal; Strategy.Profit_weighted; Strategy.Cost_division ]
  in
  let tests =
    Test.make_grouped ~name:"tiered-pricing"
      [
        Test.make_grouped ~name:"strategies (600 flows)"
          (strategy_bench "ced" ced @ strategy_bench "logit" logit);
        Test.make_grouped ~name:"pricing"
          [
            Test.make ~name:"ced evaluate B=4"
              (Staged.stage
                 (let b = Strategy.apply Strategy.Optimal ced ~n_bundles:4 in
                  fun () -> ignore (Pricing.evaluate ced b)));
            Test.make ~name:"logit evaluate B=4"
              (Staged.stage
                 (let b = Strategy.apply Strategy.Optimal logit ~n_bundles:4 in
                  fun () -> ignore (Pricing.evaluate logit b)));
            Test.make ~name:"logit margin solve"
              (Staged.stage (fun () ->
                   ignore (Logit.optimal_margin ~alpha:1.1 ~ln_s:25.)));
          ];
        Test.make_grouped ~name:"substrates"
          [
            Test.make ~name:"dijkstra (eu_isp)"
              (Staged.stage (fun () ->
                   ignore
                     (Netsim.Graph.shortest_path_lengths topo.Netsim.Topology.graph
                        ~src:0)));
            Test.make ~name:"market fit (600 flows)"
              (Staged.stage
                 (let flows = Dataset.of_workload (Experiment.workload "eu_isp") in
                  fun () ->
                    ignore
                      (Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
                         ~cost_model:(Cost_model.linear ~theta:0.2) flows)));
          ];
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun instance ->
      let results = Analyze.all ols instance raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          let cell =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.sprintf "%.1f" est
            | Some _ | None -> "-"
          in
          rows := [ name; cell ] :: !rows)
        results;
      Report.print ppf
        (Report.make ~title:"Wall-clock cost of the core algorithms"
           ~header:[ "benchmark"; "ns/run" ]
           (List.sort compare !rows)))
    instances

(* --- driver ---------------------------------------------------------------- *)

let () =
  (* Must come first: when this executable is re-invoked as an engine
     worker subprocess (--backend=procs / the pool section) or a
     loopback fleet child (the remote leg), serve tasks and exit
     before any driver logic runs. *)
  Engine.Proc.maybe_run_worker ();
  Engine.Remote.maybe_run_worker ();
  let raw_args = List.tl (Array.to_list Sys.argv) in
  (* Flags mirror tiered-cli: [--cache] turns on the content-addressed
     disk tier under _cas/, [--cache-max-bytes=N] additionally bounds
     it (implying [--cache]), [--backend=procs] / [--backend=remote]
     run the experiments section on worker subprocesses / a loopback
     TCP fleet. Everything else selects sections or experiment ids. *)
  let cache_max_bytes =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--cache-max-bytes" ->
            int_of_string_opt
              (String.sub a (i + 1) (String.length a - i - 1))
        | _ -> acc)
      None raw_args
  in
  (* dp-section knobs: --dp-sizes=1000,10000 --dp-bundles=3,10
     --dp-max-exact=50000 (the CI smoke shrinks all three). *)
  let flag_value name =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = name ->
            Some (String.sub a (i + 1) (String.length a - i - 1))
        | _ -> acc)
      None raw_args
  in
  let int_list_flag name default =
    match flag_value name with
    | None -> default
    | Some v ->
        let parts = String.split_on_char ',' v in
        let ints = List.filter_map int_of_string_opt parts in
        if List.length ints <> List.length parts || ints = [] then
          failwith (name ^ ": expected a comma-separated list of ints")
        else ints
  in
  let int_flag name default =
    match flag_value name with
    | None -> default
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> failwith (name ^ ": expected an int"))
  in
  let dp_sizes = int_list_flag "--dp-sizes" [ 1_000; 10_000; 50_000; 200_000 ] in
  let dp_bundles = int_list_flag "--dp-bundles" [ 3; 10 ] in
  let dp_max_exact = int_flag "--dp-max-exact" 50_000 in
  (* serve-section knobs: --serve-flows=N (eu_isp@N), --serve-days=D,
     --serve-every=S, --serve-shards=K (the CI smoke shrinks the first
     two; the shard count is still >= 2 there so the golden-equality
     leg always runs). *)
  let serve_flows = int_flag "--serve-flows" 2_000 in
  let serve_days = int_flag "--serve-days" 6 in
  let serve_every = int_flag "--serve-every" 3_600 in
  let serve_shards = int_flag "--serve-shards" 2 in
  let use_cache = List.mem "--cache" raw_args || cache_max_bytes <> None in
  if use_cache then
    Engine.Cache.enable_disk ?max_bytes:cache_max_bytes ~dir:"_cas" ();
  let backend =
    if List.mem "--backend=procs" raw_args then Engine.Pool.Procs
    else if List.mem "--backend=remote" raw_args then Engine.Pool.Remote
    else Engine.Pool.Domains
  in
  let args =
    List.filter
      (fun a -> String.length a < 2 || String.sub a 0 2 <> "--")
      raw_args
  in
  let want name = args = [] || List.mem name args in
  let experiment_filter = List.filter (fun a -> List.mem a (Experiment.ids ())) args in
  if experiment_filter <> [] then
    List.iter (fun id -> run_experiment (Experiment.find id)) experiment_filter
  else begin
    if want "experiments" then run_experiments ~backend ();
    if want "fig2" then run_fig2 ();
    if want "fig17" then run_fig17 ();
    if want "ablations" then run_ablations ();
    if want "extensions" then run_extensions ();
    if want "sweep" then run_sweep_bench ();
    if want "pool" then run_pool_bench ();
    if want "dp" then
      run_dp_bench ~sizes:dp_sizes ~bundle_counts:dp_bundles
        ~max_exact:dp_max_exact ();
    if want "serve" then
      run_serve_bench ~flows:serve_flows ~days:serve_days
        ~every_s:serve_every ~shards:serve_shards ();
    if want "micro" then run_micro ()
  end;
  Format.fprintf ppf "@."
