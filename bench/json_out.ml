(* One JSON writer for every BENCH_*.json the bench emits.  The
   sections used to carry their own Printf templates, copy-pasted and
   drifting; keeping the serialization here means a section only
   describes its fields.  Numeric formatting stays with the caller
   ([num] takes the printf format) so each file keeps the precision its
   consumers expect. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Num of string  (* preformatted numeric literal *)
  | Raw of string  (* pre-serialized JSON, embedded verbatim *)
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

let num fmt v = Num (Printf.sprintf fmt v)
let opt f = function None -> Null | Some v -> f v

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec inline = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Num s | Raw s -> s
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Arr vs -> "[" ^ String.concat ", " (List.map inline vs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (inline v))
             fields)
      ^ "}"

(* Top level: one key per line; a non-empty array gets one element per
   line, matching the layout the hand-written files always had. *)
let render fields =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  let n = List.length fields in
  List.iteri
    (fun i (k, v) ->
      let sep = if i = n - 1 then "" else "," in
      match v with
      | Arr (_ :: _ as vs) ->
          Buffer.add_string buf (Printf.sprintf "  \"%s\": [\n" k);
          let m = List.length vs in
          List.iteri
            (fun j e ->
              Buffer.add_string buf
                (Printf.sprintf "    %s%s\n" (inline e)
                   (if j = m - 1 then "" else ",")))
            vs;
          Buffer.add_string buf (Printf.sprintf "  ]%s\n" sep)
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\": %s%s\n" k (inline v) sep))
    fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ppf file fields =
  let oc = open_out file in
  output_string oc (render fields);
  close_out oc;
  Format.fprintf ppf "@.wrote %s@." file
