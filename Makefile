# Convenience wrappers around dune. `make bench-json` regenerates
# BENCH_sweep.json (serial-vs-parallel timings of the full experiment
# grid) so the perf trajectory accumulates across PRs.

.PHONY: all build test bench bench-json smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- sweep

smoke:
	dune exec bin/tiered_cli.exe -- run table1 --jobs 2 --metrics

clean:
	dune clean
	rm -rf _cache
