# Convenience wrappers around dune. `make bench-json` regenerates
# BENCH_sweep.json (serial-vs-parallel timings of the full experiment
# grid), `make bench-pool` regenerates BENCH_pool.json (per-backend
# task-dispatch overhead at 1/10/100 ms granularity), and `make
# bench-dp` regenerates BENCH_dp.json (tier-DP kernel: certified
# ladder vs exact quadratic across demand specs and market sizes —
# the n=50k exact legs make this the slow one; `make bench-dp-smoke`
# is the CI variant, which still covers n=200k via the sampled-column
# check), and `make bench-serve` regenerates
# BENCH_serve.json (streaming daemon, end to end from the wire: a
# churned multi-day stream is encoded to a binary NetFlow v5/IPFIX
# file and replayed through the sharded daemon; ingest throughput,
# re-tier latency and steady-state RSS are recorded, every posted
# window is re-verified against a from-scratch solve, the sharded leg
# must be bitwise identical to a 1-shard golden run, and
# arrival/departure windows must warm-start; `make bench-serve-smoke`
# is the small CI variant) so the
# perf trajectory accumulates across PRs. `make golden-regen` re-renders every registry
# experiment and promotes the result into test/golden/ — run it (and
# commit the diff) after an intentional output change.

.PHONY: all build test test-segdp bench bench-json bench-pool bench-dp bench-dp-smoke bench-serve bench-serve-smoke golden-regen smoke smoke-procs lint lint-typed lint-baseline effects-regen clean

all: build

build:
	dune build

test:
	dune runtest

# Just the tier-DP kernel suites (unit + hostile corpus + properties):
# the fast loop while working on lib/numerics/segdp.ml.
test-segdp:
	dune build test/test_main.exe
	./_build/default/test/test_main.exe test 'numerics.segdp'

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- sweep

bench-pool:
	dune exec bench/main.exe -- pool

bench-dp:
	dune exec bench/main.exe -- dp

bench-dp-smoke:
	dune exec bench/main.exe -- dp --dp-sizes=1000,4000,200000 --dp-max-exact=4000

bench-serve:
	dune exec bench/main.exe -- serve

bench-serve-smoke:
	dune exec bench/main.exe -- serve --serve-flows=300 --serve-days=2

# Rewrite test/golden/*.expected from the current code. The second
# pass re-checks the diffs so a failed promote cannot pass silently.
golden-regen:
	dune build @golden --auto-promote || true
	dune build @golden

# tiered-lint: the determinism/hygiene static-analysis pass (rule
# catalog: `dune exec bin/lint.exe -- --list-rules`; DESIGN.md §10).
# `make lint` runs BOTH engines — the textual AST rules and, because
# the tree is built first, the typed interprocedural pass (T001-T003)
# over the lib/ cmt artifacts — and fails on any finding that is
# neither inline-suppressed nor grandfathered in lint/baseline.json.
# It leaves the JSON report at lint-report.json and a SARIF 2.1.0
# twin at lint-report.sarif; `dune build @lint` is the dune-tracked
# equivalent (it also diffs the effects golden).  `make lint-typed`
# runs just the typed pass plus the effects-golden diff; `make
# effects-regen` re-derives lint/effects.golden.json after an
# intentional interface change (the second pass re-checks the diff).
# `make lint-baseline` regenerates the baseline from the current
# findings (target state: empty).
lint:
	dune build
	./_build/default/bin/lint.exe --root . --baseline lint/baseline.json \
	  --json lint-report.json --sarif lint-report.sarif lib bin bench test

lint-typed:
	dune build @lint-typed
	./_build/default/bin/lint.exe --root . --baseline lint/baseline.json \
	  --typed-only

effects-regen:
	dune build @lint-typed --auto-promote || true
	dune build @lint-typed

lint-baseline:
	dune build
	./_build/default/bin/lint.exe --root . --baseline lint/baseline.json \
	  --write-baseline lib bin bench test

smoke:
	dune exec bin/tiered_cli.exe -- run table1 --jobs 2 --metrics

smoke-procs:
	dune exec bin/tiered_cli.exe -- run table1 --backend procs --jobs 2 --metrics

clean:
	dune clean
	rm -rf _cache _cas
