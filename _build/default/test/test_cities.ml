open Netsim

let test_gazetteer_size () =
  Alcotest.(check bool) "at least 80 cities" true (List.length Cities.all >= 80)

let test_find () =
  let c = Cities.find "Frankfurt" in
  Alcotest.(check string) "country" "DE" c.Cities.country;
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Cities.find "Atlantis"))

let test_unique_names () =
  let names = List.map (fun c -> c.Cities.name) Cities.all in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_valid_coordinates () =
  List.iter
    (fun c ->
      let { Geo.lat; lon } = c.Cities.coord in
      if lat < -90. || lat > 90. || lon < -180. || lon > 180. then
        Alcotest.failf "%s has invalid coordinates" c.Cities.name)
    Cities.all

let test_positive_population () =
  List.iter
    (fun c ->
      if c.Cities.population <= 0. then
        Alcotest.failf "%s has non-positive population" c.Cities.name)
    Cities.all

let test_continent_filter () =
  let europe = Cities.in_continent Cities.Europe in
  Alcotest.(check bool) "many European cities" true (List.length europe >= 30);
  List.iter
    (fun c ->
      if c.Cities.continent <> Cities.Europe then
        Alcotest.failf "%s leaked into Europe" c.Cities.name)
    europe

let test_country_filter () =
  let de = Cities.in_country "DE" in
  Alcotest.(check int) "German cities" 5 (List.length de)

let test_nearest () =
  (* A point in the English Channel is closest to London or Paris-side
     cities; a point at Frankfurt's exact coordinates must return
     Frankfurt. *)
  let frankfurt = Cities.find "Frankfurt" in
  let found = Cities.nearest frankfurt.Cities.coord in
  Alcotest.(check string) "exact match" "Frankfurt" found.Cities.name

let test_same_city_country () =
  let berlin = Cities.find "Berlin" and munich = Cities.find "Munich" in
  Alcotest.(check bool) "same city" true (Cities.same_city berlin berlin);
  Alcotest.(check bool) "not same city" false (Cities.same_city berlin munich);
  Alcotest.(check bool) "same country" true (Cities.same_country berlin munich)

let test_us_research_cities_present () =
  (* The Internet2 preset depends on these. *)
  List.iter
    (fun name -> ignore (Cities.find name))
    [
      "Seattle"; "Sunnyvale"; "Los Angeles"; "Denver"; "Kansas City"; "Houston";
      "Chicago"; "Indianapolis"; "Atlanta"; "Washington"; "New York";
    ]

let suite =
  [
    Alcotest.test_case "gazetteer size" `Quick test_gazetteer_size;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "valid coordinates" `Quick test_valid_coordinates;
    Alcotest.test_case "positive population" `Quick test_positive_population;
    Alcotest.test_case "continent filter" `Quick test_continent_filter;
    Alcotest.test_case "country filter" `Quick test_country_filter;
    Alcotest.test_case "nearest" `Quick test_nearest;
    Alcotest.test_case "same city/country" `Quick test_same_city_country;
    Alcotest.test_case "Internet2 cities present" `Quick test_us_research_cities_present;
  ]
