open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_coefficients_recover_observation () =
  let epsilon = 2. and p0 = 20. and q = 50. in
  let a, b = Lin.coefficients ~epsilon ~p0 ~q in
  checkf 1e-9 "demand at p0 is q" q (Lin.demand ~a ~b p0);
  (* Point elasticity at p0: b p0 / q = epsilon. *)
  checkf 1e-9 "elasticity" epsilon (b *. p0 /. q)

let test_epsilon_validation () =
  Alcotest.check_raises "epsilon 1" (Invalid_argument "Lin: epsilon must be > 1")
    (fun () -> Lin.check_epsilon 1.)

let test_demand_clamps () =
  checkf 0. "negative region" 0. (Lin.demand ~a:10. ~b:2. 6.)

let test_optimal_price_maximizes () =
  let a = 10. and b = 2. and c = 1.5 in
  let p_star = Lin.optimal_price ~a ~b ~c in
  let best = Lin.flow_profit ~a ~b ~c p_star in
  List.iter
    (fun p ->
      if Lin.flow_profit ~a ~b ~c p > best +. 1e-12 then
        Alcotest.failf "price %f beats p*" p)
    [ 1.6; 2.; 3.; p_star *. 0.9; p_star *. 1.1; 4.9 ];
  checkf 1e-12 "potential = profit at p*" (Lin.potential_profit ~a ~b ~c) best

let test_bundle_price_maximizes () =
  let a = [| 10.; 6. |] and b = [| 2.; 1. |] and c = [| 1.; 3. |] in
  let a_sum = 16. and b_sum = 3. in
  let bc_sum = (2. *. 1.) +. (1. *. 3.) in
  let ac_sum = (10. *. 1.) +. (6. *. 3.) in
  let p_star = Lin.bundle_price ~a_sum ~b_sum ~bc_sum in
  let profit p = Lin.bundle_profit ~a_sum ~b_sum ~bc_sum ~ac_sum ~price:p in
  List.iter
    (fun p ->
      if profit p > profit p_star +. 1e-12 then Alcotest.failf "price %f beats P*" p)
    [ 2.; 2.5; 3.; 3.5; 4. ];
  (* Cross-check the sufficient-statistic profit against the direct sum. *)
  let direct p =
    Lin.flow_profit ~a:a.(0) ~b:b.(0) ~c:c.(0) p
    +. Lin.flow_profit ~a:a.(1) ~b:b.(1) ~c:c.(1) p
  in
  checkf 1e-9 "profit formula" (direct p_star) (profit p_star)

let test_gamma_makes_p0_optimal () =
  let epsilon = 1.8 and p0 = 20. in
  let demands = [| 10.; 55.; 3.; 120. |] in
  let rel_costs = [| 1.; 2.; 5.; 0.5 |] in
  let gamma = Lin.gamma ~epsilon ~p0 ~demands ~rel_costs in
  Alcotest.(check bool) "gamma positive" true (gamma > 0.);
  (* Bundle price of all flows at gamma-scaled costs is p0. *)
  let a_sum = ref 0. and b_sum = ref 0. and bc_sum = ref 0. in
  Array.iteri
    (fun i q ->
      let a, b = Lin.coefficients ~epsilon ~p0 ~q in
      a_sum := !a_sum +. a;
      b_sum := !b_sum +. b;
      bc_sum := !bc_sum +. (b *. gamma *. rel_costs.(i)))
    demands;
  checkf 1e-9 "p0 is the blended optimum" p0
    (Lin.bundle_price ~a_sum:!a_sum ~b_sum:!b_sum ~bc_sum:!bc_sum)

let test_consumer_surplus_triangle () =
  (* a=10, b=2, p=3: q=4, surplus = 4^2 / (2*2) = 4. *)
  checkf 1e-12 "triangle" 4. (Lin.consumer_surplus ~a:10. ~b:2. 3.)

(* --- the linear market through the full machinery ----------------------- *)

let linear_market ?(epsilon = 1.8) ?flows () =
  let flows = match flows with Some f -> f | None -> Fixtures.flows () in
  Market.fit ~spec:(Market.Linear { epsilon }) ~alpha:1.1 ~p0:20.
    ~cost_model:(Cost_model.linear ~theta:0.2) flows

let test_market_fit_blended_is_p0 () =
  let m = linear_market () in
  let o = Pricing.blended m in
  checkf 1e-9 "blended price recovered" 20. o.Pricing.bundle_prices.(0);
  Array.iteri
    (fun i q ->
      checkf 1e-6 "observed demand" m.Market.flows.(i).Flow.demand_mbps q)
    o.Pricing.flow_demands

let test_market_capture_shape () =
  (* The paper's headline shape must survive the change of demand
     family. *)
  let m = linear_market () in
  let ctx = Capture.context m in
  let capture b =
    Capture.value ctx
      (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit
  in
  checkf 1e-9 "one bundle -> 0" 0. (capture 1);
  Alcotest.(check bool) "monotone" true (capture 2 <= capture 3 +. 1e-9);
  Alcotest.(check bool) "most by 4" true (capture 4 >= 0.8)

let test_dp_matches_exhaustive () =
  let flows =
    Fixtures.flows_of_spec [ (50., 5.); (20., 60.); (10., 300.); (5., 1200.); (80., 15.) ]
  in
  let m = linear_market ~flows () in
  List.iter
    (fun b ->
      let dp =
        (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit
      in
      let ex =
        (Pricing.evaluate m (Strategy.exhaustive_optimal m ~n_bundles:b)).Pricing.profit
      in
      checkf 1e-6 (Printf.sprintf "B=%d" b) ex dp)
    [ 1; 2; 3 ]

let test_singletons_reach_max () =
  let m = linear_market () in
  let o = Pricing.evaluate m (Bundle.singletons ~n_flows:(Market.n_flows m)) in
  checkf 1e-6 "per-flow pricing = max" (Pricing.max_profit m) o.Pricing.profit

let test_welfare_works () =
  let m = linear_market () in
  let a = Welfare.of_strategy m Strategy.Optimal ~n_bundles:3 in
  Alcotest.(check bool) "efficiency in (0,1]" true
    (a.Welfare.efficiency > 0. && a.Welfare.efficiency <= 1. +. 1e-9)

let test_of_parameters_rejected () =
  let flows = Fixtures.flows_of_spec [ (1., 10.) ] in
  match
    Market.of_parameters ~spec:(Market.Linear { epsilon = 2. }) ~alpha:1.1
      ~valuations:[| 1. |] ~costs:[| 1. |] flows
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_parameters accepted Linear"

let test_linear_b_guard () =
  match Market.linear_b (Fixtures.ced_market ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "linear_b accepted a CED market"

let prop_optimal_price_above_cost =
  QCheck.Test.make ~name:"linear p* above cost when servable" ~count:300
    QCheck.(triple (float_range 1. 100.) (float_range 0.1 10.) (float_range 0.01 5.))
    (fun (a, b, c) ->
      QCheck.assume (a -. (b *. c) > 0.);
      Lin.optimal_price ~a ~b ~c > c)

let suite =
  [
    Alcotest.test_case "coefficients" `Quick test_coefficients_recover_observation;
    Alcotest.test_case "epsilon validation" `Quick test_epsilon_validation;
    Alcotest.test_case "demand clamps at zero" `Quick test_demand_clamps;
    Alcotest.test_case "optimal price maximizes" `Quick test_optimal_price_maximizes;
    Alcotest.test_case "bundle price maximizes" `Quick test_bundle_price_maximizes;
    Alcotest.test_case "gamma makes p0 optimal" `Quick test_gamma_makes_p0_optimal;
    Alcotest.test_case "surplus triangle" `Quick test_consumer_surplus_triangle;
    Alcotest.test_case "market: blended = p0" `Quick test_market_fit_blended_is_p0;
    Alcotest.test_case "market: capture shape" `Quick test_market_capture_shape;
    Alcotest.test_case "market: DP = exhaustive" `Quick test_dp_matches_exhaustive;
    Alcotest.test_case "market: singletons reach max" `Quick test_singletons_reach_max;
    Alcotest.test_case "market: welfare" `Quick test_welfare_works;
    Alcotest.test_case "of_parameters rejected" `Quick test_of_parameters_rejected;
    Alcotest.test_case "linear_b guard" `Quick test_linear_b_guard;
    QCheck_alcotest.to_alcotest prop_optimal_price_above_cost;
  ]
