open Numerics

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the same stream" va vb;
  (* Advancing the copy must not affect the original. *)
  let _ = Rng.bits64 b in
  let a2 = Rng.copy a in
  Alcotest.(check int64) "original unaffected" (Rng.bits64 a) (Rng.bits64 a2)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Rng.bits64 a = Rng.bits64 b)

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %f" x
  done

let test_float_mean () =
  let rng = Rng.create 4 in
  let xs = Array.init 50_000 (fun _ -> Rng.float rng) in
  let m = Stats.mean xs in
  if abs_float (m -. 0.5) > 0.01 then Alcotest.failf "uniform mean off: %f" m

let test_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_int_uniformity () =
  let rng = Rng.create 6 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    counts

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_uniform_range () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng (-2.) 3. in
    if x < -2. || x >= 3. then Alcotest.failf "uniform out of range: %f" x
  done

let test_uniform_invalid () =
  let rng = Rng.create 8 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.uniform: lo > hi") (fun () ->
      ignore (Rng.uniform rng 3. (-2.)))

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_moves_something () =
  let rng = Rng.create 10 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 Fun.id)

let test_choose () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let x = Rng.choose rng [| 1; 2; 3 |] in
    if x < 1 || x > 3 then Alcotest.failf "choose out of range: %d" x
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_bool_balance () =
  let rng = Rng.create 12 in
  let trues = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  check_float "fair coin" 0.5 (Float.round (frac *. 10.) /. 10.)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split is independent" `Quick test_split_independent;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "float mean ~0.5" `Quick test_float_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "int rejects zero bound" `Quick test_int_invalid;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform rejects lo>hi" `Quick test_uniform_invalid;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle moves elements" `Quick test_shuffle_moves_something;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "bool is balanced" `Quick test_bool_balance;
  ]
