(* Shared test fixtures: small deterministic markets. *)
open Tiered

let flows_of_spec spec =
  Array.of_list
    (List.mapi
       (fun id (demand_mbps, distance_miles) ->
         Flow.make ~id ~demand_mbps ~distance_miles ())
       spec)

(* Eight flows spanning metro to international distances with varied
   demand, loosely (anti-)correlated like the calibrated workloads. *)
let default_spec =
  [
    (120., 4.); (80., 9.); (40., 30.); (35., 60.); (20., 150.); (10., 400.);
    (6., 900.); (3., 2500.);
  ]

let flows () = flows_of_spec default_spec

let ced_market ?(alpha = 1.1) ?(p0 = 20.) ?(theta = 0.2) ?flows:f () =
  let flows = match f with Some f -> f | None -> flows () in
  Market.fit ~spec:Market.Ced ~alpha ~p0
    ~cost_model:(Cost_model.linear ~theta) flows

let logit_market ?(alpha = 1.1) ?(p0 = 20.) ?(s0 = 0.2) ?(theta = 0.2) ?flows:f () =
  let flows = match f with Some f -> f | None -> flows () in
  Market.fit ~spec:(Market.Logit { s0 }) ~alpha ~p0
    ~cost_model:(Cost_model.linear ~theta) flows

(* A small workload for pipeline tests. *)
let workload () =
  let params =
    {
      Flowgen.Workload.n_flows = 60;
      aggregate_gbps = 2.;
      locality_scale = 50.;
      locality_spread = 1.0;
      demand_cv = 0.8;
      demand_distance_exponent = 1.5;
      local_tail_miles = 40.;
      on_net_fraction = 0.5;
      distance_mode = `Path;
      seed = 4242;
    }
  in
  Flowgen.Workload.generate (Netsim.Presets.eu_isp ()) params
