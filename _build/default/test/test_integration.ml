(* End-to-end integration checks across every (network, demand family)
   combination, exercising the same path the CLI and benchmarks use. *)
open Tiered

let specs =
  [
    ("ced", Market.Ced);
    ("logit", Market.Logit { s0 = 0.2 });
    ("linear", Market.Linear { epsilon = 1.8 });
  ]

let test_every_network_and_family () =
  List.iter
    (fun network ->
      List.iter
        (fun (label, spec) ->
          let m = Experiment.market ~spec network in
          let ctx = Capture.context m in
          let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
          let capture = Capture.value ctx o.Pricing.profit in
          if not (capture > 0.5 && capture <= 1. +. 1e-9) then
            Alcotest.failf "%s/%s capture %f out of expected band" network label capture;
          if not (o.Pricing.profit > 0.) then
            Alcotest.failf "%s/%s non-positive profit" network label)
        specs)
    Experiment.Defaults.networks

let test_full_pipeline_to_invoice () =
  (* Workload -> NetFlow -> dedup -> fit -> tiers -> tag -> account ->
     bill: the complete product path in one test. *)
  let params =
    { (Flowgen.Workload.preset_params "internet2") with Flowgen.Workload.n_flows = 50 }
  in
  let w = Flowgen.Workload.generate (Netsim.Presets.internet2 ()) params in
  let flows = Dataset.via_netflow ~sampling_rate:100 w in
  let m =
    Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows
  in
  let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:3 in
  let outcome = Pricing.evaluate m bundles in
  let owner = Bundle.member_of bundles ~n_flows:(Market.n_flows m) in
  let flow_index =
    let t = Hashtbl.create 64 in
    Array.iteri (fun i (f : Flow.t) -> Hashtbl.replace t f.Flow.id i) m.Market.flows;
    t
  in
  let assignments =
    List.filter_map
      (fun (f : Flowgen.Workload.flow) ->
        match Hashtbl.find_opt flow_index f.Flowgen.Workload.id with
        | None -> None (* flow vanished under sampling *)
        | Some i ->
            Some
              {
                Routing.Tagging.dst_prefix =
                  Flowgen.Ipv4.prefix f.Flowgen.Workload.dst_addr 24;
                tier = owner.(i);
                next_hop = f.Flowgen.Workload.entry.Netsim.Node.id;
              })
      w.Flowgen.Workload.flows
  in
  let sessions = Routing.Session.plan ~asn:65000 assignments ~n_links:3 in
  Alcotest.(check int) "consistent sessions" 0
    (List.length (Routing.Session.check_consistency sessions));
  let rib = Routing.Session.advertised_rib sessions in
  let rng = Numerics.Rng.create 9 in
  let records =
    Flowgen.Dedup.dedup
      (Flowgen.Netflow.synthesize ~rng (Flowgen.Workload.to_ground_truth w))
  in
  let usage = Routing.Accounting.flow_based ~rib records in
  let invoice =
    Routing.Billing.of_usage ~rates:outcome.Pricing.bundle_prices
      ~period_s:Flowgen.Netflow.day_seconds usage
  in
  Alcotest.(check bool) "invoice has lines" true (invoice.Routing.Billing.lines <> []);
  Alcotest.(check bool) "positive total" true (invoice.Routing.Billing.total > 0.)

let test_experiment_csv_and_markdown_agree_on_shape () =
  let tables = (Experiment.find "table1").Experiment.run () in
  List.iter
    (fun t ->
      let csv_lines =
        String.split_on_char '\n' (Report.to_csv t)
        |> List.filter (fun l -> l <> "")
      in
      (* CSV: header + rows. Markdown: heading, blank, header, separator,
         rows, then notes. *)
      Alcotest.(check int) "csv line count"
        (1 + List.length t.Report.rows)
        (List.length csv_lines);
      let md_lines =
        String.split_on_char '\n' (Report.to_markdown t)
        |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      in
      Alcotest.(check int) "md table rows"
        (2 + List.length t.Report.rows)
        (List.length md_lines))
    tables

let suite =
  [
    Alcotest.test_case "every network x demand family" `Slow test_every_network_and_family;
    Alcotest.test_case "workload to invoice" `Slow test_full_pipeline_to_invoice;
    Alcotest.test_case "csv/markdown shape" `Quick test_experiment_csv_and_markdown_agree_on_shape;
  ]
