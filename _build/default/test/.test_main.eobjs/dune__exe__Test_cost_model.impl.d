test/test_cost_model.ml: Alcotest Array Cost_model Flow Gen List QCheck QCheck_alcotest Tiered
