test/test_presets.ml: Alcotest Array Cities Geo Graph List Netsim Node Presets String Topology
