test/test_welfare.ml: Alcotest Fixtures List Pricing Strategy Tiered Welfare
