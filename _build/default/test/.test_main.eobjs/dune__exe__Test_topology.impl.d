test/test_topology.ml: Alcotest Array Cities Graph Link List Netsim Node Numerics Topology
