test/test_estimate.ml: Alcotest Ced Dynamics Estimate Fixtures List Market QCheck QCheck_alcotest Strategy Tiered
