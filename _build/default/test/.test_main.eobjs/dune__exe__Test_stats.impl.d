test/test_stats.ml: Alcotest Array Buffer Float Format Gen Numerics QCheck QCheck_alcotest Stats
