test/test_competition.ml: Alcotest Array Competition Logit Numerics Tiered
