test/test_accounting.ml: Accounting Alcotest Array Float Flowgen Gen Ipv4 List Netflow Printf QCheck QCheck_alcotest Rib Routing Tagging
