test/test_logit.ml: Alcotest Array Float Gen List Logit Numerics Printf QCheck QCheck_alcotest Tiered
