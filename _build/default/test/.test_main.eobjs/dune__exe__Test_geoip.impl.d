test/test_geoip.ml: Alcotest Flowgen Geoip Ipv4 Lazy List Netsim Numerics
