test/test_session.ml: Accounting Alcotest Community Flowgen Ipv4 List Netflow Rib Routing Session Tagging
