test/test_properties.ml: Array Capture Ced Cost_model Fixtures Flow List Market Numerics Pricing QCheck QCheck_alcotest Sensitivity Strategy Tier_count Tiered Welfare
