test/test_flow.ml: Alcotest Flow Tiered
