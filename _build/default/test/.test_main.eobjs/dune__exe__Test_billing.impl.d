test/test_billing.ml: Accounting Alcotest Array Billing Flowgen List Routing Tagging
