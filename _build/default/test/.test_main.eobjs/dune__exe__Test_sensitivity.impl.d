test/test_sensitivity.ml: Alcotest Capture Fixtures List Sensitivity Strategy Tiered
