test/test_dataset.ml: Alcotest Array Cost_model Dataset Fixtures Flow Flowgen Hashtbl List Market Pricing Strategy Tiered
