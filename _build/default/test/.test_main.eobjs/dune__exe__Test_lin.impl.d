test/test_lin.ml: Alcotest Array Bundle Capture Cost_model Fixtures Flow Lin List Market Pricing Printf QCheck QCheck_alcotest Strategy Tiered Welfare
