test/test_rng.ml: Alcotest Array Float Fun Numerics Rng Stats
