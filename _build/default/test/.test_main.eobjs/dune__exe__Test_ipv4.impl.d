test/test_ipv4.ml: Alcotest Flowgen Ipv4 List Numerics QCheck QCheck_alcotest
