test/test_bundle.ml: Alcotest Array Bundle Fun Gen QCheck QCheck_alcotest Tiered
