test/test_solve.ml: Alcotest Float Fun Numerics QCheck QCheck_alcotest Solve
