test/test_pricing.ml: Alcotest Array Bundle Fixtures Flow Gen List Logit Market Pricing QCheck QCheck_alcotest Strategy Tiered
