test/test_gradient.ml: Alcotest Array Float Gradient Numerics Printf QCheck QCheck_alcotest
