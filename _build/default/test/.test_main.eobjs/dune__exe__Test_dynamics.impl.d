test/test_dynamics.ml: Alcotest Array Ced Dynamics Fixtures Float List Market Pricing Strategy Tiered
