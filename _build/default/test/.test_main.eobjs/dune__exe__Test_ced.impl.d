test/test_ced.ml: Alcotest Array Ced Float Gen List Numerics QCheck QCheck_alcotest Tiered
