test/test_fit.ml: Alcotest Array Dist Fit Gen List Numerics QCheck QCheck_alcotest Rng
