test/test_market.ml: Alcotest Array Ced Fixtures Flow Market Pricing Tiered
