test/test_commit.ml: Alcotest Array Ced Commit Numerics QCheck QCheck_alcotest Tiered
