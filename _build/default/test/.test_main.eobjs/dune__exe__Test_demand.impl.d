test/test_demand.ml: Alcotest Demand Flowgen Gen Ipv4 List Netflow Printf QCheck QCheck_alcotest
