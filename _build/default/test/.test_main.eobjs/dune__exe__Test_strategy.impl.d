test/test_strategy.ml: Alcotest Array Bundle Cost_model Fixtures Float Flow Gen List Market Numerics Pricing Printf QCheck QCheck_alcotest Strategy Tiered
