test/test_vec.ml: Alcotest Gen Numerics QCheck QCheck_alcotest Vec
