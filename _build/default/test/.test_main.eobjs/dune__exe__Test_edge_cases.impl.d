test/test_edge_cases.ml: Alcotest Array Bundle Capture Cost_model Fixtures Float Flow Flowgen List Market Netsim Numerics Pricing Printf Routing Strategy Tiered
