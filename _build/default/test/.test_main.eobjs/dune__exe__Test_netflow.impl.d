test/test_netflow.ml: Alcotest Flowgen Ipv4 List Netflow Numerics
