test/test_experiment.ml: Alcotest Experiment List Market Report Tiered
