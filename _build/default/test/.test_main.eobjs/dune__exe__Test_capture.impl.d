test/test_capture.ml: Alcotest Capture Fixtures List Strategy Tiered
