test/test_dist.ml: Alcotest Array Dist Gen Numerics Printf QCheck QCheck_alcotest Rng Stats
