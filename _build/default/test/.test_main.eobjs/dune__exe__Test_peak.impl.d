test/test_peak.ml: Alcotest Array Fixtures Flowgen List Peak Pricing Printf Strategy Tiered
