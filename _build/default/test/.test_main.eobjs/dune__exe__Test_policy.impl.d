test/test_policy.ml: Alcotest Flowgen Ipv4 Policy Rib Routing Tagging
