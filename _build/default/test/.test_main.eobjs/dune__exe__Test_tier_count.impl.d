test/test_tier_count.ml: Alcotest Capture Fixtures Float List Strategy Tier_count Tiered
