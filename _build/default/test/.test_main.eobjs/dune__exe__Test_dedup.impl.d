test/test_dedup.ml: Alcotest Dedup Flowgen Gen Ipv4 List Netflow Numerics QCheck QCheck_alcotest
