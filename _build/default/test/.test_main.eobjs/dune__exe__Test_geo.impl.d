test/test_geo.ml: Alcotest Float Geo Netsim Numerics QCheck QCheck_alcotest
