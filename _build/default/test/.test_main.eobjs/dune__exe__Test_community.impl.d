test/test_community.ml: Alcotest Community List Routing
