test/test_workload.ml: Alcotest Flowgen Geoip Lazy List Netflow Netsim Workload
