test/test_sampling.ml: Alcotest Float Flowgen Ipv4 List Netflow Numerics QCheck QCheck_alcotest Sampling
