test/test_tomogravity.ml: Alcotest Array Flowgen Lazy List Loading Netsim Numerics Tomogravity
