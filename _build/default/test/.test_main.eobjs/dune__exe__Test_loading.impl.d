test/test_loading.ml: Alcotest Fixtures Flowgen Lazy List Loading Netsim
