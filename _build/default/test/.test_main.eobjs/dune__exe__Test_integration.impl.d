test/test_integration.ml: Alcotest Array Bundle Capture Cost_model Dataset Experiment Flow Flowgen Hashtbl List Market Netsim Numerics Pricing Report Routing Strategy String Tiered
