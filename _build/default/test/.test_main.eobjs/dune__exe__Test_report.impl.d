test/test_report.ml: Alcotest Buffer Float Format List Report String Tiered
