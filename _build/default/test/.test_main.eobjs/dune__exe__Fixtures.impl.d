test/fixtures.ml: Array Cost_model Flow Flowgen List Market Netsim Tiered
