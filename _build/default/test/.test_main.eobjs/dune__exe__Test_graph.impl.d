test/test_graph.ml: Alcotest Array Cities Geo Graph Link List Netsim Node Numerics QCheck QCheck_alcotest Topology
