test/test_cities.ml: Alcotest Cities Geo List Netsim
