test/test_trace.ml: Alcotest Filename Flowgen Fun Ipv4 List Netflow Numerics String Sys Trace
