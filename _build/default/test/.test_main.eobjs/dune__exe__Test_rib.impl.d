test/test_rib.ml: Alcotest Community Flowgen Fun Ipv4 List QCheck QCheck_alcotest Rib Routing
