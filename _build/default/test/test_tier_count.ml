open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_overhead_cost () =
  let o = Tier_count.overhead ~fixed:100. ~per_flow:0.5 ~per_tier:10. () in
  checkf 1e-9 "formula" (100. +. 30. +. 5.) (Tier_count.cost o ~n_tiers:3 ~n_flows:10)

let test_overhead_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Tier_count.overhead: negative component")
    (fun () -> ignore (Tier_count.overhead ~per_tier:(-1.) ()))

let test_series_shape () =
  let m = Fixtures.ced_market () in
  let o = Tier_count.overhead ~per_tier:0. () in
  let series = Tier_count.series m Strategy.Optimal o ~max_bundles:5 in
  Alcotest.(check int) "five points" 5 (List.length series);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "indexed" (i + 1) p.Tier_count.n_bundles;
      checkf 1e-9 "net = gross with zero overhead" p.Tier_count.gross_profit
        p.Tier_count.net_profit)
    series

let test_zero_overhead_picks_max_bundles () =
  (* Without overhead, more tiers never hurt, so the optimum saturates. *)
  let m = Fixtures.ced_market () in
  let o = Tier_count.overhead ~per_tier:0. () in
  let best = Tier_count.optimal m Strategy.Optimal o ~max_bundles:6 in
  let series = Tier_count.series m Strategy.Optimal o ~max_bundles:6 in
  let top = List.fold_left (fun acc p -> Float.max acc p.Tier_count.net_profit) neg_infinity series in
  checkf 1e-9 "optimum attains the max" top best.Tier_count.net_profit

let test_huge_overhead_picks_one () =
  let m = Fixtures.ced_market () in
  let headroom = Capture.headroom (Capture.context m) in
  let o = Tier_count.overhead ~per_tier:(2. *. headroom) () in
  let best = Tier_count.optimal m Strategy.Optimal o ~max_bundles:6 in
  Alcotest.(check int) "one tier" 1 best.Tier_count.n_bundles

let test_moderate_overhead_interior_optimum () =
  (* Overhead priced so that the marginal tier beyond ~3 stops paying. *)
  let m = Fixtures.ced_market () in
  let marginal = Tier_count.break_even_overhead m Strategy.Optimal ~from_bundles:3 ~to_bundles:4 in
  let o = Tier_count.overhead ~per_tier:(marginal *. 1.5) () in
  let best = Tier_count.optimal m Strategy.Optimal o ~max_bundles:8 in
  Alcotest.(check bool) "interior optimum" true
    (best.Tier_count.n_bundles >= 2 && best.Tier_count.n_bundles <= 4)

let test_break_even_monotone_in_span () =
  (* Capture curves are concave-ish: the average marginal gain from
     3->4 exceeds that from 3->8. *)
  let m = Fixtures.ced_market () in
  let near = Tier_count.break_even_overhead m Strategy.Optimal ~from_bundles:3 ~to_bundles:4 in
  let far = Tier_count.break_even_overhead m Strategy.Optimal ~from_bundles:3 ~to_bundles:8 in
  Alcotest.(check bool) "diminishing returns" true (near >= far -. 1e-9)

let test_break_even_validation () =
  let m = Fixtures.ced_market () in
  Alcotest.check_raises "bad span"
    (Invalid_argument "Tier_count.break_even_overhead: need 1 <= from < to") (fun () ->
      ignore (Tier_count.break_even_overhead m Strategy.Optimal ~from_bundles:3 ~to_bundles:3))

let test_net_profit_identity () =
  let m = Fixtures.logit_market () in
  let o = Tier_count.overhead ~fixed:10. ~per_flow:0.1 ~per_tier:5. () in
  List.iter
    (fun p ->
      checkf 1e-9 "identity" p.Tier_count.net_profit
        (p.Tier_count.gross_profit -. p.Tier_count.overhead_cost))
    (Tier_count.series m Strategy.Optimal o ~max_bundles:4)

let suite =
  [
    Alcotest.test_case "overhead cost" `Quick test_overhead_cost;
    Alcotest.test_case "overhead validation" `Quick test_overhead_validation;
    Alcotest.test_case "series shape" `Quick test_series_shape;
    Alcotest.test_case "zero overhead saturates" `Quick test_zero_overhead_picks_max_bundles;
    Alcotest.test_case "huge overhead picks one tier" `Quick test_huge_overhead_picks_one;
    Alcotest.test_case "interior optimum" `Quick test_moderate_overhead_interior_optimum;
    Alcotest.test_case "diminishing returns" `Quick test_break_even_monotone_in_span;
    Alcotest.test_case "break-even validation" `Quick test_break_even_validation;
    Alcotest.test_case "net profit identity" `Quick test_net_profit_identity;
  ]
