open Numerics

let checkf tol = Alcotest.(check (float tol))

let quadratic_max center x =
  (* Concave paraboloid peaked at [center]. *)
  let acc = ref 0. in
  Array.iteri (fun i xi -> acc := !acc -. ((xi -. center.(i)) ** 2.)) x;
  !acc

let quadratic_grad center x =
  Array.mapi (fun i xi -> -2. *. (xi -. center.(i))) x

let test_ascent_quadratic () =
  let center = [| 1.; -2.; 3. |] in
  let r =
    Gradient.ascent
      ~f:(quadratic_max center)
      ~grad:(quadratic_grad center)
      [| 0.; 0.; 0. |]
  in
  Alcotest.(check bool) "converged" true r.Gradient.converged;
  Array.iteri (fun i c -> checkf 1e-4 (Printf.sprintf "x%d" i) c r.Gradient.x.(i)) center

let test_ascent_with_projection () =
  (* Maximize -(x-3)^2 subject to x <= 1: optimum at the boundary. *)
  let project x = [| Float.min 1. x.(0) |] in
  let r =
    Gradient.ascent ~project
      ~f:(fun x -> -.((x.(0) -. 3.) ** 2.))
      ~grad:(fun x -> [| -2. *. (x.(0) -. 3.) |])
      [| 0. |]
  in
  checkf 1e-6 "projected optimum" 1. r.Gradient.x.(0)

let test_descent_rosenbrock_ish () =
  (* A gentle convex function; descent must find the minimum. *)
  let f x = ((x.(0) -. 2.) ** 2.) +. (10. *. ((x.(1) +. 1.) ** 2.)) in
  let grad x = [| 2. *. (x.(0) -. 2.); 20. *. (x.(1) +. 1.) |] in
  let r = Gradient.descent ~f ~grad [| 0.; 0. |] in
  checkf 1e-3 "x0" 2. r.Gradient.x.(0);
  checkf 1e-3 "x1" (-1.) r.Gradient.x.(1);
  checkf 1e-5 "value" 0. r.Gradient.value

let test_numeric_grad_matches_analytic () =
  let center = [| 0.5; -1.5 |] in
  let x = [| 2.; 2. |] in
  let numeric = Gradient.numeric_grad (quadratic_max center) x in
  let analytic = quadratic_grad center x in
  Array.iteri
    (fun i g -> checkf 1e-4 (Printf.sprintf "grad %d" i) g numeric.(i))
    analytic

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 4.) ** 2.) +. ((x.(1) -. 1.) ** 2.) +. 7. in
  let r = Gradient.nelder_mead ~f [| 0.; 0. |] in
  checkf 1e-3 "x0" 4. r.Gradient.x.(0);
  checkf 1e-3 "x1" 1. r.Gradient.x.(1);
  checkf 1e-4 "value" 7. r.Gradient.value

let test_nelder_mead_1d () =
  (* Non-smooth objectives can stall simplex methods; accept a coarse
     tolerance. *)
  let f x = abs_float (x.(0) -. 2.) in
  let r = Gradient.nelder_mead ~f [| -3. |] in
  checkf 0.05 "non-smooth 1d" 2. r.Gradient.x.(0)

let test_nelder_mead_empty () =
  Alcotest.check_raises "empty start"
    (Invalid_argument "Gradient.nelder_mead: empty start point") (fun () ->
      ignore (Gradient.nelder_mead ~f:(fun _ -> 0.) [||]))

let prop_ascent_does_not_decrease =
  QCheck.Test.make ~name:"ascent never returns a worse point" ~count:100
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let center = [| a; b |] in
      let start = [| 0.; 0. |] in
      let r = Gradient.ascent ~f:(quadratic_max center) ~grad:(quadratic_grad center) start in
      r.Gradient.value >= quadratic_max center start -. 1e-12)

let suite =
  [
    Alcotest.test_case "ascent on quadratic" `Quick test_ascent_quadratic;
    Alcotest.test_case "ascent with projection" `Quick test_ascent_with_projection;
    Alcotest.test_case "descent on convex" `Quick test_descent_rosenbrock_ish;
    Alcotest.test_case "numeric gradient" `Quick test_numeric_grad_matches_analytic;
    Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
    Alcotest.test_case "nelder-mead 1d non-smooth" `Quick test_nelder_mead_1d;
    Alcotest.test_case "nelder-mead empty input" `Quick test_nelder_mead_empty;
    QCheck_alcotest.to_alcotest prop_ascent_does_not_decrease;
  ]
