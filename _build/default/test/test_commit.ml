open Tiered

let checkf tol = Alcotest.(check (float tol))
let alpha = 2.0

let test_tier_validation () =
  Alcotest.check_raises "negative commit" (Invalid_argument "Commit.tier: negative commit")
    (fun () -> ignore (Commit.tier ~commit_mbps:(-1.) ~rate:1.));
  Alcotest.check_raises "zero rate" (Invalid_argument "Commit.tier: rate must be positive")
    (fun () -> ignore (Commit.tier ~commit_mbps:0. ~rate:0.))

let test_choose_usage_pricing () =
  (* Commit 0 = pure usage pricing: usage is the CED demand, surplus the
     CED surplus. *)
  let menu = [| Commit.tier ~commit_mbps:0. ~rate:2. |] in
  let c = Commit.choose ~alpha ~v:3. menu in
  checkf 1e-9 "usage" (Ced.demand ~alpha ~v:3. 2.) c.Commit.usage_mbps;
  checkf 1e-9 "surplus" (Ced.consumer_surplus ~alpha ~v:3. 2.) c.Commit.surplus;
  checkf 1e-9 "billed = usage" c.Commit.usage_mbps c.Commit.billed_mbps

let test_choose_prefers_discount_when_big () =
  (* Two tiers: usage at $2, or commit 2 Mbps at $1. A big customer uses
     the discount; a tiny one avoids paying for unused commit. *)
  let menu =
    [| Commit.tier ~commit_mbps:0. ~rate:2.; Commit.tier ~commit_mbps:2. ~rate:1. |]
  in
  let big = Commit.choose ~alpha ~v:3. menu in
  Alcotest.(check (option int)) "big takes commit tier" (Some 1) big.Commit.tier_index;
  let small = Commit.choose ~alpha ~v:0.3 menu in
  Alcotest.(check (option int)) "small stays usage-priced" (Some 0) small.Commit.tier_index

let test_commit_shortfall_billed () =
  let menu = [| Commit.tier ~commit_mbps:10. ~rate:1. |] in
  let c = Commit.choose ~alpha ~v:2. menu in
  (* Demand at rate 1 is 4 < commit 10. *)
  match c.Commit.tier_index with
  | None -> () (* opting out is allowed if the shortfall kills the surplus *)
  | Some _ ->
      checkf 1e-9 "billed at commit" 10. c.Commit.billed_mbps;
      checkf 1e-9 "payment" 10. c.Commit.payment

let test_opt_out_when_all_tiers_bad () =
  (* A huge commit at a high rate destroys all surplus for a small
     customer. *)
  let menu = [| Commit.tier ~commit_mbps:1000. ~rate:5. |] in
  let c = Commit.choose ~alpha ~v:0.5 menu in
  Alcotest.(check (option int)) "opts out" None c.Commit.tier_index;
  checkf 0. "no payment" 0. c.Commit.payment

let test_evaluate_accounting () =
  let menu =
    [| Commit.tier ~commit_mbps:0. ~rate:2.; Commit.tier ~commit_mbps:2. ~rate:1.2 |]
  in
  let valuations = [| 0.5; 1.; 2.; 4. |] in
  let o = Commit.evaluate ~alpha ~unit_cost:0.5 ~valuations menu in
  checkf 1e-9 "profit identity" o.Commit.profit (o.Commit.revenue -. o.Commit.delivery_cost);
  let customers =
    Array.fold_left ( + ) o.Commit.opted_out o.Commit.tier_counts
  in
  Alcotest.(check int) "everyone accounted" 4 customers

let test_menu_beats_single_rate () =
  (* Second-degree discrimination: an optimized 3-tier menu earns at
     least as much as the optimized single rate. *)
  let rng = Numerics.Rng.create 2024 in
  let valuations =
    Array.init 200 (fun _ -> Numerics.Dist.lognormal_of_mean_cv rng ~mean:2. ~cv:1.0)
  in
  let unit_cost = 0.4 in
  let single =
    Commit.optimize_rates ~alpha ~unit_cost ~valuations ~commits:[| 0. |]
  in
  let single_profit = (Commit.evaluate ~alpha ~unit_cost ~valuations single).Commit.profit in
  let commits = Commit.commit_quantiles ~alpha ~p0:1. ~valuations ~n:3 in
  let menu = Commit.optimize_rates ~alpha ~unit_cost ~valuations ~commits in
  let menu_profit = (Commit.evaluate ~alpha ~unit_cost ~valuations menu).Commit.profit in
  Alcotest.(check bool) "menu >= single rate" true (menu_profit >= single_profit -. 1e-6)

let test_single_rate_optimum_matches_theory () =
  (* With commit 0 the optimal usage rate is the CED monopoly price
     alpha c / (alpha - 1), independent of the valuation mix. *)
  let valuations = [| 1.; 2.; 3. |] in
  let unit_cost = 0.5 in
  let menu = Commit.optimize_rates ~alpha ~unit_cost ~valuations ~commits:[| 0. |] in
  checkf 1e-2 "monopoly rate" (Ced.optimal_price ~alpha ~c:unit_cost) menu.(0).Commit.rate

let test_rates_decreasing_in_commit () =
  let rng = Numerics.Rng.create 7 in
  let valuations =
    Array.init 100 (fun _ -> Numerics.Dist.lognormal_of_mean_cv rng ~mean:2. ~cv:0.8)
  in
  let commits = Commit.commit_quantiles ~alpha ~p0:1. ~valuations ~n:3 in
  let menu = Commit.optimize_rates ~alpha ~unit_cost:0.4 ~valuations ~commits in
  for i = 1 to Array.length menu - 1 do
    Alcotest.(check bool) "volume discount" true
      (menu.(i).Commit.rate <= menu.(i - 1).Commit.rate +. 1e-12)
  done

let test_commit_quantiles () =
  let valuations = [| 1.; 2.; 3.; 4. |] in
  let commits = Commit.commit_quantiles ~alpha ~p0:1. ~valuations ~n:2 in
  Alcotest.(check int) "two levels" 2 (Array.length commits);
  checkf 0. "first is zero" 0. commits.(0);
  Alcotest.(check bool) "second is a demand quantile" true (commits.(1) > 0.)

let prop_choice_never_negative_surplus =
  QCheck.Test.make ~name:"chosen surplus is never negative" ~count:300
    QCheck.(pair (float_range 0.1 10.) (float_range 0.1 20.))
    (fun (v, commit) ->
      let menu =
        [| Commit.tier ~commit_mbps:commit ~rate:1.5; Commit.tier ~commit_mbps:0. ~rate:2.5 |]
      in
      (Commit.choose ~alpha ~v menu).Commit.surplus >= 0.)

let suite =
  [
    Alcotest.test_case "tier validation" `Quick test_tier_validation;
    Alcotest.test_case "pure usage pricing" `Quick test_choose_usage_pricing;
    Alcotest.test_case "discount attracts big customers" `Quick
      test_choose_prefers_discount_when_big;
    Alcotest.test_case "commit shortfall billed" `Quick test_commit_shortfall_billed;
    Alcotest.test_case "opt out" `Quick test_opt_out_when_all_tiers_bad;
    Alcotest.test_case "evaluate accounting" `Quick test_evaluate_accounting;
    Alcotest.test_case "menu beats single rate" `Slow test_menu_beats_single_rate;
    Alcotest.test_case "single-rate optimum" `Slow test_single_rate_optimum_matches_theory;
    Alcotest.test_case "rates decrease with commit" `Slow test_rates_decreasing_in_commit;
    Alcotest.test_case "commit quantiles" `Quick test_commit_quantiles;
    QCheck_alcotest.to_alcotest prop_choice_never_negative_surplus;
  ]
