open Tiered

let test_of_groups () =
  let b = Bundle.of_groups ~n_flows:4 [ [ 0; 2 ]; [ 1; 3 ] ] in
  Alcotest.(check int) "count" 2 (Bundle.count b);
  Alcotest.(check (array int)) "sizes" [| 2; 2 |] (Bundle.sizes b)

let test_of_groups_drops_empty () =
  let b = Bundle.of_groups ~n_flows:2 [ [ 0 ]; []; [ 1 ] ] in
  Alcotest.(check int) "empties dropped" 2 (Bundle.count b)

let test_of_groups_validation () =
  Alcotest.check_raises "missing flow" (Invalid_argument "Bundle: flows left unassigned")
    (fun () -> ignore (Bundle.of_groups ~n_flows:3 [ [ 0; 1 ] ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Bundle: duplicate flow index")
    (fun () -> ignore (Bundle.of_groups ~n_flows:2 [ [ 0; 0 ]; [ 1 ] ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Bundle: flow index out of range")
    (fun () -> ignore (Bundle.of_groups ~n_flows:2 [ [ 0; 5 ]; [ 1 ] ]))

let test_all_in_one_singletons () =
  Alcotest.(check int) "one bundle" 1 (Bundle.count (Bundle.all_in_one ~n_flows:5));
  Alcotest.(check int) "five bundles" 5 (Bundle.count (Bundle.singletons ~n_flows:5))

let test_of_assignment () =
  let b = Bundle.of_assignment ~n_bundles:3 [| 0; 2; 0; 2 |] in
  (* Bundle 1 is empty and dropped. *)
  Alcotest.(check int) "two non-empty" 2 (Bundle.count b);
  Alcotest.(check (array int)) "sizes" [| 2; 2 |] (Bundle.sizes b)

let test_contiguous () =
  let b = Bundle.contiguous ~order:[| 3; 1; 0; 2 |] ~cuts:[ 1; 3 ] in
  Alcotest.(check int) "three segments" 3 (Bundle.count b);
  let groups = (b :> int array array) in
  Alcotest.(check (array int)) "first" [| 3 |] groups.(0);
  Alcotest.(check (array int)) "second" [| 1; 0 |] groups.(1);
  Alcotest.(check (array int)) "third" [| 2 |] groups.(2)

let test_contiguous_validation () =
  Alcotest.check_raises "bad cuts"
    (Invalid_argument "Bundle.contiguous: cuts must be strictly increasing in [1, n-1]")
    (fun () -> ignore (Bundle.contiguous ~order:[| 0; 1 |] ~cuts:[ 0 ]))

let test_member_of () =
  let b = Bundle.of_groups ~n_flows:4 [ [ 0; 2 ]; [ 1; 3 ] ] in
  Alcotest.(check (array int)) "inverse map" [| 0; 1; 0; 1 |] (Bundle.member_of b ~n_flows:4)

let test_gather () =
  let b = Bundle.of_groups ~n_flows:3 [ [ 2; 0 ]; [ 1 ] ] in
  let values = [| 10.; 20.; 30. |] in
  let gathered = Bundle.gather b values in
  Alcotest.(check (array (float 0.))) "bundle 0" [| 30.; 10. |] gathered.(0);
  Alcotest.(check (array (float 0.))) "bundle 1" [| 20. |] gathered.(1)

let prop_assignment_roundtrip =
  QCheck.Test.make ~name:"of_assignment covers all flows once" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 4))
    (fun assignment ->
      let assignment = Array.of_list assignment in
      let b = Bundle.of_assignment ~n_bundles:5 assignment in
      let total = Array.fold_left ( + ) 0 (Bundle.sizes b) in
      total = Array.length assignment)

let prop_member_of_consistent =
  QCheck.Test.make ~name:"member_of agrees with groups" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 3))
    (fun assignment ->
      let assignment = Array.of_list assignment in
      let n = Array.length assignment in
      let b = Bundle.of_assignment ~n_bundles:4 assignment in
      let owner = Bundle.member_of b ~n_flows:n in
      let groups = (b :> int array array) in
      Array.for_all Fun.id
        (Array.mapi
           (fun bundle_idx group ->
             Array.for_all (fun i -> owner.(i) = bundle_idx) group)
           groups))

let suite =
  [
    Alcotest.test_case "of_groups" `Quick test_of_groups;
    Alcotest.test_case "of_groups drops empty" `Quick test_of_groups_drops_empty;
    Alcotest.test_case "of_groups validation" `Quick test_of_groups_validation;
    Alcotest.test_case "all_in_one / singletons" `Quick test_all_in_one_singletons;
    Alcotest.test_case "of_assignment" `Quick test_of_assignment;
    Alcotest.test_case "contiguous" `Quick test_contiguous;
    Alcotest.test_case "contiguous validation" `Quick test_contiguous_validation;
    Alcotest.test_case "member_of" `Quick test_member_of;
    Alcotest.test_case "gather" `Quick test_gather;
    QCheck_alcotest.to_alcotest prop_assignment_roundtrip;
    QCheck_alcotest.to_alcotest prop_member_of_consistent;
  ]
