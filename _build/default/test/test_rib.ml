open Routing
open Flowgen

let prefix = Ipv4.prefix_of_string

let test_empty () =
  Alcotest.(check int) "size" 0 (Rib.size Rib.empty);
  Alcotest.(check bool) "lookup" true (Rib.lookup Rib.empty (Ipv4.of_string "1.1.1.1") = None)

let test_add_and_lookup () =
  let rib = Rib.add Rib.empty (Rib.route ~prefix:(prefix "10.0.0.0/8") ~next_hop:1 ()) in
  Alcotest.(check int) "size" 1 (Rib.size rib);
  match Rib.lookup rib (Ipv4.of_string "10.5.5.5") with
  | Some r -> Alcotest.(check int) "next hop" 1 r.Rib.next_hop
  | None -> Alcotest.fail "lookup failed"

let test_longest_prefix_match () =
  let rib =
    Rib.empty
    |> Fun.flip Rib.add (Rib.route ~prefix:(prefix "10.0.0.0/8") ~next_hop:1 ())
    |> Fun.flip Rib.add (Rib.route ~prefix:(prefix "10.1.0.0/16") ~next_hop:2 ())
    |> Fun.flip Rib.add (Rib.route ~prefix:(prefix "10.1.2.0/24") ~next_hop:3 ())
  in
  let hop addr =
    match Rib.lookup rib (Ipv4.of_string addr) with
    | Some r -> r.Rib.next_hop
    | None -> -1
  in
  Alcotest.(check int) "most specific" 3 (hop "10.1.2.9");
  Alcotest.(check int) "mid" 2 (hop "10.1.9.9");
  Alcotest.(check int) "least specific" 1 (hop "10.9.9.9");
  Alcotest.(check int) "no match" (-1) (hop "11.0.0.1")

let test_preference_shorter_as_path () =
  let p = prefix "10.0.0.0/16" in
  let rib =
    Rib.empty
    |> Fun.flip Rib.add (Rib.route ~as_path_len:3 ~prefix:p ~next_hop:1 ())
    |> Fun.flip Rib.add (Rib.route ~as_path_len:2 ~prefix:p ~next_hop:2 ())
  in
  Alcotest.(check int) "one route kept" 1 (Rib.size rib);
  match Rib.lookup rib (Ipv4.of_string "10.0.1.1") with
  | Some r -> Alcotest.(check int) "shorter path wins" 2 r.Rib.next_hop
  | None -> Alcotest.fail "lookup failed"

let test_incumbent_wins_ties () =
  let p = prefix "10.0.0.0/16" in
  let rib =
    Rib.empty
    |> Fun.flip Rib.add (Rib.route ~as_path_len:2 ~prefix:p ~next_hop:1 ())
    |> Fun.flip Rib.add (Rib.route ~as_path_len:2 ~prefix:p ~next_hop:2 ())
  in
  match Rib.lookup rib (Ipv4.of_string "10.0.1.1") with
  | Some r -> Alcotest.(check int) "incumbent kept" 1 r.Rib.next_hop
  | None -> Alcotest.fail "lookup failed"

let test_tier_of () =
  let c = Community.tier ~asn:65000 2 in
  let rib =
    Rib.add Rib.empty
      (Rib.route ~communities:[ c ] ~prefix:(prefix "10.0.0.0/8") ~next_hop:1 ())
  in
  Alcotest.(check (option int)) "tier" (Some 2) (Rib.tier_of rib (Ipv4.of_string "10.1.1.1"));
  Alcotest.(check (option int)) "no route" None (Rib.tier_of rib (Ipv4.of_string "11.1.1.1"))

let test_with_community () =
  let c0 = Community.tier ~asn:65000 0 in
  let c1 = Community.tier ~asn:65000 1 in
  let rib =
    Rib.empty
    |> Fun.flip Rib.add (Rib.route ~communities:[ c0 ] ~prefix:(prefix "10.0.0.0/16") ~next_hop:1 ())
    |> Fun.flip Rib.add (Rib.route ~communities:[ c1 ] ~prefix:(prefix "10.1.0.0/16") ~next_hop:1 ())
    |> Fun.flip Rib.add (Rib.route ~communities:[ c1 ] ~prefix:(prefix "10.2.0.0/16") ~next_hop:1 ())
  in
  Alcotest.(check int) "tier 1 routes" 2 (List.length (Rib.with_community rib c1));
  Alcotest.(check int) "tier 0 routes" 1 (List.length (Rib.with_community rib c0))

let test_immutability () =
  let rib0 = Rib.empty in
  let _rib1 = Rib.add rib0 (Rib.route ~prefix:(prefix "10.0.0.0/8") ~next_hop:1 ()) in
  Alcotest.(check int) "original untouched" 0 (Rib.size rib0)

let prop_lookup_matches_membership =
  QCheck.Test.make ~name:"lookup result always covers the address" ~count:300
    QCheck.(pair (int_bound 0xFFFF) (int_range 8 28))
    (fun (host, bits) ->
      let base = Ipv4.of_int (0x0A000000 lor host) in
      let rib =
        Rib.add Rib.empty (Rib.route ~prefix:(Ipv4.prefix base bits) ~next_hop:1 ())
      in
      let addr = Ipv4.of_int (0x0A000000 lor ((host + 1) land 0xFFFF)) in
      match Rib.lookup rib addr with
      | Some r -> Ipv4.mem addr r.Rib.prefix
      | None -> true)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add and lookup" `Quick test_add_and_lookup;
    Alcotest.test_case "longest-prefix match" `Quick test_longest_prefix_match;
    Alcotest.test_case "shorter AS path preferred" `Quick test_preference_shorter_as_path;
    Alcotest.test_case "incumbent wins ties" `Quick test_incumbent_wins_ties;
    Alcotest.test_case "tier_of" `Quick test_tier_of;
    Alcotest.test_case "with_community" `Quick test_with_community;
    Alcotest.test_case "persistence" `Quick test_immutability;
    QCheck_alcotest.to_alcotest prop_lookup_matches_membership;
  ]
