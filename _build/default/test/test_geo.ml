open Netsim

let checkf tol = Alcotest.(check (float tol))

let london = Geo.coord ~lat:51.51 ~lon:(-0.13)
let paris = Geo.coord ~lat:48.86 ~lon:2.35
let nyc = Geo.coord ~lat:40.71 ~lon:(-74.01)

let test_coord_validation () =
  Alcotest.check_raises "lat" (Invalid_argument "Geo.coord: latitude out of range")
    (fun () -> ignore (Geo.coord ~lat:91. ~lon:0.));
  Alcotest.check_raises "lon" (Invalid_argument "Geo.coord: longitude out of range")
    (fun () -> ignore (Geo.coord ~lat:0. ~lon:181.))

let test_known_distances () =
  (* London-Paris is ~213 statute miles, London-NYC ~3460. *)
  checkf 5. "london-paris" 213. (Geo.distance_miles london paris);
  checkf 40. "london-nyc" 3460. (Geo.distance_miles london nyc)

let test_distance_properties () =
  checkf 1e-9 "self distance" 0. (Geo.distance_miles london london);
  checkf 1e-6 "symmetry" (Geo.distance_miles london paris) (Geo.distance_miles paris london)

let test_km_conversion () =
  let miles = Geo.distance_miles london paris in
  let km = Geo.distance_km london paris in
  checkf 0.01 "km/mi ratio" 1.609 (km /. miles)

let test_midpoint () =
  let mid = Geo.midpoint london paris in
  let d1 = Geo.distance_miles london mid in
  let d2 = Geo.distance_miles mid paris in
  checkf 0.5 "midpoint equidistant" d1 d2

let test_jitter_within_radius () =
  let rng = Numerics.Rng.create 17 in
  for _ = 1 to 500 do
    let p = Geo.jitter rng ~radius_miles:10. london in
    let d = Geo.distance_miles london p in
    if d > 10.5 then Alcotest.failf "jitter escaped radius: %f" d
  done

let test_jitter_zero_radius () =
  let rng = Numerics.Rng.create 17 in
  let p = Geo.jitter rng ~radius_miles:0. london in
  checkf 1e-6 "no displacement" 0. (Geo.distance_miles london p)

let prop_triangle_inequality =
  let coord_gen =
    QCheck.Gen.map2
      (fun lat lon -> Geo.coord ~lat ~lon)
      (QCheck.Gen.float_range (-80.) 80.)
      (QCheck.Gen.float_range (-179.) 179.)
  in
  let arb = QCheck.make coord_gen in
  QCheck.Test.make ~name:"great-circle triangle inequality" ~count:300
    (QCheck.triple arb arb arb)
    (fun (a, b, c) ->
      Geo.distance_miles a c
      <= Geo.distance_miles a b +. Geo.distance_miles b c +. 1e-6)

let prop_distance_nonneg =
  let coord_gen =
    QCheck.Gen.map2
      (fun lat lon -> Geo.coord ~lat ~lon)
      (QCheck.Gen.float_range (-90.) 90.)
      (QCheck.Gen.float_range (-180.) 180.)
  in
  let arb = QCheck.make coord_gen in
  QCheck.Test.make ~name:"distance non-negative and bounded" ~count:300
    (QCheck.pair arb arb)
    (fun (a, b) ->
      let d = Geo.distance_miles a b in
      d >= 0. && d <= Float.pi *. Geo.earth_radius_miles +. 1e-6)

let suite =
  [
    Alcotest.test_case "coord validation" `Quick test_coord_validation;
    Alcotest.test_case "known distances" `Quick test_known_distances;
    Alcotest.test_case "distance properties" `Quick test_distance_properties;
    Alcotest.test_case "km conversion" `Quick test_km_conversion;
    Alcotest.test_case "midpoint" `Quick test_midpoint;
    Alcotest.test_case "jitter within radius" `Quick test_jitter_within_radius;
    Alcotest.test_case "jitter zero radius" `Quick test_jitter_zero_radius;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_distance_nonneg;
  ]
