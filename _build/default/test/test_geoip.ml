open Flowgen

let db = lazy (Geoip.synthesize Netsim.Cities.all)

let test_disjoint_prefixes () =
  let entries = Geoip.entries (Lazy.force db) in
  let bases =
    List.map (fun e -> Ipv4.to_int e.Geoip.prefix.Ipv4.base) entries
  in
  Alcotest.(check int) "no overlap at equal length"
    (List.length bases)
    (List.length (List.sort_uniq compare bases))

let test_every_city_covered () =
  let t = Lazy.force db in
  let rng = Numerics.Rng.create 1 in
  List.iter
    (fun city ->
      let a = Geoip.random_address_in rng t city in
      match Geoip.lookup t a with
      | Some found ->
          Alcotest.(check string) "lookup returns owner" city.Netsim.Cities.name
            found.Netsim.Cities.name
      | None -> Alcotest.failf "no coverage for %s" city.Netsim.Cities.name)
    Netsim.Cities.all

let test_lookup_unknown () =
  let t = Lazy.force db in
  Alcotest.(check bool) "public address unknown" true
    (Geoip.lookup t (Ipv4.of_string "8.8.8.8") = None)

let test_distance () =
  let t = Lazy.force db in
  let rng = Numerics.Rng.create 2 in
  let london = Netsim.Cities.find "London" in
  let paris = Netsim.Cities.find "Paris" in
  let a = Geoip.random_address_in rng t london in
  let b = Geoip.random_address_in rng t paris in
  match Geoip.distance_miles t a b with
  | None -> Alcotest.fail "distance failed"
  | Some d -> Alcotest.(check (float 5.)) "london-paris" 213. d

let test_classify () =
  let t = Lazy.force db in
  let rng = Numerics.Rng.create 3 in
  let addr city = Geoip.random_address_in rng t (Netsim.Cities.find city) in
  let check_class src dst expected =
    match Geoip.classify t ~src:(addr src) ~dst:(addr dst) with
    | Some l -> Alcotest.(check string) (src ^ "->" ^ dst) expected (Geoip.locality_to_string l)
    | None -> Alcotest.fail "classification failed"
  in
  check_class "Berlin" "Berlin" "metro";
  check_class "Berlin" "Munich" "national";
  check_class "Berlin" "Paris" "international"

let test_classify_unknown () =
  let t = Lazy.force db in
  Alcotest.(check bool) "unknown src" true
    (Geoip.classify t ~src:(Ipv4.of_string "8.8.8.8")
       ~dst:(Ipv4.of_string "8.8.4.4")
    = None)

let test_classify_distance_thresholds () =
  let f = Geoip.classify_distance ~metro_miles:10. ~national_miles:100. in
  Alcotest.(check string) "metro" "metro" (Geoip.locality_to_string (f 5.));
  Alcotest.(check string) "national" "national" (Geoip.locality_to_string (f 50.));
  Alcotest.(check string) "international" "international" (Geoip.locality_to_string (f 500.));
  Alcotest.(check string) "boundary is national" "national" (Geoip.locality_to_string (f 10.))

let test_classify_distance_invalid () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Geoip.classify_distance: need 0 <= metro <= national")
    (fun () -> ignore (Geoip.classify_distance ~metro_miles:100. ~national_miles:10. 5.))

let test_synthesize_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Geoip.synthesize: empty city list")
    (fun () -> ignore (Geoip.synthesize []));
  Alcotest.check_raises "bad bits"
    (Invalid_argument "Geoip.synthesize: prefix_bits out of [8, 30]") (fun () ->
      ignore (Geoip.synthesize ~prefix_bits:4 Netsim.Cities.all))

let suite =
  [
    Alcotest.test_case "prefixes disjoint" `Quick test_disjoint_prefixes;
    Alcotest.test_case "every city covered" `Quick test_every_city_covered;
    Alcotest.test_case "unknown lookup" `Quick test_lookup_unknown;
    Alcotest.test_case "address distance" `Quick test_distance;
    Alcotest.test_case "metro/national/international" `Quick test_classify;
    Alcotest.test_case "classify unknown" `Quick test_classify_unknown;
    Alcotest.test_case "distance thresholds" `Quick test_classify_distance_thresholds;
    Alcotest.test_case "invalid thresholds" `Quick test_classify_distance_invalid;
    Alcotest.test_case "synthesize validation" `Quick test_synthesize_validation;
  ]
