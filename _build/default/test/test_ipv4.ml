open Flowgen

let test_roundtrip_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255"; "192.168.0.1" ]

let test_of_octets () =
  Alcotest.(check int) "value" 0x0A010203 (Ipv4.to_int (Ipv4.of_octets 10 1 2 3))

let test_invalid_strings () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed address %s" s)
    [ "1.2.3"; "1.2.3.4.5"; "a.b.c.d"; "256.1.1.1"; "" ]

let test_of_int_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Ipv4.of_int: out of range")
    (fun () -> ignore (Ipv4.of_int (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Ipv4.of_int: out of range")
    (fun () -> ignore (Ipv4.of_int (1 lsl 32)))

let test_prefix_masking () =
  let p = Ipv4.prefix (Ipv4.of_string "10.1.2.3") 16 in
  Alcotest.(check string) "masked base" "10.1.0.0/16" (Ipv4.prefix_to_string p)

let test_prefix_membership () =
  let p = Ipv4.prefix_of_string "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true (Ipv4.mem (Ipv4.of_string "10.1.255.255") p);
  Alcotest.(check bool) "outside" false (Ipv4.mem (Ipv4.of_string "10.2.0.0") p);
  Alcotest.(check bool) "base inside" true (Ipv4.mem (Ipv4.of_string "10.1.0.0") p)

let test_prefix_zero_bits () =
  let p = Ipv4.prefix (Ipv4.of_string "1.2.3.4") 0 in
  Alcotest.(check bool) "everything matches /0" true (Ipv4.mem (Ipv4.of_string "200.1.1.1") p)

let test_prefix_32_bits () =
  let p = Ipv4.prefix (Ipv4.of_string "1.2.3.4") 32 in
  Alcotest.(check bool) "host route matches itself" true (Ipv4.mem (Ipv4.of_string "1.2.3.4") p);
  Alcotest.(check bool) "host route excludes neighbor" false (Ipv4.mem (Ipv4.of_string "1.2.3.5") p);
  Alcotest.(check int) "size" 1 (Ipv4.prefix_size p)

let test_prefix_size () =
  Alcotest.(check int) "/24" 256 (Ipv4.prefix_size (Ipv4.prefix_of_string "10.0.0.0/24"))

let test_nth_in () =
  let p = Ipv4.prefix_of_string "10.0.0.0/24" in
  Alcotest.(check string) "first" "10.0.0.0" (Ipv4.to_string (Ipv4.nth_in p 0));
  Alcotest.(check string) "last" "10.0.0.255" (Ipv4.to_string (Ipv4.nth_in p 255));
  Alcotest.check_raises "out of range" (Invalid_argument "Ipv4.nth_in: out of range")
    (fun () -> ignore (Ipv4.nth_in p 256))

let test_random_in () =
  let rng = Numerics.Rng.create 3 in
  let p = Ipv4.prefix_of_string "10.5.0.0/16" in
  for _ = 1 to 1000 do
    let a = Ipv4.random_in rng p in
    if not (Ipv4.mem a p) then Alcotest.failf "escaped prefix: %s" (Ipv4.to_string a)
  done

let test_compare_equal () =
  let a = Ipv4.of_string "1.2.3.4" and b = Ipv4.of_string "1.2.3.5" in
  Alcotest.(check bool) "lt" true (Ipv4.compare a b < 0);
  Alcotest.(check bool) "eq" true (Ipv4.equal a a)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string = id" ~count:500
    QCheck.(int_bound ((1 lsl 30) - 1))
    (fun v ->
      (* Cover the full range by scaling into 32 bits. *)
      let v = v * 4 in
      let a = Ipv4.of_int v in
      Ipv4.equal a (Ipv4.of_string (Ipv4.to_string a)))

let suite =
  [
    Alcotest.test_case "string roundtrip" `Quick test_roundtrip_string;
    Alcotest.test_case "of_octets" `Quick test_of_octets;
    Alcotest.test_case "invalid strings rejected" `Quick test_invalid_strings;
    Alcotest.test_case "of_int bounds" `Quick test_of_int_bounds;
    Alcotest.test_case "prefix masks host bits" `Quick test_prefix_masking;
    Alcotest.test_case "prefix membership" `Quick test_prefix_membership;
    Alcotest.test_case "/0 prefix" `Quick test_prefix_zero_bits;
    Alcotest.test_case "/32 prefix" `Quick test_prefix_32_bits;
    Alcotest.test_case "prefix size" `Quick test_prefix_size;
    Alcotest.test_case "nth_in" `Quick test_nth_in;
    Alcotest.test_case "random_in stays inside" `Quick test_random_in;
    Alcotest.test_case "compare/equal" `Quick test_compare_equal;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
  ]
