open Tiered

let table () =
  Report.make ~title:"T" ~header:[ "a"; "b" ]
    [ [ "1"; "2" ]; [ "333"; "4" ] ]
    ~notes:[ "a note" ]

let test_make_validates_width () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.make: ragged row in table T")
    (fun () -> ignore (Report.make ~title:"T" ~header:[ "a"; "b" ] [ [ "1" ] ]))

let test_print_contains_everything () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.print ppf (table ());
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      if not (String.length out >= String.length needle) then Alcotest.fail "short";
      let found =
        let rec scan i =
          if i + String.length needle > String.length out then false
          else if String.sub out i (String.length needle) = needle then true
          else scan (i + 1)
        in
        scan 0
      in
      if not found then Alcotest.failf "missing %S in output" needle)
    [ "T"; "a"; "b"; "333"; "note: a note" ]

let test_csv () =
  let csv = Report.to_csv (table ()) in
  Alcotest.(check string) "csv" "a,b\n1,2\n333,4\n" csv

let test_csv_escaping () =
  let t = Report.make ~title:"T" ~header:[ "x" ] [ [ "a,b" ]; [ "q\"q" ] ] in
  Alcotest.(check string) "escaped" "x\n\"a,b\"\n\"q\"\"q\"\n" (Report.to_csv t)

let test_markdown () =
  let md = Report.to_markdown (table ()) in
  Alcotest.(check bool) "heading" true (String.length md > 4 && String.sub md 0 4 = "### ");
  let has needle =
    let n = String.length needle and m = String.length md in
    let rec scan i = i + n <= m && (String.sub md i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "header row" true (has "| a | b |");
  Alcotest.(check bool) "separator" true (has "| --- | --- |");
  Alcotest.(check bool) "data row" true (has "| 333 | 4 |");
  Alcotest.(check bool) "note" true (has "> a note")

let test_cell_formats () =
  Alcotest.(check string) "moderate" "1.235" (Report.cell_f 1.23456);
  Alcotest.(check string) "tiny" "1e-09" (Report.cell_f 1e-9);
  Alcotest.(check string) "nan" "nan" (Report.cell_f Float.nan);
  Alcotest.(check string) "pct" "12.3%" (Report.cell_pct 0.123)

let suite =
  [
    Alcotest.test_case "width validation" `Quick test_make_validates_width;
    Alcotest.test_case "print output" `Quick test_print_contains_everything;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "markdown" `Quick test_markdown;
    Alcotest.test_case "cell formats" `Quick test_cell_formats;
  ]
