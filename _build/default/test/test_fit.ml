open Numerics

let checkf tol = Alcotest.(check (float tol))

let test_linear_exact () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1. ) xs in
  let fit = Fit.linear ~xs ~ys in
  checkf 1e-9 "slope" 2.5 fit.Fit.slope;
  checkf 1e-9 "intercept" (-1.) fit.Fit.intercept;
  checkf 1e-9 "r2" 1. fit.Fit.r2

let test_linear_noisy () =
  let rng = Rng.create 99 in
  let xs = Array.init 200 (fun i -> float_of_int i /. 10.) in
  let ys = Array.map (fun x -> (3. *. x) +. 2. +. Dist.normal rng ~mean:0. ~stddev:0.1) xs in
  let fit = Fit.linear ~xs ~ys in
  checkf 0.05 "slope" 3. fit.Fit.slope;
  checkf 0.1 "intercept" 2. fit.Fit.intercept;
  Alcotest.(check bool) "good r2" true (fit.Fit.r2 > 0.99)

let test_linear_invalid () =
  Alcotest.check_raises "one point" (Invalid_argument "Fit.linear: need at least two points")
    (fun () -> ignore (Fit.linear ~xs:[| 1. |] ~ys:[| 1. |]));
  Alcotest.check_raises "degenerate" (Invalid_argument "Fit.linear: degenerate xs")
    (fun () -> ignore (Fit.linear ~xs:[| 2.; 2. |] ~ys:[| 1.; 3. |]))

let test_log_linear_exact () =
  let xs = [| 0.1; 0.5; 1.; 2.; 5. |] in
  let ys = Array.map (fun x -> (0.4 *. log x) +. 1. ) xs in
  let fit = Fit.log_linear ~xs ~ys in
  checkf 1e-9 "k" 0.4 fit.Fit.k;
  checkf 1e-9 "c" 1. fit.Fit.c;
  checkf 1e-9 "eval" ((0.4 *. log 3.) +. 1.) (Fit.log_curve_eval fit 3.)

let test_log_linear_rejects_nonpositive () =
  Alcotest.check_raises "x <= 0"
    (Invalid_argument "Fit.log_linear: xs must be positive") (fun () ->
      ignore (Fit.log_linear ~xs:[| 0.; 1. |] ~ys:[| 1.; 2. |]))

let test_base_roundtrip () =
  let curve = { Fit.k = 0.7; c = 0.3; r2 = 1. } in
  let based = Fit.to_base curve ~base:6. in
  checkf 1e-9 "a" (0.7 *. log 6.) based.Fit.a;
  let back = Fit.of_base based in
  checkf 1e-9 "k roundtrip" curve.Fit.k back.Fit.k;
  checkf 1e-9 "c roundtrip" curve.Fit.c back.Fit.c

let test_paper_curve_recovery () =
  (* The Fig. 6 substitution: sample the paper's ITU curve, recover it. *)
  let truth = Fit.of_base { Fit.a = 0.43; b = 9.43; c = 0.99 } in
  let rng = Rng.create 2011 in
  let xs = Array.init 50 (fun i -> 0.02 +. (0.97 *. float_of_int i /. 49.)) in
  let ys =
    Array.map (fun x -> Fit.log_curve_eval truth x +. Dist.normal rng ~mean:0. ~stddev:0.01) xs
  in
  let fit = Fit.log_linear ~xs ~ys in
  let recovered = Fit.to_base fit ~base:9.43 in
  checkf 0.03 "a recovered" 0.43 recovered.Fit.a;
  checkf 0.02 "c recovered" 0.99 recovered.Fit.c;
  Alcotest.(check bool) "r2 high" true (fit.Fit.r2 > 0.98)

let test_r2_perfect_and_bad () =
  checkf 1e-12 "perfect" 1. (Fit.r2 ~predicted:[| 1.; 2. |] ~observed:[| 1.; 2. |]);
  Alcotest.(check bool) "bad fit below 1" true
    (Fit.r2 ~predicted:[| 5.; 5. |] ~observed:[| 1.; 2. |] < 0.)

let prop_linear_fit_r2_bounds =
  QCheck.Test.make ~name:"OLS r2 <= 1" ~count:200
    QCheck.(
      list_of_size Gen.(3 -- 20)
        (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))
    (fun points ->
      let xs = Array.of_list (List.map fst points) in
      let ys = Array.of_list (List.map snd points) in
      QCheck.assume (Array.exists (fun x -> x <> xs.(0)) xs);
      let fit = Fit.linear ~xs ~ys in
      fit.Fit.r2 <= 1. +. 1e-9)

let suite =
  [
    Alcotest.test_case "linear exact" `Quick test_linear_exact;
    Alcotest.test_case "linear noisy" `Quick test_linear_noisy;
    Alcotest.test_case "linear invalid input" `Quick test_linear_invalid;
    Alcotest.test_case "log-linear exact" `Quick test_log_linear_exact;
    Alcotest.test_case "log-linear rejects x<=0" `Quick test_log_linear_rejects_nonpositive;
    Alcotest.test_case "base conversion roundtrip" `Quick test_base_roundtrip;
    Alcotest.test_case "paper ITU curve recovery" `Quick test_paper_curve_recovery;
    Alcotest.test_case "r2 bounds" `Quick test_r2_perfect_and_bad;
    QCheck_alcotest.to_alcotest prop_linear_fit_r2_bounds;
  ]
