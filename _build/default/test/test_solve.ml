open Numerics

let checkf tol = Alcotest.(check (float tol))

let test_bisect_sqrt2 () =
  let root = Solve.bisect ~f:(fun x -> (x *. x) -. 2.) 0. 2. in
  checkf 1e-9 "sqrt 2" (sqrt 2.) root

let test_bisect_endpoint_root () =
  checkf 0. "lo is root" 0. (Solve.bisect ~f:Fun.id 0. 1.);
  checkf 0. "hi is root" 1. (Solve.bisect ~f:(fun x -> x -. 1.) 0. 1.)

let test_bisect_no_sign_change () =
  Alcotest.check_raises "same sign"
    (Invalid_argument "Solve.bisect: f(lo) and f(hi) have the same sign") (fun () ->
      ignore (Solve.bisect ~f:(fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_newton_converges () =
  let root = Solve.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1. in
  checkf 1e-9 "sqrt 2" (sqrt 2.) root

let test_newton_zero_derivative () =
  Alcotest.check_raises "flat" (Failure "Solve.newton: zero derivative") (fun () ->
      ignore (Solve.newton ~f:(fun _ -> 1.) ~df:(fun _ -> 0.) 0.))

let test_newton_bisect_hard () =
  (* A function where plain Newton from the midpoint diverges but the
     safeguarded bracket holds: steep atan-like shape. *)
  let f x = atan (20. *. (x -. 0.1)) in
  let df x = 20. /. (1. +. (400. *. (x -. 0.1) ** 2.)) in
  let root = Solve.newton_bisect ~f ~df (-100.) 100. in
  checkf 1e-6 "atan root" 0.1 root

let test_newton_bisect_logit_margin () =
  (* The logit common-margin equation x - 1 = S e^(-x). *)
  let ln_s = 3.0 in
  let f x = x -. 1. -. exp (ln_s -. x) in
  let df x = 1. +. exp (ln_s -. x) in
  let x = Solve.newton_bisect ~f ~df 1. (Float.max 2. (ln_s +. 2.)) in
  checkf 1e-8 "fixed point residual" 0. (f x);
  Alcotest.(check bool) "x > 1" true (x > 1.)

let test_golden_section_parabola () =
  let xmin = Solve.golden_section ~f:(fun x -> (x -. 3.) ** 2.) 0. 10. in
  checkf 1e-6 "parabola min" 3. xmin

let test_golden_section_asymmetric () =
  let f x = (x ** 4.) -. (3. *. x) in
  (* f'(x) = 4x^3 - 3 -> x* = (3/4)^(1/3). *)
  let xmin = Solve.golden_section ~f 0. 2. in
  checkf 1e-5 "quartic min" ((3. /. 4.) ** (1. /. 3.)) xmin

let test_maximize_scalar () =
  let xmax = Solve.maximize_scalar ~f:(fun x -> -.((x -. 1.5) ** 2.)) 0. 4. in
  checkf 1e-6 "max of concave" 1.5 xmax

let prop_bisect_residual =
  QCheck.Test.make ~name:"bisect residual is tiny" ~count:200
    QCheck.(pair (float_range 0.1 50.) (float_range 0.1 10.))
    (fun (target, scale) ->
      (* f(x) = scale * (x - target), root at target. *)
      let f x = scale *. (x -. target) in
      let root = Solve.bisect ~f (-1.) 100. in
      abs_float (root -. target) < 1e-6)

let prop_golden_section_beats_endpoints =
  QCheck.Test.make ~name:"golden section result beats endpoints" ~count:200
    QCheck.(pair (float_range (-5.) 5.) (float_range 0.5 3.))
    (fun (center, width) ->
      let f x = (x -. center) ** 2. in
      let lo = center -. (3. *. width) and hi = center +. (2. *. width) in
      let x = Solve.golden_section ~f lo hi in
      f x <= f lo +. 1e-9 && f x <= f hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "bisect sqrt(2)" `Quick test_bisect_sqrt2;
    Alcotest.test_case "bisect endpoint roots" `Quick test_bisect_endpoint_root;
    Alcotest.test_case "bisect requires sign change" `Quick test_bisect_no_sign_change;
    Alcotest.test_case "newton converges" `Quick test_newton_converges;
    Alcotest.test_case "newton rejects flat derivative" `Quick test_newton_zero_derivative;
    Alcotest.test_case "newton_bisect on stiff function" `Quick test_newton_bisect_hard;
    Alcotest.test_case "newton_bisect logit margin" `Quick test_newton_bisect_logit_margin;
    Alcotest.test_case "golden section parabola" `Quick test_golden_section_parabola;
    Alcotest.test_case "golden section quartic" `Quick test_golden_section_asymmetric;
    Alcotest.test_case "maximize_scalar" `Quick test_maximize_scalar;
    QCheck_alcotest.to_alcotest prop_bisect_residual;
    QCheck_alcotest.to_alcotest prop_golden_section_beats_endpoints;
  ]
