open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_blended_price_is_p0_ced () =
  let m = Fixtures.ced_market () in
  let o = Pricing.blended m in
  checkf 1e-9 "p0 recovered" m.Market.p0 o.Pricing.bundle_prices.(0)

let test_blended_price_is_p0_logit () =
  let m = Fixtures.logit_market () in
  let o = Pricing.blended m in
  checkf 1e-6 "p0 recovered" m.Market.p0 o.Pricing.bundle_prices.(0)

let test_blended_demand_matches_observed () =
  let m = Fixtures.ced_market () in
  let o = Pricing.blended m in
  Array.iteri
    (fun i q -> checkf 1e-6 "observed demand" m.Market.flows.(i).Flow.demand_mbps q)
    o.Pricing.flow_demands

let test_more_bundles_more_profit_ced () =
  let m = Fixtures.ced_market () in
  let profit b = (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit in
  let p1 = profit 1 and p2 = profit 2 and p4 = profit 4 and p8 = profit 8 in
  Alcotest.(check bool) "1 <= 2" true (p1 <= p2 +. 1e-9);
  Alcotest.(check bool) "2 <= 4" true (p2 <= p4 +. 1e-9);
  Alcotest.(check bool) "4 <= 8" true (p4 <= p8 +. 1e-9)

let test_max_profit_is_upper_bound () =
  List.iter
    (fun m ->
      let maximum = Pricing.max_profit m in
      List.iter
        (fun b ->
          let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:b in
          let profit = (Pricing.evaluate m bundles).Pricing.profit in
          Alcotest.(check bool) "bounded" true (profit <= maximum +. 1e-6 *. abs_float maximum))
        [ 1; 2; 4; 8 ])
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_singletons_achieve_max_ced () =
  let m = Fixtures.ced_market () in
  let o = Pricing.evaluate m (Bundle.singletons ~n_flows:(Market.n_flows m)) in
  checkf 1e-6 "per-flow pricing = max" (Pricing.max_profit m) o.Pricing.profit

let test_singletons_achieve_max_logit () =
  let m = Fixtures.logit_market () in
  let o = Pricing.evaluate m (Bundle.singletons ~n_flows:(Market.n_flows m)) in
  let rel = abs_float (Pricing.max_profit m -. o.Pricing.profit) /. o.Pricing.profit in
  Alcotest.(check bool) "per-flow pricing = max" true (rel < 1e-9)

let test_outcome_accounting_identity () =
  List.iter
    (fun m ->
      let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
      checkf 1e-6 "profit = revenue - cost" o.Pricing.profit
        (o.Pricing.revenue -. o.Pricing.delivery_cost);
      checkf 1e-6 "welfare" (Pricing.welfare o) (o.Pricing.profit +. o.Pricing.consumer_surplus))
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_flow_prices_follow_bundles () =
  let m = Fixtures.ced_market () in
  let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:3 in
  let o = Pricing.evaluate m bundles in
  let owner = Bundle.member_of bundles ~n_flows:(Market.n_flows m) in
  Array.iteri
    (fun i p -> checkf 0. "flow price = bundle price" o.Pricing.bundle_prices.(owner.(i)) p)
    o.Pricing.flow_prices

let test_tiering_raises_profit_and_welfare () =
  (* The Fig. 1 claim: two well-chosen tiers beat the blended rate on
     both profit and total welfare. *)
  let m = Fixtures.ced_market () in
  let blended = Pricing.blended m in
  let tiered = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:2) in
  Alcotest.(check bool) "profit up" true (tiered.Pricing.profit > blended.Pricing.profit);
  Alcotest.(check bool) "welfare up" true (Pricing.welfare tiered > Pricing.welfare blended)

let test_evaluate_at_prices () =
  let m = Fixtures.ced_market () in
  let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:2 in
  let optimal = Pricing.evaluate m bundles in
  (* Perturbing the optimal prices must not help. *)
  let perturbed =
    Array.map (fun p -> p *. 1.1) optimal.Pricing.bundle_prices
  in
  let o = Pricing.evaluate_at_prices m bundles perturbed in
  Alcotest.(check bool) "perturbation hurts" true (o.Pricing.profit <= optimal.Pricing.profit);
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Pricing.evaluate_at_prices: one price per bundle required")
    (fun () -> ignore (Pricing.evaluate_at_prices m bundles [| 1. |]))

let test_logit_bundle_shares_consistency () =
  (* Bundle-level pricing via Eqs. 10-11 must equal flow-level profit
     evaluation at those prices. *)
  let m = Fixtures.logit_market () in
  let bundles = Strategy.apply Strategy.Cost_weighted m ~n_bundles:3 in
  let o = Pricing.evaluate m bundles in
  let direct =
    Logit.profit_at ~alpha:m.Market.alpha ~k:m.Market.k ~valuations:m.Market.valuations
      ~costs:m.Market.costs ~prices:o.Pricing.flow_prices
  in
  checkf 1e-6 "bundle = flow-level" direct o.Pricing.profit

let prop_ced_profit_positive_at_optimum =
  QCheck.Test.make ~name:"optimal CED bundle profit positive" ~count:100
    QCheck.(
      list_of_size Gen.(2 -- 10)
        (pair (float_range 1. 100.) (float_range 1. 1000.)))
    (fun spec ->
      let flows = Fixtures.flows_of_spec spec in
      let m = Fixtures.ced_market ~flows () in
      let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
      o.Pricing.profit > 0.)

let suite =
  [
    Alcotest.test_case "blended price = p0 (CED)" `Quick test_blended_price_is_p0_ced;
    Alcotest.test_case "blended price = p0 (logit)" `Quick test_blended_price_is_p0_logit;
    Alcotest.test_case "blended demand = observed" `Quick test_blended_demand_matches_observed;
    Alcotest.test_case "profit monotone in bundles" `Quick test_more_bundles_more_profit_ced;
    Alcotest.test_case "max profit bounds all" `Quick test_max_profit_is_upper_bound;
    Alcotest.test_case "singletons reach max (CED)" `Quick test_singletons_achieve_max_ced;
    Alcotest.test_case "singletons reach max (logit)" `Quick test_singletons_achieve_max_logit;
    Alcotest.test_case "accounting identity" `Quick test_outcome_accounting_identity;
    Alcotest.test_case "flow prices follow bundles" `Quick test_flow_prices_follow_bundles;
    Alcotest.test_case "tiering raises profit+welfare" `Quick test_tiering_raises_profit_and_welfare;
    Alcotest.test_case "evaluate_at_prices" `Quick test_evaluate_at_prices;
    Alcotest.test_case "logit bundle/flow consistency" `Quick test_logit_bundle_shares_consistency;
    QCheck_alcotest.to_alcotest prop_ced_profit_positive_at_optimum;
  ]
