open Numerics

let checkf = Alcotest.(check (float 1e-9))

let test_sum () =
  checkf "simple" 6. (Stats.sum [| 1.; 2.; 3. |]);
  checkf "empty" 0. (Stats.sum [||])

let test_sum_compensated () =
  (* Adding many tiny values to a large one loses them under naive
     summation; Kahan keeps them. *)
  let xs = Array.make 10_001 1e-10 in
  xs.(0) <- 1e10;
  let total = Stats.sum xs in
  Alcotest.(check (float 1e-7)) "kahan" (1e10 +. 1e-6) total

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf "mean" 5. (Stats.mean xs);
  checkf "variance" 4. (Stats.variance xs);
  checkf "stddev" 2. (Stats.stddev xs);
  checkf "cv" 0.4 (Stats.cv xs)

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let test_cv_zero_mean () =
  Alcotest.check_raises "cv" (Invalid_argument "Stats.cv: zero mean") (fun () ->
      ignore (Stats.cv [| 1.; -1. |]))

let test_weighted_mean () =
  checkf "weighted" 2.5
    (Stats.weighted_mean ~values:[| 1.; 2.; 3. |] ~weights:[| 1.; 0.; 3. |]);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Stats.weighted_mean: length mismatch") (fun () ->
      ignore (Stats.weighted_mean ~values:[| 1. |] ~weights:[| 1.; 2. |]));
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Stats.weighted_mean: non-positive total weight") (fun () ->
      ignore (Stats.weighted_mean ~values:[| 1. |] ~weights:[| 0. |]))

let test_min_max () =
  checkf "min" (-3.) (Stats.min [| 2.; -3.; 5. |]);
  checkf "max" 5. (Stats.max [| 2.; -3.; 5. |])

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  checkf "q0" 1. (Stats.quantile xs 0.);
  checkf "q1" 4. (Stats.quantile xs 1.);
  checkf "median interpolates" 2.5 (Stats.median xs);
  checkf "q0.25" 1.75 (Stats.quantile xs 0.25);
  (* quantile must not mutate. *)
  let ys = [| 3.; 1.; 2. |] in
  let _ = Stats.quantile ys 0.5 in
  Alcotest.(check (array (float 0.))) "unmutated" [| 3.; 1.; 2. |] ys

let test_quantile_invalid () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q out of [0,1]") (fun () ->
      ignore (Stats.quantile [| 1. |] 1.5))

let test_summarize_zero_mean_cv_nan () =
  let s = Numerics.Stats.summarize [| 1.; -1. |] in
  Alcotest.(check bool) "cv is nan" true (Float.is_nan s.Numerics.Stats.cv);
  (* pp_summary must not raise on nan. *)
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Numerics.Stats.pp_summary ppf s;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "printed" true (Buffer.length buf > 0)

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  checkf "mean" 3. s.Stats.mean;
  checkf "p50" 3. s.Stats.p50;
  checkf "min" 1. s.Stats.min;
  checkf "max" 5. s.Stats.max

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "bin counts total" 4 (c0 + c1);
  Alcotest.(check int) "first bin" 2 c0

let test_histogram_constant_input () =
  let h = Stats.histogram ~bins:3 [| 5.; 5.; 5. |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 3 total

let test_pearson () =
  checkf "perfect" 1. (Stats.pearson [| 1.; 2.; 3. |] [| 2.; 4.; 6. |]);
  checkf "perfect negative" (-1.) (Stats.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Stats.pearson: degenerate input") (fun () ->
      ignore (Stats.pearson [| 1.; 1. |] [| 1.; 2. |]))

let test_logsumexp () =
  checkf "two zeros" (log 2.) (Stats.logsumexp [| 0.; 0. |]);
  checkf "dominant" 1000. (Stats.logsumexp [| 1000.; -1000. |]);
  Alcotest.(check (float 1e-6)) "large values don't overflow"
    (700. +. log 2.)
    (Stats.logsumexp [| 700.; 700. |]);
  Alcotest.(check bool) "empty" true (Stats.logsumexp [||] = Float.neg_infinity)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(1 -- 20) (float_range (-100.) 100.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:500
    QCheck.(array_of_size Gen.(1 -- 30) (float_range (-1e3) 1e3))
    (fun xs -> Stats.variance xs >= -1e-6)

let prop_logsumexp_exceeds_max =
  QCheck.Test.make ~name:"logsumexp >= max element" ~count:500
    QCheck.(array_of_size Gen.(1 -- 20) (float_range (-500.) 500.))
    (fun xs -> Stats.logsumexp xs >= Stats.max xs -. 1e-9)

let suite =
  [
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "sum is compensated" `Quick test_sum_compensated;
    Alcotest.test_case "mean/variance/stddev/cv" `Quick test_mean_variance;
    Alcotest.test_case "empty input raises" `Quick test_empty_raises;
    Alcotest.test_case "cv rejects zero mean" `Quick test_cv_zero_mean;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "quantile invalid q" `Quick test_quantile_invalid;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize zero-mean cv" `Quick test_summarize_zero_mean_cv_nan;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant input" `Quick test_histogram_constant_input;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "logsumexp" `Quick test_logsumexp;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_logsumexp_exceeds_max;
  ]
