open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_context_ordering () =
  List.iter
    (fun m ->
      let ctx = Capture.context m in
      Alcotest.(check bool) "max > original" true (ctx.Capture.maximum > ctx.Capture.original);
      Alcotest.(check bool) "headroom positive" true (Capture.headroom ctx > 0.))
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_value_endpoints () =
  let m = Fixtures.ced_market () in
  let ctx = Capture.context m in
  checkf 1e-9 "original -> 0" 0. (Capture.value ctx ctx.Capture.original);
  checkf 1e-9 "maximum -> 1" 1. (Capture.value ctx ctx.Capture.maximum)

let test_value_no_headroom () =
  let ctx = { Capture.original = 10.; maximum = 10. } in
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Capture.value: market has no profit headroom") (fun () ->
      ignore (Capture.value ctx 10.))

let test_series_shape () =
  let m = Fixtures.ced_market () in
  let series = Capture.series m Strategy.Optimal ~bundle_counts:[ 1; 2; 3; 4 ] in
  Alcotest.(check int) "four points" 4 (List.length series);
  let captures = List.map (fun p -> p.Capture.capture) series in
  (match captures with
  | first :: _ -> checkf 1e-9 "starts at 0" 0. first
  | [] -> Alcotest.fail "empty series");
  (* Monotone non-decreasing for the optimal strategy. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (a <= b +. 1e-9);
        monotone rest
    | _ -> ()
  in
  monotone captures

let test_series_reaches_most_profit_by_four () =
  (* The paper's headline: 3-4 well-chosen tiers capture ~90%+. *)
  List.iter
    (fun m ->
      let series = Capture.series m Strategy.Optimal ~bundle_counts:[ 4 ] in
      match series with
      | [ p ] ->
          Alcotest.(check bool) "capture >= 0.85" true (p.Capture.capture >= 0.85)
      | _ -> Alcotest.fail "unexpected series")
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_capture_in_unit_range_for_heuristics () =
  let m = Fixtures.logit_market () in
  List.iter
    (fun strategy ->
      List.iter
        (fun p ->
          if p.Capture.capture < -0.01 || p.Capture.capture > 1.01 then
            Alcotest.failf "%s capture out of range: %f" (Strategy.name strategy)
              p.Capture.capture)
        (Capture.series m strategy ~bundle_counts:[ 1; 2; 4; 6 ]))
    Strategy.all

let suite =
  [
    Alcotest.test_case "context ordering" `Quick test_context_ordering;
    Alcotest.test_case "value endpoints" `Quick test_value_endpoints;
    Alcotest.test_case "no headroom" `Quick test_value_no_headroom;
    Alcotest.test_case "series shape" `Quick test_series_shape;
    Alcotest.test_case "90% by four tiers" `Quick test_series_reaches_most_profit_by_four;
    Alcotest.test_case "captures in range" `Quick test_capture_in_unit_range_for_heuristics;
  ]
