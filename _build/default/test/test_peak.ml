open Tiered

let checkf tol = Alcotest.(check (float tol))
let shape = Flowgen.Netflow.default_shape

let test_periods_partition_day () =
  let periods = Peak.periods_of_shape shape ~n_periods:4 in
  Alcotest.(check int) "four periods" 4 (Array.length periods);
  let hours =
    Array.fold_left (fun acc p -> let a, b = p.Peak.hours in acc + b - a) 0 periods
  in
  Alcotest.(check int) "24 hours covered" 24 hours;
  (* Duration-weighted mean weight is one. *)
  let mean =
    Array.fold_left (fun acc p -> acc +. (p.Peak.weight /. 4.)) 0. periods
  in
  checkf 1e-9 "weights average to one" 1. mean

let test_periods_validation () =
  Alcotest.check_raises "5 does not divide 24"
    (Invalid_argument "Peak.periods_of_shape: n_periods must divide 24") (fun () ->
      ignore (Peak.periods_of_shape shape ~n_periods:5))

let test_peak_offpeak_ordering () =
  let periods = Peak.peak_offpeak shape in
  Alcotest.(check int) "two periods" 2 (Array.length periods);
  Alcotest.(check bool) "peak busier than off-peak" true
    (periods.(0).Peak.weight > periods.(1).Peak.weight);
  (* The default shape peaks at hour 20; the busy window must contain it. *)
  let start, stop = periods.(0).Peak.hours in
  Alcotest.(check bool) "peak window covers hour 20" true (start <= 20 && 20 < stop)

let test_flat_shape_no_gain () =
  let flat = { shape with Flowgen.Netflow.diurnal_amplitude = 0. } in
  let m = Fixtures.ced_market () in
  let o = Peak.evaluate m Strategy.Optimal ~n_bundles:2 (Peak.periods_of_shape flat ~n_periods:4) in
  checkf 1e-9 "no gain without a diurnal cycle" 0. o.Peak.gain

let test_no_premium_no_gain () =
  (* The scale-invariance theorem: under CED, a common multiplicative
     diurnal scaling leaves optimal prices unchanged, so without
     time-varying costs time-of-day pricing is worthless. *)
  let m = Fixtures.ced_market () in
  let o =
    Peak.evaluate ~congestion_premium:0. m Strategy.Optimal ~n_bundles:2
      (Peak.peak_offpeak shape)
  in
  checkf 1e-9 "zero gain with flat costs" 0. o.Peak.gain

let test_diurnal_shape_positive_gain () =
  let m = Fixtures.ced_market () in
  let o = Peak.evaluate m Strategy.Optimal ~n_bundles:2 (Peak.peak_offpeak shape) in
  Alcotest.(check bool) "time-of-day pricing gains" true (o.Peak.gain > 0.);
  (* Peak prices exceed off-peak prices tier by tier. *)
  match o.Peak.period_prices with
  | [ (_, peak); (_, off) ] ->
      Array.iteri
        (fun b p -> Alcotest.(check bool) "peak dearer" true (p > off.(b)))
        peak
  | _ -> Alcotest.fail "expected two periods"

let test_per_period_dominates_single_price () =
  (* A single price per bundle is always feasible in the per-period
     problem, so per-period pricing can never lose -- at any
     granularity. (Strict monotonicity in the period count does not
     hold: the peak-load cost kink changes with period averaging.) *)
  let m = Fixtures.ced_market () in
  List.iter
    (fun n ->
      let o =
        Peak.evaluate m Strategy.Optimal ~n_bundles:2
          (Peak.periods_of_shape shape ~n_periods:n)
      in
      Alcotest.(check bool)
        (Printf.sprintf "dominates at %d periods" n)
        true
        (o.Peak.per_period_profit >= o.Peak.single_price_profit -. 1e-9))
    [ 2; 3; 4; 6; 8; 12; 24 ]

let test_single_price_profit_matches_base () =
  (* With flat costs and duration-weighted mean weight one, the
     single-price day profit equals the static market's optimal bundle
     profit. *)
  let m = Fixtures.ced_market () in
  let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:2 in
  let static_profit = (Pricing.evaluate m bundles).Pricing.profit in
  let o =
    Peak.evaluate ~congestion_premium:0. m Strategy.Optimal ~n_bundles:2
      (Peak.periods_of_shape shape ~n_periods:4)
  in
  checkf 1e-6 "consistency" static_profit o.Peak.single_price_profit

let test_logit_rejected () =
  match
    Peak.evaluate (Fixtures.logit_market ()) Strategy.Optimal ~n_bundles:2
      (Peak.peak_offpeak shape)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted logit market"

let suite =
  [
    Alcotest.test_case "periods partition the day" `Quick test_periods_partition_day;
    Alcotest.test_case "period validation" `Quick test_periods_validation;
    Alcotest.test_case "peak/off-peak ordering" `Quick test_peak_offpeak_ordering;
    Alcotest.test_case "flat shape: no gain" `Quick test_flat_shape_no_gain;
    Alcotest.test_case "no premium: no gain" `Quick test_no_premium_no_gain;
    Alcotest.test_case "diurnal shape: positive gain" `Quick test_diurnal_shape_positive_gain;
    Alcotest.test_case "per-period dominates single price" `Quick
      test_per_period_dominates_single_price;
    Alcotest.test_case "single-price consistency" `Quick test_single_price_profit_matches_base;
    Alcotest.test_case "logit rejected" `Quick test_logit_rejected;
  ]
