open Netsim

let test_all_connected () =
  List.iter
    (fun name ->
      let t = Presets.by_name name in
      Alcotest.(check bool) (name ^ " connected") true (Graph.is_connected t.Topology.graph))
    Presets.all_names

let test_eu_isp_shape () =
  let t = Presets.eu_isp () in
  (* 16 core + 5 metros x 3 = 31 PoPs. *)
  Alcotest.(check int) "pop count" 31 (List.length t.Topology.pops);
  (* Metro PoPs sit within ~10 miles of their core. *)
  let london_core = Topology.pop_by_city t "London" in
  List.iter
    (fun (n : Node.t) ->
      if String.length n.Node.name > 6 && String.sub n.Node.name 0 6 = "London" then
        let d = Node.distance_miles london_core n in
        if d > 10. then Alcotest.failf "metro PoP %s too far: %f mi" n.Node.name d)
    t.Topology.pops

let test_eu_isp_has_metro_distances () =
  let t = Presets.eu_isp () in
  let m = Topology.distance_matrix t in
  let n = Array.length m in
  let short = ref 0 and long = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        if m.(i).(j) < 20. then incr short
        else if m.(i).(j) > 200. then incr long
    done
  done;
  Alcotest.(check bool) "has metro pairs" true (!short > 0);
  Alcotest.(check bool) "has long pairs" true (!long > 0)

let test_cdn_global () =
  let t = Presets.cdn () in
  Alcotest.(check int) "datacenters" 28 (List.length t.Topology.pops);
  (* All nodes are datacenters. *)
  List.iter
    (fun (n : Node.t) ->
      if n.Node.kind <> Node.Datacenter then
        Alcotest.failf "%s is not a datacenter" n.Node.name)
    t.Topology.pops;
  (* Spans multiple continents. *)
  let continents =
    List.sort_uniq compare
      (List.map (fun (n : Node.t) -> n.Node.city.Cities.continent) t.Topology.pops)
  in
  Alcotest.(check int) "six continents" 6 (List.length continents)

let test_internet2_abilene () =
  let t = Presets.internet2 () in
  Alcotest.(check int) "11 PoPs" 11 (List.length t.Topology.pops);
  Alcotest.(check int) "14 links" 14 (Graph.link_count t.Topology.graph);
  (* Coast-to-coast shortest path: Seattle to New York passes the
     midwest; around 2500-3600 route miles. *)
  let seattle = Topology.pop_by_city t "Seattle" in
  let nyc = Topology.pop_by_city t "New York" in
  match
    Graph.path_distance_miles t.Topology.graph ~src:seattle.Node.id ~dst:nyc.Node.id
  with
  | None -> Alcotest.fail "no coast-to-coast path"
  | Some d ->
      if d < 2300. || d > 3800. then Alcotest.failf "odd coast-to-coast distance %f" d

let test_by_name_unknown () =
  Alcotest.check_raises "unknown" (Invalid_argument "Presets.by_name: unknown preset nope")
    (fun () -> ignore (Presets.by_name "nope"))

let test_deterministic () =
  let a = Presets.eu_isp () and b = Presets.eu_isp () in
  let coords t =
    List.map (fun (n : Node.t) -> (n.Node.coord.Geo.lat, n.Node.coord.Geo.lon)) t.Topology.pops
  in
  Alcotest.(check bool) "same jitter" true (coords a = coords b)

let suite =
  [
    Alcotest.test_case "all presets connected" `Quick test_all_connected;
    Alcotest.test_case "EU ISP shape" `Quick test_eu_isp_shape;
    Alcotest.test_case "EU ISP metro + long distances" `Quick test_eu_isp_has_metro_distances;
    Alcotest.test_case "CDN global span" `Quick test_cdn_global;
    Alcotest.test_case "Internet2 Abilene map" `Quick test_internet2_abilene;
    Alcotest.test_case "unknown preset" `Quick test_by_name_unknown;
    Alcotest.test_case "deterministic construction" `Quick test_deterministic;
  ]
