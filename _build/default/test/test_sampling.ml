open Flowgen

let record bytes packets =
  {
    Netflow.src = Ipv4.of_string "10.0.0.1";
    dst = Ipv4.of_string "10.1.0.1";
    src_port = 1234;
    dst_port = 443;
    proto = 6;
    bytes;
    packets;
    first_s = 0;
    last_s = 3600;
    router = 0;
  }

let test_rate_one_identity () =
  let rng = Numerics.Rng.create 1 in
  let r = record 1e6 1000. in
  match Sampling.sample_record rng (Sampling.make 1) r with
  | Some r' -> Alcotest.(check (float 0.)) "unchanged" r.Netflow.bytes r'.Netflow.bytes
  | None -> Alcotest.fail "dropped at rate 1"

let test_make_invalid () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Sampling.make: rate must be >= 1")
    (fun () -> ignore (Sampling.make 0))

let test_unbiased_estimate () =
  let rng = Numerics.Rng.create 2 in
  let sampler = Sampling.make 100 in
  let n = 2000 in
  let total = ref 0. in
  for _ = 1 to n do
    match Sampling.sample_record rng sampler (record 1e6 1000.) with
    | Some r -> total := !total +. r.Netflow.bytes
    | None -> ()
  done;
  let mean_estimate = !total /. float_of_int n in
  (* Expected 1e6 with relative error ~ sqrt(99/1000)/sqrt(2000) ~ 0.7%. *)
  if abs_float (mean_estimate -. 1e6) /. 1e6 > 0.03 then
    Alcotest.failf "biased estimate: %f" mean_estimate

let test_small_flows_can_vanish () =
  let rng = Numerics.Rng.create 3 in
  let sampler = Sampling.make 1000 in
  let vanished = ref 0 in
  for _ = 1 to 200 do
    match Sampling.sample_record rng sampler (record 2000. 2.) with
    | None -> incr vanished
    | Some _ -> ()
  done;
  (* P(no packet sampled) = (1 - 1/1000)^2 ~ 0.998. *)
  Alcotest.(check bool) "most vanish" true (!vanished > 150)

let test_scaling_factor () =
  let rng = Numerics.Rng.create 4 in
  let sampler = Sampling.make 10 in
  (* A flow with exactly 10 packets: each survivor contributes 10x. *)
  match Sampling.sample_record rng sampler (record 10_000. 10.) with
  | Some r ->
      let per_packet = 1000. in
      let ratio = r.Netflow.bytes /. per_packet /. 10. in
      Alcotest.(check bool) "integral survivor count" true
        (abs_float (ratio -. Float.round ratio) < 1e-9)
  | None -> ()

let test_sample_list_filters () =
  let rng = Numerics.Rng.create 5 in
  let sampler = Sampling.make 1000 in
  let records = List.init 100 (fun _ -> record 1000. 1.) in
  let kept = Sampling.sample rng sampler records in
  Alcotest.(check bool) "most tiny records dropped" true (List.length kept < 20)

let test_expected_relative_error () =
  Alcotest.(check (float 1e-9)) "rate 1 exact" 0.
    (Sampling.expected_relative_error (Sampling.make 1) ~packets:100.);
  Alcotest.(check (float 1e-9)) "formula" (sqrt (99. /. 1000.))
    (Sampling.expected_relative_error (Sampling.make 100) ~packets:1000.)

let prop_sampling_never_negative =
  QCheck.Test.make ~name:"sampled bytes non-negative" ~count:200
    QCheck.(pair (int_range 1 500) small_int)
    (fun (rate, seed) ->
      let rng = Numerics.Rng.create seed in
      match Sampling.sample_record rng (Sampling.make rate) (record 5e5 500.) with
      | None -> true
      | Some r -> r.Netflow.bytes >= 0. && r.Netflow.packets >= 0.)

let suite =
  [
    Alcotest.test_case "rate 1 is identity" `Quick test_rate_one_identity;
    Alcotest.test_case "invalid rate" `Quick test_make_invalid;
    Alcotest.test_case "estimate is unbiased" `Slow test_unbiased_estimate;
    Alcotest.test_case "small flows vanish" `Quick test_small_flows_can_vanish;
    Alcotest.test_case "scaling factor" `Quick test_scaling_factor;
    Alcotest.test_case "sample filters list" `Quick test_sample_list_filters;
    Alcotest.test_case "expected relative error" `Quick test_expected_relative_error;
    QCheck_alcotest.to_alcotest prop_sampling_never_negative;
  ]
