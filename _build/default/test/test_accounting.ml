open Routing
open Flowgen

let prefix = Ipv4.prefix_of_string

(* Two tiers: 10.1/16 -> tier 0, 10.2/16 -> tier 1; 10.9/16 untiered. *)
let rib () =
  Tagging.build_rib ~asn:65000
    [
      { Tagging.dst_prefix = prefix "10.1.0.0/16"; tier = 0; next_hop = 1 };
      { Tagging.dst_prefix = prefix "10.2.0.0/16"; tier = 1; next_hop = 2 };
    ]

let record ~dst ~bytes ~first_s ~last_s =
  {
    Netflow.src = Ipv4.of_string "10.0.0.1";
    dst = Ipv4.of_string dst;
    src_port = 1000;
    dst_port = 443;
    proto = 6;
    bytes;
    packets = Float.max 1. (bytes /. 1000.);
    first_s;
    last_s;
    router = 0;
  }

let records () =
  [
    record ~dst:"10.1.0.5" ~bytes:1000. ~first_s:0 ~last_s:3600;
    record ~dst:"10.1.0.6" ~bytes:500. ~first_s:3600 ~last_s:7200;
    record ~dst:"10.2.0.5" ~bytes:2000. ~first_s:0 ~last_s:3600;
    record ~dst:"10.9.0.5" ~bytes:300. ~first_s:0 ~last_s:3600;
  ]

let test_flow_based_totals () =
  let usage = Accounting.flow_based ~rib:(rib ()) (records ()) in
  Alcotest.(check (list (pair int (float 1e-9))))
    "per-tier bytes"
    [ (0, 1500.); (1, 2000.) ]
    usage.Accounting.tier_bytes;
  Alcotest.(check (float 1e-9)) "untiered" 300. usage.Accounting.untiered_bytes;
  Alcotest.(check (float 1e-9)) "total" 3800. (Accounting.total_bytes usage)

let test_snmp_matches_flow_based () =
  (* The paper's two accounting architectures must agree on totals. *)
  let rib = rib () in
  let snmp = Accounting.Snmp.create ~n_tiers:2 () in
  Accounting.Snmp.observe snmp ~rib (records ());
  let s = Accounting.Snmp.usage snmp in
  let f = Accounting.flow_based ~rib (records ()) in
  List.iter2
    (fun (t1, b1) (t2, b2) ->
      Alcotest.(check int) "tier" t1 t2;
      Alcotest.(check (float 1.)) "bytes agree" b1 b2)
    s.Accounting.tier_bytes f.Accounting.tier_bytes;
  Alcotest.(check (float 1e-9)) "untiered agree" f.Accounting.untiered_bytes
    s.Accounting.untiered_bytes

let test_snmp_poll_series () =
  let rib = rib () in
  let snmp = Accounting.Snmp.create ~n_tiers:2 ~poll_interval_s:3600 () in
  Accounting.Snmp.observe snmp ~rib (records ());
  let series = Accounting.Snmp.poll_series snmp ~horizon_s:7200 in
  let tier0 = List.assoc 0 series in
  Alcotest.(check int) "two polls" 2 (Array.length tier0);
  Alcotest.(check (float 1e-6)) "first hour" 1000. tier0.(0);
  Alcotest.(check (float 1e-6)) "second hour" 500. tier0.(1)

let test_snmp_tier_overflow () =
  let snmp = Accounting.Snmp.create ~n_tiers:1 () in
  Alcotest.check_raises "tier beyond links"
    (Invalid_argument "Accounting.Snmp.observe: tier beyond configured links")
    (fun () ->
      Accounting.Snmp.observe snmp ~rib:(rib ())
        [ record ~dst:"10.2.0.1" ~bytes:10. ~first_s:0 ~last_s:60 ])

let test_rate_series () =
  let rib = rib () in
  let series =
    Accounting.rate_series ~rib ~interval_s:1800 ~horizon_s:7200
      [ record ~dst:"10.1.0.5" ~bytes:1.8e9 ~first_s:0 ~last_s:3600 ]
  in
  let tier0 = List.assoc 0 series in
  Alcotest.(check int) "four intervals" 4 (Array.length tier0);
  (* 1.8 GB over 3600 s = 4 Mbps in each of the first two intervals. *)
  Alcotest.(check (float 1e-6)) "rate interval 0" 4. tier0.(0);
  Alcotest.(check (float 1e-6)) "rate interval 1" 4. tier0.(1);
  Alcotest.(check (float 1e-6)) "idle interval" 0. tier0.(2)

let test_record_spanning_intervals () =
  let rib = rib () in
  let series =
    Accounting.rate_series ~rib ~interval_s:1000 ~horizon_s:4000
      [ record ~dst:"10.1.0.5" ~bytes:3000. ~first_s:500 ~last_s:3500 ]
  in
  let tier0 = List.assoc 0 series in
  (* Uniform spread: 1 byte/s; intervals hold 500, 1000, 1000, 500 bytes. *)
  let bytes_of_rate r interval = r *. 1e6 /. 8. *. float_of_int interval in
  Alcotest.(check (float 1e-6)) "partial first" 500. (bytes_of_rate tier0.(0) 1000);
  Alcotest.(check (float 1e-6)) "full middle" 1000. (bytes_of_rate tier0.(1) 1000);
  Alcotest.(check (float 1e-6)) "partial last" 500. (bytes_of_rate tier0.(3) 1000)

let test_tagging_tier_counts () =
  let rib = rib () in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 1); (1, 1) ] (Tagging.tier_counts rib);
  Alcotest.(check int) "no untiered routes" 0 (List.length (Tagging.untiered_routes rib))

let test_untiered_route_detection () =
  let rib =
    Rib.add (rib ()) (Rib.route ~prefix:(prefix "10.3.0.0/16") ~next_hop:3 ())
  in
  Alcotest.(check int) "one untagged" 1 (List.length (Tagging.untiered_routes rib))

let prop_accounting_conservation =
  QCheck.Test.make ~name:"flow-based accounting conserves bytes" ~count:100
    QCheck.(list_of_size Gen.(0 -- 20) (pair (int_range 1 9) (float_range 1. 1e6)))
    (fun specs ->
      let records =
        List.map
          (fun (third_octet, bytes) ->
            record
              ~dst:(Printf.sprintf "10.%d.0.1" third_octet)
              ~bytes ~first_s:0 ~last_s:3600)
          specs
      in
      let usage = Accounting.flow_based ~rib:(rib ()) records in
      let total_in = List.fold_left (fun a (r : Netflow.record) -> a +. r.Netflow.bytes) 0. records in
      abs_float (Accounting.total_bytes usage -. total_in) <= 1e-6 *. (1. +. total_in))

let suite =
  [
    Alcotest.test_case "flow-based totals" `Quick test_flow_based_totals;
    Alcotest.test_case "SNMP agrees with flow-based" `Quick test_snmp_matches_flow_based;
    Alcotest.test_case "SNMP poll series" `Quick test_snmp_poll_series;
    Alcotest.test_case "SNMP tier overflow" `Quick test_snmp_tier_overflow;
    Alcotest.test_case "rate series" `Quick test_rate_series;
    Alcotest.test_case "record spanning intervals" `Quick test_record_spanning_intervals;
    Alcotest.test_case "tagging tier counts" `Quick test_tagging_tier_counts;
    Alcotest.test_case "untiered route detection" `Quick test_untiered_route_detection;
    QCheck_alcotest.to_alcotest prop_accounting_conservation;
  ]
