open Tiered

let config ?(estimated_alpha = 1.1) ?(rounds = 8) ?(damping = 1.) () =
  {
    Dynamics.truth = Fixtures.ced_market ();
    estimated_alpha;
    strategy = Strategy.Optimal;
    n_bundles = 3;
    rounds;
    damping;
  }

let test_round_count () =
  let rounds = Dynamics.simulate (config ~rounds:5 ()) in
  Alcotest.(check int) "initial + 5" 6 (List.length rounds)

let test_initial_state_is_blended () =
  let rounds = Dynamics.simulate (config ()) in
  let first = List.hd rounds in
  Array.iter
    (fun p -> Alcotest.(check (float 0.)) "blended start" 20. p)
    first.Dynamics.flow_prices;
  Alcotest.(check (float 1e-9)) "capture 0 at start" 0. first.Dynamics.capture

let test_correct_alpha_converges_in_one_round () =
  (* Knowing the true elasticity, the first re-fit recovers the exact
     valuations, so round 1 already attains the optimal tiering. *)
  let truth = Fixtures.ced_market () in
  let rounds =
    Dynamics.simulate
      { (config ~estimated_alpha:truth.Market.alpha ()) with Dynamics.truth }
  in
  let optimal =
    (Pricing.evaluate truth (Strategy.apply Strategy.Optimal truth ~n_bundles:3))
      .Pricing.profit
  in
  let round1 = List.nth rounds 1 in
  Alcotest.(check (float 1e-6)) "one-shot optimum" optimal round1.Dynamics.true_profit;
  Alcotest.(check bool) "converged" true (Dynamics.converged rounds)

let test_wrong_alpha_still_converges () =
  let rounds = Dynamics.simulate (config ~estimated_alpha:2.5 ~rounds:30 ()) in
  Alcotest.(check bool) "converged" true (Dynamics.converged ~tol:1e-4 rounds);
  (* A badly wrong elasticity costs profit but the loop must not blow up
     or go negative-capture after the first reprice. *)
  let final = Dynamics.final_capture rounds in
  Alcotest.(check bool) "finite" true (Float.is_finite final)

let test_correct_alpha_beats_wrong_alpha () =
  let right = Dynamics.simulate (config ~estimated_alpha:1.1 ~rounds:20 ()) in
  let wrong = Dynamics.simulate (config ~estimated_alpha:4.0 ~rounds:20 ()) in
  Alcotest.(check bool) "truth helps" true
    (Dynamics.final_capture right >= Dynamics.final_capture wrong -. 1e-9)

let test_damping_slows_but_reaches () =
  let fast = Dynamics.simulate (config ~rounds:1 ~damping:1. ()) in
  let slow = Dynamics.simulate (config ~rounds:1 ~damping:0.3 ()) in
  Alcotest.(check bool) "damped round 1 below undamped" true
    (Dynamics.final_capture slow <= Dynamics.final_capture fast +. 1e-9);
  let slow_long = Dynamics.simulate (config ~rounds:40 ~damping:0.3 ()) in
  Alcotest.(check (float 1e-3)) "same fixed point"
    (Dynamics.final_capture fast)
    (Dynamics.final_capture slow_long)

let test_validation () =
  (match Dynamics.simulate { (config ()) with Dynamics.truth = Fixtures.logit_market () } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted logit truth");
  (match Dynamics.simulate (config ~estimated_alpha:1.0 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted alpha = 1");
  (match Dynamics.simulate (config ~damping:0. ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted damping = 0");
  match Dynamics.simulate (config ~rounds:(-1) ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted negative rounds"

let test_demand_response_consistent () =
  (* Realized demand in each round must equal the true CED response. *)
  let truth = Fixtures.ced_market () in
  let rounds = Dynamics.simulate { (config ~rounds:3 ()) with Dynamics.truth } in
  List.iter
    (fun (r : Dynamics.round) ->
      Array.iteri
        (fun i q ->
          let expected =
            Ced.demand ~alpha:truth.Market.alpha ~v:truth.Market.valuations.(i)
              r.Dynamics.flow_prices.(i)
          in
          Alcotest.(check (float 1e-9)) "true response" expected q)
        r.Dynamics.realized_demand)
    rounds

let suite =
  [
    Alcotest.test_case "round count" `Quick test_round_count;
    Alcotest.test_case "initial state is blended" `Quick test_initial_state_is_blended;
    Alcotest.test_case "true alpha: one-shot optimum" `Quick
      test_correct_alpha_converges_in_one_round;
    Alcotest.test_case "wrong alpha still converges" `Quick test_wrong_alpha_still_converges;
    Alcotest.test_case "truth beats misestimation" `Quick test_correct_alpha_beats_wrong_alpha;
    Alcotest.test_case "damping" `Quick test_damping_slows_but_reaches;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "demand response consistent" `Quick test_demand_response_consistent;
  ]
