open Flowgen

let record ?(src = "10.0.0.1") ?(dst = "10.1.0.1") ?(src_port = 1000)
    ?(first_s = 0) ?(router = 0) ?(bytes = 100.) () =
  {
    Netflow.src = Ipv4.of_string src;
    dst = Ipv4.of_string dst;
    src_port;
    dst_port = 443;
    proto = 6;
    bytes;
    packets = 1.;
    first_s;
    last_s = first_s + 3600;
    router;
  }

let test_keeps_unique () =
  let records = [ record (); record ~src_port:2000 (); record ~first_s:3600 () ] in
  Alcotest.(check int) "nothing dropped" 3 (List.length (Dedup.dedup records))

let test_drops_cross_router_duplicates () =
  let records = [ record ~router:0 (); record ~router:1 (); record ~router:2 () ] in
  let kept = Dedup.dedup records in
  Alcotest.(check int) "one survives" 1 (List.length kept);
  Alcotest.(check int) "lowest router kept" 0 (List.hd kept).Netflow.router

let test_lowest_router_wins_any_order () =
  let records = [ record ~router:5 (); record ~router:1 (); record ~router:3 () ] in
  let kept = Dedup.dedup records in
  Alcotest.(check int) "router 1" 1 (List.hd kept).Netflow.router

let test_different_windows_not_duplicates () =
  let records = [ record ~router:0 ~first_s:0 (); record ~router:1 ~first_s:3600 () ] in
  Alcotest.(check int) "both kept" 2 (List.length (Dedup.dedup records))

let test_duplicate_count () =
  let records =
    [ record ~router:0 (); record ~router:1 (); record ~src_port:7 ~router:0 () ]
  in
  Alcotest.(check int) "one duplicate" 1 (Dedup.duplicate_count records)

let test_order_stable () =
  let records =
    [
      record ~src_port:1 (); record ~src_port:2 (); record ~src_port:3 ();
      record ~src_port:2 ~router:4 ();
    ]
  in
  let ports = List.map (fun (r : Netflow.record) -> r.Netflow.src_port) (Dedup.dedup records) in
  Alcotest.(check (list int)) "first-appearance order" [ 1; 2; 3 ] ports

let test_pipeline_volume_matches_single_router () =
  (* End-to-end: synthesize at 3 routers, dedup, and recover exactly the
     per-router volume. *)
  let rng = Numerics.Rng.create 11 in
  let gt =
    {
      Netflow.gt_src = Ipv4.of_string "10.0.0.1";
      gt_dst = Ipv4.of_string "10.1.0.1";
      gt_mbps = 5.;
      gt_routers = [ 0; 1; 2 ];
    }
  in
  let shape = { Netflow.default_shape with noise_cv = 0. } in
  let records = Netflow.synthesize ~shape ~rng [ gt ] in
  let deduped = Dedup.dedup records in
  let expected = 5. *. 125_000. *. float_of_int Netflow.day_seconds in
  Alcotest.(check (float 1.)) "triple-counting removed" expected
    (Netflow.total_bytes deduped);
  Alcotest.(check (float 1.)) "raw was 3x" (3. *. expected) (Netflow.total_bytes records)

let prop_dedup_idempotent =
  QCheck.Test.make ~name:"dedup is idempotent" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_range 0 3) (int_range 0 3)))
    (fun specs ->
      let records =
        List.map (fun (router, port) -> record ~router ~src_port:port ()) specs
      in
      let once = Dedup.dedup records in
      let twice = Dedup.dedup once in
      List.length once = List.length twice)

let suite =
  [
    Alcotest.test_case "keeps unique records" `Quick test_keeps_unique;
    Alcotest.test_case "drops cross-router duplicates" `Quick test_drops_cross_router_duplicates;
    Alcotest.test_case "lowest router wins" `Quick test_lowest_router_wins_any_order;
    Alcotest.test_case "different windows kept" `Quick test_different_windows_not_duplicates;
    Alcotest.test_case "duplicate count" `Quick test_duplicate_count;
    Alcotest.test_case "stable output order" `Quick test_order_stable;
    Alcotest.test_case "pipeline volume" `Quick test_pipeline_volume_matches_single_router;
    QCheck_alcotest.to_alcotest prop_dedup_idempotent;
  ]
