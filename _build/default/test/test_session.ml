open Routing
open Flowgen

let prefix = Ipv4.prefix_of_string
let route p = Rib.route ~prefix:(prefix p) ~next_hop:1 ()

let test_lifecycle () =
  let s = Session.create ~id:0 ~tier:1 ~link:0 in
  Alcotest.(check bool) "starts idle" true (s.Session.state = Session.Idle);
  let s = Session.establish s in
  Alcotest.(check bool) "established" true (s.Session.state = Session.Established);
  let s = Session.advertise s ~asn:65000 (route "10.1.0.0/16") in
  Alcotest.(check int) "one route" 1 (List.length s.Session.advertised);
  let s = Session.shutdown s in
  Alcotest.(check int) "withdrawn on shutdown" 0 (List.length s.Session.advertised)

let test_advertise_requires_established () =
  let s = Session.create ~id:0 ~tier:1 ~link:0 in
  Alcotest.check_raises "idle session"
    (Invalid_argument "Session.advertise: session not established") (fun () ->
      ignore (Session.advertise s ~asn:65000 (route "10.1.0.0/16")))

let test_advertise_tags_with_tier () =
  let s = Session.(advertise (establish (create ~id:0 ~tier:2 ~link:0)) ~asn:65000)
      (route "10.1.0.0/16")
  in
  match s.Session.advertised with
  | [ r ] ->
      Alcotest.(check (option int)) "tier tag" (Some 2)
        (List.find_map Community.tier_of r.Rib.communities)
  | _ -> Alcotest.fail "expected one route"

let test_advertise_rejects_foreign_tier () =
  let s = Session.(establish (create ~id:0 ~tier:2 ~link:0)) in
  let foreign =
    Rib.route
      ~communities:[ Community.tier ~asn:65000 5 ]
      ~prefix:(prefix "10.1.0.0/16") ~next_hop:1 ()
  in
  Alcotest.check_raises "foreign tag"
    (Invalid_argument "Session.advertise: route already tagged with a different tier")
    (fun () -> ignore (Session.advertise s ~asn:65000 foreign))

let test_advertised_rib () =
  let sessions =
    Session.plan ~asn:65000
      [
        { Tagging.dst_prefix = prefix "10.1.0.0/16"; tier = 0; next_hop = 1 };
        { Tagging.dst_prefix = prefix "10.2.0.0/16"; tier = 1; next_hop = 2 };
      ]
      ~n_links:2
  in
  let rib = Session.advertised_rib sessions in
  Alcotest.(check int) "two routes" 2 (Rib.size rib);
  Alcotest.(check (option int)) "tier 0 route" (Some 0)
    (Rib.tier_of rib (Ipv4.of_string "10.1.5.5"));
  Alcotest.(check (option int)) "tier 1 route" (Some 1)
    (Rib.tier_of rib (Ipv4.of_string "10.2.5.5"))

let test_plan_consistent () =
  let sessions =
    Session.plan ~asn:65000
      [
        { Tagging.dst_prefix = prefix "10.1.0.0/16"; tier = 0; next_hop = 1 };
        { Tagging.dst_prefix = prefix "10.2.0.0/16"; tier = 1; next_hop = 2 };
        { Tagging.dst_prefix = prefix "10.3.0.0/16"; tier = 1; next_hop = 2 };
      ]
      ~n_links:1
  in
  Alcotest.(check int) "one session per tier" 2 (List.length sessions);
  Alcotest.(check int) "no violations" 0 (List.length (Session.check_consistency sessions))

let test_cross_session_violation () =
  (* The same prefix advertised on two sessions with different tiers. *)
  let s0 =
    Session.(advertise (establish (create ~id:0 ~tier:0 ~link:0)) ~asn:65000)
      (route "10.1.0.0/16")
  in
  let s1 =
    Session.(advertise (establish (create ~id:1 ~tier:1 ~link:1)) ~asn:65000)
      (route "10.1.0.0/16")
  in
  let violations = Session.check_consistency [ s0; s1 ] in
  Alcotest.(check int) "one violation" 1 (List.length violations);
  let v = List.hd violations in
  Alcotest.(check int) "reported on second session" 1 v.Session.session_id

let test_session_of_tier () =
  let sessions =
    Session.plan ~asn:65000
      [ { Tagging.dst_prefix = prefix "10.1.0.0/16"; tier = 3; next_hop = 1 } ]
      ~n_links:1
  in
  Alcotest.(check bool) "found" true (Session.session_of_tier sessions 3 <> None);
  Alcotest.(check bool) "absent tier" true (Session.session_of_tier sessions 9 = None)

let test_plan_validation () =
  Alcotest.check_raises "no links" (Invalid_argument "Session.plan: n_links < 1")
    (fun () -> ignore (Session.plan ~asn:65000 [] ~n_links:0))

let test_plan_accounting_agreement () =
  (* End-to-end: a session plan's RIB must account traffic identically
     to a directly built tagged RIB. *)
  let assignments =
    [
      { Tagging.dst_prefix = prefix "10.1.0.0/16"; tier = 0; next_hop = 1 };
      { Tagging.dst_prefix = prefix "10.2.0.0/16"; tier = 1; next_hop = 2 };
    ]
  in
  let direct = Tagging.build_rib ~asn:65000 assignments in
  let via_sessions = Session.advertised_rib (Session.plan ~asn:65000 assignments ~n_links:2) in
  let record dst bytes =
    {
      Netflow.src = Ipv4.of_string "10.0.0.1";
      dst = Ipv4.of_string dst;
      src_port = 1;
      dst_port = 443;
      proto = 6;
      bytes;
      packets = 1.;
      first_s = 0;
      last_s = 3600;
      router = 0;
    }
  in
  let records = [ record "10.1.0.9" 100.; record "10.2.0.9" 250. ] in
  let u1 = Accounting.flow_based ~rib:direct records in
  let u2 = Accounting.flow_based ~rib:via_sessions records in
  Alcotest.(check (list (pair int (float 1e-9)))) "same accounting"
    u1.Accounting.tier_bytes u2.Accounting.tier_bytes

let suite =
  [
    Alcotest.test_case "lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "advertise requires established" `Quick
      test_advertise_requires_established;
    Alcotest.test_case "advertise tags with tier" `Quick test_advertise_tags_with_tier;
    Alcotest.test_case "foreign tier rejected" `Quick test_advertise_rejects_foreign_tier;
    Alcotest.test_case "advertised RIB" `Quick test_advertised_rib;
    Alcotest.test_case "plan is consistent" `Quick test_plan_consistent;
    Alcotest.test_case "cross-session violation" `Quick test_cross_session_violation;
    Alcotest.test_case "session_of_tier" `Quick test_session_of_tier;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan = direct tagging for accounting" `Quick
      test_plan_accounting_agreement;
  ]
