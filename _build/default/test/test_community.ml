open Routing

let test_make_bounds () =
  Alcotest.check_raises "asn too big" (Invalid_argument "Community.make: asn out of 16 bits")
    (fun () -> ignore (Community.make ~asn:70000 ~value:1));
  Alcotest.check_raises "negative value"
    (Invalid_argument "Community.make: value out of 16 bits") (fun () ->
      ignore (Community.make ~asn:1 ~value:(-1)))

let test_tier_roundtrip () =
  for k = 0 to 5 do
    let c = Community.tier ~asn:65000 k in
    Alcotest.(check (option int)) "tier_of" (Some k) (Community.tier_of c)
  done

let test_tier_bounds () =
  Alcotest.check_raises "negative tier" (Invalid_argument "Community.tier: tier out of range")
    (fun () -> ignore (Community.tier ~asn:1 (-1)));
  Alcotest.check_raises "too many tiers"
    (Invalid_argument "Community.tier: tier out of range") (fun () ->
      ignore (Community.tier ~asn:1 Community.max_tiers))

let test_non_tier_community () =
  let c = Community.make ~asn:65000 ~value:100 in
  Alcotest.(check (option int)) "not a tier" None (Community.tier_of c)

let test_string_roundtrip () =
  let c = Community.make ~asn:65001 ~value:60003 in
  Alcotest.(check string) "format" "65001:60003" (Community.to_string c);
  Alcotest.(check bool) "roundtrip" true
    (Community.equal c (Community.of_string (Community.to_string c)))

let test_of_string_malformed () =
  List.iter
    (fun s ->
      match Community.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %s" s)
    [ "1:2:3"; "abc"; "1:x"; "" ]

let test_compare () =
  let a = Community.make ~asn:1 ~value:2 in
  let b = Community.make ~asn:1 ~value:3 in
  Alcotest.(check bool) "ordering" true (Community.compare a b < 0);
  Alcotest.(check int) "reflexive" 0 (Community.compare a a)

let suite =
  [
    Alcotest.test_case "make bounds" `Quick test_make_bounds;
    Alcotest.test_case "tier roundtrip" `Quick test_tier_roundtrip;
    Alcotest.test_case "tier bounds" `Quick test_tier_bounds;
    Alcotest.test_case "non-tier community" `Quick test_non_tier_community;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "malformed strings" `Quick test_of_string_malformed;
    Alcotest.test_case "compare" `Quick test_compare;
  ]
