open Tiered

let test_capture_at_consistent_with_series () =
  let m = Fixtures.ced_market () in
  let direct = Sensitivity.capture_at m Strategy.Optimal ~n_bundles:3 in
  match Capture.series m Strategy.Optimal ~bundle_counts:[ 3 ] with
  | [ p ] -> Alcotest.(check (float 1e-12)) "same value" p.Capture.capture direct
  | _ -> Alcotest.fail "unexpected series"

let test_envelope_min_below_each () =
  let markets = [ Fixtures.ced_market ~alpha:1.1 (); Fixtures.ced_market ~alpha:3. () ] in
  let env =
    Sensitivity.envelope ~markets ~strategy:Strategy.Optimal ~bundle_counts:[ 2; 4 ]
      ~mode:`Min
  in
  List.iter
    (fun (b, worst) ->
      List.iter
        (fun m ->
          let c = Sensitivity.capture_at m Strategy.Optimal ~n_bundles:b in
          Alcotest.(check bool) "min <= each" true (worst <= c +. 1e-12))
        markets)
    env

let test_envelope_max_above_each () =
  let markets = [ Fixtures.logit_market ~s0:0.1 (); Fixtures.logit_market ~s0:0.5 () ] in
  let env =
    Sensitivity.envelope ~markets ~strategy:Strategy.Optimal ~bundle_counts:[ 3 ]
      ~mode:`Max
  in
  List.iter
    (fun (b, best) ->
      List.iter
        (fun m ->
          let c = Sensitivity.capture_at m Strategy.Optimal ~n_bundles:b in
          Alcotest.(check bool) "max >= each" true (best >= c -. 1e-12))
        markets)
    env

let test_envelope_empty () =
  Alcotest.check_raises "no markets" (Invalid_argument "Sensitivity.envelope: no markets")
    (fun () ->
      ignore
        (Sensitivity.envelope ~markets:[] ~strategy:Strategy.Optimal ~bundle_counts:[ 1 ]
           ~mode:`Min))

let test_alpha_range_geometric () =
  let r = Sensitivity.alpha_range ~steps:3 ~lo:1. ~hi:4. () in
  Alcotest.(check int) "steps" 3 (List.length r);
  match r with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "lo" 1. a;
      Alcotest.(check (float 1e-9)) "geometric middle" 2. b;
      Alcotest.(check (float 1e-9)) "hi" 4. c
  | _ -> Alcotest.fail "unexpected"

let test_linear_range () =
  let r = Sensitivity.linear_range ~steps:5 ~lo:0. ~hi:1. () in
  Alcotest.(check (list (float 1e-9))) "grid" [ 0.; 0.25; 0.5; 0.75; 1. ] r

let test_range_validation () =
  Alcotest.check_raises "alpha lo" (Invalid_argument "Sensitivity.alpha_range: need 0 < lo < hi")
    (fun () -> ignore (Sensitivity.alpha_range ~lo:0. ~hi:1. ()));
  Alcotest.check_raises "linear" (Invalid_argument "Sensitivity.linear_range: need lo < hi")
    (fun () -> ignore (Sensitivity.linear_range ~lo:1. ~hi:1. ()))

let test_robustness_claim_small_market () =
  (* Echo of Fig. 14: even the worst-case alpha keeps 2-bundle optimal
     capture meaningfully positive. *)
  let markets =
    List.map (fun alpha -> Fixtures.ced_market ~alpha ()) (Sensitivity.alpha_range ~steps:5 ~lo:1.1 ~hi:10. ())
  in
  let env =
    Sensitivity.envelope ~markets ~strategy:Strategy.Optimal ~bundle_counts:[ 2 ] ~mode:`Min
  in
  match env with
  | [ (_, worst) ] -> Alcotest.(check bool) "positive worst case" true (worst > 0.3)
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    Alcotest.test_case "capture_at = series" `Quick test_capture_at_consistent_with_series;
    Alcotest.test_case "min envelope below each" `Quick test_envelope_min_below_each;
    Alcotest.test_case "max envelope above each" `Quick test_envelope_max_above_each;
    Alcotest.test_case "empty envelope" `Quick test_envelope_empty;
    Alcotest.test_case "alpha range geometric" `Quick test_alpha_range_geometric;
    Alcotest.test_case "linear range" `Quick test_linear_range;
    Alcotest.test_case "range validation" `Quick test_range_validation;
    Alcotest.test_case "worst-case robustness" `Quick test_robustness_claim_small_market;
  ]
