open Netsim

let checkf tol = Alcotest.(check (float tol))

(* A small diamond: 0 - 1 - 3 and 0 - 2 - 3, with the 0-2-3 side shorter. *)
let diamond () =
  let city name = Cities.find name in
  let n0 = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city:(city "London") in
  let n1 = Node.make ~id:1 ~name:"b" ~kind:Node.Pop ~city:(city "Berlin") in
  let n2 = Node.make ~id:2 ~name:"c" ~kind:Node.Pop ~city:(city "Paris") in
  let n3 = Node.make ~id:3 ~name:"d" ~kind:Node.Pop ~city:(city "Madrid") in
  let links =
    [
      Link.make ~capacity_gbps:10. n0 n1;
      Link.make ~capacity_gbps:10. n1 n3;
      Link.make ~capacity_gbps:10. n0 n2;
      Link.make ~capacity_gbps:10. n2 n3;
    ]
  in
  (Graph.create [ n0; n1; n2; n3 ] links, [ n0; n1; n2; n3 ])

let test_create_counts () =
  let g, _ = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "links" 4 (Graph.link_count g)

let test_create_validation () =
  let city = Cities.find "London" in
  let n0 = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city in
  let dup = Node.make ~id:0 ~name:"b" ~kind:Node.Pop ~city in
  Alcotest.check_raises "duplicate id" (Invalid_argument "Graph.create: duplicate node id")
    (fun () -> ignore (Graph.create [ n0; dup ] []));
  let sparse = Node.make ~id:5 ~name:"c" ~kind:Node.Pop ~city in
  Alcotest.check_raises "sparse ids"
    (Invalid_argument "Graph.create: node ids must be dense 0..n-1") (fun () ->
      ignore (Graph.create [ n0; sparse ] []))

let test_shortest_path_route () =
  let g, _ = diamond () in
  (* London-Paris-Madrid is shorter than London-Berlin-Madrid. *)
  match Graph.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "no path"
  | Some path ->
      Alcotest.(check (list int)) "via Paris" [ 0; 2; 3 ] path.Graph.hops;
      let expected =
        Geo.distance_miles (Cities.find "London").coord (Cities.find "Paris").coord
        +. Geo.distance_miles (Cities.find "Paris").coord (Cities.find "Madrid").coord
      in
      checkf 1e-6 "length" expected path.Graph.length_miles

let test_shortest_path_self () =
  let g, _ = diamond () in
  match Graph.shortest_path g ~src:2 ~dst:2 with
  | None -> Alcotest.fail "no self path"
  | Some path ->
      Alcotest.(check (list int)) "single hop" [ 2 ] path.Graph.hops;
      checkf 0. "zero length" 0. path.Graph.length_miles

let test_disconnected () =
  let city = Cities.find "London" in
  let n0 = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city in
  let n1 = Node.make ~id:1 ~name:"b" ~kind:Node.Pop ~city:(Cities.find "Paris") in
  let g = Graph.create [ n0; n1 ] [] in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  Alcotest.(check bool) "no path" true (Graph.shortest_path g ~src:0 ~dst:1 = None);
  Alcotest.(check bool) "no distance" true (Graph.path_distance_miles g ~src:0 ~dst:1 = None)

let test_connected () =
  let g, _ = diamond () in
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_parallel_links_shorter_wins () =
  let n0 = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city:(Cities.find "London") in
  let n1 = Node.make ~id:1 ~name:"b" ~kind:Node.Pop ~city:(Cities.find "Paris") in
  let short = Link.make ~capacity_gbps:10. n0 n1 in
  let long = Link.make ~stretch:2.0 ~capacity_gbps:10. n0 n1 in
  let g = Graph.create [ n0; n1 ] [ long; short ] in
  match Graph.shortest_path g ~src:0 ~dst:1 with
  | None -> Alcotest.fail "no path"
  | Some path -> checkf 1e-6 "short parallel link" short.Link.length_miles path.Graph.length_miles

let test_single_source_lengths () =
  let g, _ = diamond () in
  let dist = Graph.shortest_path_lengths g ~src:0 in
  checkf 0. "self" 0. dist.(0);
  Alcotest.(check bool) "all finite" true (Array.for_all (fun d -> d < infinity) dist)

let test_neighbors () =
  let g, _ = diamond () in
  Alcotest.(check int) "degree of 0" 2 (List.length (Graph.neighbors g 0))

(* Property: Dijkstra distances satisfy the triangle inequality over the
   link relaxation (d(dst) <= d(mid) + w(mid,dst) for every edge). *)
let prop_dijkstra_relaxed =
  QCheck.Test.make ~name:"dijkstra leaves no relaxable edge" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let cities = Array.of_list (Cities.in_continent Cities.Europe) in
      Numerics.Rng.shuffle rng (Array.map (fun c -> c) cities);
      let chosen = Array.to_list (Array.sub cities 0 10) in
      let topo =
        Topology.waxman ~name:"t" ~rng ~capacity_gbps:10. ~alpha:0.7 ~beta:0.5 chosen
      in
      let g = topo.Topology.graph in
      let dist = Graph.shortest_path_lengths g ~src:0 in
      List.for_all
        (fun (l : Link.t) ->
          dist.(l.Link.b) <= dist.(l.Link.a) +. l.Link.length_miles +. 1e-6
          && dist.(l.Link.a) <= dist.(l.Link.b) +. l.Link.length_miles +. 1e-6)
        (Graph.links g))

let suite =
  [
    Alcotest.test_case "create counts" `Quick test_create_counts;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "shortest path routing" `Quick test_shortest_path_route;
    Alcotest.test_case "shortest path to self" `Quick test_shortest_path_self;
    Alcotest.test_case "disconnected graph" `Quick test_disconnected;
    Alcotest.test_case "connected graph" `Quick test_connected;
    Alcotest.test_case "parallel links" `Quick test_parallel_links_shorter_wins;
    Alcotest.test_case "single-source lengths" `Quick test_single_source_lengths;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    QCheck_alcotest.to_alcotest prop_dijkstra_relaxed;
  ]
