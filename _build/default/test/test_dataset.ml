open Tiered

let test_of_workload_fields () =
  let w = Fixtures.workload () in
  let flows = Dataset.of_workload w in
  Alcotest.(check int) "one econ flow per workload flow"
    (List.length w.Flowgen.Workload.flows)
    (Array.length flows);
  List.iteri
    (fun i (wf : Flowgen.Workload.flow) ->
      Alcotest.(check (float 0.)) "demand" wf.Flowgen.Workload.mbps flows.(i).Flow.demand_mbps;
      Alcotest.(check (float 0.)) "distance" wf.Flowgen.Workload.distance_miles
        flows.(i).Flow.distance_miles;
      Alcotest.(check bool) "on-net" wf.Flowgen.Workload.on_net flows.(i).Flow.on_net)
    w.Flowgen.Workload.flows

let test_locality_mapping () =
  Alcotest.(check bool) "metro" true (Dataset.locality_of Flowgen.Geoip.Metro = Flow.Metro);
  Alcotest.(check bool) "national" true
    (Dataset.locality_of Flowgen.Geoip.National = Flow.National);
  Alcotest.(check bool) "international" true
    (Dataset.locality_of Flowgen.Geoip.International = Flow.International)

let test_via_netflow_unsampled_matches_ground_truth () =
  (* With sampling off and no noise the measured pipeline must agree
     with ground truth almost exactly. *)
  let w = Fixtures.workload () in
  let shape = { Flowgen.Netflow.default_shape with noise_cv = 0. } in
  let measured = Dataset.via_netflow ~sampling_rate:1 ~shape w in
  let truth = Dataset.of_workload w in
  Alcotest.(check int) "all flows survive" (Array.length truth) (Array.length measured);
  let demand_by_id flows =
    let t = Hashtbl.create 64 in
    Array.iter (fun f -> Hashtbl.replace t f.Flow.id f.Flow.demand_mbps) flows;
    t
  in
  let truth_demands = demand_by_id truth in
  Array.iter
    (fun f ->
      let expected = Hashtbl.find truth_demands f.Flow.id in
      if abs_float (f.Flow.demand_mbps -. expected) /. expected > 1e-6 then
        Alcotest.failf "flow %d: %f vs %f" f.Flow.id f.Flow.demand_mbps expected)
    measured

let test_via_netflow_sampled_close_in_aggregate () =
  let w = Fixtures.workload () in
  let measured = Dataset.via_netflow ~sampling_rate:100 w in
  let truth = Dataset.of_workload w in
  let total flows = Flow.total_demand_mbps flows in
  let rel = abs_float (total measured -. total truth) /. total truth in
  if rel > 0.05 then Alcotest.failf "aggregate off by %f" rel

let test_via_netflow_sampling_loses_small_flows () =
  (* At realistic volumes nothing vanishes, so shrink the workload until
     the smallest flows carry only a handful of packets per day. *)
  let w = Fixtures.workload () in
  let tiny =
    Flowgen.Workload.generate w.Flowgen.Workload.topology
      { w.Flowgen.Workload.params with Flowgen.Workload.aggregate_gbps = 1e-5 }
  in
  let harsh = Dataset.via_netflow ~sampling_rate:100_000 tiny in
  let truth = Dataset.of_workload tiny in
  Alcotest.(check bool) "some flows vanish" true
    (Array.length harsh < Array.length truth)

let test_via_netflow_deterministic () =
  let w = Fixtures.workload () in
  let a = Dataset.via_netflow ~sampling_rate:1000 ~seed:5 w in
  let b = Dataset.via_netflow ~sampling_rate:1000 ~seed:5 w in
  Alcotest.(check int) "same flow count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i f ->
      Alcotest.(check (float 0.)) "same demand" f.Flow.demand_mbps b.(i).Flow.demand_mbps)
    a

let test_pipeline_feeds_market () =
  (* The measured flows fit a market end to end. *)
  let w = Fixtures.workload () in
  let flows = Dataset.via_netflow ~sampling_rate:10 w in
  let m =
    Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows
  in
  let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
  Alcotest.(check bool) "positive profit" true (o.Pricing.profit > 0.)

let suite =
  [
    Alcotest.test_case "of_workload fields" `Quick test_of_workload_fields;
    Alcotest.test_case "locality mapping" `Quick test_locality_mapping;
    Alcotest.test_case "unsampled pipeline = ground truth" `Quick
      test_via_netflow_unsampled_matches_ground_truth;
    Alcotest.test_case "sampled aggregate close" `Quick test_via_netflow_sampled_close_in_aggregate;
    Alcotest.test_case "harsh sampling loses flows" `Quick test_via_netflow_sampling_loses_small_flows;
    Alcotest.test_case "pipeline deterministic" `Quick test_via_netflow_deterministic;
    Alcotest.test_case "pipeline feeds market" `Quick test_pipeline_feeds_market;
  ]
