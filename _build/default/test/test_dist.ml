open Numerics

let sample n f =
  let rng = Rng.create 123 in
  Array.init n (fun _ -> f rng)

let close ?(tol = 0.05) name expected actual =
  if abs_float (expected -. actual) > tol *. (1. +. abs_float expected) then
    Alcotest.failf "%s: expected ~%f, got %f" name expected actual

let test_exponential_mean () =
  let xs = sample 100_000 (fun rng -> Dist.exponential rng ~rate:2.) in
  close "exp mean" 0.5 (Stats.mean xs);
  close "exp cv" 1.0 (Stats.cv xs)

let test_exponential_positive () =
  let xs = sample 10_000 (fun rng -> Dist.exponential rng ~rate:0.1) in
  Array.iter (fun x -> if x < 0. then Alcotest.fail "negative exponential") xs

let test_exponential_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Dist.exponential: rate must be positive") (fun () ->
      ignore (Dist.exponential rng ~rate:0.))

let test_normal_moments () =
  let xs = sample 100_000 (fun rng -> Dist.normal rng ~mean:3. ~stddev:2.) in
  close "normal mean" 3. (Stats.mean xs);
  close "normal sd" 2. (Stats.stddev xs)

let test_normal_zero_sd () =
  let rng = Rng.create 1 in
  Alcotest.(check (float 0.)) "degenerate normal" 5. (Dist.normal rng ~mean:5. ~stddev:0.)

let test_lognormal_mean_cv () =
  let xs =
    sample 200_000 (fun rng -> Dist.lognormal_of_mean_cv rng ~mean:10. ~cv:1.5)
  in
  close ~tol:0.07 "lognormal mean" 10. (Stats.mean xs);
  close ~tol:0.1 "lognormal cv" 1.5 (Stats.cv xs)

let test_lognormal_cv_zero () =
  let rng = Rng.create 1 in
  Alcotest.(check (float 0.)) "cv=0 is constant" 7.
    (Dist.lognormal_of_mean_cv rng ~mean:7. ~cv:0.)

let test_pareto_support () =
  let xs = sample 10_000 (fun rng -> Dist.pareto rng ~shape:2.5 ~scale:3.) in
  Array.iter (fun x -> if x < 3. then Alcotest.failf "below scale: %f" x) xs;
  (* Mean of Pareto(shape a, scale m) is a*m/(a-1). *)
  close ~tol:0.1 "pareto mean" (2.5 *. 3. /. 1.5) (Stats.mean xs)

let test_gumbel_mean () =
  (* Mean of Gumbel(mu, beta) is mu + beta * Euler-Mascheroni. *)
  let xs = sample 200_000 (fun rng -> Dist.gumbel rng ~mu:1. ~beta:2.) in
  close ~tol:0.05 "gumbel mean" (1. +. (2. *. 0.5772156649)) (Stats.mean xs)

let test_categorical_frequencies () =
  let rng = Rng.create 5 in
  let weights = [| 1.; 2.; 7. |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Dist.categorical rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      close ~tol:0.05
        (Printf.sprintf "weight %d" i)
        (weights.(i) /. 10.)
        (float_of_int c /. float_of_int n))
    counts

let test_categorical_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Dist.categorical: empty weights")
    (fun () -> ignore (Dist.categorical rng [||]));
  Alcotest.check_raises "zero sum"
    (Invalid_argument "Dist.categorical: weights sum to zero") (fun () ->
      ignore (Dist.categorical rng [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.categorical: negative weight") (fun () ->
      ignore (Dist.categorical rng [| 1.; -1. |]))

let test_zipf_weights () =
  let w = Dist.zipf_weights ~n:4 ~s:1. in
  Alcotest.(check (array (float 1e-12)))
    "harmonic weights"
    [| 1.; 0.5; 1. /. 3.; 0.25 |]
    w

let test_dirichlet_like_simplex () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let shares = Dist.dirichlet_like rng ~n:5 ~concentration:0.5 in
    let total = Array.fold_left ( +. ) 0. shares in
    close ~tol:1e-9 "sums to 1" 1. total;
    Array.iter (fun s -> if s < 0. then Alcotest.fail "negative share") shares
  done

(* Property: categorical never returns an index with zero weight when
   others are positive... it can only when rounding; instead check it
   always returns a positive-weight index. *)
let prop_categorical_positive_weight =
  QCheck.Test.make ~name:"categorical returns positive-weight index" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 8) (float_range 0. 10.)) small_int)
    (fun (weights, seed) ->
      let weights = Array.of_list weights in
      QCheck.assume (Array.exists (fun w -> w > 0.) weights);
      let rng = Rng.create seed in
      let i = Dist.categorical rng weights in
      weights.(i) > 0.)

let suite =
  [
    Alcotest.test_case "exponential moments" `Slow test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential invalid rate" `Quick test_exponential_invalid;
    Alcotest.test_case "normal moments" `Slow test_normal_moments;
    Alcotest.test_case "normal zero sd" `Quick test_normal_zero_sd;
    Alcotest.test_case "lognormal mean/cv parameterization" `Slow test_lognormal_mean_cv;
    Alcotest.test_case "lognormal cv=0" `Quick test_lognormal_cv_zero;
    Alcotest.test_case "pareto support and mean" `Slow test_pareto_support;
    Alcotest.test_case "gumbel mean" `Slow test_gumbel_mean;
    Alcotest.test_case "categorical frequencies" `Slow test_categorical_frequencies;
    Alcotest.test_case "categorical invalid input" `Quick test_categorical_invalid;
    Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
    Alcotest.test_case "dirichlet-like on simplex" `Quick test_dirichlet_like_simplex;
    QCheck_alcotest.to_alcotest prop_categorical_positive_weight;
  ]
