open Flowgen

let sample_records () =
  let rng = Numerics.Rng.create 5 in
  Netflow.synthesize ~rng
    [
      {
        Netflow.gt_src = Ipv4.of_string "10.0.0.1";
        gt_dst = Ipv4.of_string "10.1.0.1";
        gt_mbps = 3.;
        gt_routers = [ 0; 1 ];
      };
    ]

let with_temp_file f =
  let path = Filename.temp_file "trace_test" ".csv" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_roundtrip () =
  with_temp_file (fun path ->
      let records = sample_records () in
      Trace.save ~path records;
      let loaded = Trace.load ~path in
      Alcotest.(check int) "count" (List.length records) (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "record" (Netflow.to_csv_line a) (Netflow.to_csv_line b))
        records loaded)

let test_empty_roundtrip () =
  with_temp_file (fun path ->
      Trace.save ~path [];
      Alcotest.(check int) "empty" 0 (List.length (Trace.load ~path)))

let test_append () =
  with_temp_file (fun path ->
      let records = sample_records () in
      Trace.save ~path records;
      Trace.append ~path records;
      Alcotest.(check int) "doubled" (2 * List.length records)
        (List.length (Trace.load ~path)))

let test_bad_header () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not,a,header\n";
      close_out oc;
      match Trace.load ~path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "accepted bad header")

let test_malformed_record_line () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc (Netflow.csv_header ^ "\n");
      output_string oc "garbage line\n";
      close_out oc;
      match Trace.load ~path with
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "mentions line number" true
            (String.length msg > 0
            && String.sub msg (String.length msg - 1) 1 = "2")
      | _ -> Alcotest.fail "accepted malformed record")

let test_summarize () =
  let records = sample_records () in
  let s = Trace.summarize records in
  Alcotest.(check bool) "mentions count" true
    (String.length s > 0 && s <> "empty trace");
  Alcotest.(check string) "empty trace" "empty trace" (Trace.summarize [])

let suite =
  [
    Alcotest.test_case "save/load roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "empty roundtrip" `Quick test_empty_roundtrip;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "bad header" `Quick test_bad_header;
    Alcotest.test_case "malformed record" `Quick test_malformed_record_line;
    Alcotest.test_case "summarize" `Quick test_summarize;
  ]
