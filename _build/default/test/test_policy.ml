open Routing
open Flowgen

let inputs ?(blended_rate = 20.) ?(direct_cost = 12.) ?(isp_cost = 5.)
    ?(isp_margin = 0.3) ?(accounting_overhead = 1.) () =
  {
    Policy.Bypass.blended_rate;
    direct_cost;
    isp_cost;
    isp_margin;
    accounting_overhead;
  }

let test_bypass_happens () =
  let v = Policy.Bypass.decide (inputs ()) in
  Alcotest.(check bool) "bypasses" true v.Policy.Bypass.customer_bypasses;
  Alcotest.(check (float 1e-9)) "saving" 8. v.Policy.Bypass.customer_saving

let test_no_bypass_when_direct_expensive () =
  let v = Policy.Bypass.decide (inputs ~direct_cost:25. ()) in
  Alcotest.(check bool) "stays" false v.Policy.Bypass.customer_bypasses;
  Alcotest.(check bool) "no failure without bypass" false v.Policy.Bypass.market_failure;
  Alcotest.(check (float 1e-9)) "no saving" 0. v.Policy.Bypass.customer_saving

let test_market_failure_condition () =
  (* Tiered price = 1.3 * 5 + 1 = 7.5; direct at 12 > 7.5 while bypassing:
     the Fig. 2 market failure. *)
  let v = Policy.Bypass.decide (inputs ()) in
  Alcotest.(check (float 1e-9)) "tier price" 7.5 v.Policy.Bypass.tiered_price;
  Alcotest.(check bool) "market failure" true v.Policy.Bypass.market_failure

let test_efficient_bypass () =
  (* Direct link genuinely cheaper than any tier the ISP could offer. *)
  let v = Policy.Bypass.decide (inputs ~direct_cost:5. ()) in
  Alcotest.(check bool) "bypasses" true v.Policy.Bypass.customer_bypasses;
  Alcotest.(check bool) "efficient, not a failure" false v.Policy.Bypass.market_failure

let test_bypass_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Policy.Bypass: negative input")
    (fun () -> ignore (Policy.Bypass.decide (inputs ~isp_cost:(-1.) ())))

let test_break_even () =
  Alcotest.(check (float 1e-9)) "break even" 12. (Policy.Bypass.break_even_rate (inputs ()))

(* --- egress selection --------------------------------------------------- *)

let rib () =
  Tagging.build_rib ~asn:65000
    [
      { Tagging.dst_prefix = Ipv4.prefix_of_string "10.1.0.0/16"; tier = 0; next_hop = 1 };
      { Tagging.dst_prefix = Ipv4.prefix_of_string "10.2.0.0/16"; tier = 1; next_hop = 1 };
    ]

let test_egress_prefers_cheap_tier () =
  let choice =
    Policy.Egress.choose ~rib:(rib ()) ~tier_prices:[| 5.; 30. |]
      ~backbone_cost_per_mbps:10. (Ipv4.of_string "10.1.0.1")
  in
  Alcotest.(check bool) "cheap tier via upstream" true
    (choice = Some (Policy.Egress.Use_upstream 0))

let test_egress_cold_potato_on_expensive_tier () =
  let choice =
    Policy.Egress.choose ~rib:(rib ()) ~tier_prices:[| 5.; 30. |]
      ~backbone_cost_per_mbps:10. (Ipv4.of_string "10.2.0.1")
  in
  Alcotest.(check bool) "expensive tier via backbone" true
    (choice = Some Policy.Egress.Use_backbone)

let test_egress_no_route () =
  let choice =
    Policy.Egress.choose ~rib:(rib ()) ~tier_prices:[| 5.; 30. |]
      ~backbone_cost_per_mbps:10. (Ipv4.of_string "11.0.0.1")
  in
  Alcotest.(check bool) "none" true (choice = None)

let test_egress_missing_price () =
  Alcotest.check_raises "tier without price"
    (Invalid_argument "Policy.Egress.choose: tier has no configured price") (fun () ->
      ignore
        (Policy.Egress.choose ~rib:(rib ()) ~tier_prices:[| 5. |]
           ~backbone_cost_per_mbps:10. (Ipv4.of_string "10.2.0.1")))

let test_egress_untiered_route_defaults_to_upstream () =
  (* A route without a tier tag is treated as tier 0 (the default
     tier). *)
  let rib =
    Rib.add Rib.empty
      (Rib.route ~prefix:(Ipv4.prefix_of_string "10.9.0.0/16") ~next_hop:1 ())
  in
  let choice =
    Policy.Egress.choose ~rib ~tier_prices:[| 5. |] ~backbone_cost_per_mbps:1.
      (Ipv4.of_string "10.9.1.1")
  in
  Alcotest.(check bool) "default tier" true (choice = Some (Policy.Egress.Use_upstream 0))

let test_split () =
  let upstream = ref 0. and backbone = ref 0. in
  Policy.Egress.split ~rib:(rib ()) ~tier_prices:[| 5.; 30. |]
    ~backbone_cost_per_mbps:10.
    [
      (Ipv4.of_string "10.1.0.1", 100.);
      (Ipv4.of_string "10.2.0.1", 50.);
      (Ipv4.of_string "11.0.0.1", 25.);
    ]
    ~upstream_mbps:upstream ~backbone_mbps:backbone;
  Alcotest.(check (float 1e-9)) "upstream carries cheap + default" 125. !upstream;
  Alcotest.(check (float 1e-9)) "backbone carries expensive" 50. !backbone

let suite =
  [
    Alcotest.test_case "bypass happens" `Quick test_bypass_happens;
    Alcotest.test_case "no bypass when direct expensive" `Quick test_no_bypass_when_direct_expensive;
    Alcotest.test_case "market failure condition" `Quick test_market_failure_condition;
    Alcotest.test_case "efficient bypass" `Quick test_efficient_bypass;
    Alcotest.test_case "bypass validation" `Quick test_bypass_validation;
    Alcotest.test_case "break-even rate" `Quick test_break_even;
    Alcotest.test_case "egress cheap tier" `Quick test_egress_prefers_cheap_tier;
    Alcotest.test_case "egress cold potato" `Quick test_egress_cold_potato_on_expensive_tier;
    Alcotest.test_case "egress no route" `Quick test_egress_no_route;
    Alcotest.test_case "egress missing price" `Quick test_egress_missing_price;
    Alcotest.test_case "egress untiered route" `Quick test_egress_untiered_route_defaults_to_upstream;
    Alcotest.test_case "demand split" `Quick test_split;
  ]
