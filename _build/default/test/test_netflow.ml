open Flowgen

let gt ?(mbps = 10.) ?(routers = [ 0 ]) () =
  {
    Netflow.gt_src = Ipv4.of_string "10.0.0.1";
    gt_dst = Ipv4.of_string "10.1.0.1";
    gt_mbps = mbps;
    gt_routers = routers;
  }

let test_record_count () =
  let rng = Numerics.Rng.create 1 in
  let records = Netflow.synthesize ~rng [ gt ~routers:[ 0; 1; 2 ] () ] in
  (* Default 24 bins x 3 routers. *)
  Alcotest.(check int) "bins x routers" 72 (List.length records)

let test_total_volume_preserved () =
  let rng = Numerics.Rng.create 2 in
  let shape = { Netflow.default_shape with noise_cv = 0. } in
  let records = Netflow.synthesize ~shape ~rng [ gt ~mbps:10. () ] in
  let expected = 10. *. 125_000. *. float_of_int Netflow.day_seconds in
  Alcotest.(check (float 1.)) "bytes" expected (Netflow.total_bytes records)

let test_volume_with_noise_close () =
  let rng = Numerics.Rng.create 3 in
  let records = Netflow.synthesize ~rng [ gt ~mbps:10. () ] in
  let expected = 10. *. 125_000. *. float_of_int Netflow.day_seconds in
  let actual = Netflow.total_bytes records in
  if abs_float (actual -. expected) /. expected > 0.2 then
    Alcotest.failf "noisy volume too far: %f vs %f" actual expected

let test_diurnal_shape () =
  let rng = Numerics.Rng.create 4 in
  let shape = { Netflow.default_shape with noise_cv = 0.; diurnal_amplitude = 0.6 } in
  let records = Netflow.synthesize ~shape ~rng [ gt () ] in
  let at_hour h =
    List.find (fun (r : Netflow.record) -> r.first_s = h * 3600) records
  in
  let peak = (at_hour 20).Netflow.bytes in
  let trough = (at_hour 8).Netflow.bytes in
  Alcotest.(check bool) "peak > trough" true (peak > 2. *. trough)

let test_flat_shape_uniform () =
  let rng = Numerics.Rng.create 5 in
  let shape = { Netflow.default_shape with noise_cv = 0.; diurnal_amplitude = 0. } in
  let records = Netflow.synthesize ~shape ~rng [ gt () ] in
  let bytes = List.map (fun (r : Netflow.record) -> r.Netflow.bytes) records in
  match bytes with
  | [] -> Alcotest.fail "no records"
  | first :: rest ->
      List.iter (fun b -> Alcotest.(check (float 1e-3)) "uniform bins" first b) rest

let test_duplicate_observations_identical () =
  let rng = Numerics.Rng.create 6 in
  let shape = { Netflow.default_shape with noise_cv = 0.3 } in
  let records = Netflow.synthesize ~shape ~rng [ gt ~routers:[ 3; 9 ] () ] in
  (* Each bin appears once per router with the same bytes (same wire). *)
  List.iter
    (fun (r : Netflow.record) ->
      if r.Netflow.router = 3 then
        let twin =
          List.find
            (fun (r' : Netflow.record) ->
              r'.Netflow.router = 9 && r'.Netflow.first_s = r.Netflow.first_s)
            records
        in
        Alcotest.(check (float 1e-6)) "same bytes at both routers" r.Netflow.bytes
          twin.Netflow.bytes)
    records

let test_csv_roundtrip () =
  let rng = Numerics.Rng.create 7 in
  let records = Netflow.synthesize ~rng [ gt () ] in
  List.iter
    (fun r ->
      let r' = Netflow.of_csv_line (Netflow.to_csv_line r) in
      Alcotest.(check string) "roundtrip" (Netflow.to_csv_line r) (Netflow.to_csv_line r'))
    records

let test_csv_malformed () =
  Alcotest.check_raises "garbage"
    (Invalid_argument "Netflow.of_csv_line: malformed line: not,a,flow") (fun () ->
      ignore (Netflow.of_csv_line "not,a,flow"))

let test_validation () =
  let rng = Numerics.Rng.create 8 in
  (match Netflow.synthesize ~rng [ { (gt ()) with Netflow.gt_routers = [] } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted flow without routers");
  match
    Netflow.synthesize ~shape:{ Netflow.default_shape with bins = 0 } ~rng [ gt () ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero bins"

let test_mbps_of_bytes () =
  Alcotest.(check (float 1e-9)) "1 MB over 8s = 1 Mbps" 1.
    (Netflow.mbps_of_bytes ~bytes:1e6 ~seconds:8)

let suite =
  [
    Alcotest.test_case "record count" `Quick test_record_count;
    Alcotest.test_case "volume preserved (no noise)" `Quick test_total_volume_preserved;
    Alcotest.test_case "volume close (noise)" `Quick test_volume_with_noise_close;
    Alcotest.test_case "diurnal shape" `Quick test_diurnal_shape;
    Alcotest.test_case "flat shape uniform" `Quick test_flat_shape_uniform;
    Alcotest.test_case "duplicates identical across routers" `Quick
      test_duplicate_observations_identical;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv malformed" `Quick test_csv_malformed;
    Alcotest.test_case "input validation" `Quick test_validation;
    Alcotest.test_case "mbps conversion" `Quick test_mbps_of_bytes;
  ]
