open Tiered

let test_registry_ids () =
  let ids = Experiment.ids () in
  List.iter
    (fun id ->
      if not (List.mem id ids) then Alcotest.failf "missing experiment %s" id)
    [
      "table1"; "fig1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig8"; "fig9"; "fig10";
      "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16";
    ];
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Experiment.find "fig99"))

let test_defaults_match_paper () =
  Alcotest.(check (float 0.)) "alpha" 1.1 Experiment.Defaults.alpha;
  Alcotest.(check (float 0.)) "p0" 20. Experiment.Defaults.p0;
  Alcotest.(check (float 0.)) "theta" 0.2 Experiment.Defaults.theta;
  Alcotest.(check (float 0.)) "s0" 0.2 Experiment.Defaults.s0;
  Alcotest.(check (list int)) "bundles" [ 1; 2; 3; 4; 5; 6 ] Experiment.Defaults.bundle_counts

let test_workload_memoized () =
  let a = Experiment.workload "eu_isp" in
  let b = Experiment.workload "eu_isp" in
  Alcotest.(check bool) "same instance" true (a == b)

let test_market_defaults () =
  let m = Experiment.market ~spec:Market.Ced "internet2" in
  Alcotest.(check (float 0.)) "alpha" 1.1 m.Market.alpha;
  Alcotest.(check (float 0.)) "p0" 20. m.Market.p0;
  Alcotest.(check int) "flows" 400 (Market.n_flows m)

let float_of_cell cell =
  match float_of_string_opt cell with
  | Some f -> f
  | None -> Alcotest.failf "cell %S is not numeric" cell

let run id = (Experiment.find id).Experiment.run ()

let test_fig1_improves_profit_and_welfare () =
  match run "fig1" with
  | [ t ] -> (
      match t.Report.rows with
      | [ [ _; _; profit_b; surplus_b; _ ]; [ _; _; profit_t; surplus_t; _ ] ] ->
          Alcotest.(check bool) "profit up" true
            (float_of_cell profit_t > float_of_cell profit_b);
          Alcotest.(check bool) "surplus up" true
            (float_of_cell surplus_t > float_of_cell surplus_b)
      | _ -> Alcotest.fail "unexpected fig1 rows")
  | _ -> Alcotest.fail "fig1 should be one table"

let test_fig3_demand_monotone () =
  match run "fig3" with
  | [ t ] ->
      let rows = List.map (List.map float_of_cell) t.Report.rows in
      let rec monotone = function
        | [ _; _; q1 ] :: ([ _; _; q2 ] :: _ as rest) ->
            Alcotest.(check bool) "falling demand" true (q2 <= q1);
            monotone rest
        | _ -> ()
      in
      monotone rows
  | _ -> Alcotest.fail "fig3 should be one table"

let test_fig4_peak_at_optimal_prices () =
  match run "fig4" with
  | [ t ] ->
      let rows = List.map (List.map float_of_cell) t.Report.rows in
      let best_price column =
        List.fold_left
          (fun (bp, bv) row ->
            let p = List.nth row 0 and v = List.nth row column in
            if v > bv then (p, v) else (bp, bv))
          (0., neg_infinity) rows
      in
      let p1, _ = best_price 1 and p2, _ = best_price 2 in
      (* Optima at 2 and 4 within grid resolution. *)
      Alcotest.(check bool) "c=1 peak near 2" true (abs_float (p1 -. 2.) < 0.3);
      Alcotest.(check bool) "c=2 peak near 4" true (abs_float (p2 -. 4.) < 0.3)
  | _ -> Alcotest.fail "fig4 should be one table"

let test_fig6_recovers_curves () =
  match run "fig6" with
  | [ t ] ->
      List.iter
        (fun row ->
          match row with
          | [ _; _; _; r2 ] ->
              Alcotest.(check bool) "good fit" true (float_of_cell r2 > 0.9)
          | _ -> Alcotest.fail "unexpected fig6 row")
        t.Report.rows
  | _ -> Alcotest.fail "fig6 should be one table"

let test_fig8_shape () =
  let tables = run "fig8" in
  Alcotest.(check int) "three networks" 3 (List.length tables);
  List.iter
    (fun t ->
      (* Column 1 is the optimal strategy; the B=4 row must capture most
         of the headroom (the paper's 90-95% claim). *)
      let row4 = List.nth t.Report.rows 3 in
      let optimal_capture = float_of_cell (List.nth row4 1) in
      Alcotest.(check bool)
        (t.Report.title ^ " optimal B=4 >= 0.85")
        true (optimal_capture >= 0.85))
    tables

let test_fig9_logit_saturates_fast () =
  let tables = run "fig9" in
  List.iter
    (fun t ->
      let row3 = List.nth t.Report.rows 2 in
      let optimal_capture = float_of_cell (List.nth row3 1) in
      Alcotest.(check bool)
        (t.Report.title ^ " optimal B=3 >= 0.9")
        true (optimal_capture >= 0.9))
    tables

let test_fig10_theta_orders_profit () =
  (* Larger base cost (theta) lowers the attainable normalized profit. *)
  match run "fig10" with
  | [ ced; _logit ] ->
      let last_row = List.nth ced.Report.rows 5 in
      let at i = float_of_cell (List.nth last_row i) in
      Alcotest.(check bool) "theta=0.1 >= theta=0.2" true (at 1 >= at 2);
      Alcotest.(check bool) "theta=0.2 >= theta=0.3" true (at 2 >= at 3)
  | _ -> Alcotest.fail "fig10 should be two tables"

let test_fig12_theta_orders_reversed () =
  (* Regional model: higher theta means more cost variation and more
     normalized profit. *)
  match run "fig12" with
  | [ ced; _ ] ->
      let last_row = List.nth ced.Report.rows 5 in
      let at i = float_of_cell (List.nth last_row i) in
      (* Columns: theta=1.0, 1.1, 1.2. *)
      Alcotest.(check bool) "theta=1.2 >= theta=1.0" true (at 3 >= at 1)
  | _ -> Alcotest.fail "fig12 should be two tables"

let test_all_experiments_produce_tables () =
  List.iter
    (fun e ->
      let tables = e.Experiment.run () in
      if tables = [] then Alcotest.failf "%s produced no tables" e.Experiment.id;
      List.iter
        (fun t -> if t.Report.rows = [] then Alcotest.failf "%s has an empty table" e.Experiment.id)
        tables)
    Experiment.all

let suite =
  [
    Alcotest.test_case "registry ids" `Quick test_registry_ids;
    Alcotest.test_case "defaults match paper" `Quick test_defaults_match_paper;
    Alcotest.test_case "workload memoized" `Quick test_workload_memoized;
    Alcotest.test_case "market defaults" `Quick test_market_defaults;
    Alcotest.test_case "fig1 improves profit+welfare" `Quick test_fig1_improves_profit_and_welfare;
    Alcotest.test_case "fig3 monotone demand" `Quick test_fig3_demand_monotone;
    Alcotest.test_case "fig4 profit peaks" `Quick test_fig4_peak_at_optimal_prices;
    Alcotest.test_case "fig6 curve recovery" `Quick test_fig6_recovers_curves;
    Alcotest.test_case "fig8 headline shape" `Slow test_fig8_shape;
    Alcotest.test_case "fig9 logit saturation" `Slow test_fig9_logit_saturates_fast;
    Alcotest.test_case "fig10 theta ordering" `Slow test_fig10_theta_orders_profit;
    Alcotest.test_case "fig12 theta ordering" `Slow test_fig12_theta_orders_reversed;
    Alcotest.test_case "all experiments run" `Slow test_all_experiments_produce_tables;
  ]
