open Routing

let usage : Accounting.usage =
  (* 1 GB on tier 0 and 4 GB on tier 1 over a day. *)
  { Accounting.tier_bytes = [ (0, 1e9); (1, 4e9) ]; untiered_bytes = 0. }

let test_of_usage () =
  let invoice = Billing.of_usage ~rates:[| 20.; 10. |] ~period_s:86_400 usage in
  Alcotest.(check int) "two lines" 2 (List.length invoice.Billing.lines);
  let line0 = List.hd invoice.Billing.lines in
  let expected_mbps = 1e9 *. 8. /. 86_400. /. 1e6 in
  Alcotest.(check (float 1e-9)) "billable" expected_mbps line0.Billing.billable_mbps;
  Alcotest.(check (float 1e-9)) "amount" (expected_mbps *. 20.) line0.Billing.amount;
  let expected_total = (expected_mbps *. 20.) +. (4. *. expected_mbps *. 10.) in
  Alcotest.(check (float 1e-9)) "total" expected_total invoice.Billing.total

let test_missing_rate () =
  Alcotest.check_raises "no rate for tier"
    (Invalid_argument "Billing: usage references a tier with no configured rate")
    (fun () -> ignore (Billing.of_usage ~rates:[| 20. |] ~period_s:86_400 usage))

let test_zero_traffic_omitted () =
  let usage = { Accounting.tier_bytes = [ (0, 0.); (1, 8.64e9) ]; untiered_bytes = 0. } in
  let invoice = Billing.of_usage ~rates:[| 20.; 10. |] ~period_s:86_400 usage in
  Alcotest.(check int) "one line" 1 (List.length invoice.Billing.lines);
  Alcotest.(check int) "tier 1" 1 (List.hd invoice.Billing.lines).Billing.tier

let test_mean_rate_series () =
  let series = [ (0, [| 10.; 20.; 30.; 40. |]) ] in
  let invoice =
    Billing.of_rate_series ~rates:[| 2. |] ~method_:Billing.Mean_rate ~period_s:1200 series
  in
  Alcotest.(check (float 1e-9)) "mean 25 Mbps x $2" 50. invoice.Billing.total

let test_percentile_billing () =
  (* Classic burstable: the p95 ignores the top 5% burst. *)
  let series = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let invoice =
    Billing.of_rate_series ~rates:[| 1. |] ~method_:(Billing.Percentile 0.95)
      ~period_s:36_000
      [ (0, series) ]
  in
  Alcotest.(check (float 0.1)) "p95 of 1..100" 95. invoice.Billing.total

let test_percentile_validation () =
  Alcotest.check_raises "p > 1" (Invalid_argument "Billing: percentile out of [0, 1]")
    (fun () ->
      ignore
        (Billing.of_rate_series ~rates:[| 1. |] ~method_:(Billing.Percentile 1.5)
           ~period_s:60
           [ (0, [| 1. |]) ]))

let test_p95_leq_max_geq_mean_for_bursty () =
  let series = Array.concat [ Array.make 95 10.; Array.make 5 1000. ] in
  let bill m =
    (Billing.of_rate_series ~rates:[| 1. |] ~method_:m ~period_s:60 [ (0, series) ])
      .Billing.total
  in
  let mean = bill Billing.Mean_rate in
  let p95 = bill (Billing.Percentile 0.95) in
  Alcotest.(check bool) "p95 close to base rate" true (p95 < 100.);
  Alcotest.(check bool) "mean above base rate" true (mean > 10.)

let test_empty_series_omitted () =
  let invoice =
    Billing.of_rate_series ~rates:[| 5. |] ~method_:Billing.Mean_rate ~period_s:60
      [ (0, [||]) ]
  in
  Alcotest.(check int) "no lines" 0 (List.length invoice.Billing.lines);
  Alcotest.(check (float 0.)) "zero total" 0. invoice.Billing.total

let test_end_to_end_with_accounting () =
  (* Tag routes, account flows, bill: the full §5 pipeline. *)
  let rib =
    Tagging.build_rib ~asn:65000
      [
        { Tagging.dst_prefix = Flowgen.Ipv4.prefix_of_string "10.1.0.0/16"; tier = 0; next_hop = 1 };
        { Tagging.dst_prefix = Flowgen.Ipv4.prefix_of_string "10.2.0.0/16"; tier = 1; next_hop = 2 };
      ]
  in
  let record dst bytes =
    {
      Flowgen.Netflow.src = Flowgen.Ipv4.of_string "10.0.0.1";
      dst = Flowgen.Ipv4.of_string dst;
      src_port = 1;
      dst_port = 443;
      proto = 6;
      bytes;
      packets = 1.;
      first_s = 0;
      last_s = 86_400;
      router = 0;
    }
  in
  let usage =
    Accounting.flow_based ~rib [ record "10.1.0.1" 8.64e9; record "10.2.0.1" 17.28e9 ]
  in
  let invoice = Billing.of_usage ~rates:[| 20.; 5. |] ~period_s:86_400 usage in
  (* 0.8 Gbps day avg? No: 8.64e9 bytes / 86400 s = 1e5 B/s = 0.8 Mbps. *)
  Alcotest.(check (float 1e-6)) "total" ((0.8 *. 20.) +. (1.6 *. 5.)) invoice.Billing.total

let suite =
  [
    Alcotest.test_case "of_usage" `Quick test_of_usage;
    Alcotest.test_case "missing rate" `Quick test_missing_rate;
    Alcotest.test_case "zero traffic omitted" `Quick test_zero_traffic_omitted;
    Alcotest.test_case "mean-rate series" `Quick test_mean_rate_series;
    Alcotest.test_case "percentile billing" `Quick test_percentile_billing;
    Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
    Alcotest.test_case "bursty p95 vs mean" `Quick test_p95_leq_max_geq_mean_for_bursty;
    Alcotest.test_case "empty series omitted" `Quick test_empty_series_omitted;
    Alcotest.test_case "end-to-end tag/account/bill" `Quick test_end_to_end_with_accounting;
  ]
