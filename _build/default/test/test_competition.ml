open Tiered

let checkf tol = Alcotest.(check (float tol))

let valuations = [| 5.; 7.; 6. |]
let alpha = 1.2

let firm_a = Competition.firm ~name:"A" ~costs:[| 1.0; 2.0; 1.5 |]
let firm_b = Competition.firm ~name:"B" ~costs:[| 1.4; 1.2; 1.5 |]

let test_monopoly_matches_logit () =
  let eq = Competition.monopoly ~alpha ~valuations firm_a in
  let opt = Logit.optimize ~alpha ~valuations ~costs:firm_a.Competition.costs in
  checkf 1e-9 "same margin" (opt.Logit.x /. alpha) eq.Competition.margins.(0);
  checkf 1e-9 "profit = (x-1)/alpha" opt.Logit.profit_per_k eq.Competition.profits.(0)

let test_duopoly_structure () =
  let eq = Competition.nash ~alpha ~valuations [| firm_a; firm_b |] in
  Alcotest.(check int) "two margins" 2 (Array.length eq.Competition.margins);
  Array.iter
    (fun m -> Alcotest.(check bool) "margin above 1/alpha" true (m > 1. /. alpha))
    eq.Competition.margins;
  let total =
    Array.fold_left ( +. ) eq.Competition.s0 eq.Competition.shares
  in
  checkf 1e-9 "shares + s0 = 1" 1. total

let test_duopoly_is_fixed_point () =
  let eq = Competition.nash ~alpha ~valuations [| firm_a; firm_b |] in
  Array.iteri
    (fun f m ->
      let br =
        Competition.best_response_margin ~alpha ~valuations
          ~firms:[| firm_a; firm_b |] ~margins:eq.Competition.margins f
      in
      checkf 1e-5 "best response to itself" m br)
    eq.Competition.margins

let test_competition_compresses_margins () =
  (* Entry must not raise the incumbent's margin. *)
  let mono = Competition.monopoly ~alpha ~valuations firm_a in
  let duo = Competition.nash ~alpha ~valuations [| firm_a; firm_b |] in
  Alcotest.(check bool) "entry lowers A's margin" true
    (duo.Competition.margins.(0) < mono.Competition.margins.(0));
  Alcotest.(check bool) "entry lowers A's profit" true
    (duo.Competition.profits.(0) < mono.Competition.profits.(0))

let test_cheaper_firm_wins_share () =
  (* Give B a strict cost advantage everywhere. *)
  let cheap = Competition.firm ~name:"cheap" ~costs:[| 0.5; 0.5; 0.5 |] in
  let dear = Competition.firm ~name:"dear" ~costs:[| 2.5; 2.5; 2.5 |] in
  let eq = Competition.nash ~alpha ~valuations [| cheap; dear |] in
  Alcotest.(check bool) "cost leader gets more share" true
    (eq.Competition.shares.(0) > eq.Competition.shares.(1));
  Alcotest.(check bool) "and more profit" true
    (eq.Competition.profits.(0) > eq.Competition.profits.(1))

let test_symmetric_firms_symmetric_equilibrium () =
  let twin = Competition.firm ~name:"twin" ~costs:firm_a.Competition.costs in
  let eq = Competition.nash ~alpha ~valuations [| firm_a; twin |] in
  checkf 1e-6 "equal margins" eq.Competition.margins.(0) eq.Competition.margins.(1);
  checkf 1e-6 "equal shares" eq.Competition.shares.(0) eq.Competition.shares.(1)

let test_prices_are_cost_plus_margin () =
  let eq = Competition.nash ~alpha ~valuations [| firm_a; firm_b |] in
  Array.iteri
    (fun f prices ->
      let firm = [| firm_a; firm_b |].(f) in
      Array.iteri
        (fun i p ->
          checkf 1e-9 "price decomposition"
            (firm.Competition.costs.(i) +. eq.Competition.margins.(f))
            p)
        prices)
    eq.Competition.prices

let test_validation () =
  (match Competition.nash ~alpha ~valuations [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero firms");
  let short = Competition.firm ~name:"short" ~costs:[| 1. |] in
  match Competition.nash ~alpha ~valuations [| short |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted mismatched costs"

let test_price_war_trajectory () =
  (* As the entrant's costs fall year over year, equilibrium prices
     fall too -- the paper's 30%/year transit price decline story. *)
  let year_price cost_scale =
    let entrant =
      Competition.firm ~name:"entrant"
        ~costs:(Array.map (fun c -> c *. cost_scale) firm_b.Competition.costs)
    in
    let eq = Competition.nash ~alpha ~valuations [| firm_a; entrant |] in
    (* Demand-weighted average price across the market. *)
    let per_firm, _ =
      ( Array.map (fun prices -> Numerics.Stats.mean prices) eq.Competition.prices,
        () )
    in
    Numerics.Stats.mean per_firm
  in
  let p0 = year_price 1.0 and p1 = year_price 0.7 and p2 = year_price 0.49 in
  Alcotest.(check bool) "prices fall with entrant costs" true (p0 > p1 && p1 > p2)

let suite =
  [
    Alcotest.test_case "monopoly = Logit.optimize" `Quick test_monopoly_matches_logit;
    Alcotest.test_case "duopoly structure" `Quick test_duopoly_structure;
    Alcotest.test_case "equilibrium is a fixed point" `Quick test_duopoly_is_fixed_point;
    Alcotest.test_case "competition compresses margins" `Quick
      test_competition_compresses_margins;
    Alcotest.test_case "cost leader wins" `Quick test_cheaper_firm_wins_share;
    Alcotest.test_case "symmetric equilibrium" `Quick test_symmetric_firms_symmetric_equilibrium;
    Alcotest.test_case "price decomposition" `Quick test_prices_are_cost_plus_margin;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "price war trajectory" `Quick test_price_war_trajectory;
  ]
