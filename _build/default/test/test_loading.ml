open Flowgen

let checkf tol = Alcotest.(check (float tol))

let topo = lazy (Netsim.Presets.internet2 ())

let node t name = (Netsim.Topology.pop_by_city t name).Netsim.Node.id

let test_of_demands_single_path () =
  let t = Lazy.force topo in
  (* NYC -> Washington is a direct Abilene link. *)
  let report =
    Loading.of_demands ~topology:t [ (node t "New York", node t "Washington", 100.) ]
  in
  Alcotest.(check int) "one loaded link" 1 (List.length report.Loading.loads);
  let l = List.hd report.Loading.loads in
  checkf 1e-9 "full demand" 100. l.Loading.mbps;
  (* 10 Gbps links: utilization = 100 / 10000. *)
  checkf 1e-9 "utilization" 0.01 l.Loading.utilization

let test_multi_hop_loads_every_link () =
  let t = Lazy.force topo in
  (* Seattle -> New York traverses several links; each carries the
     flow. *)
  let report =
    Loading.of_demands ~topology:t [ (node t "Seattle", node t "New York", 50.) ]
  in
  Alcotest.(check bool) "several links loaded" true (List.length report.Loading.loads >= 3);
  List.iter
    (fun l -> checkf 1e-9 "same load everywhere" 50. l.Loading.mbps)
    report.Loading.loads

let test_flows_superpose () =
  let t = Lazy.force topo in
  let a = node t "New York" and b = node t "Washington" in
  let report = Loading.of_demands ~topology:t [ (a, b, 100.); (b, a, 50.) ] in
  let l = List.hd report.Loading.loads in
  checkf 1e-9 "both directions summed" 150. l.Loading.mbps

let test_overload_detection () =
  let t = Lazy.force topo in
  let report =
    Loading.of_demands ~topology:t
      [ (node t "New York", node t "Washington", 20_000.) ]
  in
  Alcotest.(check int) "overloaded" 1 (List.length report.Loading.overloaded);
  Alcotest.(check bool) "max utilization > 1" true (report.Loading.max_utilization > 1.)

let test_self_demand_ignored () =
  let t = Lazy.force topo in
  let a = node t "Chicago" in
  let report = Loading.of_demands ~topology:t [ (a, a, 10.) ] in
  Alcotest.(check int) "nothing loaded" 0 (List.length report.Loading.loads)

let test_of_workload_conservation () =
  let w = Fixtures.workload () in
  let report = Loading.of_workload w in
  (* Every multi-hop flow loads at least one link; totals are finite and
     non-negative. *)
  Alcotest.(check bool) "links loaded" true (List.length report.Loading.loads > 0);
  List.iter
    (fun l ->
      if l.Loading.mbps < 0. then Alcotest.fail "negative load";
      if l.Loading.utilization < 0. then Alcotest.fail "negative utilization")
    report.Loading.loads;
  checkf 1e-9 "nothing unrouted" 0. report.Loading.unrouted_mbps

let test_loads_sorted () =
  let w = Fixtures.workload () in
  let report = Loading.of_workload w in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Loading.utilization >= b.Loading.utilization && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "descending utilization" true (sorted report.Loading.loads)

let test_scale () =
  let t = Lazy.force topo in
  let report =
    Loading.of_demands ~topology:t [ (node t "New York", node t "Washington", 100.) ]
  in
  let doubled = Loading.scale_demands 2. report in
  checkf 1e-9 "doubled" 200. (List.hd doubled.Loading.loads).Loading.mbps;
  Alcotest.check_raises "negative factor"
    (Invalid_argument "Loading.scale_demands: negative factor") (fun () ->
      ignore (Loading.scale_demands (-1.) report))

let suite =
  [
    Alcotest.test_case "single-hop demand" `Quick test_of_demands_single_path;
    Alcotest.test_case "multi-hop loads every link" `Quick test_multi_hop_loads_every_link;
    Alcotest.test_case "flows superpose" `Quick test_flows_superpose;
    Alcotest.test_case "overload detection" `Quick test_overload_detection;
    Alcotest.test_case "self demand ignored" `Quick test_self_demand_ignored;
    Alcotest.test_case "workload conservation" `Quick test_of_workload_conservation;
    Alcotest.test_case "loads sorted" `Quick test_loads_sorted;
    Alcotest.test_case "scaling" `Quick test_scale;
  ]
