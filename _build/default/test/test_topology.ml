open Netsim

let cities names = List.map Cities.find names
let euro4 = [ "London"; "Paris"; "Berlin"; "Madrid" ]

let test_ring () =
  let t = Topology.ring ~name:"r" ~capacity_gbps:10. (cities euro4) in
  Alcotest.(check int) "nodes" 4 (Graph.node_count t.Topology.graph);
  Alcotest.(check int) "links" 4 (Graph.link_count t.Topology.graph);
  Alcotest.(check bool) "connected" true (Graph.is_connected t.Topology.graph)

let test_ring_two_cities () =
  let t = Topology.ring ~name:"r2" ~capacity_gbps:10. (cities [ "London"; "Paris" ]) in
  Alcotest.(check int) "single edge" 1 (Graph.link_count t.Topology.graph)

let test_ring_too_small () =
  Alcotest.check_raises "one city" (Invalid_argument "Topology.ring: need at least two cities")
    (fun () -> ignore (Topology.ring ~name:"r" ~capacity_gbps:1. (cities [ "London" ])))

let test_star () =
  let t =
    Topology.star ~name:"s" ~capacity_gbps:10. ~hub:(Cities.find "Frankfurt")
      (cities euro4)
  in
  Alcotest.(check int) "nodes" 5 (Graph.node_count t.Topology.graph);
  Alcotest.(check int) "links" 4 (Graph.link_count t.Topology.graph);
  (* Hub has id 0 and degree 4. *)
  Alcotest.(check int) "hub degree" 4 (List.length (Graph.neighbors t.Topology.graph 0))

let test_full_mesh () =
  let t = Topology.full_mesh ~name:"m" ~capacity_gbps:10. (cities euro4) in
  Alcotest.(check int) "links" 6 (Graph.link_count t.Topology.graph)

let test_waxman_connected () =
  let rng = Numerics.Rng.create 5 in
  let t =
    Topology.waxman ~name:"w" ~rng ~capacity_gbps:10. ~alpha:0.3 ~beta:0.3
      (cities [ "London"; "Paris"; "Berlin"; "Madrid"; "Rome"; "Vienna"; "Warsaw" ])
  in
  Alcotest.(check bool) "connected" true (Graph.is_connected t.Topology.graph);
  Alcotest.(check bool) "at least spanning" true
    (Graph.link_count t.Topology.graph >= 6)

let test_waxman_params_validated () =
  let rng = Numerics.Rng.create 5 in
  Alcotest.check_raises "alpha 0"
    (Invalid_argument "Topology.waxman: alpha and beta must be in (0, 1]") (fun () ->
      ignore
        (Topology.waxman ~name:"w" ~rng ~capacity_gbps:1. ~alpha:0. ~beta:0.5
           (cities euro4)))

let test_distance_matrix () =
  let t = Topology.ring ~name:"r" ~capacity_gbps:10. (cities euro4) in
  let m = Topology.distance_matrix t in
  let n = List.length t.Topology.pops in
  Alcotest.(check int) "square" n (Array.length m);
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-9)) "zero diagonal" 0. m.(i).(i);
    for j = 0 to n - 1 do
      Alcotest.(check (float 1e-6)) "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_pop_by_city () =
  let t = Topology.ring ~name:"r" ~capacity_gbps:10. (cities euro4) in
  let pop = Topology.pop_by_city t "Berlin" in
  Alcotest.(check string) "city" "Berlin" pop.Node.city.Cities.name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Topology.pop_by_city t "Tokyo"))

let test_link_stretch () =
  let a = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city:(Cities.find "London") in
  let b = Node.make ~id:1 ~name:"b" ~kind:Node.Pop ~city:(Cities.find "Paris") in
  let direct = Link.make ~capacity_gbps:1. a b in
  let stretched = Link.make ~stretch:1.3 ~capacity_gbps:1. a b in
  Alcotest.(check (float 1e-6)) "stretch factor" (direct.Link.length_miles *. 1.3)
    stretched.Link.length_miles;
  Alcotest.check_raises "self loop" (Invalid_argument "Link.make: self-loop") (fun () ->
      ignore (Link.make ~capacity_gbps:1. a a))

let test_link_other_end () =
  let a = Node.make ~id:0 ~name:"a" ~kind:Node.Pop ~city:(Cities.find "London") in
  let b = Node.make ~id:1 ~name:"b" ~kind:Node.Pop ~city:(Cities.find "Paris") in
  let l = Link.make ~capacity_gbps:1. a b in
  Alcotest.(check int) "other of a" 1 (Link.other_end l 0);
  Alcotest.(check int) "other of b" 0 (Link.other_end l 1);
  Alcotest.(check bool) "connects" true (Link.connects l 1 0)

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "ring of two" `Quick test_ring_two_cities;
    Alcotest.test_case "ring too small" `Quick test_ring_too_small;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "full mesh" `Quick test_full_mesh;
    Alcotest.test_case "waxman connected" `Quick test_waxman_connected;
    Alcotest.test_case "waxman validation" `Quick test_waxman_params_validated;
    Alcotest.test_case "distance matrix" `Quick test_distance_matrix;
    Alcotest.test_case "pop_by_city" `Quick test_pop_by_city;
    Alcotest.test_case "link stretch + self-loop" `Quick test_link_stretch;
    Alcotest.test_case "link other_end" `Quick test_link_other_end;
  ]
