open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_shares_sum_to_one () =
  let valuations = [| 1.6; 1.0; 2.2 |] and prices = [| 1.; 1.; 1.5 |] in
  let shares, s0 = Logit.shares ~alpha:2. ~valuations ~prices in
  let total = Array.fold_left ( +. ) s0 shares in
  checkf 1e-12 "sum" 1. total;
  Array.iter (fun s -> Alcotest.(check bool) "positive" true (s > 0.)) shares

let test_shares_monotone_in_price () =
  let valuations = [| 1.6; 1.0 |] in
  let share_at p2 =
    let s, _ = Logit.shares ~alpha:2. ~valuations ~prices:[| 1.; p2 |] in
    s.(1)
  in
  Alcotest.(check bool) "demand falls with price" true (share_at 0.5 > share_at 2.0)

let test_shares_overflow_safe () =
  (* alpha v far beyond exp range must not produce nan/inf. *)
  let valuations = [| 500.; 400. |] and prices = [| 1.; 1. |] in
  let shares, s0 = Logit.shares ~alpha:3. ~valuations ~prices in
  Array.iter (fun s -> Alcotest.(check bool) "finite" true (Float.is_finite s)) shares;
  Alcotest.(check bool) "s0 finite" true (Float.is_finite s0);
  checkf 1e-9 "sum still 1" 1. (Array.fold_left ( +. ) s0 shares)

let test_fit_roundtrip () =
  (* Fitting valuations from observed demands and evaluating at p0 must
     recover those demands. *)
  let alpha = 1.1 and p0 = 20. and s0 = 0.2 in
  let demands = [| 100.; 45.; 3.; 260. |] in
  let { Logit.valuations; k; _ } = Logit.fit_valuations ~alpha ~p0 ~s0 ~demands in
  let prices = Array.make 4 p0 in
  let recovered = Logit.demands_at ~alpha ~k ~valuations ~prices in
  Array.iteri (fun i q -> checkf 1e-6 (Printf.sprintf "q%d" i) q recovered.(i)) demands;
  (* And the implied non-participation is exactly s0. *)
  let _, s0' = Logit.shares ~alpha ~valuations ~prices in
  checkf 1e-9 "s0 recovered" s0 s0'

let test_fit_validation () =
  Alcotest.check_raises "bad s0" (Invalid_argument "Logit: s0 must be in (0, 1)")
    (fun () -> ignore (Logit.fit_valuations ~alpha:1. ~p0:20. ~s0:0. ~demands:[| 1. |]));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Logit: alpha must be > 0")
    (fun () -> ignore (Logit.fit_valuations ~alpha:0. ~p0:20. ~s0:0.2 ~demands:[| 1. |]))

let test_gamma_requires_margin () =
  (* p0 <= 1/(alpha s0) would imply non-positive costs. *)
  let demands = [| 10.; 20. |] in
  let { Logit.valuations; _ } = Logit.fit_valuations ~alpha:0.1 ~p0:2. ~s0:0.2 ~demands in
  match
    Logit.gamma ~alpha:0.1 ~p0:2. ~s0:0.2 ~valuations ~rel_costs:[| 1.; 2. |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted infeasible margin"

let test_gamma_makes_p0_stationary () =
  (* With gamma-scaled costs, the blended price p0 satisfies the
     optimal-margin condition: optimizing the all-in-one bundle returns
     p0. *)
  let alpha = 1.1 and p0 = 20. and s0 = 0.2 in
  let demands = [| 100.; 45.; 3.; 260. |] in
  let rel_costs = [| 1.; 4.; 2.; 0.5 |] in
  let { Logit.valuations; _ } = Logit.fit_valuations ~alpha ~p0 ~s0 ~demands in
  let gamma = Logit.gamma ~alpha ~p0 ~s0 ~valuations ~rel_costs in
  let costs = Array.map (fun f -> gamma *. f) rel_costs in
  let v_b, c_b = Logit.bundle_aggregate ~alpha ~valuations ~costs in
  let { Logit.prices; x; _ } = Logit.optimize ~alpha ~valuations:[| v_b |] ~costs:[| c_b |] in
  checkf 1e-6 "blended optimum is p0" p0 prices.(0);
  (* At the blended optimum the non-participation share is s0 = 1/x. *)
  checkf 1e-6 "x = 1/s0" (1. /. s0) x

let test_optimal_margin_residual () =
  List.iter
    (fun ln_s ->
      let x = Logit.optimal_margin ~alpha:1. ~ln_s in
      checkf 1e-7 "residual" 0. (x -. 1. -. exp (ln_s -. x));
      Alcotest.(check bool) "x > 1" true (x > 1.))
    [ -5.; 0.; 1.; 10.; 100.; 500. ]

let test_optimize_common_margin () =
  let valuations = [| 5.; 7.; 6. |] and costs = [| 1.; 3.; 2. |] in
  let { Logit.prices; x; _ } = Logit.optimize ~alpha:1.5 ~valuations ~costs in
  let margins = Array.map2 (fun p c -> p -. c) prices costs in
  Array.iter (fun m -> checkf 1e-9 "same margin" (x /. 1.5) m) margins

let test_optimize_matches_numeric () =
  (* Closed-form optimum vs direct numeric ascent on the profit. *)
  let alpha = 1.2 and k = 100. in
  let valuations = [| 5.; 8. |] and costs = [| 1.; 2.5 |] in
  let opt = Logit.optimize ~alpha ~valuations ~costs in
  let profit prices = Logit.profit_at ~alpha ~k ~valuations ~costs ~prices in
  (* step0 matters: a large first step can strand the ascent on the
     exponentially flat region of the logit profit surface. *)
  let numeric =
    Numerics.Gradient.ascent ~step0:0.1
      ~project:(fun p -> Array.mapi (fun i pi -> Float.max costs.(i) pi) p)
      ~f:profit
      ~grad:(Numerics.Gradient.numeric_grad profit)
      [| 3.; 4. |]
  in
  checkf 1e-3 "profits agree" (k *. opt.Logit.profit_per_k) numeric.Numerics.Gradient.value;
  Array.iteri
    (fun i p -> checkf 1e-2 (Printf.sprintf "price %d" i) p numeric.Numerics.Gradient.x.(i))
    opt.Logit.prices

let test_bundle_aggregate_properties () =
  let valuations = [| 2.; 3. |] and costs = [| 1.; 5. |] in
  let v_b, c_b = Logit.bundle_aggregate ~alpha:1.5 ~valuations ~costs in
  (* Eq. 10: bundle valuation exceeds every member (log-sum-exp). *)
  Alcotest.(check bool) "v_b >= max v" true (v_b >= 3.);
  (* Eq. 11: bundle cost is a convex combination of member costs. *)
  Alcotest.(check bool) "cost inside range" true (c_b > 1. && c_b < 5.);
  (* Weighting favors the higher-valuation flow's cost. *)
  Alcotest.(check bool) "tilted to big flow" true (c_b > 3.)

let test_bundling_cannot_beat_singletons () =
  (* Optimal profit is monotone in S, and S is maximal with per-flow
     pricing. *)
  let alpha = 1.1 in
  let valuations = [| 5.; 8.; 3. |] and costs = [| 1.; 2.; 0.5 |] in
  let singleton = Logit.optimize ~alpha ~valuations ~costs in
  let v_b, c_b = Logit.bundle_aggregate ~alpha ~valuations ~costs in
  let bundled = Logit.optimize ~alpha ~valuations:[| v_b |] ~costs:[| c_b |] in
  Alcotest.(check bool) "bundle loses" true
    (bundled.Logit.profit_per_k <= singleton.Logit.profit_per_k +. 1e-12)

let test_consumer_surplus_decreasing_in_price () =
  let valuations = [| 2.; 3. |] in
  let cs prices = Logit.consumer_surplus ~alpha:1.5 ~k:10. ~valuations ~prices in
  Alcotest.(check bool) "lower at higher price" true (cs [| 2.; 2. |] > cs [| 3.; 3. |])

let test_profit_at_blended_below_optimal () =
  let alpha = 1.3 and k = 50. in
  let valuations = [| 4.; 6. |] and costs = [| 1.; 2. |] in
  let opt = Logit.optimize ~alpha ~valuations ~costs in
  let blended = Logit.profit_at ~alpha ~k ~valuations ~costs ~prices:[| 3.; 3. |] in
  Alcotest.(check bool) "suboptimal" true (blended <= (k *. opt.Logit.profit_per_k) +. 1e-9)

let prop_margin_increasing_in_s =
  QCheck.Test.make ~name:"optimal margin increases with ln S" ~count:200
    QCheck.(pair (float_range (-5.) 50.) (float_range 0.01 10.))
    (fun (ln_s, delta) ->
      let x1 = Logit.optimal_margin ~alpha:1. ~ln_s in
      let x2 = Logit.optimal_margin ~alpha:1. ~ln_s:(ln_s +. delta) in
      x2 >= x1 -. 1e-9)

let prop_shares_probability_vector =
  QCheck.Test.make ~name:"shares are a probability vector" ~count:200
    QCheck.(
      pair (float_range 0.1 5.)
        (list_of_size Gen.(1 -- 6) (pair (float_range (-5.) 20.) (float_range 0. 30.))))
    (fun (alpha, goods) ->
      let valuations = Array.of_list (List.map fst goods) in
      let prices = Array.of_list (List.map snd goods) in
      let shares, s0 = Logit.shares ~alpha ~valuations ~prices in
      let total = Array.fold_left ( +. ) s0 shares in
      abs_float (total -. 1.) < 1e-9
      && s0 >= 0.
      && Array.for_all (fun s -> s >= 0.) shares)

let suite =
  [
    Alcotest.test_case "shares sum to one" `Quick test_shares_sum_to_one;
    Alcotest.test_case "shares monotone in price" `Quick test_shares_monotone_in_price;
    Alcotest.test_case "overflow-safe shares" `Quick test_shares_overflow_safe;
    Alcotest.test_case "fit roundtrip" `Quick test_fit_roundtrip;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "gamma margin feasibility" `Quick test_gamma_requires_margin;
    Alcotest.test_case "gamma makes p0 stationary" `Quick test_gamma_makes_p0_stationary;
    Alcotest.test_case "optimal margin residual" `Quick test_optimal_margin_residual;
    Alcotest.test_case "common margin" `Quick test_optimize_common_margin;
    Alcotest.test_case "closed form = numeric" `Quick test_optimize_matches_numeric;
    Alcotest.test_case "bundle aggregation (Eqs. 10-11)" `Quick test_bundle_aggregate_properties;
    Alcotest.test_case "bundling cannot beat singletons" `Quick test_bundling_cannot_beat_singletons;
    Alcotest.test_case "surplus decreasing in price" `Quick test_consumer_surplus_decreasing_in_price;
    Alcotest.test_case "blended below optimal" `Quick test_profit_at_blended_below_optimal;
    QCheck_alcotest.to_alcotest prop_margin_increasing_in_s;
    QCheck_alcotest.to_alcotest prop_shares_probability_vector;
  ]
