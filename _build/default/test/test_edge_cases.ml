(* Degenerate and extreme inputs across the stack: single-flow markets,
   identical flows, extreme elasticities, very large markets. *)
open Tiered

let checkf tol = Alcotest.(check (float tol))

let single_flow_market spec =
  let flows = [| Flow.make ~id:0 ~demand_mbps:42. ~distance_miles:100. () |] in
  Market.fit ~spec ~alpha:1.5 ~p0:20. ~cost_model:(Cost_model.linear ~theta:0.2) flows

let test_single_flow_market () =
  List.iter
    (fun spec ->
      let m = single_flow_market spec in
      (* One flow: blended = per-flow = max; headroom is zero, so every
         strategy trivially produces one bundle and capture is
         undefined. *)
      let blended = Pricing.original_profit m in
      let maximum = Pricing.max_profit m in
      checkf 1e-6 "no headroom" blended maximum;
      List.iter
        (fun s ->
          Alcotest.(check int) (Strategy.name s) 1
            (Bundle.count (Strategy.apply s m ~n_bundles:3)))
        Strategy.all)
    [ Market.Ced; Market.Logit { s0 = 0.2 } ]

let test_identical_flows_no_headroom () =
  (* Identical flows: bundling cannot help; capture context must refuse. *)
  let flows =
    Array.init 5 (fun id -> Flow.make ~id ~demand_mbps:10. ~distance_miles:50. ())
  in
  let m = Market.fit ~spec:Market.Ced ~alpha:1.5 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows
  in
  let ctx = Capture.context m in
  Alcotest.(check bool) "headroom ~ 0" true (Capture.headroom ctx < 1e-6);
  match Capture.value ctx ctx.Capture.original with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted degenerate capture"

let test_extreme_alpha_ced () =
  (* alpha barely above 1 (huge markups) and alpha = 50 (razor-thin). *)
  List.iter
    (fun alpha ->
      let m = Fixtures.ced_market ~alpha () in
      let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
      Alcotest.(check bool)
        (Printf.sprintf "finite at alpha=%g" alpha)
        true
        (Float.is_finite o.Pricing.profit && o.Pricing.profit > 0.))
    [ 1.0001; 1.01; 50. ]

let test_extreme_s0_logit () =
  List.iter
    (fun s0 ->
      let m = Fixtures.logit_market ~s0 () in
      let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:3) in
      Alcotest.(check bool)
        (Printf.sprintf "finite at s0=%g" s0)
        true
        (Float.is_finite o.Pricing.profit && o.Pricing.profit > 0.))
    [ 0.05; 0.5; 0.99 ]

let test_tiny_and_huge_demands () =
  (* Nine orders of magnitude of demand in one market. *)
  let flows =
    Fixtures.flows_of_spec
      [ (1e-3, 5.); (1., 50.); (1e3, 500.); (1e6, 5000.) ]
  in
  List.iter
    (fun m ->
      let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:2) in
      Alcotest.(check bool) "finite" true (Float.is_finite o.Pricing.profit))
    [ Fixtures.ced_market ~flows (); Fixtures.logit_market ~flows () ]

let test_more_bundles_than_flows () =
  let flows = Fixtures.flows_of_spec [ (10., 10.); (20., 200.) ] in
  let m = Fixtures.ced_market ~flows () in
  List.iter
    (fun s ->
      let b = Strategy.apply s m ~n_bundles:10 in
      Alcotest.(check bool) (Strategy.name s) true (Bundle.count b <= 2))
    Strategy.all

let test_zero_distance_flows () =
  let flows =
    [|
      Flow.make ~id:0 ~demand_mbps:10. ~distance_miles:0. ();
      Flow.make ~id:1 ~demand_mbps:5. ~distance_miles:100. ();
    |]
  in
  List.iter
    (fun cost_model ->
      let m = Market.fit ~spec:Market.Ced ~alpha:1.5 ~p0:20. ~cost_model flows in
      Array.iter
        (fun c -> Alcotest.(check bool) "positive cost" true (c > 0.))
        m.Market.costs)
    [
      Cost_model.linear ~theta:0.; Cost_model.linear ~theta:0.2;
      Cost_model.concave ~theta:0.2; Cost_model.regional ~theta:1.1;
    ]

let test_large_market_scales () =
  (* 5000 flows: fit, optimal DP, evaluation and capture must complete
     and stay sane. *)
  let rng = Numerics.Rng.create 555 in
  let flows =
    Array.init 5000 (fun id ->
        Flow.make ~id
          ~demand_mbps:(Numerics.Dist.lognormal_of_mean_cv rng ~mean:10. ~cv:1.5)
          ~distance_miles:(Numerics.Rng.uniform rng 1. 5000.)
          ())
  in
  let m = Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows
  in
  let ctx = Capture.context m in
  let capture =
    Capture.value ctx
      (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:4)).Pricing.profit
  in
  Alcotest.(check bool) "sane capture" true (capture > 0.5 && capture <= 1.)

let test_workload_one_flow () =
  let params = { (Flowgen.Workload.preset_params "eu_isp") with Flowgen.Workload.n_flows = 1 } in
  let w = Flowgen.Workload.generate (Netsim.Presets.eu_isp ()) params in
  Alcotest.(check int) "one flow" 1 (List.length w.Flowgen.Workload.flows)

let test_empty_accounting () =
  let rib = Routing.Rib.empty in
  let usage = Routing.Accounting.flow_based ~rib [] in
  Alcotest.(check (float 0.)) "empty" 0. (Routing.Accounting.total_bytes usage)

let suite =
  [
    Alcotest.test_case "single-flow market" `Quick test_single_flow_market;
    Alcotest.test_case "identical flows: no headroom" `Quick test_identical_flows_no_headroom;
    Alcotest.test_case "extreme alpha (CED)" `Quick test_extreme_alpha_ced;
    Alcotest.test_case "extreme s0 (logit)" `Quick test_extreme_s0_logit;
    Alcotest.test_case "nine orders of demand magnitude" `Quick test_tiny_and_huge_demands;
    Alcotest.test_case "more bundles than flows" `Quick test_more_bundles_than_flows;
    Alcotest.test_case "zero-distance flows" `Quick test_zero_distance_flows;
    Alcotest.test_case "5000-flow market" `Slow test_large_market_scales;
    Alcotest.test_case "one-flow workload" `Quick test_workload_one_flow;
    Alcotest.test_case "empty accounting" `Quick test_empty_accounting;
  ]
