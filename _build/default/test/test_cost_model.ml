open Tiered

let flows =
  [|
    Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:5. ();
    Flow.make ~id:1 ~demand_mbps:1. ~distance_miles:50. ();
    Flow.make ~id:2 ~demand_mbps:1. ~distance_miles:500. ();
  |]

let test_linear_base_cost () =
  (* theta = 0.1 -> base = 50; costs are d + 50. *)
  let costs = Cost_model.relative_costs (Cost_model.linear ~theta:0.1) flows in
  Alcotest.(check (array (float 1e-9))) "d + base" [| 55.; 100.; 550. |] costs

let test_linear_theta_zero () =
  let costs = Cost_model.relative_costs (Cost_model.linear ~theta:0.) flows in
  Alcotest.(check (array (float 1e-9))) "pure distance" [| 5.; 50.; 500. |] costs

let test_linear_positive () =
  let zero_dist = [| Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:0. () |] in
  let costs = Cost_model.relative_costs (Cost_model.linear ~theta:0.) zero_dist in
  Alcotest.(check bool) "floored above zero" true (costs.(0) > 0.)

let test_concave_flattens () =
  let linear = Cost_model.relative_costs (Cost_model.linear ~theta:0.) flows in
  let concave = Cost_model.relative_costs (Cost_model.concave ~theta:0.) flows in
  (* Concave curve compresses the ratio between far and near flows. *)
  let ratio c = c.(2) /. c.(0) in
  Alcotest.(check bool) "compressed ratios" true (ratio concave < ratio linear);
  Array.iter (fun c -> Alcotest.(check bool) "positive" true (c > 0.)) concave

let test_concave_monotone () =
  let concave = Cost_model.relative_costs (Cost_model.concave ~theta:0.2) flows in
  Alcotest.(check bool) "monotone in distance" true
    (concave.(0) < concave.(1) && concave.(1) < concave.(2))

let test_regional_classes () =
  let costs = Cost_model.relative_costs (Cost_model.regional ~theta:1.) flows in
  Alcotest.(check (array (float 1e-9))) "1/2/3" [| 1.; 2.; 3. |] costs

let test_regional_theta_zero_flat () =
  let costs = Cost_model.relative_costs (Cost_model.regional ~theta:0.) flows in
  Alcotest.(check (array (float 1e-9))) "no differentiation" [| 1.; 1.; 1. |] costs

let test_regional_theta_superlinear () =
  let costs = Cost_model.relative_costs (Cost_model.regional ~theta:2.) flows in
  Alcotest.(check (array (float 1e-9))) "squared" [| 1.; 4.; 9. |] costs

let test_destination_type_two_classes () =
  let model = Cost_model.destination_type ~theta:0.5 in
  let many =
    Array.init 100 (fun id -> Flow.make ~id ~demand_mbps:1. ~distance_miles:10. ())
  in
  let costs = Cost_model.relative_costs model many in
  Array.iter
    (fun c ->
      if c <> 1. && c <> 2. then Alcotest.failf "cost neither on- nor off-net: %f" c)
    costs;
  (* Half the flows should be on-net, within rounding of the
     low-discrepancy sequence. *)
  let on_net = Array.fold_left (fun acc c -> if c = 1. then acc + 1 else acc) 0 costs in
  if on_net < 40 || on_net > 60 then Alcotest.failf "on-net share off: %d/100" on_net

let test_is_on_net_fraction () =
  let theta = 0.15 in
  let n = 10_000 in
  let count = ref 0 in
  for id = 0 to n - 1 do
    if Cost_model.is_on_net ~theta id then incr count
  done;
  let frac = float_of_int !count /. float_of_int n in
  Alcotest.(check (float 0.01)) "converges to theta" theta frac

let test_is_on_net_deterministic () =
  Alcotest.(check bool) "same answer" (Cost_model.is_on_net ~theta:0.3 7)
    (Cost_model.is_on_net ~theta:0.3 7)

let test_validation () =
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Cost_model.linear: negative theta") (fun () ->
      ignore (Cost_model.linear ~theta:(-0.1)));
  Alcotest.check_raises "dest-type theta > 1"
    (Invalid_argument "Cost_model.destination_type: theta out of [0, 1]") (fun () ->
      ignore (Cost_model.destination_type ~theta:1.5))

let test_names () =
  Alcotest.(check string) "linear" "linear" (Cost_model.name (Cost_model.linear ~theta:0.1));
  Alcotest.(check (float 0.)) "theta accessor" 0.1 (Cost_model.theta (Cost_model.linear ~theta:0.1))

let test_empty_flows () =
  Alcotest.(check int) "empty" 0
    (Array.length (Cost_model.relative_costs (Cost_model.linear ~theta:0.1) [||]))

let prop_costs_positive =
  let models =
    [
      Cost_model.linear ~theta:0.2; Cost_model.concave ~theta:0.2;
      Cost_model.regional ~theta:1.1; Cost_model.destination_type ~theta:0.3;
    ]
  in
  QCheck.Test.make ~name:"all cost models yield positive costs" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0. 5000.))
    (fun distances ->
      let flows =
        Array.of_list
          (List.mapi
             (fun id d -> Flow.make ~id ~demand_mbps:1. ~distance_miles:d ())
             distances)
      in
      List.for_all
        (fun model ->
          Array.for_all (fun c -> c > 0.) (Cost_model.relative_costs model flows))
        models)

let suite =
  [
    Alcotest.test_case "linear base cost" `Quick test_linear_base_cost;
    Alcotest.test_case "linear theta=0" `Quick test_linear_theta_zero;
    Alcotest.test_case "linear floors at zero distance" `Quick test_linear_positive;
    Alcotest.test_case "concave flattens ratios" `Quick test_concave_flattens;
    Alcotest.test_case "concave monotone" `Quick test_concave_monotone;
    Alcotest.test_case "regional classes" `Quick test_regional_classes;
    Alcotest.test_case "regional theta=0 flat" `Quick test_regional_theta_zero_flat;
    Alcotest.test_case "regional theta=2" `Quick test_regional_theta_superlinear;
    Alcotest.test_case "destination type two classes" `Quick test_destination_type_two_classes;
    Alcotest.test_case "on-net fraction" `Quick test_is_on_net_fraction;
    Alcotest.test_case "on-net deterministic" `Quick test_is_on_net_deterministic;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "names and theta" `Quick test_names;
    Alcotest.test_case "empty flows" `Quick test_empty_flows;
    QCheck_alcotest.to_alcotest prop_costs_positive;
  ]
