open Numerics

let checkfa = Alcotest.(check (array (float 1e-12)))
let checkf = Alcotest.(check (float 1e-12))

let test_add_sub () =
  checkfa "add" [| 4.; 6. |] (Vec.add [| 1.; 2. |] [| 3.; 4. |]);
  checkfa "sub" [| -2.; -2. |] (Vec.sub [| 1.; 2. |] [| 3.; 4. |])

let test_scale_dot_norm () =
  checkfa "scale" [| 2.; -4. |] (Vec.scale 2. [| 1.; -2. |]);
  checkf "dot" 11. (Vec.dot [| 1.; 2. |] [| 3.; 4. |]);
  checkf "norm" 5. (Vec.norm2 [| 3.; 4. |])

let test_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy_inplace 2. [| 1.; 2. |] y;
  checkfa "axpy" [| 3.; 5. |] y

let test_linf () =
  checkf "linf" 3. (Vec.linf_dist [| 0.; 5. |] [| 3.; 4. |])

let test_length_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: length mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let prop_triangle_inequality =
  QCheck.Test.make ~name:"norm triangle inequality" ~count:300
    QCheck.(
      pair
        (array_of_size (Gen.return 4) (float_range (-100.) 100.))
        (array_of_size (Gen.return 4) (float_range (-100.) 100.)))
    (fun (x, y) -> Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

let prop_dot_cauchy_schwarz =
  QCheck.Test.make ~name:"Cauchy-Schwarz" ~count:300
    QCheck.(
      pair
        (array_of_size (Gen.return 3) (float_range (-50.) 50.))
        (array_of_size (Gen.return 3) (float_range (-50.) 50.)))
    (fun (x, y) -> abs_float (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-6)

let suite =
  [
    Alcotest.test_case "add/sub" `Quick test_add_sub;
    Alcotest.test_case "scale/dot/norm" `Quick test_scale_dot_norm;
    Alcotest.test_case "axpy inplace" `Quick test_axpy;
    Alcotest.test_case "linf distance" `Quick test_linf;
    Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_dot_cauchy_schwarz;
  ]
