open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_alpha_of_flow_exact () =
  (* Noiseless CED observations identify alpha exactly. *)
  let alpha = 1.7 and v = 3. in
  let experiments =
    List.map
      (fun price -> { Estimate.price; demand = Ced.demand ~alpha ~v price })
      [ 10.; 15.; 20.; 25. ]
  in
  checkf 1e-9 "exact recovery" alpha (Estimate.alpha_of_flow experiments)

let test_alpha_of_flow_validation () =
  (match Estimate.alpha_of_flow [ { Estimate.price = 1.; demand = 1. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted one observation");
  match Estimate.alpha_of_flow [ { Estimate.price = 0.; demand = 1. };
                                 { Estimate.price = 2.; demand = 1. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero price"

let test_alpha_pooled_heterogeneous_valuations () =
  (* Flows with wildly different valuations share one alpha; the
     fixed-effects pooling must recover it despite the level shifts. *)
  let alpha = 2.3 in
  let flows =
    List.map
      (fun v ->
        List.map
          (fun price -> { Estimate.price; demand = Ced.demand ~alpha ~v price })
          [ 18.; 20.; 22. ])
      [ 0.5; 5.; 50.; 500. ]
  in
  checkf 1e-9 "pooled recovery" alpha (Estimate.alpha_pooled flows)

let test_alpha_pooled_ignores_singletons () =
  let alpha = 1.5 in
  let good =
    List.map
      (fun price -> { Estimate.price; demand = Ced.demand ~alpha ~v:2. price })
      [ 10.; 20. ]
  in
  let singleton = [ { Estimate.price = 10.; demand = 1. } ] in
  checkf 1e-9 "singleton ignored" alpha (Estimate.alpha_pooled [ good; singleton ])

let test_probe_and_recover () =
  let truth = Fixtures.ced_market () in
  let experiments =
    Estimate.probe ~noise_cv:0.02 truth ~discounts:[| 0.85; 1.0; 1.15 |]
  in
  Alcotest.(check int) "one experiment set per flow" (Market.n_flows truth)
    (List.length experiments);
  let estimated = Estimate.alpha_pooled experiments in
  checkf 0.15 "alpha recovered from noisy probe" truth.Market.alpha estimated

let test_probe_noiseless_exact () =
  let truth = Fixtures.ced_market () in
  let experiments = Estimate.probe ~noise_cv:0. truth ~discounts:[| 0.9; 1.1 |] in
  checkf 1e-9 "exact" truth.Market.alpha (Estimate.alpha_pooled experiments)

let test_probe_validation () =
  (match Estimate.probe (Fixtures.logit_market ()) ~discounts:[| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted logit market");
  match Estimate.probe (Fixtures.ced_market ()) ~discounts:[| 0. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero discount"

let test_calibrated_dynamics_nearly_optimal () =
  (* Measure-then-reprice: the probe-calibrated loop must land within a
     whisker of the true-alpha outcome. *)
  let truth = Fixtures.ced_market () in
  let calibrated =
    Estimate.calibrated_dynamics ~noise_cv:0.01 ~truth ~strategy:Strategy.Optimal
      ~n_bundles:3 ~rounds:6 ()
  in
  let ideal =
    Dynamics.simulate
      {
        Dynamics.truth;
        estimated_alpha = truth.Market.alpha;
        strategy = Strategy.Optimal;
        n_bundles = 3;
        rounds = 6;
        damping = 1.;
      }
  in
  let c = Dynamics.final_capture calibrated and i = Dynamics.final_capture ideal in
  if abs_float (c -. i) > 0.3 then
    Alcotest.failf "calibrated %f too far from ideal %f" c i

let prop_alpha_recovery =
  QCheck.Test.make ~name:"alpha recovered across the feasible range" ~count:50
    QCheck.(pair (float_range 1.1 8.) (float_range 0.5 20.))
    (fun (alpha, v) ->
      let experiments =
        List.map
          (fun price -> { Estimate.price; demand = Ced.demand ~alpha ~v price })
          [ 5.; 10.; 30. ]
      in
      abs_float (Estimate.alpha_of_flow experiments -. alpha) < 1e-6)

let suite =
  [
    Alcotest.test_case "exact single-flow recovery" `Quick test_alpha_of_flow_exact;
    Alcotest.test_case "single-flow validation" `Quick test_alpha_of_flow_validation;
    Alcotest.test_case "pooled fixed effects" `Quick test_alpha_pooled_heterogeneous_valuations;
    Alcotest.test_case "singletons ignored" `Quick test_alpha_pooled_ignores_singletons;
    Alcotest.test_case "noisy probe recovery" `Quick test_probe_and_recover;
    Alcotest.test_case "noiseless probe exact" `Quick test_probe_noiseless_exact;
    Alcotest.test_case "probe validation" `Quick test_probe_validation;
    Alcotest.test_case "calibrated dynamics" `Quick test_calibrated_dynamics_nearly_optimal;
    QCheck_alcotest.to_alcotest prop_alpha_recovery;
  ]
