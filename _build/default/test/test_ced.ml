open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_demand_shape () =
  checkf 1e-12 "at v" 1. (Ced.demand ~alpha:2. ~v:3. 3.);
  (* Halving the price with alpha = 2 quadruples demand. *)
  checkf 1e-12 "elasticity" 4. (Ced.demand ~alpha:2. ~v:3. 1.5);
  Alcotest.check_raises "alpha <= 1" (Invalid_argument "Ced: alpha must be > 1")
    (fun () -> ignore (Ced.demand ~alpha:1. ~v:1. 1.))

let test_inverse_demand () =
  let v = 2.5 and alpha = 1.7 in
  let p = 1.3 in
  let q = Ced.demand ~alpha ~v p in
  checkf 1e-9 "inverse" p (Ced.inverse_demand ~alpha ~v q)

let test_optimal_price_formula () =
  (* Eq. 4: p* = alpha c / (alpha - 1). *)
  checkf 1e-12 "alpha=2" 2. (Ced.optimal_price ~alpha:2. ~c:1.);
  checkf 1e-9 "alpha=1.1" (1.1 /. 0.1) (Ced.optimal_price ~alpha:1.1 ~c:1.)

let test_optimal_price_maximizes () =
  let alpha = 2.3 and v = 1.4 and c = 0.8 in
  let p_star = Ced.optimal_price ~alpha ~c in
  let best = Ced.flow_profit ~alpha ~v ~c p_star in
  List.iter
    (fun p ->
      if Ced.flow_profit ~alpha ~v ~c p > best +. 1e-12 then
        Alcotest.failf "price %f beats p*" p)
    [ 0.9; 1.2; p_star *. 0.9; p_star *. 1.1; 5.; 10. ]

let test_potential_profit_fig4 () =
  (* Figure 4's worked example: v = 1, alpha = 2, c = 1 gives p* = 2 and
     max profit 0.25; c = 2 gives p* = 4 and 0.125. *)
  checkf 1e-12 "c=1" 0.25 (Ced.potential_profit ~alpha:2. ~v:1. ~c:1.);
  checkf 1e-12 "c=2" 0.125 (Ced.potential_profit ~alpha:2. ~v:1. ~c:2.)

let test_bundle_price_single_flow () =
  (* One flow's bundle price is its optimal price. *)
  checkf 1e-9
    "degenerate bundle"
    (Ced.optimal_price ~alpha:1.5 ~c:2.)
    (Ced.bundle_price ~alpha:1.5 ~valuations:[| 3. |] ~costs:[| 2. |])

let test_bundle_price_weighted () =
  (* Eq. 5 weights costs by v^alpha: a high-valuation flow drags the
     price toward its own optimum. *)
  let p =
    Ced.bundle_price ~alpha:2. ~valuations:[| 10.; 0.1 |] ~costs:[| 1.; 3. |]
  in
  checkf 1e-3 "dominated by big flow" (Ced.optimal_price ~alpha:2. ~c:1.) p

let test_bundle_price_maximizes_bundle_profit () =
  let valuations = [| 1.; 2.; 1.5 |] and costs = [| 0.5; 1.5; 1. |] in
  let alpha = 1.8 in
  let p_star = Ced.bundle_price ~alpha ~valuations ~costs in
  let profit p = Ced.bundle_profit ~alpha ~valuations ~costs ~price:p in
  let best = profit p_star in
  List.iter
    (fun frac ->
      if profit (p_star *. frac) > best +. 1e-9 then
        Alcotest.failf "price %f x p* beats bundle price" frac)
    [ 0.5; 0.8; 0.95; 1.05; 1.2; 2. ]

let test_valuation_fit_consistency () =
  (* Fitting v from observed demand then evaluating demand at p0 must
     return the observation. *)
  let alpha = 1.3 and p0 = 20. and q = 123.4 in
  let v = Ced.valuation_of_demand ~alpha ~p0 ~q in
  checkf 1e-6 "roundtrip" q (Ced.demand ~alpha ~v p0)

let test_gamma_makes_p0_optimal () =
  (* With gamma-scaled costs, the single-bundle optimal price is p0. *)
  let alpha = 1.4 and p0 = 20. in
  let demands = [| 10.; 55.; 3.; 120. |] in
  let rel_costs = [| 1.; 2.; 5.; 0.5 |] in
  let valuations = Array.map (fun q -> Ced.valuation_of_demand ~alpha ~p0 ~q) demands in
  let gamma = Ced.gamma ~alpha ~p0 ~valuations ~rel_costs in
  Alcotest.(check bool) "gamma positive" true (gamma > 0.);
  let costs = Array.map (fun f -> gamma *. f) rel_costs in
  checkf 1e-9 "p0 is the blended optimum" p0 (Ced.bundle_price ~alpha ~valuations ~costs)

let test_consumer_surplus_positive_and_decreasing () =
  let alpha = 2. and v = 1. in
  let s1 = Ced.consumer_surplus ~alpha ~v 1. in
  let s2 = Ced.consumer_surplus ~alpha ~v 2. in
  Alcotest.(check bool) "positive" true (s1 > 0. && s2 > 0.);
  Alcotest.(check bool) "higher price, less surplus" true (s2 < s1)

let test_consumer_surplus_closed_form () =
  (* alpha = 2, v = 1, p = 1: Q = 1, CS = v Q^(1/2) / (1/2) - p Q = 1. *)
  checkf 1e-9 "closed form" 1. (Ced.consumer_surplus ~alpha:2. ~v:1. 1.)

let prop_optimal_price_above_cost =
  QCheck.Test.make ~name:"p* > c always" ~count:300
    QCheck.(pair (float_range 1.01 10.) (float_range 0.01 100.))
    (fun (alpha, c) -> Ced.optimal_price ~alpha ~c > c)

let prop_bundle_price_within_member_range =
  QCheck.Test.make ~name:"bundle price within member optimal prices" ~count:300
    QCheck.(
      pair (float_range 1.05 5.)
        (list_of_size Gen.(1 -- 8) (pair (float_range 0.1 10.) (float_range 0.1 10.))))
    (fun (alpha, members) ->
      let valuations = Array.of_list (List.map fst members) in
      let costs = Array.of_list (List.map snd members) in
      let p = Ced.bundle_price ~alpha ~valuations ~costs in
      let opts = Array.map (fun c -> Ced.optimal_price ~alpha ~c) costs in
      p >= Numerics.Stats.min opts -. 1e-9 && p <= Numerics.Stats.max opts +. 1e-9)

let prop_profit_concave_around_optimum =
  QCheck.Test.make ~name:"profit lower away from p*" ~count:300
    QCheck.(triple (float_range 1.1 5.) (float_range 0.1 5.) (float_range 0.1 5.))
    (fun (alpha, v, c) ->
      let p_star = Ced.optimal_price ~alpha ~c in
      let best = Ced.flow_profit ~alpha ~v ~c p_star in
      Ced.flow_profit ~alpha ~v ~c (p_star *. 1.5) <= best +. 1e-9
      && Ced.flow_profit ~alpha ~v ~c (Float.max (c /. 2.) (p_star *. 0.7)) <= best +. 1e-9)

let suite =
  [
    Alcotest.test_case "demand shape" `Quick test_demand_shape;
    Alcotest.test_case "inverse demand" `Quick test_inverse_demand;
    Alcotest.test_case "optimal price formula" `Quick test_optimal_price_formula;
    Alcotest.test_case "optimal price maximizes" `Quick test_optimal_price_maximizes;
    Alcotest.test_case "Fig. 4 profits" `Quick test_potential_profit_fig4;
    Alcotest.test_case "bundle of one" `Quick test_bundle_price_single_flow;
    Alcotest.test_case "bundle price weighting" `Quick test_bundle_price_weighted;
    Alcotest.test_case "bundle price maximizes" `Quick test_bundle_price_maximizes_bundle_profit;
    Alcotest.test_case "valuation fit roundtrip" `Quick test_valuation_fit_consistency;
    Alcotest.test_case "gamma makes p0 optimal" `Quick test_gamma_makes_p0_optimal;
    Alcotest.test_case "surplus positive, decreasing" `Quick
      test_consumer_surplus_positive_and_decreasing;
    Alcotest.test_case "surplus closed form" `Quick test_consumer_surplus_closed_form;
    QCheck_alcotest.to_alcotest prop_optimal_price_above_cost;
    QCheck_alcotest.to_alcotest prop_bundle_price_within_member_range;
    QCheck_alcotest.to_alcotest prop_profit_concave_around_optimum;
  ]
