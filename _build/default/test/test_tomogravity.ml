open Flowgen

let topo = lazy (Netsim.Presets.internet2 ())

(* A deterministic ground-truth demand matrix over the Internet2 pops.
   Real traffic matrices are roughly gravity-shaped (that is why
   tomogravity works); the truth here is gravity times lognormal noise,
   so the estimator is tested in its intended regime while staying far
   from an exact gravity matrix. *)
let truth_demands () =
  let t = Lazy.force topo in
  let n = List.length t.Netsim.Topology.pops in
  let rng = Numerics.Rng.create 404 in
  let weight = Array.init n (fun _ -> Numerics.Rng.uniform rng 1. 10.) in
  let demands = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        let noise = Numerics.Dist.lognormal_of_mean_cv rng ~mean:1. ~cv:0.6 in
        demands := (i, j, 2. *. weight.(i) *. weight.(j) *. noise) :: !demands
    done
  done;
  !demands

let truth_matrix demands n =
  let m = Array.make_matrix n n 0. in
  List.iter (fun (i, j, q) -> m.(i).(j) <- m.(i).(j) +. q) demands;
  m

let test_observe_totals () =
  let t = Lazy.force topo in
  let demands = truth_demands () in
  let obs = Tomogravity.observe t demands in
  let total = List.fold_left (fun acc (_, _, q) -> acc +. q) 0. demands in
  Alcotest.(check (float 1e-6)) "out total" total (Numerics.Stats.sum obs.Tomogravity.node_out_mbps);
  Alcotest.(check (float 1e-6)) "in total" total (Numerics.Stats.sum obs.Tomogravity.node_in_mbps);
  Alcotest.(check bool) "links loaded" true (obs.Tomogravity.link_mbps <> [])

let test_observe_matches_loading () =
  (* The link loads the tomogravity observer produces must equal the
     Loading module's (both route on shortest paths). *)
  let t = Lazy.force topo in
  let demands = truth_demands () in
  let obs = Tomogravity.observe t demands in
  let pops = Array.of_list t.Netsim.Topology.pops in
  let report =
    Loading.of_demands ~topology:t
      (List.map (fun (i, j, q) -> (pops.(i).Netsim.Node.id, pops.(j).Netsim.Node.id, q)) demands)
  in
  List.iter
    (fun (a, b, load) ->
      match
        List.find_opt
          (fun (l : Loading.link_load) -> Netsim.Link.connects l.Loading.link a b)
          report.Loading.loads
      with
      | Some l -> Alcotest.(check (float 1e-6)) "same link load" l.Loading.mbps load
      | None -> Alcotest.failf "link %d-%d missing from Loading report" a b)
    obs.Tomogravity.link_mbps

let test_gravity_marginals () =
  let t = Lazy.force topo in
  let obs = Tomogravity.observe t (truth_demands ()) in
  let g = Tomogravity.gravity obs in
  (* Gravity preserves the total and has a zero diagonal. *)
  let total = Numerics.Stats.sum (Array.map Numerics.Stats.sum g) in
  Alcotest.(check (float 1.)) "total preserved"
    (Numerics.Stats.sum obs.Tomogravity.node_out_mbps)
    total;
  Array.iteri (fun i row -> Alcotest.(check (float 0.)) "zero diagonal" 0. row.(i)) g

let test_estimate_beats_gravity () =
  let t = Lazy.force topo in
  let demands = truth_demands () in
  let n = List.length t.Netsim.Topology.pops in
  let truth = truth_matrix demands n in
  let obs = Tomogravity.observe t demands in
  let gravity_q = Tomogravity.compare_to_truth ~truth (Tomogravity.gravity obs) in
  let refined_q = Tomogravity.compare_to_truth ~truth (Tomogravity.estimate t obs) in
  Alcotest.(check bool) "refinement helps correlation" true
    (refined_q.Tomogravity.correlation >= gravity_q.Tomogravity.correlation -. 1e-9);
  Alcotest.(check bool) "decent estimate" true (refined_q.Tomogravity.correlation > 0.7);
  Alcotest.(check bool) "total close" true (refined_q.Tomogravity.total_error < 0.05)

let test_estimate_nonnegative () =
  let t = Lazy.force topo in
  let obs = Tomogravity.observe t (truth_demands ()) in
  let est = Tomogravity.estimate t obs in
  Array.iter
    (Array.iter (fun v -> if v < 0. then Alcotest.fail "negative demand estimate"))
    est

let test_zero_iterations_is_gravity () =
  let t = Lazy.force topo in
  let obs = Tomogravity.observe t (truth_demands ()) in
  let est = Tomogravity.estimate ~iterations:0 t obs in
  let g = Tomogravity.gravity obs in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> Alcotest.(check (float 1e-9)) "matches gravity" g.(i).(j) v)
        row)
    est

let test_observe_validation () =
  let t = Lazy.force topo in
  (match Tomogravity.observe t [ (0, 99, 5.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range pop");
  match Tomogravity.observe t [ (0, 1, -5.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted negative demand"

let test_gravity_zero_traffic () =
  match
    Tomogravity.gravity
      { Tomogravity.node_out_mbps = [| 0.; 0. |]; node_in_mbps = [| 0.; 0. |]; link_mbps = [] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero traffic"

let suite =
  [
    Alcotest.test_case "observe totals" `Quick test_observe_totals;
    Alcotest.test_case "observe matches Loading" `Quick test_observe_matches_loading;
    Alcotest.test_case "gravity marginals" `Quick test_gravity_marginals;
    Alcotest.test_case "estimate beats gravity" `Quick test_estimate_beats_gravity;
    Alcotest.test_case "estimate non-negative" `Quick test_estimate_nonnegative;
    Alcotest.test_case "zero iterations = gravity" `Quick test_zero_iterations_is_gravity;
    Alcotest.test_case "observe validation" `Quick test_observe_validation;
    Alcotest.test_case "gravity zero traffic" `Quick test_gravity_zero_traffic;
  ]
