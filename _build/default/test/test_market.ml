open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_fit_ced_fields () =
  let m = Fixtures.ced_market () in
  Alcotest.(check int) "flows" 8 (Market.n_flows m);
  Alcotest.(check bool) "gamma positive" true (m.Market.gamma > 0.);
  Array.iter (fun c -> Alcotest.(check bool) "cost positive" true (c > 0.)) m.Market.costs;
  Array.iter (fun v -> Alcotest.(check bool) "valuation positive" true (v > 0.)) m.Market.valuations

let test_fit_ced_valuations_match_demand () =
  let m = Fixtures.ced_market () in
  Array.iteri
    (fun i v ->
      let q = m.Market.flows.(i).Flow.demand_mbps in
      checkf 1e-6 "demand recovered at p0" q (Ced.demand ~alpha:m.Market.alpha ~v m.Market.p0))
    m.Market.valuations

let test_fit_costs_ordered_by_distance () =
  (* Linear cost model: farther flow, higher cost. *)
  let m = Fixtures.ced_market () in
  for i = 0 to Market.n_flows m - 2 do
    Alcotest.(check bool) "monotone" true (m.Market.costs.(i) <= m.Market.costs.(i + 1))
  done

let test_fit_logit_fields () =
  let m = Fixtures.logit_market () in
  Alcotest.(check bool) "population positive" true (m.Market.k > 0.);
  checkf 1e-9 "k = total demand / (1 - s0)"
    (Flow.total_demand_mbps m.Market.flows /. 0.8)
    m.Market.k

let test_fit_validation () =
  Alcotest.check_raises "no flows" (Invalid_argument "Market.fit: no flows") (fun () ->
      ignore (Fixtures.ced_market ~flows:[||] ()));
  let zero_demand = [| Flow.make ~id:0 ~demand_mbps:0. ~distance_miles:1. () |] in
  Alcotest.check_raises "zero demand"
    (Invalid_argument "Market.fit: demands must be positive") (fun () ->
      ignore (Fixtures.ced_market ~flows:zero_demand ()))

let test_fit_ced_alpha_validation () =
  match Fixtures.ced_market ~alpha:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted alpha = 1 for CED"

let test_potential_profits_ced () =
  let m = Fixtures.ced_market () in
  let profits = Market.potential_profits m in
  Array.iteri
    (fun i pi ->
      checkf 1e-9 "Eq. 12"
        (Ced.potential_profit ~alpha:m.Market.alpha ~v:m.Market.valuations.(i)
           ~c:m.Market.costs.(i))
        pi)
    profits

let test_potential_profits_logit_proportional_to_demand () =
  let m = Fixtures.logit_market () in
  let profits = Market.potential_profits m in
  Array.iteri
    (fun i pi -> checkf 1e-9 "Eq. 13" m.Market.flows.(i).Flow.demand_mbps pi)
    profits

let test_of_parameters_default_p0 () =
  let flows = Fixtures.flows_of_spec [ (1., 10.); (1., 20.) ] in
  let m =
    Market.of_parameters ~spec:Market.Ced ~alpha:2. ~valuations:[| 1.; 1.5 |]
      ~costs:[| 0.5; 1. |] flows
  in
  (* Default p0 is the blended optimum, so blended pricing returns it. *)
  let o = Pricing.blended m in
  checkf 1e-9 "consistent" m.Market.p0 o.Pricing.bundle_prices.(0)

let test_of_parameters_validation () =
  let flows = Fixtures.flows_of_spec [ (1., 10.) ] in
  Alcotest.check_raises "length" (Invalid_argument "Market.of_parameters: array length mismatch")
    (fun () ->
      ignore
        (Market.of_parameters ~spec:Market.Ced ~alpha:2. ~valuations:[| 1.; 2. |]
           ~costs:[| 1.; 2. |] flows));
  Alcotest.check_raises "cost" (Invalid_argument "Market.of_parameters: costs must be positive")
    (fun () ->
      ignore
        (Market.of_parameters ~spec:Market.Ced ~alpha:2. ~valuations:[| 1. |]
           ~costs:[| 0. |] flows))

let test_gamma_scales_with_p0 () =
  (* Doubling the blended price doubles the inferred absolute costs. *)
  let m1 = Fixtures.ced_market ~p0:20. () in
  let m2 = Fixtures.ced_market ~p0:40. () in
  checkf 1e-9 "gamma ratio" 2. (m2.Market.gamma /. m1.Market.gamma)

let suite =
  [
    Alcotest.test_case "CED fit fields" `Quick test_fit_ced_fields;
    Alcotest.test_case "CED valuations recover demand" `Quick test_fit_ced_valuations_match_demand;
    Alcotest.test_case "costs monotone in distance" `Quick test_fit_costs_ordered_by_distance;
    Alcotest.test_case "logit fit fields" `Quick test_fit_logit_fields;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "CED alpha validation" `Quick test_fit_ced_alpha_validation;
    Alcotest.test_case "potential profits (CED)" `Quick test_potential_profits_ced;
    Alcotest.test_case "potential profits (logit)" `Quick
      test_potential_profits_logit_proportional_to_demand;
    Alcotest.test_case "of_parameters default p0" `Quick test_of_parameters_default_p0;
    Alcotest.test_case "of_parameters validation" `Quick test_of_parameters_validation;
    Alcotest.test_case "gamma scales with p0" `Quick test_gamma_scales_with_p0;
  ]
