open Tiered

let checkf tol = Alcotest.(check (float tol))

let test_first_best_zero_profit () =
  List.iter
    (fun m ->
      let fb = Welfare.first_best m in
      checkf 1e-6 "marginal-cost pricing earns nothing" 0. fb.Pricing.profit)
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_first_best_dominates () =
  List.iter
    (fun m ->
      let fb_welfare = Pricing.welfare (Welfare.first_best m) in
      List.iter
        (fun b ->
          let o = Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b) in
          Alcotest.(check bool) "first-best is the welfare ceiling" true
            (Pricing.welfare o <= fb_welfare +. 1e-6 *. fb_welfare))
        [ 1; 2; 4; 8 ])
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_analysis_identities () =
  let m = Fixtures.ced_market () in
  let a = Welfare.of_strategy m Strategy.Optimal ~n_bundles:3 in
  checkf 1e-9 "welfare = profit + surplus" a.Welfare.welfare
    (a.Welfare.profit +. a.Welfare.consumer_surplus);
  checkf 1e-9 "dwl = ceiling - welfare" a.Welfare.deadweight_loss
    (a.Welfare.first_best_welfare -. a.Welfare.welfare);
  checkf 1e-9 "efficiency" a.Welfare.efficiency
    (a.Welfare.welfare /. a.Welfare.first_best_welfare);
  Alcotest.(check bool) "dwl positive under monopoly pricing" true
    (a.Welfare.deadweight_loss > 0.)

let test_tiering_shrinks_deadweight_loss () =
  (* The §2.2.1 claim, at the full-market scale: more tiers, less DWL. *)
  let m = Fixtures.ced_market () in
  let series = Welfare.series m Strategy.Optimal ~bundle_counts:[ 1; 2; 4; 8 ] in
  let dwls = List.map (fun (_, a) -> a.Welfare.deadweight_loss) series in
  let rec weakly_decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && weakly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "dwl falls with tiers" true (weakly_decreasing dwls)

let test_both_sides_gain () =
  let m = Fixtures.logit_market () in
  let blended = Welfare.analyze m (Pricing.blended m) in
  let tiered = Welfare.of_strategy m Strategy.Optimal ~n_bundles:3 in
  Alcotest.(check bool) "profit up" true (tiered.Welfare.profit > blended.Welfare.profit);
  Alcotest.(check bool) "efficiency up" true
    (tiered.Welfare.efficiency > blended.Welfare.efficiency)

let test_efficiency_bounds () =
  let m = Fixtures.ced_market () in
  List.iter
    (fun (_, a) ->
      if a.Welfare.efficiency < 0. || a.Welfare.efficiency > 1. +. 1e-9 then
        Alcotest.failf "efficiency out of range: %f" a.Welfare.efficiency)
    (Welfare.series m Strategy.Optimal ~bundle_counts:[ 1; 3; 8 ])

let suite =
  [
    Alcotest.test_case "first-best earns zero profit" `Quick test_first_best_zero_profit;
    Alcotest.test_case "first-best dominates" `Quick test_first_best_dominates;
    Alcotest.test_case "analysis identities" `Quick test_analysis_identities;
    Alcotest.test_case "tiering shrinks DWL" `Quick test_tiering_shrinks_deadweight_loss;
    Alcotest.test_case "both sides gain from tiers" `Quick test_both_sides_gain;
    Alcotest.test_case "efficiency in [0,1]" `Quick test_efficiency_bounds;
  ]
