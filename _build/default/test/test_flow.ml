open Tiered

let test_classify_distance () =
  Alcotest.(check string) "metro" "metro" (Flow.locality_to_string (Flow.classify_distance 5.));
  Alcotest.(check string) "national" "national" (Flow.locality_to_string (Flow.classify_distance 50.));
  Alcotest.(check string) "international" "international"
    (Flow.locality_to_string (Flow.classify_distance 5000.));
  (* Boundaries follow the paper: < 10 metro, < 100 national. *)
  Alcotest.(check string) "10 is national" "national"
    (Flow.locality_to_string (Flow.classify_distance 10.))

let test_make_defaults () =
  let f = Flow.make ~id:3 ~demand_mbps:10. ~distance_miles:7. () in
  Alcotest.(check bool) "metro default" true (f.Flow.locality = Flow.Metro);
  Alcotest.(check bool) "off-net default" false f.Flow.on_net

let test_make_explicit () =
  let f =
    Flow.make ~locality:Flow.International ~on_net:true ~id:0 ~demand_mbps:1.
      ~distance_miles:1. ()
  in
  Alcotest.(check bool) "explicit locality" true (f.Flow.locality = Flow.International);
  Alcotest.(check bool) "on-net" true f.Flow.on_net

let test_validation () =
  Alcotest.check_raises "negative demand" (Invalid_argument "Flow.make: negative demand")
    (fun () -> ignore (Flow.make ~id:0 ~demand_mbps:(-1.) ~distance_miles:1. ()));
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Flow.make: negative distance") (fun () ->
      ignore (Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:(-1.) ()))

let test_vectors () =
  let flows =
    [|
      Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:10. ();
      Flow.make ~id:1 ~demand_mbps:2. ~distance_miles:20. ();
    |]
  in
  Alcotest.(check (array (float 0.))) "demands" [| 1.; 2. |] (Flow.demands flows);
  Alcotest.(check (array (float 0.))) "distances" [| 10.; 20. |] (Flow.distances flows);
  Alcotest.(check (float 1e-12)) "total" 3. (Flow.total_demand_mbps flows)

let suite =
  [
    Alcotest.test_case "classify_distance" `Quick test_classify_distance;
    Alcotest.test_case "make defaults" `Quick test_make_defaults;
    Alcotest.test_case "make explicit" `Quick test_make_explicit;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "vectors" `Quick test_vectors;
  ]
