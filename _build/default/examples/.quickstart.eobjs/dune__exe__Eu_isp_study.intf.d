examples/eu_isp_study.mli:
