examples/eu_isp_study.ml: Array Capture Cost_model Dataset Flow Flowgen Format List Market Numerics Pricing Report Sensitivity Strategy Tiered
