examples/how_many_tiers.ml: Capture Experiment Format List Market Strategy Tier_count Tiered
