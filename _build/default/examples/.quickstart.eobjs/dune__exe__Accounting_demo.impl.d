examples/accounting_demo.ml: Array Bundle Cost_model Dataset Flowgen Format List Market Netsim Numerics Pricing Routing Strategy Tiered
