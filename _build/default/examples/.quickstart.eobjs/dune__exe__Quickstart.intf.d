examples/quickstart.mli:
