examples/how_many_tiers.mli:
