examples/price_war.mli:
