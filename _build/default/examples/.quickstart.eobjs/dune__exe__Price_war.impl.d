examples/price_war.ml: Array Competition Dynamics Experiment Format List Market Strategy Tiered
