examples/regional_pricing.ml: Array Capture Cost_model Dataset Flow Flowgen Format List Market Pricing Report Sensitivity Strategy Tiered
