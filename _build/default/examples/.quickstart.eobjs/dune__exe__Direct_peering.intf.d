examples/direct_peering.mli:
