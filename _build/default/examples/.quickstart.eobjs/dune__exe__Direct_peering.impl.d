examples/direct_peering.ml: Array Flowgen Format List Netsim Policy Printf Routing Tagging
