examples/regional_pricing.mli:
