examples/quickstart.ml: Array Bundle Flow Format Market Pricing Tiered
