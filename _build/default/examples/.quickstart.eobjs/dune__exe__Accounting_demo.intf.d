examples/accounting_demo.mli:
