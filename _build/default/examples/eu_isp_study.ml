(* The full measurement-to-pricing pipeline on the EU ISP preset:

     1. generate the calibrated workload (Table 1 statistics);
     2. synthesize a day of sampled NetFlow at every on-path router;
     3. run the collector pipeline: sampling, dedup, aggregation;
     4. fit the CED and logit markets from the measured demands;
     5. compare bundling strategies and print a recommended tier sheet.

   Run with: dune exec examples/eu_isp_study.exe *)

open Tiered

let () =
  Format.printf "== 1. Workload ==@.";
  let w = Flowgen.Workload.preset "eu_isp" in
  Format.printf "  %a@." Flowgen.Workload.pp_stats (Flowgen.Workload.stats w);

  Format.printf "@.== 2-3. NetFlow pipeline (1-in-1000 sampling) ==@.";
  let measured = Dataset.via_netflow ~sampling_rate:1000 w in
  let truth = Dataset.of_workload w in
  Format.printf "  ground truth: %d flows, %.1f Gbps@." (Array.length truth)
    (Flow.total_demand_mbps truth /. 1000.);
  Format.printf "  measured:     %d flows, %.1f Gbps@." (Array.length measured)
    (Flow.total_demand_mbps measured /. 1000.);

  Format.printf "@.== 4. Model fitting (alpha=1.1, P0=$20, linear cost theta=0.2) ==@.";
  let cost_model = Cost_model.linear ~theta:0.2 in
  let ced = Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20. ~cost_model measured in
  let logit =
    Market.fit ~spec:(Market.Logit { s0 = 0.2 }) ~alpha:1.1 ~p0:20. ~cost_model measured
  in
  Format.printf "  %a@.  %a@." Market.pp ced Market.pp logit;

  Format.printf "@.== 5. Strategy comparison (profit capture) ==@.";
  let strategies =
    [ Strategy.Optimal; Strategy.Cost_weighted; Strategy.Profit_weighted;
      Strategy.Index_division; Strategy.Cost_division ]
  in
  let header =
    "bundles" :: List.map Strategy.name strategies
  in
  let table market =
    List.map
      (fun b ->
        string_of_int b
        :: List.map
             (fun s ->
               Report.cell_f (Sensitivity.capture_at market s ~n_bundles:b))
             strategies)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Report.print Format.std_formatter
    (Report.make ~title:"CED demand" ~header (table ced));
  Report.print Format.std_formatter
    (Report.make ~title:"Logit demand" ~header (table logit));

  Format.printf "@.== Recommended 3-tier sheet (CED, optimal bundling) ==@.";
  let bundles = Strategy.apply Strategy.Optimal ced ~n_bundles:3 in
  let outcome = Pricing.evaluate ced bundles in
  Array.iteri
    (fun b group ->
      let costs = Array.map (fun i -> ced.Market.costs.(i)) group in
      let demand =
        Numerics.Stats.sum (Array.map (fun i -> ced.Market.flows.(i).Flow.demand_mbps) group)
      in
      Format.printf
        "  tier %d: $%5.2f/Mbps  (%3d destinations, delivery cost $%.2f-%.2f, %5.1f Gbps)@."
        b
        outcome.Pricing.bundle_prices.(b)
        (Array.length group) (Numerics.Stats.min costs) (Numerics.Stats.max costs)
        (demand /. 1000.))
    (bundles :> int array array);
  let ctx = Capture.context ced in
  Format.printf "  -> captures %s of the attainable profit headroom@."
    (Report.cell_pct (Capture.value ctx outcome.Pricing.profit))
