(* The title question, answered end to end.

   Gross profit keeps (slowly) rising with tier count; every tier also
   costs something to operate -- an extra BGP session and virtual link,
   another billing line, another thing customers must understand. Price
   that overhead explicitly and the optimum stops being "infinity".

   Run with: dune exec examples/how_many_tiers.exe *)

open Tiered

let () =
  let market = Experiment.market ~spec:(Market.Logit { s0 = 0.2 }) "eu_isp" in
  let headroom = Capture.headroom (Capture.context market) in
  Format.printf
    "EU ISP, logit demand. Tiering headroom: $%.0f/month on top of the@.\
     blended-rate profit.@.@."
    headroom;

  Format.printf "Marginal value of each additional tier:@.";
  List.iter
    (fun b ->
      let value =
        Tier_count.break_even_overhead market Strategy.Optimal ~from_bundles:b
          ~to_bundles:(b + 1)
      in
      Format.printf "  tier %d -> %d: worth $%.0f/month@." b (b + 1) value)
    [ 1; 2; 3; 4; 5 ];

  Format.printf "@.Net-optimal tier count by per-tier overhead:@.";
  List.iter
    (fun per_tier ->
      let o = Tier_count.overhead ~per_tier () in
      let best = Tier_count.optimal market Strategy.Optimal o ~max_bundles:10 in
      Format.printf "  $%-6.0f/tier/month -> %d tier(s) (net $%.0f)@." per_tier
        best.Tier_count.n_bundles best.Tier_count.net_profit)
    [ 0.; 500.; 2000.; 5000.; 20000. ];

  Format.printf
    "@.The paper's observation that ISPs sell 2-4 tiers is exactly what a@.\
     few thousand dollars of monthly per-tier overhead predicts.@."
