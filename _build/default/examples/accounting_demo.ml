(* Section 5 of the paper end to end: take an optimal 3-tier bundling,
   tag routes with tier communities, account a day of NetFlow under both
   architectures (per-tier links polled via SNMP vs a flow collector
   joining records against the RIB), and bill the customer under
   mean-rate and 95th-percentile billing.

   Run with: dune exec examples/accounting_demo.exe *)

open Tiered

let () =
  (* A small workload keeps the output readable. *)
  let params =
    { (Flowgen.Workload.preset_params "eu_isp") with Flowgen.Workload.n_flows = 40 }
  in
  let w = Flowgen.Workload.generate (Netsim.Presets.eu_isp ()) params in
  let market =
    Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) (Dataset.of_workload w)
  in
  let bundles = Strategy.apply Strategy.Optimal market ~n_bundles:3 in
  let outcome = Pricing.evaluate market bundles in
  let owner = Bundle.member_of bundles ~n_flows:(Market.n_flows market) in
  let rates = outcome.Pricing.bundle_prices in

  Format.printf "Tier sheet:@.";
  Array.iteri (fun b p -> Format.printf "  tier %d: $%.2f/Mbps@." b p) rates;

  (* 5.1: tag each destination route with its tier community. *)
  let assignments =
    List.map
      (fun (f : Flowgen.Workload.flow) ->
        {
          Routing.Tagging.dst_prefix = Flowgen.Ipv4.prefix f.Flowgen.Workload.dst_addr 24;
          tier = owner.(f.Flowgen.Workload.id);
          next_hop = f.Flowgen.Workload.entry.Netsim.Node.id;
        })
      w.Flowgen.Workload.flows
  in
  let rib = Routing.Tagging.build_rib ~asn:65010 assignments in
  Format.printf "@.RIB: %d tagged routes, tier histogram:" (Routing.Rib.size rib);
  List.iter
    (fun (tier, n) -> Format.printf " t%d=%d" tier n)
    (Routing.Tagging.tier_counts rib);
  Format.printf "@.";

  (* A day of traffic, deduplicated across observing routers. *)
  let rng = Numerics.Rng.create 31 in
  let records =
    Flowgen.Dedup.dedup
      (Flowgen.Netflow.synthesize ~rng (Flowgen.Workload.to_ground_truth w))
  in
  Format.printf "@.Collected %d flow records over 24h@." (List.length records);

  (* 5.2a: link-based accounting (SNMP polling of per-tier links). *)
  let snmp = Routing.Accounting.Snmp.create ~n_tiers:(Array.length rates) () in
  Routing.Accounting.Snmp.observe snmp ~rib records;
  let link_usage = Routing.Accounting.Snmp.usage snmp in

  (* 5.2b: flow-based accounting (collector joins NetFlow with the RIB). *)
  let flow_usage = Routing.Accounting.flow_based ~rib records in

  Format.printf "@.Accounted bytes per tier (link-based | flow-based):@.";
  List.iter2
    (fun (t, a) (_, b) -> Format.printf "  tier %d: %14.0f | %14.0f@." t a b)
    link_usage.Routing.Accounting.tier_bytes flow_usage.Routing.Accounting.tier_bytes;

  (* Billing: mean-rate from byte totals, p95 from the rate series. *)
  let day = Flowgen.Netflow.day_seconds in
  let invoice_mean = Routing.Billing.of_usage ~rates ~period_s:day flow_usage in
  let series = Routing.Accounting.rate_series ~rib ~interval_s:300 ~horizon_s:day records in
  let invoice_p95 =
    Routing.Billing.of_rate_series ~rates ~method_:(Routing.Billing.Percentile 0.95)
      ~period_s:day series
  in
  Format.printf "@.%a@.%a@." Routing.Billing.pp invoice_mean Routing.Billing.pp invoice_p95;
  Format.printf
    "p95 bills the diurnal peak, mean bills the average -- the gap funds@.\
     the ISP's peak-capacity provisioning.@."
