(* Quickstart: the two-flow market of the paper's Figure 1.

   An ISP serves two destination flows at a single blended rate. One is
   cheap to deliver (local), one expensive (long-haul). We fit nothing
   here -- valuations and costs are given directly -- and compare blended
   pricing with two tiers.

   Run with: dune exec examples/quickstart.exe *)

open Tiered

let () =
  (* Two flows: a local one (cost $0.5/Mbps) with strong demand, and a
     remote one (cost $1.0/Mbps). alpha = 2 means demand quarters when
     price doubles. *)
  let flows =
    [|
      Flow.make ~id:0 ~demand_mbps:1.0 ~distance_miles:800. ();
      Flow.make ~id:1 ~demand_mbps:2.0 ~distance_miles:40. ();
    |]
  in
  let market =
    Market.of_parameters ~spec:Market.Ced ~alpha:2.0 ~valuations:[| 1.7; 2.1 |]
      ~costs:[| 1.0; 0.5 |] flows
  in

  let describe label (o : Pricing.outcome) =
    Format.printf "%s@." label;
    Array.iteri
      (fun b price ->
        Format.printf "  tier %d: $%.2f/Mbps for flows" b price;
        Array.iter (fun i -> Format.printf " #%d" i) ((o.Pricing.bundles :> int array array)).(b);
        Format.printf "@.")
      o.Pricing.bundle_prices;
    Format.printf "  ISP profit        $%.2f@." o.Pricing.profit;
    Format.printf "  consumer surplus  $%.2f@." o.Pricing.consumer_surplus;
    Format.printf "  total welfare     $%.2f@.@." (Pricing.welfare o)
  in

  let blended = Pricing.blended market in
  let tiered = Pricing.evaluate market (Bundle.singletons ~n_flows:2) in
  describe "Blended rate (one price for everything):" blended;
  describe "Two tiers (one price per flow):" tiered;

  let dprofit = tiered.Pricing.profit -. blended.Pricing.profit in
  let dsurplus = tiered.Pricing.consumer_surplus -. blended.Pricing.consumer_surplus in
  Format.printf
    "Tiering raised ISP profit by $%.2f AND consumer surplus by $%.2f --@.\
     the market failure of Figure 1 is the money left on the table by the@.\
     blended rate.@."
    dprofit dsurplus
