(* Figure 2 of the paper: a CDN with a backbone PoP in New York buys
   blended transit from an upstream ISP, including for traffic that only
   travels to an IXP in Boston. As the blended rate stays above the cost
   of a leased line, the CDN eventually builds the direct link -- even
   when the ISP could have carried the traffic more cheaply (a market
   failure that tiered pricing removes).

   Run with: dune exec examples/direct_peering.exe *)

open Routing

let () =
  (* Geography: the ISP's cost for NYC->Boston traffic scales with the
     distance between the PoPs. *)
  let nyc = Netsim.Cities.find "New York" in
  let boston = Netsim.Cities.find "Boston" in
  let distance = Netsim.Geo.distance_miles nyc.Netsim.Cities.coord boston.Netsim.Cities.coord in
  (* $/Mbps figures: a short regional wave is cheap for the ISP. *)
  let isp_cost = 0.02 *. distance in
  Format.printf "NYC -> Boston: %.0f miles, ISP delivery cost $%.2f/Mbps@.@." distance isp_cost;

  let decide ~blended_rate ~direct_cost =
    Policy.Bypass.decide
      {
        Policy.Bypass.blended_rate;
        direct_cost;
        isp_cost;
        isp_margin = 0.3;
        accounting_overhead = 0.5;
      }
  in

  (* A leased line's amortized cost falls as the CDN's volume grows. *)
  Format.printf "%-14s %-12s %-10s %-12s %s@." "volume (Gbps)" "c_direct" "bypasses?"
    "tier price" "verdict";
  List.iter
    (fun (volume, direct_cost) ->
      let v = decide ~blended_rate:20. ~direct_cost in
      Format.printf "%-14.0f $%-11.2f %-10s $%-11.2f %s@." volume direct_cost
        (if v.Policy.Bypass.customer_bypasses then "yes" else "no")
        v.Policy.Bypass.tiered_price
        (if v.Policy.Bypass.market_failure then
           "market failure: a regional tier would have kept this traffic"
         else if v.Policy.Bypass.customer_bypasses then "efficient build-out"
         else "stays on transit");
      ())
    [ (1., 45.); (5., 24.); (10., 12.); (40., 6.); (100., 3.) ];

  (* With tier tags in the RIB, the same decision happens per-route:
     the CDN cold-potatoes only where the tier price beats its own
     backbone cost. *)
  Format.printf "@.Tier-aware egress selection:@.";
  let rib =
    Tagging.build_rib ~asn:64512
      [
        {
          Tagging.dst_prefix = Flowgen.Ipv4.prefix_of_string "10.1.0.0/16" (* Boston metro *);
          tier = 0;
          next_hop = 1;
        };
        {
          Tagging.dst_prefix = Flowgen.Ipv4.prefix_of_string "10.2.0.0/16" (* EU, long-haul *);
          tier = 1;
          next_hop = 1;
        };
      ]
  in
  let tier_prices = [| 4.0; 22.0 |] in
  let backbone_cost = 9.0 in
  List.iter
    (fun (label, addr) ->
      let choice =
        Policy.Egress.choose ~rib ~tier_prices ~backbone_cost_per_mbps:backbone_cost
          (Flowgen.Ipv4.of_string addr)
      in
      let verdict =
        match choice with
        | Some (Policy.Egress.Use_upstream tier) ->
            Printf.sprintf "upstream tier %d ($%.0f/Mbps)" tier tier_prices.(tier)
        | Some Policy.Egress.Use_backbone ->
            Printf.sprintf "own backbone ($%.0f/Mbps beats the tier)" backbone_cost
        | None -> "no route"
      in
      Format.printf "  %-22s -> %s@." label verdict)
    [ ("Boston (10.1.2.3)", "10.1.2.3"); ("Frankfurt (10.2.9.9)", "10.2.9.9") ]
