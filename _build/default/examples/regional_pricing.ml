(* Regional pricing (Section 2.1 / the regional cost model of 3.3): an
   ISP prices metro, national and international destinations separately.
   We classify flows with the synthetic GeoIP database, fit the regional
   cost model and show how much of the tiering headroom the natural
   "one tier per region" contract structure captures.

   Run with: dune exec examples/regional_pricing.exe *)

open Tiered

let () =
  let w = Flowgen.Workload.preset "eu_isp" in
  let flows = Dataset.of_workload w in

  (* Classify by geography (the GeoIP path; the EU ISP preset also sets
     distance-threshold localities). *)
  let count locality =
    Array.fold_left
      (fun acc f -> if f.Flow.locality = locality then acc + 1 else acc)
      0 flows
  in
  Format.printf "Flow classification: %d metro, %d national, %d international@.@."
    (count Flow.Metro) (count Flow.National) (count Flow.International);

  List.iter
    (fun theta ->
      let market =
        Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
          ~cost_model:(Cost_model.regional ~theta) flows
      in
      (* Region-aligned tiers: exactly the class-aware bundling. *)
      let bundles = Strategy.apply Strategy.Profit_weighted_classes market ~n_bundles:3 in
      let outcome = Pricing.evaluate market bundles in
      let ctx = Capture.context market in
      Format.printf "theta = %.1f (cost ratio metro:national:intl = 1:%.2f:%.2f)@." theta
        (2. ** theta) (3. ** theta);
      Array.iteri
        (fun b group ->
          let regions = Array.map (fun i -> flows.(i).Flow.locality) group in
          let label = Flow.locality_to_string regions.(0) in
          Format.printf "  tier %d (%-13s): $%.2f/Mbps over %d destinations@." b label
            outcome.Pricing.bundle_prices.(b) (Array.length group))
        (bundles :> int array array);
      Format.printf "  capture: %s of attainable headroom@.@."
        (Report.cell_pct (Capture.value ctx outcome.Pricing.profit)))
    [ 1.0; 1.2 ];

  (* Contrast with what the paper recommends: tiers that cut across
     regions when demand says so. *)
  let market =
    Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.regional ~theta:1.2) flows
  in
  List.iter
    (fun (label, strategy) ->
      let c3 = Sensitivity.capture_at market strategy ~n_bundles:3 in
      Format.printf "%-28s capture at 3 tiers: %s@." label (Report.cell_pct c3))
    [
      ("region-aligned tiers", Strategy.Profit_weighted_classes);
      ("optimal tiers", Strategy.Optimal);
      ("cost-weighted tiers", Strategy.Cost_weighted);
    ]
