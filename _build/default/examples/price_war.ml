(* Two dynamics the paper motivates but does not model, combined:

   1. COMPETITION. Transit prices fall ~30%/year (Section 1). We replay
      that as a Bertrand-logit duopoly where the entrant's unit costs
      fall 30% each year, and watch the incumbent's margin and share.

   2. REPRICING. Between pricing reviews the ISP only sees realized
      demand. If its elasticity estimate is wrong, the quarterly
      re-fit/re-price loop converges to the wrong tariff -- and the
      profit lost to that dwarfs anything tier structure can recover.

   Run with: dune exec examples/price_war.exe *)

open Tiered

let () =
  let market = Experiment.market ~spec:(Market.Logit { s0 = 0.2 }) "eu_isp" in

  (* -- 1. the price war ------------------------------------------------ *)
  Format.printf "== Price war: entrant costs fall 30%%/year ==@.";
  let idx = Array.init 80 (fun i -> i * (Market.n_flows market / 80)) in
  let valuations = Array.map (fun i -> market.Market.valuations.(i)) idx in
  let costs = Array.map (fun i -> market.Market.costs.(i)) idx in
  let incumbent = Competition.firm ~name:"incumbent" ~costs in
  Format.printf "%-8s %-12s %-12s %-12s %s@." "year" "margin A" "margin B" "share A"
    "profit A";
  List.iteri
    (fun year scale ->
      let entrant =
        Competition.firm ~name:"entrant" ~costs:(Array.map (fun c -> c *. scale) costs)
      in
      let eq =
        Competition.nash ~alpha:market.Market.alpha ~k:market.Market.k ~valuations
          [| incumbent; entrant |]
      in
      Format.printf "%-8d $%-11.2f $%-11.2f %-12.2f $%.0f@." year
        eq.Competition.margins.(0) eq.Competition.margins.(1)
        eq.Competition.shares.(0) eq.Competition.profits.(0))
    [ 1.0; 0.7; 0.49; 0.34; 0.24 ];

  (* -- 2. repricing under a wrong elasticity belief --------------------- *)
  Format.printf "@.== Quarterly repricing with a wrong elasticity belief ==@.";
  let truth = Experiment.market ~spec:Market.Ced "eu_isp" in
  List.iter
    (fun believed ->
      let rounds =
        Dynamics.simulate
          {
            Dynamics.truth;
            estimated_alpha = believed;
            strategy = Strategy.Optimal;
            n_bundles = 3;
            rounds = 8;
            damping = 0.7;
          }
      in
      let blended = (List.hd rounds).Dynamics.true_profit in
      let final = List.nth rounds (List.length rounds - 1) in
      Format.printf
        "  believed alpha %.2f (true 1.10): profit settles at %5.1f%% of blended%s@."
        believed
        (100. *. final.Dynamics.true_profit /. blended)
        (if Dynamics.converged ~tol:1e-4 rounds then "" else " (not converged)"))
    [ 1.05; 1.10; 1.50; 2.50 ];
  Format.printf
    "@.Moral: get the demand model right before worrying about the fifth tier.@."
