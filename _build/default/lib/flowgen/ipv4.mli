(** IPv4 addresses and prefixes.

    The NetFlow substrate identifies flow endpoints by address; the
    synthetic GeoIP database maps prefixes to cities. Addresses are
    stored as the host-order 32-bit value in an OCaml [int]. *)

type t = private int
(** An IPv4 address; the private [int] holds the 32-bit value. *)

val of_int : int -> t
(** Raises [Invalid_argument] outside [\[0, 2^32)]. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] for dotted quad [a.b.c.d]. *)

val to_string : t -> string
val of_string : string -> t
(** Parses dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val compare : t -> t -> int
val equal : t -> t -> bool

type prefix = private { base : t; bits : int }
(** A CIDR prefix; [base] has its host bits cleared. *)

val prefix : t -> int -> prefix
(** [prefix addr bits] with [bits] in [\[0, 32\]]; host bits of [addr]
    are masked off. *)

val prefix_of_string : string -> prefix
(** Parses ["a.b.c.d/n"]. *)

val prefix_to_string : prefix -> string
val mem : t -> prefix -> bool
val prefix_size : prefix -> int
(** Number of addresses covered. *)

val random_in : Numerics.Rng.t -> prefix -> t
(** Uniform address inside the prefix. *)

val nth_in : prefix -> int -> t
(** [nth_in p k] is the [k]-th address of the prefix. Raises
    [Invalid_argument] when out of range. *)
