lib/flowgen/trace.ml: Fun Hashtbl Ipv4 List Netflow Printf String
