lib/flowgen/ipv4.mli: Numerics
