lib/flowgen/sampling.mli: Netflow Numerics
