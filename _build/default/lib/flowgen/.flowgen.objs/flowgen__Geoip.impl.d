lib/flowgen/geoip.ml: Hashtbl Ipv4 List Netsim Numerics Option
