lib/flowgen/dedup.mli: Ipv4 Netflow
