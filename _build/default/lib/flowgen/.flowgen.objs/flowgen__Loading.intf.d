lib/flowgen/loading.mli: Format Netsim Workload
