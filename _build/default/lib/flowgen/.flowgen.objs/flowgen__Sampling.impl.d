lib/flowgen/sampling.ml: Float List Netflow Numerics
