lib/flowgen/demand.mli: Ipv4 Netflow
