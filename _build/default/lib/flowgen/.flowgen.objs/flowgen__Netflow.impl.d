lib/flowgen/netflow.ml: Array Float Format Ipv4 List Numerics Printf String
