lib/flowgen/netflow.mli: Format Ipv4 Numerics
