lib/flowgen/workload.ml: Array Float Format Geoip Ipv4 List Netflow Netsim Numerics
