lib/flowgen/loading.ml: Format Hashtbl List Netsim Option Printf Workload
