lib/flowgen/dedup.ml: Hashtbl Ipv4 List Netflow
