lib/flowgen/tomogravity.ml: Array Float Hashtbl List Netsim Numerics Option
