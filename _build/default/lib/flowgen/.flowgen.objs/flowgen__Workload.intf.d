lib/flowgen/workload.mli: Format Geoip Ipv4 Netflow Netsim
