lib/flowgen/geoip.mli: Ipv4 Netsim Numerics
