lib/flowgen/trace.mli: Netflow
