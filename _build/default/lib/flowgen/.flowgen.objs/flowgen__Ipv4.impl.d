lib/flowgen/ipv4.ml: Int Numerics Printf String
