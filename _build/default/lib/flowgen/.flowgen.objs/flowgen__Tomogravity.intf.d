lib/flowgen/tomogravity.mli: Netsim
