lib/flowgen/demand.ml: Array Hashtbl Ipv4 List Netflow Numerics
