let save ~path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc Netflow.csv_header;
      output_char oc '\n';
      List.iter
        (fun r ->
          output_string oc (Netflow.to_csv_line r);
          output_char oc '\n')
        records)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> "" in
      if not (String.equal header Netflow.csv_header) then
        invalid_arg (Printf.sprintf "Trace.load: %s: bad header" path);
      let records = ref [] in
      let line_no = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if String.length line > 0 then
             match Netflow.of_csv_line line with
             | r -> records := r :: !records
             | exception Invalid_argument _ ->
                 invalid_arg
                   (Printf.sprintf "Trace.load: %s: malformed record at line %d" path
                      !line_no)
         done
       with End_of_file -> ());
      List.rev !records)

let append ~path records =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (Netflow.to_csv_line r);
          output_char oc '\n')
        records)

let summarize records =
  let pairs = Hashtbl.create 256 in
  let bytes = ref 0. in
  let first = ref max_int and last = ref min_int in
  List.iter
    (fun (r : Netflow.record) ->
      Hashtbl.replace pairs (Ipv4.to_int r.src, Ipv4.to_int r.dst) ();
      bytes := !bytes +. r.bytes;
      first := min !first r.first_s;
      last := max !last r.last_s)
    records;
  if records = [] then "empty trace"
  else
    Printf.sprintf "%d records, %d endpoint pairs, %.3g bytes, [%d, %d)s"
      (List.length records) (Hashtbl.length pairs) !bytes !first !last
