(** NetFlow-style flow records and their synthesis.

    The paper's inputs are 24 hours of sampled NetFlow from core routers
    (§4.1.1). This module defines a v5-style record and synthesizes a
    day's worth of records from ground-truth flow intensities: traffic is
    spread over hourly bins with a diurnal shape and multiplicative
    noise, and each record is emitted at {e every} observing router so
    that the downstream pipeline has real duplicate-suppression work to
    do, exactly like the paper's. *)

type record = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : int;  (** IP protocol number; 6 = TCP, 17 = UDP. *)
  bytes : float;  (** Bytes in this record (float: sampling re-scales). *)
  packets : float;
  first_s : int;  (** Window start, seconds since capture start. *)
  last_s : int;  (** Window end (exclusive), seconds. *)
  router : int;  (** Observing router node id. *)
}

val pp_record : Format.formatter -> record -> unit

val to_csv_line : record -> string
val of_csv_line : string -> record
(** Round-trips {!to_csv_line}. Raises [Invalid_argument] on malformed
    input. *)

val csv_header : string

type ground_truth = {
  gt_src : Ipv4.t;
  gt_dst : Ipv4.t;
  gt_mbps : float;  (** Mean rate over the whole capture. *)
  gt_routers : int list;  (** Routers that observe (and duplicate) it. *)
}

val day_seconds : int
(** 86_400. *)

type shape = {
  bins : int;  (** Time bins over the day (default 24). *)
  diurnal_amplitude : float;  (** 0 = flat; 0.6 = pronounced day/night. *)
  peak_hour : float;  (** Hour of peak traffic, e.g. 20.0. *)
  noise_cv : float;  (** Per-bin lognormal noise CV. *)
}

val default_shape : shape

val synthesize :
  ?shape:shape -> rng:Numerics.Rng.t -> ground_truth list -> record list
(** Emits [bins * length gt_routers] records per ground-truth flow. The
    total bytes of a flow's records at any single router equal
    [gt_mbps * day_seconds * 125_000] up to the per-bin noise (which is
    mean-one). Ports and protocol are drawn from a realistic-looking
    fixed distribution. *)

val total_bytes : record list -> float
val mbps_of_bytes : bytes:float -> seconds:int -> float
(** [bytes * 8 / seconds / 1e6]. *)
