type record = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : int;
  bytes : float;
  packets : float;
  first_s : int;
  last_s : int;
  router : int;
}

let pp_record ppf r =
  Format.fprintf ppf "%s:%d -> %s:%d proto=%d bytes=%.0f pkts=%.0f [%d,%d) @r%d"
    (Ipv4.to_string r.src) r.src_port (Ipv4.to_string r.dst) r.dst_port r.proto
    r.bytes r.packets r.first_s r.last_s r.router

let csv_header = "src,dst,src_port,dst_port,proto,bytes,packets,first_s,last_s,router"

let to_csv_line r =
  Printf.sprintf "%s,%s,%d,%d,%d,%.3f,%.3f,%d,%d,%d" (Ipv4.to_string r.src)
    (Ipv4.to_string r.dst) r.src_port r.dst_port r.proto r.bytes r.packets
    r.first_s r.last_s r.router

let of_csv_line line =
  match String.split_on_char ',' line with
  | [ src; dst; sp; dp; proto; bytes; packets; first_s; last_s; router ] -> (
      try
        {
          src = Ipv4.of_string src;
          dst = Ipv4.of_string dst;
          src_port = int_of_string sp;
          dst_port = int_of_string dp;
          proto = int_of_string proto;
          bytes = float_of_string bytes;
          packets = float_of_string packets;
          first_s = int_of_string first_s;
          last_s = int_of_string last_s;
          router = int_of_string router;
        }
      with Failure _ -> invalid_arg ("Netflow.of_csv_line: malformed line: " ^ line))
  | _ -> invalid_arg ("Netflow.of_csv_line: malformed line: " ^ line)

type ground_truth = {
  gt_src : Ipv4.t;
  gt_dst : Ipv4.t;
  gt_mbps : float;
  gt_routers : int list;
}

let day_seconds = 86_400

type shape = {
  bins : int;
  diurnal_amplitude : float;
  peak_hour : float;
  noise_cv : float;
}

let default_shape =
  { bins = 24; diurnal_amplitude = 0.5; peak_hour = 20.0; noise_cv = 0.15 }

let bytes_per_mbit_second = 125_000.

(* Common application ports weighted towards web traffic. *)
let port_choices = [| 443; 80; 443; 8080; 443; 22; 53; 993; 443; 25 |]

let synthesize ?(shape = default_shape) ~rng gts =
  if shape.bins <= 0 then invalid_arg "Netflow.synthesize: bins must be positive";
  if shape.diurnal_amplitude < 0. || shape.diurnal_amplitude >= 1. then
    invalid_arg "Netflow.synthesize: diurnal_amplitude out of [0, 1)";
  let bin_seconds = day_seconds / shape.bins in
  (* Normalized diurnal weights: mean exactly one so totals are exact. *)
  let weights =
    Array.init shape.bins (fun b ->
        let hour = float_of_int b *. 24. /. float_of_int shape.bins in
        1.
        +. shape.diurnal_amplitude
           *. cos (2. *. Float.pi *. (hour -. shape.peak_hour) /. 24.))
  in
  let weight_mean = Numerics.Stats.mean weights in
  let weights = Array.map (fun w -> w /. weight_mean) weights in
  let records = ref [] in
  List.iter
    (fun gt ->
      if gt.gt_mbps < 0. then invalid_arg "Netflow.synthesize: negative rate";
      if gt.gt_routers = [] then invalid_arg "Netflow.synthesize: flow with no observing router";
      let src_port = 1024 + Numerics.Rng.int rng 64_000 in
      let dst_port = Numerics.Rng.choose rng port_choices in
      let proto = if Numerics.Rng.float rng < 0.9 then 6 else 17 in
      (* Per-bin noise is shared across routers: every router sees the
         same wire traffic. *)
      let bin_bytes =
        Array.init shape.bins (fun b ->
            let noise =
              if shape.noise_cv = 0. then 1.
              else Numerics.Dist.lognormal_of_mean_cv rng ~mean:1. ~cv:shape.noise_cv
            in
            gt.gt_mbps *. bytes_per_mbit_second
            *. float_of_int bin_seconds *. weights.(b) *. noise)
      in
      List.iter
        (fun router ->
          Array.iteri
            (fun b bytes ->
              let packets = Float.max 1. (bytes /. 1000.) in
              records :=
                {
                  src = gt.gt_src;
                  dst = gt.gt_dst;
                  src_port;
                  dst_port;
                  proto;
                  bytes;
                  packets;
                  first_s = b * bin_seconds;
                  last_s = (b + 1) * bin_seconds;
                  router;
                }
                :: !records)
            bin_bytes)
        gt.gt_routers)
    gts;
  List.rev !records

let total_bytes records =
  Numerics.Stats.sum (Array.of_list (List.map (fun r -> r.bytes) records))

let mbps_of_bytes ~bytes ~seconds =
  if seconds <= 0 then invalid_arg "Netflow.mbps_of_bytes: non-positive window";
  bytes *. 8. /. float_of_int seconds /. 1e6
