type aggregate = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mbps : float;
  bytes : float;
  records : int;
}

let group ~window_s ~key_of records =
  if window_s <= 0 then invalid_arg "Demand: non-positive window";
  let acc = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun (r : Netflow.record) ->
      let key = key_of r in
      match Hashtbl.find_opt acc key with
      | None ->
          Hashtbl.add acc key (r.src, r.dst, r.bytes, 1);
          order := key :: !order
      | Some (src, dst, bytes, count) ->
          Hashtbl.replace acc key (src, dst, bytes +. r.bytes, count + 1))
    records;
  List.rev_map
    (fun key ->
      let src, dst, bytes, records = Hashtbl.find acc key in
      {
        src;
        dst;
        bytes;
        records;
        mbps = Netflow.mbps_of_bytes ~bytes ~seconds:window_s;
      })
    !order

let by_endpoint_pair ?(window_s = Netflow.day_seconds) records =
  group ~window_s ~key_of:(fun (r : Netflow.record) -> (Ipv4.to_int r.src, Ipv4.to_int r.dst)) records

let by_destination ?(window_s = Netflow.day_seconds) records =
  group ~window_s ~key_of:(fun (r : Netflow.record) -> (0, Ipv4.to_int r.dst)) records

let total_mbps aggregates =
  Numerics.Stats.sum (Array.of_list (List.map (fun a -> a.mbps) aggregates))

let demands aggregates = Array.of_list (List.map (fun a -> a.mbps) aggregates)
