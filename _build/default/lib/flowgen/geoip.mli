(** A synthetic GeoIP database.

    Substitutes for the MaxMind GeoLite database the paper uses to place
    CDN flow destinations and to classify flows as metro, national or
    international (§3.3, §4.1.1). Prefixes are allocated deterministically
    from a disjoint pool, one or more per gazetteer city. *)

type t

type entry = { prefix : Ipv4.prefix; city : Netsim.Cities.t }

val synthesize :
  ?prefix_bits:int -> ?prefixes_per_city:int -> Netsim.Cities.t list -> t
(** Allocates [prefixes_per_city] (default 4) disjoint [/prefix_bits]
    (default 16) prefixes per city out of a private pool. Raises
    [Invalid_argument] if the pool is exhausted or the city list is
    empty. *)

val entries : t -> entry list
val lookup : t -> Ipv4.t -> Netsim.Cities.t option
(** City of the prefix covering the address, if any. *)

val coord : t -> Ipv4.t -> Netsim.Geo.coord option
val random_address_in : Numerics.Rng.t -> t -> Netsim.Cities.t -> Ipv4.t
(** A random address from one of the city's prefixes. Raises [Not_found]
    if the city has no allocation. *)

val distance_miles : t -> Ipv4.t -> Ipv4.t -> float option
(** Great-circle distance between the cities of two addresses — the
    paper's CDN distance heuristic. *)

type locality = Metro | National | International

val locality_to_string : locality -> string

val classify : t -> src:Ipv4.t -> dst:Ipv4.t -> locality option
(** Same city -> [Metro]; same country -> [National]; otherwise
    [International]. [None] when either address is unknown. *)

val classify_distance :
  metro_miles:float -> national_miles:float -> float -> locality
(** The paper's EU ISP fallback: thresholds on flow distance (10 and 100
    miles in the paper). Raises [Invalid_argument] unless
    [0 <= metro_miles <= national_miles]. *)
