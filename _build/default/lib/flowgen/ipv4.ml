type t = int

let max_addr = (1 lsl 32) - 1

let of_int v =
  if v < 0 || v > max_addr then invalid_arg "Ipv4.of_int: out of range";
  v

let to_int t = t

let of_octets a b c d =
  let octet name v =
    if v < 0 || v > 255 then invalid_arg ("Ipv4.of_octets: bad octet " ^ name);
    v
  in
  (octet "a" a lsl 24) lor (octet "b" b lsl 16) lor (octet "c" c lsl 8) lor octet "d" d

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d -> of_octets a b c d
      | _ -> invalid_arg ("Ipv4.of_string: malformed address " ^ s))
  | _ -> invalid_arg ("Ipv4.of_string: malformed address " ^ s)

let compare = Int.compare
let equal = Int.equal

type prefix = { base : t; bits : int }

let mask bits = if bits = 0 then 0 else (max_addr lsr (32 - bits)) lsl (32 - bits)

let prefix addr bits =
  if bits < 0 || bits > 32 then invalid_arg "Ipv4.prefix: bits out of [0, 32]";
  { base = addr land mask bits; bits }

let prefix_of_string s =
  match String.split_on_char '/' s with
  | [ addr; bits ] -> (
      match int_of_string_opt bits with
      | Some bits -> prefix (of_string addr) bits
      | None -> invalid_arg ("Ipv4.prefix_of_string: malformed prefix " ^ s))
  | _ -> invalid_arg ("Ipv4.prefix_of_string: malformed prefix " ^ s)

let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.bits
let mem addr p = addr land mask p.bits = p.base
let prefix_size p = 1 lsl (32 - p.bits)

let nth_in p k =
  if k < 0 || k >= prefix_size p then invalid_arg "Ipv4.nth_in: out of range";
  p.base lor k

let random_in rng p = nth_in p (Numerics.Rng.int rng (prefix_size p))
