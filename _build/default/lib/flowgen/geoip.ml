type entry = { prefix : Ipv4.prefix; city : Netsim.Cities.t }

type t = {
  entries : entry list;
  by_city : (string, entry list) Hashtbl.t;
}

(* Allocate from a contiguous test range; with /16 blocks the pool holds
   1024 allocations, comfortably more than the gazetteer needs. *)
let pool_base = 0x0A000000 (* 10.0.0.0 *)
let pool_limit = 0x0E000000 (* 14.0.0.0 *)

let synthesize ?(prefix_bits = 16) ?(prefixes_per_city = 4) cities =
  if cities = [] then invalid_arg "Geoip.synthesize: empty city list";
  if prefix_bits < 8 || prefix_bits > 30 then
    invalid_arg "Geoip.synthesize: prefix_bits out of [8, 30]";
  if prefixes_per_city <= 0 then
    invalid_arg "Geoip.synthesize: prefixes_per_city must be positive";
  let block = 1 lsl (32 - prefix_bits) in
  let next = ref pool_base in
  let alloc () =
    if !next + block > pool_limit then
      invalid_arg "Geoip.synthesize: prefix pool exhausted";
    let p = Ipv4.prefix (Ipv4.of_int !next) prefix_bits in
    next := !next + block;
    p
  in
  let entries =
    List.concat_map
      (fun city ->
        List.init prefixes_per_city (fun _ -> { prefix = alloc (); city }))
      cities
  in
  let by_city = Hashtbl.create 128 in
  List.iter
    (fun e ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_city e.city.Netsim.Cities.name)
      in
      Hashtbl.replace by_city e.city.Netsim.Cities.name (e :: existing))
    entries;
  { entries; by_city }

let entries t = t.entries

let lookup t addr =
  List.find_map
    (fun e -> if Ipv4.mem addr e.prefix then Some e.city else None)
    t.entries

let coord t addr = Option.map (fun c -> c.Netsim.Cities.coord) (lookup t addr)

let random_address_in rng t city =
  match Hashtbl.find_opt t.by_city city.Netsim.Cities.name with
  | None | Some [] -> raise Not_found
  | Some allocations ->
      let e = List.nth allocations (Numerics.Rng.int rng (List.length allocations)) in
      Ipv4.random_in rng e.prefix

let distance_miles t a b =
  match (coord t a, coord t b) with
  | Some ca, Some cb -> Some (Netsim.Geo.distance_miles ca cb)
  | _ -> None

type locality = Metro | National | International

let locality_to_string = function
  | Metro -> "metro"
  | National -> "national"
  | International -> "international"

let classify t ~src ~dst =
  match (lookup t src, lookup t dst) with
  | Some a, Some b ->
      if Netsim.Cities.same_city a b then Some Metro
      else if Netsim.Cities.same_country a b then Some National
      else Some International
  | _ -> None

let classify_distance ~metro_miles ~national_miles d =
  if metro_miles < 0. || national_miles < metro_miles then
    invalid_arg "Geoip.classify_distance: need 0 <= metro <= national";
  if d < metro_miles then Metro
  else if d < national_miles then National
  else International
