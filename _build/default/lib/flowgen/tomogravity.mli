(** Traffic-matrix estimation from link counters (tomogravity).

    The paper's pipeline assumes NetFlow; many networks only have SNMP
    link byte counts. The classic remedy (Zhang et al.) estimates the
    PoP-to-PoP traffic matrix in two steps: a {e gravity} prior
    [T(i,j) proportional to out(i) * in(j)] from per-node totals, then a
    projection toward consistency with the observed per-link loads under
    shortest-path routing. The result feeds the same market-fitting
    machinery as measured flows — with estimation error the benchmarks
    can quantify.

    All vectors are indexed by position in the topology's [pops] list. *)

type observation = {
  node_out_mbps : float array;  (** Traffic entering the network per PoP. *)
  node_in_mbps : float array;  (** Traffic leaving the network per PoP. *)
  link_mbps : (int * int * float) list;
      (** Observed load per link, endpoints by node id (orientation
          ignored; loads are summed over both directions). *)
}

val observe : Netsim.Topology.t -> (int * int * float) list -> observation
(** Build the observation an SNMP poller would produce from a
    ground-truth demand list [(src pop index, dst pop index, mbps)]:
    per-node totals plus per-link loads on shortest paths. *)

val gravity : observation -> float array array
(** The gravity prior: [T(i,j) = out(i) * in(j) / total] for [i <> j],
    zero diagonal, rescaled so the total matches. Raises
    [Invalid_argument] on mismatched lengths or a zero total. *)

val estimate :
  ?iterations:int ->
  Netsim.Topology.t ->
  observation ->
  float array array
(** Gravity prior refined by multiplicative link-load matching: each
    iteration scales every demand by the geometric mean of its path
    links' observed/estimated load ratios, then re-normalizes node
    totals (an IPF-style scheme; default 50 iterations). Entries stay
    non-negative. *)

type quality = {
  correlation : float;  (** Pearson r between estimate and truth. *)
  mean_relative_error : float;
      (** Mean |est - true| / true over true entries >= the cutoff. *)
  total_error : float;  (** |sum est - sum true| / sum true. *)
}

val compare_to_truth :
  ?cutoff_mbps:float -> truth:float array array -> float array array -> quality
(** Standard tomogravity error metrics ([cutoff_mbps] defaults to 1:
    tiny true flows are excluded from the relative error, as in the
    literature). *)
