(** Aggregation of NetFlow records into per-destination demand.

    The pricing model consumes one demand figure per "flow" in the
    economic sense — an (entry, destination) traffic aggregate. This is
    the last stage of the paper's measurement pipeline: collect, sample,
    dedup, then aggregate to Mbps over the capture window. *)

type aggregate = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mbps : float;  (** Mean rate over the capture window. *)
  bytes : float;
  records : int;  (** Records merged into this aggregate. *)
}

val by_endpoint_pair : ?window_s:int -> Netflow.record list -> aggregate list
(** Groups by (src, dst) address pair over a window of [window_s]
    seconds (default one day). Order follows first appearance. *)

val by_destination : ?window_s:int -> Netflow.record list -> aggregate list
(** Groups by destination address only ([src] is set to the first
    source seen) — destination-based pricing's native granularity. *)

val total_mbps : aggregate list -> float

val demands : aggregate list -> float array
(** Demand vector, same order as the input aggregates. *)
