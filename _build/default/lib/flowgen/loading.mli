(** Link loading: map a workload's flows onto the topology and check
    capacities.

    Tier pricing reshapes demand; before an ISP deploys a new tier sheet
    it wants to know the links still hold the traffic. Each flow
    contributes its rate to every link on its (shortest) path. *)

type link_load = {
  link : Netsim.Link.t;
  mbps : float;
  utilization : float;  (** mbps / capacity (capacities are in Gbps). *)
}

type report = {
  loads : link_load list;  (** Descending by utilization. *)
  max_utilization : float;
  overloaded : link_load list;  (** Utilization > 1. *)
  unrouted_mbps : float;  (** Traffic whose endpoints have no path. *)
}

val of_workload : Workload.t -> report
(** Loads the workload's own topology using each flow's recorded path
    (its [routers] list). Flows observed at a single node (geo mode)
    load nothing. *)

val of_demands :
  topology:Netsim.Topology.t -> (int * int * float) list -> report
(** [(src node, dst node, mbps)] triples routed on shortest paths. *)

val scale_demands : float -> report -> report
(** Re-scale all loads (e.g. to model demand response to a price cut). *)

val pp : Format.formatter -> report -> unit
(** Top-5 loaded links and any overloads. *)
