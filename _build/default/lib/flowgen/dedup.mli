(** Duplicate suppression for multi-router observations.

    A flow crossing k core routers shows up k times in the collected
    records; the paper "ensure\[s\] we do not double-count records that
    are duplicated on different routers" (§4.1.1). Two records are
    duplicates when they share the 5-tuple and time window but differ in
    observing router; we keep the observation from the lowest-numbered
    router, a deterministic stand-in for "the designated accounting
    router". *)

type key = {
  k_src : Ipv4.t;
  k_dst : Ipv4.t;
  k_src_port : int;
  k_dst_port : int;
  k_proto : int;
  k_first_s : int;
}

val key_of_record : Netflow.record -> key

val dedup : Netflow.record list -> Netflow.record list
(** Output order follows first appearance of each key. *)

val duplicate_count : Netflow.record list -> int
(** How many records {!dedup} would drop. *)
