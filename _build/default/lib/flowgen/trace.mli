(** Persisting NetFlow traces.

    Round-trips record lists through the CSV format of {!Netflow}, so a
    synthetic day of traffic can be dumped once and reprocessed by
    external tooling (or reloaded in a later session). *)

val save : path:string -> Netflow.record list -> unit
(** Writes a header line plus one CSV line per record. Raises [Sys_error]
    on I/O failure. *)

val load : path:string -> Netflow.record list
(** Reads a file written by {!save}. Raises [Invalid_argument] on a
    malformed header or record line (with the line number). *)

val append : path:string -> Netflow.record list -> unit
(** Appends records to an existing trace (header must already exist). *)

val summarize : Netflow.record list -> string
(** One line: record count, distinct endpoint pairs, total bytes, time
    span. *)
