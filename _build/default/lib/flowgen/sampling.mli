(** Packet-sampling simulation.

    Routers export {e sampled} NetFlow (typically 1-in-N packets); the
    collector re-scales byte counts by N. Sampling is a binomial process,
    so small flows can disappear entirely — the methodology ablation in
    the benchmarks measures how this distorts the fitted model. *)

type t = { rate : int }
(** 1-in-[rate] packet sampling. [rate = 1] is unsampled. *)

val make : int -> t
(** Raises [Invalid_argument] when [rate < 1]. *)

val sample_record : Numerics.Rng.t -> t -> Netflow.record -> Netflow.record option
(** Binomially samples the record's packets (normal approximation above
    100 expected survivors, exact Bernoulli thinning below), re-scales
    bytes and packets by [rate], and returns [None] when no packet
    survives. *)

val sample : Numerics.Rng.t -> t -> Netflow.record list -> Netflow.record list

val expected_relative_error : t -> packets:float -> float
(** Coefficient of variation of the re-scaled byte estimate,
    [sqrt ((rate - 1) / packets)] — useful to reason about how coarse a
    sampling rate a test can tolerate. *)
