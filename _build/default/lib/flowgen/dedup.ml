type key = {
  k_src : Ipv4.t;
  k_dst : Ipv4.t;
  k_src_port : int;
  k_dst_port : int;
  k_proto : int;
  k_first_s : int;
}

let key_of_record (r : Netflow.record) =
  {
    k_src = r.src;
    k_dst = r.dst;
    k_src_port = r.src_port;
    k_dst_port = r.dst_port;
    k_proto = r.proto;
    k_first_s = r.first_s;
  }

let dedup records =
  let best : (key, Netflow.record) Hashtbl.t = Hashtbl.create 4096 in
  let order = ref [] in
  List.iter
    (fun (r : Netflow.record) ->
      let key = key_of_record r in
      match Hashtbl.find_opt best key with
      | None ->
          Hashtbl.add best key r;
          order := key :: !order
      | Some kept -> if r.router < kept.router then Hashtbl.replace best key r)
    records;
  List.rev_map (fun key -> Hashtbl.find best key) !order

let duplicate_count records = List.length records - List.length (dedup records)
