type t = { rate : int }

let make rate =
  if rate < 1 then invalid_arg "Sampling.make: rate must be >= 1";
  { rate }

let binomial rng ~n ~p =
  (* Exact Bernoulli thinning for small n, Gaussian approximation with
     continuity clamp beyond that. *)
  if n <= 0. then 0.
  else if n *. p <= 100. && n <= 10_000. then begin
    let count = ref 0 in
    for _ = 1 to int_of_float n do
      if Numerics.Rng.float rng < p then incr count
    done;
    float_of_int !count
  end
  else
    let mean = n *. p in
    let sd = sqrt (n *. p *. (1. -. p)) in
    Float.max 0. (Float.round (Numerics.Dist.normal rng ~mean ~stddev:sd))

let sample_record rng t (r : Netflow.record) =
  if t.rate = 1 then Some r
  else
    let p = 1. /. float_of_int t.rate in
    let survivors = binomial rng ~n:r.packets ~p in
    if survivors <= 0. then None
    else
      let scale = float_of_int t.rate in
      let bytes_per_packet = r.bytes /. Float.max 1. r.packets in
      Some
        {
          r with
          bytes = survivors *. bytes_per_packet *. scale;
          packets = survivors *. scale;
        }

let sample rng t records = List.filter_map (sample_record rng t) records

let expected_relative_error t ~packets =
  if packets <= 0. then invalid_arg "Sampling.expected_relative_error: packets <= 0";
  sqrt (float_of_int (t.rate - 1) /. packets)
