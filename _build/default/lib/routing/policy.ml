module Bypass = struct
  type inputs = {
    blended_rate : float;
    direct_cost : float;
    isp_cost : float;
    isp_margin : float;
    accounting_overhead : float;
  }

  type verdict = {
    customer_bypasses : bool;
    market_failure : bool;
    tiered_price : float;
    customer_saving : float;
  }

  let validate i =
    if
      i.blended_rate < 0. || i.direct_cost < 0. || i.isp_cost < 0.
      || i.isp_margin < 0. || i.accounting_overhead < 0.
    then invalid_arg "Policy.Bypass: negative input"

  let decide i =
    validate i;
    let customer_bypasses = i.direct_cost < i.blended_rate in
    let tiered_price = ((i.isp_margin +. 1.) *. i.isp_cost) +. i.accounting_overhead in
    {
      customer_bypasses;
      (* §2.2.2: the bypass is a market failure when the customer builds
         capacity at a higher cost than a tiered price would have been. *)
      market_failure = customer_bypasses && i.direct_cost > tiered_price;
      tiered_price;
      customer_saving = (if customer_bypasses then i.blended_rate -. i.direct_cost else 0.);
    }

  let break_even_rate i =
    validate i;
    i.direct_cost
end

module Egress = struct
  type choice = Use_upstream of int | Use_backbone

  let choose ~rib ~tier_prices ~backbone_cost_per_mbps addr =
    match Rib.lookup rib addr with
    | None -> None
    | Some route -> (
        match List.find_map Community.tier_of route.Rib.communities with
        | None -> Some (Use_upstream 0)
        | Some tier ->
            if tier >= Array.length tier_prices then
              invalid_arg "Policy.Egress.choose: tier has no configured price";
            if tier_prices.(tier) > backbone_cost_per_mbps then Some Use_backbone
            else Some (Use_upstream tier))

  let split ~rib ~tier_prices ~backbone_cost_per_mbps demands ~upstream_mbps
      ~backbone_mbps =
    List.iter
      (fun (addr, mbps) ->
        match choose ~rib ~tier_prices ~backbone_cost_per_mbps addr with
        | Some Use_backbone -> backbone_mbps := !backbone_mbps +. mbps
        | Some (Use_upstream _) | None -> upstream_mbps := !upstream_mbps +. mbps)
      demands
end
