(** Customer-side routing economics: the direct-peering bypass decision
    of §2.2.2 (Fig. 2) and tier-aware route selection (§5.1). *)

(** The Fig. 2 scenario: a customer (e.g. a CDN with a backbone PoP)
    decides whether to keep buying blended transit to reach a nearby IXP
    or to procure a direct link to it. *)
module Bypass : sig
  type inputs = {
    blended_rate : float;  (** [R], $/Mbps via the upstream. *)
    direct_cost : float;  (** [c_direct], amortized $/Mbps of own link. *)
    isp_cost : float;  (** [c_ISP], the ISP's true cost for the flow. *)
    isp_margin : float;  (** [M], the ISP's profit margin (e.g. 0.3). *)
    accounting_overhead : float;  (** [A], per-Mbps tier-accounting cost. *)
  }

  type verdict = {
    customer_bypasses : bool;  (** [c_direct < R]. *)
    market_failure : bool;
        (** Bypass happens although the ISP could profitably offer a
            tier below [c_direct]: [c_direct > (M + 1) c_ISP + A]. *)
    tiered_price : float;  (** [(M + 1) c_ISP + A], what a tier would cost. *)
    customer_saving : float;  (** [R - c_direct] when bypassing, else 0. *)
  }

  val decide : inputs -> verdict
  (** Raises [Invalid_argument] on negative inputs. *)

  val break_even_rate : inputs -> float
  (** The blended rate below which the customer stops bypassing. *)
end

(** Tier-aware egress selection: with tagged routes, a customer with its
    own backbone can carry traffic itself ("cold potato") when the
    upstream's tier for that destination is priced above its internal
    transport cost. *)
module Egress : sig
  type choice = Use_upstream of int (* tier *) | Use_backbone

  val choose :
    rib:Rib.t ->
    tier_prices:float array ->
    backbone_cost_per_mbps:float ->
    Flowgen.Ipv4.t ->
    choice option
  (** [None] when no route covers the destination. Raises
      [Invalid_argument] if a matched route's tier has no price. *)

  val split :
    rib:Rib.t ->
    tier_prices:float array ->
    backbone_cost_per_mbps:float ->
    (Flowgen.Ipv4.t * float) list ->
    upstream_mbps:float ref ->
    backbone_mbps:float ref ->
    unit
  (** Classify a demand list [(dst, mbps)] into upstream vs backbone
      volume. Destinations without routes count as upstream (default
      route). *)
end
