(** The two tier-accounting architectures of §5.2 (Fig. 17).

    {b Link-based}: each tier rides its own (virtual) link; edge-router
    byte counters are polled periodically (SNMP-style, with 64-bit
    counter wrap handled) and per-poll deltas give per-tier usage.

    {b Flow-based}: a single link carries everything; the collector
    joins exported flow records against the tagged RIB to attribute
    bytes to tiers after the fact.

    Both yield the same per-tier totals on the same traffic — asserted
    by the test suite — but flow-based accounting also produces the
    per-interval rate series that percentile billing needs. *)

type usage = {
  tier_bytes : (int * float) list;  (** [(tier, bytes)], ascending tier. *)
  untiered_bytes : float;  (** Traffic matching no tiered route. *)
}

val total_bytes : usage -> float

(** SNMP-style polled counters. *)
module Snmp : sig
  type t

  val create : n_tiers:int -> ?poll_interval_s:int -> unit -> t
  (** Default poll interval 300 s. *)

  val observe : t -> rib:Rib.t -> Flowgen.Netflow.record list -> unit
  (** Feed traffic through the per-tier links: each record's bytes are
      added to its tier's counter (spread over the record's duration).
      Records matching no tiered route count as untiered. *)

  val poll_series : t -> horizon_s:int -> (int * float array) list
  (** Per tier, the per-poll byte deltas a poller would have read over
      [horizon_s] seconds, reconstructed from wrapped 64-bit counters. *)

  val usage : t -> usage
end

val flow_based : rib:Rib.t -> Flowgen.Netflow.record list -> usage
(** Join flow records to tiers via the RIB (destination lookup). *)

val rate_series :
  rib:Rib.t ->
  interval_s:int ->
  horizon_s:int ->
  Flowgen.Netflow.record list ->
  (int * float array) list
(** Per-tier Mbps per interval — the input to percentile billing.
    Records are attributed to intervals by overlap. *)
