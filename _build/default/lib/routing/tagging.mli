(** Associating routes with pricing tiers (§5.1).

    The upstream ISP announces every destination prefix tagged with the
    community of its pricing tier; customers then know, per route, which
    tier traffic to that destination bills under. *)

type assignment = { dst_prefix : Flowgen.Ipv4.prefix; tier : int; next_hop : int }

val build_rib : asn:int -> assignment list -> Rib.t
(** One tagged route per assignment. Raises [Invalid_argument] on a tier
    outside [Community]'s range. *)

val tier_counts : Rib.t -> (int * int) list
(** [(tier, number of routes)] pairs, ascending by tier. *)

val untiered_routes : Rib.t -> Rib.route list
(** Routes carrying no tier tag — configuration errors an operator
    would want to alarm on. *)
