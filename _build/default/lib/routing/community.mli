(** BGP extended communities used as pricing-tier tags (§5.1).

    The upstream ISP tags every route it announces with the tier it
    belongs to; the customer's routers match on the tag to build policy.
    We model the conventional ["asn:value"] two-octet encoding, with a
    reserved value range for tiers. *)

type t = { asn : int; value : int }

val make : asn:int -> value:int -> t
(** Raises [Invalid_argument] unless both fit in 16 bits. *)

val tier : asn:int -> int -> t
(** [tier ~asn k] is the community tagging pricing tier [k] (0-based);
    encoded in a reserved value range so tier tags cannot collide with
    other communities from the same ASN. Raises [Invalid_argument] for
    [k < 0] or [k >= max_tiers]. *)

val max_tiers : int

val tier_of : t -> int option
(** [Some k] when the community is a tier tag. *)

val to_string : t -> string
(** ["asn:value"]. *)

val of_string : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
