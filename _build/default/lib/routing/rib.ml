type route = {
  prefix : Flowgen.Ipv4.prefix;
  next_hop : int;
  as_path_len : int;
  communities : Community.t list;
}

let route ?(as_path_len = 1) ?(communities = []) ~prefix ~next_hop () =
  if as_path_len < 0 then invalid_arg "Rib.route: negative AS-path length";
  { prefix; next_hop; as_path_len; communities }

(* Routes bucketed by prefix length for longest-prefix match; within a
   length, keyed by the prefix base address. *)
module Addr_map = Map.Make (Int)

type t = { by_len : route Addr_map.t array }

let empty = { by_len = Array.make 33 Addr_map.empty }

let add t route =
  let { Flowgen.Ipv4.base; bits } = route.prefix in
  let key = Flowgen.Ipv4.to_int base in
  let bucket = t.by_len.(bits) in
  let keep =
    match Addr_map.find_opt key bucket with
    | Some incumbent when incumbent.as_path_len <= route.as_path_len -> incumbent
    | Some _ | None -> route
  in
  let by_len = Array.copy t.by_len in
  by_len.(bits) <- Addr_map.add key keep bucket;
  { by_len }

let size t =
  Array.fold_left (fun acc bucket -> acc + Addr_map.cardinal bucket) 0 t.by_len

let routes t =
  Array.fold_left
    (fun acc bucket -> Addr_map.fold (fun _ r acc -> r :: acc) bucket acc)
    [] t.by_len

let lookup t addr =
  let rec scan bits =
    if bits < 0 then None
    else
      let masked = Flowgen.Ipv4.prefix addr bits in
      let key = Flowgen.Ipv4.to_int masked.Flowgen.Ipv4.base in
      match Addr_map.find_opt key t.by_len.(bits) with
      | Some r -> Some r
      | None -> scan (bits - 1)
  in
  scan 32

let tier_of t addr =
  match lookup t addr with
  | None -> None
  | Some r -> List.find_map Community.tier_of r.communities

let with_community t c =
  List.filter (fun r -> List.exists (Community.equal c) r.communities) (routes t)
