(** A BGP-style routing information base.

    Routes carry the attributes tier accounting needs: the announced
    prefix, a next hop, an AS-path length and the community tags the
    upstream attached. Lookup is longest-prefix match. *)

type route = {
  prefix : Flowgen.Ipv4.prefix;
  next_hop : int;  (** Node id of the egress / session. *)
  as_path_len : int;
  communities : Community.t list;
}

val route :
  ?as_path_len:int ->
  ?communities:Community.t list ->
  prefix:Flowgen.Ipv4.prefix ->
  next_hop:int ->
  unit ->
  route

type t

val empty : t
val add : t -> route -> t
(** A route for an already-present prefix replaces the old one when it
    is preferred (shorter AS path; ties keep the incumbent). *)

val size : t -> int
val routes : t -> route list

val lookup : t -> Flowgen.Ipv4.t -> route option
(** Longest-prefix match. *)

val tier_of : t -> Flowgen.Ipv4.t -> int option
(** Tier tag of the best route covering the address, if any. *)

val with_community : t -> Community.t -> route list
(** All routes carrying the given community. *)
