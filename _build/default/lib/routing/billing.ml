type method_ = Mean_rate | Percentile of float

type line = {
  tier : int;
  billable_mbps : float;
  rate_per_mbps : float;
  amount : float;
}

type invoice = {
  lines : line list;
  total : float;
  method_ : method_;
  period_s : int;
}

let rate_for rates tier =
  if tier < 0 || tier >= Array.length rates then
    invalid_arg "Billing: usage references a tier with no configured rate";
  rates.(tier)

let build ~method_ ~period_s lines =
  let lines = List.filter (fun l -> l.billable_mbps > 0.) lines in
  {
    lines;
    total = List.fold_left (fun acc l -> acc +. l.amount) 0. lines;
    method_;
    period_s;
  }

let of_usage ~rates ~period_s (usage : Accounting.usage) =
  if period_s <= 0 then invalid_arg "Billing.of_usage: period <= 0";
  let lines =
    List.map
      (fun (tier, bytes) ->
        let rate_per_mbps = rate_for rates tier in
        let billable_mbps = bytes *. 8. /. float_of_int period_s /. 1e6 in
        { tier; billable_mbps; rate_per_mbps; amount = billable_mbps *. rate_per_mbps })
      usage.Accounting.tier_bytes
  in
  build ~method_:Mean_rate ~period_s lines

let of_rate_series ~rates ~method_ ~period_s series =
  if period_s <= 0 then invalid_arg "Billing.of_rate_series: period <= 0";
  let billable mbps_series =
    match method_ with
    | Mean_rate -> Numerics.Stats.mean mbps_series
    | Percentile p ->
        if p < 0. || p > 1. then invalid_arg "Billing: percentile out of [0, 1]";
        Numerics.Stats.quantile mbps_series p
  in
  let lines =
    List.map
      (fun (tier, mbps_series) ->
        let rate_per_mbps = rate_for rates tier in
        let billable_mbps = if Array.length mbps_series = 0 then 0. else billable mbps_series in
        { tier; billable_mbps; rate_per_mbps; amount = billable_mbps *. rate_per_mbps })
      series
  in
  build ~method_ ~period_s lines

let pp ppf t =
  let method_name =
    match t.method_ with
    | Mean_rate -> "mean-rate"
    | Percentile p -> Printf.sprintf "p%.0f" (100. *. p)
  in
  Format.fprintf ppf "invoice (%s over %ds):@." method_name t.period_s;
  List.iter
    (fun l ->
      Format.fprintf ppf "  tier %d: %.1f Mbps x $%.2f = $%.2f@." l.tier
        l.billable_mbps l.rate_per_mbps l.amount)
    t.lines;
  Format.fprintf ppf "  total: $%.2f@." t.total
