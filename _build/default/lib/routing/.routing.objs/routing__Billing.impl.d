lib/routing/billing.ml: Accounting Array Format List Numerics Printf
