lib/routing/policy.mli: Flowgen Rib
