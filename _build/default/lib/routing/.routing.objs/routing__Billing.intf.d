lib/routing/billing.mli: Accounting Format
