lib/routing/accounting.ml: Array Flowgen Hashtbl Int64 List Option Rib
