lib/routing/accounting.mli: Flowgen Rib
