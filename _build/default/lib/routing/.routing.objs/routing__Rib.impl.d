lib/routing/rib.ml: Array Community Flowgen Int List Map
