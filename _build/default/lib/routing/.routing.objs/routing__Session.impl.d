lib/routing/session.ml: Community Flowgen Hashtbl List Rib Tagging
