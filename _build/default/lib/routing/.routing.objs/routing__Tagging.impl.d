lib/routing/tagging.ml: Community Flowgen Hashtbl List Option Rib
