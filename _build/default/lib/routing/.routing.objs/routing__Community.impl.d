lib/routing/community.ml: Printf String
