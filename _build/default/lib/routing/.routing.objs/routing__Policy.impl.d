lib/routing/policy.ml: Array Community List Rib
