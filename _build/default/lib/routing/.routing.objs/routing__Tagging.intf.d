lib/routing/tagging.mli: Flowgen Rib
