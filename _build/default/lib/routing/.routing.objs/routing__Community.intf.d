lib/routing/community.mli:
