lib/routing/session.mli: Flowgen Rib Tagging
