lib/routing/rib.mli: Community Flowgen
