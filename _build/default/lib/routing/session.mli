(** Per-tier BGP sessions (§5.2, Fig. 17a).

    Link-based accounting requires one (physical or virtual) link per
    pricing tier, each with its own BGP session announcing only that
    tier's routes. This module models the session layer: which routes
    are advertised over which session, and the consistency property the
    architecture depends on — traffic to a destination leaves on the
    session that advertised it, so per-link byte counters {e are}
    per-tier byte counters.

    Sessions are deliberately simple (no timers, no path attributes
    beyond what tiering needs); the point is the invariant checking an
    operator would script. *)

type state = Idle | Established

type t = {
  id : int;
  tier : int;  (** The single tier this session carries. *)
  link : int;  (** Virtual-link identifier (e.g. VLAN). *)
  state : state;
  advertised : Rib.route list;
}

val create : id:int -> tier:int -> link:int -> t
(** A fresh idle session with an empty advertisement set. *)

val establish : t -> t
val shutdown : t -> t
(** Shutting down withdraws everything. *)

val advertise : t -> asn:int -> Rib.route -> t
(** Tags the route with the session's tier community and adds it to the
    advertisement set. Raises [Invalid_argument] if the session is not
    established, or if the route already carries a {e different} tier
    tag (a misconfiguration the operator must resolve, not mask). *)

val advertised_rib : t list -> Rib.t
(** The customer-side RIB implied by a session set: the union of all
    advertisements. *)

type violation = {
  session_id : int;
  prefix : Flowgen.Ipv4.prefix;
  expected_tier : int;
  actual_tier : int option;
}

val check_consistency : t list -> violation list
(** The Fig. 17a invariant: every advertised route's tier tag matches
    its session's tier, and no prefix is advertised on two sessions
    with different tiers. Returns all violations (empty = consistent). *)

val session_of_tier : t list -> int -> t option
(** The established session carrying a tier, if any. *)

val plan :
  asn:int -> Tagging.assignment list -> n_links:int -> t list
(** Build one established session per tier (round-robin over
    [n_links] links) and advertise each assignment on its tier's
    session — the §5.1 deployment in one call. Raises
    [Invalid_argument] when [n_links < 1]. *)
