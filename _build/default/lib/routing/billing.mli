(** Invoices from per-tier usage.

    Converts accounted usage into the $/Mbps/month line items a transit
    contract bills, under either mean-rate or 95th-percentile billing
    (the industry's burstable standard). *)

type method_ = Mean_rate | Percentile of float
(** [Percentile 0.95] is conventional burstable billing. *)

type line = {
  tier : int;
  billable_mbps : float;
  rate_per_mbps : float;
  amount : float;
}

type invoice = {
  lines : line list;
  total : float;
  method_ : method_;
  period_s : int;
}

val of_usage :
  rates:float array -> period_s:int -> Accounting.usage -> invoice
(** Mean-rate billing of byte totals: [billable = bytes * 8 / period / 1e6].
    [rates.(tier)] is the tier's $/Mbps price. Tiers with no traffic
    yield no line. Raises [Invalid_argument] if usage references a tier
    with no rate. *)

val of_rate_series :
  rates:float array ->
  method_:method_ ->
  period_s:int ->
  (int * float array) list ->
  invoice
(** Billing from per-interval Mbps series (see
    {!Accounting.rate_series}): mean or percentile of each tier's
    series. *)

val pp : Format.formatter -> invoice -> unit
