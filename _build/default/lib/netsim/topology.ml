type t = { name : string; graph : Graph.t; pops : Node.t list }

let of_nodes_links ~name node_list link_list =
  let graph = Graph.create node_list link_list in
  if not (Graph.is_connected graph) then
    invalid_arg ("Topology." ^ name ^ ": graph is not connected");
  let pops =
    List.filter
      (fun (n : Node.t) -> match n.kind with Pop | Datacenter -> true | Ixp | Customer_site -> false)
      node_list
  in
  { name; graph; pops }

let pop_nodes cities =
  List.mapi
    (fun id (city : Cities.t) ->
      Node.make ~id ~name:(city.name ^ "-pop") ~kind:Node.Pop ~city)
    cities

let ring ~name ~capacity_gbps cities =
  let nodes = pop_nodes cities in
  let n = List.length nodes in
  if n < 2 then invalid_arg "Topology.ring: need at least two cities";
  let arr = Array.of_list nodes in
  let links = ref [] in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    (* For two nodes the "ring" degenerates to one edge. *)
    if not (n = 2 && i = 1) then
      links := Link.make ~capacity_gbps arr.(i) arr.(j) :: !links
  done;
  of_nodes_links ~name nodes !links

let star ~name ~capacity_gbps ~hub cities =
  let hub_node = Node.make ~id:0 ~name:(hub.Cities.name ^ "-hub") ~kind:Node.Pop ~city:hub in
  let spokes =
    List.mapi
      (fun i (city : Cities.t) ->
        Node.make ~id:(i + 1) ~name:(city.name ^ "-pop") ~kind:Node.Pop ~city)
      cities
  in
  let links = List.map (fun spoke -> Link.make ~capacity_gbps hub_node spoke) spokes in
  of_nodes_links ~name (hub_node :: spokes) links

let full_mesh ~name ~capacity_gbps cities =
  let nodes = pop_nodes cities in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Topology.full_mesh: need at least two cities";
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      links := Link.make ~capacity_gbps arr.(i) arr.(j) :: !links
    done
  done;
  of_nodes_links ~name nodes !links

let waxman ~name ~rng ~capacity_gbps ~alpha ~beta cities =
  if alpha <= 0. || alpha > 1. || beta <= 0. || beta > 1. then
    invalid_arg "Topology.waxman: alpha and beta must be in (0, 1]";
  let nodes = pop_nodes cities in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Topology.waxman: need at least two cities";
  let max_d = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      max_d := Float.max !max_d (Node.distance_miles arr.(i) arr.(j))
    done
  done;
  let links = ref [] in
  let linked = Hashtbl.create 64 in
  let add i j =
    let key = if i < j then (i, j) else (j, i) in
    if not (Hashtbl.mem linked key) then begin
      Hashtbl.add linked key ();
      links := Link.make ~capacity_gbps arr.(i) arr.(j) :: !links
    end
  in
  (* Nearest-unvisited-neighbor chain guarantees connectivity. *)
  let visited = Array.make n false in
  visited.(0) <- true;
  let current = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) and best_d = ref infinity in
    for j = 0 to n - 1 do
      if not visited.(j) then begin
        let d = Node.distance_miles arr.(!current) arr.(j) in
        if d < !best_d then begin
          best := j;
          best_d := d
        end
      end
    done;
    add !current !best;
    visited.(!best) <- true;
    current := !best
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Node.distance_miles arr.(i) arr.(j) in
      let p = alpha *. exp (-.d /. (beta *. !max_d)) in
      if Numerics.Rng.float rng < p then add i j
    done
  done;
  of_nodes_links ~name nodes !links

let distance_matrix t =
  let pops = Array.of_list t.pops in
  let n = Array.length pops in
  let matrix = Array.make_matrix n n 0. in
  Array.iteri
    (fun i (src : Node.t) ->
      let dist = Graph.shortest_path_lengths t.graph ~src:src.id in
      Array.iteri (fun j (dst : Node.t) -> matrix.(i).(j) <- dist.(dst.id)) pops)
    pops;
  matrix

let pop_by_city t city_name =
  match
    List.find_opt (fun (n : Node.t) -> String.equal n.city.Cities.name city_name) t.pops
  with
  | Some n -> n
  | None -> raise Not_found
