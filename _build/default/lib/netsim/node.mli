(** Network nodes: points of presence, exchange points, data centers and
    customer sites. *)

type kind =
  | Pop  (** ISP point of presence (core/edge router site). *)
  | Ixp  (** Internet exchange point. *)
  | Datacenter  (** CDN cache / content origin. *)
  | Customer_site  (** Downstream customer attachment. *)

val kind_to_string : kind -> string

type t = {
  id : int;  (** Dense, unique within one topology. *)
  name : string;
  kind : kind;
  city : Cities.t;
  coord : Geo.coord;  (** Usually the city center, possibly jittered. *)
}

val make : id:int -> name:string -> kind:kind -> city:Cities.t -> t
(** Node placed exactly at its city's coordinates. *)

val make_at : id:int -> name:string -> kind:kind -> city:Cities.t -> coord:Geo.coord -> t

val distance_miles : t -> t -> float
val pp : Format.formatter -> t -> unit
