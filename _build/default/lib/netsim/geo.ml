type coord = { lat : float; lon : float }

let coord ~lat ~lon =
  if lat < -90. || lat > 90. then invalid_arg "Geo.coord: latitude out of range";
  if lon < -180. || lon > 180. then invalid_arg "Geo.coord: longitude out of range";
  { lat; lon }

let earth_radius_miles = 3958.8
let earth_radius_km = 6371.0
let deg_to_rad d = d *. Float.pi /. 180.
let rad_to_deg r = r *. 180. /. Float.pi

let haversine_central_angle a b =
  let phi1 = deg_to_rad a.lat and phi2 = deg_to_rad b.lat in
  let dphi = deg_to_rad (b.lat -. a.lat) in
  let dlambda = deg_to_rad (b.lon -. a.lon) in
  let sin_dphi = sin (dphi /. 2.) and sin_dlambda = sin (dlambda /. 2.) in
  let h =
    (sin_dphi *. sin_dphi) +. (cos phi1 *. cos phi2 *. sin_dlambda *. sin_dlambda)
  in
  (* Clamp against rounding before asin. *)
  2. *. asin (sqrt (Float.min 1. h))

let distance_miles a b = earth_radius_miles *. haversine_central_angle a b
let distance_km a b = earth_radius_km *. haversine_central_angle a b

let midpoint a b =
  let phi1 = deg_to_rad a.lat and phi2 = deg_to_rad b.lat in
  let lambda1 = deg_to_rad a.lon in
  let dlambda = deg_to_rad (b.lon -. a.lon) in
  let bx = cos phi2 *. cos dlambda in
  let by = cos phi2 *. sin dlambda in
  let phi3 =
    atan2 (sin phi1 +. sin phi2) (sqrt (((cos phi1 +. bx) ** 2.) +. (by *. by)))
  in
  let lambda3 = lambda1 +. atan2 by (cos phi1 +. bx) in
  let lon = rad_to_deg lambda3 in
  let lon = if lon > 180. then lon -. 360. else if lon < -180. then lon +. 360. else lon in
  { lat = rad_to_deg phi3; lon }

let jitter rng ~radius_miles c =
  if radius_miles < 0. then invalid_arg "Geo.jitter: negative radius";
  let angle = Numerics.Rng.uniform rng 0. (2. *. Float.pi) in
  (* sqrt for an area-uniform displacement. *)
  let r = radius_miles *. sqrt (Numerics.Rng.float rng) in
  let dlat = r *. cos angle /. 69.0 in
  let cos_lat = Float.max 0.01 (cos (deg_to_rad c.lat)) in
  let dlon = r *. sin angle /. (69.0 *. cos_lat) in
  let clamp lo hi v = Float.max lo (Float.min hi v) in
  {
    lat = clamp (-90.) 90. (c.lat +. dlat);
    lon = clamp (-180.) 180. (c.lon +. dlon);
  }

let pp ppf c = Format.fprintf ppf "(%.4f, %.4f)" c.lat c.lon
