(** Undirected network links.

    A link's [length_miles] is the geographic distance between its
    endpoints (optionally stretched by a cable-routing factor); link
    lengths are what Internet2-style path distances sum over. *)

type t = {
  a : int;  (** Endpoint node id. *)
  b : int;
  length_miles : float;
  capacity_gbps : float;
}

val make : ?stretch:float -> capacity_gbps:float -> Node.t -> Node.t -> t
(** [make n1 n2] builds a link with geographic length scaled by
    [stretch] (default [1.0]; real fiber rarely follows great circles).
    Raises [Invalid_argument] on self-loops, non-positive capacity or
    [stretch < 1]. *)

val other_end : t -> int -> int
(** [other_end link id] is the opposite endpoint. Raises
    [Invalid_argument] if [id] is not an endpoint. *)

val connects : t -> int -> int -> bool
(** Endpoint test, orientation-insensitive. *)

val pp : Format.formatter -> t -> unit
