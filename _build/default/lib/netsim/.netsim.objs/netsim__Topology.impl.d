lib/netsim/topology.ml: Array Cities Float Graph Hashtbl Link List Node Numerics String
