lib/netsim/node.ml: Cities Format Geo
