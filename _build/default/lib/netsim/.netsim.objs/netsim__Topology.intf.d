lib/netsim/topology.mli: Cities Graph Link Node Numerics
