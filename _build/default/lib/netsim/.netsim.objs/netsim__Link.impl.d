lib/netsim/link.ml: Format Node
