lib/netsim/link.mli: Format Node
