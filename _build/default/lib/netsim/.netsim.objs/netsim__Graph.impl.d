lib/netsim/graph.ml: Array Format Link List Node
