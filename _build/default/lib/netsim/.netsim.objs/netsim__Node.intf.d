lib/netsim/node.mli: Cities Format Geo
