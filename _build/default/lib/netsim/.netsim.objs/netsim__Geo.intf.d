lib/netsim/geo.mli: Format Numerics
