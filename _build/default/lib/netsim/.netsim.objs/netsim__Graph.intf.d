lib/netsim/graph.mli: Format Link Node
