lib/netsim/geo.ml: Float Format Numerics
