lib/netsim/cities.ml: Geo Hashtbl List String
