lib/netsim/presets.ml: Array Cities Geo Hashtbl Link List Node Numerics Printf Topology
