lib/netsim/presets.mli: Topology
