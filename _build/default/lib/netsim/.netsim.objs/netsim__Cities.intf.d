lib/netsim/cities.mli: Geo
