(** Weighted undirected graphs over {!Node.t}, with shortest paths.

    The Internet2 heuristic of the paper sums the geographic lengths of
    the links a flow traverses; {!shortest_path} provides exactly that.
    Node ids must be dense ([0 .. n-1]). *)

type t

val create : Node.t list -> Link.t list -> t
(** Raises [Invalid_argument] if ids are not dense/unique or a link
    references an unknown node. Parallel links are allowed; the shorter
    one wins for routing. *)

val node_count : t -> int
val link_count : t -> int
val nodes : t -> Node.t array
val links : t -> Link.t list
val node : t -> int -> Node.t
val neighbors : t -> int -> (int * float) list
(** [(neighbor id, link length)] pairs. *)

type path = { hops : int list; length_miles : float }
(** [hops] includes both endpoints; a zero-length path has one hop. *)

val shortest_path : t -> src:int -> dst:int -> path option
(** Dijkstra by link length. [None] when disconnected. *)

val shortest_path_lengths : t -> src:int -> float array
(** Single-source distances; [infinity] for unreachable nodes. *)

val path_distance_miles : t -> src:int -> dst:int -> float option
(** Shortest-path length only. *)

val is_connected : t -> bool
val pp : Format.formatter -> t -> unit
