type continent = Europe | North_america | South_america | Asia | Africa | Oceania

let continent_to_string = function
  | Europe -> "Europe"
  | North_america -> "North America"
  | South_america -> "South America"
  | Asia -> "Asia"
  | Africa -> "Africa"
  | Oceania -> "Oceania"

type t = {
  name : string;
  country : string;
  continent : continent;
  coord : Geo.coord;
  population : float;
}

let city name country continent lat lon population =
  { name; country; continent; coord = Geo.coord ~lat ~lon; population }

(* Coordinates are approximate city centers; populations are metro-area
   figures in millions, used only as relative traffic weights. *)
let all =
  [
    (* Europe *)
    city "London" "GB" Europe 51.51 (-0.13) 14.0;
    city "Manchester" "GB" Europe 53.48 (-2.24) 2.8;
    city "Dublin" "IE" Europe 53.35 (-6.26) 2.0;
    city "Paris" "FR" Europe 48.86 2.35 12.5;
    city "Lyon" "FR" Europe 45.76 4.84 2.3;
    city "Marseille" "FR" Europe 43.30 5.37 1.8;
    city "Amsterdam" "NL" Europe 52.37 4.90 2.9;
    city "Rotterdam" "NL" Europe 51.92 4.48 1.8;
    city "Brussels" "BE" Europe 50.85 4.35 2.1;
    city "Frankfurt" "DE" Europe 50.11 8.68 2.7;
    city "Berlin" "DE" Europe 52.52 13.41 4.7;
    city "Munich" "DE" Europe 48.14 11.58 2.9;
    city "Hamburg" "DE" Europe 53.55 9.99 3.3;
    city "Dusseldorf" "DE" Europe 51.23 6.77 1.6;
    city "Zurich" "CH" Europe 47.37 8.54 1.5;
    city "Geneva" "CH" Europe 46.20 6.14 0.6;
    city "Vienna" "AT" Europe 48.21 16.37 2.9;
    city "Prague" "CZ" Europe 50.08 14.44 2.7;
    city "Warsaw" "PL" Europe 52.23 21.01 3.1;
    city "Krakow" "PL" Europe 50.06 19.94 1.8;
    city "Budapest" "HU" Europe 47.50 19.04 3.0;
    city "Bucharest" "RO" Europe 44.43 26.10 2.3;
    city "Sofia" "BG" Europe 42.70 23.32 1.7;
    city "Athens" "GR" Europe 37.98 23.73 3.6;
    city "Rome" "IT" Europe 41.90 12.50 4.3;
    city "Milan" "IT" Europe 45.46 9.19 4.3;
    city "Madrid" "ES" Europe 40.42 (-3.70) 6.7;
    city "Barcelona" "ES" Europe 41.39 2.17 5.6;
    city "Lisbon" "PT" Europe 38.72 (-9.14) 2.9;
    city "Stockholm" "SE" Europe 59.33 18.07 2.4;
    city "Gothenburg" "SE" Europe 57.71 11.97 1.0;
    city "Oslo" "NO" Europe 59.91 10.75 1.5;
    city "Copenhagen" "DK" Europe 55.68 12.57 2.1;
    city "Helsinki" "FI" Europe 60.17 24.94 1.5;
    city "Kyiv" "UA" Europe 50.45 30.52 3.0;
    city "Istanbul" "TR" Europe 41.01 28.98 15.5;
    city "Moscow" "RU" Europe 55.76 37.62 12.5;
    (* North America *)
    city "New York" "US" North_america 40.71 (-74.01) 19.8;
    city "Boston" "US" North_america 42.36 (-71.06) 4.9;
    city "Washington" "US" North_america 38.91 (-77.04) 6.3;
    city "Atlanta" "US" North_america 33.75 (-84.39) 6.1;
    city "Miami" "US" North_america 25.76 (-80.19) 6.2;
    city "Chicago" "US" North_america 41.88 (-87.63) 9.5;
    city "Indianapolis" "US" North_america 39.77 (-86.16) 2.1;
    city "Kansas City" "US" North_america 39.10 (-94.58) 2.2;
    city "Houston" "US" North_america 29.76 (-95.37) 7.1;
    city "Dallas" "US" North_america 32.78 (-96.80) 7.6;
    city "Denver" "US" North_america 39.74 (-104.99) 3.0;
    city "Salt Lake City" "US" North_america 40.76 (-111.89) 1.3;
    city "Seattle" "US" North_america 47.61 (-122.33) 4.0;
    city "Sunnyvale" "US" North_america 37.37 (-122.04) 2.0;
    city "Los Angeles" "US" North_america 34.05 (-118.24) 13.2;
    city "Phoenix" "US" North_america 33.45 (-112.07) 4.9;
    city "Minneapolis" "US" North_america 44.98 (-93.27) 3.7;
    city "Ashburn" "US" North_america 39.04 (-77.49) 0.5;
    city "San Jose" "US" North_america 37.34 (-121.89) 2.0;
    city "Toronto" "CA" North_america 43.65 (-79.38) 6.3;
    city "Montreal" "CA" North_america 45.50 (-73.57) 4.3;
    city "Vancouver" "CA" North_america 49.28 (-123.12) 2.6;
    city "Mexico City" "MX" North_america 19.43 (-99.13) 21.8;
    (* South America *)
    city "Sao Paulo" "BR" South_america (-23.55) (-46.63) 22.0;
    city "Rio de Janeiro" "BR" South_america (-22.91) (-43.17) 13.5;
    city "Buenos Aires" "AR" South_america (-34.60) (-58.38) 15.2;
    city "Santiago" "CL" South_america (-33.45) (-70.67) 6.8;
    city "Bogota" "CO" South_america 4.71 (-74.07) 10.7;
    city "Lima" "PE" South_america (-12.05) (-77.04) 10.7;
    (* Asia *)
    city "Tokyo" "JP" Asia 35.68 139.69 37.4;
    city "Osaka" "JP" Asia 34.69 135.50 19.2;
    city "Seoul" "KR" Asia 37.57 126.98 25.5;
    city "Beijing" "CN" Asia 39.90 116.41 20.5;
    city "Shanghai" "CN" Asia 31.23 121.47 27.1;
    city "Hong Kong" "HK" Asia 22.32 114.17 7.5;
    city "Taipei" "TW" Asia 25.03 121.57 7.0;
    city "Singapore" "SG" Asia 1.35 103.82 5.9;
    city "Kuala Lumpur" "MY" Asia 3.14 101.69 8.0;
    city "Jakarta" "ID" Asia (-6.21) 106.85 10.6;
    city "Bangkok" "TH" Asia 13.76 100.50 10.7;
    city "Mumbai" "IN" Asia 19.08 72.88 20.4;
    city "Delhi" "IN" Asia 28.70 77.10 31.2;
    city "Chennai" "IN" Asia 13.08 80.27 11.2;
    city "Dubai" "AE" Asia 25.20 55.27 3.4;
    city "Tel Aviv" "IL" Asia 32.09 34.78 4.2;
    (* Africa *)
    city "Johannesburg" "ZA" Africa (-26.20) 28.05 10.0;
    city "Cape Town" "ZA" Africa (-33.92) 18.42 4.6;
    city "Cairo" "EG" Africa 30.04 31.24 21.3;
    city "Lagos" "NG" Africa 6.52 3.38 15.4;
    city "Nairobi" "KE" Africa (-1.29) 36.82 4.7;
    (* Oceania *)
    city "Sydney" "AU" Oceania (-33.87) 151.21 5.3;
    city "Melbourne" "AU" Oceania (-37.81) 144.96 5.1;
    city "Perth" "AU" Oceania (-31.95) 115.86 2.1;
    city "Auckland" "NZ" Oceania (-36.85) 174.76 1.7;
  ]

let by_name = Hashtbl.create 128

let () =
  List.iter
    (fun c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Cities: duplicate city name " ^ c.name);
      Hashtbl.add by_name c.name c)
    all

let find name =
  match Hashtbl.find_opt by_name name with
  | Some c -> c
  | None -> raise Not_found

let in_continent continent = List.filter (fun c -> c.continent = continent) all
let in_country country = List.filter (fun c -> c.country = country) all

let nearest coord =
  match all with
  | [] -> assert false
  | first :: rest ->
      let better best candidate =
        if Geo.distance_miles candidate.coord coord < Geo.distance_miles best.coord coord
        then candidate
        else best
      in
      List.fold_left better first rest

let same_city a b = String.equal a.name b.name
let same_country a b = String.equal a.country b.country
