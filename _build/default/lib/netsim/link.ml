type t = { a : int; b : int; length_miles : float; capacity_gbps : float }

let make ?(stretch = 1.0) ~capacity_gbps n1 n2 =
  if n1.Node.id = n2.Node.id then invalid_arg "Link.make: self-loop";
  if capacity_gbps <= 0. then invalid_arg "Link.make: non-positive capacity";
  if stretch < 1.0 then invalid_arg "Link.make: stretch < 1";
  {
    a = n1.Node.id;
    b = n2.Node.id;
    length_miles = stretch *. Node.distance_miles n1 n2;
    capacity_gbps;
  }

let other_end t id =
  if id = t.a then t.b
  else if id = t.b then t.a
  else invalid_arg "Link.other_end: node not an endpoint"

let connects t x y = (t.a = x && t.b = y) || (t.a = y && t.b = x)

let pp ppf t =
  Format.fprintf ppf "%d--%d (%.1f mi, %g Gbps)" t.a t.b t.length_miles
    t.capacity_gbps
