(** A small public-knowledge city gazetteer.

    Stands in for the proprietary PoP location data and the commercial
    GeoIP database: topology presets place PoPs at these cities and the
    synthetic GeoIP allocator assigns prefixes to them. Population
    weights (millions, metro-area order of magnitude) drive
    gravity-style traffic generation. *)

type continent = Europe | North_america | South_america | Asia | Africa | Oceania

val continent_to_string : continent -> string

type t = {
  name : string;
  country : string;  (** ISO-3166 alpha-2 code, e.g. ["DE"]. *)
  continent : continent;
  coord : Geo.coord;
  population : float;  (** Metro population in millions; traffic weight. *)
}

val all : t list
(** The full gazetteer (distinct [name] values). *)

val find : string -> t
(** Lookup by name. Raises [Not_found]. *)

val in_continent : continent -> t list
val in_country : string -> t list

val nearest : Geo.coord -> t
(** The gazetteer city closest to a coordinate. *)

val same_city : t -> t -> bool
val same_country : t -> t -> bool
