(** Geographic coordinates and great-circle distances.

    All of the paper's cost models take the distance a flow travels as
    their input; for the EU ISP that is the geographic distance between
    entry and exit PoPs, for the CDN the GeoIP distance to the
    destination, and for Internet2 the sum of traversed link lengths.
    Distances are returned in statute miles to match the paper's units. *)

type coord = { lat : float; lon : float }
(** Degrees; latitude in [\[-90, 90\]], longitude in [\[-180, 180\]]. *)

val coord : lat:float -> lon:float -> coord
(** Checked constructor. Raises [Invalid_argument] when out of range. *)

val earth_radius_miles : float

val distance_miles : coord -> coord -> float
(** Haversine great-circle distance. Symmetric, non-negative, and zero
    iff the coordinates coincide (up to rounding). *)

val distance_km : coord -> coord -> float

val midpoint : coord -> coord -> coord
(** Spherical midpoint of the great-circle segment. *)

val jitter : Numerics.Rng.t -> radius_miles:float -> coord -> coord
(** A point displaced by at most [radius_miles] in a uniformly random
    direction — used to scatter customer sites around a PoP's city. *)

val pp : Format.formatter -> coord -> unit
