(* Deterministic preset builders. The fixed seeds only affect metro-PoP
   jitter, never the backbone shape. *)

let metro_pops_per_major_city = 3
let metro_jitter_miles = 6.0

(* EU ISP: backbone cities in ring order (roughly geographic), chords, and
   extra metro PoPs in the biggest metros so that metro-local flows have
   small but non-zero distances. *)
let eu_backbone_cities =
  [
    "London"; "Amsterdam"; "Hamburg"; "Berlin"; "Warsaw"; "Prague"; "Vienna";
    "Budapest"; "Munich"; "Zurich"; "Milan"; "Lyon"; "Paris"; "Brussels";
    "Frankfurt"; "Dusseldorf";
  ]

let eu_chords =
  [
    ("London", "Paris"); ("Amsterdam", "Frankfurt"); ("Frankfurt", "Munich");
    ("Paris", "Frankfurt"); ("Berlin", "Frankfurt"); ("Vienna", "Munich");
    ("Milan", "Zurich"); ("Brussels", "Amsterdam"); ("London", "Amsterdam");
  ]

let eu_major_metros = [ "London"; "Paris"; "Frankfurt"; "Amsterdam"; "Milan" ]

let eu_isp () =
  let rng = Numerics.Rng.create 20110815 in
  let backbone = List.map Cities.find eu_backbone_cities in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let core_nodes =
    List.map
      (fun (city : Cities.t) ->
        Node.make ~id:(fresh_id ()) ~name:(city.name ^ "-core") ~kind:Node.Pop ~city)
      backbone
  in
  let core_by_city = Hashtbl.create 32 in
  List.iter
    (fun (n : Node.t) -> Hashtbl.add core_by_city n.city.Cities.name n)
    core_nodes;
  let metro_nodes =
    List.concat_map
      (fun metro ->
        let city = Cities.find metro in
        List.init metro_pops_per_major_city (fun k ->
            let coord = Geo.jitter rng ~radius_miles:metro_jitter_miles city.coord in
            Node.make_at ~id:(fresh_id ())
              ~name:(Printf.sprintf "%s-metro%d" city.name (k + 1))
              ~kind:Node.Pop ~city ~coord))
      eu_major_metros
  in
  let ring_links =
    let arr = Array.of_list core_nodes in
    let n = Array.length arr in
    List.init n (fun i -> Link.make ~capacity_gbps:100. arr.(i) arr.((i + 1) mod n))
  in
  let chord_links =
    List.map
      (fun (a, b) ->
        Link.make ~capacity_gbps:100. (Hashtbl.find core_by_city a)
          (Hashtbl.find core_by_city b))
      eu_chords
  in
  let metro_links =
    List.map
      (fun (metro : Node.t) ->
        Link.make ~capacity_gbps:40.
          (Hashtbl.find core_by_city metro.city.Cities.name)
          metro)
      metro_nodes
  in
  Topology.of_nodes_links ~name:"eu_isp" (core_nodes @ metro_nodes)
    (ring_links @ chord_links @ metro_links)

(* CDN: datacenters on six continents. The overlay is a gateway-and-spoke
   long-haul mesh: regional sites attach to their continent's gateway and
   gateways are fully meshed. *)
let cdn_sites =
  [
    (* (city, is_gateway) *)
    ("Ashburn", true); ("New York", false); ("Chicago", false);
    ("Dallas", false); ("Los Angeles", false); ("Seattle", false);
    ("Miami", false); ("Toronto", false); ("Mexico City", false);
    ("London", true); ("Frankfurt", false); ("Amsterdam", false);
    ("Paris", false); ("Madrid", false); ("Stockholm", false);
    ("Warsaw", false); ("Sao Paulo", true); ("Buenos Aires", false);
    ("Santiago", false); ("Singapore", true); ("Tokyo", false);
    ("Hong Kong", false); ("Mumbai", false); ("Seoul", false);
    ("Sydney", true); ("Auckland", false); ("Johannesburg", true);
    ("Cairo", false);
  ]

let cdn () =
  let nodes =
    List.mapi
      (fun id (name, _) ->
        let city = Cities.find name in
        Node.make ~id ~name:(city.name ^ "-dc") ~kind:Node.Datacenter ~city)
      cdn_sites
  in
  let gateways =
    List.filteri (fun i _ -> snd (List.nth cdn_sites i)) nodes
  in
  let gateway_of (n : Node.t) =
    let nearest best candidate =
      if
        Node.distance_miles candidate n < Node.distance_miles best n
      then candidate
      else best
    in
    match gateways with
    | [] -> assert false
    | g :: gs -> List.fold_left nearest g gs
  in
  let spoke_links =
    List.filter_map
      (fun n ->
        let g = gateway_of n in
        if g.Node.id = n.Node.id then None
        else Some (Link.make ~capacity_gbps:400. g n))
      nodes
  in
  let rec mesh acc = function
    | [] -> acc
    | g :: rest ->
        let acc =
          List.fold_left
            (fun acc g' -> Link.make ~capacity_gbps:1000. g g' :: acc)
            acc rest
        in
        mesh acc rest
  in
  Topology.of_nodes_links ~name:"cdn" nodes (mesh spoke_links gateways)

(* Internet2 (Abilene): the historical 11-PoP research backbone. *)
let abilene_cities =
  [
    "Seattle"; "Sunnyvale"; "Los Angeles"; "Denver"; "Kansas City"; "Houston";
    "Chicago"; "Indianapolis"; "Atlanta"; "Washington"; "New York";
  ]

let abilene_links =
  [
    ("Seattle", "Sunnyvale"); ("Seattle", "Denver"); ("Sunnyvale", "Los Angeles");
    ("Sunnyvale", "Denver"); ("Los Angeles", "Houston"); ("Denver", "Kansas City");
    ("Kansas City", "Houston"); ("Kansas City", "Indianapolis");
    ("Houston", "Atlanta"); ("Chicago", "Indianapolis"); ("Chicago", "New York");
    ("Indianapolis", "Atlanta"); ("Atlanta", "Washington");
    ("Washington", "New York");
  ]

let internet2 () =
  let nodes =
    List.mapi
      (fun id name ->
        let city = Cities.find name in
        Node.make ~id ~name:(city.name ^ "-i2") ~kind:Node.Pop ~city)
      abilene_cities
  in
  let by_city = Hashtbl.create 16 in
  List.iter (fun (n : Node.t) -> Hashtbl.add by_city n.city.Cities.name n) nodes;
  let links =
    List.map
      (fun (a, b) ->
        Link.make ~capacity_gbps:10. (Hashtbl.find by_city a) (Hashtbl.find by_city b))
      abilene_links
  in
  Topology.of_nodes_links ~name:"internet2" nodes links

let all_names = [ "eu_isp"; "cdn"; "internet2" ]

let by_name = function
  | "eu_isp" -> eu_isp ()
  | "cdn" -> cdn ()
  | "internet2" -> internet2 ()
  | other -> invalid_arg ("Presets.by_name: unknown preset " ^ other)
