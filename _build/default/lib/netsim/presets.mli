(** The three evaluation networks of the paper, rebuilt from public
    knowledge.

    - {!eu_isp}: a European transit ISP serving business customers —
      dense metro PoPs (several per major city) on a national/continental
      backbone, so most traffic can stay local (Table 1: 54 demand-weighted
      miles).
    - {!cdn}: a global content distribution network — datacenters on six
      continents connected by a long-haul overlay (Table 1: 1988 miles).
    - {!internet2}: the Abilene-style US research backbone with its
      historical 11 PoPs and link map (Table 1: 660 miles).

    All presets are deterministic (internal fixed seeds). *)

val eu_isp : unit -> Topology.t
val cdn : unit -> Topology.t
val internet2 : unit -> Topology.t

val by_name : string -> Topology.t
(** ["eu_isp"], ["cdn"] or ["internet2"]. Raises [Invalid_argument]
    otherwise. *)

val all_names : string list
