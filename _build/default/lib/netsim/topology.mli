(** Topology builders.

    A topology couples a {!Graph.t} with the roles its nodes play. The
    builders here produce the generic shapes (ring, star, random
    geometric) used in tests and ablations; {!Presets} assembles the
    three evaluation networks from them. *)

type t = {
  name : string;
  graph : Graph.t;
  pops : Node.t list;  (** Nodes with kind [Pop] or [Datacenter]. *)
}

val of_nodes_links : name:string -> Node.t list -> Link.t list -> t
(** Checked constructor; requires a connected graph. *)

val ring : name:string -> capacity_gbps:float -> Cities.t list -> t
(** PoPs in the given city order, connected in a cycle (or a single edge
    for two cities). Requires at least two cities. *)

val star : name:string -> capacity_gbps:float -> hub:Cities.t -> Cities.t list -> t
(** A hub PoP connected to one PoP per listed city. *)

val full_mesh : name:string -> capacity_gbps:float -> Cities.t list -> t

val waxman :
  name:string ->
  rng:Numerics.Rng.t ->
  capacity_gbps:float ->
  alpha:float ->
  beta:float ->
  Cities.t list ->
  t
(** Waxman random geometric graph: cities become PoPs and each pair is
    linked with probability [alpha * exp (-d / (beta * max_d))]. A
    spanning backbone (nearest-neighbor chain) is added first so the
    result is always connected. [alpha], [beta] in [(0, 1]]. *)

val distance_matrix : t -> float array array
(** Shortest-path distances between every pair of PoPs, indexed by
    position in [pops]. *)

val pop_by_city : t -> string -> Node.t
(** First PoP located in the named city. Raises [Not_found]. *)
