type kind = Pop | Ixp | Datacenter | Customer_site

let kind_to_string = function
  | Pop -> "pop"
  | Ixp -> "ixp"
  | Datacenter -> "datacenter"
  | Customer_site -> "customer"

type t = {
  id : int;
  name : string;
  kind : kind;
  city : Cities.t;
  coord : Geo.coord;
}

let make_at ~id ~name ~kind ~city ~coord =
  if id < 0 then invalid_arg "Node.make: negative id";
  { id; name; kind; city; coord }

let make ~id ~name ~kind ~city = make_at ~id ~name ~kind ~city ~coord:city.Cities.coord
let distance_miles a b = Geo.distance_miles a.coord b.coord

let pp ppf t =
  Format.fprintf ppf "#%d %s (%s, %s)" t.id t.name (kind_to_string t.kind)
    t.city.Cities.name
