(** Least-squares curve fitting.

    Figure 6 of the paper fits a concave distance-to-price curve
    [y = a log_b x + c] to ITU and NTT leased-line price sheets. That
    family is over-parameterized ([a log_b x = (a / ln b) ln x]), so the
    canonical fit here is the log-linear model [y = k ln x + c]; helpers
    convert to the paper's [a, b, c] presentation for a chosen base. *)

type linear = { slope : float; intercept : float; r2 : float }

val linear : xs:float array -> ys:float array -> linear
(** Ordinary least squares [y = slope * x + intercept] with the
    coefficient of determination. Requires [>= 2] points and
    non-degenerate [xs]. *)

type log_curve = { k : float; c : float; r2 : float }
(** [y = k ln x + c]. *)

val log_linear : xs:float array -> ys:float array -> log_curve
(** Least squares in [ln x]. Requires all [xs > 0]. *)

val log_curve_eval : log_curve -> float -> float

type log_base_curve = { a : float; b : float; c : float }
(** The paper's presentation [y = a log_b x + c]. *)

val to_base : log_curve -> base:float -> log_base_curve
(** [to_base fit ~base] rewrites [k ln x + c] as [a log_base x + c] with
    [a = k ln base]. Requires [base > 0] and [base <> 1]. *)

val of_base : log_base_curve -> log_curve
(** Inverse of {!to_base} (with [r2 = nan]). *)

val r2 : predicted:float array -> observed:float array -> float
(** Coefficient of determination of arbitrary predictions. *)
