(** Small dense-vector helpers for the gradient-based optimizers.

    Vectors are plain [float array]s; all operations allocate fresh
    results unless suffixed [_inplace]. *)

val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val scale : float -> float array -> float array
val dot : float array -> float array -> float
val norm2 : float array -> float
(** Euclidean norm. *)

val axpy_inplace : float -> float array -> float array -> unit
(** [axpy_inplace a x y] sets [y := a*x + y]. *)

val map2 : (float -> float -> float) -> float array -> float array -> float array
val linf_dist : float array -> float array -> float
(** Max absolute componentwise difference. *)
