let check_lengths name x y =
  if Array.length x <> Array.length y then invalid_arg (name ^ ": length mismatch")

let map2 f x y =
  check_lengths "Vec.map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y
let scale a x = Array.map (fun v -> a *. v) x

let dot x y =
  check_lengths "Vec.dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let axpy_inplace a x y =
  check_lengths "Vec.axpy_inplace" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let linf_dist x y =
  check_lengths "Vec.linf_dist" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Stdlib.max !acc (abs_float (x.(i) -. y.(i)))
  done;
  !acc
