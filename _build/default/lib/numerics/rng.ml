(* Splitmix64 (Steele, Lea, Flood 2014). Chosen over [Random] for
   splittability and stability across OCaml releases. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

(* 53 high-quality bits -> float in [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t lo hi =
  if not (lo <= hi) then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let limit = max_int - (max_int mod n) in
    if v >= limit then draw () else v mod n
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
