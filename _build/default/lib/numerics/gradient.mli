(** Multivariate optimization.

    The logit bundle-pricing problem maximizes a smooth concave-ish profit
    over a handful of bundle prices; the calibrator minimizes a loss over
    two or three workload knobs. Two methods cover both: projected
    gradient ascent with backtracking line search, and derivative-free
    Nelder-Mead. *)

type result = {
  x : float array;  (** Final point. *)
  value : float;  (** Objective value at [x]. *)
  iterations : int;
  converged : bool;
}

val ascent :
  ?step0:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?project:(float array -> float array) ->
  f:(float array -> float) ->
  grad:(float array -> float array) ->
  float array ->
  result
(** [ascent ~f ~grad x0] maximizes [f] by gradient ascent with a
    backtracking (Armijo) line search. [project] is applied after every
    trial step, e.g. to keep prices above cost. Convergence is declared
    when the projected step is smaller than [tol] (default [1e-9])
    relative to the point. *)

val descent :
  ?step0:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?project:(float array -> float array) ->
  f:(float array -> float) ->
  grad:(float array -> float array) ->
  float array ->
  result
(** Minimization counterpart of {!ascent}. *)

val numeric_grad : ?eps:float -> (float array -> float) -> float array -> float array
(** Central-difference gradient, for cross-checking analytic gradients in
    tests and for objectives without closed-form derivatives. *)

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?scale:float ->
  f:(float array -> float) ->
  float array ->
  result
(** Derivative-free minimization of [f] starting from a simplex around
    the initial point with spread [scale] (default [0.1] relative). *)
