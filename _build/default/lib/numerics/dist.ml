let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  (* 1 - u avoids log 0. *)
  -.log (1. -. Rng.float rng) /. rate

let normal rng ~mean ~stddev =
  if stddev < 0. then invalid_arg "Dist.normal: stddev must be >= 0";
  let u1 = 1. -. Rng.float rng and u2 = Rng.float rng in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let lognormal_of_mean_cv rng ~mean ~cv =
  if mean <= 0. then invalid_arg "Dist.lognormal_of_mean_cv: mean must be positive";
  if cv < 0. then invalid_arg "Dist.lognormal_of_mean_cv: cv must be >= 0";
  if cv = 0. then mean
  else
    let sigma2 = log (1. +. (cv *. cv)) in
    let mu = log mean -. (sigma2 /. 2.) in
    lognormal rng ~mu ~sigma:(sqrt sigma2)

let pareto rng ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Dist.pareto: shape and scale must be positive";
  scale /. ((1. -. Rng.float rng) ** (1. /. shape))

let gumbel rng ~mu ~beta =
  if beta <= 0. then invalid_arg "Dist.gumbel: beta must be positive";
  let u = 1. -. Rng.float rng in
  mu -. (beta *. log (-.log u))

let categorical rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = ref 0. in
  for i = 0 to n - 1 do
    if weights.(i) < 0. then invalid_arg "Dist.categorical: negative weight";
    total := !total +. weights.(i)
  done;
  if !total <= 0. then invalid_arg "Dist.categorical: weights sum to zero";
  let target = Rng.float rng *. !total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let zipf rng ~n = categorical rng n

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_weights: n must be positive";
  Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s))

let dirichlet_like rng ~n ~concentration =
  if n <= 0 then invalid_arg "Dist.dirichlet_like: n must be positive";
  if concentration <= 0. then
    invalid_arg "Dist.dirichlet_like: concentration must be positive";
  (* Exponential draws raised to 1/concentration approximate Gamma-driven
     Dirichlet spikiness: small concentration -> a few large shares. *)
  let raw =
    Array.init n (fun _ ->
        exponential rng ~rate:1. ** (1. /. concentration))
  in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun x -> x /. total) raw
