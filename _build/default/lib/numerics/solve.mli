(** Scalar root finding and one-dimensional optimization.

    Used by the logit pricing machinery (the common-margin equation
    [x - 1 = S e^(-x)]) and by workload calibration. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]]. Requires
    [f lo] and [f hi] to have opposite (or zero) signs. [tol] bounds the
    bracket width (default [1e-12] relative to the bracket). *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** Newton-Raphson from an initial guess. Raises [Failure] if it does not
    converge within [max_iter] (default 100) iterations. *)

val newton_bisect :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float ->
  float
(** [newton_bisect ~f ~df lo hi] — safeguarded Newton: Newton steps
    clipped to a maintained bisection bracket [\[lo, hi\]], so it converges whenever [f] changes sign on the
    bracket, with Newton-rate convergence near the root. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [golden_section ~f lo hi] returns an approximate minimizer of a
    unimodal [f] on [\[lo, hi\]]. *)

val maximize_scalar :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Golden-section maximization of a unimodal [f]. *)
