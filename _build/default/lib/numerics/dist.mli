(** Samplers for the probability distributions used by the workload
    generator and the demand models.

    All samplers take an explicit {!Rng.t} and are pure functions of the
    generator state. Parameter conventions follow the usual textbook
    definitions; each sampler documents its mean where it is finite. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] with [rate > 0]; mean [1/rate]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box-Muller. [stddev >= 0]. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with parameters [mu], [sigma]. Mean
    [exp (mu + sigma^2/2)]. *)

val lognormal_of_mean_cv : Rng.t -> mean:float -> cv:float -> float
(** Lognormal parameterized directly by its mean and coefficient of
    variation: [sigma^2 = ln (1 + cv^2)], [mu = ln mean - sigma^2/2].
    Requires [mean > 0] and [cv >= 0]. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto type I: support [\[scale, inf)], P(X > x) = (scale/x)^shape.
    Heavy-tailed demand. Requires [shape > 0], [scale > 0]. *)

val gumbel : Rng.t -> mu:float -> beta:float -> float
(** Standard Gumbel (type-I extreme value), the idiosyncratic preference
    noise of the logit model. Requires [beta > 0]. *)

val zipf : Rng.t -> n:float array -> int
(** Alias for {!categorical}; kept for discoverability when the weights
    are Zipfian ranks. *)

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] draws an index with probability
    proportional to [weights.(i)]. Requires at least one strictly positive
    weight and no negative weights. *)

val zipf_weights : n:int -> s:float -> float array
(** [zipf_weights ~n ~s] is the (unnormalized) Zipf weight vector
    [1/k^s] for ranks [1..n]. *)

val dirichlet_like : Rng.t -> n:int -> concentration:float -> float array
(** [dirichlet_like rng ~n ~concentration] draws a random point on the
    n-simplex by normalizing Gamma-like draws; low concentration yields
    spiky (high-CV) vectors. Implemented with exponential-power draws to
    avoid a full Gamma sampler. *)
