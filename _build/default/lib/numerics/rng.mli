(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator based on splitmix64. Every
    stochastic component in this repository takes an explicit [t] so that
    workloads, tests and benchmarks are reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will continue producing the
    same stream as [t] would from this point. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t] once. Useful to give each subsystem its own stream so
    that adding draws in one place does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
