let default_tol = 1e-12

let bisect ?(tol = default_tol) ?(max_iter = 200) ~f lo hi =
  if lo > hi then invalid_arg "Solve.bisect: lo > hi";
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then
    invalid_arg "Solve.bisect: f(lo) and f(hi) have the same sign"
  else
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo <= tol *. (1. +. abs_float mid) || iter >= max_iter then mid
      else
        let fmid = f mid in
        if fmid = 0. then mid
        else if flo *. fmid < 0. then loop lo mid flo (iter + 1)
        else loop mid hi fmid (iter + 1)
    in
    loop lo hi flo 0

let newton ?(tol = default_tol) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x iter =
    if iter >= max_iter then failwith "Solve.newton: did not converge"
    else
      let fx = f x in
      let dfx = df x in
      if dfx = 0. then failwith "Solve.newton: zero derivative"
      else
        let x' = x -. (fx /. dfx) in
        if abs_float (x' -. x) <= tol *. (1. +. abs_float x') then x'
        else loop x' (iter + 1)
  in
  loop x0 0

let newton_bisect ?(tol = default_tol) ?(max_iter = 200) ~f ~df lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then
    invalid_arg "Solve.newton_bisect: no sign change on bracket"
  else
    (* Keep [lo, hi] a bracket; take Newton steps when they stay inside,
       otherwise bisect. *)
    let rec loop lo hi flo x iter =
      if iter >= max_iter then x
      else
        let fx = f x in
        if fx = 0. then x
        else
          let lo, hi, flo = if flo *. fx < 0. then (lo, x, flo) else (x, hi, fx) in
          if hi -. lo <= tol *. (1. +. abs_float x) then 0.5 *. (lo +. hi)
          else
            let dfx = df x in
            let x' =
              if dfx = 0. then 0.5 *. (lo +. hi)
              else
                let candidate = x -. (fx /. dfx) in
                if candidate <= lo || candidate >= hi then 0.5 *. (lo +. hi)
                else candidate
            in
            loop lo hi flo x' (iter + 1)
    in
    loop lo hi flo (0.5 *. (lo +. hi)) 0

let inv_phi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  if lo > hi then invalid_arg "Solve.golden_section: lo > hi";
  let rec loop a b c d fc fd iter =
    if b -. a <= tol *. (1. +. abs_float a +. abs_float b) || iter >= max_iter
    then 0.5 *. (a +. b)
    else if fc < fd then
      (* Minimum lies in [a, d]; reuse c as the new upper probe. *)
      let b = d in
      let d = c and fd = fc in
      let c = b -. (inv_phi *. (b -. a)) in
      loop a b c d (f c) fd (iter + 1)
    else
      (* Minimum lies in [c, b]; reuse d as the new lower probe. *)
      let a = c in
      let c = d and fc = fd in
      let d = a +. (inv_phi *. (b -. a)) in
      loop a b c d fc (f d) (iter + 1)
  in
  let c = hi -. (inv_phi *. (hi -. lo)) in
  let d = lo +. (inv_phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) 0

let maximize_scalar ?tol ?max_iter ~f lo hi =
  golden_section ?tol ?max_iter ~f:(fun x -> -.f x) lo hi
