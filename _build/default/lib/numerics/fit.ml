type linear = { slope : float; intercept : float; r2 : float }

let r2 ~predicted ~observed =
  if Array.length predicted <> Array.length observed then
    invalid_arg "Fit.r2: length mismatch";
  let mean_obs = Stats.mean observed in
  let residuals =
    Array.map2 (fun p o -> (o -. p) *. (o -. p)) predicted observed
  in
  let deviations = Array.map (fun o -> (o -. mean_obs) *. (o -. mean_obs)) observed in
  let ss_res = Stats.sum residuals and ss_tot = Stats.sum deviations in
  if ss_tot = 0. then if ss_res = 0. then 1. else Float.neg_infinity
  else 1. -. (ss_res /. ss_tot)

let linear ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Fit.linear: length mismatch";
  if n < 2 then invalid_arg "Fit.linear: need at least two points";
  let mx = Stats.mean xs and my = Stats.mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  if !sxx = 0. then invalid_arg "Fit.linear: degenerate xs";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let predicted = Array.map (fun x -> (slope *. x) +. intercept) xs in
  { slope; intercept; r2 = r2 ~predicted ~observed:ys }

type log_curve = { k : float; c : float; r2 : float }

let log_linear ~xs ~ys =
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Fit.log_linear: xs must be positive")
    xs;
  let { slope; intercept; r2 } = linear ~xs:(Array.map log xs) ~ys in
  { k = slope; c = intercept; r2 }

let log_curve_eval { k; c; _ } x = (k *. log x) +. c

type log_base_curve = { a : float; b : float; c : float }

let to_base { k; c; _ } ~base =
  if base <= 0. || base = 1. then invalid_arg "Fit.to_base: invalid base";
  { a = k *. log base; b = base; c }

let of_base { a; b; c } =
  if b <= 0. || b = 1. then invalid_arg "Fit.of_base: invalid base";
  { k = a /. log b; c; r2 = Float.nan }
