lib/numerics/rng.mli:
