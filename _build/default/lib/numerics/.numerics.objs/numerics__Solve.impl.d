lib/numerics/solve.ml:
