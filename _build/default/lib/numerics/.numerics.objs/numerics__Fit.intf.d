lib/numerics/fit.mli:
