lib/numerics/gradient.mli:
