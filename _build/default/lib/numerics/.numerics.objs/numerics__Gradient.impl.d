lib/numerics/gradient.ml: Array Float Stdlib Vec
