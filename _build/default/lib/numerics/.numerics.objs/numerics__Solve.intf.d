lib/numerics/solve.mli:
