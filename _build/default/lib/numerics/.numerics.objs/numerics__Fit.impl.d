lib/numerics/fit.ml: Array Float Stats
