lib/numerics/vec.mli:
