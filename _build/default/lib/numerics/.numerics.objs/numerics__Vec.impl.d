lib/numerics/vec.ml: Array Stdlib
