(** Profit-maximizing prices for a given bundling, and the resulting
    market outcome.

    Under CED, bundle demands are separable so each bundle's price is
    the closed form of Eq. 5. Under logit, bundles are first collapsed
    to equivalent goods (Eqs. 10-11) and priced at the common optimal
    margin (Eq. 9, via the scalar solve in {!Logit.optimize}). *)

type outcome = {
  bundles : Bundle.t;
  bundle_prices : float array;  (** One price per bundle. *)
  flow_prices : float array;  (** Per flow: its bundle's price. *)
  flow_demands : float array;  (** Demand at the new prices. *)
  profit : float;
  revenue : float;
  delivery_cost : float;
  consumer_surplus : float;
}

val welfare : outcome -> float
(** Profit plus consumer surplus. *)

val evaluate : Market.t -> Bundle.t -> outcome
(** Optimal prices for the partition. *)

val evaluate_at_prices : Market.t -> Bundle.t -> float array -> outcome
(** Outcome at externally chosen bundle prices (one per bundle) —
    used by the ablations that cross-check closed-form pricing against
    numeric optimization. *)

val blended : Market.t -> outcome
(** The single-bundle outcome. By construction of the fit, its optimal
    price is the observed [p0] (a property the tests assert). *)

val max_profit : Market.t -> float
(** Profit with per-flow (infinitely fine) pricing — the [pi_max] of the
    profit-capture metric. *)

val original_profit : Market.t -> float
(** Profit at the blended rate — the [pi_original] of profit capture. *)
