type tier = { commit_mbps : float; rate : float }
type menu = tier array

let tier ~commit_mbps ~rate =
  if commit_mbps < 0. then invalid_arg "Commit.tier: negative commit";
  if not (rate > 0.) then invalid_arg "Commit.tier: rate must be positive";
  { commit_mbps; rate }

type choice = {
  tier_index : int option;
  usage_mbps : float;
  billed_mbps : float;
  payment : float;
  surplus : float;
}

let opt_out = { tier_index = None; usage_mbps = 0.; billed_mbps = 0.; payment = 0.; surplus = 0. }

let choice_for ~alpha ~v index t =
  let usage = Ced.demand ~alpha ~v t.rate in
  let billed = Float.max t.commit_mbps usage in
  let payment = billed *. t.rate in
  (* Gross utility of consuming [usage] minus the payment; the commit
     shortfall is pure loss to the customer. *)
  let surplus = Ced.consumer_surplus ~alpha ~v t.rate -. ((billed -. usage) *. t.rate) in
  { tier_index = Some index; usage_mbps = usage; billed_mbps = billed; payment; surplus }

let choose ~alpha ~v menu =
  if Array.length menu = 0 then invalid_arg "Commit.choose: empty menu";
  let best = ref opt_out in
  Array.iteri
    (fun index t ->
      let candidate = choice_for ~alpha ~v index t in
      if candidate.surplus > !best.surplus +. 1e-12 then best := candidate)
    menu;
  !best

type outcome = {
  profit : float;
  revenue : float;
  delivery_cost : float;
  consumer_surplus : float;
  tier_counts : int array;
  opted_out : int;
}

let evaluate ~alpha ~unit_cost ~valuations menu =
  if unit_cost < 0. then invalid_arg "Commit.evaluate: negative unit cost";
  let tier_counts = Array.make (Array.length menu) 0 in
  let opted_out = ref 0 in
  let revenue = ref 0. and delivery_cost = ref 0. and surplus = ref 0. in
  Array.iter
    (fun v ->
      let c = choose ~alpha ~v menu in
      (match c.tier_index with
      | None -> incr opted_out
      | Some i -> tier_counts.(i) <- tier_counts.(i) + 1);
      revenue := !revenue +. c.payment;
      delivery_cost := !delivery_cost +. (unit_cost *. c.usage_mbps);
      surplus := !surplus +. c.surplus)
    valuations;
  {
    profit = !revenue -. !delivery_cost;
    revenue = !revenue;
    delivery_cost = !delivery_cost;
    consumer_surplus = !surplus;
    tier_counts;
    opted_out = !opted_out;
  }

let enforce_decreasing rates =
  (* A volume discount: later (higher-commit) tiers cannot be dearer. *)
  let out = Array.copy rates in
  for i = 1 to Array.length out - 1 do
    out.(i) <- Float.min out.(i) out.(i - 1)
  done;
  out

let optimize_rates ~alpha ~unit_cost ~valuations ~commits =
  Ced.check_alpha alpha;
  if Array.length commits = 0 then invalid_arg "Commit.optimize_rates: no commit levels";
  let menu_of log_rates =
    let rates = enforce_decreasing (Array.map exp log_rates) in
    Array.map2 (fun commit_mbps rate -> { commit_mbps; rate }) commits rates
  in
  let objective log_rates =
    -.(evaluate ~alpha ~unit_cost ~valuations (menu_of log_rates)).profit
  in
  (* Start every tier at the uniform monopoly rate. *)
  let p_star = Ced.optimal_price ~alpha ~c:(Float.max 1e-6 unit_cost) in
  let start = Array.map (fun _ -> log p_star) commits in
  let result = Numerics.Gradient.nelder_mead ~scale:0.3 ~max_iter:4000 ~f:objective start in
  menu_of result.Numerics.Gradient.x

let commit_quantiles ~alpha ~p0 ~valuations ~n =
  if n < 1 then invalid_arg "Commit.commit_quantiles: n must be >= 1";
  let demands = Array.map (fun v -> Ced.demand ~alpha ~v p0) valuations in
  Array.init n (fun i ->
      if i = 0 then 0.
      else Numerics.Stats.quantile demands (float_of_int i /. float_of_int n))
