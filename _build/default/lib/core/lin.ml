let check_epsilon epsilon =
  if not (epsilon > 1.) then invalid_arg "Lin: epsilon must be > 1"

let coefficients ~epsilon ~p0 ~q =
  check_epsilon epsilon;
  if not (p0 > 0. && q > 0.) then invalid_arg "Lin.coefficients: need p0 > 0, q > 0";
  let b = epsilon *. q /. p0 in
  (q *. (1. +. epsilon), b)

let demand ~a ~b p = Float.max 0. (a -. (b *. p))

let flow_profit ~a ~b ~c p = demand ~a ~b p *. (p -. c)

let optimal_price ~a ~b ~c =
  if not (b > 0.) then invalid_arg "Lin.optimal_price: b must be positive";
  (* Above the choke price a/b demand is zero; a flow whose cost exceeds
     the choke cannot be served at a profit, and its "optimal" price is
     the choke itself (zero demand, zero loss). *)
  Float.min ((a +. (b *. c)) /. (2. *. b)) (a /. b)

let potential_profit ~a ~b ~c =
  if not (b > 0.) then invalid_arg "Lin.potential_profit: b must be positive";
  let margin = a -. (b *. c) in
  if margin <= 0. then 0. else margin *. margin /. (4. *. b)

let bundle_price ~a_sum ~b_sum ~bc_sum =
  if not (b_sum > 0.) then invalid_arg "Lin.bundle_price: sum b must be positive";
  (* Clamp at the (common, under the fit) choke price a_sum / b_sum: a
     bundle whose weighted cost exceeds the choke earns zero at best. *)
  Float.min ((a_sum +. bc_sum) /. (2. *. b_sum)) (a_sum /. b_sum)

let bundle_profit ~a_sum ~b_sum ~bc_sum ~ac_sum ~price =
  (price *. a_sum) -. ac_sum -. (price *. price *. b_sum) +. (price *. bc_sum)

let gamma ~epsilon ~p0 ~demands ~rel_costs =
  check_epsilon epsilon;
  if Array.length demands <> Array.length rel_costs then
    invalid_arg "Lin.gamma: length mismatch";
  if Array.length demands = 0 then invalid_arg "Lin.gamma: empty market";
  (* Stationarity of sum (a_i - b_i P)(P - c_i) at p0 gives
     c_bar = p0 (epsilon - 1) / epsilon where c_bar is the b-weighted
     average cost; with c_i = gamma f_i this pins gamma. *)
  let b = Array.map (fun q -> epsilon *. q /. p0) demands in
  let bf = Array.map2 (fun bi f -> bi *. f) b rel_costs in
  p0 *. (epsilon -. 1.) /. epsilon *. Numerics.Stats.sum b /. Numerics.Stats.sum bf

let consumer_surplus ~a ~b p =
  if not (b > 0.) then invalid_arg "Lin.consumer_surplus: b must be positive";
  let q = demand ~a ~b p in
  q *. q /. (2. *. b)
