(** Traffic flows as the pricing model sees them.

    A flow is a destination-based traffic aggregate: the demand observed
    at the current blended price, the distance the traffic travels and
    the classification attributes the cost models need. Valuations and
    costs are {e derived} from these by {!Market.fit}; they are not part
    of the flow itself. *)

type locality = Metro | National | International

val locality_to_string : locality -> string

type t = {
  id : int;
  demand_mbps : float;  (** Observed demand at the blended price. *)
  distance_miles : float;
  locality : locality;
  on_net : bool;  (** Destination is a customer of the ISP. *)
}

val make :
  ?locality:locality ->
  ?on_net:bool ->
  id:int ->
  demand_mbps:float ->
  distance_miles:float ->
  unit ->
  t
(** [locality] defaults to a distance-threshold classification (metro
    under 10 miles, national under 100, the paper's EU ISP rule);
    [on_net] defaults to [false]. Raises [Invalid_argument] on negative
    demand or distance. *)

val classify_distance : float -> locality
(** The 10 / 100 mile thresholds of §3.3. *)

val demands : t array -> float array
val distances : t array -> float array
val total_demand_mbps : t array -> float

val pp : Format.formatter -> t -> unit
