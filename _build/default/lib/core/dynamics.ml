type config = {
  truth : Market.t;
  estimated_alpha : float;
  strategy : Strategy.t;
  n_bundles : int;
  rounds : int;
  damping : float;
}

type round = {
  index : int;
  flow_prices : float array;
  realized_demand : float array;
  true_profit : float;
  capture : float;
}

let validate c =
  (match c.truth.Market.spec with
  | Market.Ced -> ()
  | Market.Logit _ | Market.Linear _ ->
      invalid_arg "Dynamics.simulate: only CED ground truth is supported");
  if not (c.estimated_alpha > 1.) then
    invalid_arg "Dynamics.simulate: estimated_alpha must be > 1";
  if c.rounds < 0 then invalid_arg "Dynamics.simulate: negative rounds";
  if not (c.damping > 0. && c.damping <= 1.) then
    invalid_arg "Dynamics.simulate: damping out of (0, 1]"

let true_demand truth prices =
  Array.mapi
    (fun i p -> Ced.demand ~alpha:truth.Market.alpha ~v:truth.Market.valuations.(i) p)
    prices

let true_profit truth prices demands =
  let n = Market.n_flows truth in
  let terms =
    Array.init n (fun i -> demands.(i) *. (prices.(i) -. truth.Market.costs.(i)))
  in
  Numerics.Stats.sum terms

let simulate c =
  validate c;
  let truth = c.truth in
  let n = Market.n_flows truth in
  let ctx = Capture.context truth in
  let snapshot index flow_prices =
    let realized_demand = true_demand truth flow_prices in
    let profit = true_profit truth flow_prices realized_demand in
    {
      index;
      flow_prices;
      realized_demand;
      true_profit = profit;
      capture = Capture.value ctx profit;
    }
  in
  let initial = snapshot 0 (Array.make n truth.Market.p0) in
  let step (previous : round) index =
    (* The ISP re-fits flow valuations from what it observed, using its
       own elasticity belief, then re-bundles and re-prices. *)
    let estimated_valuations =
      Array.mapi
        (fun i q ->
          Ced.valuation_of_demand ~alpha:c.estimated_alpha ~p0:previous.flow_prices.(i) ~q)
        previous.realized_demand
    in
    let believed =
      Market.of_parameters ~spec:Market.Ced ~alpha:c.estimated_alpha
        ~p0:truth.Market.p0 ~valuations:estimated_valuations
        ~costs:(Array.copy truth.Market.costs) truth.Market.flows
    in
    let bundles = Strategy.apply c.strategy believed ~n_bundles:c.n_bundles in
    let target = (Pricing.evaluate believed bundles).Pricing.flow_prices in
    let flow_prices =
      Array.init n (fun i ->
          (c.damping *. target.(i)) +. ((1. -. c.damping) *. previous.flow_prices.(i)))
    in
    snapshot index flow_prices
  in
  let rec loop acc previous index =
    if index > c.rounds then List.rev acc
    else
      let r = step previous index in
      loop (r :: acc) r (index + 1)
  in
  loop [ initial ] initial 1

let converged ?(tol = 1e-6) rounds =
  match List.rev rounds with
  | last :: second_last :: _ ->
      let diff = Numerics.Vec.linf_dist last.flow_prices second_last.flow_prices in
      diff <= tol *. (1. +. Numerics.Vec.norm2 last.flow_prices)
  | _ -> false

let final_capture rounds =
  match List.rev rounds with
  | last :: _ -> last.capture
  | [] -> invalid_arg "Dynamics.final_capture: empty simulation"
