type period = { label : string; hours : int * int; weight : float }

(* Hourly diurnal weight of a shape, normalized to mean one — the same
   curve Netflow.synthesize spreads traffic with. *)
let hourly_weights (shape : Flowgen.Netflow.shape) =
  let raw =
    Array.init 24 (fun h ->
        1.
        +. shape.Flowgen.Netflow.diurnal_amplitude
           *. cos
                (2. *. Float.pi
                *. (float_of_int h -. shape.Flowgen.Netflow.peak_hour)
                /. 24.))
  in
  let mean = Numerics.Stats.mean raw in
  Array.map (fun w -> w /. mean) raw

let span_weight weights start stop =
  let total = ref 0. in
  for h = start to stop - 1 do
    total := !total +. weights.(h mod 24)
  done;
  !total /. float_of_int (stop - start)

let periods_of_shape shape ~n_periods =
  if n_periods < 1 || 24 mod n_periods <> 0 then
    invalid_arg "Peak.periods_of_shape: n_periods must divide 24";
  let weights = hourly_weights shape in
  let span = 24 / n_periods in
  Array.init n_periods (fun p ->
      let start = p * span in
      let stop = start + span in
      {
        label = Printf.sprintf "%02d-%02dh" start stop;
        hours = (start, stop);
        weight = span_weight weights start stop;
      })

let peak_offpeak shape =
  let weights = hourly_weights shape in
  let best_start = ref 0 and best = ref neg_infinity in
  for start = 0 to 23 do
    let w = span_weight weights start (start + 12) in
    if w > !best then begin
      best := w;
      best_start := start
    end
  done;
  let start = !best_start in
  [|
    {
      label = Printf.sprintf "peak %02d-%02dh" start ((start + 12) mod 24);
      hours = (start, start + 12);
      weight = !best;
    };
    {
      label = "off-peak";
      hours = (start + 12, start + 24);
      weight = span_weight weights (start + 12) (start + 24);
    };
  |]

type outcome = {
  single_price_profit : float;
  per_period_profit : float;
  gain : float;
  period_prices : (string * float array) list;
}

let evaluate ?(congestion_premium = 0.5) market strategy ~n_bundles periods =
  (match market.Market.spec with
  | Market.Ced -> ()
  | Market.Logit _ | Market.Linear _ -> invalid_arg "Peak.evaluate: CED markets only");
  if Array.length periods = 0 then invalid_arg "Peak.evaluate: no periods";
  if congestion_premium < 0. then invalid_arg "Peak.evaluate: negative premium";
  let alpha = market.Market.alpha in
  let bundles = Strategy.apply strategy market ~n_bundles in
  let member_vs = Bundle.gather bundles market.Market.valuations in
  let member_cs = Bundle.gather bundles market.Market.costs in
  let duration p = let start, stop = p.hours in float_of_int (stop - start) in
  let total_hours = Array.fold_left (fun acc p -> acc +. duration p) 0. periods in
  let frac p = duration p /. total_hours in
  (* Period demand q * w means period valuation v * w^(1/alpha); period
     cost carries the peak-load premium. *)
  let scaled_vs p =
    Array.map (Array.map (fun v -> v *. (p.weight ** (1. /. alpha)))) member_vs
  in
  let period_cost p c =
    c *. (1. +. (congestion_premium *. Float.max 0. (p.weight -. 1.)))
  in
  let period_cs p = Array.map (Array.map (period_cost p)) member_cs in
  let weighted_profit price_of =
    let acc = ref 0. in
    Array.iteri
      (fun pi p ->
        let vs = scaled_vs p and cs = period_cs p in
        let profit = ref 0. in
        Array.iteri
          (fun b v_members ->
            profit :=
              !profit
              +. Ced.bundle_profit ~alpha ~valuations:v_members ~costs:cs.(b)
                   ~price:(price_of pi b))
          vs;
        acc := !acc +. (frac p *. !profit))
      periods;
    !acc
  in
  (* Single price per bundle, optimal against the whole day: Eq. 5 with
     each flow's cost replaced by its demand-weighted day-average cost
     (profit is linear in the per-period demand scale). *)
  let base_prices =
    let weight_total =
      Array.fold_left (fun acc p -> acc +. (frac p *. p.weight)) 0. periods
    in
    Array.mapi
      (fun b vs ->
        let day_costs =
          Array.map
            (fun c ->
              let weighted =
                Array.fold_left
                  (fun acc p -> acc +. (frac p *. p.weight *. period_cost p c))
                  0. periods
              in
              weighted /. weight_total)
            member_cs.(b)
        in
        Ced.bundle_price ~alpha ~valuations:vs ~costs:day_costs)
      member_vs
  in
  let single_price_profit = weighted_profit (fun _ b -> base_prices.(b)) in
  (* Per-period prices: re-optimize each (period, bundle) cell. *)
  let period_price_table =
    Array.map
      (fun p ->
        let vs = scaled_vs p and cs = period_cs p in
        ( p.label,
          Array.mapi
            (fun b v_members ->
              Ced.bundle_price ~alpha ~valuations:v_members ~costs:cs.(b))
            vs ))
      periods
  in
  let per_period_profit =
    weighted_profit (fun pi b -> (snd period_price_table.(pi)).(b))
  in
  {
    single_price_profit;
    per_period_profit;
    gain = (per_period_profit -. single_price_profit) /. single_price_profit;
    period_prices = Array.to_list period_price_table;
  }
