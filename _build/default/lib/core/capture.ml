type context = { original : float; maximum : float }

let context market =
  {
    original = Pricing.original_profit market;
    maximum = Pricing.max_profit market;
  }

let headroom ctx = ctx.maximum -. ctx.original

let value ctx profit =
  let room = headroom ctx in
  if room <= 1e-12 *. (1. +. abs_float ctx.maximum) then
    invalid_arg "Capture.value: market has no profit headroom";
  (profit -. ctx.original) /. room

type point = { n_bundles : int; capture : float; profit : float }

let series market strategy ~bundle_counts =
  let ctx = context market in
  List.map
    (fun n_bundles ->
      let bundles = Strategy.apply strategy market ~n_bundles in
      let profit = (Pricing.evaluate market bundles).Pricing.profit in
      { n_bundles; capture = value ctx profit; profit })
    bundle_counts

let pp_point ppf p =
  Format.fprintf ppf "B=%d capture=%.3f profit=%.4g" p.n_bundles p.capture p.profit
