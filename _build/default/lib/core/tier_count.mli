(** Answering the title question: {e how many tiers?}

    The paper shows capture curves flattening by 3-4 bundles and argues
    informally that implementation overhead caps the useful tier count
    (§5.2: link-based accounting "grows significantly with the number of
    pricing levels"). This module closes that loop: give each tier an
    explicit monthly overhead and pick the count that maximizes {e net}
    profit.

    Overhead model, per month:
    [fixed + per_tier * B + per_flow * n] — the per-tier term covers the
    extra BGP sessions / virtual links / billing plumbing of link-based
    accounting; the per-flow term covers the collector of flow-based
    accounting (paid once, regardless of B). *)

type overhead = {
  fixed : float;
  per_tier : float;
  per_flow : float;
}

val overhead : ?fixed:float -> ?per_flow:float -> per_tier:float -> unit -> overhead
(** Defaults: [fixed = 0], [per_flow = 0]. Raises [Invalid_argument] on
    negative components. *)

val cost : overhead -> n_tiers:int -> n_flows:int -> float

type point = {
  n_bundles : int;
  gross_profit : float;
  overhead_cost : float;
  net_profit : float;
}

val series :
  Market.t -> Strategy.t -> overhead -> max_bundles:int -> point list
(** Net-profit curve for 1..max_bundles tiers. *)

val optimal :
  Market.t -> Strategy.t -> overhead -> max_bundles:int -> point
(** The net-profit-maximizing tier count (ties go to fewer tiers). *)

val break_even_overhead :
  Market.t -> Strategy.t -> from_bundles:int -> to_bundles:int -> float
(** The per-tier overhead at which adding tiers beyond [from_bundles]
    stops paying: [(gross(to) - gross(from)) / (to - from)]. Raises
    [Invalid_argument] unless [1 <= from < to]. *)
