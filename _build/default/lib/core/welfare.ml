type analysis = {
  profit : float;
  consumer_surplus : float;
  welfare : float;
  first_best_welfare : float;
  deadweight_loss : float;
  efficiency : float;
}

let first_best market =
  (* Marginal-cost pricing: one "bundle" per flow, priced at cost. *)
  let n = Market.n_flows market in
  let bundles = Bundle.singletons ~n_flows:n in
  Pricing.evaluate_at_prices market bundles (Array.copy market.Market.costs)

let analyze market (outcome : Pricing.outcome) =
  let fb = first_best market in
  let first_best_welfare = Pricing.welfare fb in
  let welfare = Pricing.welfare outcome in
  {
    profit = outcome.Pricing.profit;
    consumer_surplus = outcome.Pricing.consumer_surplus;
    welfare;
    first_best_welfare;
    deadweight_loss = first_best_welfare -. welfare;
    efficiency = welfare /. first_best_welfare;
  }

let of_strategy market strategy ~n_bundles =
  analyze market (Pricing.evaluate market (Strategy.apply strategy market ~n_bundles))

let series market strategy ~bundle_counts =
  List.map (fun b -> (b, of_strategy market strategy ~n_bundles:b)) bundle_counts

let pp_analysis ppf a =
  Format.fprintf ppf
    "profit %.4g, surplus %.4g, welfare %.4g (%.1f%% of first-best, DWL %.4g)"
    a.profit a.consumer_surplus a.welfare (100. *. a.efficiency) a.deadweight_loss
