(** Linear demand — a third demand family (extension).

    The paper evaluates under CED and logit and argues its results are
    robust because they agree across models; adding the textbook linear
    demand [q_i(p) = max 0 (a_i - b_i p)] tests that claim from outside
    the paper's own choices.

    Fitting follows the same §4.1 inversion. Observing [q_i] at the
    blended price [p0] fixes one parameter; the second comes from a
    point-elasticity assumption [epsilon = b_i p0 / q_i] shared by all
    flows (the linear analogue of CED's common alpha), giving
    [b_i = epsilon q_i / p0] and [a_i = q_i (1 + epsilon)]. Requires
    [epsilon > 1], otherwise the blended stationarity implies
    non-positive costs — exactly the CED constraint in new clothes.

    All formulas below assume prices within the positive-demand range;
    profit-maximizing prices always are (demand at the optimum equals
    [(a - b c) / 2], which is positive whenever the flow is worth
    serving). *)

val check_epsilon : float -> unit
(** Raises [Invalid_argument] unless [epsilon > 1]. *)

val coefficients : epsilon:float -> p0:float -> q:float -> float * float
(** [(a, b)] for a flow observed demanding [q] at [p0]. *)

val demand : a:float -> b:float -> float -> float
(** [max 0 (a - b p)]. *)

val flow_profit : a:float -> b:float -> c:float -> float -> float
val optimal_price : a:float -> b:float -> c:float -> float
(** [(a + b c) / (2 b)], clamped at the choke price [a / b]: a flow
    whose cost exceeds the choke cannot be served at a profit and is
    priced out (zero demand). Requires [b > 0]. *)

val potential_profit : a:float -> b:float -> c:float -> float
(** [(a - b c)^2 / (4 b)] when the flow is servable ([a > b c]), else
    [0] — profit at the flow's own optimal price. *)

val bundle_price :
  a_sum:float -> b_sum:float -> bc_sum:float -> float
(** The common price maximizing a bundle's summed profit:
    [(sum a + sum b c) / (2 sum b)], clamped at [sum a / sum b] (under
    the common-elasticity fit every member shares that choke price, so
    the clamp is exact). *)

val bundle_profit :
  a_sum:float -> b_sum:float -> bc_sum:float -> ac_sum:float -> price:float -> float
(** Summed profit at a common price from the bundle's sufficient
    statistics [sum a], [sum b], [sum b c], [sum a c]:
    [P sum_a - sum_ac - P^2 sum_b + P sum_bc]. *)

val gamma :
  epsilon:float -> p0:float -> demands:float array -> rel_costs:float array -> float
(** The scale making [p0] the blended optimum:
    [gamma = p0 (epsilon - 1)/epsilon * sum b / sum (b f(d))] with
    [b_i = epsilon q_i / p0]. *)

val consumer_surplus : a:float -> b:float -> float -> float
(** Triangle area [(a - b p)^2 / (2 b)] for [p] in the demand range. *)
