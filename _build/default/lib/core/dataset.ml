let locality_of = function
  | Flowgen.Geoip.Metro -> Flow.Metro
  | Flowgen.Geoip.National -> Flow.National
  | Flowgen.Geoip.International -> Flow.International

let of_flow (f : Flowgen.Workload.flow) ~demand_mbps =
  Flow.make ~locality:(locality_of f.locality) ~on_net:f.on_net ~id:f.id
    ~demand_mbps ~distance_miles:f.distance_miles ()

let of_workload (w : Flowgen.Workload.t) =
  Array.of_list (List.map (fun f -> of_flow f ~demand_mbps:f.Flowgen.Workload.mbps) w.flows)

let via_netflow ?(sampling_rate = 1000) ?shape ?(seed = 7) (w : Flowgen.Workload.t) =
  let rng = Numerics.Rng.create seed in
  let records = Flowgen.Netflow.synthesize ?shape ~rng (Flowgen.Workload.to_ground_truth w) in
  let sampler = Flowgen.Sampling.make sampling_rate in
  let sampled = Flowgen.Sampling.sample rng sampler records in
  let deduped = Flowgen.Dedup.dedup sampled in
  let aggregates = Flowgen.Demand.by_endpoint_pair deduped in
  let by_endpoints = Hashtbl.create 1024 in
  List.iter
    (fun (f : Flowgen.Workload.flow) ->
      Hashtbl.replace by_endpoints
        (Flowgen.Ipv4.to_int f.src_addr, Flowgen.Ipv4.to_int f.dst_addr)
        f)
    w.flows;
  let flows =
    List.filter_map
      (fun (a : Flowgen.Demand.aggregate) ->
        match
          Hashtbl.find_opt by_endpoints
            (Flowgen.Ipv4.to_int a.src, Flowgen.Ipv4.to_int a.dst)
        with
        | Some f when a.mbps > 0. -> Some (of_flow f ~demand_mbps:a.mbps)
        | Some _ | None -> None)
      aggregates
  in
  Array.of_list flows
