let check_alpha alpha =
  if not (alpha > 0.) then invalid_arg "Logit: alpha must be > 0"

let check_s0 s0 =
  if not (s0 > 0. && s0 < 1.) then invalid_arg "Logit: s0 must be in (0, 1)"

let check_lengths valuations prices =
  if Array.length valuations <> Array.length prices then
    invalid_arg "Logit: array length mismatch";
  if Array.length valuations = 0 then invalid_arg "Logit: empty flow set"

type fit = { valuations : float array; k : float; s0 : float; p0 : float }

let fit_valuations ~alpha ~p0 ~s0 ~demands =
  check_alpha alpha;
  check_s0 s0;
  if Array.length demands = 0 then invalid_arg "Logit.fit_valuations: no demands";
  let total = Numerics.Stats.sum demands in
  if not (total > 0.) then invalid_arg "Logit.fit_valuations: zero total demand";
  let valuations =
    Array.map
      (fun q ->
        if not (q > 0.) then
          invalid_arg "Logit.fit_valuations: demands must be positive";
        let share = q *. (1. -. s0) /. total in
        ((log share -. log s0) /. alpha) +. p0)
      demands
  in
  { valuations; k = total /. (1. -. s0); s0; p0 }

let gamma ~alpha ~p0 ~s0 ~valuations ~rel_costs =
  check_alpha alpha;
  check_s0 s0;
  check_lengths valuations rel_costs;
  let margin = 1. /. (alpha *. s0) in
  if p0 <= margin then
    invalid_arg
      (Printf.sprintf
         "Logit.gamma: p0 = %g <= 1/(alpha s0) = %g implies negative costs" p0
         margin);
  (* w_i = e^(alpha (v_i - p0)) = s_i / s0: bounded, no overflow. *)
  let w = Array.map (fun v -> exp (alpha *. (v -. p0))) valuations in
  let wf = Array.map2 (fun wi f -> wi *. f) w rel_costs in
  (p0 -. margin) *. Numerics.Stats.sum w /. Numerics.Stats.sum wf

let shares ~alpha ~valuations ~prices =
  check_alpha alpha;
  check_lengths valuations prices;
  let exponents = Array.map2 (fun v p -> alpha *. (v -. p)) valuations prices in
  (* Include the no-purchase option as exponent 0. *)
  let ln_z = Numerics.Stats.logsumexp (Array.append exponents [| 0. |]) in
  (Array.map (fun x -> exp (x -. ln_z)) exponents, exp (-.ln_z))

let demands_at ~alpha ~k ~valuations ~prices =
  let s, _ = shares ~alpha ~valuations ~prices in
  Array.map (fun si -> k *. si) s

let profit_at ~alpha ~k ~valuations ~costs ~prices =
  check_lengths valuations costs;
  let s, _ = shares ~alpha ~valuations ~prices in
  let terms = Array.init (Array.length s) (fun i -> s.(i) *. (prices.(i) -. costs.(i))) in
  k *. Numerics.Stats.sum terms

let consumer_surplus ~alpha ~k ~valuations ~prices =
  check_alpha alpha;
  check_lengths valuations prices;
  let exponents = Array.map2 (fun v p -> alpha *. (v -. p)) valuations prices in
  let ln_z = Numerics.Stats.logsumexp (Array.append exponents [| 0. |]) in
  k /. alpha *. ln_z

let bundle_aggregate ~alpha ~valuations ~costs =
  check_alpha alpha;
  check_lengths valuations costs;
  let exponents = Array.map (fun v -> alpha *. v) valuations in
  let ln_w = Numerics.Stats.logsumexp exponents in
  let weights = Array.map (fun x -> exp (x -. ln_w)) exponents in
  let c_terms = Array.map2 (fun u c -> u *. c) weights costs in
  (ln_w /. alpha, Numerics.Stats.sum c_terms)

let ln_s ~alpha ~valuations ~costs =
  check_alpha alpha;
  check_lengths valuations costs;
  Numerics.Stats.logsumexp (Array.map2 (fun v c -> alpha *. (v -. c)) valuations costs)

let optimal_margin ~alpha ~ln_s =
  check_alpha alpha;
  (* Solve the log form x + ln (x - 1) = ln_s, which stays well-scaled
     for arbitrarily large ln_s (the raw form's exp term swamps Newton).
     The root is bracketed by 1 + e^(ln_s - hi) < x < hi. *)
  let f x = x +. log (x -. 1.) -. ln_s in
  let df x = 1. +. (1. /. (x -. 1.)) in
  let hi = Float.max 2. (ln_s +. 2.) in
  let lo = 1. +. exp (ln_s -. hi) in
  if lo >= hi then hi
  else if f lo >= 0. then lo
  else Numerics.Solve.newton_bisect ~f ~df lo hi

type optimum = { prices : float array; x : float; profit_per_k : float }

let optimize ~alpha ~valuations ~costs =
  let ln_s_value = ln_s ~alpha ~valuations ~costs in
  let x = optimal_margin ~alpha ~ln_s:ln_s_value in
  let margin = x /. alpha in
  {
    prices = Array.map (fun c -> c +. margin) costs;
    x;
    profit_per_k = (x -. 1.) /. alpha;
  }
