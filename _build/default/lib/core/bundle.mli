(** Partitions of flows into pricing bundles.

    A bundling is an array of bundles, each a non-empty array of flow
    indices; together they cover every flow exactly once. Empty bundles
    are never represented — a pricing tier nobody maps to earns nothing
    and sells nothing, so strategies that produce empty ranges (e.g.
    cost division) simply yield fewer bundles. *)

type t = private int array array

val of_groups : n_flows:int -> int list list -> t
(** Validates coverage and drops empty groups. Raises [Invalid_argument]
    if any index is out of range, duplicated or missing. *)

val all_in_one : n_flows:int -> t
val singletons : n_flows:int -> t

val of_assignment : n_bundles:int -> int array -> t
(** [of_assignment ~n_bundles a] where [a.(i)] is flow [i]'s bundle
    index in [\[0, n_bundles)]. Empty bundles are dropped. *)

val contiguous : order:int array -> cuts:int list -> t
(** [contiguous ~order ~cuts] splits [order] (a permutation of flow
    indices) after the positions in [cuts] (strictly increasing,
    each in [\[1, n-1\]]). *)

val count : t -> int
(** Number of bundles. *)

val sizes : t -> int array

val member_of : t -> n_flows:int -> int array
(** Inverse map: flow index -> bundle index. *)

val gather : t -> float array -> float array array
(** [gather t values] extracts per-bundle sub-arrays of a per-flow
    array. *)

val pp : Format.formatter -> t -> unit
