type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ?(notes = []) ~title ~header rows =
  let width = List.length header in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg ("Report.make: ragged row in table " ^ title))
    rows;
  { title; header; rows; notes }

let cell_f v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 0.01 && Float.abs v < 10000. then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.3g" v

let cell_pct v = Printf.sprintf "%.1f%%" (100. *. v)

let column_widths t =
  let update widths row =
    List.map2 (fun w cell -> max w (String.length cell)) widths row
  in
  List.fold_left update (List.map String.length t.header) t.rows

let print ppf t =
  let widths = column_widths t in
  let pad cell width = cell ^ String.make (width - String.length cell) ' ' in
  let print_row row =
    let cells = List.map2 pad row widths in
    Format.fprintf ppf "  %s@." (String.concat "  " cells)
  in
  Format.fprintf ppf "@.%s@.%s@." t.title (String.make (String.length t.title) '=');
  print_row t.header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row t.rows;
  List.iter (fun note -> Format.fprintf ppf "  note: %s@." note) t.notes

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("### " ^ t.title ^ "\n\n");
  let line row = "| " ^ String.concat " | " row ^ " |\n" in
  Buffer.add_string buf (line t.header);
  Buffer.add_string buf (line (List.map (fun _ -> "---") t.header));
  List.iter (fun row -> Buffer.add_string buf (line row)) t.rows;
  List.iter (fun note -> Buffer.add_string buf ("\n> " ^ note ^ "\n")) t.notes;
  Buffer.contents buf

let escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"
