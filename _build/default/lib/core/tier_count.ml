type overhead = {
  fixed : float;
  per_tier : float;
  per_flow : float;
}

let overhead ?(fixed = 0.) ?(per_flow = 0.) ~per_tier () =
  if fixed < 0. || per_tier < 0. || per_flow < 0. then
    invalid_arg "Tier_count.overhead: negative component";
  { fixed; per_tier; per_flow }

let cost o ~n_tiers ~n_flows =
  o.fixed +. (o.per_tier *. float_of_int n_tiers) +. (o.per_flow *. float_of_int n_flows)

type point = {
  n_bundles : int;
  gross_profit : float;
  overhead_cost : float;
  net_profit : float;
}

let gross market strategy ~n_bundles =
  (Pricing.evaluate market (Strategy.apply strategy market ~n_bundles)).Pricing.profit

let series market strategy o ~max_bundles =
  if max_bundles < 1 then invalid_arg "Tier_count.series: max_bundles < 1";
  let n_flows = Market.n_flows market in
  List.init max_bundles (fun i ->
      let n_bundles = i + 1 in
      let gross_profit = gross market strategy ~n_bundles in
      let overhead_cost = cost o ~n_tiers:n_bundles ~n_flows in
      { n_bundles; gross_profit; overhead_cost; net_profit = gross_profit -. overhead_cost })

let optimal market strategy o ~max_bundles =
  match series market strategy o ~max_bundles with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun best p -> if p.net_profit > best.net_profit then p else best)
        first rest

let break_even_overhead market strategy ~from_bundles ~to_bundles =
  if from_bundles < 1 || to_bundles <= from_bundles then
    invalid_arg "Tier_count.break_even_overhead: need 1 <= from < to";
  let g_from = gross market strategy ~n_bundles:from_bundles in
  let g_to = gross market strategy ~n_bundles:to_bundles in
  (g_to -. g_from) /. float_of_int (to_bundles - from_bundles)
