(** Volume ("commit") pricing — the other tiering axis (§2.1).

    Most transit is sold with volume discounts: committing to a higher
    minimum bandwidth buys a lower per-Mbps rate, billed at
    [rate * max(commit, usage)]. This module models a heterogeneous
    customer population with CED demand choosing from a tier menu
    (second-degree price discrimination) and lets the ISP optimize the
    menu — complementary to the paper's destination-based tiers.

    A customer with valuation [v] facing unit rate [r] consumes
    [q(r) = (v / r)^alpha] and gets surplus [Ced.consumer_surplus]; with
    a commit floor [q_min] the effective usage is [max(q_min, q(r))] and
    the shortfall is paid for but unused. Customers pick the
    surplus-maximizing tier, or opt out when every tier yields negative
    surplus (which cannot happen for pure usage pricing but can under a
    commit floor). *)

type tier = { commit_mbps : float; rate : float }
(** A commit level and its discounted unit price. *)

type menu = tier array

val tier : commit_mbps:float -> rate:float -> tier
(** Raises [Invalid_argument] on negative commit or non-positive rate. *)

type choice = {
  tier_index : int option;  (** [None] = opted out. *)
  usage_mbps : float;  (** Actual consumption (0 when opted out). *)
  billed_mbps : float;  (** [max commit usage]. *)
  payment : float;
  surplus : float;
}

val choose : alpha:float -> v:float -> menu -> choice
(** The customer's optimal tier (ties go to the lower index). *)

type outcome = {
  profit : float;
  revenue : float;
  delivery_cost : float;
  consumer_surplus : float;
  tier_counts : int array;  (** Customers per tier. *)
  opted_out : int;
}

val evaluate :
  alpha:float -> unit_cost:float -> valuations:float array -> menu -> outcome
(** Total outcome over a population; [unit_cost] is the ISP's per-Mbps
    delivery cost of {e used} bandwidth (commit shortfall costs
    nothing to deliver). *)

val optimize_rates :
  alpha:float ->
  unit_cost:float ->
  valuations:float array ->
  commits:float array ->
  menu
(** Profit-maximizing rates for fixed commit levels (Nelder-Mead over
    log-rates; rates are forced decreasing in commit level so the menu
    is a genuine volume discount). *)

val commit_quantiles : alpha:float -> p0:float -> valuations:float array -> n:int -> float array
(** Natural commit levels: demand quantiles of the population at the
    blended price [p0] ([n >= 1] levels, first one 0). *)
