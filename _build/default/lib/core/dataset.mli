(** Bridging the measurement substrate to the pricing model.

    Two paths from a synthetic workload to the model's flows:
    {!of_workload} reads the ground truth directly, while
    {!via_netflow} runs the full §4.1.1 measurement pipeline — NetFlow
    synthesis at every on-path router, packet sampling, duplicate
    suppression, aggregation — and joins the result back to flow
    distances. Comparing the two quantifies measurement distortion. *)

val of_workload : Flowgen.Workload.t -> Flow.t array
(** Ground-truth demands; flow ids follow workload flow ids. *)

val via_netflow :
  ?sampling_rate:int ->
  ?shape:Flowgen.Netflow.shape ->
  ?seed:int ->
  Flowgen.Workload.t ->
  Flow.t array
(** Demands as the collector would estimate them ([sampling_rate]
    defaults to 1000, the paper-era norm for core routers). Flows whose
    packets are entirely missed by sampling are absent from the result.
    Distance and classification metadata are joined from the workload by
    endpoint addresses. *)

val locality_of : Flowgen.Geoip.locality -> Flow.locality
