type t = int array array

let validate ~n_flows groups =
  let seen = Array.make n_flows false in
  Array.iter
    (fun group ->
      Array.iter
        (fun i ->
          if i < 0 || i >= n_flows then invalid_arg "Bundle: flow index out of range";
          if seen.(i) then invalid_arg "Bundle: duplicate flow index";
          seen.(i) <- true)
        group)
    groups;
  if not (Array.for_all Fun.id seen) then invalid_arg "Bundle: flows left unassigned"

let of_groups ~n_flows groups =
  let groups =
    groups
    |> List.filter (fun g -> g <> [])
    |> List.map Array.of_list
    |> Array.of_list
  in
  validate ~n_flows groups;
  groups

let all_in_one ~n_flows =
  if n_flows <= 0 then invalid_arg "Bundle.all_in_one: no flows";
  [| Array.init n_flows Fun.id |]

let singletons ~n_flows =
  if n_flows <= 0 then invalid_arg "Bundle.singletons: no flows";
  Array.init n_flows (fun i -> [| i |])

let of_assignment ~n_bundles assignment =
  if n_bundles <= 0 then invalid_arg "Bundle.of_assignment: n_bundles <= 0";
  let buckets = Array.make n_bundles [] in
  Array.iteri
    (fun i b ->
      if b < 0 || b >= n_bundles then
        invalid_arg "Bundle.of_assignment: bundle index out of range";
      buckets.(b) <- i :: buckets.(b))
    assignment;
  let groups =
    buckets |> Array.to_list |> List.map List.rev
    |> of_groups ~n_flows:(Array.length assignment)
  in
  groups

let contiguous ~order ~cuts =
  let n = Array.length order in
  if n = 0 then invalid_arg "Bundle.contiguous: empty order";
  let rec check prev = function
    | [] -> ()
    | cut :: rest ->
        if cut <= prev || cut >= n then
          invalid_arg "Bundle.contiguous: cuts must be strictly increasing in [1, n-1]";
        check cut rest
  in
  check 0 cuts;
  let bounds = (0 :: cuts) @ [ n ] in
  let rec segments = function
    | lo :: (hi :: _ as rest) ->
        Array.sub order lo (hi - lo) :: segments rest
    | [ _ ] | [] -> []
  in
  let groups = Array.of_list (segments bounds) in
  validate ~n_flows:n groups;
  groups

let count t = Array.length t
let sizes t = Array.map Array.length t

let member_of t ~n_flows =
  let owner = Array.make n_flows (-1) in
  Array.iteri (fun b group -> Array.iter (fun i -> owner.(i) <- b) group) t;
  owner

let gather t values = Array.map (fun group -> Array.map (fun i -> values.(i)) group) t

let pp ppf t =
  Format.fprintf ppf "%d bundles (sizes:" (count t);
  Array.iter (fun s -> Format.fprintf ppf " %d" s) (sizes t);
  Format.fprintf ppf ")"
