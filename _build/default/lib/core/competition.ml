type firm = { name : string; costs : float array }

type equilibrium = {
  margins : float array;
  prices : float array array;
  shares : float array;
  s0 : float;
  profits : float array;
  iterations : int;
}

let firm ~name ~costs = { name; costs }

(* Exponent of (firm g, flow i) at margin m_g. *)
let exponent ~alpha ~valuations ~(firms : firm array) ~margins g i =
  alpha *. (valuations.(i) -. firms.(g).costs.(i) -. margins.(g))

(* ln of each firm's summed weight and of the full denominator. *)
let log_weights ~alpha ~valuations ~firms ~margins =
  let n = Array.length valuations in
  let per_firm =
    Array.mapi
      (fun g _ ->
        Numerics.Stats.logsumexp
          (Array.init n (fun i -> exponent ~alpha ~valuations ~firms ~margins g i)))
      firms
  in
  let log_z = Numerics.Stats.logsumexp (Array.append per_firm [| 0. |]) in
  (per_firm, log_z)

let firm_shares ~alpha ~valuations ~firms ~margins =
  let per_firm, log_z = log_weights ~alpha ~valuations ~firms ~margins in
  (Array.map (fun lw -> exp (lw -. log_z)) per_firm, exp (-.log_z))

let best_response_margin ~alpha ~valuations ~firms ~margins f =
  let share_at m =
    let margins = Array.copy margins in
    margins.(f) <- m;
    (fst (firm_shares ~alpha ~valuations ~firms ~margins)).(f)
  in
  (* g(m) = m alpha (1 - S_f(m)) - 1 is increasing with g(1/alpha) < 0. *)
  let g m = (m *. alpha *. (1. -. share_at m)) -. 1. in
  let lo = 1. /. alpha in
  let rec grow hi = if g hi > 0. then hi else grow (2. *. hi) in
  let hi = grow (Float.max 1. (2. /. alpha)) in
  Numerics.Solve.bisect ~tol:1e-12 ~f:g lo hi

let validate ~alpha ~valuations firms =
  if Array.length firms = 0 then invalid_arg "Competition: no firms";
  if not (alpha > 0.) then invalid_arg "Competition: alpha must be > 0";
  Array.iter
    (fun f ->
      if Array.length f.costs <> Array.length valuations then
        invalid_arg "Competition: cost/valuation length mismatch")
    firms

let equilibrium_of ~k ~alpha ~valuations ~firms ~margins ~iterations =
  let shares, s0 = firm_shares ~alpha ~valuations ~firms ~margins in
  {
    margins;
    prices =
      Array.mapi (fun g f -> Array.map (fun c -> c +. margins.(g)) f.costs) firms;
    shares;
    s0;
    profits = Array.map2 (fun share m -> k *. share *. m) shares margins;
    iterations;
  }

let nash ?(tol = 1e-10) ?(max_iter = 500) ?(k = 1.) ~alpha ~valuations firms =
  validate ~alpha ~valuations firms;
  let n_firms = Array.length firms in
  (* Start every firm at its monopoly-flavoured margin. *)
  let margins = Array.make n_firms (1. /. alpha) in
  let rec iterate margins iter =
    if iter >= max_iter then (margins, iter)
    else begin
      let next =
        Array.mapi
          (fun f _ -> best_response_margin ~alpha ~valuations ~firms ~margins f)
          margins
      in
      (* Mild damping keeps two-firm oscillation from cycling. *)
      let damped = Array.map2 (fun a b -> (0.5 *. a) +. (0.5 *. b)) margins next in
      if Numerics.Vec.linf_dist damped margins <= tol *. (1. +. Numerics.Vec.norm2 margins)
      then (damped, iter + 1)
      else iterate damped (iter + 1)
    end
  in
  let margins, iterations = iterate margins 0 in
  equilibrium_of ~k ~alpha ~valuations ~firms ~margins ~iterations

let monopoly ?(k = 1.) ~alpha ~valuations f =
  validate ~alpha ~valuations [| f |];
  let { Logit.x; _ } = Logit.optimize ~alpha ~valuations ~costs:f.costs in
  equilibrium_of ~k ~alpha ~valuations ~firms:[| f |]
    ~margins:[| x /. alpha |] ~iterations:0
