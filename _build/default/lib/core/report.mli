(** Plain-text tables for the experiment harness.

    Every reproduced figure/table is printed as one of these, so the
    benchmark output can be diffed across runs and against
    EXPERIMENTS.md. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : ?notes:string list -> title:string -> header:string list -> string list list -> t
(** Raises [Invalid_argument] when a row's width differs from the
    header's. *)

val cell_f : float -> string
(** Compact float formatting ([%.3g] with fixed-point for moderate
    magnitudes). *)

val cell_pct : float -> string
(** A ratio as a percentage with one decimal. *)

val print : Format.formatter -> t -> unit
(** Aligned columns, underlined title, notes at the end. *)

val to_csv : t -> string

val to_markdown : t -> string
(** GitHub-flavoured table with the title as a heading and notes as a
    trailing blockquote. *)
