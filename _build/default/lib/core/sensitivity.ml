let capture_at market strategy ~n_bundles =
  let ctx = Capture.context market in
  let bundles = Strategy.apply strategy market ~n_bundles in
  Capture.value ctx (Pricing.evaluate market bundles).Pricing.profit

let envelope ~markets ~strategy ~bundle_counts ~mode =
  if markets = [] then invalid_arg "Sensitivity.envelope: no markets";
  let pick = match mode with `Min -> Float.min | `Max -> Float.max in
  let start = match mode with `Min -> infinity | `Max -> neg_infinity in
  List.map
    (fun n_bundles ->
      let worst =
        List.fold_left
          (fun acc market -> pick acc (capture_at market strategy ~n_bundles))
          start markets
      in
      (n_bundles, worst))
    bundle_counts

let alpha_range ?(steps = 8) ~lo ~hi () =
  if not (lo > 0. && hi > lo) then invalid_arg "Sensitivity.alpha_range: need 0 < lo < hi";
  if steps < 2 then invalid_arg "Sensitivity.alpha_range: need at least 2 steps";
  let ratio = (hi /. lo) ** (1. /. float_of_int (steps - 1)) in
  List.init steps (fun i -> lo *. (ratio ** float_of_int i))

let linear_range ?(steps = 8) ~lo ~hi () =
  if not (hi > lo) then invalid_arg "Sensitivity.linear_range: need lo < hi";
  if steps < 2 then invalid_arg "Sensitivity.linear_range: need at least 2 steps";
  let step = (hi -. lo) /. float_of_int (steps - 1) in
  List.init steps (fun i -> lo +. (step *. float_of_int i))
