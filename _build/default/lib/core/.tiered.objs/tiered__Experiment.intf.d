lib/core/experiment.mli: Cost_model Flowgen Market Report
