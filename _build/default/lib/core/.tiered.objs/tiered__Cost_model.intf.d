lib/core/cost_model.mli: Flow Format
