lib/core/ced.ml: Array Numerics
