lib/core/competition.mli:
