lib/core/bundle.mli: Format
