lib/core/tier_count.ml: List Market Pricing Strategy
