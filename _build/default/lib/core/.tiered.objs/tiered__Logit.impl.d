lib/core/logit.ml: Array Float Numerics Printf
