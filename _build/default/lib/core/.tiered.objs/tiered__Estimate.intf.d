lib/core/estimate.mli: Dynamics Market Numerics Strategy
