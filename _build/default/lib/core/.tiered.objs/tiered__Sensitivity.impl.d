lib/core/sensitivity.ml: Capture Float List Pricing Strategy
