lib/core/pricing.ml: Array Bundle Ced Lin Logit Market Numerics
