lib/core/cost_model.ml: Array Float Flow Format Numerics
