lib/core/dynamics.ml: Array Capture Ced List Market Numerics Pricing Strategy
