lib/core/dynamics.mli: Market Strategy
