lib/core/commit.ml: Array Ced Float Numerics
