lib/core/welfare.mli: Format Market Pricing Strategy
