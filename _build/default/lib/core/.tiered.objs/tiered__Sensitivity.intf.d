lib/core/sensitivity.mli: Market Strategy
