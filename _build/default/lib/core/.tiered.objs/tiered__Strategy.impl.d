lib/core/strategy.ml: Array Bundle Cost_model Float Flow Fun Lin List Market Numerics Pricing String
