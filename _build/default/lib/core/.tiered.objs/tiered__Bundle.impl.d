lib/core/bundle.ml: Array Format Fun List
