lib/core/tier_count.mli: Market Strategy
