lib/core/flow.ml: Array Format Numerics
