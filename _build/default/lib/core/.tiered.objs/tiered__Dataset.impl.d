lib/core/dataset.ml: Array Flow Flowgen Hashtbl List Numerics
