lib/core/market.mli: Cost_model Flow Format
