lib/core/capture.ml: Format List Pricing Strategy
