lib/core/dataset.mli: Flow Flowgen
