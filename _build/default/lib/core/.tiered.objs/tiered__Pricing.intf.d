lib/core/pricing.mli: Bundle Market
