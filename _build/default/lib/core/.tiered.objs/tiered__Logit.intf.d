lib/core/logit.mli:
