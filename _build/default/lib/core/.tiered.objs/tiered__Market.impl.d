lib/core/market.ml: Array Ced Cost_model Float Flow Format Lin Logit
