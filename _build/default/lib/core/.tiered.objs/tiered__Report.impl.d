lib/core/report.ml: Buffer Float Format List Printf String
