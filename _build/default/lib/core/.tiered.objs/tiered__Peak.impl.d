lib/core/peak.ml: Array Bundle Ced Float Flowgen Market Numerics Printf Strategy
