lib/core/experiment.ml: Array Bundle Capture Ced Cost_model Dataset Float Flow Flowgen Hashtbl List Logit Market Numerics Pricing Printf Report Sensitivity Strategy String
