lib/core/flow.mli: Format
