lib/core/ced.mli:
