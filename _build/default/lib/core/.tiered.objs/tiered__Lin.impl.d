lib/core/lin.ml: Array Float Numerics
