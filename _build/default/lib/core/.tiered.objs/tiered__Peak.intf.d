lib/core/peak.mli: Flowgen Market Strategy
