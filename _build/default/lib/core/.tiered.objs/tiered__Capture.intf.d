lib/core/capture.mli: Format Market Strategy
