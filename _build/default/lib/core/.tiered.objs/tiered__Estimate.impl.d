lib/core/estimate.ml: Array Ced Dynamics Float List Market Numerics
