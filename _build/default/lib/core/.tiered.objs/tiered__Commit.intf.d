lib/core/commit.mli:
