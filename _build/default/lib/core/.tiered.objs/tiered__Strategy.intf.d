lib/core/strategy.mli: Bundle Market
