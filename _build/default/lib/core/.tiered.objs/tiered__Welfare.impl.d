lib/core/welfare.ml: Array Bundle Format List Market Pricing Strategy
