lib/core/lin.mli:
