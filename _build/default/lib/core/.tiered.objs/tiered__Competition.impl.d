lib/core/competition.ml: Array Float Logit Numerics
