(** Welfare accounting (§2.2.1).

    The paper argues blended rates are a {e market failure}: both ISP
    profit and consumer surplus rise under (well-structured) tiering.
    This module quantifies that: each pricing outcome is decomposed into
    profit, consumer surplus and the deadweight loss relative to the
    first-best (marginal-cost pricing, the welfare-maximizing benchmark
    under both demand models). *)

type analysis = {
  profit : float;
  consumer_surplus : float;
  welfare : float;  (** profit + consumer surplus. *)
  first_best_welfare : float;  (** Welfare at marginal-cost prices. *)
  deadweight_loss : float;  (** first-best minus realized welfare. *)
  efficiency : float;  (** realized / first-best welfare. *)
}

val first_best : Market.t -> Pricing.outcome
(** The outcome when every flow is priced at its own marginal cost
    (profit 0 by construction, maximal welfare). *)

val analyze : Market.t -> Pricing.outcome -> analysis

val of_strategy : Market.t -> Strategy.t -> n_bundles:int -> analysis
(** Analysis of a strategy's optimally-priced partition. *)

val series :
  Market.t -> Strategy.t -> bundle_counts:int list -> (int * analysis) list
(** Welfare decomposition as the tier count grows — the welfare
    counterpart of the profit-capture series. *)

val pp_analysis : Format.formatter -> analysis -> unit
