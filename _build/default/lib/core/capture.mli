(** The paper's profit-capture metric (§4.2.2).

    [capture = (pi_new - pi_original) / (pi_max - pi_original)] where
    [pi_original] is the blended-rate profit and [pi_max] the profit
    with per-flow pricing. 0 means no improvement over the blended rate,
    1 means as good as infinitely many tiers. *)

type context = {
  original : float;  (** Blended-rate profit. *)
  maximum : float;  (** Per-flow pricing profit. *)
}

val context : Market.t -> context

val value : context -> float -> float
(** [value ctx profit]. Raises [Invalid_argument] when the market has no
    headroom ([maximum <= original] beyond rounding). *)

val headroom : context -> float
(** [maximum - original]. *)

type point = { n_bundles : int; capture : float; profit : float }

val series :
  Market.t -> Strategy.t -> bundle_counts:int list -> point list
(** Capture for each bundle count, pricing each partition optimally. *)

val pp_point : Format.formatter -> point -> unit
