type outcome = {
  bundles : Bundle.t;
  bundle_prices : float array;
  flow_prices : float array;
  flow_demands : float array;
  profit : float;
  revenue : float;
  delivery_cost : float;
  consumer_surplus : float;
}

let welfare o = o.profit +. o.consumer_surplus

let flow_prices_of_bundle_prices market bundles prices =
  let n = Market.n_flows market in
  let owner = Bundle.member_of bundles ~n_flows:n in
  Array.init n (fun i -> prices.(owner.(i)))

(* Assemble an outcome from per-flow prices under either demand model. *)
let outcome_at market bundles bundle_prices =
  let { Market.alpha; valuations; costs; k; spec; _ } = market in
  let flow_prices = flow_prices_of_bundle_prices market bundles bundle_prices in
  let n = Market.n_flows market in
  match spec with
  | Market.Ced ->
      let flow_demands =
        Array.init n (fun i -> Ced.demand ~alpha ~v:valuations.(i) flow_prices.(i))
      in
      let revenue =
        Numerics.Stats.sum (Array.init n (fun i -> flow_prices.(i) *. flow_demands.(i)))
      in
      let delivery_cost =
        Numerics.Stats.sum (Array.init n (fun i -> costs.(i) *. flow_demands.(i)))
      in
      let consumer_surplus =
        Numerics.Stats.sum
          (Array.init n (fun i ->
               Ced.consumer_surplus ~alpha ~v:valuations.(i) flow_prices.(i)))
      in
      {
        bundles;
        bundle_prices;
        flow_prices;
        flow_demands;
        profit = revenue -. delivery_cost;
        revenue;
        delivery_cost;
        consumer_surplus;
      }
  | Market.Linear _ ->
      let b = Market.linear_b market in
      let flow_demands =
        Array.init n (fun i -> Lin.demand ~a:valuations.(i) ~b:b.(i) flow_prices.(i))
      in
      let revenue =
        Numerics.Stats.sum (Array.init n (fun i -> flow_prices.(i) *. flow_demands.(i)))
      in
      let delivery_cost =
        Numerics.Stats.sum (Array.init n (fun i -> costs.(i) *. flow_demands.(i)))
      in
      let consumer_surplus =
        Numerics.Stats.sum
          (Array.init n (fun i ->
               Lin.consumer_surplus ~a:valuations.(i) ~b:b.(i) flow_prices.(i)))
      in
      {
        bundles;
        bundle_prices;
        flow_prices;
        flow_demands;
        profit = revenue -. delivery_cost;
        revenue;
        delivery_cost;
        consumer_surplus;
      }
  | Market.Logit _ ->
      let flow_demands = Logit.demands_at ~alpha ~k ~valuations ~prices:flow_prices in
      let revenue =
        Numerics.Stats.sum (Array.init n (fun i -> flow_prices.(i) *. flow_demands.(i)))
      in
      let delivery_cost =
        Numerics.Stats.sum (Array.init n (fun i -> costs.(i) *. flow_demands.(i)))
      in
      let consumer_surplus =
        Logit.consumer_surplus ~alpha ~k ~valuations ~prices:flow_prices
      in
      {
        bundles;
        bundle_prices;
        flow_prices;
        flow_demands;
        profit = revenue -. delivery_cost;
        revenue;
        delivery_cost;
        consumer_surplus;
      }

let optimal_bundle_prices market bundles =
  let { Market.alpha; valuations; costs; spec; _ } = market in
  let member_vs = Bundle.gather bundles valuations in
  let member_cs = Bundle.gather bundles costs in
  match spec with
  | Market.Ced ->
      Array.init (Bundle.count bundles) (fun b ->
          Ced.bundle_price ~alpha ~valuations:member_vs.(b) ~costs:member_cs.(b))
  | Market.Linear _ ->
      let b_all = Market.linear_b market in
      let member_bs = Bundle.gather bundles b_all in
      Array.init (Bundle.count bundles) (fun g ->
          let a_sum = Numerics.Stats.sum member_vs.(g) in
          let b_sum = Numerics.Stats.sum member_bs.(g) in
          let bc_sum =
            Numerics.Stats.sum (Array.map2 (fun bi c -> bi *. c) member_bs.(g) member_cs.(g))
          in
          Lin.bundle_price ~a_sum ~b_sum ~bc_sum)
  | Market.Logit _ ->
      let aggregates =
        Array.init (Bundle.count bundles) (fun b ->
            Logit.bundle_aggregate ~alpha ~valuations:member_vs.(b) ~costs:member_cs.(b))
      in
      let bundle_vs = Array.map fst aggregates in
      let bundle_cs = Array.map snd aggregates in
      let { Logit.prices; _ } = Logit.optimize ~alpha ~valuations:bundle_vs ~costs:bundle_cs in
      prices

let evaluate market bundles =
  outcome_at market bundles (optimal_bundle_prices market bundles)

let evaluate_at_prices market bundles prices =
  if Array.length prices <> Bundle.count bundles then
    invalid_arg "Pricing.evaluate_at_prices: one price per bundle required";
  outcome_at market bundles prices

let blended market = evaluate market (Bundle.all_in_one ~n_flows:(Market.n_flows market))

let max_profit market =
  let { Market.alpha; valuations; costs; k; spec; _ } = market in
  match spec with
  | Market.Ced ->
      Numerics.Stats.sum
        (Array.map2
           (fun v c -> Ced.potential_profit ~alpha ~v ~c)
           valuations costs)
  | Market.Linear _ ->
      let b = Market.linear_b market in
      Numerics.Stats.sum
        (Array.init (Array.length valuations) (fun i ->
             Lin.potential_profit ~a:valuations.(i) ~b:b.(i) ~c:costs.(i)))
  | Market.Logit _ ->
      let { Logit.profit_per_k; _ } = Logit.optimize ~alpha ~valuations ~costs in
      k *. profit_per_k

let original_profit market = (blended market).profit
