(** Logit discrete-choice demand (§3.2.2).

    Consumers choose among flows (or send nothing); flow [i]'s market
    share is [s_i = e^(alpha (v_i - p_i)) / (sum_j e^(alpha (v_j - p_j)) + 1)]
    and its demand is [K s_i] for a population [K]. Everything is
    computed in exponent space with log-sum-exp shifts so large
    [alpha * v] never overflows.

    Two structural facts carry the whole evaluation:
    - every profit-maximizing price has the {e same} margin
      [m = 1/(alpha s_0)] (Eq. 9), so optimal pricing reduces to the
      scalar equation [x - 1 = S e^(-x)] with [x = alpha m] and
      [S = sum_b e^(alpha (v_b - c_b))];
    - the optimal profit is [K (x - 1) / alpha], increasing in [S], so
      comparing bundlings is comparing their [S]. *)

val check_alpha : float -> unit
(** Raises [Invalid_argument] unless [alpha > 0]. *)

val check_s0 : float -> unit
(** Raises [Invalid_argument] unless [s0] is in [(0, 1)]. *)

type fit = { valuations : float array; k : float; s0 : float; p0 : float }

val fit_valuations :
  alpha:float -> p0:float -> s0:float -> demands:float array -> fit
(** §4.1.2: from observed demands at the blended price [p0], assuming a
    non-participating share [s0]: [s_i = q_i (1 - s0) / sum q],
    [v_i = (ln s_i - ln s0) / alpha + p0], [K = sum q / (1 - s0)].
    Requires strictly positive demands. *)

val gamma :
  alpha:float ->
  p0:float ->
  s0:float ->
  valuations:float array ->
  rel_costs:float array ->
  float
(** §4.1.3 for logit (derived in DESIGN.md): the scale that makes [p0]
    the profit-maximizing blended price,
    [(p0 - 1/(alpha s0)) * sum w_i / sum w_i f(d_i)] with
    [w_i = e^(alpha (v_i - p0))]. Raises [Invalid_argument] when
    [p0 <= 1/(alpha s0)] (the observed market would imply negative
    costs). *)

val shares :
  alpha:float -> valuations:float array -> prices:float array -> float array * float
(** [(per-flow shares, s0)] at the given prices; sums to 1. *)

val demands_at :
  alpha:float -> k:float -> valuations:float array -> prices:float array -> float array

val profit_at :
  alpha:float ->
  k:float ->
  valuations:float array ->
  costs:float array ->
  prices:float array ->
  float

val consumer_surplus :
  alpha:float -> k:float -> valuations:float array -> prices:float array -> float
(** The standard logit inclusive value
    [(K / alpha) ln (sum_j e^(alpha (v_j - p_j)) + 1)]. *)

val bundle_aggregate :
  alpha:float -> valuations:float array -> costs:float array -> float * float
(** Eqs. 10-11: the single (valuation, cost) pair equivalent to pricing
    the member flows as one bundle:
    [v_b = ln (sum e^(alpha v_i)) / alpha] and
    [c_b = sum c_i e^(alpha v_i) / sum e^(alpha v_i)]. *)

val optimal_margin : alpha:float -> ln_s:float -> float
(** Solves [x - 1 = e^(ln_s - x)] for [x = alpha * margin] by
    safeguarded Newton; [ln_s] is the log-sum-exp of
    [alpha (v_b - c_b)] over bundles. The optimal non-participation
    share is [1 / x]. *)

val ln_s : alpha:float -> valuations:float array -> costs:float array -> float

type optimum = { prices : float array; x : float; profit_per_k : float }
(** [profit_per_k] is profit divided by the population [K]:
    [(x - 1) / alpha]. *)

val optimize : alpha:float -> valuations:float array -> costs:float array -> optimum
(** Jointly optimal prices for goods with the given valuations and
    costs: [p_b = c_b + x / alpha]. *)
