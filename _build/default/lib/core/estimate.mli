(** Elasticity estimation from price experiments.

    {!Dynamics} shows a wrong elasticity belief costs far more profit
    than coarse tiers; this module is the remedy. Under CED,
    [ln q = alpha ln v - alpha ln p], so observing demand at two or more
    price points identifies alpha by a log-log regression — the price
    experiment a transit ISP can actually run (a small temporary
    discount on a subset of flows). *)

type experiment = { price : float; demand : float }
(** One observation of a flow at a trial price. Both positive. *)

val alpha_of_flow : experiment list -> float
(** OLS slope of [-ln q] on [ln p] for one flow's observations.
    Requires [>= 2] observations at distinct prices; raises
    [Invalid_argument] otherwise or on non-positive values. *)

val alpha_pooled : experiment list list -> float
(** Pooled estimate across flows: each flow is demeaned (its own
    valuation intercept drops out), then one regression runs over the
    pooled deviations — the fixed-effects estimator. Flows with fewer
    than two observations are ignored; raises [Invalid_argument] if
    nothing remains. *)

val probe :
  ?noise_cv:float ->
  ?rng:Numerics.Rng.t ->
  Market.t ->
  discounts:float array ->
  experiment list list
(** Simulate the experiment on a (CED) ground-truth market: every flow
    is observed at [p0 * d] for each multiplier [d] in [discounts],
    with multiplicative lognormal measurement noise ([noise_cv] default
    0.05). Raises [Invalid_argument] on a logit market or non-positive
    discounts. *)

val calibrated_dynamics :
  ?noise_cv:float ->
  ?discounts:float array ->
  truth:Market.t ->
  strategy:Strategy.t ->
  n_bundles:int ->
  rounds:int ->
  unit ->
  Dynamics.round list
(** Probe first, then run {!Dynamics.simulate} with the estimated alpha
    — the measure-then-reprice loop a careful ISP would run. Default
    discounts span [0.7 .. 1.3]: near [alpha = 1] the optimal markup
    [alpha/(alpha-1)] diverges, so the experiment needs a wide price
    spread for the estimate to be tight enough to price from. *)
