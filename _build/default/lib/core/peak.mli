(** Time-of-day tiering — the temporal axis the related work explores
    (Jiang et al., Hande et al.; §6 of the paper).

    The NetFlow substrate already gives traffic a diurnal shape; here the
    day is split into periods, each period's demand is fitted as its own
    CED flow set (demand scales with the diurnal weight), and the ISP
    prices (period x bundle) cells. Because CED demand is separable,
    every machinery piece of the base model applies per period. *)

type period = { label : string; hours : int * int; weight : float }
(** [hours = (start, stop))] in [0, 24), [weight] = average diurnal
    multiplier of the period (mean 1 across the full day when weighted
    by duration). *)

val periods_of_shape : Flowgen.Netflow.shape -> n_periods:int -> period array
(** Split the day into [n_periods] equal spans and average the shape's
    diurnal weights over each. *)

val peak_offpeak : Flowgen.Netflow.shape -> period array
(** The classic two-period split: the 12 busiest consecutive hours vs
    the rest. *)

type outcome = {
  single_price_profit : float;  (** One price across all periods. *)
  per_period_profit : float;  (** One price per (period, bundle). *)
  gain : float;  (** Relative profit gain of time-of-day pricing. *)
  period_prices : (string * float array) list;
      (** Optimal bundle prices per period. *)
}

val evaluate :
  ?congestion_premium:float ->
  Market.t ->
  Strategy.t ->
  n_bundles:int ->
  period array ->
  outcome
(** CED-only. The single-price benchmark prices the same partition once
    for the whole day, optimally against the time-varying demand/cost;
    the per-period variant re-prices every (period, bundle) cell.

    Because CED demand under a {e common} multiplicative diurnal scaling
    leaves optimal prices unchanged, time-of-day pricing only gains when
    delivery costs are time-varying. [congestion_premium] (default 0.5)
    models peak-load provisioning: a flow's period cost is
    [c_i * (1 + premium * max 0 (weight_p - 1))] — above-average load
    hours are proportionally dearer to serve. With [premium = 0] the
    gain is exactly zero (a property the tests assert).

    Raises [Invalid_argument] for a logit market, an empty period array
    or a negative premium. *)
