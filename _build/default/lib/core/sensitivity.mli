(** Parameter sweeps (§4.3.2).

    Figures 14-16 plot, for each bundle count, the worst (or best)
    profit capture observed while one model parameter sweeps a range —
    a robustness summary, not a single curve. *)

val capture_at :
  Market.t -> Strategy.t -> n_bundles:int -> float
(** Capture of a strategy at one bundle count. *)

val envelope :
  markets:Market.t list ->
  strategy:Strategy.t ->
  bundle_counts:int list ->
  mode:[ `Min | `Max ] ->
  (int * float) list
(** For each bundle count, the min (or max) capture across the fitted
    markets. Markets whose fit raised (e.g. a logit [s0] implying
    negative costs) should be filtered out before calling; raises
    [Invalid_argument] on an empty market list. *)

val alpha_range : ?steps:int -> lo:float -> hi:float -> unit -> float list
(** Geometric grid, suitable for elasticity sweeps. *)

val linear_range : ?steps:int -> lo:float -> hi:float -> unit -> float list
