type locality = Metro | National | International

let locality_to_string = function
  | Metro -> "metro"
  | National -> "national"
  | International -> "international"

type t = {
  id : int;
  demand_mbps : float;
  distance_miles : float;
  locality : locality;
  on_net : bool;
}

(* §3.3: the EU ISP data only exposes distances, so the paper classifies
   flows under 10 miles as metro and under 100 as national. *)
let classify_distance d =
  if d < 10. then Metro else if d < 100. then National else International

let make ?locality ?(on_net = false) ~id ~demand_mbps ~distance_miles () =
  if demand_mbps < 0. then invalid_arg "Flow.make: negative demand";
  if distance_miles < 0. then invalid_arg "Flow.make: negative distance";
  let locality =
    match locality with Some l -> l | None -> classify_distance distance_miles
  in
  { id; demand_mbps; distance_miles; locality; on_net }

let demands flows = Array.map (fun f -> f.demand_mbps) flows
let distances flows = Array.map (fun f -> f.distance_miles) flows
let total_demand_mbps flows = Numerics.Stats.sum (demands flows)

let pp ppf f =
  Format.fprintf ppf "flow#%d %.2f Mbps over %.1f mi (%s%s)" f.id f.demand_mbps
    f.distance_miles
    (locality_to_string f.locality)
    (if f.on_net then ", on-net" else "")
