(** Repricing dynamics under model misestimation.

    The paper's evaluation is static: it assumes the ISP knows the
    demand model when it restructures tiers. This extension simulates
    the loop a real ISP would run — observe demand at current prices,
    re-fit valuations {e using its own (possibly wrong) elasticity
    estimate}, re-bundle, re-price, let true demand respond — and asks
    whether the loop converges and how much profit a wrong elasticity
    costs.

    Ground truth is a fitted {!Market.t}; the ISP sees only realized
    per-flow demands. Currently CED-only: the logit fit additionally
    needs a share-of-nothing estimate, which the ISP cannot observe. *)

type config = {
  truth : Market.t;  (** True market (must be CED). *)
  estimated_alpha : float;  (** The ISP's elasticity belief ([> 1]). *)
  strategy : Strategy.t;
  n_bundles : int;
  rounds : int;
  damping : float;
      (** New price = damping * reprice + (1 - damping) * old; in
          [(0, 1]], 1 = jump straight to the re-optimized prices. *)
}

type round = {
  index : int;  (** 0 = the initial blended state. *)
  flow_prices : float array;
  realized_demand : float array;  (** True demand at these prices. *)
  true_profit : float;
  capture : float;  (** Against the true market's capture context. *)
}

val simulate : config -> round list
(** [rounds + 1] entries (initial state included). Raises
    [Invalid_argument] on a non-CED market, [estimated_alpha <= 1],
    [rounds < 0] or damping outside [(0, 1]]. *)

val converged : ?tol:float -> round list -> bool
(** True when the last two rounds' prices differ by less than [tol]
    (default 1e-6) relatively. *)

val final_capture : round list -> float
