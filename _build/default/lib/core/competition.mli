(** Bertrand price competition between transit providers.

    The paper treats competitors only through {e residual} demand and
    notes its model "does not capture full dynamic interaction between
    competing ISPs (e.g., price wars)". This extension adds the standard
    multiproduct-logit Bertrand game: each provider sells every flow at
    its own costs, consumers choose a (provider, flow) pair or nothing,
    and providers best-respond in prices.

    For a multiproduct logit firm, all optimal prices share one margin
    [m_f = 1 / (alpha (1 - S_f))] where [S_f] is the firm's total share
    — the single-firm Eq. 9 generalizes with [s_0] replaced by
    "everything not sold by me". Nash equilibrium is computed by damped
    best-response iteration on the margins. *)

type firm = {
  name : string;
  costs : float array;  (** Per-flow delivery costs; length = #flows. *)
}

type equilibrium = {
  margins : float array;  (** Per firm. *)
  prices : float array array;  (** [prices.(f).(i) = costs + margin]. *)
  shares : float array;  (** Per-firm total market share. *)
  s0 : float;  (** Non-participating share at equilibrium. *)
  profits : float array;  (** Per firm, scaled by the population [k]. *)
  iterations : int;
}

val firm : name:string -> costs:float array -> firm

val best_response_margin :
  alpha:float ->
  valuations:float array ->
  firms:firm array ->
  margins:float array ->
  int ->
  float
(** The profit-maximizing common margin of firm [f] holding the other
    margins fixed (scalar fixed point, solved by bisection). Exposed for
    tests. *)

val nash :
  ?tol:float ->
  ?max_iter:int ->
  ?k:float ->
  alpha:float ->
  valuations:float array ->
  firm array ->
  equilibrium
(** Damped best-response iteration from the monopoly margins. Raises
    [Invalid_argument] on an empty firm array, mismatched cost lengths
    or a non-positive [alpha]. [k] (population) defaults to 1. *)

val monopoly : ?k:float -> alpha:float -> valuations:float array -> firm -> equilibrium
(** Single-firm benchmark (equals {!Logit.optimize}). *)
