type experiment = { price : float; demand : float }

let validate_experiment e =
  if not (e.price > 0. && e.demand > 0.) then
    invalid_arg "Estimate: experiments need positive price and demand"

let alpha_of_flow experiments =
  List.iter validate_experiment experiments;
  let xs = Array.of_list (List.map (fun e -> log e.price) experiments) in
  let ys = Array.of_list (List.map (fun e -> -.log e.demand) experiments) in
  if Array.length xs < 2 then
    invalid_arg "Estimate.alpha_of_flow: need at least two observations";
  (Numerics.Fit.linear ~xs ~ys).Numerics.Fit.slope

let alpha_pooled flows =
  (* Fixed effects: demean each flow's (ln p, -ln q) pairs so per-flow
     valuations drop out, then regress the pooled deviations. *)
  let points =
    List.concat_map
      (fun experiments ->
        match experiments with
        | [] | [ _ ] -> []
        | _ ->
            List.iter validate_experiment experiments;
            let xs = List.map (fun e -> log e.price) experiments in
            let ys = List.map (fun e -> -.log e.demand) experiments in
            let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
            let mx = mean xs and my = mean ys in
            List.map2 (fun x y -> (x -. mx, y -. my)) xs ys)
      flows
  in
  if List.length points < 2 then
    invalid_arg "Estimate.alpha_pooled: not enough observations";
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  (Numerics.Fit.linear ~xs ~ys).Numerics.Fit.slope

let probe ?(noise_cv = 0.05) ?rng market ~discounts =
  (match market.Market.spec with
  | Market.Ced -> ()
  | Market.Logit _ | Market.Linear _ ->
      invalid_arg "Estimate.probe: CED markets only");
  Array.iter
    (fun d -> if not (d > 0.) then invalid_arg "Estimate.probe: non-positive discount")
    discounts;
  let rng = match rng with Some r -> r | None -> Numerics.Rng.create 17 in
  Array.to_list
    (Array.map
       (fun v ->
         Array.to_list
           (Array.map
              (fun d ->
                let price = market.Market.p0 *. d in
                let noise =
                  if Float.equal noise_cv 0. then 1.
                  else Numerics.Dist.lognormal_of_mean_cv rng ~mean:1. ~cv:noise_cv
                in
                { price; demand = Ced.demand ~alpha:market.Market.alpha ~v price *. noise })
              discounts))
       market.Market.valuations)

let calibrated_dynamics ?noise_cv ?(discounts = [| 0.7; 0.85; 1.0; 1.15; 1.3 |]) ~truth
    ~strategy ~n_bundles ~rounds () =
  let experiments = probe ?noise_cv truth ~discounts in
  let estimated_alpha = Float.max 1.0001 (alpha_pooled experiments) in
  Dynamics.simulate
    { Dynamics.truth; estimated_alpha; strategy; n_bundles; rounds; damping = 1. }
