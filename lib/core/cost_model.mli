(** The paper's four network cost models (§3.3).

    Each model maps a flow to a {e relative} cost; the absolute scale γ
    is recovered separately by {!Market.fit} from the
    profit-maximization assumption, so only cost {e ratios} matter here.
    Every model carries the paper's tuning parameter θ:

    - {b Linear}: cost grows linearly with distance; θ is the base cost
      as a fraction of the maximum distance cost.
    - {b Concave}: cost grows as [a log_b (d / d_max) + c] (the Fig. 6
      fit); θ again sets the base cost.
    - {b Regional}: metro / national / international cost [1], [2^θ],
      [3^θ].
    - {b Destination_type}: on-net traffic costs [1], off-net costs [2]
      (the ISP is paid on both ends of customer-to-customer traffic);
      θ is the fraction of flows that are on-net. *)

type t =
  | Linear of { theta : float }
  | Concave of { theta : float; a : float; b : float; c : float }
  | Regional of { theta : float }
  | Destination_type of { theta : float }

val linear : theta:float -> t
val concave : theta:float -> t
(** The Fig. 6 shape: [a = 0.5], [b = 6], [c = 1]. *)

val regional : theta:float -> t
val destination_type : theta:float -> t
(** All constructors validate θ: non-negative, and within [\[0, 1\]] for
    [Destination_type]. *)

val name : t -> string
val theta : t -> float

val relative_costs : t -> Flow.t array -> float array
(** Strictly positive relative cost per flow, in input order. For
    [Destination_type], on-net flags are re-drawn deterministically from
    flow ids so that a θ sweep changes the on-net share without touching
    the flows. *)

val freeze : t -> Flow.t array -> Flow.t -> float
(** [freeze t flows] is the relative-cost evaluator with the
    flow-set-wide normalizations (the linear/concave [d_max], the
    concave base offset) pinned to [flows]. [relative_costs t flows] is
    exactly [Array.map (freeze t flows) flows]; the streaming re-tier
    loop uses the frozen evaluator to cost flows that appear after its
    calibration window without rescaling existing costs. Raises
    [Invalid_argument] on an empty reference set. *)

val is_on_net : theta:float -> int -> bool
(** The deterministic quasi-random on-net assignment used by
    [Destination_type] (golden-ratio low-discrepancy sequence over flow
    ids). *)

val pp : Format.formatter -> t -> unit
