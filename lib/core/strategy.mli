(** The six bundling strategies of §4.2.1, plus the class-aware
    refinement of §4.3.1.

    All heuristics produce at most [n_bundles] bundles (fewer when a
    range ends up empty, mirroring the paper's cost-division dips).

    The [Optimal] strategy: for CED the profit of a flow at a common
    price [P] factors as [v_i^alpha * P^(-alpha) (P - c_i)], so the best
    bundle for a flow depends only on its cost and the optimal partition
    is contiguous in cost order — an O(B n^2) dynamic program over
    cost-sorted flows is {e exact}. For logit, optimal profit is
    monotone in [S = sum_b W_b e^(-alpha c_b)] (see {!Logit}), which is
    additive over bundles, so the same DP applies; contiguity in cost is
    near-exact there, and the result is additionally floored at the best
    heuristic (tests cross-check against exhaustive search on small
    instances). *)

type t =
  | Optimal
  | Demand_weighted
  | Cost_weighted
  | Profit_weighted
  | Profit_weighted_classes
      (** Profit-weighted, but flows of different cost classes (on-net
          vs off-net, or locality under the regional model) never share
          a bundle. *)
  | Cost_division
  | Index_division

val all : t list
val name : t -> string
val of_name : string -> t
(** Raises [Invalid_argument] on unknown names. *)

val apply : t -> Market.t -> n_bundles:int -> Bundle.t
(** Raises [Invalid_argument] when [n_bundles < 1]. [Optimal] runs the
    segment DP through {!Numerics.Segdp.solve} (region-wise
    divide-and-conquer layers, Monge/total-monotonicity spot-checks,
    SMAWK middle rung, exact quadratic backstop) — cut-for-cut
    identical to the historical O(B n^2) DP. *)

val dp_inputs : Market.t -> int array * (int -> int -> float) * int array
(** [dp_inputs market] is [(order, seg_value, regions)]: flow indices
    in ascending-cost order (ties by index), the closed-form segment
    profit of the contiguous run of positions [lo..hi] (inclusive) of
    [order] under the market's demand spec, and the piecewise-region
    starts to pass to {!Numerics.Segdp.solve} — exactly the inputs
    [Optimal]'s DP runs on. [regions] is [[|0|]] for CED/linear; for
    logit it splits the cost order at clamped/underflowed prefix-sum
    ranges and at the exp-saturation point, so each region's segment
    profit is a single smooth, inverse-Monge branch. Exposed for the
    kernel bench and the fast-vs-quadratic regression suite. O(n)
    setup; each [seg_value] call is O(1) off prefix sums. *)

val token_bucket : weights:float array -> order:int array -> n_bundles:int -> Bundle.t
(** The paper's token-bucket grouping: budget [sum w / B] per bundle,
    flows traversed in [order], each assigned to the first bundle that is
    empty or still has budget; overdraft carries into the next bundle.
    Exposed for tests. *)

val exhaustive_optimal : Market.t -> n_bundles:int -> Bundle.t
(** True exhaustive search over all set partitions into at most
    [n_bundles] parts. Exponential — intended for cross-checking
    [Optimal] on small instances (n <= 12 enforced). *)
