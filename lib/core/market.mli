(** A fitted transit market: flows plus the derived model parameters.

    Fitting implements the paper's central inversion (§4.1): assume the
    ISP currently charges one blended price [p0] for everything and is
    already profit-maximizing. Then the observed demands pin down the
    valuations [v_i], and stationarity of profit at [p0] pins down the
    scale γ that converts relative costs [f(d_i)] into absolute costs
    [c_i = γ f(d_i)]. Counterfactual bundlings are evaluated against the
    resulting market. *)

type demand_spec =
  | Ced  (** Constant-elasticity demand. *)
  | Logit of { s0 : float }
      (** Logit demand with non-participating share [s0] at [p0]. *)
  | Linear of { epsilon : float }
      (** Linear demand with common point elasticity [epsilon] at [p0]
          (extension; see {!Lin}). *)

val demand_spec_name : demand_spec -> string

type memo
(** Lazily filled per-market derived arrays ([v_i^alpha], linear slopes,
    profit potentials). Deterministic pure functions of the fit, so the
    lazy fill is a benign race under the domain pool; kept as plain
    mutable options so markets stay marshallable with empty flags. *)

type t = private {
  flows : Flow.t array;
  spec : demand_spec;
  alpha : float;
  p0 : float;  (** The blended rate everything was observed at. *)
  cost_model : Cost_model.t;
  valuations : float array;
      (** Per flow: CED/logit valuations [v_i]; under [Linear], the
          demand intercepts [a_i]. *)
  costs : float array;  (** Absolute costs [gamma * f(d_i)], per flow. *)
  gamma : float;
  k : float;  (** Logit population; [nan] under CED. *)
  memo : memo;
}

val fit :
  spec:demand_spec ->
  alpha:float ->
  p0:float ->
  cost_model:Cost_model.t ->
  Flow.t array ->
  t
(** Raises [Invalid_argument] on an empty flow array, non-positive
    demands, an [alpha] invalid for the chosen model (CED needs
    [alpha > 1], logit [alpha > 0]) or a logit fit whose [p0] cannot
    cover the implied margin (see {!Logit.gamma}). *)

val linear_b : t -> float array
(** The [b_i] slope coefficients of a [Linear] market (derived from the
    observed demands, memoized on first use — do not mutate). Raises
    [Invalid_argument] on other specs. *)

val pow_valuations : t -> float array
(** Per-flow [v_i ** alpha], memoized on first use (do not mutate). The
    CED segment DP and bundle pricing are dominated by this power when
    recomputed per call. *)

val of_parameters :
  spec:demand_spec ->
  alpha:float ->
  ?p0:float ->
  ?k:float ->
  valuations:float array ->
  costs:float array ->
  Flow.t array ->
  t
(** Bypass fitting: build a market from explicit valuations and costs
    (toy examples, tests, Fig. 1). [p0] defaults to the single-bundle
    optimal price implied by the parameters; [k] (logit population)
    defaults to [1]. The stored cost model is a linear placeholder with
    [gamma = 1]. Not supported for [Linear] demand (whose second
    coefficient only exists through the fit). *)

val n_flows : t -> int

val potential_profits : t -> float array
(** Per-flow profit potential: Eq. 12 for CED; for logit, Eq. 13's
    observation that potential profit is proportional to demand. Used by
    profit-weighted bundling. *)

val pp : Format.formatter -> t -> unit
