(** The experiment registry: one entry per table/figure of the paper
    that the model reproduces.

    Each experiment regenerates the corresponding artifact as one or
    more {!Report.t} tables (a figure's line series become columns).
    Everything is deterministic. Figure 2 (direct peering) and
    Figure 17 (accounting) exercise the routing substrate and live in
    the benchmark harness and examples instead; see DESIGN.md's
    experiment index.

    Grid-shaped experiments additionally expose their internal grid as
    a {e cell plan}: [cells ()] lists independent sub-computations (one
    per [(network, spec, bundle-count)]-style grid cell) and [assemble]
    is a pure fold of the cell outputs back into the same report list
    that [run] produces. {!Runner.run_experiments} schedules cells (not
    whole experiments) on the domain pool; because cells are listed and
    assembled in submission order, output is byte-identical at any job
    count — [run_cells e = e.run ()] always, which the property suite
    checks on random parameters. Scalar experiments use a one-cell
    fallback ({!scalar}). *)

type cell_output =
  | Rows of string list list
      (** Rows contributed to the experiment's tables, in grid order. *)
  | Tables of Report.t list  (** A whole-experiment (scalar) result. *)

type cell = {
  label : string;  (** e.g. ["eu_isp/b=3"]; unique within the experiment. *)
  compute : unit -> cell_output;
}

type t = {
  id : string;  (** e.g. ["fig8"], ["table1"]. *)
  description : string;
  run : unit -> Report.t list;  (** The direct (serial) path. *)
  cells : unit -> cell list;
      (** The cell-level plan, in deterministic grid order. Cheap: cells
          close over parameters, the expensive work happens in
          [compute]. *)
  assemble : cell_output list -> Report.t list;
      (** Pure fold of the cell outputs (in [cells ()] order) into the
          experiment's tables; byte-identical to [run ()]. *)
}

val all : t list
(** In paper order. *)

val ids : unit -> string list
val find : string -> t
(** Raises [Not_found]. *)

val run_cells : t -> Report.t list
(** [assemble (List.map compute (cells ()))] — the decomposed serial
    path; always equals [run ()]. *)

val scalar : id:string -> description:string -> (unit -> Report.t list) -> t
(** The one-cell fallback for experiments without a grid shape. *)

val capture_experiment :
  ?alpha:float ->
  ?p0:float ->
  id:string ->
  description:string ->
  title_of:(string -> string) ->
  spec:Market.demand_spec ->
  networks:string list ->
  bundle_counts:int list ->
  unit ->
  t
(** A fig8/fig9-class strategy sweep: one profit-capture table per
    network, one row per bundle count, one column per applicable
    strategy — decomposed into one cell per [(network, bundle-count)]
    pair. Exposed so tests can check the cell decomposition on random
    parameter grids. *)

(** Default evaluation parameters (§4.2.2): [alpha = 1.1],
    [p0 = $20/Mbps/month], linear cost model with [theta = 0.2], logit
    non-participation [s0 = 0.2], bundle counts 1..6. *)
module Defaults : sig
  val alpha : float
  val p0 : float
  val theta : float
  val s0 : float
  val bundle_counts : int list
  val networks : string list
end

val workload : string -> Flowgen.Workload.t
(** Calibrated workload for a network name, memoized in the engine's
    keyed artifact cache ({!Engine.Cache}); domain-safe. *)

val dataset : string -> Flow.t array
(** [Dataset.of_workload (workload name)], memoized alongside. *)

val market :
  ?alpha:float ->
  ?p0:float ->
  ?cost_model:Cost_model.t ->
  spec:Market.demand_spec ->
  string ->
  Market.t
(** Fitted market for a network under the defaults, with overrides. *)

val context :
  ?alpha:float ->
  ?p0:float ->
  ?cost_model:Cost_model.t ->
  spec:Market.demand_spec ->
  string ->
  Capture.context
(** [Capture.context] of the corresponding {!market}, memoized under the
    same key so concurrent grid cells share one computation. *)
