(** The experiment registry: one entry per table/figure of the paper
    that the model reproduces.

    Each experiment regenerates the corresponding artifact as one or
    more {!Report.t} tables (a figure's line series become columns).
    Everything is deterministic. Figure 2 (direct peering) and
    Figure 17 (accounting) exercise the routing substrate and live in
    the benchmark harness and examples instead; see DESIGN.md's
    experiment index. *)

type t = {
  id : string;  (** e.g. ["fig8"], ["table1"]. *)
  description : string;
  run : unit -> Report.t list;
}

val all : t list
(** In paper order. *)

val ids : unit -> string list
val find : string -> t
(** Raises [Not_found]. *)

(** Default evaluation parameters (§4.2.2): [alpha = 1.1],
    [p0 = $20/Mbps/month], linear cost model with [theta = 0.2], logit
    non-participation [s0 = 0.2], bundle counts 1..6. *)
module Defaults : sig
  val alpha : float
  val p0 : float
  val theta : float
  val s0 : float
  val bundle_counts : int list
  val networks : string list
end

val workload : string -> Flowgen.Workload.t
(** Calibrated workload for a network name, memoized in the engine's
    keyed artifact cache ({!Engine.Cache}); domain-safe. *)

val dataset : string -> Flow.t array
(** [Dataset.of_workload (workload name)], memoized alongside. *)

val market :
  ?alpha:float ->
  ?p0:float ->
  ?cost_model:Cost_model.t ->
  spec:Market.demand_spec ->
  string ->
  Market.t
(** Fitted market for a network under the defaults, with overrides. *)
