let check_alpha alpha =
  if not (alpha > 1.) then invalid_arg "Ced: alpha must be > 1"

let check_price p = if not (p > 0.) then invalid_arg "Ced: price must be positive"

let demand ~alpha ~v p =
  check_alpha alpha;
  check_price p;
  (v /. p) ** alpha

let inverse_demand ~alpha ~v q =
  check_alpha alpha;
  if not (q > 0.) then invalid_arg "Ced.inverse_demand: quantity must be positive";
  v /. (q ** (1. /. alpha))

let flow_profit ~alpha ~v ~c p = demand ~alpha ~v p *. (p -. c)

let optimal_price ~alpha ~c =
  check_alpha alpha;
  if not (c > 0.) then invalid_arg "Ced.optimal_price: cost must be positive";
  alpha *. c /. (alpha -. 1.)

let potential_profit ~alpha ~v ~c =
  flow_profit ~alpha ~v ~c (optimal_price ~alpha ~c)

let check_bundle valuations costs =
  if Array.length valuations <> Array.length costs then
    invalid_arg "Ced: valuations/costs length mismatch";
  if Array.length valuations = 0 then invalid_arg "Ced: empty bundle"

let bundle_price_pow ~alpha ~pow_valuations ~costs =
  check_alpha alpha;
  check_bundle pow_valuations costs;
  let n = Array.length pow_valuations in
  alpha
  *. Numerics.Stats.sum_init n (fun i -> costs.(i) *. pow_valuations.(i))
  /. ((alpha -. 1.) *. Numerics.Stats.sum pow_valuations)

let bundle_price ~alpha ~valuations ~costs =
  check_alpha alpha;
  bundle_price_pow ~alpha
    ~pow_valuations:(Array.map (fun v -> v ** alpha) valuations)
    ~costs

let bundle_profit ~alpha ~valuations ~costs ~price =
  check_bundle valuations costs;
  let profits =
    Array.map2 (fun v c -> flow_profit ~alpha ~v ~c price) valuations costs
  in
  Numerics.Stats.sum profits

let valuation_of_demand ~alpha ~p0 ~q =
  check_alpha alpha;
  check_price p0;
  if not (q > 0.) then invalid_arg "Ced.valuation_of_demand: demand must be positive";
  p0 *. (q ** (1. /. alpha))

let gamma ~alpha ~p0 ~valuations ~rel_costs =
  check_alpha alpha;
  check_price p0;
  check_bundle valuations rel_costs;
  let va = Array.map (fun v -> v ** alpha) valuations in
  let fva = Array.map2 (fun f w -> f *. w) rel_costs va in
  p0 *. (alpha -. 1.) *. Numerics.Stats.sum va /. (alpha *. Numerics.Stats.sum fva)

let consumer_surplus ~alpha ~v p =
  let q = demand ~alpha ~v p in
  let exponent = 1. -. (1. /. alpha) in
  (v *. (q ** exponent) /. exponent) -. (p *. q)
