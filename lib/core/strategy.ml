type t =
  | Optimal
  | Demand_weighted
  | Cost_weighted
  | Profit_weighted
  | Profit_weighted_classes
  | Cost_division
  | Index_division

let all =
  [
    Optimal; Demand_weighted; Cost_weighted; Profit_weighted;
    Profit_weighted_classes; Cost_division; Index_division;
  ]

let name = function
  | Optimal -> "optimal"
  | Demand_weighted -> "demand-weighted"
  | Cost_weighted -> "cost-weighted"
  | Profit_weighted -> "profit-weighted"
  | Profit_weighted_classes -> "profit-weighted-classes"
  | Cost_division -> "cost-division"
  | Index_division -> "index-division"

let of_name s =
  match List.find_opt (fun t -> String.equal (name t) s) all with
  | Some t -> t
  | None -> invalid_arg ("Strategy.of_name: unknown strategy " ^ s)

(* Indices [0, n) sorted by a per-flow key, decreasing. Ties break by
   index for determinism. Monomorphic comparisons: the keys are floats
   (Float.compare totally orders NaN exactly like the polymorphic
   compare did, so this is behavior-preserving). *)
let order_by_desc (key : float array) n =
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match Float.compare key.(j) key.(i) with 0 -> Int.compare i j | c -> c)
    idx;
  idx

let token_bucket ~weights ~order ~n_bundles =
  let n = Array.length order in
  if n_bundles < 1 then invalid_arg "Strategy.token_bucket: n_bundles < 1";
  if Array.length weights <> n then
    invalid_arg "Strategy.token_bucket: weights/order length mismatch";
  let total = Numerics.Stats.sum (Array.map (fun i -> weights.(i)) order) in
  let budget = total /. float_of_int n_bundles in
  let budgets = Array.make n_bundles budget in
  let members = Array.make n_bundles [] in
  let current = ref 0 in
  Array.iter
    (fun i ->
      (* Move to the first bundle that is empty or still has budget;
         never move past the last bundle. *)
      while
        !current < n_bundles - 1
        && members.(!current) <> []
        && budgets.(!current) <= 0.
      do
        (* Overdraft carries into the next bundle (the paper's
           t_{j+1} += t_j rule). *)
        if budgets.(!current) < 0. then begin
          budgets.(!current + 1) <- budgets.(!current + 1) +. budgets.(!current);
          budgets.(!current) <- 0.
        end;
        incr current
      done;
      members.(!current) <- i :: members.(!current);
      budgets.(!current) <- budgets.(!current) -. weights.(i))
    order;
  Bundle.of_groups ~n_flows:n (Array.to_list (Array.map List.rev members))

(* Divide [0, max cost] into equal ranges; empty ranges vanish. *)
let cost_division costs ~n_bundles =
  let n = Array.length costs in
  let cmax = Numerics.Stats.max costs in
  let width = cmax /. float_of_int n_bundles in
  let assignment =
    Array.init n (fun i ->
        if width <= 0. then 0
        else
          let b = int_of_float (costs.(i) /. width) in
          if b >= n_bundles then n_bundles - 1 else b)
  in
  Bundle.of_assignment ~n_bundles assignment

let index_division costs ~n_bundles =
  let n = Array.length costs in
  let by_cost = order_by_desc (Array.map (fun c -> -.c) costs) n in
  let b = min n_bundles n in
  let cuts = List.init (b - 1) (fun j -> (j + 1) * n / b) in
  let cuts = List.sort_uniq Int.compare (List.filter (fun c -> c > 0 && c < n) cuts) in
  Bundle.contiguous ~order:by_cost ~cuts

(* The class label used by the class-aware profit weighting: cost classes
   under the active cost model. *)
let flow_class market i =
  let f = market.Market.flows.(i) in
  match market.Market.cost_model with
  | Cost_model.Destination_type { theta } ->
      if Cost_model.is_on_net ~theta f.Flow.id then 0 else 1
  | Cost_model.Regional _ -> (
      match f.Flow.locality with
      | Flow.Metro -> 0
      | Flow.National -> 1
      | Flow.International -> 2)
  | Cost_model.Linear _ | Cost_model.Concave _ -> 0

let profit_weighted_classes market ~n_bundles =
  let n = Market.n_flows market in
  let profits = Market.potential_profits market in
  (* One pass over the cost model up front; the mass/filter loops below
     would otherwise re-derive the class per class per flow. *)
  let cls = Array.init n (flow_class market) in
  let classes = List.sort_uniq Int.compare (Array.to_list cls) in
  let class_count = List.length classes in
  if class_count = 1 || n_bundles < class_count then
    (* One class, or not enough bundles to keep classes apart: plain
       profit weighting within the budget. *)
    token_bucket ~weights:profits ~order:(order_by_desc profits n) ~n_bundles
  else if n_bundles = class_count then begin
    (* Exactly one bundle per class. *)
    let rank c =
      let rec find k = function
        | [] -> assert false
        | c' :: rest -> if c = c' then k else find (k + 1) rest
      in
      find 0 classes
    in
    let assignment = Array.init n (fun i -> rank cls.(i)) in
    Bundle.of_assignment ~n_bundles:class_count assignment
  end
  else begin
    (* Allocate bundles to classes proportionally to their profit mass
       (at least one each), then token-bucket within each class. *)
    let mass =
      List.map
        (fun c ->
          let total = ref 0. in
          for i = 0 to n - 1 do
            if cls.(i) = c then total := !total +. profits.(i)
          done;
          (c, !total))
        classes
    in
    let total_mass = List.fold_left (fun acc (_, m) -> acc +. m) 0. mass in
    let spare = n_bundles - class_count in
    let allocations =
      List.map
        (fun (c, m) ->
          let extra =
            if total_mass <= 0. then 0
            else int_of_float (Float.round (float_of_int spare *. m /. total_mass))
          in
          (c, 1 + extra))
        mass
    in
    (* Rounding can over/under-shoot; trim or pad on the largest class. *)
    let allocated = List.fold_left (fun acc (_, b) -> acc + b) 0 allocations in
    let allocations =
      match allocations with
      | [] -> []
      | (c0, b0) :: rest -> (c0, max 1 (b0 + n_bundles - allocated)) :: rest
    in
    let groups =
      List.concat_map
        (fun (c, bundles_for_class) ->
          let indices =
            List.filter (fun i -> cls.(i) = c) (List.init n Fun.id)
          in
          let idx = Array.of_list indices in
          let w = Array.map (fun i -> profits.(i)) idx in
          let local_order = order_by_desc w (Array.length idx) in
          let sub =
            token_bucket ~weights:w ~order:local_order
              ~n_bundles:(min bundles_for_class (Array.length idx))
          in
          Array.to_list
            (Array.map (fun group -> Array.to_list (Array.map (fun j -> idx.(j)) group))
               (sub :> int array array)))
        allocations
    in
    Bundle.of_groups ~n_flows:n groups
  end

(* --- Optimal: DP over flows sorted by cost ----------------------------- *)

(* The DP inputs: flow indices in ascending-cost order, the closed-form
   segment profit over inclusive positions of that order, and the
   piecewise-region starts for [Numerics.Segdp] (logit only; see
   below). Exposed (see the mli) so the bench and the regression suite
   can time and cross-check the kernels on exactly the seg_value the
   strategy runs. The partition itself is delegated to
   [Numerics.Segdp.solve]: region-wise divide-and-conquer layers with
   Monge/total-monotonicity spot-checks, an SMAWK middle rung and an
   exact quadratic backstop, cut-for-cut identical to the historical
   O(B n^2) DP. Prefix rows are [floatarray]s read through unsafe gets:
   the indices are pinned to [0, n] by construction and the closures
   are the hottest call in the repo (billions of calls per bench
   sweep). *)
let dp_inputs market =
  let { Market.alpha; valuations; costs; spec; _ } = market in
  let n = Market.n_flows market in
  let order = order_by_desc (Array.map (fun c -> -.c) costs) n in
  let fget = Float.Array.unsafe_get in
  let fset = Float.Array.unsafe_set in
  match spec with
  | Market.Ced ->
      (* Prefix sums of v^alpha and c v^alpha in cost order give O(1)
         segment profits at the closed-form optimal bundle price. *)
      let pva = Market.pow_valuations market in
      let av = Float.Array.make (n + 1) 0. in
      let acv = Float.Array.make (n + 1) 0. in
      for k = 0 to n - 1 do
        let i = order.(k) in
        let w = pva.(i) in
        fset av (k + 1) (fget av k +. w);
        fset acv (k + 1) (fget acv k +. (costs.(i) *. w))
      done;
      let seg lo hi =
        let sum_v = fget av (hi + 1) -. fget av lo in
        let sum_cv = fget acv (hi + 1) -. fget acv lo in
        if sum_v <= 0. then 0.
        else
          let price = alpha *. sum_cv /. ((alpha -. 1.) *. sum_v) in
          (price ** -.alpha) *. ((sum_v *. price) -. sum_cv)
      in
      (order, seg, [| 0 |])
  | Market.Linear _ ->
      (* Prefix sums of a, b, b*c, a*c give O(1) segment profit at the
         closed-form bundle price. The common-elasticity fit makes
         a_i / b_i constant across flows, so the optimal partition is
         again contiguous in cost (the same argument as for CED). *)
      let b_all = Market.linear_b market in
      let sa = Float.Array.make (n + 1) 0. in
      let sb = Float.Array.make (n + 1) 0. in
      let sbc = Float.Array.make (n + 1) 0. in
      let sac = Float.Array.make (n + 1) 0. in
      for k = 0 to n - 1 do
        let i = order.(k) in
        fset sa (k + 1) (fget sa k +. valuations.(i));
        fset sb (k + 1) (fget sb k +. b_all.(i));
        fset sbc (k + 1) (fget sbc k +. (b_all.(i) *. costs.(i)));
        fset sac (k + 1) (fget sac k +. (valuations.(i) *. costs.(i)))
      done;
      let seg lo hi =
        let a_sum = fget sa (hi + 1) -. fget sa lo in
        let b_sum = fget sb (hi + 1) -. fget sb lo in
        let bc_sum = fget sbc (hi + 1) -. fget sbc lo in
        let ac_sum = fget sac (hi + 1) -. fget sac lo in
        if b_sum <= 0. then 0.
        else
          let price = Lin.bundle_price ~a_sum ~b_sum ~bc_sum in
          Float.max 0. (Lin.bundle_profit ~a_sum ~b_sum ~bc_sum ~ac_sum ~price)
      in
      (order, seg, [| 0 |])
  | Market.Logit _ ->
      (* Maximize S = sum_b W_b e^(-alpha c_bar_b); shift exponents so
         the segment terms stay in floating range. *)
      let vmax = Numerics.Stats.max valuations in
      let cmin = Numerics.Stats.min costs in
      let w = Float.Array.make (n + 1) 0. in
      let wc = Float.Array.make (n + 1) 0. in
      for k = 0 to n - 1 do
        let i = order.(k) in
        let wi = exp (alpha *. (valuations.(i) -. vmax)) in
        fset w (k + 1) (fget w k +. wi);
        fset wc (k + 1) (fget wc k +. (wi *. costs.(i)))
      done;
      let seg lo hi =
        let sum_w = fget w (hi + 1) -. fget w lo in
        if sum_w <= 0. then 0.
        else
          let c_bar = (fget wc (hi + 1) -. fget wc lo) /. sum_w in
          sum_w *. exp (-.alpha *. (c_bar -. cmin))
      in
      (* Piecewise decomposition for Segdp's region-wise D&C. The
         shifted weights can underflow to 0 or be absorbed by the
         running prefix sum (wi below one ulp of the accumulator), and
         exp(-alpha (c - cmin)) underflows once the cost spread exceeds
         ~690/alpha; both clamp seg to a plateau, and a plateau glued to
         a smooth range breaks the global Monge property the D&C rides
         on. Region starts mark every transition between "flat" and
         "live" prefix increments plus the exp-saturation point — within
         a region the profit is one smooth branch and inverse Monge
         again. A pathologically fragmented input (>64 regions) is left
         undecomposed; the SMAWK and quadratic rungs still certify it. *)
      let starts = ref [] in
      if n > 1 then begin
        let flat k =
          Float.equal (fget w (k + 1)) (fget w k)
          && Float.equal (fget wc (k + 1)) (fget wc k)
        in
        let prev_flat = ref (flat 0) in
        for k = 1 to n - 1 do
          let f = flat k in
          if f <> !prev_flat then starts := k :: !starts;
          prev_flat := f
        done;
        let sat = ref 0 in
        while
          !sat < n && alpha *. (costs.(order.(!sat)) -. cmin) < 690.
        do
          incr sat
        done;
        if !sat > 0 && !sat < n then starts := !sat :: !starts;
        (* Leading noise stretch: cheap flows whose shifted weights are
           denormal-adjacent junk (nonzero, but negligible against the
           market's total mass) keep the prefix moving — so the flat
           test above never fires — while every segment they span is
           pure rounding noise and its argmax is decided at ulp scale.
           Isolate each pre-mass position as a singleton region: those
           columns degrade to exact scans, the live range keeps the
           monotone D&C. *)
        let total_w = fget w n in
        let mass_start = ref 0 in
        while
          !mass_start < n
          && fget w (!mass_start + 1) < total_w *. 0x1p-53
        do
          incr mass_start
        done;
        for k = 1 to Stdlib.min !mass_start (n - 1) do
          starts := k :: !starts
        done
      end;
      let region_starts = List.sort_uniq Int.compare (0 :: !starts) in
      let regions =
        if List.length region_starts > 64 then [| 0 |]
        else Array.of_list region_starts
      in
      (order, seg, regions)

let optimal_dp market ~n_bundles =
  let order, seg_value, regions = dp_inputs market in
  let n = Market.n_flows market in
  let r = Numerics.Segdp.solve ~regions ~n ~n_bundles seg_value in
  Bundle.contiguous ~order ~cuts:r.Numerics.Segdp.cuts

let rec apply strategy market ~n_bundles =
  if n_bundles < 1 then invalid_arg "Strategy.apply: n_bundles < 1";
  let n = Market.n_flows market in
  let costs = market.Market.costs in
  match strategy with
  | Demand_weighted ->
      let demands = Flow.demands market.Market.flows in
      token_bucket ~weights:demands ~order:(order_by_desc demands n) ~n_bundles
  | Cost_weighted ->
      let inv = Array.map (fun c -> 1. /. c) costs in
      token_bucket ~weights:inv ~order:(order_by_desc inv n) ~n_bundles
  | Profit_weighted ->
      let profits = Market.potential_profits market in
      token_bucket ~weights:profits ~order:(order_by_desc profits n) ~n_bundles
  | Profit_weighted_classes -> profit_weighted_classes market ~n_bundles
  | Cost_division -> cost_division costs ~n_bundles
  | Index_division -> index_division costs ~n_bundles
  | Optimal -> (
      let dp = optimal_dp market ~n_bundles in
      match market.Market.spec with
      | Market.Ced | Market.Linear _ -> dp
      | Market.Logit _ ->
          (* Contiguity in cost is only near-exact for logit; floor the
             DP at the heuristics. Each candidate is priced exactly once
             (the fold carries (bundle, profit) pairs; re-evaluating the
             incumbent per step cost O(candidates * n)). *)
          let candidates =
            List.filter_map
              (fun s ->
                if s = Optimal then None else Some (apply s market ~n_bundles))
              all
          in
          let profit b = (Pricing.evaluate market b).Pricing.profit in
          let best, _ =
            List.fold_left
              (fun (best, best_profit) candidate ->
                let p = profit candidate in
                if p > best_profit then (candidate, p) else (best, best_profit))
              (dp, profit dp) candidates
          in
          best)

(* --- Exhaustive optimal (for tests) ------------------------------------ *)

let exhaustive_optimal market ~n_bundles =
  let n = Market.n_flows market in
  if n > 12 then invalid_arg "Strategy.exhaustive_optimal: too many flows (max 12)";
  if n_bundles < 1 then invalid_arg "Strategy.exhaustive_optimal: n_bundles < 1";
  let best = ref None in
  let consider assignment used =
    let bundles = Bundle.of_assignment ~n_bundles:used (Array.copy assignment) in
    let profit = (Pricing.evaluate market bundles).Pricing.profit in
    match !best with
    | Some (_, p) when p >= profit -> ()
    | _ -> best := Some (bundles, profit)
  in
  let assignment = Array.make n 0 in
  (* Enumerate set partitions in restricted-growth form, capped at
     [n_bundles] blocks. *)
  let rec go i used =
    if i = n then consider assignment used
    else
      for b = 0 to min used (n_bundles - 1) do
        assignment.(i) <- b;
        go (i + 1) (max used (b + 1))
      done
  in
  go 0 0;
  match !best with Some (bundles, _) -> bundles | None -> assert false
