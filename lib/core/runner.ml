type result = {
  id : string;
  description : string;
  tables : Report.t list;
  wall_s : float;
}

let run_experiments ?jobs ?metrics experiments =
  let tasks = Array.of_list experiments in
  let t0 = Unix.gettimeofday () in
  let results, n_jobs =
    Engine.Pool.with_pool ?jobs (fun pool ->
        ( Engine.Pool.map pool
            (fun (e : Experiment.t) ->
              let s = Unix.gettimeofday () in
              let tables = e.Experiment.run () in
              {
                id = e.Experiment.id;
                description = e.Experiment.description;
                tables;
                wall_s = Unix.gettimeofday () -. s;
              })
            tasks,
          Engine.Pool.jobs pool ))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun m ->
      Engine.Metrics.set_jobs m n_jobs;
      Engine.Metrics.set_wall m wall_s;
      (* Record serially, in submission order, so metrics snapshots are
         as deterministic as the reports themselves. *)
      Array.iter
        (fun r -> Engine.Metrics.record m ~label:r.id ~wall_s:r.wall_s)
        results)
    metrics;
  Array.to_list results

let render results =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (fun r -> List.iter (Report.print ppf) r.tables) results;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let metrics_reports (s : Engine.Metrics.snapshot) =
  let tasks =
    Report.make
      ~title:
        (Printf.sprintf
           "Run metrics: %d task(s), jobs=%d, wall %.3fs, busy %.3fs, pool \
            utilization %.1f%%"
           (List.length s.Engine.Metrics.tasks)
           s.Engine.Metrics.jobs s.Engine.Metrics.wall_s
           s.Engine.Metrics.busy_s
           (100. *. s.Engine.Metrics.utilization))
      ~header:[ "task"; "wall (s)"; "share of busy" ]
      (Engine.Metrics.task_rows s)
  in
  let caches =
    Report.make ~title:"Artifact caches"
      ~header:[ "cache"; "hits"; "disk hits"; "misses"; "hit rate" ]
      (Engine.Metrics.cache_rows s)
      ~notes:
        [
          "misses are artifact computations; enable the disk tier with \
           --cache to persist them under _cache/";
        ]
  in
  [ tasks; caches ]
