type result = {
  id : string;
  description : string;
  tables : Report.t list;
  wall_s : float;
}

(* Cells of every experiment are flattened into one task array (in
   experiment order, then cell order — the topological submission
   order) and scheduled on the pool together, so one slow figure's
   cells interleave with everything else instead of pinning a domain.
   Outputs are sliced back per experiment and assembled in submission
   order, which keeps the rendered bytes independent of [jobs]. *)
let run_experiments ?backend ?retries ?timeout_s ?jobs ?workers ?metrics
    experiments =
  let exps = Array.of_list experiments in
  let plans =
    Array.map (fun (e : Experiment.t) -> Array.of_list (e.Experiment.cells ())) exps
  in
  let tasks =
    Array.concat
      (Array.to_list
         (Array.map (fun cells -> Array.map (fun c -> c) cells) plans))
  in
  let t0 = Unix.gettimeofday () in
  let outputs, n_jobs, domain_busy, used_backend, worker_restarts =
    Engine.Pool.with_pool ?backend ?retries ?timeout_s ?jobs ?workers
      (fun pool ->
        let outputs =
          Engine.Pool.map pool
            (fun (c : Experiment.cell) ->
              let s = Unix.gettimeofday () in
              let out = c.Experiment.compute () in
              (out, Unix.gettimeofday () -. s))
            tasks
        in
        ( outputs,
          Engine.Pool.jobs pool,
          Engine.Pool.busy_times pool,
          Engine.Pool.backend pool,
          Engine.Pool.restarts pool ))
  in
  (* Slice the flat output array back into per-experiment runs and
     assemble each (assembly is pure and cheap; it stays on the calling
     domain). *)
  let offset = ref 0 in
  let results =
    Array.mapi
      (fun i (e : Experiment.t) ->
        let n_cells = Array.length plans.(i) in
        let slice = Array.sub outputs !offset n_cells in
        offset := !offset + n_cells;
        let a0 = Unix.gettimeofday () in
        let tables =
          e.Experiment.assemble (Array.to_list (Array.map fst slice))
        in
        let assemble_s = Unix.gettimeofday () -. a0 in
        let cells_s = Array.fold_left (fun acc (_, s) -> acc +. s) 0. slice in
        {
          id = e.Experiment.id;
          description = e.Experiment.description;
          tables;
          wall_s = cells_s +. assemble_s;
        })
      exps
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Option.iter
    (fun m ->
      Engine.Metrics.set_jobs m n_jobs;
      Engine.Metrics.set_backend m (Engine.Pool.backend_name used_backend);
      Engine.Metrics.set_worker_restarts m worker_restarts;
      Engine.Metrics.set_wall m wall_s;
      Engine.Metrics.set_domain_busy m domain_busy;
      (* Record per-cell wall times serially, in submission order, so
         metrics snapshots are as deterministic as the reports
         themselves. *)
      let cursor = ref 0 in
      Array.iteri
        (fun i (e : Experiment.t) ->
          Array.iter
            (fun (c : Experiment.cell) ->
              let _, cell_s = outputs.(!cursor) in
              incr cursor;
              let label =
                if String.equal c.Experiment.label e.Experiment.id then
                  e.Experiment.id
                else Printf.sprintf "%s/%s" e.Experiment.id c.Experiment.label
              in
              Engine.Metrics.record m ~label ~wall_s:cell_s)
            plans.(i))
        exps)
    metrics;
  Array.to_list results

let render results =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (fun r -> List.iter (Report.print ppf) r.tables) results;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let metrics_reports (s : Engine.Metrics.snapshot) =
  let tasks =
    Report.make
      ~title:
        (Printf.sprintf
           "Run metrics: %d cell(s), jobs=%d (%s backend%s), wall %.3fs, busy \
            %.3fs, pool utilization %.1f%%, load balance %.2f"
           (List.length s.Engine.Metrics.tasks)
           s.Engine.Metrics.jobs s.Engine.Metrics.backend
           (if s.Engine.Metrics.worker_restarts > 0 then
              Printf.sprintf ", %d worker restart(s)"
                s.Engine.Metrics.worker_restarts
            else "")
           s.Engine.Metrics.wall_s s.Engine.Metrics.busy_s
           (100. *. s.Engine.Metrics.utilization)
           s.Engine.Metrics.load_balance)
      ~header:[ "cell"; "wall (s)"; "share of busy" ]
      (Engine.Metrics.task_rows s)
  in
  let caches =
    Report.make ~title:"Artifact caches"
      ~header:
        [ "cache"; "hits"; "disk hits"; "remote hits"; "misses"; "hit rate" ]
      (Engine.Metrics.cache_rows s)
      ~notes:
        [
          "misses are artifact computations; enable the content-addressed \
           disk tier with --cache to persist them under _cas/";
        ]
  in
  let disk =
    match s.Engine.Metrics.disk with
    | None -> []
    | Some d ->
        [
          Report.make ~title:"Disk cache tier"
            ~header:[ "quantity"; "value" ]
            [
              [ "directory"; d.Engine.Cache.dir ];
              [ "object bytes"; string_of_int d.Engine.Cache.bytes ];
              [
                "max bytes";
                (match d.Engine.Cache.max_bytes with
                | Some b -> string_of_int b
                | None -> "unbounded");
              ];
              [ "evictions"; string_of_int d.Engine.Cache.evictions ];
            ]
            ~notes:
              [
                "least-recently-used objects are evicted first once the \
                 tier overflows --cache-max-bytes";
              ];
        ]
  in
  tasks :: caches :: disk
