type outcome = {
  bundles : Bundle.t;
  bundle_prices : float array;
  flow_prices : float array;
  flow_demands : float array;
  profit : float;
  revenue : float;
  delivery_cost : float;
  consumer_surplus : float;
}

let welfare o = o.profit +. o.consumer_surplus

let flow_prices_of_bundle_prices market bundles prices =
  let n = Market.n_flows market in
  let owner = Bundle.member_of bundles ~n_flows:n in
  Array.init n (fun i -> prices.(owner.(i)))

(* Assemble an outcome from per-flow prices under either demand model.
   The aggregate statistics run through [Stats.sum_init] — one pass per
   statistic, no [Array.init] temporaries, and each Kahan accumulator
   sees the same addend sequence as the materialized version, so the
   totals are bit-identical (the goldens pin this). *)
let outcome_at market bundles bundle_prices =
  let { Market.alpha; valuations; costs; k; spec; _ } = market in
  let flow_prices = flow_prices_of_bundle_prices market bundles bundle_prices in
  let n = Market.n_flows market in
  let assemble ~flow_demands ~consumer_surplus =
    let revenue =
      Numerics.Stats.sum_init n (fun i -> flow_prices.(i) *. flow_demands.(i))
    in
    let delivery_cost =
      Numerics.Stats.sum_init n (fun i -> costs.(i) *. flow_demands.(i))
    in
    {
      bundles;
      bundle_prices;
      flow_prices;
      flow_demands;
      profit = revenue -. delivery_cost;
      revenue;
      delivery_cost;
      consumer_surplus;
    }
  in
  match spec with
  | Market.Ced ->
      let flow_demands =
        Array.init n (fun i -> Ced.demand ~alpha ~v:valuations.(i) flow_prices.(i))
      in
      assemble ~flow_demands
        ~consumer_surplus:
          (Numerics.Stats.sum_init n (fun i ->
               Ced.consumer_surplus ~alpha ~v:valuations.(i) flow_prices.(i)))
  | Market.Linear _ ->
      let b = Market.linear_b market in
      let flow_demands =
        Array.init n (fun i -> Lin.demand ~a:valuations.(i) ~b:b.(i) flow_prices.(i))
      in
      assemble ~flow_demands
        ~consumer_surplus:
          (Numerics.Stats.sum_init n (fun i ->
               Lin.consumer_surplus ~a:valuations.(i) ~b:b.(i) flow_prices.(i)))
  | Market.Logit _ ->
      let flow_demands = Logit.demands_at ~alpha ~k ~valuations ~prices:flow_prices in
      assemble ~flow_demands
        ~consumer_surplus:
          (Logit.consumer_surplus ~alpha ~k ~valuations ~prices:flow_prices)

let optimal_bundle_prices market bundles =
  let { Market.alpha; valuations; costs; spec; _ } = market in
  let member_cs = Bundle.gather bundles costs in
  match spec with
  | Market.Ced ->
      (* Gather the memoized [v^alpha] directly: no power per call, and
         the per-bundle price sums run over the same values in the same
         order as [Ced.bundle_price] on the raw valuations. *)
      let member_pva = Bundle.gather bundles (Market.pow_valuations market) in
      Array.init (Bundle.count bundles) (fun b ->
          Ced.bundle_price_pow ~alpha ~pow_valuations:member_pva.(b)
            ~costs:member_cs.(b))
  | Market.Linear _ ->
      let member_vs = Bundle.gather bundles valuations in
      let member_bs = Bundle.gather bundles (Market.linear_b market) in
      Array.init (Bundle.count bundles) (fun g ->
          let bs = member_bs.(g) and cs = member_cs.(g) in
          let a_sum = Numerics.Stats.sum member_vs.(g) in
          let b_sum = Numerics.Stats.sum bs in
          let bc_sum =
            Numerics.Stats.sum_init (Array.length bs) (fun i -> bs.(i) *. cs.(i))
          in
          Lin.bundle_price ~a_sum ~b_sum ~bc_sum)
  | Market.Logit _ ->
      let member_vs = Bundle.gather bundles valuations in
      let count = Bundle.count bundles in
      let bundle_vs = Array.make count 0. in
      let bundle_cs = Array.make count 0. in
      for b = 0 to count - 1 do
        let v, c =
          Logit.bundle_aggregate ~alpha ~valuations:member_vs.(b)
            ~costs:member_cs.(b)
        in
        bundle_vs.(b) <- v;
        bundle_cs.(b) <- c
      done;
      let { Logit.prices; _ } = Logit.optimize ~alpha ~valuations:bundle_vs ~costs:bundle_cs in
      prices

let evaluate market bundles =
  outcome_at market bundles (optimal_bundle_prices market bundles)

let evaluate_at_prices market bundles prices =
  if Array.length prices <> Bundle.count bundles then
    invalid_arg "Pricing.evaluate_at_prices: one price per bundle required";
  outcome_at market bundles prices

let blended market = evaluate market (Bundle.all_in_one ~n_flows:(Market.n_flows market))

let max_profit market =
  let { Market.alpha; valuations; costs; k; spec; _ } = market in
  match spec with
  | Market.Ced | Market.Linear _ ->
      (* Exactly the per-flow potential-profit array the strategies use;
         share the market's memoized copy instead of recomputing it. *)
      Numerics.Stats.sum (Market.potential_profits market)
  | Market.Logit _ ->
      let { Logit.profit_per_k; _ } = Logit.optimize ~alpha ~valuations ~costs in
      k *. profit_per_k

let original_profit market = (blended market).profit
