type t =
  | Linear of { theta : float }
  | Concave of { theta : float; a : float; b : float; c : float }
  | Regional of { theta : float }
  | Destination_type of { theta : float }

let check_theta name theta =
  if theta < 0. then invalid_arg ("Cost_model." ^ name ^ ": negative theta")

let linear ~theta =
  check_theta "linear" theta;
  Linear { theta }

let concave ~theta =
  check_theta "concave" theta;
  Concave { theta; a = 0.5; b = 6.; c = 1. }

let regional ~theta =
  check_theta "regional" theta;
  Regional { theta }

let destination_type ~theta =
  if theta < 0. || theta > 1. then
    invalid_arg "Cost_model.destination_type: theta out of [0, 1]";
  Destination_type { theta }

let name = function
  | Linear _ -> "linear"
  | Concave _ -> "concave"
  | Regional _ -> "regional"
  | Destination_type _ -> "destination-type"

let theta = function
  | Linear { theta } | Regional { theta } | Destination_type { theta } -> theta
  | Concave { theta; _ } -> theta

(* Golden-ratio low-discrepancy assignment: the fraction of ids with
   [is_on_net] true converges to theta, deterministically. *)
let golden = 0.618033988749895

let is_on_net ~theta id =
  let x = float_of_int (id + 1) *. golden in
  x -. Float.of_int (int_of_float x) < theta

(* Relative costs must stay strictly positive; the concave curve can dip
   below zero for very short flows, so clamp. *)
let cost_floor = 0.05

(* [freeze] pins the flow-set-wide normalizations (the d_max of the
   linear/concave models, the concave base offset) to a reference flow
   set and returns a per-flow evaluator. [relative_costs] is the same
   evaluator applied to its own reference set, so the two cannot drift
   apart; the streaming re-tier loop uses [freeze] directly to price
   flows that appear after its calibration window without re-scaling
   every existing cost. *)
let freeze t flows =
  if Array.length flows = 0 then
    invalid_arg "Cost_model.freeze: empty reference flow set";
  match t with
  | Linear { theta } ->
      let dmax = Numerics.Stats.max (Flow.distances flows) in
      let base = theta *. dmax in
      fun (f : Flow.t) -> Float.max cost_floor (f.distance_miles +. base)
  | Concave { theta; a; b; c } ->
      let dmax = Float.max 1. (Numerics.Stats.max (Flow.distances flows)) in
      let curve (f : Flow.t) =
        let x = Float.max 1e-3 (f.distance_miles /. dmax) in
        Float.max cost_floor ((a *. (log x /. log b)) +. c)
      in
      let base = theta *. Numerics.Stats.max (Array.map curve flows) in
      fun f -> curve f +. base
  | Regional { theta } ->
      fun (f : Flow.t) -> (
        match f.locality with
        | Flow.Metro -> 1.
        | Flow.National -> 2. ** theta
        | Flow.International -> 3. ** theta)
  | Destination_type { theta } ->
      fun (f : Flow.t) -> if is_on_net ~theta f.id then 1. else 2.

let relative_costs t flows =
  if Array.length flows = 0 then [||] else Array.map (freeze t flows) flows

let pp ppf t = Format.fprintf ppf "%s(theta=%g)" (name t) (theta t)
