(** Pool-driven execution of the experiment registry.

    The single entry point every harness (CLI [run], [bench/main.exe],
    tests) uses to evaluate a set of experiments: tasks are scheduled
    on an {!Engine.Pool} and results are merged in submission order,
    so output at any [jobs] count is byte-identical to a serial run.
    Artifact reuse across experiments happens underneath through the
    engine caches wired into {!Experiment}. *)

type result = {
  id : string;
  description : string;
  tables : Report.t list;
  wall_s : float;
}

val run_experiments :
  ?jobs:int -> ?metrics:Engine.Metrics.t -> Experiment.t list -> result list
(** Evaluate the experiments ([jobs] defaults to
    {!Engine.Pool.default_jobs}; [1] is fully serial). Results are in
    input order. When [metrics] is given, per-task wall times (in
    submission order), the job count and the total wall time are
    recorded into it. A raising experiment surfaces as
    {!Engine.Pool.Task_failed} with the lowest failing index. *)

val render : result list -> string
(** Every table of every result printed with {!Report.print}, in
    order — the canonical byte-comparable form of a run. *)

val metrics_reports : Engine.Metrics.snapshot -> Report.t list
(** The run-metrics layer rendered as tables: per-task wall times and
    per-cache hit/miss counters. *)
