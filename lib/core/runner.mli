(** Pool-driven execution of the experiment registry.

    The single entry point every harness (CLI [run], [bench/main.exe],
    tests) uses to evaluate a set of experiments. Scheduling is
    per-{e cell}, not per-experiment: every experiment's
    {!Experiment.cells} plan is flattened into one task array (in
    experiment order, then cell order) and scheduled on an
    {!Engine.Pool}, so a slow grid figure's cells interleave with the
    rest of the registry instead of pinning one domain. Cell outputs
    are merged and {!Experiment.assemble}d in submission order, so
    output at any [jobs] count is byte-identical to a serial run (the
    golden suite pins this). Artifact reuse across cells happens
    underneath through the engine caches wired into {!Experiment}. *)

type result = {
  id : string;
  description : string;
  tables : Report.t list;
  wall_s : float;
}

val run_experiments :
  ?backend:Engine.Pool.backend ->
  ?retries:int ->
  ?timeout_s:float ->
  ?jobs:int ->
  ?workers:Engine.Remote.spec ->
  ?metrics:Engine.Metrics.t ->
  Experiment.t list ->
  result list
(** Evaluate the experiments' cells on the pool ([jobs] defaults to
    {!Engine.Pool.default_jobs}; [1] is fully serial). [backend]
    selects the execution substrate (default {!Engine.Pool.Domains});
    [retries] and [timeout_s] tune the {!Engine.Pool.Procs} and
    {!Engine.Pool.Remote} backends' crash recovery, and [workers] the
    remote fleet (see {!Engine.Pool.create}). Results are in input
    order regardless of backend; [wall_s] is the sum of the
    experiment's cell times plus its assembly time. When [metrics] is
    given, per-cell wall times (in submission order, labelled
    ["id/cell"]), the job count, the backend actually used, the
    worker-restart count, the total wall time and the per-worker busy
    times (the load-balance stat) are recorded into it. A raising cell
    surfaces as {!Engine.Pool.Task_failed} with the lowest failing
    cell index. *)

val render : result list -> string
(** Every table of every result printed with {!Report.print}, in
    order — the canonical byte-comparable form of a run. *)

val metrics_reports : Engine.Metrics.snapshot -> Report.t list
(** The run-metrics layer rendered as tables: per-cell wall times (with
    pool utilization and the load-balance stat in the title), per-cache
    hit/miss counters, and — when the disk tier is enabled — its size
    accounting and eviction counters. *)
