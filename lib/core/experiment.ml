module Defaults = struct
  let alpha = 1.1
  let p0 = 20.
  let theta = 0.2
  let s0 = 0.2
  let bundle_counts = [ 1; 2; 3; 4; 5; 6 ]
  let networks = [ "eu_isp"; "internet2"; "cdn" ]
end

(* --- cell-level plans ---------------------------------------------------- *)

(* Grid-shaped experiments (strategy sweeps over networks × bundle
   counts, theta tables, sensitivity envelopes) expose their internal
   grid as a list of independent cells plus a pure [assemble] that folds
   the cell outputs back into the experiment's report list. The runner
   schedules *cells* on the domain pool, so one slow figure no longer
   pins a whole domain; because cells are listed and assembled in
   submission order, the output stays byte-identical at any job count.
   Scalar experiments fall back to a single cell wrapping [run]. *)

type cell_output =
  | Rows of string list list
      (** Rows contributed to the experiment's tables, in grid order. *)
  | Tables of Report.t list  (** A whole-experiment (scalar) result. *)

type cell = { label : string; compute : unit -> cell_output }

type t = {
  id : string;
  description : string;
  run : unit -> Report.t list;
  cells : unit -> cell list;
  assemble : cell_output list -> Report.t list;
}

let rows_of = function
  | Rows rows -> rows
  | Tables _ -> invalid_arg "Experiment: expected a Rows cell output"

let run_cells t = t.assemble (List.map (fun c -> c.compute ()) (t.cells ()))

let scalar ~id ~description run =
  {
    id;
    description;
    run;
    cells = (fun () -> [ { label = id; compute = (fun () -> Tables (run ())) } ]);
    assemble =
      (function
      | [ Tables tables ] -> tables
      | _ -> invalid_arg (id ^ ": scalar experiments assemble one Tables cell"));
  }

let chunk n xs =
  if n <= 0 then invalid_arg "Experiment.chunk";
  let rec take k xs =
    match (k, xs) with
    | 0, rest -> ([], rest)
    | _, [] -> ([], [])
    | k, x :: rest ->
        let h, t = take (k - 1) rest in
        (x :: h, t)
  in
  let rec go = function
    | [] -> []
    | xs ->
        let h, t = take n xs in
        h :: go t
  in
  go xs

(* --- shared infrastructure --------------------------------------------- *)

(* Expensive intermediate artifacts are memoized in the engine's keyed
   cache (domain-safe, optional disk tier): calibrated workloads,
   per-network flow arrays, fitted markets and capture contexts. Keys
   are structural — whatever parameters the artifact depends on — so a
   sweep only pays for the cells it has not seen. Schema stamps guard
   the disk tier: bump them when the corresponding type's
   representation changes. *)

let workload_cache : Flowgen.Workload.t Engine.Cache.t =
  Engine.Cache.create ~name:"workload" ~schema:"workload/1" ()

let dataset_cache : Flow.t array Engine.Cache.t =
  Engine.Cache.create ~name:"dataset" ~schema:"dataset/1" ()

let market_cache : Market.t Engine.Cache.t =
  (* market/2: Market.t grew the lazily-filled memo field. *)
  Engine.Cache.create ~name:"market" ~schema:"market/2" ()

let context_cache : Capture.context Engine.Cache.t =
  Engine.Cache.create ~name:"context" ~schema:"context/1" ()

let workload name =
  Engine.Cache.find_or_add workload_cache ~key:("workload", name) (fun () ->
      Flowgen.Workload.preset name)

let dataset name =
  Engine.Cache.find_or_add dataset_cache ~key:("dataset", name) (fun () ->
      Dataset.of_workload (workload name))

let market ?(alpha = Defaults.alpha) ?(p0 = Defaults.p0)
    ?(cost_model = Cost_model.linear ~theta:Defaults.theta) ~spec name =
  Engine.Cache.find_or_add market_cache
    ~key:("market", name, alpha, p0, cost_model, spec)
    (fun () -> Market.fit ~spec ~alpha ~p0 ~cost_model (dataset name))

let context ?(alpha = Defaults.alpha) ?(p0 = Defaults.p0)
    ?(cost_model = Cost_model.linear ~theta:Defaults.theta) ~spec name =
  Engine.Cache.find_or_add context_cache
    ~key:("context", name, alpha, p0, cost_model, spec)
    (fun () -> Capture.context (market ~alpha ~p0 ~cost_model ~spec name))

let spec_name = Market.demand_spec_name
let logit_spec = Market.Logit { s0 = Defaults.s0 }

let int_cell = string_of_int

(* --- Table 1 ------------------------------------------------------------ *)

let table1_row name =
  let target = Flowgen.Workload.table1_targets name in
  let s = Flowgen.Workload.stats (workload name) in
  [
    name;
    Printf.sprintf "%.0f / %.0f" s.w_avg_distance_miles target.t_w_avg_distance;
    Printf.sprintf "%.2f / %.2f" s.cv_distance target.t_cv_distance;
    Printf.sprintf "%.1f / %.1f" s.aggregate_gbps target.t_aggregate_gbps;
    Printf.sprintf "%.2f / %.2f" s.cv_demand target.t_cv_demand;
  ]

let table1_table rows =
  Report.make ~title:"Table 1: data sets (measured / paper)"
    ~header:
      [ "network"; "w-avg dist (mi)"; "CV dist"; "aggregate (Gbps)"; "CV demand" ]
    rows
    ~notes:
      [
        "synthetic workloads calibrated to the paper's Table 1; see \
         Flowgen.Workload";
      ]

let table1 =
  {
    id = "table1";
    description = "data-set statistics vs paper targets";
    run = (fun () -> [ table1_table (List.map table1_row Defaults.networks) ]);
    cells =
      (fun () ->
        List.map
          (fun name ->
            { label = name; compute = (fun () -> Rows [ table1_row name ]) })
          Defaults.networks);
    assemble = (fun outputs -> [ table1_table (List.concat_map rows_of outputs) ]);
  }

(* --- Figure 1: blended vs tiered toy market ----------------------------- *)

let fig1_market () =
  let flows =
    [|
      Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:200. ();
      Flow.make ~id:1 ~demand_mbps:2. ~distance_miles:50. ();
    |]
  in
  Market.of_parameters ~spec:Market.Ced ~alpha:2.0 ~valuations:[| 1.7; 2.1 |]
    ~costs:[| 1.0; 0.5 |] flows

let run_fig1 () =
  let market = fig1_market () in
  let blended = Pricing.blended market in
  let tiered = Pricing.evaluate market (Bundle.singletons ~n_flows:2) in
  let row label (o : Pricing.outcome) =
    [
      label;
      String.concat " "
        (Array.to_list (Array.map (fun p -> Printf.sprintf "$%.2f" p) o.bundle_prices));
      Report.cell_f o.profit;
      Report.cell_f o.consumer_surplus;
      Report.cell_f (Pricing.welfare o);
    ]
  in
  [
    Report.make ~title:"Figure 1: market efficiency loss due to coarse bundling"
      ~header:[ "pricing"; "prices"; "ISP profit"; "consumer surplus"; "welfare" ]
      [ row "blended rate" blended; row "two tiers" tiered ]
      ~notes:
        [
          "two CED flows, costs $1.0 and $0.5; tiered pricing should raise \
           both profit and surplus";
        ];
  ]

(* --- Figures 3-5: demand model shapes ----------------------------------- *)

let run_fig3 () =
  let prices = Sensitivity.linear_range ~steps:16 ~lo:0.25 ~hi:4.0 () in
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_f p;
          Report.cell_f (Ced.demand ~alpha:1.4 ~v:1. p);
          Report.cell_f (Ced.demand ~alpha:3.3 ~v:1. p);
        ])
      prices
  in
  [
    Report.make ~title:"Figure 3: feasible CED demand functions (v = 1)"
      ~header:[ "price"; "Q alpha=1.4"; "Q alpha=3.3" ]
      rows;
  ]

let run_fig4 () =
  let prices = Sensitivity.linear_range ~steps:25 ~lo:1.05 ~hi:7.0 () in
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_f p;
          Report.cell_f (Ced.flow_profit ~alpha:2. ~v:1. ~c:1. p);
          Report.cell_f (Ced.flow_profit ~alpha:2. ~v:1. ~c:2. p);
        ])
      prices
  in
  let p1 = Ced.optimal_price ~alpha:2. ~c:1. in
  let p2 = Ced.optimal_price ~alpha:2. ~c:2. in
  [
    Report.make
      ~title:"Figure 4: profit for two flows with identical demand, different cost"
      ~header:[ "price"; "profit c=1"; "profit c=2" ]
      rows
      ~notes:
        [
          Printf.sprintf "optimal prices: p1* = %.2f, p2* = %.2f (Eq. 4)" p1 p2;
        ];
  ]

let run_fig5 () =
  let valuations = [| 1.6; 1.0 |] in
  let p2s = Sensitivity.linear_range ~steps:17 ~lo:0.0 ~hi:4.0 () in
  let q alpha p2 =
    let s, _ = Logit.shares ~alpha ~valuations ~prices:[| 1.0; p2 |] in
    s.(1)
  in
  let rows =
    List.map
      (fun p2 ->
        [ Report.cell_f p2; Report.cell_f (q 1. p2); Report.cell_f (q 2. p2) ])
      p2s
  in
  [
    Report.make
      ~title:"Figure 5: logit demand for flow 2 (v = [1.6; 1.0], p1 = 1, K = 1)"
      ~header:[ "price p2"; "Q alpha=1"; "Q alpha=2" ]
      rows;
  ]

(* --- Figure 6: concave distance-to-cost fit ------------------------------ *)

let run_fig6 () =
  (* The paper's fitted curves; we sample them with noise and recover the
     parameters, standing in for the unavailable ITU/NTT price sheets. *)
  let sources =
    [ ("ITU", 0.43, 9.43, 0.99); ("NTT", 0.03, 1.12, 1.01) ]
  in
  let rng = Numerics.Rng.create 66 in
  let rows =
    List.map
      (fun (label, a, b, c) ->
        let truth = Numerics.Fit.of_base { Numerics.Fit.a; b; c } in
        let xs =
          Array.init 40 (fun i -> 0.02 +. (0.98 *. float_of_int i /. 39.))
        in
        let ys =
          Array.map
            (fun x ->
              Numerics.Fit.log_curve_eval truth x
              +. Numerics.Dist.normal rng ~mean:0. ~stddev:0.02)
            xs
        in
        let fitted = Numerics.Fit.log_linear ~xs ~ys in
        let back = Numerics.Fit.to_base fitted ~base:b in
        [
          label;
          Printf.sprintf "a=%.2f b=%.2f c=%.2f" a b c;
          Printf.sprintf "a=%.2f b=%.2f c=%.2f" back.Numerics.Fit.a
            back.Numerics.Fit.b back.Numerics.Fit.c;
          Report.cell_f fitted.Numerics.Fit.r2;
        ])
      sources
  in
  [
    Report.make ~title:"Figure 6: concave distance-to-price fit (y = a log_b x + c)"
      ~header:[ "source"; "paper fit"; "recovered fit"; "R^2" ]
      rows
      ~notes:
        [
          "samples drawn from the paper's published curves + Gaussian noise; \
           the base b is fixed during recovery (a log_b x is \
           over-parameterized)";
        ];
  ]

(* --- Figures 8-9: bundling strategies ----------------------------------- *)

let strategy_columns = function
  | Market.Ced | Market.Linear _ ->
      [
        Strategy.Optimal; Strategy.Cost_weighted; Strategy.Profit_weighted;
        Strategy.Demand_weighted; Strategy.Cost_division; Strategy.Index_division;
      ]
  | Market.Logit _ ->
      (* Demand weighting coincides with profit weighting under logit
         (Eq. 13), as in the paper's Figure 9. *)
      [
        Strategy.Optimal; Strategy.Cost_weighted; Strategy.Profit_weighted;
        Strategy.Cost_division; Strategy.Index_division;
      ]

let capture_row ?alpha ?p0 ~spec network b =
  let m = market ?alpha ?p0 ~spec network in
  let strategies = strategy_columns m.Market.spec in
  let ctx = context ?alpha ?p0 ~spec network in
  int_cell b
  :: List.map
       (fun strategy ->
         let bundles = Strategy.apply strategy m ~n_bundles:b in
         Report.cell_f
           (Capture.value ctx (Pricing.evaluate m bundles).Pricing.profit))
       strategies

let capture_header ~spec = "bundles" :: List.map Strategy.name (strategy_columns spec)

let capture_table ?alpha ?p0 ~spec ~title ~bundle_counts network =
  Report.make ~title ~header:(capture_header ~spec)
    (List.map (capture_row ?alpha ?p0 ~spec network) bundle_counts)

let capture_experiment ?alpha ?p0 ~id ~description ~title_of ~spec ~networks
    ~bundle_counts () =
  let run () =
    List.map
      (fun network ->
        capture_table ?alpha ?p0 ~spec ~title:(title_of network) ~bundle_counts
          network)
      networks
  in
  let cells () =
    List.concat_map
      (fun network ->
        List.map
          (fun b ->
            {
              label = Printf.sprintf "%s/b=%d" network b;
              compute =
                (fun () -> Rows [ capture_row ?alpha ?p0 ~spec network b ]);
            })
          bundle_counts)
      networks
  in
  let assemble outputs =
    let per_network =
      chunk (List.length bundle_counts) (List.concat_map rows_of outputs)
    in
    List.map2
      (fun network rows ->
        Report.make ~title:(title_of network) ~header:(capture_header ~spec) rows)
      networks per_network
  in
  { id; description; run; cells; assemble }

let fig8 =
  capture_experiment ~id:"fig8" ~description:"bundling strategies, CED demand"
    ~title_of:
      (Printf.sprintf "Figure 8 (%s): profit capture, CED demand")
    ~spec:Market.Ced ~networks:Defaults.networks
    ~bundle_counts:Defaults.bundle_counts ()

let fig9 =
  capture_experiment ~id:"fig9" ~description:"bundling strategies, logit demand"
    ~title_of:
      (Printf.sprintf "Figure 9 (%s): profit capture, logit demand")
    ~spec:logit_spec ~networks:Defaults.networks
    ~bundle_counts:Defaults.bundle_counts ()

(* --- Figures 10-13: cost models ------------------------------------------ *)

(* Normalized profit increase: (pi(B, theta) - pi_orig(theta)) divided by
   the largest headroom across the theta settings, so settings with less
   cost variability visibly plateau lower (the paper's normalization). *)
let theta_contexts ~spec ~cost_of_theta ~thetas network =
  List.map
    (fun th ->
      let cost_model = cost_of_theta th in
      (th, market ~spec ~cost_model network, context ~spec ~cost_model network))
    thetas

let theta_row ~spec ~strategy ~cost_of_theta ~thetas network b =
  let contexts = theta_contexts ~spec ~cost_of_theta ~thetas network in
  let max_headroom =
    List.fold_left (fun acc (_, _, ctx) -> Float.max acc (Capture.headroom ctx)) 0.
      contexts
  in
  int_cell b
  :: List.map
       (fun (_, m, ctx) ->
         let bundles = Strategy.apply strategy m ~n_bundles:b in
         let profit = (Pricing.evaluate m bundles).Pricing.profit in
         Report.cell_f ((profit -. ctx.Capture.original) /. max_headroom))
       contexts

let theta_header ~thetas =
  "bundles" :: List.map (fun th -> Printf.sprintf "theta=%g" th) thetas

let theta_notes = [ "normalized to the largest profit headroom across theta settings" ]

let theta_table ~spec ~strategy ~cost_of_theta ~thetas ~title network =
  Report.make ~title ~header:(theta_header ~thetas)
    (List.map
       (theta_row ~spec ~strategy ~cost_of_theta ~thetas network)
       Defaults.bundle_counts)
    ~notes:theta_notes

let cost_model_experiment ~id ~description ~figure ~model_name ~cost_of_theta
    ~thetas ~strategy =
  let specs = [ Market.Ced; logit_spec ] in
  let network = "eu_isp" in
  let title spec =
    Printf.sprintf "Figure %s (EU ISP, %s demand): %s cost model" figure
      (spec_name spec) model_name
  in
  let run () =
    List.map
      (fun spec ->
        theta_table ~spec ~strategy ~cost_of_theta ~thetas ~title:(title spec)
          network)
      specs
  in
  let cells () =
    List.concat_map
      (fun spec ->
        List.map
          (fun b ->
            {
              label = Printf.sprintf "%s/b=%d" (spec_name spec) b;
              compute =
                (fun () ->
                  Rows [ theta_row ~spec ~strategy ~cost_of_theta ~thetas network b ]);
            })
          Defaults.bundle_counts)
      specs
  in
  let assemble outputs =
    let per_spec =
      chunk (List.length Defaults.bundle_counts) (List.concat_map rows_of outputs)
    in
    List.map2
      (fun spec rows ->
        Report.make ~title:(title spec) ~header:(theta_header ~thetas) rows
          ~notes:theta_notes)
      specs per_spec
  in
  { id; description; run; cells; assemble }

let fig10 =
  cost_model_experiment ~id:"fig10" ~description:"linear cost model sensitivity"
    ~figure:"10" ~model_name:"linear"
    ~cost_of_theta:(fun theta -> Cost_model.linear ~theta)
    ~thetas:[ 0.1; 0.2; 0.3 ] ~strategy:Strategy.Profit_weighted

let fig11 =
  cost_model_experiment ~id:"fig11" ~description:"concave cost model sensitivity"
    ~figure:"11" ~model_name:"concave"
    ~cost_of_theta:(fun theta -> Cost_model.concave ~theta)
    ~thetas:[ 0.1; 0.2; 0.3 ] ~strategy:Strategy.Profit_weighted

let fig12 =
  cost_model_experiment ~id:"fig12" ~description:"regional cost model sensitivity"
    ~figure:"12" ~model_name:"regional"
    ~cost_of_theta:(fun theta -> Cost_model.regional ~theta)
    ~thetas:[ 1.0; 1.1; 1.2 ] ~strategy:Strategy.Profit_weighted

let fig13 =
  cost_model_experiment ~id:"fig13"
    ~description:"destination-type cost model sensitivity" ~figure:"13"
    ~model_name:"destination-type"
    ~cost_of_theta:(fun theta -> Cost_model.destination_type ~theta)
    ~thetas:[ 0.05; 0.1; 0.15 ] ~strategy:Strategy.Profit_weighted_classes

(* --- Figures 14-16: parameter sweeps ------------------------------------- *)

let sweep_column ~mode ~markets_of_network spec network =
  let markets = markets_of_network spec network in
  Sensitivity.envelope ~markets ~strategy:Strategy.Profit_weighted
    ~bundle_counts:Defaults.bundle_counts ~mode

let sweep_experiment ~id ~description ~title ~mode ~markets_of_network specs =
  let spec_title spec = Printf.sprintf "%s (%s demand)" title (spec_name spec) in
  let header = "bundles" :: Defaults.networks in
  let run () =
    List.map
      (fun spec ->
        let columns =
          List.map (sweep_column ~mode ~markets_of_network spec) Defaults.networks
        in
        let rows =
          List.mapi
            (fun i b ->
              int_cell b
              :: List.map (fun col -> Report.cell_f (snd (List.nth col i))) columns)
            Defaults.bundle_counts
        in
        Report.make ~title:(spec_title spec) ~header rows)
      specs
  in
  let cells () =
    List.concat_map
      (fun spec ->
        List.map
          (fun network ->
            {
              label = Printf.sprintf "%s/%s" (spec_name spec) network;
              compute =
                (fun () ->
                  Rows
                    (List.map
                       (fun (_, v) -> [ Report.cell_f v ])
                       (sweep_column ~mode ~markets_of_network spec network)));
            })
          Defaults.networks)
      specs
  in
  let assemble outputs =
    (* One output per (spec, network): a column of single-cell rows,
       transposed back into bundle-count rows. *)
    let columns = List.map (fun o -> List.map List.hd (rows_of o)) outputs in
    let per_spec = chunk (List.length Defaults.networks) columns in
    List.map2
      (fun spec cols ->
        let rows =
          List.mapi
            (fun i b -> int_cell b :: List.map (fun col -> List.nth col i) cols)
            Defaults.bundle_counts
        in
        Report.make ~title:(spec_title spec) ~header rows)
      specs per_spec
  in
  { id; description; run; cells; assemble }

let fig14 =
  let alphas = Sensitivity.alpha_range ~steps:6 ~lo:1.1 ~hi:10. () in
  sweep_experiment ~id:"fig14" ~description:"robustness to price sensitivity alpha"
    ~title:"Figure 14: minimum profit capture over alpha in [1.1, 10]" ~mode:`Min
    ~markets_of_network:(fun spec network ->
      List.map (fun alpha -> market ~alpha ~spec network) alphas)
    [ Market.Ced; logit_spec ]

let fig15 =
  let p0s = Sensitivity.linear_range ~steps:6 ~lo:5. ~hi:30. () in
  sweep_experiment ~id:"fig15" ~description:"robustness to blended rate P0"
    ~title:"Figure 15: minimum profit capture over P0 in [5, 30]" ~mode:`Min
    ~markets_of_network:(fun spec network ->
      List.map (fun p0 -> market ~p0 ~spec network) p0s)
    [ Market.Ced; logit_spec ]

let fig16 =
  (* s0 below 1/(alpha p0) would imply negative costs; start above it. *)
  let s0s = Sensitivity.linear_range ~steps:6 ~lo:0.06 ~hi:0.9 () in
  sweep_experiment ~id:"fig16" ~description:"robustness to non-participation s0"
    ~title:"Figure 16: maximum profit capture over s0 in (0, 0.9]" ~mode:`Max
    ~markets_of_network:(fun _ network ->
      List.map (fun s0 -> market ~spec:(Market.Logit { s0 }) network) s0s)
    [ logit_spec ]

(* --- registry ------------------------------------------------------------ *)

let all =
  [
    table1;
    scalar ~id:"fig1" ~description:"blended vs tiered toy market" run_fig1;
    scalar ~id:"fig3" ~description:"feasible CED demand functions" run_fig3;
    scalar ~id:"fig4" ~description:"per-flow profit maximization" run_fig4;
    scalar ~id:"fig5" ~description:"logit demand functions" run_fig5;
    scalar ~id:"fig6" ~description:"concave distance-to-cost fit" run_fig6;
    fig8;
    fig9;
    fig10;
    fig11;
    fig12;
    fig13;
    fig14;
    fig15;
    fig16;
  ]

let ids () = List.map (fun e -> e.id) all

let find id =
  match List.find_opt (fun e -> String.equal e.id id) all with
  | Some e -> e
  | None -> raise Not_found
