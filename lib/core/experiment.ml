module Defaults = struct
  let alpha = 1.1
  let p0 = 20.
  let theta = 0.2
  let s0 = 0.2
  let bundle_counts = [ 1; 2; 3; 4; 5; 6 ]
  let networks = [ "eu_isp"; "internet2"; "cdn" ]
end

type t = { id : string; description : string; run : unit -> Report.t list }

(* --- shared infrastructure --------------------------------------------- *)

(* Expensive intermediate artifacts are memoized in the engine's keyed
   cache (domain-safe, optional disk tier): calibrated workloads,
   per-network flow arrays and fitted markets. Keys are structural —
   whatever parameters the artifact depends on — so a sweep only pays
   for the cells it has not seen. Schema stamps guard the disk tier:
   bump them when the corresponding type's representation changes. *)

let workload_cache : Flowgen.Workload.t Engine.Cache.t =
  Engine.Cache.create ~name:"workload" ~schema:"workload/1" ()

let dataset_cache : Flow.t array Engine.Cache.t =
  Engine.Cache.create ~name:"dataset" ~schema:"dataset/1" ()

let market_cache : Market.t Engine.Cache.t =
  Engine.Cache.create ~name:"market" ~schema:"market/1" ()

let workload name =
  Engine.Cache.find_or_add workload_cache ~key:("workload", name) (fun () ->
      Flowgen.Workload.preset name)

let dataset name =
  Engine.Cache.find_or_add dataset_cache ~key:("dataset", name) (fun () ->
      Dataset.of_workload (workload name))

let market ?(alpha = Defaults.alpha) ?(p0 = Defaults.p0)
    ?(cost_model = Cost_model.linear ~theta:Defaults.theta) ~spec name =
  Engine.Cache.find_or_add market_cache
    ~key:("market", name, alpha, p0, cost_model, spec)
    (fun () -> Market.fit ~spec ~alpha ~p0 ~cost_model (dataset name))

let spec_name = Market.demand_spec_name
let logit_spec = Market.Logit { s0 = Defaults.s0 }

let int_cell = string_of_int

(* --- Table 1 ------------------------------------------------------------ *)

let run_table1 () =
  let row name =
    let target = Flowgen.Workload.table1_targets name in
    let s = Flowgen.Workload.stats (workload name) in
    [
      name;
      Printf.sprintf "%.0f / %.0f" s.w_avg_distance_miles target.t_w_avg_distance;
      Printf.sprintf "%.2f / %.2f" s.cv_distance target.t_cv_distance;
      Printf.sprintf "%.1f / %.1f" s.aggregate_gbps target.t_aggregate_gbps;
      Printf.sprintf "%.2f / %.2f" s.cv_demand target.t_cv_demand;
    ]
  in
  [
    Report.make ~title:"Table 1: data sets (measured / paper)"
      ~header:
        [ "network"; "w-avg dist (mi)"; "CV dist"; "aggregate (Gbps)"; "CV demand" ]
      (List.map row Defaults.networks)
      ~notes:
        [
          "synthetic workloads calibrated to the paper's Table 1; see \
           Flowgen.Workload";
        ];
  ]

(* --- Figure 1: blended vs tiered toy market ----------------------------- *)

let fig1_market () =
  let flows =
    [|
      Flow.make ~id:0 ~demand_mbps:1. ~distance_miles:200. ();
      Flow.make ~id:1 ~demand_mbps:2. ~distance_miles:50. ();
    |]
  in
  Market.of_parameters ~spec:Market.Ced ~alpha:2.0 ~valuations:[| 1.7; 2.1 |]
    ~costs:[| 1.0; 0.5 |] flows

let run_fig1 () =
  let market = fig1_market () in
  let blended = Pricing.blended market in
  let tiered = Pricing.evaluate market (Bundle.singletons ~n_flows:2) in
  let row label (o : Pricing.outcome) =
    [
      label;
      String.concat " "
        (Array.to_list (Array.map (fun p -> Printf.sprintf "$%.2f" p) o.bundle_prices));
      Report.cell_f o.profit;
      Report.cell_f o.consumer_surplus;
      Report.cell_f (Pricing.welfare o);
    ]
  in
  [
    Report.make ~title:"Figure 1: market efficiency loss due to coarse bundling"
      ~header:[ "pricing"; "prices"; "ISP profit"; "consumer surplus"; "welfare" ]
      [ row "blended rate" blended; row "two tiers" tiered ]
      ~notes:
        [
          "two CED flows, costs $1.0 and $0.5; tiered pricing should raise \
           both profit and surplus";
        ];
  ]

(* --- Figures 3-5: demand model shapes ----------------------------------- *)

let run_fig3 () =
  let prices = Sensitivity.linear_range ~steps:16 ~lo:0.25 ~hi:4.0 () in
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_f p;
          Report.cell_f (Ced.demand ~alpha:1.4 ~v:1. p);
          Report.cell_f (Ced.demand ~alpha:3.3 ~v:1. p);
        ])
      prices
  in
  [
    Report.make ~title:"Figure 3: feasible CED demand functions (v = 1)"
      ~header:[ "price"; "Q alpha=1.4"; "Q alpha=3.3" ]
      rows;
  ]

let run_fig4 () =
  let prices = Sensitivity.linear_range ~steps:25 ~lo:1.05 ~hi:7.0 () in
  let rows =
    List.map
      (fun p ->
        [
          Report.cell_f p;
          Report.cell_f (Ced.flow_profit ~alpha:2. ~v:1. ~c:1. p);
          Report.cell_f (Ced.flow_profit ~alpha:2. ~v:1. ~c:2. p);
        ])
      prices
  in
  let p1 = Ced.optimal_price ~alpha:2. ~c:1. in
  let p2 = Ced.optimal_price ~alpha:2. ~c:2. in
  [
    Report.make
      ~title:"Figure 4: profit for two flows with identical demand, different cost"
      ~header:[ "price"; "profit c=1"; "profit c=2" ]
      rows
      ~notes:
        [
          Printf.sprintf "optimal prices: p1* = %.2f, p2* = %.2f (Eq. 4)" p1 p2;
        ];
  ]

let run_fig5 () =
  let valuations = [| 1.6; 1.0 |] in
  let p2s = Sensitivity.linear_range ~steps:17 ~lo:0.0 ~hi:4.0 () in
  let q alpha p2 =
    let s, _ = Logit.shares ~alpha ~valuations ~prices:[| 1.0; p2 |] in
    s.(1)
  in
  let rows =
    List.map
      (fun p2 ->
        [ Report.cell_f p2; Report.cell_f (q 1. p2); Report.cell_f (q 2. p2) ])
      p2s
  in
  [
    Report.make
      ~title:"Figure 5: logit demand for flow 2 (v = [1.6; 1.0], p1 = 1, K = 1)"
      ~header:[ "price p2"; "Q alpha=1"; "Q alpha=2" ]
      rows;
  ]

(* --- Figure 6: concave distance-to-cost fit ------------------------------ *)

let run_fig6 () =
  (* The paper's fitted curves; we sample them with noise and recover the
     parameters, standing in for the unavailable ITU/NTT price sheets. *)
  let sources =
    [ ("ITU", 0.43, 9.43, 0.99); ("NTT", 0.03, 1.12, 1.01) ]
  in
  let rng = Numerics.Rng.create 66 in
  let rows =
    List.map
      (fun (label, a, b, c) ->
        let truth = Numerics.Fit.of_base { Numerics.Fit.a; b; c } in
        let xs =
          Array.init 40 (fun i -> 0.02 +. (0.98 *. float_of_int i /. 39.))
        in
        let ys =
          Array.map
            (fun x ->
              Numerics.Fit.log_curve_eval truth x
              +. Numerics.Dist.normal rng ~mean:0. ~stddev:0.02)
            xs
        in
        let fitted = Numerics.Fit.log_linear ~xs ~ys in
        let back = Numerics.Fit.to_base fitted ~base:b in
        [
          label;
          Printf.sprintf "a=%.2f b=%.2f c=%.2f" a b c;
          Printf.sprintf "a=%.2f b=%.2f c=%.2f" back.Numerics.Fit.a
            back.Numerics.Fit.b back.Numerics.Fit.c;
          Report.cell_f fitted.Numerics.Fit.r2;
        ])
      sources
  in
  [
    Report.make ~title:"Figure 6: concave distance-to-price fit (y = a log_b x + c)"
      ~header:[ "source"; "paper fit"; "recovered fit"; "R^2" ]
      rows
      ~notes:
        [
          "samples drawn from the paper's published curves + Gaussian noise; \
           the base b is fixed during recovery (a log_b x is \
           over-parameterized)";
        ];
  ]

(* --- Figures 8-9: bundling strategies ----------------------------------- *)

let strategy_columns = function
  | Market.Ced | Market.Linear _ ->
      [
        Strategy.Optimal; Strategy.Cost_weighted; Strategy.Profit_weighted;
        Strategy.Demand_weighted; Strategy.Cost_division; Strategy.Index_division;
      ]
  | Market.Logit _ ->
      (* Demand weighting coincides with profit weighting under logit
         (Eq. 13), as in the paper's Figure 9. *)
      [
        Strategy.Optimal; Strategy.Cost_weighted; Strategy.Profit_weighted;
        Strategy.Cost_division; Strategy.Index_division;
      ]

let capture_table ~spec ~title network =
  let m = market ~spec network in
  let strategies = strategy_columns m.Market.spec in
  let ctx = Capture.context m in
  let rows =
    List.map
      (fun b ->
        int_cell b
        :: List.map
             (fun strategy ->
               let bundles = Strategy.apply strategy m ~n_bundles:b in
               Report.cell_f
                 (Capture.value ctx (Pricing.evaluate m bundles).Pricing.profit))
             strategies)
      Defaults.bundle_counts
  in
  Report.make ~title ~header:("bundles" :: List.map Strategy.name strategies) rows

let run_fig8 () =
  List.map
    (fun network ->
      capture_table ~spec:Market.Ced
        ~title:(Printf.sprintf "Figure 8 (%s): profit capture, CED demand" network)
        network)
    Defaults.networks

let run_fig9 () =
  List.map
    (fun network ->
      capture_table ~spec:logit_spec
        ~title:(Printf.sprintf "Figure 9 (%s): profit capture, logit demand" network)
        network)
    Defaults.networks

(* --- Figures 10-13: cost models ------------------------------------------ *)

(* Normalized profit increase: (pi(B, theta) - pi_orig(theta)) divided by
   the largest headroom across the theta settings, so settings with less
   cost variability visibly plateau lower (the paper's normalization). *)
let theta_table ~spec ~strategy ~cost_of_theta ~thetas ~title network =
  let markets =
    List.map (fun th -> (th, market ~spec ~cost_model:(cost_of_theta th) network)) thetas
  in
  let contexts = List.map (fun (th, m) -> (th, m, Capture.context m)) markets in
  let max_headroom =
    List.fold_left (fun acc (_, _, ctx) -> Float.max acc (Capture.headroom ctx)) 0.
      contexts
  in
  let rows =
    List.map
      (fun b ->
        int_cell b
        :: List.map
             (fun (_, m, ctx) ->
               let bundles = Strategy.apply strategy m ~n_bundles:b in
               let profit = (Pricing.evaluate m bundles).Pricing.profit in
               Report.cell_f ((profit -. ctx.Capture.original) /. max_headroom))
             contexts)
      Defaults.bundle_counts
  in
  Report.make ~title
    ~header:("bundles" :: List.map (fun th -> Printf.sprintf "theta=%g" th) thetas)
    rows
    ~notes:[ "normalized to the largest profit headroom across theta settings" ]

let cost_model_figure ~figure ~model_name ~cost_of_theta ~thetas ~strategy =
  List.map
    (fun spec ->
      theta_table ~spec ~strategy ~cost_of_theta ~thetas
        ~title:
          (Printf.sprintf "Figure %s (EU ISP, %s demand): %s cost model" figure
             (spec_name spec) model_name)
        "eu_isp")
    [ Market.Ced; logit_spec ]

let run_fig10 () =
  cost_model_figure ~figure:"10" ~model_name:"linear"
    ~cost_of_theta:(fun theta -> Cost_model.linear ~theta)
    ~thetas:[ 0.1; 0.2; 0.3 ] ~strategy:Strategy.Profit_weighted

let run_fig11 () =
  cost_model_figure ~figure:"11" ~model_name:"concave"
    ~cost_of_theta:(fun theta -> Cost_model.concave ~theta)
    ~thetas:[ 0.1; 0.2; 0.3 ] ~strategy:Strategy.Profit_weighted

let run_fig12 () =
  cost_model_figure ~figure:"12" ~model_name:"regional"
    ~cost_of_theta:(fun theta -> Cost_model.regional ~theta)
    ~thetas:[ 1.0; 1.1; 1.2 ] ~strategy:Strategy.Profit_weighted

let run_fig13 () =
  cost_model_figure ~figure:"13" ~model_name:"destination-type"
    ~cost_of_theta:(fun theta -> Cost_model.destination_type ~theta)
    ~thetas:[ 0.05; 0.1; 0.15 ] ~strategy:Strategy.Profit_weighted_classes

(* --- Figures 14-16: parameter sweeps ------------------------------------- *)

let sweep_table ~title ~mode ~markets_of_network =
  List.map
    (fun spec ->
      let rows =
        let columns =
          List.map
            (fun network ->
              let markets = markets_of_network spec network in
              Sensitivity.envelope ~markets ~strategy:Strategy.Profit_weighted
                ~bundle_counts:Defaults.bundle_counts ~mode)
            Defaults.networks
        in
        List.mapi
          (fun i b ->
            int_cell b
            :: List.map (fun col -> Report.cell_f (snd (List.nth col i))) columns)
          Defaults.bundle_counts
      in
      Report.make
        ~title:(Printf.sprintf "%s (%s demand)" title (spec_name spec))
        ~header:("bundles" :: Defaults.networks)
        rows)

let run_fig14 () =
  let alphas = Sensitivity.alpha_range ~steps:6 ~lo:1.1 ~hi:10. () in
  sweep_table
    ~title:"Figure 14: minimum profit capture over alpha in [1.1, 10]" ~mode:`Min
    ~markets_of_network:(fun spec network ->
      List.map (fun alpha -> market ~alpha ~spec network) alphas)
    [ Market.Ced; logit_spec ]

let run_fig15 () =
  let p0s = Sensitivity.linear_range ~steps:6 ~lo:5. ~hi:30. () in
  sweep_table
    ~title:"Figure 15: minimum profit capture over P0 in [5, 30]" ~mode:`Min
    ~markets_of_network:(fun spec network ->
      List.map (fun p0 -> market ~p0 ~spec network) p0s)
    [ Market.Ced; logit_spec ]

let run_fig16 () =
  (* s0 below 1/(alpha p0) would imply negative costs; start above it. *)
  let s0s = Sensitivity.linear_range ~steps:6 ~lo:0.06 ~hi:0.9 () in
  sweep_table
    ~title:"Figure 16: maximum profit capture over s0 in (0, 0.9]" ~mode:`Max
    ~markets_of_network:(fun _ network ->
      List.map (fun s0 -> market ~spec:(Market.Logit { s0 }) network) s0s)
    [ logit_spec ]

(* --- registry ------------------------------------------------------------ *)

let all =
  [
    { id = "table1"; description = "data-set statistics vs paper targets"; run = run_table1 };
    { id = "fig1"; description = "blended vs tiered toy market"; run = run_fig1 };
    { id = "fig3"; description = "feasible CED demand functions"; run = run_fig3 };
    { id = "fig4"; description = "per-flow profit maximization"; run = run_fig4 };
    { id = "fig5"; description = "logit demand functions"; run = run_fig5 };
    { id = "fig6"; description = "concave distance-to-cost fit"; run = run_fig6 };
    { id = "fig8"; description = "bundling strategies, CED demand"; run = run_fig8 };
    { id = "fig9"; description = "bundling strategies, logit demand"; run = run_fig9 };
    { id = "fig10"; description = "linear cost model sensitivity"; run = run_fig10 };
    { id = "fig11"; description = "concave cost model sensitivity"; run = run_fig11 };
    { id = "fig12"; description = "regional cost model sensitivity"; run = run_fig12 };
    { id = "fig13"; description = "destination-type cost model sensitivity"; run = run_fig13 };
    { id = "fig14"; description = "robustness to price sensitivity alpha"; run = run_fig14 };
    { id = "fig15"; description = "robustness to blended rate P0"; run = run_fig15 };
    { id = "fig16"; description = "robustness to non-participation s0"; run = run_fig16 };
  ]

let ids () = List.map (fun e -> e.id) all

let find id =
  match List.find_opt (fun e -> String.equal e.id id) all with
  | Some e -> e
  | None -> raise Not_found
