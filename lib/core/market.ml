type demand_spec = Ced | Logit of { s0 : float } | Linear of { epsilon : float }

let demand_spec_name = function
  | Ced -> "ced"
  | Logit _ -> "logit"
  | Linear _ -> "linear"

(* Derived per-flow arrays the hot paths keep re-asking for. Each field
   is a deterministic pure function of the immutable fit parameters, so
   the lazy initialization is a benign race under the domain pool: two
   domains may both compute the same array and one write wins, and any
   reader sees either [None] (recompute) or a fully built array. Plain
   mutable options rather than [Lazy.t] so markets stay marshallable
   with empty flags (the disk cache tier and the procs backend both
   Marshal them). *)
type memo = {
  mutable pow_valuations : float array option;
  mutable linear_b : float array option;
  mutable potential_profits : float array option;
}

let fresh_memo () =
  { pow_valuations = None; linear_b = None; potential_profits = None }

type t = {
  flows : Flow.t array;
  spec : demand_spec;
  alpha : float;
  p0 : float;
  cost_model : Cost_model.t;
  valuations : float array;
  costs : float array;
  gamma : float;
  k : float;
  memo : memo;
}

let fit ~spec ~alpha ~p0 ~cost_model flows =
  if Array.length flows = 0 then invalid_arg "Market.fit: no flows";
  if not (p0 > 0.) then invalid_arg "Market.fit: p0 must be positive";
  let demands = Flow.demands flows in
  Array.iter
    (fun q -> if not (q > 0.) then invalid_arg "Market.fit: demands must be positive")
    demands;
  let rel_costs = Cost_model.relative_costs cost_model flows in
  match spec with
  | Ced ->
      Ced.check_alpha alpha;
      let valuations =
        Array.map (fun q -> Ced.valuation_of_demand ~alpha ~p0 ~q) demands
      in
      let gamma = Ced.gamma ~alpha ~p0 ~valuations ~rel_costs in
      let costs = Array.map (fun f -> gamma *. f) rel_costs in
      {
        flows; spec; alpha; p0; cost_model; valuations; costs; gamma;
        k = Float.nan; memo = fresh_memo ();
      }
  | Logit { s0 } ->
      let { Logit.valuations; k; _ } = Logit.fit_valuations ~alpha ~p0 ~s0 ~demands in
      let gamma = Logit.gamma ~alpha ~p0 ~s0 ~valuations ~rel_costs in
      let costs = Array.map (fun f -> gamma *. f) rel_costs in
      {
        flows; spec; alpha; p0; cost_model; valuations; costs; gamma; k;
        memo = fresh_memo ();
      }
  | Linear { epsilon } ->
      Lin.check_epsilon epsilon;
      let valuations =
        Array.map (fun q -> fst (Lin.coefficients ~epsilon ~p0 ~q)) demands
      in
      let gamma = Lin.gamma ~epsilon ~p0 ~demands ~rel_costs in
      let costs = Array.map (fun f -> gamma *. f) rel_costs in
      {
        flows; spec; alpha; p0; cost_model; valuations; costs; gamma;
        k = Float.nan; memo = fresh_memo ();
      }

let n_flows t = Array.length t.flows

let linear_b t =
  match t.spec with
  | Linear { epsilon } -> (
      match t.memo.linear_b with
      | Some b -> b
      | None ->
          let b =
            Array.map
              (fun (f : Flow.t) -> epsilon *. f.Flow.demand_mbps /. t.p0)
              t.flows
          in
          t.memo.linear_b <- Some b;
          b)
  | Ced | Logit _ -> invalid_arg "Market.linear_b: not a linear-demand market"

let pow_valuations t =
  match t.memo.pow_valuations with
  | Some p -> p
  | None ->
      let p = Array.map (fun v -> v ** t.alpha) t.valuations in
      t.memo.pow_valuations <- Some p;
      p

let of_parameters ~spec ~alpha ?p0 ?(k = 1.) ~valuations ~costs flows =
  if Array.length flows = 0 then invalid_arg "Market.of_parameters: no flows";
  if
    Array.length valuations <> Array.length flows
    || Array.length costs <> Array.length flows
  then invalid_arg "Market.of_parameters: array length mismatch";
  Array.iter
    (fun c -> if not (c > 0.) then invalid_arg "Market.of_parameters: costs must be positive")
    costs;
  let p0 =
    match p0 with
    | Some p -> p
    | None -> (
        (* The blended optimum implied by the parameters. *)
        match spec with
        | Linear _ ->
            invalid_arg "Market.of_parameters: Linear demand requires Market.fit"
        | Ced -> Ced.bundle_price ~alpha ~valuations ~costs
        | Logit _ ->
            let v_b, c_b = Logit.bundle_aggregate ~alpha ~valuations ~costs in
            let { Logit.prices; _ } =
              Logit.optimize ~alpha ~valuations:[| v_b |] ~costs:[| c_b |]
            in
            prices.(0))
  in
  (match spec with
  | Ced -> Ced.check_alpha alpha
  | Logit { s0 } -> Logit.check_s0 s0
  | Linear _ -> invalid_arg "Market.of_parameters: Linear demand requires Market.fit");
  {
    flows;
    spec;
    alpha;
    p0;
    cost_model = Cost_model.linear ~theta:0.;
    valuations;
    costs;
    gamma = 1.;
    k = (match spec with Ced | Linear _ -> Float.nan | Logit _ -> k);
    memo = fresh_memo ();
  }

let potential_profits t =
  match t.memo.potential_profits with
  | Some p -> p
  | None ->
      let p =
        match t.spec with
        | Ced ->
            Array.init (n_flows t) (fun i ->
                Ced.potential_profit ~alpha:t.alpha ~v:t.valuations.(i)
                  ~c:t.costs.(i))
        | Logit _ ->
            (* Eq. 13: potential profit is K s_i / (alpha s_0),
               proportional to the observed demand. *)
            Flow.demands t.flows
        | Linear _ ->
            let b = linear_b t in
            Array.init (n_flows t) (fun i ->
                Lin.potential_profit ~a:t.valuations.(i) ~b:b.(i) ~c:t.costs.(i))
      in
      t.memo.potential_profits <- Some p;
      p

let pp ppf t =
  Format.fprintf ppf "%s market: %d flows, alpha=%g, p0=%g, %a, gamma=%.4g"
    (demand_spec_name t.spec) (n_flows t) t.alpha t.p0 Cost_model.pp t.cost_model
    t.gamma
