(** Constant-elasticity demand (§3.2.1).

    Demand for flow [i] is [Q_i(p) = (v_i / p)^alpha] with price
    sensitivity [alpha > 1] and valuation [v_i > 0]. Demands of distinct
    flows are separable, which gives closed forms for everything the
    evaluation needs: per-flow optimal prices (Eq. 4), bundle prices
    (Eq. 5), the valuation fit (§4.1.2), the cost scale γ (§4.1.3) and
    each flow's profit potential (Eq. 12). *)

val check_alpha : float -> unit
(** Raises [Invalid_argument] unless [alpha > 1]. *)

val demand : alpha:float -> v:float -> float -> float
(** [demand ~alpha ~v p] is [(v / p)^alpha]. Requires [p > 0]. *)

val inverse_demand : alpha:float -> v:float -> float -> float
(** Price at which the flow demands a given quantity. *)

val flow_profit : alpha:float -> v:float -> c:float -> float -> float
(** [flow_profit ~alpha ~v ~c p = (v/p)^alpha * (p - c)]. *)

val optimal_price : alpha:float -> c:float -> float
(** Eq. 4: [alpha * c / (alpha - 1)]. Requires [c > 0]. *)

val potential_profit : alpha:float -> v:float -> c:float -> float
(** Eq. 12: the profit of the flow at its own optimal price. *)

val bundle_price : alpha:float -> valuations:float array -> costs:float array -> float
(** Eq. 5: the profit-maximizing common price of a bundle,
    [alpha * sum c_i v_i^alpha / ((alpha - 1) * sum v_i^alpha)]. *)

val bundle_price_pow :
  alpha:float -> pow_valuations:float array -> costs:float array -> float
(** [bundle_price] taking the already-raised [v_i ** alpha] (e.g.
    {!Market.pow_valuations}), skipping the power per call on the hot
    pricing path. Bit-identical to [bundle_price]. *)

val bundle_profit :
  alpha:float -> valuations:float array -> costs:float array -> price:float -> float
(** Total profit of the bundle members at a common price. *)

val valuation_of_demand : alpha:float -> p0:float -> q:float -> float
(** §4.1.2: [v = p0 * q^(1/alpha)] — the valuation under which observed
    demand [q] at blended price [p0] is optimal consumption. *)

val gamma :
  alpha:float -> p0:float -> valuations:float array -> rel_costs:float array -> float
(** §4.1.3: the cost scale γ that makes the blended price [p0] the
    profit-maximizing single-bundle price given relative costs
    [f(d_i)]. *)

val consumer_surplus : alpha:float -> v:float -> float -> float
(** [consumer_surplus ~alpha ~v p]: area between the demand curve and
    the price, [v * Q^(1 - 1/alpha) / (1 - 1/alpha) - p * Q]. *)
