type usage = {
  tier_bytes : (int * float) list;
  untiered_bytes : float;
}

let total_bytes u =
  List.fold_left (fun acc (_, b) -> acc +. b) u.untiered_bytes u.tier_bytes

let tier_of_record rib (r : Flowgen.Netflow.record) = Rib.tier_of rib r.dst

module Snmp = struct
  (* Octet counters behave like the 64-bit ifHCInOctets MIB objects:
     they wrap modulo 2^64 (we keep them in Int64 and let OCaml wrap). *)
  type t = {
    n_tiers : int;
    poll_interval_s : int;
    counters : int64 array;  (** Final counter values. *)
    mutable untiered : float;
    (* Byte arrivals per (tier, second bucket) kept so that poll_series
       can reconstruct the counter value at any poll instant. *)
    timeline : (int, (int * float) list ref) Hashtbl.t;
  }

  let create ~n_tiers ?(poll_interval_s = 300) () =
    if n_tiers <= 0 then invalid_arg "Accounting.Snmp.create: n_tiers <= 0";
    if poll_interval_s <= 0 then
      invalid_arg "Accounting.Snmp.create: poll interval <= 0";
    {
      n_tiers;
      poll_interval_s;
      counters = Array.make n_tiers 0L;
      untiered = 0.;
      timeline = Hashtbl.create 64;
    }

  let observe t ~rib records =
    List.iter
      (fun (r : Flowgen.Netflow.record) ->
        match tier_of_record rib r with
        | None -> t.untiered <- t.untiered +. r.bytes
        | Some tier ->
            if tier >= t.n_tiers then
              invalid_arg "Accounting.Snmp.observe: tier beyond configured links";
            t.counters.(tier) <-
              Int64.add t.counters.(tier) (Int64.of_float r.bytes);
            (* Spread the record's bytes uniformly over its window at
               poll-interval granularity for the series view. *)
            let span = max 1 (r.last_s - r.first_s) in
            let per_s = r.bytes /. float_of_int span in
            let first_bucket = r.first_s / t.poll_interval_s in
            let last_bucket = (r.last_s - 1) / t.poll_interval_s in
            for bucket = first_bucket to last_bucket do
              let bucket_start = bucket * t.poll_interval_s in
              let bucket_end = bucket_start + t.poll_interval_s in
              let overlap =
                float_of_int (min r.last_s bucket_end - max r.first_s bucket_start)
              in
              let bytes = per_s *. overlap in
              let cell =
                match Hashtbl.find_opt t.timeline bucket with
                | Some cell -> cell
                | None ->
                    let cell = ref [] in
                    Hashtbl.add t.timeline bucket cell;
                    cell
              in
              cell := (tier, bytes) :: !cell
            done)
      records

  let poll_series t ~horizon_s =
    let polls = (horizon_s + t.poll_interval_s - 1) / t.poll_interval_s in
    List.init t.n_tiers (fun tier ->
        let deltas = Array.make polls 0. in
        (* Sorted traversal: each bucket owns its own slot, but routing
           the walk through [Tbl] keeps the accumulation order a pure
           function of the keys (lint rule D002). *)
        Tbl.iter_sorted
          (fun bucket cell ->
            if bucket < polls then
              List.iter
                (fun (tr, bytes) ->
                  if tr = tier then deltas.(bucket) <- deltas.(bucket) +. bytes)
                !cell)
          t.timeline;
        (tier, deltas))

  let usage t =
    {
      tier_bytes =
        List.init t.n_tiers (fun tier -> (tier, Int64.to_float t.counters.(tier)));
      untiered_bytes = t.untiered;
    }
end

let flow_based ~rib records =
  let by_tier = Hashtbl.create 16 in
  let untiered = ref 0. in
  List.iter
    (fun (r : Flowgen.Netflow.record) ->
      match tier_of_record rib r with
      | None -> untiered := !untiered +. r.bytes
      | Some tier ->
          Hashtbl.replace by_tier tier
            (r.bytes +. Option.value ~default:0. (Hashtbl.find_opt by_tier tier)))
    records;
  { tier_bytes = Tbl.sorted_bindings by_tier; untiered_bytes = !untiered }

let rate_series ~rib ~interval_s ~horizon_s records =
  if interval_s <= 0 then invalid_arg "Accounting.rate_series: interval <= 0";
  let intervals = (horizon_s + interval_s - 1) / interval_s in
  let by_tier : (int, float array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Flowgen.Netflow.record) ->
      match tier_of_record rib r with
      | None -> ()
      | Some tier ->
          let series =
            match Hashtbl.find_opt by_tier tier with
            | Some s -> s
            | None ->
                let s = Array.make intervals 0. in
                Hashtbl.add by_tier tier s;
                s
          in
          let span = max 1 (r.last_s - r.first_s) in
          let per_s = r.bytes /. float_of_int span in
          let first_bucket = r.first_s / interval_s in
          let last_bucket = min (intervals - 1) ((r.last_s - 1) / interval_s) in
          for bucket = first_bucket to last_bucket do
            let bucket_start = bucket * interval_s in
            let bucket_end = bucket_start + interval_s in
            let overlap =
              float_of_int (min r.last_s bucket_end - max r.first_s bucket_start)
            in
            series.(bucket) <-
              series.(bucket)
              +. (per_s *. overlap *. 8. /. float_of_int interval_s /. 1e6)
          done)
    records;
  Tbl.sorted_bindings by_tier
