type t = { asn : int; value : int }

let fits_16 v = v >= 0 && v < 65536

let make ~asn ~value =
  if not (fits_16 asn) then invalid_arg "Community.make: asn out of 16 bits";
  if not (fits_16 value) then invalid_arg "Community.make: value out of 16 bits";
  { asn; value }

(* Tier tags live in a reserved band, by convention 60000 + k. *)
let tier_base = 60000
let max_tiers = 256

let tier ~asn k =
  if k < 0 || k >= max_tiers then invalid_arg "Community.tier: tier out of range";
  make ~asn ~value:(tier_base + k)

let tier_of t =
  if t.value >= tier_base && t.value < tier_base + max_tiers then
    Some (t.value - tier_base)
  else None

let to_string t = Printf.sprintf "%d:%d" t.asn t.value

let of_string s =
  match String.split_on_char ':' s with
  | [ asn; value ] -> (
      match (int_of_string_opt asn, int_of_string_opt value) with
      | Some asn, Some value -> make ~asn ~value
      | _ -> invalid_arg ("Community.of_string: malformed community " ^ s))
  | _ -> invalid_arg ("Community.of_string: malformed community " ^ s)

let equal a b = a.asn = b.asn && a.value = b.value
let compare a b =
  match Int.compare a.asn b.asn with
  | 0 -> Int.compare a.value b.value
  | c -> c
