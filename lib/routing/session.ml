type state = Idle | Established

type t = {
  id : int;
  tier : int;
  link : int;
  state : state;
  advertised : Rib.route list;
}

let create ~id ~tier ~link =
  if tier < 0 then invalid_arg "Session.create: negative tier";
  { id; tier; link; state = Idle; advertised = [] }

let establish t = { t with state = Established }
let shutdown t = { t with state = Idle; advertised = [] }

let advertise t ~asn (route : Rib.route) =
  (match t.state with
  | Established -> ()
  | Idle -> invalid_arg "Session.advertise: session not established");
  (match List.find_map Community.tier_of route.Rib.communities with
  | Some tier when tier <> t.tier ->
      invalid_arg "Session.advertise: route already tagged with a different tier"
  | Some _ | None -> ());
  let tag = Community.tier ~asn t.tier in
  let communities =
    if List.exists (Community.equal tag) route.Rib.communities then
      route.Rib.communities
    else tag :: route.Rib.communities
  in
  { t with advertised = { route with Rib.communities } :: t.advertised }

let advertised_rib sessions =
  List.fold_left
    (fun rib t -> List.fold_left Rib.add rib t.advertised)
    Rib.empty sessions

type violation = {
  session_id : int;
  prefix : Flowgen.Ipv4.prefix;
  expected_tier : int;
  actual_tier : int option;
}

let check_consistency sessions =
  (* 1. Every route's tag matches its session. *)
  let tag_violations =
    List.concat_map
      (fun t ->
        List.filter_map
          (fun (r : Rib.route) ->
            let actual = List.find_map Community.tier_of r.Rib.communities in
            if actual = Some t.tier then None
            else
              Some
                {
                  session_id = t.id;
                  prefix = r.Rib.prefix;
                  expected_tier = t.tier;
                  actual_tier = actual;
                })
          t.advertised)
      sessions
  in
  (* 2. No prefix on two sessions with different tiers. *)
  let seen : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let cross_violations = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun (r : Rib.route) ->
          let key = Flowgen.Ipv4.prefix_to_string r.Rib.prefix in
          match Hashtbl.find_opt seen key with
          | Some (_, tier) when tier <> t.tier ->
              cross_violations :=
                {
                  session_id = t.id;
                  prefix = r.Rib.prefix;
                  expected_tier = tier;
                  actual_tier = Some t.tier;
                }
                :: !cross_violations
          | Some _ -> ()
          | None -> Hashtbl.add seen key (t.id, t.tier))
        t.advertised)
    sessions;
  tag_violations @ List.rev !cross_violations

let session_of_tier sessions tier =
  List.find_opt (fun t -> t.tier = tier && t.state = Established) sessions

let plan ~asn assignments ~n_links =
  if n_links < 1 then invalid_arg "Session.plan: n_links < 1";
  let tiers =
    List.sort_uniq Int.compare (List.map (fun a -> a.Tagging.tier) assignments)
  in
  let sessions =
    List.mapi
      (fun i tier -> establish (create ~id:i ~tier ~link:(i mod n_links)))
      tiers
  in
  List.fold_left
    (fun sessions (a : Tagging.assignment) ->
      List.map
        (fun t ->
          if t.tier = a.Tagging.tier then
            advertise t ~asn
              (Rib.route ~prefix:a.Tagging.dst_prefix ~next_hop:a.Tagging.next_hop ())
          else t)
        sessions)
    sessions assignments
