type assignment = { dst_prefix : Flowgen.Ipv4.prefix; tier : int; next_hop : int }

let build_rib ~asn assignments =
  List.fold_left
    (fun rib { dst_prefix; tier; next_hop } ->
      let communities = [ Community.tier ~asn tier ] in
      Rib.add rib (Rib.route ~communities ~prefix:dst_prefix ~next_hop ()))
    Rib.empty assignments

let tier_counts rib =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (r : Rib.route) ->
      match List.find_map Community.tier_of r.communities with
      | Some tier ->
          Hashtbl.replace counts tier
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts tier))
      | None -> ())
    (Rib.routes rib);
  Tbl.sorted_bindings counts

let untiered_routes rib =
  List.filter
    (fun (r : Rib.route) ->
      not (List.exists (fun c -> Community.tier_of c <> None) r.communities))
    (Rib.routes rib)
