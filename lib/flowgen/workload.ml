type params = {
  n_flows : int;
  aggregate_gbps : float;
  locality_scale : float;
  locality_spread : float;
  demand_cv : float;
  demand_distance_exponent : float;
  local_tail_miles : float;
  on_net_fraction : float;
  distance_mode : [ `Path | `Geo ];
  seed : int;
}

type flow = {
  id : int;
  entry : Netsim.Node.t;
  dst_city : Netsim.Cities.t;
  src_addr : Ipv4.t;
  dst_addr : Ipv4.t;
  mbps : float;
  distance_miles : float;
  locality : Geoip.locality;
  on_net : bool;
  routers : int list;
}

type t = {
  params : params;
  topology : Netsim.Topology.t;
  geoip : Geoip.t;
  flows : flow list;
}

type stats = {
  flow_count : int;
  w_avg_distance_miles : float;
  cv_distance : float;
  aggregate_gbps : float;
  cv_demand : float;
}

(* A candidate (entry PoP, destination PoP) pair with its distance and
   observation path. *)
type candidate = {
  c_entry : Netsim.Node.t;
  c_dst : Netsim.Node.t;
  c_distance : float;
  c_routers : int list;
}

let candidates topology mode =
  let pops = Array.of_list topology.Netsim.Topology.pops in
  let n = Array.length pops in
  let result = ref [] in
  for i = 0 to n - 1 do
    let entry = pops.(i) in
    let paths =
      match mode with
      | `Geo -> None
      | `Path -> Some (Netsim.Graph.shortest_path_lengths topology.graph ~src:entry.Netsim.Node.id)
    in
    for j = 0 to n - 1 do
      if i <> j then begin
        let dst = pops.(j) in
        let distance, routers =
          match (mode, paths) with
          | `Geo, _ -> (Netsim.Node.distance_miles entry dst, [ entry.Netsim.Node.id ])
          | `Path, Some dist -> (
              match Netsim.Graph.shortest_path topology.graph ~src:entry.id ~dst:dst.id with
              | Some path -> (dist.(dst.id), path.hops)
              | None -> (infinity, []))
          | `Path, None -> assert false
        in
        if distance < infinity then
          result := { c_entry = entry; c_dst = dst; c_distance = distance; c_routers = routers } :: !result
      end
    done
  done;
  Array.of_list !result

(* Weighted sampling with replacement: each draw is one distinct customer
   aggregate, so popular (entry, destination) pairs naturally carry many
   flows to different prefixes of the same city. *)
let sample_with_replacement rng weights k =
  Array.init k (fun _ -> Numerics.Dist.categorical rng weights)

let validate p =
  if p.n_flows <= 0 then invalid_arg "Workload.generate: n_flows must be positive";
  if p.aggregate_gbps <= 0. then
    invalid_arg "Workload.generate: aggregate_gbps must be positive";
  if p.locality_scale <= 0. then
    invalid_arg "Workload.generate: locality_scale must be positive";
  if p.locality_spread <= 0. then
    invalid_arg "Workload.generate: locality_spread must be positive";
  if p.demand_cv < 0. then invalid_arg "Workload.generate: demand_cv must be >= 0";
  if p.demand_distance_exponent < 0. then
    invalid_arg "Workload.generate: demand_distance_exponent must be >= 0";
  if p.local_tail_miles < 0. then
    invalid_arg "Workload.generate: local_tail_miles must be >= 0";
  if p.on_net_fraction < 0. || p.on_net_fraction > 1. then
    invalid_arg "Workload.generate: on_net_fraction out of [0, 1]"

let generate topology p =
  validate p;
  let rng = Numerics.Rng.create p.seed in
  let geoip = Geoip.synthesize Netsim.Cities.all in
  let pool = candidates topology p.distance_mode in
  if Array.length pool = 0 then invalid_arg "Workload.generate: no candidate pairs";
  let weight c =
    (* Log-normal distance band around the preferred distance; the
       exponent clamp keeps extreme parameter settings from underflowing
       the whole weight vector to zero. *)
    let z = (log (c.c_distance +. 1.) -. log p.locality_scale) /. p.locality_spread in
    let decay = Float.min 500. (0.5 *. z *. z) in
    c.c_dst.Netsim.Node.city.Netsim.Cities.population *. exp (-.decay)
  in
  let weights = Array.map weight pool in
  let chosen = sample_with_replacement rng weights p.n_flows in
  (* Erlang-2 tail: mean [local_tail_miles], CV 1/sqrt(2) -- matches
     observed last-mile distance dispersion better than a bare
     exponential. *)
  let distances =
    Array.map
      (fun idx ->
        let tail =
          if Float.equal p.local_tail_miles 0. then 0.
          else
            let rate = 2. /. p.local_tail_miles in
            Numerics.Dist.exponential rng ~rate +. Numerics.Dist.exponential rng ~rate
        in
        pool.(idx).c_distance +. tail)
      chosen
  in
  (* Demand has a lognormal body modulated by traffic locality: nearer
     destinations attract more traffic (content caching, regional
     customers), with strength [demand_distance_exponent]. *)
  let softening_miles = 25. in
  let raw_demands =
    Array.map
      (fun d ->
        let locality_boost =
          ((d +. softening_miles) /. softening_miles)
          ** -.p.demand_distance_exponent
        in
        locality_boost *. Numerics.Dist.lognormal_of_mean_cv rng ~mean:1. ~cv:p.demand_cv)
      distances
  in
  let scale =
    p.aggregate_gbps *. 1000. /. Numerics.Stats.sum raw_demands
  in
  let flows =
    Array.to_list
      (Array.mapi
         (fun k idx ->
           let c = pool.(idx) in
           let entry = c.c_entry and dst = c.c_dst in
           let distance = distances.(k) in
           let dst_city = dst.Netsim.Node.city in
           (* Classification follows the paper: networks measured by path
              distance only get the 10/100-mile thresholds (the EU ISP
              rule); GeoIP-measured networks classify by city/country. *)
           let locality =
             match p.distance_mode with
             | `Path ->
                 Geoip.classify_distance ~metro_miles:10. ~national_miles:100. distance
             | `Geo ->
                 if Netsim.Cities.same_city entry.Netsim.Node.city dst_city then
                   Geoip.Metro
                 else if Netsim.Cities.same_country entry.Netsim.Node.city dst_city then
                   Geoip.National
                 else Geoip.International
           in
           {
             id = k;
             entry;
             dst_city;
             src_addr = Geoip.random_address_in rng geoip entry.Netsim.Node.city;
             dst_addr = Geoip.random_address_in rng geoip dst_city;
             mbps = raw_demands.(k) *. scale;
             distance_miles = distance;
             locality;
             on_net = Numerics.Rng.float rng < p.on_net_fraction;
             routers = c.c_routers;
           })
         chosen)
  in
  { params = p; topology; geoip; flows }

let stats t =
  let demands = Array.of_list (List.map (fun f -> f.mbps) t.flows) in
  let distances = Array.of_list (List.map (fun f -> f.distance_miles) t.flows) in
  {
    flow_count = List.length t.flows;
    w_avg_distance_miles = Numerics.Stats.weighted_mean ~values:distances ~weights:demands;
    cv_distance = Numerics.Stats.cv distances;
    aggregate_gbps = Numerics.Stats.sum demands /. 1000.;
    cv_demand = Numerics.Stats.cv demands;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d flows, w-avg dist %.0f mi, CV(dist) %.2f, %.1f Gbps, CV(demand) %.2f"
    s.flow_count s.w_avg_distance_miles s.cv_distance s.aggregate_gbps s.cv_demand

let to_ground_truth t =
  List.map
    (fun f ->
      {
        Netflow.gt_src = f.src_addr;
        gt_dst = f.dst_addr;
        gt_mbps = f.mbps;
        gt_routers = f.routers;
      })
    t.flows

type target = {
  t_w_avg_distance : float;
  t_cv_distance : float;
  t_aggregate_gbps : float;
  t_cv_demand : float;
}

(* A preset name may carry a synthetic scale suffix: ["eu_isp@200000"]
   is the eu_isp calibration with [n_flows] overridden to 200000 (same
   aggregate rate spread over more flows). This is the large-n knob the
   tier-DP bench and sweep grid use to exercise the kernel at scale
   without a separate calibration. *)
let split_scale name =
  match String.index_opt name '@' with
  | None -> (name, None)
  | Some i -> (
      let base = String.sub name 0 i in
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      (* Decimal digits only: [int_of_string_opt] alone would quietly
         accept hex ("0x10"), sign prefixes ("+5") and underscore
         separators ("1_000") — none of which a CLI user means by
         name@N. Overflowing digit strings still fall through to
         [None]. *)
      let all_decimal =
        String.length suffix > 0
        && String.for_all (fun c -> c >= '0' && c <= '9') suffix
      in
      match (if all_decimal then int_of_string_opt suffix else None) with
      | Some n when n >= 1 -> (base, Some n)
      | Some _ | None ->
          invalid_arg
            ("Workload.preset: malformed scale suffix in " ^ name
           ^ " (want name@N with N >= 1)"))

(* Table 1 of the paper (targets are per calibration, so a scale suffix
   resolves to its base network's row). *)
let table1_targets name =
  match fst (split_scale name) with
  | "eu_isp" ->
      { t_w_avg_distance = 54.; t_cv_distance = 0.70; t_aggregate_gbps = 37.; t_cv_demand = 1.71 }
  | "cdn" ->
      { t_w_avg_distance = 1988.; t_cv_distance = 0.59; t_aggregate_gbps = 96.; t_cv_demand = 2.28 }
  | "internet2" ->
      { t_w_avg_distance = 660.; t_cv_distance = 0.54; t_aggregate_gbps = 4.; t_cv_demand = 4.53 }
  | other -> invalid_arg ("Workload.table1_targets: unknown network " ^ other)

let loss topology base target x =
  (* x = [ln locality_scale; ln locality_spread; demand_cv;
          ln (1 + local_tail)] *)
  let p =
    {
      base with
      locality_scale = exp x.(0);
      locality_spread = exp x.(1);
      demand_cv = Float.max 0. x.(2);
      local_tail_miles = exp x.(3) -. 1.;
    }
  in
  if p.locality_scale <= 0. || p.local_tail_miles < 0. then infinity
  else
    let s = stats (generate topology p) in
    let rel a b = (a -. b) /. b in
    let e1 = rel s.w_avg_distance_miles target.t_w_avg_distance in
    let e2 = rel s.cv_distance target.t_cv_distance in
    let e3 = rel s.cv_demand target.t_cv_demand in
    (e1 *. e1) +. (e2 *. e2) +. (e3 *. e3)

let calibrate ?(max_iter = 400) topology (base : params) target =
  let base = { base with aggregate_gbps = target.t_aggregate_gbps } in
  let x0 =
    [|
      log base.locality_scale; log base.locality_spread; base.demand_cv;
      log (1. +. base.local_tail_miles);
    |]
  in
  let result =
    Numerics.Gradient.nelder_mead ~max_iter ~scale:0.5
      ~f:(loss topology base target) x0
  in
  {
    base with
    locality_scale = exp result.x.(0);
    locality_spread = exp result.x.(1);
    demand_cv = Float.max 0. result.x.(2);
    local_tail_miles = exp result.x.(3) -. 1.;
  }

(* Stored calibration results (see test/test_workload.ml for the
   tolerance check against Table 1). Regenerate with [calibrate]. *)
let base_preset_params = function
  | "eu_isp" ->
      {
        n_flows = 600;
        aggregate_gbps = 37.;
        locality_scale = 29.2978;
        locality_spread = 0.5043;
        demand_cv = 0.15;
        demand_distance_exponent = 3.0;
        local_tail_miles = 128.9495;
        on_net_fraction = 0.7;
        distance_mode = `Path;
        seed = 1101;
      }
  | "cdn" ->
      {
        n_flows = 700;
        aggregate_gbps = 96.;
        locality_scale = 113.7566;
        locality_spread = 1.4411;
        demand_cv = 0.6075;
        demand_distance_exponent = 1.5;
        local_tail_miles = 1937.8467;
        on_net_fraction = 0.3;
        distance_mode = `Geo;
        seed = 1202;
      }
  | "internet2" ->
      {
        n_flows = 400;
        aggregate_gbps = 4.;
        locality_scale = 724.7785;
        locality_spread = 1.0025;
        demand_cv = 1.0958;
        demand_distance_exponent = 2.0;
        local_tail_miles = 111.3959;
        on_net_fraction = 0.5;
        distance_mode = `Path;
        seed = 1203;
      }
  | other -> invalid_arg ("Workload.preset_params: unknown network " ^ other)

let preset_params name =
  let base, scale = split_scale name in
  let p = base_preset_params base in
  match scale with None -> p | Some n_flows -> { p with n_flows }

let preset name =
  let base, _ = split_scale name in
  generate (Netsim.Presets.by_name base) (preset_params name)
