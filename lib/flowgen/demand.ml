type aggregate = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mbps : float;
  bytes : float;
  records : int;
}

(* Incremental aggregation: the batch entry points below and the
   streaming service's ingest path share this accumulator, so there is
   exactly one grouping semantics (first-appearance order, byte sums)
   however the records arrive. *)
module Acc = struct
  type cell = {
    c_src : Ipv4.t;
    c_dst : Ipv4.t;
    mutable c_bytes : float;
    mutable c_records : int;
  }

  type t = {
    key_of : Netflow.record -> int * int;
    index : (int * int, cell) Hashtbl.t;
    mutable order : cell list;  (* reverse first-appearance order *)
    mutable count : int;
  }

  let create ?(expected = 1024) ~key_of () =
    { key_of; index = Hashtbl.create expected; order = []; count = 0 }

  let observe t (r : Netflow.record) =
    let key = t.key_of r in
    match Hashtbl.find_opt t.index key with
    | Some cell ->
        cell.c_bytes <- cell.c_bytes +. r.bytes;
        cell.c_records <- cell.c_records + 1
    | None ->
        let cell =
          { c_src = r.src; c_dst = r.dst; c_bytes = r.bytes; c_records = 1 }
        in
        Hashtbl.add t.index key cell;
        t.order <- cell :: t.order;
        t.count <- t.count + 1

  let size t = t.count

  let aggregates t ~window_s =
    if window_s <= 0 then invalid_arg "Demand: non-positive window";
    List.rev_map
      (fun cell ->
        {
          src = cell.c_src;
          dst = cell.c_dst;
          bytes = cell.c_bytes;
          records = cell.c_records;
          mbps = Netflow.mbps_of_bytes ~bytes:cell.c_bytes ~seconds:window_s;
        })
      t.order
end

let endpoint_pair_key (r : Netflow.record) =
  (Ipv4.to_int r.src, Ipv4.to_int r.dst)

let destination_key (r : Netflow.record) = (0, Ipv4.to_int r.dst)

let group ~window_s ~key_of records =
  if window_s <= 0 then invalid_arg "Demand: non-positive window";
  let acc = Acc.create ~key_of () in
  List.iter (Acc.observe acc) records;
  Acc.aggregates acc ~window_s

let by_endpoint_pair ?(window_s = Netflow.day_seconds) records =
  group ~window_s ~key_of:endpoint_pair_key records

let by_destination ?(window_s = Netflow.day_seconds) records =
  group ~window_s ~key_of:destination_key records

let total_mbps aggregates =
  Numerics.Stats.sum (Array.of_list (List.map (fun a -> a.mbps) aggregates))

let demands aggregates = Array.of_list (List.map (fun a -> a.mbps) aggregates)
