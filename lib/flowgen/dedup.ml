type key = {
  k_src : Ipv4.t;
  k_dst : Ipv4.t;
  k_src_port : int;
  k_dst_port : int;
  k_proto : int;
  k_first_s : int;
}

let key_of_record (r : Netflow.record) =
  {
    k_src = r.src;
    k_dst = r.dst;
    k_src_port = r.src_port;
    k_dst_port = r.dst_port;
    k_proto = r.proto;
    k_first_s = r.first_s;
  }

(* Streaming duplicate suppression. The batch [dedup] keeps the
   lowest-router observation of each key, which needs the whole input in
   hand; a long-running ingest loop cannot retract bytes it already
   accumulated, so the streaming contract is first-observation-wins.
   The two agree on every byte count: synthesized duplicates carry the
   same [bytes] at every observing router (per-bin noise is shared, see
   Netflow.synthesize), so only the [router] attribution differs. *)
module Stream = struct
  (* Under the nondecreasing-[first_s] ingest contract a flow's records
     arrive window by window, so a duplicate is exactly a record whose
     [first_s] equals the last one kept for its 5-tuple. Remembering
     only that last value keeps the table the size of the live flow
     universe — not universe x windows — which keeps the per-record
     lookup in cache on the daemon's hot path. *)
  type flow_key = {
    s_src : Ipv4.t;
    s_dst : Ipv4.t;
    s_src_port : int;
    s_dst_port : int;
    s_proto : int;
  }

  type t = {
    last : (flow_key, int) Hashtbl.t;  (* 5-tuple -> last first_s kept *)
    arrivals : (flow_key * int) Queue.t;  (* fresh keeps, in order *)
    mutable dropped : int;
  }

  let create ?(expected = 4096) () =
    { last = Hashtbl.create expected; arrivals = Queue.create (); dropped = 0 }

  let flow_key (r : Netflow.record) =
    {
      s_src = r.src;
      s_dst = r.dst;
      s_src_port = r.src_port;
      s_dst_port = r.dst_port;
      s_proto = r.proto;
    }

  let observe t (r : Netflow.record) =
    let key = flow_key r in
    match Hashtbl.find_opt t.last key with
    | Some fs when fs = r.first_s ->
        t.dropped <- t.dropped + 1;
        false
    | Some _ | None ->
        Hashtbl.replace t.last key r.first_s;
        Queue.add (key, r.first_s) t.arrivals;
        true

  let dropped t = t.dropped
  let distinct t = Hashtbl.length t.last

  let forget_before t ~first_s =
    (* Retire 5-tuples that have gone idle so the table does not grow
       with flow churn over a long-running stream. Entries are retired
       lazily off the arrival queue; a key re-observed since its queue
       entry was pushed has a fresher entry further down, so it is left
       alone here. Requires the ingest contract: a late record older
       than a retired horizon would be seen as fresh again. *)
    let stale () =
      match Queue.peek_opt t.arrivals with
      | Some (_, fs) -> fs < first_s
      | None -> false
    in
    while stale () do
      let key, _ = Queue.pop t.arrivals in
      match Hashtbl.find_opt t.last key with
      | Some fs when fs < first_s -> Hashtbl.remove t.last key
      | Some _ | None -> ()
    done
end

let dedup records =
  let best : (key, Netflow.record) Hashtbl.t = Hashtbl.create 4096 in
  let order = ref [] in
  List.iter
    (fun (r : Netflow.record) ->
      let key = key_of_record r in
      match Hashtbl.find_opt best key with
      | None ->
          Hashtbl.add best key r;
          order := key :: !order
      | Some kept -> if r.router < kept.router then Hashtbl.replace best key r)
    records;
  List.rev_map (fun key -> Hashtbl.find best key) !order

let duplicate_count records = List.length records - List.length (dedup records)
