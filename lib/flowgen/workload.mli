(** Calibrated synthetic workloads.

    Substitutes for the three proprietary traces. A workload samples
    (entry PoP, destination city) aggregates from a topology with a
    locality-biased gravity model and lognormal demands, then scales to
    an aggregate rate. Three knobs — the locality scale [d0], the demand
    coefficient of variation and a local-tail distance — are calibrated
    so the generated trace matches Table 1 of the paper (demand-weighted
    average flow distance, CV of distance, aggregate Gbps, CV of
    demand). *)

type params = {
  n_flows : int;
  aggregate_gbps : float;
  locality_scale : float;
      (** Preferred flow distance [d0] (miles): pair weight is
          [population * exp (-(ln d - ln d0)^2 / (2 * spread^2))]. *)
  locality_spread : float;
      (** Width of the distance band in log space; large values
          approximate distance-blind gravity. *)
  demand_cv : float;  (** Lognormal demand dispersion. *)
  demand_distance_exponent : float;
      (** Traffic-locality strength: a flow's demand is additionally
          scaled by [((d + 25) / 25) ^ -exponent], so nearer
          destinations attract more traffic. [0] disables the
          correlation. *)
  local_tail_miles : float;
      (** Mean of the Erlang-2 last-mile extra distance added to
          every flow. *)
  on_net_fraction : float;  (** Share of destinations that are customers. *)
  distance_mode : [ `Path | `Geo ];
      (** Flow distance = shortest path through the graph (EU ISP,
          Internet2) or great-circle entry-to-destination (CDN). *)
  seed : int;
}

type flow = {
  id : int;
  entry : Netsim.Node.t;
  dst_city : Netsim.Cities.t;
  src_addr : Ipv4.t;
  dst_addr : Ipv4.t;
  mbps : float;
  distance_miles : float;
  locality : Geoip.locality;
  on_net : bool;
  routers : int list;  (** Node ids observing the flow (its path). *)
}

type t = {
  params : params;
  topology : Netsim.Topology.t;
  geoip : Geoip.t;
  flows : flow list;
}

type stats = {
  flow_count : int;
  w_avg_distance_miles : float;
  cv_distance : float;
  aggregate_gbps : float;
  cv_demand : float;
}

val generate : Netsim.Topology.t -> params -> t
(** Deterministic in [params.seed]. Raises [Invalid_argument] on
    non-positive [n_flows]/[aggregate_gbps], [locality_scale <= 0] or
    an [on_net_fraction] outside [\[0, 1\]]. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val to_ground_truth : t -> Netflow.ground_truth list
(** Feed the generated flows into the NetFlow synthesis pipeline. *)

type target = {
  t_w_avg_distance : float;
  t_cv_distance : float;
  t_aggregate_gbps : float;
  t_cv_demand : float;
}
(** A Table 1 row. *)

val table1_targets : string -> target
(** Targets for ["eu_isp"], ["cdn"], ["internet2"]. *)

val calibrate :
  ?max_iter:int -> Netsim.Topology.t -> params -> target -> params
(** Nelder-Mead search over [locality_scale], [locality_spread],
    [demand_cv] and [local_tail_miles] minimizing the summed squared
    relative error of the three dispersion statistics (aggregate rate is
    matched exactly by construction). Starts from the given params. *)

val preset : string -> t
(** Calibrated workload for ["eu_isp"], ["cdn"] or ["internet2"] on the
    matching {!Netsim.Presets} topology, using stored calibration
    constants (no search at run time).

    A name may carry a synthetic scale suffix ["name@N"] (e.g.
    ["eu_isp@200000"]): the same calibration and topology with
    [n_flows] overridden to [N] — the large-n knob for exercising the
    tier-DP kernel at scale. Raises [Invalid_argument] on an unknown
    base name or a malformed suffix. *)

val preset_params : string -> params
(** Accepts the same ["name@N"] scale suffix as {!preset}. *)
