type link_load = {
  link : Netsim.Link.t;
  mbps : float;
  utilization : float;
}

type report = {
  loads : link_load list;
  max_utilization : float;
  overloaded : link_load list;
  unrouted_mbps : float;
}

(* Accumulate per-link loads keyed by the (a, b) endpoints, orientation
   normalized. For parallel links the traffic lands on the shortest. *)
let build ~topology contributions =
  let graph = topology.Netsim.Topology.graph in
  let shortest_between = Hashtbl.create 256 in
  List.iter
    (fun (l : Netsim.Link.t) ->
      let key = (min l.a l.b, max l.a l.b) in
      match Hashtbl.find_opt shortest_between key with
      | Some (existing : Netsim.Link.t) when existing.length_miles <= l.length_miles -> ()
      | Some _ | None -> Hashtbl.replace shortest_between key l)
    (Netsim.Graph.links graph);
  let loads = Hashtbl.create 256 in
  let unrouted = ref 0. in
  List.iter
    (fun (hops, mbps) ->
      match hops with
      | [] | [ _ ] -> ()
      | _ ->
          let rec walk = function
            | a :: (b :: _ as rest) ->
                let key = (min a b, max a b) in
                (if Hashtbl.mem shortest_between key then
                   Hashtbl.replace loads key
                     (mbps +. Option.value ~default:0. (Hashtbl.find_opt loads key))
                 else unrouted := !unrouted +. mbps);
                walk rest
            | [ _ ] | [] -> ()
          in
          walk hops)
    contributions;
  (* Deterministic render order: bindings leave the table sorted by
     endpoint key, and the *stable* utilization sort then breaks ties
     by that key order — hash-bucket order can never leak into the
     report (lint rule D002, golden byte-identity). *)
  let link_loads =
    Tbl.sorted_bindings loads
    |> List.map (fun (key, mbps) ->
           let link = Hashtbl.find shortest_between key in
           { link; mbps; utilization = mbps /. (link.capacity_gbps *. 1000.) })
    |> List.stable_sort (fun a b -> Float.compare b.utilization a.utilization)
  in
  {
    loads = link_loads;
    max_utilization =
      (match link_loads with [] -> 0. | top :: _ -> top.utilization);
    overloaded = List.filter (fun l -> l.utilization > 1.) link_loads;
    unrouted_mbps = !unrouted;
  }

let of_workload (w : Workload.t) =
  let contributions =
    List.map (fun (f : Workload.flow) -> (f.routers, f.mbps)) w.flows
  in
  build ~topology:w.topology contributions

let of_demands ~topology demands =
  let graph = topology.Netsim.Topology.graph in
  let unrouted = ref 0. in
  let contributions =
    List.filter_map
      (fun (src, dst, mbps) ->
        if src = dst then None
        else
          match Netsim.Graph.shortest_path graph ~src ~dst with
          | Some path -> Some (path.Netsim.Graph.hops, mbps)
          | None ->
              unrouted := !unrouted +. mbps;
              None)
      demands
  in
  let report = build ~topology contributions in
  { report with unrouted_mbps = report.unrouted_mbps +. !unrouted }

let scale_demands factor report =
  if factor < 0. then invalid_arg "Loading.scale_demands: negative factor";
  let loads =
    List.map
      (fun l -> { l with mbps = l.mbps *. factor; utilization = l.utilization *. factor })
      report.loads
  in
  {
    loads;
    max_utilization = report.max_utilization *. factor;
    overloaded = List.filter (fun l -> l.utilization > 1.) loads;
    unrouted_mbps = report.unrouted_mbps *. factor;
  }

let pp ppf report =
  Format.fprintf ppf "max utilization %.1f%%, %d overloaded link(s)%s@."
    (100. *. report.max_utilization)
    (List.length report.overloaded)
    (if report.unrouted_mbps > 0. then
       Printf.sprintf ", %.1f Mbps unrouted" report.unrouted_mbps
     else "");
  List.iteri
    (fun i l ->
      if i < 5 then
        Format.fprintf ppf "  %a: %.0f Mbps (%.1f%%)@." Netsim.Link.pp l.link l.mbps
          (100. *. l.utilization))
    report.loads
