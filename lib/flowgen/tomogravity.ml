type observation = {
  node_out_mbps : float array;
  node_in_mbps : float array;
  link_mbps : (int * int * float) list;
}

(* Edge key normalized by orientation. *)
let edge_key a b = (min a b, max a b)

(* Shortest-path edge lists between every ordered pop pair. *)
let pair_paths topology =
  let pops = Array.of_list topology.Netsim.Topology.pops in
  let n = Array.length pops in
  let paths = Array.make_matrix n n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        match
          Netsim.Graph.shortest_path topology.Netsim.Topology.graph
            ~src:pops.(i).Netsim.Node.id ~dst:pops.(j).Netsim.Node.id
        with
        | None -> ()
        | Some path ->
            let rec edges = function
              | a :: (b :: _ as rest) -> edge_key a b :: edges rest
              | [ _ ] | [] -> []
            in
            paths.(i).(j) <- edges path.Netsim.Graph.hops
    done
  done;
  (pops, paths)

let observe topology demands =
  let pops, paths = pair_paths topology in
  let n = Array.length pops in
  let node_out = Array.make n 0. and node_in = Array.make n 0. in
  let link_loads = Hashtbl.create 64 in
  List.iter
    (fun (i, j, mbps) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Tomogravity.observe: pop index out of range";
      if mbps < 0. then invalid_arg "Tomogravity.observe: negative demand";
      if i <> j then begin
        node_out.(i) <- node_out.(i) +. mbps;
        node_in.(j) <- node_in.(j) +. mbps;
        List.iter
          (fun key ->
            Hashtbl.replace link_loads key
              (mbps +. Option.value ~default:0. (Hashtbl.find_opt link_loads key)))
          paths.(i).(j)
      end)
    demands;
  {
    node_out_mbps = node_out;
    node_in_mbps = node_in;
    link_mbps =
      List.map (fun ((a, b), load) -> (a, b, load)) (Tbl.sorted_bindings link_loads);
  }

let gravity obs =
  let n = Array.length obs.node_out_mbps in
  if Array.length obs.node_in_mbps <> n then
    invalid_arg "Tomogravity.gravity: in/out length mismatch";
  let total = Numerics.Stats.sum obs.node_out_mbps in
  if not (total > 0.) then invalid_arg "Tomogravity.gravity: zero total traffic";
  let raw =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0. else obs.node_out_mbps.(i) *. obs.node_in_mbps.(j)))
  in
  let raw_total =
    Numerics.Stats.sum (Array.map Numerics.Stats.sum raw)
  in
  if raw_total <= 0. then raw
  else Array.map (Array.map (fun t -> t *. total /. raw_total)) raw

(* Scale rows then columns toward the observed node totals (one IPF
   sweep). *)
let ipf_sweep estimate ~node_out ~node_in =
  let n = Array.length node_out in
  for i = 0 to n - 1 do
    let row_total = Numerics.Stats.sum estimate.(i) in
    if row_total > 0. then
      for j = 0 to n - 1 do
        estimate.(i).(j) <- estimate.(i).(j) *. node_out.(i) /. row_total
      done
  done;
  for j = 0 to n - 1 do
    let col_total = ref 0. in
    for i = 0 to n - 1 do
      col_total := !col_total +. estimate.(i).(j)
    done;
    if !col_total > 0. then
      for i = 0 to n - 1 do
        estimate.(i).(j) <- estimate.(i).(j) *. node_in.(j) /. !col_total
      done
  done

let estimate ?(iterations = 50) topology obs =
  if iterations < 0 then invalid_arg "Tomogravity.estimate: negative iterations";
  let _, paths = pair_paths topology in
  let n = Array.length obs.node_out_mbps in
  let observed = Hashtbl.create 64 in
  List.iter (fun (a, b, load) -> Hashtbl.replace observed (edge_key a b) load) obs.link_mbps;
  let t = gravity obs in
  for _ = 1 to iterations do
    (* Implied link loads of the current estimate. *)
    let implied = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if t.(i).(j) > 0. then
          List.iter
            (fun key ->
              Hashtbl.replace implied key
                (t.(i).(j) +. Option.value ~default:0. (Hashtbl.find_opt implied key)))
            paths.(i).(j)
      done
    done;
    (* Multiplicative correction: geometric mean of per-edge ratios. *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && t.(i).(j) > 0. && paths.(i).(j) <> [] then begin
          let log_ratio = ref 0. and edges = ref 0 in
          List.iter
            (fun key ->
              let obs_load = Option.value ~default:0. (Hashtbl.find_opt observed key) in
              let est_load = Option.value ~default:0. (Hashtbl.find_opt implied key) in
              if est_load > 1e-12 then begin
                log_ratio := !log_ratio +. log (Float.max 1e-12 obs_load /. est_load);
                incr edges
              end)
            paths.(i).(j);
          if !edges > 0 then
            t.(i).(j) <- t.(i).(j) *. exp (!log_ratio /. float_of_int !edges)
        end
      done
    done;
    ipf_sweep t ~node_out:obs.node_out_mbps ~node_in:obs.node_in_mbps
  done;
  t

type quality = {
  correlation : float;
  mean_relative_error : float;
  total_error : float;
}

let compare_to_truth ?(cutoff_mbps = 1.) ~truth estimate =
  let n = Array.length truth in
  if Array.length estimate <> n then
    invalid_arg "Tomogravity.compare_to_truth: size mismatch";
  let xs = ref [] and ys = ref [] in
  let rel_errors = ref [] in
  let sum_true = ref 0. and sum_est = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        sum_true := !sum_true +. truth.(i).(j);
        sum_est := !sum_est +. estimate.(i).(j);
        xs := truth.(i).(j) :: !xs;
        ys := estimate.(i).(j) :: !ys;
        if truth.(i).(j) >= cutoff_mbps then
          rel_errors :=
            (abs_float (estimate.(i).(j) -. truth.(i).(j)) /. truth.(i).(j))
            :: !rel_errors
      end
    done
  done;
  {
    correlation = Numerics.Stats.pearson (Array.of_list !xs) (Array.of_list !ys);
    mean_relative_error =
      (match !rel_errors with
      | [] -> Float.nan
      | errors -> Numerics.Stats.mean (Array.of_list errors));
    total_error =
      (if !sum_true > 0. then abs_float (!sum_est -. !sum_true) /. !sum_true
       else Float.nan);
  }
