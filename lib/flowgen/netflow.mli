(** NetFlow-style flow records and their synthesis.

    The paper's inputs are 24 hours of sampled NetFlow from core routers
    (§4.1.1). This module defines a v5-style record and synthesizes a
    day's worth of records from ground-truth flow intensities: traffic is
    spread over hourly bins with a diurnal shape and multiplicative
    noise, and each record is emitted at {e every} observing router so
    that the downstream pipeline has real duplicate-suppression work to
    do, exactly like the paper's. *)

type record = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : int;  (** IP protocol number; 6 = TCP, 17 = UDP. *)
  bytes : float;  (** Bytes in this record (float: sampling re-scales). *)
  packets : float;
  first_s : int;  (** Window start, seconds since capture start. *)
  last_s : int;  (** Window end (exclusive), seconds. *)
  router : int;  (** Observing router node id. *)
}

val pp_record : Format.formatter -> record -> unit

val to_csv_line : record -> string
val of_csv_line : string -> record
(** Round-trips {!to_csv_line}. Raises [Invalid_argument] on malformed
    input. *)

val csv_header : string

type ground_truth = {
  gt_src : Ipv4.t;
  gt_dst : Ipv4.t;
  gt_mbps : float;  (** Mean rate over the whole capture. *)
  gt_routers : int list;  (** Routers that observe (and duplicate) it. *)
}

val day_seconds : int
(** 86_400. *)

type shape = {
  bins : int;  (** Time bins over the day (default 24). *)
  diurnal_amplitude : float;  (** 0 = flat; 0.6 = pronounced day/night. *)
  peak_hour : float;  (** Hour of peak traffic, e.g. 20.0. *)
  noise_cv : float;  (** Per-bin lognormal noise CV. *)
}

val default_shape : shape

val synthesize :
  ?shape:shape -> rng:Numerics.Rng.t -> ground_truth list -> record list
(** Emits [bins * length gt_routers] records per ground-truth flow. The
    total bytes of a flow's records at any single router equal
    [gt_mbps * day_seconds * 125_000] up to the per-bin noise (which is
    mean-one). Ports and protocol are drawn from a realistic-looking
    fixed distribution. *)

(** Binary wire codec: NetFlow v5 packets and a minimal IPFIX (RFC 7011
    framing) data record, plus a framed pull-based reader with bounded
    buffering.

    The encoder keeps records in order and picks the format per record:
    NetFlow v5 when the byte/packet counters fit the format's 32-bit
    fields and the timestamps fit the 32-bit SysUptime millisecond
    clock, IPFIX (64-bit counters, absolute millisecond stamps)
    otherwise. Both coexist in one stream — every packet is
    self-describing through its version field. Byte/packet counts are
    rounded to wire integers; see {!Wire.normalize}.

    The decoder never raises on wire input: malformed packets, bad set
    strides, truncated tails and nonsense records are {e counted} (and
    skipped) rather than thrown. Sequence-number gaps are accounted per
    exporter (v5 [flow_sequence] counts flows; IPFIX sequence counts
    data records). *)
module Wire : sig
  type counters = {
    mutable c_packets : int;  (** Well-framed packets decoded. *)
    mutable c_records : int;  (** Records decoded and accepted. *)
    mutable c_seq_gaps : int;
        (** Total missing flows/records inferred from sequence jumps. *)
    mutable c_malformed : int;
        (** Bad frames, truncated tails, unusable records. *)
  }

  val encode_v5 : router:int -> seq:int -> record list -> string
  (** One NetFlow v5 packet (1–30 records, one router). The export
      clock is pinned so that decoding reconstructs [first_s]/[last_s]
      exactly. Raises [Invalid_argument] on an empty or oversized
      batch. *)

  val encode_ipfix : router:int -> seq:int -> record list -> string
  (** One IPFIX message with a single data set (set id 256, fixed
      48-byte records, 64-bit counters). The router id travels in the
      observation-domain field. *)

  val encode : record list -> string list
  (** Packetize a record stream in order, grouping consecutive
      same-router runs and tracking per-exporter sequence numbers.
      Raises [Invalid_argument] only on records that no format can
      carry (negative timestamps, router id above 65_535). *)

  val write_channel : out_channel -> record list -> unit
  val write_file : string -> record list -> unit

  type reader
  (** Framed pull-based decoder. Internal buffering is bounded by one
      packet (≤ 65_535 bytes): a slow consumer exerts backpressure on
      the underlying channel instead of queueing unbounded records. *)

  val of_channel : in_channel -> reader
  (** Works over files, pipes and socket channels alike. *)

  val of_string : string -> reader
  val of_refill : (Bytes.t -> int -> int -> int) -> reader
  (** [of_refill f] pulls bytes through [f buf off len] (returning the
      number of bytes written, 0 at end of stream), e.g. a
      [Unix.read] wrapper for nonblocking sockets. *)

  val read : reader -> record option
  (** Next record, pulling and decoding frames as needed. [None] is
      end of stream — clean EOF or an unrecoverable framing error
      (recorded in {!malformed}; a desynchronized byte stream has no
      resync point). Never raises on wire content. *)

  val read_all : reader -> record list

  val seq_gaps : reader -> int
  val malformed : reader -> int
  val packets : reader -> int
  val records : reader -> int

  val decode_string : string -> record list * counters
  (** Decode a whole in-memory stream; for tests. *)

  val normalize : record -> record
  (** Rounds [bytes]/[packets] to the integers the wire carries —
      the fixpoint of an encode/decode round trip. *)
end

val total_bytes : record list -> float
val mbps_of_bytes : bytes:float -> seconds:int -> float
(** [bytes * 8 / seconds / 1e6]. *)
