(** Aggregation of NetFlow records into per-destination demand.

    The pricing model consumes one demand figure per "flow" in the
    economic sense — an (entry, destination) traffic aggregate. This is
    the last stage of the paper's measurement pipeline: collect, sample,
    dedup, then aggregate to Mbps over the capture window. *)

type aggregate = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mbps : float;  (** Mean rate over the capture window. *)
  bytes : float;
  records : int;  (** Records merged into this aggregate. *)
}

(** Incremental aggregation: one record at a time, aggregates on
    demand. The batch entry points below are thin wrappers, so batch
    and streaming ingest share one grouping semantics. *)
module Acc : sig
  type t

  val create :
    ?expected:int -> key_of:(Netflow.record -> int * int) -> unit -> t

  val observe : t -> Netflow.record -> unit
  val size : t -> int
  (** Distinct keys seen. *)

  val aggregates : t -> window_s:int -> aggregate list
  (** Snapshot in first-appearance order; [mbps] is the mean rate over
      [window_s]. Raises [Invalid_argument] when [window_s <= 0]. *)
end

val endpoint_pair_key : Netflow.record -> int * int
(** The (src, dst) grouping key of {!by_endpoint_pair}. *)

val destination_key : Netflow.record -> int * int
(** The destination-only grouping key of {!by_destination}. *)

val by_endpoint_pair : ?window_s:int -> Netflow.record list -> aggregate list
(** Groups by (src, dst) address pair over a window of [window_s]
    seconds (default one day). Order follows first appearance. *)

val by_destination : ?window_s:int -> Netflow.record list -> aggregate list
(** Groups by destination address only ([src] is set to the first
    source seen) — destination-based pricing's native granularity. *)

val total_mbps : aggregate list -> float

val demands : aggregate list -> float array
(** Demand vector, same order as the input aggregates. *)
