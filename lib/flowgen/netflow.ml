type record = {
  src : Ipv4.t;
  dst : Ipv4.t;
  src_port : int;
  dst_port : int;
  proto : int;
  bytes : float;
  packets : float;
  first_s : int;
  last_s : int;
  router : int;
}

let pp_record ppf r =
  Format.fprintf ppf "%s:%d -> %s:%d proto=%d bytes=%.0f pkts=%.0f [%d,%d) @r%d"
    (Ipv4.to_string r.src) r.src_port (Ipv4.to_string r.dst) r.dst_port r.proto
    r.bytes r.packets r.first_s r.last_s r.router

let csv_header = "src,dst,src_port,dst_port,proto,bytes,packets,first_s,last_s,router"

let to_csv_line r =
  Printf.sprintf "%s,%s,%d,%d,%d,%.3f,%.3f,%d,%d,%d" (Ipv4.to_string r.src)
    (Ipv4.to_string r.dst) r.src_port r.dst_port r.proto r.bytes r.packets
    r.first_s r.last_s r.router

let of_csv_line line =
  match String.split_on_char ',' line with
  | [ src; dst; sp; dp; proto; bytes; packets; first_s; last_s; router ] -> (
      try
        {
          src = Ipv4.of_string src;
          dst = Ipv4.of_string dst;
          src_port = int_of_string sp;
          dst_port = int_of_string dp;
          proto = int_of_string proto;
          bytes = float_of_string bytes;
          packets = float_of_string packets;
          first_s = int_of_string first_s;
          last_s = int_of_string last_s;
          router = int_of_string router;
        }
      with Failure _ -> invalid_arg ("Netflow.of_csv_line: malformed line: " ^ line))
  | _ -> invalid_arg ("Netflow.of_csv_line: malformed line: " ^ line)

type ground_truth = {
  gt_src : Ipv4.t;
  gt_dst : Ipv4.t;
  gt_mbps : float;
  gt_routers : int list;
}

let day_seconds = 86_400

type shape = {
  bins : int;
  diurnal_amplitude : float;
  peak_hour : float;
  noise_cv : float;
}

let default_shape =
  { bins = 24; diurnal_amplitude = 0.5; peak_hour = 20.0; noise_cv = 0.15 }

let bytes_per_mbit_second = 125_000.

(* Common application ports weighted towards web traffic. *)
let port_choices = [| 443; 80; 443; 8080; 443; 22; 53; 993; 443; 25 |]

let synthesize ?(shape = default_shape) ~rng gts =
  if shape.bins <= 0 then invalid_arg "Netflow.synthesize: bins must be positive";
  if shape.diurnal_amplitude < 0. || shape.diurnal_amplitude >= 1. then
    invalid_arg "Netflow.synthesize: diurnal_amplitude out of [0, 1)";
  let bin_seconds = day_seconds / shape.bins in
  (* Normalized diurnal weights: mean exactly one so totals are exact. *)
  let weights =
    Array.init shape.bins (fun b ->
        let hour = float_of_int b *. 24. /. float_of_int shape.bins in
        1.
        +. shape.diurnal_amplitude
           *. cos (2. *. Float.pi *. (hour -. shape.peak_hour) /. 24.))
  in
  let weight_mean = Numerics.Stats.mean weights in
  let weights = Array.map (fun w -> w /. weight_mean) weights in
  let records = ref [] in
  List.iter
    (fun gt ->
      if gt.gt_mbps < 0. then invalid_arg "Netflow.synthesize: negative rate";
      if gt.gt_routers = [] then invalid_arg "Netflow.synthesize: flow with no observing router";
      let src_port = 1024 + Numerics.Rng.int rng 64_000 in
      let dst_port = Numerics.Rng.choose rng port_choices in
      let proto = if Numerics.Rng.float rng < 0.9 then 6 else 17 in
      (* Per-bin noise is shared across routers: every router sees the
         same wire traffic. *)
      let bin_bytes =
        Array.init shape.bins (fun b ->
            let noise =
              if Float.equal shape.noise_cv 0. then 1.
              else Numerics.Dist.lognormal_of_mean_cv rng ~mean:1. ~cv:shape.noise_cv
            in
            gt.gt_mbps *. bytes_per_mbit_second
            *. float_of_int bin_seconds *. weights.(b) *. noise)
      in
      List.iter
        (fun router ->
          Array.iteri
            (fun b bytes ->
              let packets = Float.max 1. (bytes /. 1000.) in
              records :=
                {
                  src = gt.gt_src;
                  dst = gt.gt_dst;
                  src_port;
                  dst_port;
                  proto;
                  bytes;
                  packets;
                  first_s = b * bin_seconds;
                  last_s = (b + 1) * bin_seconds;
                  router;
                }
                :: !records)
            bin_bytes)
        gt.gt_routers)
    gts;
  List.rev !records

(* ------------------------------------------------------------------ *)
(* Binary wire codec: NetFlow v5 and a minimal IPFIX data record.      *)
(* ------------------------------------------------------------------ *)

module Wire = struct
  let v5_header_len = 24
  let v5_record_len = 48
  let v5_max_records = 30
  let ipfix_header_len = 16
  let ipfix_set_id = 256
  let ipfix_record_len = 48
  let max_packet_len = 65_535

  (* Unsigned big-endian accessors. [get_u32] returns a plain int (the
     host is 64-bit; lint forbids nothing here), [get_u64] may round
     through Int64 for byte counters only. *)
  let get_u16 b off = Bytes.get_uint16_be b off
  let get_u8 b off = Char.code (Bytes.get b off)
  let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF
  let get_u64 b off = Bytes.get_int64_be b off
  let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xFFFF)
  let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xFF))
  let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFF_FFFF))
  let set_u64 b off v = Bytes.set_int64_be b off v

  (* Floor division: millisecond timestamps can go negative when an
     exporter's boot epoch reconstruction lands before the capture
     epoch; truncating division would round those towards zero. *)
  let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

  type counters = {
    mutable c_packets : int;
    mutable c_records : int;
    mutable c_seq_gaps : int;
    mutable c_malformed : int;
  }

  let fresh_counters () =
    { c_packets = 0; c_records = 0; c_seq_gaps = 0; c_malformed = 0 }

  (* ---------------------------- encode ---------------------------- *)

  let u32_max_f = 4_294_967_296.

  (* A record fits NetFlow v5 iff its counters fit 32 bits and its
     timestamps fit the 32-bit SysUptime millisecond clock. *)
  let v5_fits r =
    let o = Float.round r.bytes and p = Float.round r.packets in
    o >= 0. && o < u32_max_f && p >= 0. && p < u32_max_f
    && r.first_s >= 0
    && r.last_s >= 0
    && r.last_s <= 4_294_967 (* last_s * 1000 must fit u32 *)
    && r.router >= 0 && r.router <= 0xFF

  (* Encoder convention: boot epoch 0. SysUptime is set to the export
     millisecond and unix_secs/unix_nsecs to the same instant, so the
     decoder's boot reconstruction [unix_ms - sys_uptime] is exactly 0
     and First/Last round-trip to [first_s]/[last_s] without loss. *)
  let encode_v5 ~router ~seq records =
    let n = List.length records in
    if n < 1 || n > v5_max_records then
      invalid_arg "Netflow.Wire.encode_v5: record count out of [1, 30]";
    let export_s =
      List.fold_left (fun acc r -> Stdlib.max acc r.last_s) 0 records
    in
    let export_ms = export_s * 1000 in
    let b = Bytes.make (v5_header_len + (n * v5_record_len)) '\000' in
    set_u16 b 0 5;
    set_u16 b 2 n;
    set_u32 b 4 export_ms;
    set_u32 b 8 export_s;
    set_u32 b 12 0;
    set_u32 b 16 seq;
    set_u8 b 20 0;
    set_u8 b 21 router;
    set_u16 b 22 0;
    List.iteri
      (fun i r ->
        let off = v5_header_len + (i * v5_record_len) in
        set_u32 b off (Ipv4.to_int r.src);
        set_u32 b (off + 4) (Ipv4.to_int r.dst);
        set_u32 b (off + 8) 0 (* nexthop *);
        set_u16 b (off + 12) 0;
        set_u16 b (off + 14) 0 (* input/output ifindex *);
        set_u32 b (off + 16) (int_of_float (Float.round r.packets));
        set_u32 b (off + 20) (int_of_float (Float.round r.bytes));
        set_u32 b (off + 24) (r.first_s * 1000);
        set_u32 b (off + 28) (r.last_s * 1000);
        set_u16 b (off + 32) r.src_port;
        set_u16 b (off + 34) r.dst_port;
        set_u8 b (off + 37) 0 (* tcp_flags *);
        set_u8 b (off + 38) r.proto;
        set_u8 b (off + 39) 0 (* tos *))
      records;
    Bytes.unsafe_to_string b

  let encode_ipfix ~router ~seq records =
    let n = List.length records in
    if n < 1 then invalid_arg "Netflow.Wire.encode_ipfix: empty packet";
    let set_len = 4 + (n * ipfix_record_len) in
    let total = ipfix_header_len + set_len in
    if total > max_packet_len then
      invalid_arg "Netflow.Wire.encode_ipfix: packet too large";
    let export_s =
      List.fold_left (fun acc r -> Stdlib.max acc r.last_s) 0 records
    in
    let b = Bytes.make total '\000' in
    set_u16 b 0 10;
    set_u16 b 2 total;
    set_u32 b 4 export_s;
    set_u32 b 8 seq;
    set_u32 b 12 router;
    set_u16 b 16 ipfix_set_id;
    set_u16 b 18 set_len;
    List.iteri
      (fun i r ->
        let off = ipfix_header_len + 4 + (i * ipfix_record_len) in
        set_u32 b off (Ipv4.to_int r.src);
        set_u32 b (off + 4) (Ipv4.to_int r.dst);
        set_u16 b (off + 8) r.src_port;
        set_u16 b (off + 10) r.dst_port;
        set_u16 b (off + 12) r.proto;
        set_u16 b (off + 14) 0 (* pad *);
        set_u64 b (off + 16) (Int64.of_float (Float.round r.bytes));
        set_u64 b (off + 24) (Int64.of_float (Float.round r.packets));
        set_u64 b (off + 32) (Int64.of_int (r.first_s * 1000));
        set_u64 b (off + 40) (Int64.of_int (r.last_s * 1000)))
      records;
    Bytes.unsafe_to_string b

  (* Streams records into packets, preserving order. Consecutive records
     from the same router share a packet; v5 when all counters fit 32
     bits, IPFIX (64-bit counters) otherwise. Sequence numbers follow
     exporter semantics: v5 counts flows, IPFIX counts data records. *)
  let encode records =
    let packets = ref [] in
    let seqs : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let seq_key ~v5 router = (router lsl 1) lor (if v5 then 1 else 0) in
    let flush ~v5 ~router batch =
      match List.rev batch with
      | [] -> ()
      | recs ->
          let key = seq_key ~v5 router in
          let seq = Option.value ~default:0 (Hashtbl.find_opt seqs key) in
          let n = List.length recs in
          let pkt =
            if v5 then encode_v5 ~router ~seq recs
            else encode_ipfix ~router ~seq recs
          in
          Hashtbl.replace seqs key (seq + n);
          packets := pkt :: !packets
    in
    let batch = ref [] and b_n = ref 0 and b_v5 = ref true and b_router = ref (-1) in
    List.iter
      (fun r ->
        let v5 = v5_fits r in
        if (not (r.router >= 0 && r.router <= 0xFFFF)) || r.first_s < 0 then
          invalid_arg "Netflow.Wire.encode: record not encodable";
        if
          !b_n > 0
          && (!b_router <> r.router || !b_v5 <> v5 || !b_n >= v5_max_records)
        then begin
          flush ~v5:!b_v5 ~router:!b_router !batch;
          batch := [];
          b_n := 0
        end;
        b_v5 := v5;
        b_router := r.router;
        batch := r :: !batch;
        incr b_n)
      records;
    if !b_n > 0 then flush ~v5:!b_v5 ~router:!b_router !batch;
    List.rev !packets

  let write_channel oc records =
    List.iter (fun pkt -> output_string oc pkt) (encode records)

  let write_file path records =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> write_channel oc records)

  (* ---------------------------- decode ---------------------------- *)

  (* Pull-based framed reader. The buffer never holds more than one
     packet (<= 65_535 bytes) and decoding is driven by [read], so a
     stalled consumer exerts backpressure on the channel instead of
     accumulating records: bounded buffering by construction. *)
  type reader = {
    refill : Bytes.t -> int -> int -> int;
    buf : Bytes.t;
    counters : counters;
    seqs : (int, int) Hashtbl.t;  (** (router, family) -> next expected *)
    mutable queue : record list;  (** decoded records of the last packet *)
    mutable eof : bool;
  }

  let of_refill refill =
    {
      refill;
      buf = Bytes.create max_packet_len;
      counters = fresh_counters ();
      seqs = Hashtbl.create 16;
      queue = [];
      eof = false;
    }

  let of_channel ic = of_refill (fun b off len -> input ic b off len)

  let of_string s =
    let pos = ref 0 in
    of_refill (fun b off len ->
        let k = Stdlib.min len (String.length s - !pos) in
        Bytes.blit_string s !pos b off k;
        pos := !pos + k;
        k)

  let seq_gaps r = r.counters.c_seq_gaps
  let malformed r = r.counters.c_malformed
  let packets r = r.counters.c_packets
  let records r = r.counters.c_records

  (* Fill buf[off, off+n) exactly. [`Eof] only at a clean boundary
     (zero bytes read and nothing pending); a partial fill is [`Short]. *)
  let read_exactly r ~off n =
    let got = ref 0 in
    let short = ref false in
    while (not !short) && !got < n do
      let k = r.refill r.buf (off + !got) (n - !got) in
      if k <= 0 then short := true else got := !got + k
    done;
    if !got = n then `Full else if !got = 0 then `Eof else `Short

  let note_seq r ~family ~router ~seq ~units =
    let key = (router lsl 1) lor family in
    (match Hashtbl.find_opt r.seqs key with
    | Some expected ->
        let gap = seq - expected in
        if gap > 0 then r.counters.c_seq_gaps <- r.counters.c_seq_gaps + gap
    | None -> ());
    Hashtbl.replace r.seqs key (seq + units)

  let push_record r ~src ~dst ~src_port ~dst_port ~proto ~bytes ~packets
      ~first_ms ~last_ms ~router acc =
    let first_s = fdiv first_ms 1000 and last_s = fdiv last_ms 1000 in
    if first_s < 0 || last_s < first_s then begin
      r.counters.c_malformed <- r.counters.c_malformed + 1;
      acc
    end
    else begin
      r.counters.c_records <- r.counters.c_records + 1;
      {
        src = Ipv4.of_int src;
        dst = Ipv4.of_int dst;
        src_port;
        dst_port;
        proto;
        bytes;
        packets;
        first_s;
        last_s;
        router;
      }
      :: acc
    end

  (* Body of a v5 packet, header already in buf[0, 24) and records in
     buf[24, 24 + 48n). *)
  let decode_v5_body r ~count =
    let b = r.buf in
    let sys_uptime = get_u32 b 4 in
    let unix_secs = get_u32 b 8 in
    let unix_nsecs = get_u32 b 12 in
    let seq = get_u32 b 16 in
    let router = get_u8 b 21 in
    note_seq r ~family:1 ~router ~seq ~units:count;
    let boot_ms = (unix_secs * 1000) + (unix_nsecs / 1_000_000) - sys_uptime in
    let acc = ref [] in
    for i = 0 to count - 1 do
      let off = v5_header_len + (i * v5_record_len) in
      acc :=
        push_record r ~src:(get_u32 b off) ~dst:(get_u32 b (off + 4))
          ~src_port:(get_u16 b (off + 32))
          ~dst_port:(get_u16 b (off + 34))
          ~proto:(get_u8 b (off + 38))
          ~bytes:(float_of_int (get_u32 b (off + 20)))
          ~packets:(float_of_int (get_u32 b (off + 16)))
          ~first_ms:(boot_ms + get_u32 b (off + 24))
          ~last_ms:(boot_ms + get_u32 b (off + 28))
          ~router !acc
    done;
    List.rev !acc

  (* Body of an IPFIX message, fully in buf[0, len). Unknown set ids
     are skipped (templates, options); a recognized data set with a
     stride mismatch counts as malformed. *)
  let decode_ipfix_body r ~len =
    let b = r.buf in
    let seq = get_u32 b 8 in
    let router = get_u32 b 12 in
    let acc = ref [] in
    let n_records = ref 0 in
    let pos = ref ipfix_header_len in
    let bad = ref false in
    while (not !bad) && !pos + 4 <= len do
      let sid = get_u16 b !pos and slen = get_u16 b (!pos + 2) in
      if slen < 4 || !pos + slen > len then begin
        r.counters.c_malformed <- r.counters.c_malformed + 1;
        bad := true
      end
      else begin
        if sid = ipfix_set_id then
          if (slen - 4) mod ipfix_record_len <> 0 then
            r.counters.c_malformed <- r.counters.c_malformed + 1
          else
            for i = 0 to ((slen - 4) / ipfix_record_len) - 1 do
              let off = !pos + 4 + (i * ipfix_record_len) in
              incr n_records;
              acc :=
                push_record r ~src:(get_u32 b off) ~dst:(get_u32 b (off + 4))
                  ~src_port:(get_u16 b (off + 8))
                  ~dst_port:(get_u16 b (off + 10))
                  ~proto:(get_u16 b (off + 12))
                  ~bytes:(Int64.to_float (get_u64 b (off + 16)))
                  ~packets:(Int64.to_float (get_u64 b (off + 24)))
                  ~first_ms:(Int64.to_int (get_u64 b (off + 32)))
                  ~last_ms:(Int64.to_int (get_u64 b (off + 40)))
                  ~router !acc
            done;
        pos := !pos + slen
      end
    done;
    note_seq r ~family:0 ~router ~seq ~units:!n_records;
    List.rev !acc

  (* Read one frame. [None] means end of stream: clean EOF, or an
     unrecoverable framing error (counted in [malformed] — once the
     byte stream desynchronizes there is no resync point). *)
  let read_frame r =
    match read_exactly r ~off:0 2 with
    | `Eof -> None
    | `Short ->
        r.counters.c_malformed <- r.counters.c_malformed + 1;
        None
    | `Full -> (
        let version = get_u16 r.buf 0 in
        match version with
        | 5 -> (
            match read_exactly r ~off:2 (v5_header_len - 2) with
            | `Eof | `Short ->
                r.counters.c_malformed <- r.counters.c_malformed + 1;
                None
            | `Full -> (
                let count = get_u16 r.buf 2 in
                if count < 1 || count > v5_max_records then begin
                  r.counters.c_malformed <- r.counters.c_malformed + 1;
                  None
                end
                else
                  match
                    read_exactly r ~off:v5_header_len (count * v5_record_len)
                  with
                  | `Eof | `Short ->
                      r.counters.c_malformed <- r.counters.c_malformed + 1;
                      None
                  | `Full ->
                      r.counters.c_packets <- r.counters.c_packets + 1;
                      Some (decode_v5_body r ~count)))
        | 10 -> (
            match read_exactly r ~off:2 (ipfix_header_len - 2) with
            | `Eof | `Short ->
                r.counters.c_malformed <- r.counters.c_malformed + 1;
                None
            | `Full -> (
                let len = get_u16 r.buf 2 in
                if len < ipfix_header_len then begin
                  r.counters.c_malformed <- r.counters.c_malformed + 1;
                  None
                end
                else if len = ipfix_header_len then begin
                  r.counters.c_packets <- r.counters.c_packets + 1;
                  Some []
                end
                else
                  match
                    read_exactly r ~off:ipfix_header_len
                      (len - ipfix_header_len)
                  with
                  | `Eof | `Short ->
                      r.counters.c_malformed <- r.counters.c_malformed + 1;
                      None
                  | `Full ->
                      r.counters.c_packets <- r.counters.c_packets + 1;
                      Some (decode_ipfix_body r ~len)))
        | _ ->
            r.counters.c_malformed <- r.counters.c_malformed + 1;
            None)

  let rec read r =
    match r.queue with
    | x :: tl ->
        r.queue <- tl;
        Some x
    | [] ->
        if r.eof then None
        else (
          match read_frame r with
          | None ->
              r.eof <- true;
              None
          | Some recs ->
              r.queue <- recs;
              read r)

  let read_all r =
    let acc = ref [] in
    let rec go () =
      match read r with
      | Some x ->
          acc := x :: !acc;
          go ()
      | None -> List.rev !acc
    in
    go ()

  let decode_string s =
    let r = of_string s in
    let recs = read_all r in
    (recs, r.counters)

  (* The decoder rounds byte/packet counters to wire integers; tests
     compare against this normal form. *)
  let normalize r =
    { r with bytes = Float.round r.bytes; packets = Float.round r.packets }
end

let total_bytes records =
  Numerics.Stats.sum (Array.of_list (List.map (fun r -> r.bytes) records))

let mbps_of_bytes ~bytes ~seconds =
  if seconds <= 0 then invalid_arg "Netflow.mbps_of_bytes: non-positive window";
  bytes *. 8. /. float_of_int seconds /. 1e6
