(** Duplicate suppression for multi-router observations.

    A flow crossing k core routers shows up k times in the collected
    records; the paper "ensure\[s\] we do not double-count records that
    are duplicated on different routers" (§4.1.1). Two records are
    duplicates when they share the 5-tuple and time window but differ in
    observing router; we keep the observation from the lowest-numbered
    router, a deterministic stand-in for "the designated accounting
    router". *)

type key = {
  k_src : Ipv4.t;
  k_dst : Ipv4.t;
  k_src_port : int;
  k_dst_port : int;
  k_proto : int;
  k_first_s : int;
}

val key_of_record : Netflow.record -> key

val dedup : Netflow.record list -> Netflow.record list
(** Output order follows first appearance of each key. *)

val duplicate_count : Netflow.record list -> int
(** How many records {!dedup} would drop. *)

(** Streaming duplicate suppression for the long-running ingest loop.

    First observation of a (5-tuple, window) wins (the batch {!dedup}
    keeps the lowest-numbered router instead, which needs the whole
    input in hand); byte counts agree between the two because
    synthesized duplicates carry identical [bytes] at every observing
    router — only the [router] attribution can differ. Records must
    arrive in nondecreasing [first_s]: the state kept per 5-tuple is
    just the last [first_s] seen, so out-of-order input would misread
    an old window as fresh. *)
module Stream : sig
  type t

  val create : ?expected:int -> unit -> t

  val observe : t -> Netflow.record -> bool
  (** [true] when the record opens a new window for its 5-tuple (keep
      it); [false] for a same-window duplicate (drop it). *)

  val dropped : t -> int
  (** Duplicates suppressed so far. *)

  val distinct : t -> int
  (** 5-tuples currently remembered. *)

  val forget_before : t -> first_s:int -> unit
  (** Retire every 5-tuple last kept before [first_s], bounding memory
      under flow churn on a long-running stream. Requires the
      nondecreasing-[first_s] contract: a late record older than a
      retired horizon would be treated as fresh. *)
end
