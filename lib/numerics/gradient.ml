type result = {
  x : float array;
  value : float;
  iterations : int;
  converged : bool;
}

let identity_projection x = x

let ascent ?(step0 = 1.0) ?(tol = 1e-9) ?(max_iter = 10_000)
    ?(project = identity_projection) ~f ~grad x0 =
  let armijo = 1e-4 in
  let rec loop x fx iter =
    if iter >= max_iter then { x; value = fx; iterations = iter; converged = false }
    else
      let g = grad x in
      let gnorm = Vec.norm2 g in
      if gnorm <= tol then { x; value = fx; iterations = iter; converged = true }
      else
        (* Backtracking line search along the gradient, re-projecting
           each trial point. *)
        let rec search step =
          if step < 1e-16 then None
          else
            let trial = project (Vec.add x (Vec.scale step g)) in
            let ft = f trial in
            let progress = Vec.linf_dist trial x in
            if ft >= fx +. (armijo *. step *. gnorm *. gnorm) then Some (trial, ft, progress)
            else search (step /. 2.)
        in
        match search step0 with
        | None -> { x; value = fx; iterations = iter; converged = true }
        | Some (x', fx', progress) ->
            if progress <= tol *. (1. +. Vec.norm2 x') then
              { x = x'; value = fx'; iterations = iter + 1; converged = true }
            else loop x' fx' (iter + 1)
  in
  let x0 = project x0 in
  loop x0 (f x0) 0

let descent ?step0 ?tol ?max_iter ?project ~f ~grad x0 =
  let neg_f x = -.f x in
  let neg_grad x = Vec.scale (-1.) (grad x) in
  let r = ascent ?step0 ?tol ?max_iter ?project ~f:neg_f ~grad:neg_grad x0 in
  { r with value = -.r.value }

let numeric_grad ?(eps = 1e-6) f x =
  let n = Array.length x in
  Array.init n (fun i ->
      let h = eps *. (1. +. abs_float x.(i)) in
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- x.(i) +. h;
      xm.(i) <- x.(i) -. h;
      (f xp -. f xm) /. (2. *. h))

(* Nelder-Mead with the standard reflection/expansion/contraction/shrink
   coefficients (1, 2, 0.5, 0.5). *)
let nelder_mead ?(tol = 1e-10) ?(max_iter = 20_000) ?(scale = 0.1) ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Gradient.nelder_mead: empty start point";
  let point i =
    if i = 0 then Array.copy x0
    else begin
      let p = Array.copy x0 in
      let j = i - 1 in
      let h = scale *. (1. +. abs_float x0.(j)) in
      p.(j) <- p.(j) +. h;
      p
    end
  in
  let simplex = Array.init (n + 1) (fun i -> (point i, 0.)) in
  Array.iteri (fun i (p, _) -> simplex.(i) <- (p, f p)) simplex;
  let order () = Array.sort (fun (_, a) (_, b) -> Float.compare a b) simplex in
  let centroid () =
    let c = Array.make n 0. in
    for i = 0 to n - 1 do
      (* all but the worst vertex *)
      let p, _ = simplex.(i) in
      Vec.axpy_inplace 1. p c
    done;
    Vec.scale (1. /. float_of_int n) c
  in
  let simplex_diameter () =
    let best_p, _ = simplex.(0) in
    Array.fold_left
      (fun acc (p, _) -> Float.max acc (Vec.linf_dist p best_p))
      0. simplex
  in
  let rec loop iter =
    order ();
    let best_p, best = simplex.(0) in
    let _, worst = simplex.(n) in
    (* Equal values at distinct vertices (e.g. symmetric points around a
       kink) are not convergence: also require a small simplex. *)
    let values_flat = abs_float (worst -. best) <= tol *. (1. +. abs_float best) in
    let simplex_small = simplex_diameter () <= tol *. (1. +. Vec.norm2 best_p) in
    if (values_flat && simplex_small) || iter >= max_iter then
      let x, value = simplex.(0) in
      { x; value; iterations = iter; converged = iter < max_iter }
    else begin
      let c = centroid () in
      let worst_p, worst_f = simplex.(n) in
      let along t = Vec.add c (Vec.scale t (Vec.sub c worst_p)) in
      let reflected = along 1. in
      let fr = f reflected in
      let _, second_worst = simplex.(n - 1) in
      if fr < best then begin
        let expanded = along 2. in
        let fe = f expanded in
        simplex.(n) <- (if fe < fr then (expanded, fe) else (reflected, fr))
      end
      else if fr < second_worst then simplex.(n) <- (reflected, fr)
      else begin
        let contracted =
          if fr < worst_f then along 0.5 else along (-0.5)
        in
        let fc = f contracted in
        if fc < Stdlib.min fr worst_f then simplex.(n) <- (contracted, fc)
        else begin
          (* Shrink towards the best vertex. *)
          let best_p, _ = simplex.(0) in
          for i = 1 to n do
            let p, _ = simplex.(i) in
            let shrunk = Vec.add best_p (Vec.scale 0.5 (Vec.sub p best_p)) in
            simplex.(i) <- (shrunk, f shrunk)
          done
        end
      end;
      loop (iter + 1)
    end
  in
  loop 0
