(** Fast segment-partition dynamic programming.

    Solves [max over partitions of 0..n-1 into at most n_bundles
    contiguous segments of sum (seg_value lo hi)] ([lo], [hi] inclusive
    positions), the optimal-bundling recurrence of the tier DP
    (DESIGN.md §11).

    Both solvers share the quadratic DP's exact semantics: ties inside a
    column break toward the smallest split index, and ties across
    segment counts break toward the fewest segments (strict [>]
    updates). [solve] computes each layer by monotone-decision divide
    and conquer — O(b n log n) evaluations when the per-layer matrices
    are inverse Monge, which the closed-form CED/linear/logit segment
    profits are in practice — then spot-checks the layer (exact
    re-solve of sampled columns plus sampled adjacent Monge quadruples)
    and recomputes it with exact O(n^2) scans when the check fails, so a
    structurally hostile [seg_value] degrades to quadratic time, not to
    different cuts. The regression suite pins [solve = solve_quadratic]
    cut-for-cut on random markets of every demand spec. *)

type stats = {
  layers : int;  (** DP layers computed, including the base layer. *)
  fallback_layers : int;
      (** Layers whose spot-check failed and that were recomputed with
          the exact quadratic row ([solve] only; always [0] for
          [solve_quadratic]). *)
  evaluations : int;  (** Total [seg_value] calls, checks included. *)
}

type result = {
  cuts : int list;
      (** Segment start positions (ascending, in [\[1, n-1\]], excluding
          the implicit start at [0]) — the argument order expected by
          [Bundle.contiguous]. *)
  segments : int;  (** Number of segments, [List.length cuts + 1]. *)
  value : float;  (** Total [seg_value] of the returned partition. *)
  stats : stats;
}

val solve_quadratic :
  n:int -> n_bundles:int -> (int -> int -> float) -> result
(** [solve_quadratic ~n ~n_bundles seg_value]: the exact
    O(n_bundles * n^2) reference DP. Raises [Invalid_argument] when
    [n < 1] or [n_bundles < 1]. *)

val solve :
  ?samples:int -> n:int -> n_bundles:int -> (int -> int -> float) -> result
(** Divide-and-conquer solver with per-layer validation and exact
    fallback; cut-for-cut identical to [solve_quadratic] on
    inverse-Monge layers (and on any layer whose spot-check trips).
    [samples] bounds both the exact column re-solves and the Monge
    quadruple probes per layer (default [16]; [0] disables validation).
    Raises [Invalid_argument] when [n < 1] or [n_bundles < 1]. *)

(** {2 Warm start}

    The streaming re-tier loop (DESIGN.md §12) solves a near-identical
    instance every window: only positions [>= dirty_from] of the
    cost-sorted input change. [solve_with_state] retains the full DP
    matrices; [solve_warm] then recomputes only the dirty column suffix
    of every layer — columns left of [dirty_from] are provably
    untouched, because column [j] depends only on positions [<= j] —
    re-validating each layer with the same spot-check [solve] runs and
    re-solving everything from scratch when a check trips. A warm
    result is therefore always cut-for-cut what the cold solver would
    have returned on the same inputs. *)

type state
(** Retained DP matrices (O(n_bundles * n) floats), mutated in place by
    {!solve_warm}. *)

val state_n : state -> int
val state_n_bundles : state -> int

val solve_with_state :
  ?samples:int ->
  n:int ->
  n_bundles:int ->
  (int -> int -> float) ->
  result * state
(** Exactly {!solve} (same cuts, value and tie-breaks), additionally
    returning the retained state for later warm calls. *)

val solve_warm :
  ?samples:int ->
  ?force_fallback:bool ->
  state ->
  dirty_from:int ->
  (int -> int -> float) ->
  result * [ `Warm | `Cold ]
(** [solve_warm state ~dirty_from seg_value] re-solves with the given
    [seg_value], which must agree with the previous call's on every
    segment contained in positions [< dirty_from]. [dirty_from = n]
    means nothing changed (the retained optimum is replayed with zero
    evaluations). Returns [`Warm] when the suffix recompute passed every
    layer's spot-check, [`Cold] when a check tripped and the state was
    recomputed from scratch (warm-attempt evaluations included in
    [stats]). [force_fallback] skips the warm attempt and takes the
    divergence path directly — the fault-injection drill the streaming
    service's tests and smoke use. Raises [Invalid_argument] when
    [dirty_from] is outside [\[0, n\]]. *)
