(** Fast segment-partition dynamic programming.

    Solves [max over partitions of 0..n-1 into at most n_bundles
    contiguous segments of sum (seg_value lo hi)] ([lo], [hi] inclusive
    positions), the optimal-bundling recurrence of the tier DP
    (DESIGN.md §11).

    All solvers share the quadratic DP's exact semantics: ties inside a
    column break toward the smallest split index, and ties across
    segment counts break toward the fewest segments (strict [>]
    updates). [solve] computes each layer through a three-rung ladder,
    every rung certified by an exact re-solve of sampled columns (value
    and argmax bit-for-bit):

    + region-wise monotone-decision divide and conquer — O(b n log n)
      evaluations when each region's layer matrix is inverse Monge,
      which the closed-form CED/linear/logit segment profits are
      (piecewise, once clamped/underflowed prefix ranges are split out
      via [regions]); probed with seg-only adjacent Monge quadruples;
    + SMAWK over the full layer — total monotonicity is strictly weaker
      than inverse Monge and still gives exact leftmost argmaxes in
      O(n) evaluations per recursion level; probed with sampled
      strict-hypothesis TM implications;
    + the exact quadratic row as a last-resort certified backstop, so a
      structurally hostile [seg_value] degrades to quadratic time, not
      to different cuts.

    The regression suite pins [solve = solve_quadratic] cut-for-cut on
    random markets of every demand spec and on an adversarial corpus of
    hostile layers. *)

type stats = {
  layers : int;  (** DP layers computed, including the base layer. *)
  smawk_layers : int;
      (** Layers that failed the Monge spot-check but were accepted on
          the SMAWK rung ([0] for [solve_quadratic]). *)
  fallback_layers : int;
      (** Layers that exhausted both fast rungs and were recomputed with
          the exact quadratic row ([solve] only; always [0] for
          [solve_quadratic]). *)
  evaluations : int;  (** Total [seg_value] calls, checks included. *)
  regions : int;
      (** Number of piecewise regions the solve ran with ([1] when no
          decomposition was supplied). *)
}

type result = {
  cuts : int list;
      (** Segment start positions (ascending, in [\[1, n-1\]], excluding
          the implicit start at [0]) — the argument order expected by
          [Bundle.contiguous]. *)
  segments : int;  (** Number of segments, [List.length cuts + 1]. *)
  value : float;  (** Total [seg_value] of the returned partition. *)
  stats : stats;
}

val solve_quadratic :
  n:int -> n_bundles:int -> (int -> int -> float) -> result
(** [solve_quadratic ~n ~n_bundles seg_value]: the exact
    O(n_bundles * n^2) reference DP. Raises [Invalid_argument] when
    [n < 1] or [n_bundles < 1]. *)

val solve :
  ?samples:int ->
  ?regions:int array ->
  n:int ->
  n_bundles:int ->
  (int -> int -> float) ->
  result
(** Ladder solver (region-wise D&C, then SMAWK, then exact fallback);
    cut-for-cut identical to [solve_quadratic] on every input whose
    hostile structure the spot-checks detect — and the checks fail
    toward the backstop, NaN included. [samples] bounds the exact column
    re-solves and the Monge/TM probes per layer (default [16]; [0]
    disables validation and accepts the D&C rung outright). [regions]
    lists piecewise-region start positions, strictly increasing from
    [0] within [\[0, n)] (default [[|0|]]): the D&C re-anchors its
    candidate range at every region start, so clamped or underflowed
    [seg_value] branches only need the Monge property locally — see
    [Strategy.dp_inputs], which derives the logit decomposition. Raises
    [Invalid_argument] on malformed [n], [n_bundles] or [regions]. *)

(** {2 Warm start}

    The streaming re-tier loop (DESIGN.md §12) solves a near-identical
    instance every window: only positions [>= dirty_from] of the
    cost-sorted input change. [solve_with_state] retains the full DP
    matrices; [solve_warm] then recomputes only the dirty column suffix
    of every layer — columns left of [dirty_from] are provably
    untouched, because column [j] depends only on positions [<= j] —
    re-validating each layer with the same spot-check [solve] runs and
    re-solving everything from scratch (through the full ladder) when a
    check trips. A warm result is therefore always cut-for-cut what the
    cold solver would have returned on the same inputs. *)

type state
(** Retained DP matrices (O(n_bundles * n) floats), mutated in place by
    {!solve_warm}. *)

val state_n : state -> int
val state_n_bundles : state -> int

val solve_with_state :
  ?samples:int ->
  ?regions:int array ->
  n:int ->
  n_bundles:int ->
  (int -> int -> float) ->
  result * state
(** Exactly {!solve} (same cuts, value and tie-breaks), additionally
    returning the retained state for later warm calls. The state
    remembers [regions] until a later {!solve_warm} overrides them. *)

val solve_warm :
  ?samples:int ->
  ?regions:int array ->
  ?force_fallback:bool ->
  state ->
  dirty_from:int ->
  (int -> int -> float) ->
  result * [ `Warm | `Cold ]
(** [solve_warm state ~dirty_from seg_value] re-solves with the given
    [seg_value], which must agree with the previous call's on every
    segment contained in positions [< dirty_from]. [dirty_from = n]
    means nothing changed (the retained optimum is replayed with zero
    evaluations). [regions], when given, replaces the state's retained
    decomposition (demand changes can move clamp boundaries between
    windows). Returns [`Warm] when the suffix recompute passed every
    layer's spot-check, [`Cold] when a check tripped and the state was
    recomputed from scratch through the ladder (warm-attempt evaluations
    included in [stats]). [force_fallback] skips the warm attempt and
    takes the divergence path directly — the fault-injection drill the
    streaming service's tests and smoke use. Raises [Invalid_argument]
    when [dirty_from] is outside [\[0, n\]] or [regions] is malformed. *)

val solve_structural :
  ?samples:int ->
  ?regions:int array ->
  ?force_fallback:bool ->
  state ->
  n:int ->
  dirty_from:int ->
  (int -> int -> float) ->
  result * [ `Warm | `Cold ]
(** Structural warm start: the instance {e size} changed (flow arrivals
    and departures in the cost-ordered input), and positions
    [< dirty_from] of the new instance are bitwise-identical — as an
    instance, [seg_value] included — to the same positions of the
    retained one. The retained rows are remapped through that index
    injection (reallocated at width [n], clean prefix blitted) and only
    columns [>= dirty_from] are recomputed, with the same per-layer
    spot-checks as {!solve_warm}; any trip falls back to a full cold
    fill. [dirty_from = n < old n] is a pure tail truncation and
    replays with zero evaluations. When [n] equals the retained size
    this is exactly {!solve_warm}. [regions] should be passed whenever
    the instance changed (decomposition boundaries move); if omitted on
    a resize, the retained starts are clipped to [< n]. Raises
    [Invalid_argument] when [n < 1] or [dirty_from] is outside
    [\[0, min old_n n\]]. *)

val verify_columns : ?samples:int -> state -> (int -> int -> float) -> bool
(** [verify_columns st seg_value] re-solves up to [samples] (default
    [64]) deterministically drawn columns of every retained layer with
    exact full-range scans and checks them — value and argmax — against
    the state bit-for-bit (layer 0 against [seg_value 0 j] directly).
    The bench uses this as the exact spot-check on cells too large to
    run the full quadratic reference. [seg_value] must be the function
    the state was last solved with. *)
