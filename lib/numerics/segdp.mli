(** Fast segment-partition dynamic programming.

    Solves [max over partitions of 0..n-1 into at most n_bundles
    contiguous segments of sum (seg_value lo hi)] ([lo], [hi] inclusive
    positions), the optimal-bundling recurrence of the tier DP
    (DESIGN.md §11).

    Both solvers share the quadratic DP's exact semantics: ties inside a
    column break toward the smallest split index, and ties across
    segment counts break toward the fewest segments (strict [>]
    updates). [solve] computes each layer by monotone-decision divide
    and conquer — O(b n log n) evaluations when the per-layer matrices
    are inverse Monge, which the closed-form CED/linear/logit segment
    profits are in practice — then spot-checks the layer (exact
    re-solve of sampled columns plus sampled adjacent Monge quadruples)
    and recomputes it with exact O(n^2) scans when the check fails, so a
    structurally hostile [seg_value] degrades to quadratic time, not to
    different cuts. The regression suite pins [solve = solve_quadratic]
    cut-for-cut on random markets of every demand spec. *)

type stats = {
  layers : int;  (** DP layers computed, including the base layer. *)
  fallback_layers : int;
      (** Layers whose spot-check failed and that were recomputed with
          the exact quadratic row ([solve] only; always [0] for
          [solve_quadratic]). *)
  evaluations : int;  (** Total [seg_value] calls, checks included. *)
}

type result = {
  cuts : int list;
      (** Segment start positions (ascending, in [\[1, n-1\]], excluding
          the implicit start at [0]) — the argument order expected by
          [Bundle.contiguous]. *)
  segments : int;  (** Number of segments, [List.length cuts + 1]. *)
  value : float;  (** Total [seg_value] of the returned partition. *)
  stats : stats;
}

val solve_quadratic :
  n:int -> n_bundles:int -> (int -> int -> float) -> result
(** [solve_quadratic ~n ~n_bundles seg_value]: the exact
    O(n_bundles * n^2) reference DP. Raises [Invalid_argument] when
    [n < 1] or [n_bundles < 1]. *)

val solve :
  ?samples:int -> n:int -> n_bundles:int -> (int -> int -> float) -> result
(** Divide-and-conquer solver with per-layer validation and exact
    fallback; cut-for-cut identical to [solve_quadratic] on
    inverse-Monge layers (and on any layer whose spot-check trips).
    [samples] bounds both the exact column re-solves and the Monge
    quadruple probes per layer (default [16]; [0] disables validation).
    Raises [Invalid_argument] when [n < 1] or [n_bundles < 1]. *)
