let sum xs =
  (* Kahan compensation: dispersion statistics feed model fitting, so we
     keep the sums exact to the last few ulps even for millions of
     records. *)
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let sum_init n f =
  (* Same Kahan recurrence as [sum], without materializing the array:
     bit-identical to [sum (Array.init n f)] for a pure [f]. *)
  let total = ref 0. and comp = ref 0. in
  for i = 0 to n - 1 do
    let x = f i in
    let y = x -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let m = mean xs in
  let deviations = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
  sum deviations /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let cv xs =
  let m = mean xs in
  if m = 0. then invalid_arg "Stats.cv: zero mean";
  stddev xs /. m

let weighted_mean ~values ~weights =
  if Array.length values <> Array.length weights then
    invalid_arg "Stats.weighted_mean: length mismatch";
  require_nonempty "Stats.weighted_mean" values;
  let total_weight = sum weights in
  if total_weight <= 0. then
    invalid_arg "Stats.weighted_mean: non-positive total weight";
  let weighted = Array.map2 ( *. ) values weights in
  sum weighted /. total_weight

let min xs =
  require_nonempty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  require_nonempty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let quantile xs q =
  require_nonempty "Stats.quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize xs =
  require_nonempty "Stats.summarize" xs;
  let m = mean xs in
  let sd = stddev xs in
  {
    n = Array.length xs;
    mean = m;
    stddev = sd;
    cv = (if m = 0. then Float.nan else sd /. m);
    min = min xs;
    max = max xs;
    p50 = quantile xs 0.5;
    p90 = quantile xs 0.9;
    p99 = quantile xs 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g cv=%.3f min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    s.n s.mean s.stddev s.cv s.min s.p50 s.p90 s.p99 s.max

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  require_nonempty "Stats.histogram" xs;
  let lo = min xs and hi = max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. width) in
      (b_lo, b_lo +. width, c))
    counts

let logsumexp xs =
  if Array.length xs = 0 then Float.neg_infinity
  else
    let m = max xs in
    if m = Float.neg_infinity then Float.neg_infinity
    else
      let shifted = Array.map (fun x -> exp (x -. m)) xs in
      m +. log (sum shifted)

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least two points";
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    cov := !cov +. (dx *. dy);
    vx := !vx +. (dx *. dx);
    vy := !vy +. (dy *. dy)
  done;
  if !vx = 0. || !vy = 0. then invalid_arg "Stats.pearson: degenerate input";
  !cov /. sqrt (!vx *. !vy)
