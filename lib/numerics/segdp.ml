(* Fast segment-partition DP (DESIGN.md §11).

   Layer b of the DP is a max-plus matrix product against the previous
   layer: A_b[i][j] = dp_{b-1}(i-1) + seg_value i j. When A_b is inverse
   Monge (the CED closed-form segment profit is; linear/logit are in
   practice), the leftmost column argmax is nondecreasing in j, so a
   divide-and-conquer recursion computes the whole layer in O(n log n)
   evaluations instead of O(n^2). Each layer is then spot-checked (exact
   re-solve of sampled columns + sampled adjacent Monge quadruples); a
   failed check recomputes the layer with exact full-range scans, so a
   structurally hostile seg_value degrades to the quadratic DP rather
   than to wrong cuts. *)

type stats = { layers : int; fallback_layers : int; evaluations : int }

type result = {
  cuts : int list;
  segments : int;
  value : float;
  stats : stats;
}

let validate ~n ~n_bundles =
  if n < 1 then invalid_arg "Segdp: n must be positive";
  if n_bundles < 1 then invalid_arg "Segdp: n_bundles must be positive"

(* Exact best split point for column [j] of layer [b]: scan the full
   candidate range ascending with a strict [>] update, so the smallest
   argmax wins — the quadratic DP's tie-break, which the goldens pin. *)
let exact_best ~prev ~seg ~b j =
  let best = ref Float.neg_infinity and best_i = ref 0 in
  for i = b to j do
    let candidate = prev.(i - 1) +. seg i j in
    if candidate > !best then begin
      best := candidate;
      best_i := i
    end
  done;
  (!best, !best_i)

let exact_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  for j = b to n - 1 do
    let best, best_i = exact_best ~prev ~seg ~b j in
    cur.(j) <- best;
    choice_row.(j) <- best_i
  done

(* Monotone-decision divide and conquer: solve the middle column over
   the inherited candidate range, then recurse with the range split at
   the argmax. Identical to the exact layer whenever the layer matrix is
   inverse Monge (leftmost argmaxes are then nondecreasing in j, ties
   included). *)
let dandc_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  let rec go jlo jhi ilo ihi =
    if jlo <= jhi then begin
      let jmid = jlo + ((jhi - jlo) / 2) in
      let hi = Stdlib.min jmid ihi in
      let best = ref Float.neg_infinity and best_i = ref 0 in
      for i = ilo to hi do
        let candidate = prev.(i - 1) +. seg i jmid in
        if candidate > !best then begin
          best := candidate;
          best_i := i
        end
      done;
      cur.(jmid) <- !best;
      choice_row.(jmid) <- !best_i;
      (* [!best_i = 0] only when every candidate was NaN; clamp so the
         recursion stays well-formed (validation then forces the exact
         fallback). *)
      let split = Stdlib.max !best_i ilo in
      go jlo (jmid - 1) ilo split;
      go (jmid + 1) jhi split ihi
    end
  in
  go b (n - 1) b (n - 1)

(* xorshift64: cheap deterministic sampling, independent of the global
   Random state (lib code must stay reproducible; DESIGN.md §10 D003). *)
let sample_int state bound =
  let s = !state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  state := s;
  Int64.to_int (Int64.rem (Int64.logand s Int64.max_int) (Int64.of_int bound))

(* Cheap runtime certificate for one layer: exact re-solve of up to
   [samples] evenly spaced columns (value and argmax must match
   bit-for-bit) plus [samples] sampled adjacent Monge quadruples.
   Sound in the fallback direction: any detected oddity (including NaN)
   rejects the layer. *)
let layer_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples =
  let ok = ref true in
  let cols = Stdlib.min samples (n - b) in
  let k = ref 0 in
  while !ok && !k < cols do
    let j =
      if cols = 1 then n - 1 else b + (!k * (n - 1 - b) / (cols - 1))
    in
    let best, best_i = exact_best ~prev ~seg ~b j in
    if (not (Float.equal cur.(j) best)) || choice_row.(j) <> best_i then
      ok := false;
    incr k
  done;
  if !ok && n - b >= 3 then begin
    let state = ref (Int64.of_int (0x9E3779B9 + (b * 0x85EBCA6B))) in
    let s = ref 0 in
    while !ok && !s < samples do
      let i = b + sample_int state (n - 2 - b) in
      let j = i + 1 + sample_int state (n - 2 - i) in
      let a_ij = prev.(i - 1) +. seg i j in
      let a_i1j1 = prev.(i) +. seg (i + 1) (j + 1) in
      let a_i1j = prev.(i) +. seg (i + 1) j in
      let a_ij1 = prev.(i - 1) +. seg i (j + 1) in
      if not (a_ij +. a_i1j1 >= a_i1j +. a_ij1) then ok := false;
      incr s
    done
  end;
  !ok

let traceback ~choice ~best_b ~n =
  let rec go b j acc =
    if b = 0 then acc
    else
      let i = choice.(b).(j) in
      go (b - 1) (i - 1) (i :: acc)
  in
  go best_b (n - 1) []

let finish ~choice ~last ~b_max ~n ~stats =
  (* Smallest argmax over achievable segment counts — the quadratic DP's
     best_b selection. *)
  let best_b = ref 0 in
  for b = 1 to b_max - 1 do
    if last.(b) > last.(!best_b) then best_b := b
  done;
  {
    cuts = traceback ~choice ~best_b:!best_b ~n;
    segments = !best_b + 1;
    value = last.(!best_b);
    stats;
  }

let run ~n ~n_bundles ~layer seg_value =
  validate ~n ~n_bundles;
  let b_max = Stdlib.min n_bundles n in
  let evals = ref 0 in
  let seg i j =
    incr evals;
    seg_value i j
  in
  let prev = Array.make n Float.neg_infinity in
  let cur = Array.make n Float.neg_infinity in
  let choice = Array.make_matrix b_max n 0 in
  let last = Array.make b_max Float.neg_infinity in
  for j = 0 to n - 1 do
    prev.(j) <- seg 0 j
  done;
  last.(0) <- prev.(n - 1);
  let fallbacks = ref 0 in
  for b = 1 to b_max - 1 do
    Array.fill cur 0 n Float.neg_infinity;
    let choice_row = choice.(b) in
    if not (layer ~prev ~cur ~choice_row ~seg ~b) then begin
      incr fallbacks;
      Array.fill cur 0 n Float.neg_infinity;
      Array.fill choice_row 0 n 0;
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n
    end;
    last.(b) <- cur.(n - 1);
    Array.blit cur 0 prev 0 n
  done;
  finish ~choice ~last ~b_max ~n
    ~stats:{ layers = b_max; fallback_layers = !fallbacks; evaluations = !evals }

let solve_quadratic ~n ~n_bundles seg_value =
  run ~n ~n_bundles seg_value ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n;
      true)

let solve ?(samples = 16) ~n ~n_bundles seg_value =
  run ~n ~n_bundles seg_value ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      dandc_layer ~prev ~cur ~choice_row ~seg ~b ~n;
      layer_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples)
