(* Fast segment-partition DP (DESIGN.md §11).

   Layer b of the DP is a max-plus matrix product against the previous
   layer: A_b[i][j] = dp_{b-1}(i-1) + seg_value i j. When A_b is inverse
   Monge (the CED closed-form segment profit is; linear/logit are in
   practice), the leftmost column argmax is nondecreasing in j, so a
   divide-and-conquer recursion computes the whole layer in O(n log n)
   evaluations instead of O(n^2). Each layer is then spot-checked (exact
   re-solve of sampled columns + sampled adjacent Monge quadruples); a
   failed check recomputes the layer with exact full-range scans, so a
   structurally hostile seg_value degrades to the quadratic DP rather
   than to wrong cuts. *)

type stats = { layers : int; fallback_layers : int; evaluations : int }

type result = {
  cuts : int list;
  segments : int;
  value : float;
  stats : stats;
}

let validate ~n ~n_bundles =
  if n < 1 then invalid_arg "Segdp: n must be positive";
  if n_bundles < 1 then invalid_arg "Segdp: n_bundles must be positive"

(* Exact best split point for column [j] of layer [b]: scan the full
   candidate range ascending with a strict [>] update, so the smallest
   argmax wins — the quadratic DP's tie-break, which the goldens pin. *)
let exact_best ~prev ~seg ~b j =
  let best = ref Float.neg_infinity and best_i = ref 0 in
  for i = b to j do
    let candidate = prev.(i - 1) +. seg i j in
    if candidate > !best then begin
      best := candidate;
      best_i := i
    end
  done;
  (!best, !best_i)

let exact_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  for j = b to n - 1 do
    let best, best_i = exact_best ~prev ~seg ~b j in
    cur.(j) <- best;
    choice_row.(j) <- best_i
  done

(* Monotone-decision divide and conquer over a column range: solve the
   middle column over the inherited candidate range, then recurse with
   the range split at the argmax. Identical to the exact layer whenever
   the layer matrix is inverse Monge (leftmost argmaxes are then
   nondecreasing in j, ties included). The range form is what the
   warm-start entry re-runs over the dirty column suffix only. *)
let dandc_range ~prev ~cur ~choice_row ~seg ~jlo ~jhi ~ilo ~ihi =
  let rec go jlo jhi ilo ihi =
    if jlo <= jhi then begin
      let jmid = jlo + ((jhi - jlo) / 2) in
      let hi = Stdlib.min jmid ihi in
      let best = ref Float.neg_infinity and best_i = ref 0 in
      for i = ilo to hi do
        let candidate = prev.(i - 1) +. seg i jmid in
        if candidate > !best then begin
          best := candidate;
          best_i := i
        end
      done;
      cur.(jmid) <- !best;
      choice_row.(jmid) <- !best_i;
      (* [!best_i = 0] only when every candidate was NaN; clamp so the
         recursion stays well-formed (validation then forces the exact
         fallback). *)
      let split = Stdlib.max !best_i ilo in
      go jlo (jmid - 1) ilo split;
      go (jmid + 1) jhi split ihi
    end
  in
  go jlo jhi ilo ihi

let dandc_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  dandc_range ~prev ~cur ~choice_row ~seg ~jlo:b ~jhi:(n - 1) ~ilo:b
    ~ihi:(n - 1)

(* xorshift64: cheap deterministic sampling, independent of the global
   Random state (lib code must stay reproducible; DESIGN.md §10 D003). *)
let sample_int state bound =
  let s = !state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  state := s;
  Int64.to_int (Int64.rem (Int64.logand s Int64.max_int) (Int64.of_int bound))

(* Cheap runtime certificate for one layer: exact re-solve of up to
   [samples] evenly spaced columns (value and argmax must match
   bit-for-bit) plus [samples] sampled adjacent Monge quadruples.
   Sound in the fallback direction: any detected oddity (including NaN)
   rejects the layer. *)
let layer_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples =
  let ok = ref true in
  let cols = Stdlib.min samples (n - b) in
  let k = ref 0 in
  while !ok && !k < cols do
    let j =
      if cols = 1 then n - 1 else b + (!k * (n - 1 - b) / (cols - 1))
    in
    let best, best_i = exact_best ~prev ~seg ~b j in
    if (not (Float.equal cur.(j) best)) || choice_row.(j) <> best_i then
      ok := false;
    incr k
  done;
  if !ok && n - b >= 3 then begin
    let state = ref (Int64.of_int (0x9E3779B9 + (b * 0x85EBCA6B))) in
    let s = ref 0 in
    while !ok && !s < samples do
      let i = b + sample_int state (n - 2 - b) in
      let j = i + 1 + sample_int state (n - 2 - i) in
      let a_ij = prev.(i - 1) +. seg i j in
      let a_i1j1 = prev.(i) +. seg (i + 1) (j + 1) in
      let a_i1j = prev.(i) +. seg (i + 1) j in
      let a_ij1 = prev.(i - 1) +. seg i (j + 1) in
      if not (a_ij +. a_i1j1 >= a_i1j +. a_ij1) then ok := false;
      incr s
    done
  end;
  !ok

let traceback ~choice ~best_b ~n =
  let rec go b j acc =
    if b = 0 then acc
    else
      let i = choice.(b).(j) in
      go (b - 1) (i - 1) (i :: acc)
  in
  go best_b (n - 1) []

let finish ~choice ~last ~b_max ~n ~stats =
  (* Smallest argmax over achievable segment counts — the quadratic DP's
     best_b selection. *)
  let best_b = ref 0 in
  for b = 1 to b_max - 1 do
    if last.(b) > last.(!best_b) then best_b := b
  done;
  {
    cuts = traceback ~choice ~best_b:!best_b ~n;
    segments = !best_b + 1;
    value = last.(!best_b);
    stats;
  }

let run ~n ~n_bundles ~layer seg_value =
  validate ~n ~n_bundles;
  let b_max = Stdlib.min n_bundles n in
  let evals = ref 0 in
  let seg i j =
    incr evals;
    seg_value i j
  in
  let prev = Array.make n Float.neg_infinity in
  let cur = Array.make n Float.neg_infinity in
  let choice = Array.make_matrix b_max n 0 in
  let last = Array.make b_max Float.neg_infinity in
  for j = 0 to n - 1 do
    prev.(j) <- seg 0 j
  done;
  last.(0) <- prev.(n - 1);
  let fallbacks = ref 0 in
  for b = 1 to b_max - 1 do
    Array.fill cur 0 n Float.neg_infinity;
    let choice_row = choice.(b) in
    if not (layer ~prev ~cur ~choice_row ~seg ~b) then begin
      incr fallbacks;
      Array.fill cur 0 n Float.neg_infinity;
      Array.fill choice_row 0 n 0;
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n
    end;
    last.(b) <- cur.(n - 1);
    Array.blit cur 0 prev 0 n
  done;
  finish ~choice ~last ~b_max ~n
    ~stats:{ layers = b_max; fallback_layers = !fallbacks; evaluations = !evals }

let solve_quadratic ~n ~n_bundles seg_value =
  run ~n ~n_bundles seg_value ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n;
      true)

let solve ?(samples = 16) ~n ~n_bundles seg_value =
  run ~n ~n_bundles seg_value ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      dandc_layer ~prev ~cur ~choice_row ~seg ~b ~n;
      layer_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples)

(* --- warm start ----------------------------------------------------------- *)

(* The streaming re-tier loop solves an almost-identical instance every
   window: only a suffix of the cost-sorted positions changes. Retaining
   the full DP matrices lets the next solve recompute exactly the
   columns [dirty_from ..] of every layer — column j of any layer
   depends only on [prev] at positions [< j] and on [seg i j] with
   [i <= j], so every column left of the first dirty position is
   untouched by construction, not by assumption. The recomputed suffix
   runs the same divide-and-conquer with the candidate range inherited
   from the last clean column's stored argmax, and every layer is
   re-validated by the same spot-check [solve] uses; a failed check
   abandons the warm attempt and re-solves from scratch into the same
   state, so a warm result can never silently diverge from a cold one. *)

type state = {
  st_n : int;
  st_n_bundles : int;
  st_b_max : int;
  st_dp : float array array;  (* b_max rows of n layer values *)
  st_choice : int array array;  (* b_max rows; row 0 unused *)
  st_last : float array;  (* dp value of the full prefix per layer *)
}

(* Fill every layer of [st] from scratch — the same computations as
   [solve] (divide-and-conquer, spot-check, exact fallback), just
   written into retained rows instead of a rolling pair. *)
let fill_state ~samples ~fallbacks st seg =
  let n = st.st_n and b_max = st.st_b_max in
  let dp = st.st_dp and choice = st.st_choice and last = st.st_last in
  for j = 0 to n - 1 do
    dp.(0).(j) <- seg 0 j
  done;
  last.(0) <- dp.(0).(n - 1);
  for b = 1 to b_max - 1 do
    let prev = dp.(b - 1) and cur = dp.(b) in
    let choice_row = choice.(b) in
    Array.fill cur 0 n Float.neg_infinity;
    dandc_layer ~prev ~cur ~choice_row ~seg ~b ~n;
    if not (layer_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples) then begin
      incr fallbacks;
      Array.fill cur 0 n Float.neg_infinity;
      Array.fill choice_row 0 n 0;
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n
    end;
    last.(b) <- cur.(n - 1)
  done

let solve_with_state ?(samples = 16) ~n ~n_bundles seg_value =
  validate ~n ~n_bundles;
  let b_max = Stdlib.min n_bundles n in
  let st =
    {
      st_n = n;
      st_n_bundles = n_bundles;
      st_b_max = b_max;
      st_dp = Array.make_matrix b_max n Float.neg_infinity;
      st_choice = Array.make_matrix b_max n 0;
      st_last = Array.make b_max Float.neg_infinity;
    }
  in
  let evals = ref 0 and fallbacks = ref 0 in
  let seg i j =
    incr evals;
    seg_value i j
  in
  fill_state ~samples ~fallbacks st seg;
  ( finish ~choice:st.st_choice ~last:st.st_last ~b_max ~n
      ~stats:
        { layers = b_max; fallback_layers = !fallbacks; evaluations = !evals },
    st )

let state_n st = st.st_n
let state_n_bundles st = st.st_n_bundles

let solve_warm ?(samples = 16) ?(force_fallback = false) st ~dirty_from
    seg_value =
  let n = st.st_n and b_max = st.st_b_max in
  if dirty_from < 0 || dirty_from > n then
    invalid_arg "Segdp.solve_warm: dirty_from out of [0, n]";
  if dirty_from = n && not force_fallback then
    (* Nothing changed: replay the traceback from the retained state. *)
    ( finish ~choice:st.st_choice ~last:st.st_last ~b_max ~n
        ~stats:{ layers = 0; fallback_layers = 0; evaluations = 0 },
      `Warm )
  else begin
    let evals = ref 0 in
    let seg i j =
      incr evals;
      seg_value i j
    in
    let d = Stdlib.min dirty_from (n - 1) in
    let dp = st.st_dp and choice = st.st_choice and last = st.st_last in
    let ok = ref (not force_fallback) in
    if !ok then begin
      for j = d to n - 1 do
        dp.(0).(j) <- seg 0 j
      done;
      last.(0) <- dp.(0).(n - 1);
      let b = ref 1 in
      while !ok && !b < b_max do
        let b' = !b in
        let prev = dp.(b' - 1) and cur = dp.(b') in
        let choice_row = choice.(b') in
        let jlo = Stdlib.max b' d in
        (* The last clean column's stored argmax bounds every dirty
           column's argmax from below (monotone decisions — the same
           property the divide and conquer itself rides on; the
           spot-check below still guards it). *)
        let ilo =
          if jlo - 1 >= b' then Stdlib.max choice_row.(jlo - 1) b' else b'
        in
        dandc_range ~prev ~cur ~choice_row ~seg ~jlo ~jhi:(n - 1) ~ilo
          ~ihi:(n - 1);
        ok := layer_valid ~prev ~cur ~choice_row ~seg ~b:b' ~n ~samples;
        last.(b') <- cur.(n - 1);
        incr b
      done
    end;
    if !ok then
      ( finish ~choice ~last ~b_max ~n
          ~stats:{ layers = b_max; fallback_layers = 0; evaluations = !evals },
        `Warm )
    else begin
      (* Divergence (or a forced drill): recompute every layer from
         scratch into the same state. The warm attempt's evaluations
         stay in the bill — they were really spent. *)
      let fallbacks = ref 0 in
      fill_state ~samples ~fallbacks st seg;
      ( finish ~choice ~last ~b_max ~n
          ~stats:
            {
              layers = b_max;
              fallback_layers = !fallbacks;
              evaluations = !evals;
            },
        `Cold )
    end
  end
