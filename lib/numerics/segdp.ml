(* Fast segment-partition DP (DESIGN.md §11).

   Layer b of the DP is a max-plus matrix product against the previous
   layer: A_b[i][j] = dp_{b-1}(i-1) + seg_value i j. When A_b is inverse
   Monge (the CED closed-form segment profit is; linear/logit are in
   practice), the leftmost column argmax is nondecreasing in j, so a
   divide-and-conquer recursion computes the whole layer in O(n log n)
   evaluations instead of O(n^2).

   Each layer climbs a three-rung ladder, each rung certified by the
   same runtime spot-check (exact re-solve of sampled columns, value and
   argmax bit-for-bit):

   1. Region-wise divide and conquer. The caller may pass [regions] —
      start positions where seg_value changes branch structure (clamped
      prefix sums, underflowed exponentials); the D&C re-anchors its
      candidate range at every region start, so each region only needs
      the Monge property locally. Probed with seg-only adjacent Monge
      quadruples: the dp_{b-1} terms cancel exactly in the quadruple, so
      including them (as the pre-ladder implementation did) only
      measured floating-point cancellation against numbers many orders
      of magnitude larger than the segment deltas — the false positive
      that used to push every big logit layer onto the quadratic row.

   2. SMAWK over the full layer. Total monotonicity is strictly weaker
      than inverse Monge and is exactly what monotone argmaxes need;
      probed with sampled strict-hypothesis TM implications on the
      rounded candidate matrix (what SMAWK actually compares).

   3. Exact quadratic row — the certified backstop. A structurally
      hostile seg_value degrades to the quadratic DP rather than to
      wrong cuts. *)

type stats = {
  layers : int;
  smawk_layers : int;
  fallback_layers : int;
  evaluations : int;
  regions : int;
}

type result = {
  cuts : int list;
  segments : int;
  value : float;
  stats : stats;
}

(* Bounds checks on the hot inner loops are pure overhead once the index
   arithmetic is pinned by the validation suite; flip to [true] for a
   bounds-checked debug build (the branch is a compile-time constant, so
   flambda-less builds still drop it). *)
let checked_gets = false

let[@inline] fget (a : float array) i =
  if checked_gets then Array.get a i else Array.unsafe_get a i

let[@inline] iget (a : int array) i =
  if checked_gets then Array.get a i else Array.unsafe_get a i

let no_regions = [| 0 |]

let validate ~n ~n_bundles =
  if n < 1 then invalid_arg "Segdp: n must be positive";
  if n_bundles < 1 then invalid_arg "Segdp: n_bundles must be positive"

let check_regions ~n regions =
  let k = Array.length regions in
  if k = 0 || regions.(0) <> 0 then
    invalid_arg "Segdp: regions must start with 0";
  for r = 1 to k - 1 do
    if regions.(r) <= regions.(r - 1) || regions.(r) >= n then
      invalid_arg "Segdp: regions must be strictly increasing within [0, n)"
  done

(* Greatest [r] with [regions.(r) <= j]. *)
let region_of regions j =
  let lo = ref 0 and hi = ref (Array.length regions - 1) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo + 1) / 2) in
    if regions.(mid) <= j then lo := mid else hi := mid - 1
  done;
  !lo

(* Exact best split point for column [j] of layer [b]: scan the full
   candidate range ascending with a strict [>] update, so the smallest
   argmax wins — the quadratic DP's tie-break, which the goldens pin. *)
let exact_best ~prev ~seg ~b j =
  let best = ref Float.neg_infinity and best_i = ref 0 in
  for i = b to j do
    let candidate = fget prev (i - 1) +. seg i j in
    if candidate > !best then begin
      best := candidate;
      best_i := i
    end
  done;
  (!best, !best_i)

let exact_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  for j = b to n - 1 do
    let best, best_i = exact_best ~prev ~seg ~b j in
    cur.(j) <- best;
    choice_row.(j) <- best_i
  done

(* Monotone-decision divide and conquer over a column range: solve the
   middle column over the inherited candidate range, then recurse with
   the range split at the argmax. Identical to the exact layer whenever
   the layer matrix is inverse Monge over the range (leftmost argmaxes
   are then nondecreasing in j, ties included). *)
let dandc_range ~prev ~cur ~choice_row ~seg ~jlo ~jhi ~ilo ~ihi =
  let rec go jlo jhi ilo ihi =
    if jlo <= jhi then begin
      let jmid = jlo + ((jhi - jlo) / 2) in
      let hi = Stdlib.min jmid ihi in
      let best = ref Float.neg_infinity and best_i = ref 0 in
      for i = ilo to hi do
        let candidate = fget prev (i - 1) +. seg i jmid in
        if candidate > !best then begin
          best := candidate;
          best_i := i
        end
      done;
      cur.(jmid) <- !best;
      choice_row.(jmid) <- !best_i;
      (* [!best_i = 0] only when every candidate was NaN; clamp so the
         recursion stays well-formed (validation then forces the next
         rung). *)
      let split = Stdlib.max !best_i ilo in
      go jlo (jmid - 1) ilo split;
      go (jmid + 1) jhi split ihi
    end
  in
  go jlo jhi ilo ihi

(* Region-wise D&C over columns [max b jlo0 .. n-1]. Each region
   re-anchors the candidate range at [b] — monotone argmaxes are only
   assumed within a region, never across a boundary. When the first
   processed column has an in-region left neighbour (the warm-start
   suffix case), that clean column's stored argmax bounds the suffix
   argmaxes from below. *)
let dandc_regions ~prev ~cur ~choice_row ~seg ~b ~n ~regions ~jlo0 =
  let nreg = Array.length regions in
  let r0 =
    if jlo0 <= 0 then 0 else region_of regions (Stdlib.min jlo0 (n - 1))
  in
  for r = r0 to nreg - 1 do
    let rlo = regions.(r) in
    let rhi = if r + 1 < nreg then regions.(r + 1) - 1 else n - 1 in
    let jlo = Stdlib.max b (Stdlib.max rlo jlo0) in
    if jlo <= rhi then begin
      let ilo =
        if jlo - 1 >= b && jlo - 1 >= rlo then
          Stdlib.max (iget choice_row (jlo - 1)) b
        else b
      in
      dandc_range ~prev ~cur ~choice_row ~seg ~jlo ~jhi:rhi ~ilo ~ihi:rhi
    end
  done

(* SMAWK over the staircase layer matrix: rows are DP columns [j],
   columns are split candidates [i], entries prev.(i-1) + seg i j with
   the invalid triangle i > j padded to -inf (padding that preserves
   total monotonicity whenever the staircase part has it). Computes the
   leftmost row maximum of every row in O(rows + cols) evaluations per
   recursion level; exact precisely when the layer matrix is totally
   monotone — which the caller's spot-check then certifies. *)
let smawk_layer ~prev ~cur ~choice_row ~seg ~b ~n =
  let m j i =
    if i > j then Float.neg_infinity else fget prev (i - 1) +. seg i j
  in
  let rec go rows cols =
    let nr = Array.length rows in
    if nr > 0 then begin
      (* REDUCE: prune to at most [nr] candidates that can still hold
         some row's leftmost argmax. Pops are strict [>], so a tie keeps
         the earlier candidate — the quadratic DP's tie-break. *)
      let cols =
        if Array.length cols <= nr then cols
        else begin
          let stack = Array.make nr 0 in
          let top = ref 0 in
          Array.iter
            (fun c ->
              while
                !top > 0
                && m rows.(!top - 1) c > m rows.(!top - 1) stack.(!top - 1)
              do
                decr top
              done;
              if !top < nr then begin
                stack.(!top) <- c;
                incr top
              end)
            cols;
          Array.sub stack 0 !top
        end
      in
      if nr = 1 then begin
        let j = rows.(0) in
        let best = ref Float.neg_infinity and best_i = ref b in
        Array.iter
          (fun c ->
            let v = m j c in
            if v > !best then begin
              best := v;
              best_i := c
            end)
          cols;
        cur.(j) <- !best;
        choice_row.(j) <- !best_i
      end
      else begin
        let odd = Array.init (nr / 2) (fun k -> rows.((2 * k) + 1)) in
        go odd cols;
        (* Interpolate the even rows: row rows.(2k)'s leftmost argmax
           lies between its solved neighbours' argmaxes, so one pointer
           sweeps [cols] across all even rows. *)
        let ncols = Array.length cols in
        let p = ref 0 in
        let k = ref 0 in
        while !k < nr do
          let j = rows.(!k) in
          let stop =
            if !k + 1 < nr then choice_row.(rows.(!k + 1))
            else cols.(ncols - 1)
          in
          let best = ref Float.neg_infinity and best_i = ref b in
          let q = ref !p in
          let scanning = ref true in
          while !scanning && !q < ncols do
            let c = cols.(!q) in
            if c > stop then scanning := false
            else begin
              let v = m j c in
              if v > !best then begin
                best := v;
                best_i := c
              end;
              if c = stop then scanning := false else incr q
            end
          done;
          cur.(j) <- !best;
          choice_row.(j) <- !best_i;
          while !p + 1 < ncols && cols.(!p) < stop do
            incr p
          done;
          k := !k + 2
        done
      end
    end
  in
  if n - 1 >= b then begin
    let idx = Array.init (n - b) (fun k -> b + k) in
    go idx idx
  end

(* xorshift64: cheap deterministic sampling, independent of the global
   Random state (lib code must stay reproducible; DESIGN.md §10 D003). *)
let sample_int state bound =
  let s = !state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  state := s;
  Int64.to_int (Int64.rem (Int64.logand s Int64.max_int) (Int64.of_int bound))

(* The certificate shared by every fast rung: exact re-solve of up to
   [samples] evenly spaced columns — value and argmax must match
   bit-for-bit — plus every region-start column (strided down to
   [samples] when the decomposition is finer), because the boundaries
   are exactly where the region-wise D&C re-anchors. *)
let columns_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples ~regions =
  let ok = ref true in
  let check j =
    let best, best_i = exact_best ~prev ~seg ~b j in
    if (not (Float.equal cur.(j) best)) || choice_row.(j) <> best_i then
      ok := false
  in
  let cols = Stdlib.min samples (n - b) in
  let k = ref 0 in
  while !ok && !k < cols do
    let j = if cols = 1 then n - 1 else b + (!k * (n - 1 - b) / (cols - 1)) in
    check j;
    incr k
  done;
  let nreg = Array.length regions in
  if !ok && nreg > 1 && samples > 0 then begin
    let stride = 1 + ((nreg - 1) / samples) in
    let r = ref 1 in
    while !ok && !r < nreg do
      let j = Stdlib.max b regions.(!r) in
      if j < n then check j;
      r := !r + stride
    done
  end;
  !ok

(* Rung-1 probe: [samples] adjacent inverse-Monge quadruples on
   seg_value alone, with the column pair (j, j+1) drawn inside one
   region. The dp_{b-1} terms cancel exactly in the real-arithmetic
   quadruple, so they are omitted rather than letting their
   floating-point cancellation (|dp| can exceed |seg delta| by 1e13)
   manufacture spurious violations. Sound in the fallback direction:
   any detected oddity, NaN included, rejects the rung. *)
let monge_valid ~seg ~b ~n ~samples ~regions =
  if n - b < 3 then true
  else begin
    let ok = ref true in
    let state = ref (Int64.of_int (0x9E3779B9 + (b * 0x85EBCA6B))) in
    let s = ref 0 in
    let one_region = Array.length regions = 1 in
    while !ok && !s < samples do
      let i = b + sample_int state (n - 2 - b) in
      let j = i + 1 + sample_int state (n - 2 - i) in
      if one_region || region_of regions j = region_of regions (j + 1) then begin
        let a_ij = seg i j and a_i1j1 = seg (i + 1) (j + 1) in
        let a_i1j = seg (i + 1) j and a_ij1 = seg i (j + 1) in
        if not (a_ij +. a_i1j1 >= a_i1j +. a_ij1) then ok := false
      end;
      incr s
    done;
    !ok
  end

(* Rung-2 probe: [samples] strict-hypothesis total-monotonicity
   implications on the rounded candidate matrix (dp terms included —
   these are exactly the comparisons SMAWK performs, so near-ties make
   the hypothesis false and the draw vacuous instead of noisy). *)
let tm_valid ~prev ~seg ~b ~n ~samples =
  if n - b < 3 then true
  else begin
    let ok = ref true in
    let state = ref (Int64.of_int (0xC2B2AE35 + (b * 0x27D4EB2F))) in
    let s = ref 0 in
    let cand i j = fget prev (i - 1) +. seg i j in
    while !ok && !s < samples do
      let i = b + sample_int state (n - 2 - b) in
      let i' = i + 1 + sample_int state (n - 2 - i) in
      let j = i' + sample_int state (n - 1 - i') in
      let j' = j + 1 + sample_int state (n - 1 - j) in
      let a = cand i j
      and b' = cand i' j
      and c = cand i j'
      and d = cand i' j' in
      if Float.is_nan a || Float.is_nan b' || Float.is_nan c || Float.is_nan d
      then ok := false
      else if a < b' && not (c < d) then ok := false;
      incr s
    done;
    !ok
  end

(* One layer through the ladder. [samples = 0] disables validation and
   accepts the region-wise D&C outright (documented contract). *)
let ladder_layer ~samples ~regions ~smawk_count ~fallback_count ~prev ~cur
    ~choice_row ~seg ~b ~n =
  dandc_regions ~prev ~cur ~choice_row ~seg ~b ~n ~regions ~jlo0:0;
  let dandc_ok =
    samples = 0
    || (monge_valid ~seg ~b ~n ~samples ~regions
       && columns_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples ~regions)
  in
  if not dandc_ok then begin
    Array.fill cur 0 n Float.neg_infinity;
    Array.fill choice_row 0 n 0;
    smawk_layer ~prev ~cur ~choice_row ~seg ~b ~n;
    let smawk_ok =
      tm_valid ~prev ~seg ~b ~n ~samples
      && columns_valid ~prev ~cur ~choice_row ~seg ~b ~n ~samples
           ~regions:no_regions
    in
    if smawk_ok then incr smawk_count
    else begin
      incr fallback_count;
      Array.fill cur 0 n Float.neg_infinity;
      Array.fill choice_row 0 n 0;
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n
    end
  end

let traceback ~choice ~best_b ~n =
  let rec go b j acc =
    if b = 0 then acc
    else
      let i = choice.(b).(j) in
      go (b - 1) (i - 1) (i :: acc)
  in
  go best_b (n - 1) []

let finish ~choice ~last ~b_max ~n ~stats =
  (* Smallest argmax over achievable segment counts — the quadratic DP's
     best_b selection. *)
  let best_b = ref 0 in
  for b = 1 to b_max - 1 do
    if last.(b) > last.(!best_b) then best_b := b
  done;
  {
    cuts = traceback ~choice ~best_b:!best_b ~n;
    segments = !best_b + 1;
    value = last.(!best_b);
    stats;
  }

let run ~n ~n_bundles ~regions ~smawk_count ~fallback_count ~layer seg_value =
  validate ~n ~n_bundles;
  check_regions ~n regions;
  let b_max = Stdlib.min n_bundles n in
  let evals = ref 0 in
  let seg i j =
    incr evals;
    seg_value i j
  in
  let prev = Array.make n Float.neg_infinity in
  let cur = Array.make n Float.neg_infinity in
  let choice = Array.make_matrix b_max n 0 in
  let last = Array.make b_max Float.neg_infinity in
  for j = 0 to n - 1 do
    prev.(j) <- seg 0 j
  done;
  last.(0) <- prev.(n - 1);
  for b = 1 to b_max - 1 do
    Array.fill cur 0 n Float.neg_infinity;
    let choice_row = choice.(b) in
    layer ~prev ~cur ~choice_row ~seg ~b;
    last.(b) <- cur.(n - 1);
    Array.blit cur 0 prev 0 n
  done;
  finish ~choice ~last ~b_max ~n
    ~stats:
      {
        layers = b_max;
        smawk_layers = !smawk_count;
        fallback_layers = !fallback_count;
        evaluations = !evals;
        regions = Array.length regions;
      }

let solve_quadratic ~n ~n_bundles seg_value =
  let zero = ref 0 in
  run ~n ~n_bundles ~regions:no_regions ~smawk_count:zero ~fallback_count:zero
    seg_value ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      exact_layer ~prev ~cur ~choice_row ~seg ~b ~n)

let solve ?(samples = 16) ?(regions = no_regions) ~n ~n_bundles seg_value =
  let smawk_count = ref 0 and fallback_count = ref 0 in
  run ~n ~n_bundles ~regions ~smawk_count ~fallback_count seg_value
    ~layer:(fun ~prev ~cur ~choice_row ~seg ~b ->
      ladder_layer ~samples ~regions ~smawk_count ~fallback_count ~prev ~cur
        ~choice_row ~seg ~b ~n)

(* --- warm start ----------------------------------------------------------- *)

(* The streaming re-tier loop solves an almost-identical instance every
   window: only a suffix of the cost-sorted positions changes. Retaining
   the full DP matrices lets the next solve recompute exactly the
   columns [dirty_from ..] of every layer — column j of any layer
   depends only on [prev] at positions [< j] and on [seg i j] with
   [i <= j], so every column left of the first dirty position is
   untouched by construction, not by assumption. The recomputed suffix
   runs the region-wise divide-and-conquer with the candidate range
   inherited from the last clean column's stored argmax (same-region
   columns only), and every layer is re-validated by the same spot-check
   [solve] uses; a failed check abandons the warm attempt and re-solves
   from scratch through the full ladder into the same state, so a warm
   result can never silently diverge from a cold one. *)

type state = {
  mutable st_n : int;
  st_n_bundles : int;
  mutable st_b_max : int;
  mutable st_dp : float array array;  (* b_max rows of n layer values *)
  mutable st_choice : int array array;  (* b_max rows; row 0 unused *)
  mutable st_last : float array;  (* dp value of the full prefix per layer *)
  mutable st_regions : int array;  (* region starts of the last solve *)
}

(* Fill every layer of [st] from scratch — the same computations as
   [solve] (the full D&C -> SMAWK -> exact ladder), just written into
   retained rows instead of a rolling pair. *)
let fill_state ~samples ~smawk_count ~fallback_count st seg =
  let n = st.st_n and b_max = st.st_b_max in
  let regions = st.st_regions in
  let dp = st.st_dp and choice = st.st_choice and last = st.st_last in
  for j = 0 to n - 1 do
    dp.(0).(j) <- seg 0 j
  done;
  last.(0) <- dp.(0).(n - 1);
  for b = 1 to b_max - 1 do
    let prev = dp.(b - 1) and cur = dp.(b) in
    let choice_row = choice.(b) in
    Array.fill cur 0 n Float.neg_infinity;
    ladder_layer ~samples ~regions ~smawk_count ~fallback_count ~prev ~cur
      ~choice_row ~seg ~b ~n;
    last.(b) <- cur.(n - 1)
  done

let solve_with_state ?(samples = 16) ?(regions = no_regions) ~n ~n_bundles
    seg_value =
  validate ~n ~n_bundles;
  check_regions ~n regions;
  let b_max = Stdlib.min n_bundles n in
  let st =
    {
      st_n = n;
      st_n_bundles = n_bundles;
      st_b_max = b_max;
      st_dp = Array.make_matrix b_max n Float.neg_infinity;
      st_choice = Array.make_matrix b_max n 0;
      st_last = Array.make b_max Float.neg_infinity;
      st_regions = regions;
    }
  in
  let evals = ref 0 and smawk_count = ref 0 and fallback_count = ref 0 in
  let seg i j =
    incr evals;
    seg_value i j
  in
  fill_state ~samples ~smawk_count ~fallback_count st seg;
  ( finish ~choice:st.st_choice ~last:st.st_last ~b_max ~n
      ~stats:
        {
          layers = b_max;
          smawk_layers = !smawk_count;
          fallback_layers = !fallback_count;
          evaluations = !evals;
          regions = Array.length regions;
        },
    st )

let state_n st = st.st_n
let state_n_bundles st = st.st_n_bundles

let solve_warm ?(samples = 16) ?regions ?(force_fallback = false) st
    ~dirty_from seg_value =
  let n = st.st_n and b_max = st.st_b_max in
  if dirty_from < 0 || dirty_from > n then
    invalid_arg "Segdp.solve_warm: dirty_from out of [0, n]";
  (match regions with
  | Some r ->
      check_regions ~n r;
      st.st_regions <- r
  | None -> ());
  let regions = st.st_regions in
  let nregions = Array.length regions in
  if dirty_from = n && not force_fallback then
    (* Nothing changed: replay the traceback from the retained state. *)
    ( finish ~choice:st.st_choice ~last:st.st_last ~b_max ~n
        ~stats:
          {
            layers = 0;
            smawk_layers = 0;
            fallback_layers = 0;
            evaluations = 0;
            regions = nregions;
          },
      `Warm )
  else begin
    let evals = ref 0 in
    let seg i j =
      incr evals;
      seg_value i j
    in
    let d = Stdlib.min dirty_from (n - 1) in
    let dp = st.st_dp and choice = st.st_choice and last = st.st_last in
    let ok = ref (not force_fallback) in
    if !ok then begin
      for j = d to n - 1 do
        dp.(0).(j) <- seg 0 j
      done;
      last.(0) <- dp.(0).(n - 1);
      let b = ref 1 in
      while !ok && !b < b_max do
        let b' = !b in
        let prev = dp.(b' - 1) and cur = dp.(b') in
        let choice_row = choice.(b') in
        let jlo = Stdlib.max b' d in
        dandc_regions ~prev ~cur ~choice_row ~seg ~b:b' ~n ~regions ~jlo0:jlo;
        ok :=
          monge_valid ~seg ~b:b' ~n ~samples ~regions
          && columns_valid ~prev ~cur ~choice_row ~seg ~b:b' ~n ~samples
               ~regions;
        last.(b') <- cur.(n - 1);
        incr b
      done
    end;
    if !ok then
      ( finish ~choice ~last ~b_max ~n
          ~stats:
            {
              layers = b_max;
              smawk_layers = 0;
              fallback_layers = 0;
              evaluations = !evals;
              regions = nregions;
            },
        `Warm )
    else begin
      (* Divergence (or a forced drill): recompute every layer from
         scratch through the ladder into the same state. The warm
         attempt's evaluations stay in the bill — they were really
         spent. *)
      let smawk_count = ref 0 and fallback_count = ref 0 in
      fill_state ~samples ~smawk_count ~fallback_count st seg;
      ( finish ~choice ~last ~b_max ~n
          ~stats:
            {
              layers = b_max;
              smawk_layers = !smawk_count;
              fallback_layers = !fallback_count;
              evaluations = !evals;
              regions = nregions;
            },
        `Cold )
    end
  end

(* --- structural deltas ---------------------------------------------------- *)

(* Flow arrivals and departures change the instance {e size}, not just a
   suffix of values: the cost-ordered index injection maps every
   retained position [< dirty_from] to the same index in the new
   instance, and everything at or past the first structural change is
   new territory. The retained rows are reallocated at the new width
   with the clean prefix blitted across — valid because column j of any
   layer depends only on positions [<= j], so a prefix that is
   bitwise-identical as an {e instance} has bitwise-identical columns.
   The suffix recompute is exactly [solve_warm]'s, with the same
   per-layer spot-checks; any failure falls back to a full cold fill
   into the (already resized) state. *)
let solve_structural ?(samples = 16) ?regions ?(force_fallback = false) st ~n
    ~dirty_from seg_value =
  if n < 1 then invalid_arg "Segdp.solve_structural: n must be positive";
  let old_n = st.st_n and old_b_max = st.st_b_max in
  if dirty_from < 0 || dirty_from > Stdlib.min old_n n then
    invalid_arg "Segdp.solve_structural: dirty_from out of [0, min old_n n]";
  (match regions with
  | Some r ->
      check_regions ~n r;
      st.st_regions <- r
  | None ->
      (* Region starts from the previous (different-sized) instance can
         point past the new end; keep only the valid prefix. *)
      if n <> old_n then
        st.st_regions <-
          Array.of_seq
            (Seq.filter (fun s -> s < n) (Array.to_seq st.st_regions)));
  if n = old_n then solve_warm ~samples ~force_fallback st ~dirty_from seg_value
  else begin
    let b_max = Stdlib.min st.st_n_bundles n in
    let d = dirty_from in
    let old_dp = st.st_dp and old_choice = st.st_choice in
    let dp = Array.make_matrix b_max n Float.neg_infinity in
    let choice = Array.make_matrix b_max n 0 in
    let last = Array.make b_max Float.neg_infinity in
    for b = 0 to Stdlib.min b_max old_b_max - 1 do
      Array.blit old_dp.(b) 0 dp.(b) 0 d;
      Array.blit old_choice.(b) 0 choice.(b) 0 d
    done;
    st.st_n <- n;
    st.st_b_max <- b_max;
    st.st_dp <- dp;
    st.st_choice <- choice;
    st.st_last <- last;
    let regions = st.st_regions in
    let nregions = Array.length regions in
    let evals = ref 0 in
    let seg i j =
      incr evals;
      seg_value i j
    in
    let ok = ref (not force_fallback) in
    if !ok then
      if d = n then
        (* Pure truncation (departures off the tail): every retained
           column is still exact; only the per-layer totals move to the
           new final column. Zero evaluations, like an unchanged
           replay. *)
        for b = 0 to b_max - 1 do
          last.(b) <- dp.(b).(n - 1)
        done
      else begin
        for j = d to n - 1 do
          dp.(0).(j) <- seg 0 j
        done;
        last.(0) <- dp.(0).(n - 1);
        let b = ref 1 in
        while !ok && !b < b_max do
          let b' = !b in
          let prev = dp.(b' - 1) and cur = dp.(b') in
          let choice_row = choice.(b') in
          (* Layers beyond the old [b_max] (the instance grew past a
             tiny old size) have no retained prefix; [max b' d] starts
             them at their first real column anyway because
             [d <= old_n <= b'] there. *)
          let jlo = Stdlib.max b' d in
          dandc_regions ~prev ~cur ~choice_row ~seg ~b:b' ~n ~regions
            ~jlo0:jlo;
          ok :=
            monge_valid ~seg ~b:b' ~n ~samples ~regions
            && columns_valid ~prev ~cur ~choice_row ~seg ~b:b' ~n ~samples
                 ~regions;
          last.(b') <- cur.(n - 1);
          incr b
        done
      end;
    if !ok then
      ( finish ~choice ~last ~b_max ~n
          ~stats:
            {
              layers = (if d = n then 0 else b_max);
              smawk_layers = 0;
              fallback_layers = 0;
              evaluations = !evals;
              regions = nregions;
            },
        `Warm )
    else begin
      let smawk_count = ref 0 and fallback_count = ref 0 in
      fill_state ~samples ~smawk_count ~fallback_count st seg;
      ( finish ~choice ~last ~b_max ~n
          ~stats:
            {
              layers = b_max;
              smawk_layers = !smawk_count;
              fallback_layers = !fallback_count;
              evaluations = !evals;
              regions = nregions;
            },
        `Cold )
    end
  end

let verify_columns ?(samples = 64) st seg_value =
  let n = st.st_n and b_max = st.st_b_max in
  let dp = st.st_dp and choice = st.st_choice in
  let ok = ref true in
  let b = ref 0 in
  while !ok && !b < b_max do
    let b' = !b in
    let state = ref (Int64.of_int (0x165667B1 + (b' * 0x85EBCA6B))) in
    let draws = Stdlib.min samples (n - b') in
    let s = ref 0 in
    while !ok && !s < draws do
      let j = b' + sample_int state (n - b') in
      if b' = 0 then begin
        if not (Float.equal dp.(0).(j) (seg_value 0 j)) then ok := false
      end
      else begin
        let best, best_i = exact_best ~prev:dp.(b' - 1) ~seg:seg_value ~b:b' j in
        if
          (not (Float.equal dp.(b').(j) best)) || choice.(b').(j) <> best_i
        then ok := false
      end;
      incr s
    done;
    incr b
  done;
  !ok
