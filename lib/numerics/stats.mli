(** Descriptive statistics over float arrays.

    The evaluation of the paper is driven by dispersion statistics
    (coefficient of variation of demand and of flow distance, Table 1), so
    these helpers are exact and numerically careful (Kahan-compensated
    sums). All functions raise [Invalid_argument] on empty input unless
    noted. *)

val sum : float array -> float
(** Kahan-compensated sum; [0.] on the empty array. *)

val sum_init : int -> (int -> float) -> float
(** [sum_init n f] is [sum (Array.init n f)] without the intermediate
    array (same compensation, bit-identical result for a pure [f]);
    [0.] when [n <= 0]. The hot evaluation loops use it to fuse
    generate-then-sum passes. *)

val mean : float array -> float

val variance : float array -> float
(** Population variance (divides by [n]). *)

val stddev : float array -> float

val cv : float array -> float
(** Coefficient of variation, [stddev / mean]. Requires a non-zero mean. *)

val weighted_mean : values:float array -> weights:float array -> float
(** Demand-weighted averages such as Table 1's w-avg distance. Requires
    equal lengths and a positive total weight. *)

val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]], linear interpolation between
    order statistics. Does not mutate its argument. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** One-shot descriptive summary. [cv] is [nan] when the mean is [0]. *)

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per equal-width bin
    spanning [\[min xs, max xs\]]. Requires [bins > 0]. *)

val logsumexp : float array -> float
(** [ln (sum_i e^(x_i))], computed with the usual max-shift so that it
    neither overflows nor underflows. [neg_infinity] on the empty
    array. *)

val pearson : float array -> float array -> float
(** Sample Pearson correlation. Requires equal lengths [>= 2] and
    non-degenerate inputs. *)
