type task = { label : string; wall_s : float }

type snapshot = {
  tasks : task list;
  jobs : int;
  backend : string;
  worker_restarts : int;
  wall_s : float;
  busy_s : float;
  utilization : float;
  domain_busy_s : float array;
  load_balance : float;
  caches : (string * Cache.stats) list;
  disk : Cache.disk_stats option;
}

type t = {
  mutex : Mutex.t;
  mutable rev_tasks : task list;
  mutable jobs : int;
  mutable backend : string;
  mutable worker_restarts : int;
  mutable wall_s : float;
  mutable domain_busy : float array;
}

let create () =
  {
    mutex = Mutex.create ();
    rev_tasks = [];
    jobs = 1;
    backend = "domains";
    worker_restarts = 0;
    wall_s = 0.;
    domain_busy = [||];
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let record t ~label ~wall_s =
  with_lock t.mutex (fun () -> t.rev_tasks <- { label; wall_s } :: t.rev_tasks)

let set_jobs t jobs = with_lock t.mutex (fun () -> t.jobs <- max 1 jobs)
let set_backend t backend = with_lock t.mutex (fun () -> t.backend <- backend)

let set_worker_restarts t n =
  with_lock t.mutex (fun () -> t.worker_restarts <- max 0 n)

let set_wall t wall_s = with_lock t.mutex (fun () -> t.wall_s <- wall_s)

let set_domain_busy t busy =
  with_lock t.mutex (fun () -> t.domain_busy <- Array.copy busy)

let time t ~label f =
  let t0 = Unix.gettimeofday () in
  let finally () = record t ~label ~wall_s:(Unix.gettimeofday () -. t0) in
  Fun.protect ~finally f

let snapshot t =
  let tasks, jobs, backend, worker_restarts, wall_s, domain_busy_s =
    with_lock t.mutex (fun () ->
        ( List.rev t.rev_tasks,
          t.jobs,
          t.backend,
          t.worker_restarts,
          t.wall_s,
          Array.copy t.domain_busy ))
  in
  let busy_s =
    List.fold_left (fun acc (k : task) -> acc +. k.wall_s) 0. tasks
  in
  let utilization =
    if wall_s > 0. && jobs > 0 then busy_s /. (float_of_int jobs *. wall_s)
    else 0.
  in
  let load_balance =
    let n = Array.length domain_busy_s in
    if n = 0 then 0.
    else
      let sum = Array.fold_left ( +. ) 0. domain_busy_s in
      let mean = sum /. float_of_int n in
      if mean > 0. then Array.fold_left Float.max 0. domain_busy_s /. mean
      else 0.
  in
  {
    tasks;
    jobs;
    backend;
    worker_restarts;
    wall_s;
    busy_s;
    utilization;
    domain_busy_s;
    load_balance;
    caches = Cache.all_stats ();
    disk = Cache.disk_stats ();
  }

(* --- rendering ----------------------------------------------------------- *)

let task_rows s =
  List.map
    (fun k ->
      [
        k.label;
        Printf.sprintf "%.3f" k.wall_s;
        (if s.busy_s > 0. then
           Printf.sprintf "%.1f%%" (100. *. k.wall_s /. s.busy_s)
         else "-");
      ])
    s.tasks

let cache_rows s =
  List.map
    (fun (name, (c : Cache.stats)) ->
      let served = c.Cache.hits + c.Cache.disk_hits + c.Cache.remote_hits in
      let lookups = served + c.Cache.misses in
      [
        name;
        string_of_int c.Cache.hits;
        string_of_int c.Cache.disk_hits;
        string_of_int c.Cache.remote_hits;
        string_of_int c.Cache.misses;
        (if lookups > 0 then
           Printf.sprintf "%.1f%%"
             (100. *. float_of_int served /. float_of_int lookups)
         else "-");
      ])
    s.caches

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let to_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" s.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"backend\": \"%s\",\n" (json_escape s.backend));
  Buffer.add_string buf
    (Printf.sprintf "  \"worker_restarts\": %d,\n" s.worker_restarts);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_s\": %s,\n" (json_float s.wall_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"busy_s\": %s,\n" (json_float s.busy_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"utilization\": %s,\n" (json_float s.utilization));
  Buffer.add_string buf
    (Printf.sprintf "  \"load_balance\": %s,\n" (json_float s.load_balance));
  Buffer.add_string buf "  \"domain_busy_s\": [";
  Array.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (json_float b))
    s.domain_busy_s;
  Buffer.add_string buf "],\n";
  (match s.disk with
  | None -> Buffer.add_string buf "  \"disk\": null,\n"
  | Some d ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"disk\": {\"dir\": \"%s\", \"bytes\": %d, \"max_bytes\": %s, \
            \"evictions\": %d},\n"
           (json_escape d.Cache.dir) d.Cache.bytes
           (match d.Cache.max_bytes with
           | Some b -> string_of_int b
           | None -> "null")
           d.Cache.evictions));
  Buffer.add_string buf "  \"tasks\": [";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"label\": \"%s\", \"wall_s\": %s}"
           (json_escape k.label) (json_float k.wall_s)))
    s.tasks;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"caches\": [";
  List.iteri
    (fun i (name, (c : Cache.stats)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"hits\": %d, \"disk_hits\": %d, \
            \"remote_hits\": %d, \"misses\": %d}"
           (json_escape name) c.Cache.hits c.Cache.disk_hits c.Cache.remote_hits
           c.Cache.misses))
    s.caches;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
