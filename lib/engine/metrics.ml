type task = { label : string; wall_s : float }

type snapshot = {
  tasks : task list;
  jobs : int;
  wall_s : float;
  busy_s : float;
  utilization : float;
  caches : (string * Cache.stats) list;
}

type t = {
  mutex : Mutex.t;
  mutable rev_tasks : task list;
  mutable jobs : int;
  mutable wall_s : float;
}

let create () =
  { mutex = Mutex.create (); rev_tasks = []; jobs = 1; wall_s = 0. }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let record t ~label ~wall_s =
  with_lock t.mutex (fun () -> t.rev_tasks <- { label; wall_s } :: t.rev_tasks)

let set_jobs t jobs = with_lock t.mutex (fun () -> t.jobs <- max 1 jobs)
let set_wall t wall_s = with_lock t.mutex (fun () -> t.wall_s <- wall_s)

let time t ~label f =
  let t0 = Unix.gettimeofday () in
  let finally () = record t ~label ~wall_s:(Unix.gettimeofday () -. t0) in
  Fun.protect ~finally f

let snapshot t =
  let tasks, jobs, wall_s =
    with_lock t.mutex (fun () -> (List.rev t.rev_tasks, t.jobs, t.wall_s))
  in
  let busy_s =
    List.fold_left (fun acc (k : task) -> acc +. k.wall_s) 0. tasks
  in
  let utilization =
    if wall_s > 0. && jobs > 0 then busy_s /. (float_of_int jobs *. wall_s)
    else 0.
  in
  { tasks; jobs; wall_s; busy_s; utilization; caches = Cache.all_stats () }

(* --- rendering ----------------------------------------------------------- *)

let task_rows s =
  List.map
    (fun k ->
      [
        k.label;
        Printf.sprintf "%.3f" k.wall_s;
        (if s.busy_s > 0. then
           Printf.sprintf "%.1f%%" (100. *. k.wall_s /. s.busy_s)
         else "-");
      ])
    s.tasks

let cache_rows s =
  List.map
    (fun (name, (c : Cache.stats)) ->
      let lookups = c.Cache.hits + c.Cache.disk_hits + c.Cache.misses in
      [
        name;
        string_of_int c.Cache.hits;
        string_of_int c.Cache.disk_hits;
        string_of_int c.Cache.misses;
        (if lookups > 0 then
           Printf.sprintf "%.1f%%"
             (100. *. float_of_int (c.Cache.hits + c.Cache.disk_hits)
             /. float_of_int lookups)
         else "-");
      ])
    s.caches

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let to_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" s.jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_s\": %s,\n" (json_float s.wall_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"busy_s\": %s,\n" (json_float s.busy_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"utilization\": %s,\n" (json_float s.utilization));
  Buffer.add_string buf "  \"tasks\": [";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"label\": \"%s\", \"wall_s\": %s}"
           (json_escape k.label) (json_float k.wall_s)))
    s.tasks;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"caches\": [";
  List.iteri
    (fun i (name, (c : Cache.stats)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"hits\": %d, \"disk_hits\": %d, \
            \"misses\": %d}"
           (json_escape name) c.Cache.hits c.Cache.disk_hits c.Cache.misses))
    s.caches;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
