(** TCP fleet worker backend: the {!Transport} scheduler over socket
    endpoints, so a sweep can run on workers that live on {e other
    hosts} — or on loopback children for same-host smoke runs.

    Worker launch modes ({!spec}):
    - [Exec n] — the parent binds an ephemeral loopback listener and
      spawns [n] children of the current executable, each re-entered
      through the hidden [--engine-remote-worker=connect:…] argv
      directive; they dial back and are handshaken over their socket.
      Process isolation identical to {!Proc}, plus the full TCP stack:
      this is what [--backend remote] without [--workers] and the CI
      smoke use.
    - [Addrs [(host, port); …]] — workers were started out-of-band
      with [tiered-cli worker --listen PORT] (typically via ssh) and
      the parent connects out to each address. A crashed worker is
      replaced by one reconnect attempt to the same address.

    Everything above the sockets — framing, handshake/resync, crash
    recovery with bounded retries, per-task timeouts, work stealing,
    local draining, and the CAS side-channel through which workers
    fetch/publish artifacts by digest — is {!Transport}, shared with
    the subprocess backend, so the two backends have identical task
    semantics (at-least-once execution, exactly-once result merging in
    submission order, byte-identical rendered output).

    {b Trust model.} Task frames are marshalled closures: speaking the
    protocol {e is} arbitrary code execution in the worker. Every TCP
    connection therefore starts with a shared-secret preamble (see
    {!Transport.write_auth}): [Exec] fleets generate a fresh random
    token per fleet and pass it to their loopback children through the
    environment; standalone daemons and their parents share a token
    via [TIERED_WORKER_TOKEN] (or [tiered-cli worker --token-file]).
    Daemons bind loopback by default and refuse a non-loopback bind
    without a token — but the token only authenticates, it does not
    encrypt: run workers on trusted/firewalled networks only.

    Every entry point that may drive a remote pool must call
    {!maybe_run_worker} first in [main] (right after
    {!Proc.maybe_run_worker}). *)

type t

exception Spawn_failure of string
exception Remote_failure of { message : string }
exception Worker_lost of { attempts : int; reason : string }
(** Aliases of {!Transport}'s exceptions (and therefore of {!Proc}'s):
    matching on any of the three modules' constructors works. *)

type spec = Exec of int | Addrs of (string * int) list

val parse_spec : string -> (spec, string) result
(** ["exec:N"] or ["host:port,host:port,…"] (the [--workers] argument
    syntax). *)

val spec_workers : spec -> int
(** Fleet size the spec asks for. *)

val worker_flag_prefix : string
(** ["--engine-remote-worker="] — the hidden argv prefix that turns
    the current executable into a connecting fleet worker. *)

val token_env : string
(** ["TIERED_WORKER_TOKEN"] — environment variable carrying the shared
    secret on both ends (tokens never travel on argv: ps shows argv). *)

val bind_env : string
(** ["TIERED_WORKER_BIND"] — environment variable overriding the
    listen address of a daemon started through the argv directive. *)

val maybe_run_worker : unit -> unit
(** If [Sys.argv] carries a [--engine-remote-worker=connect:HOST:PORT]
    directive, become a fleet worker: dial the parent, serve task
    frames until the connection closes, then [exit 0]. A
    [--engine-remote-worker=listen:PORT] directive runs
    {!serve_forever} instead, so any host executable can be started as
    a standalone daemon. Both read the shared secret from
    {!token_env}; the daemon additionally honours {!bind_env}. Never
    returns in either case. *)

val serve_forever : ?bind:string -> ?token:string -> port:int -> 'a
(** Run a standalone worker daemon: listen on [bind] (default
    ["127.0.0.1"]; pass an interface address or ["0.0.0.0"] to opt in
    to external connections) and serve one parent connection at a
    time, forever — each connection must present [token] (default: the
    {!token_env} variable) before anything is unmarshalled; each
    re-applies the parent's disk-cache configuration, and in-memory
    artifact caches stay warm across connections (the schema stamp
    guards staleness). Raises [Failure] when [bind] is not loopback
    and no token is configured — an open port accepts closures, i.e.
    arbitrary code, so external exposure is double opt-in and still
    belongs behind a firewall. A severed connection does {e not} abort
    a computation already running here: the daemon finishes it, hits
    EPIPE, then accepts the next parent. This is
    [tiered-cli worker --listen]. Progress notes go to stderr. *)

val create : ?retries:int -> ?timeout_s:float -> ?token:string -> spec -> t
(** Bring the fleet up (spawn-and-accept for [Exec], connect for
    [Addrs]) and handshake every worker. [retries] (default [2])
    bounds how many crashed executions a task absorbs; [timeout_s]
    kills a worker stuck on one task — note that for [Addrs] daemons
    the kill can only sever the connection, not abort the remote
    computation: the slot drops out, is retried with backoff, and
    rejoins once the daemon comes back (finishes or restarts).
    [token] defaults to a fresh random secret for [Exec] and to the
    {!token_env} variable for [Addrs]. Raises {!Spawn_failure} when
    not even one worker comes up; later failures merely shrink the
    fleet. Side effect: [SIGPIPE] is ignored process-wide. *)

val workers : t -> int
val restarts : t -> int
val busy_times : t -> float array

val store : t -> Transport.Store.t
(** The parent-side artifact store answering the fleet's CAS frames —
    exposed so callers and tests can pre-seed artifacts workers will
    fetch by digest. *)

val map : t -> ('a -> 'b) -> 'a array -> ('b, exn * string) result array
(** Same contract as {!Transport.map}. *)

val shutdown : t -> unit
(** Close every worker connection (loopback children are reaped) and
    the listener. Idempotent. *)
