type stats = { hits : int; disk_hits : int; remote_hits : int; misses : int }

type disk_stats = {
  dir : string;
  bytes : int;
  max_bytes : int option;
  evictions : int;
}

type remote_tier = {
  fetch : cache:string -> key_digest:string -> string option;
  publish : cache:string -> key_digest:string -> payload:string -> unit;
}

type 'v slot =
  | Ready of 'v
  | In_flight
      (* Another domain is computing this key; wait on [filled] instead
         of duplicating the work. *)

type 'v t = {
  name : string;
  schema : string;
  mutex : Mutex.t;
  filled : Condition.t;
  table : (string, 'v slot) Hashtbl.t;  (* key digest -> artifact *)
  mutable hits : int;
  mutable disk_hits : int;
  mutable remote_hits : int;
  mutable misses : int;
}

(* --- global registry and disk configuration ----------------------------- *)

let registry_mutex = Mutex.create ()
let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []
let disk : string option ref = ref None
let disk_max : int option ref = ref None
let disk_evictions = ref 0
let remote : remote_tier option ref = ref None

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let enable_disk ?max_bytes ~dir () =
  with_lock registry_mutex (fun () ->
      disk := Some dir;
      disk_max := max_bytes;
      disk_evictions := 0)

let disable_disk () =
  with_lock registry_mutex (fun () ->
      disk := None;
      disk_max := None)

let disk_dir () = with_lock registry_mutex (fun () -> !disk)
let disk_max_bytes () = with_lock registry_mutex (fun () -> !disk_max)
let set_remote_tier rt = with_lock registry_mutex (fun () -> remote := rt)
let remote_tier () = with_lock registry_mutex (fun () -> !remote)

let register name stats clear =
  with_lock registry_mutex (fun () ->
      registry := (name, stats, clear) :: !registry)

let all_stats () =
  let entries = with_lock registry_mutex (fun () -> !registry) in
  List.rev_map (fun (name, stats, _) -> (name, stats ())) entries

let clear_all () =
  let entries = with_lock registry_mutex (fun () -> !registry) in
  List.iter (fun (_, _, clear) -> clear ()) entries

(* --- keys ---------------------------------------------------------------- *)

let key_digest key = Digest.to_hex (Digest.string (Marshal.to_string key []))

(* --- creation ------------------------------------------------------------ *)

let stats t =
  with_lock t.mutex (fun () ->
      {
        hits = t.hits;
        disk_hits = t.disk_hits;
        remote_hits = t.remote_hits;
        misses = t.misses;
      })

let clear t =
  with_lock t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.remote_hits <- 0;
      t.misses <- 0)

let create ?(schema = "1") ~name () =
  let t =
    {
      name;
      schema;
      mutex = Mutex.create ();
      filled = Condition.create ();
      table = Hashtbl.create 16;
      hits = 0;
      disk_hits = 0;
      remote_hits = 0;
      misses = 0;
    }
  in
  register name (fun () -> stats t) (fun () -> clear t);
  t

(* --- disk tier ----------------------------------------------------------- *)

(* The disk tier is content-addressed (see {!Cas}): a payload — the
   marshalled pair (schema stamp, artifact) — lives in an object file
   named by its own digest, and the cache's key digest points at it
   through a tiny reference file. Identical artifacts written under
   different keys (or by different caches, processes or hosts) share
   one object. Reading anything unexpected — missing ref or object,
   digest mismatch, truncated payload, foreign schema — is a miss,
   never an error. *)

let payload_of t v =
  match Marshal.to_string (t.schema, v) [] with
  | payload -> Some payload
  | exception _ -> None

let of_payload t payload =
  match (Marshal.from_string payload 0 : string * 'v) with
  | stamp, v when String.equal stamp t.schema -> Some v
  | _ -> None
  | exception _ -> None

(* --- size accounting and LRU eviction ------------------------------------ *)

(* The disk tier is bounded by an optional byte budget. Every object
   file carries a recency stamp — a strictly increasing integer kept
   in a [.stamp] sidecar next to the object, allocated from a
   [lru.next] counter file in the cache directory. mtime is useless
   here: OCaml's [Unix.stat] truncates [st_mtime] to whole seconds, so
   a hit in the same second as the write never looked more recent and
   a hot object could be evicted as "oldest". The counter survives
   the process (it lives on disk) and is additionally floored by an
   in-process counter, so stamps are strictly monotonic within a
   process and monotone-enough across concurrent processes (a lost
   race costs at most one eviction-order tie, broken by file name).
   When the tier grows past [max_bytes] the least-recently-used
   objects are removed first. Eviction is best-effort and crash-safe:
   losing a file to a concurrent reader, a permission error or a crash
   mid-eviction only ever costs a recomputation, never raises — and an
   object that cannot be removed is skipped without being counted as
   freed, so the loop keeps evicting until the budget truly holds.
   Ties on the stamp break by file name so the eviction order is
   deterministic. References are not budgeted (they are ~32 bytes);
   references left dangling by an eviction are pruned afterwards and
   read as misses until then. *)

let eviction_mutex = Mutex.create ()
let stamp_mutex = Mutex.create ()
let last_stamp = ref 0

let stamp_path path = path ^ ".stamp"
let counter_path dir = Filename.concat dir "lru.next"

let read_int_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match int_of_string_opt (String.trim (input_line ic)) with
          | Some n -> n
          | None | (exception End_of_file) -> 0)

let write_int_file path n =
  match open_out path with
  | exception Sys_error _ -> ()
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (string_of_int n))

let next_stamp dir =
  with_lock stamp_mutex (fun () ->
      let n = 1 + max (read_int_file (counter_path dir)) !last_stamp in
      last_stamp := n;
      write_int_file (counter_path dir) n;
      n)

(* Refresh an object's recency: write a fresh stamp into its sidecar.
   Called on every write and every disk hit. *)
let touch ~dir path = write_int_file (stamp_path path) (next_stamp dir)

let is_payload = Cas.is_object

let scan_payloads dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (is_payload name) then None
             else
               let path = Filename.concat dir name in
               match Unix.stat path with
               | exception Unix.Unix_error _ -> None
               | st when st.Unix.st_kind = Unix.S_REG ->
                   (* An object without a sidecar (crash between rename
                      and stamp) reads as stamp 0: oldest, evicted
                      first — deterministically. *)
                   Some (path, st.Unix.st_size, read_int_file (stamp_path path))
               | _ -> None)

let disk_usage_bytes () =
  match disk_dir () with
  | None -> 0
  | Some dir -> List.fold_left (fun acc (_, size, _) -> acc + size) 0 (scan_payloads dir)

(* Test hook: lets the regression suite make one object unremovable
   (simulating a permission error / concurrent-reader race) without
   depending on filesystem permissions, which root bypasses. *)
let remove_hook : (string -> unit) option ref = ref None

let remove_payload path =
  match !remove_hook with Some f -> f path | None -> Sys.remove path

let enforce_budget () =
  match (disk_dir (), disk_max_bytes ()) with
  | Some dir, Some max_bytes ->
      with_lock eviction_mutex (fun () ->
          let entries = scan_payloads dir in
          let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
          if total > max_bytes then begin
            (* Oldest stamp first; the just-written object is evicted
               too when it alone overflows the budget. *)
            let by_age =
              List.sort
                (fun (pa, _, ma) (pb, _, mb) ->
                  match Int.compare ma mb with 0 -> String.compare pa pb | c -> c)
                entries
            in
            let evicted = ref 0 in
            ignore
              (List.fold_left
                 (fun remaining (path, size, _) ->
                   if remaining <= max_bytes then remaining
                   else
                     (* Only bytes actually freed count against the
                        overflow: a failed removal must not stop the
                        loop early and leave the tier over budget. *)
                     match remove_payload path with
                     | () ->
                         incr evicted;
                         (try Sys.remove (stamp_path path)
                          with Sys_error _ -> ());
                         remaining - size
                     | exception Sys_error _ -> remaining)
                 total by_age);
            if !evicted > 0 then begin
              with_lock registry_mutex (fun () ->
                  disk_evictions := !disk_evictions + !evicted);
              Cas.prune_refs ~dir
            end
          end)
  | _ -> ()

let disk_stats () =
  match disk_dir () with
  | None -> None
  | Some dir ->
      Some
        {
          dir;
          bytes = disk_usage_bytes ();
          max_bytes = disk_max_bytes ();
          evictions = with_lock registry_mutex (fun () -> !disk_evictions);
        }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

(* Store raw payload bytes and point [cache]/[key_digest] at the
   resulting object. Returns the object (content) digest. *)
let disk_write_payload ~cache key_digest payload =
  match disk_dir () with
  | None -> None
  | Some dir -> (
      ensure_dir dir;
      match Cas.write_object ~dir ~payload with
      | None -> None
      | Some od ->
          Cas.write_ref ~dir ~cache ~key_digest ~digest:od;
          touch ~dir (Cas.object_path ~dir od);
          enforce_budget ();
          Some od)

(* Raw payload bytes under a key, if both the reference and a
   digest-verified object exist. *)
let raw_payload ~cache ~key_digest =
  match disk_dir () with
  | None -> None
  | Some dir -> (
      match Cas.read_ref ~dir ~cache ~key_digest with
      | None -> None
      | Some od -> (
          match Cas.read_object ~dir od with
          | None -> None
          | Some payload ->
              (* Refresh the LRU stamp: a hit makes the object recent. *)
              touch ~dir (Cas.object_path ~dir od);
              Some payload))

let store_raw_payload ~cache ~key_digest ~payload =
  ignore (disk_write_payload ~cache key_digest payload : string option)

let disk_read t digest =
  match raw_payload ~cache:t.name ~key_digest:digest with
  | None -> None
  | Some payload -> of_payload t payload

let disk_write t digest v =
  match payload_of t v with
  | None -> None
  | Some payload -> disk_write_payload ~cache:t.name digest payload

let disk_remove t digest =
  (* Only the reference goes: the object may be shared with other keys
     and is reclaimed by the LRU budget. A recomputation of the same
     artifact re-links the same object. *)
  match disk_dir () with
  | None -> ()
  | Some dir -> Cas.remove_ref ~dir ~cache:t.name ~key_digest:digest

(* --- remote tier ---------------------------------------------------------- *)

(* Inside a fleet worker, {!Transport.serve_worker} installs a hook
   that forwards misses to the parent process over the task channel;
   everywhere else the hook is [None] and this tier is free. *)

let remote_read t digest =
  match remote_tier () with
  | None -> None
  | Some rt -> (
      match rt.fetch ~cache:t.name ~key_digest:digest with
      | None -> None
      | Some payload -> (
          match of_payload t payload with
          | Some v ->
              (* Adopt the artifact locally so later lookups (and the
                 LRU budget) see it without another round-trip. *)
              ignore (disk_write_payload ~cache:t.name digest payload : string option);
              Some v
          | None -> None))

let remote_publish t digest payload =
  match remote_tier () with
  | None -> ()
  | Some rt -> (
      (* Best-effort: a parent that died mid-publish already costs the
         worker its connection; the computed value is still good. *)
      try rt.publish ~cache:t.name ~key_digest:digest ~payload
      with End_of_file | Unix.Unix_error _ | Sys_error _ -> ())

(* --- manifest support ----------------------------------------------------- *)

let disk_get t ~key =
  match disk_dir () with
  | None -> None
  | Some dir -> (
      let kd = key_digest key in
      match Cas.read_ref ~dir ~cache:t.name ~key_digest:kd with
      | None -> None
      | Some od -> (
          match Cas.read_object ~dir od with
          | None -> None
          | Some payload -> (
              match of_payload t payload with
              | Some v ->
                  touch ~dir (Cas.object_path ~dir od);
                  Some (v, od)
              | None -> None)))

let disk_put t ~key v = disk_write t (key_digest key) v

(* --- lookup -------------------------------------------------------------- *)

let find_or_add t ~key compute =
  let digest = key_digest key in
  Mutex.lock t.mutex;
  let rec claim () =
    match Hashtbl.find_opt t.table digest with
    | Some (Ready v) ->
        t.hits <- t.hits + 1;
        `Hit v
    | Some In_flight ->
        (* Another domain is already computing this artifact: wait for
           it rather than duplicating the work. *)
        Condition.wait t.filled t.mutex;
        claim ()
    | None ->
        Hashtbl.replace t.table digest In_flight;
        `Ours
  in
  match claim () with
  | `Hit v ->
      Mutex.unlock t.mutex;
      v
  | `Ours -> (
      (* Load or compute outside the lock so independent keys can miss
         concurrently; only same-key lookups wait. *)
      Mutex.unlock t.mutex;
      let outcome =
        match disk_read t digest with
        | Some v -> Ok (v, `Disk)
        | None -> (
            match remote_read t digest with
            | Some v -> Ok (v, `Remote)
            | None -> (
                match compute () with
                | v -> Ok ((v : _), `Fresh)
                | exception exn ->
                    let bt = Printexc.get_raw_backtrace () in
                    Error (exn, bt)))
      in
      Mutex.lock t.mutex;
      (match outcome with
      | Ok (v, src) ->
          Hashtbl.replace t.table digest (Ready v);
          (match src with
          | `Disk -> t.disk_hits <- t.disk_hits + 1
          | `Remote -> t.remote_hits <- t.remote_hits + 1
          | `Fresh -> t.misses <- t.misses + 1)
      | Error _ ->
          (* Release the claim so waiters retry (and re-raise in their
             own context if the computation is deterministic). *)
          Hashtbl.remove t.table digest);
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex;
      match outcome with
      | Ok (v, `Fresh) ->
          (match payload_of t v with
          | None -> ()
          | Some payload ->
              ignore
                (disk_write_payload ~cache:t.name digest payload
                  : string option);
              remote_publish t digest payload);
          v
      | Ok (v, (`Disk | `Remote)) -> v
      | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt)

module Private = struct
  let set_remove_hook h = with_lock eviction_mutex (fun () -> remove_hook := h)

  let payload_digest t v =
    match payload_of t v with
    | Some payload -> Cas.digest_hex payload
    | None -> invalid_arg "Cache.Private.payload_digest: unmarshalable artifact"

  let payload_of_value t v =
    match payload_of t v with
    | Some payload -> payload
    | None -> invalid_arg "Cache.Private.payload_of_value: unmarshalable artifact"
end

let invalidate t ~key =
  let digest = key_digest key in
  with_lock t.mutex (fun () ->
      match Hashtbl.find_opt t.table digest with
      | Some (Ready _) | None -> Hashtbl.remove t.table digest
      | Some In_flight ->
          (* The computing domain will insert its fresh result; nothing
             stale to drop. *)
          ());
  disk_remove t digest
