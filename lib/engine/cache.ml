type stats = { hits : int; disk_hits : int; misses : int }

type disk_stats = {
  dir : string;
  bytes : int;
  max_bytes : int option;
  evictions : int;
}

type 'v slot =
  | Ready of 'v
  | In_flight
      (* Another domain is computing this key; wait on [filled] instead
         of duplicating the work. *)

type 'v t = {
  name : string;
  schema : string;
  mutex : Mutex.t;
  filled : Condition.t;
  table : (string, 'v slot) Hashtbl.t;  (* key digest -> artifact *)
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
}

(* --- global registry and disk configuration ----------------------------- *)

let registry_mutex = Mutex.create ()
let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []
let disk : string option ref = ref None
let disk_max : int option ref = ref None
let disk_evictions = ref 0

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let enable_disk ?max_bytes ~dir () =
  with_lock registry_mutex (fun () ->
      disk := Some dir;
      disk_max := max_bytes;
      disk_evictions := 0)

let disable_disk () =
  with_lock registry_mutex (fun () ->
      disk := None;
      disk_max := None)

let disk_dir () = with_lock registry_mutex (fun () -> !disk)
let disk_max_bytes () = with_lock registry_mutex (fun () -> !disk_max)

let register name stats clear =
  with_lock registry_mutex (fun () ->
      registry := (name, stats, clear) :: !registry)

let all_stats () =
  let entries = with_lock registry_mutex (fun () -> !registry) in
  List.rev_map (fun (name, stats, _) -> (name, stats ())) entries

let clear_all () =
  let entries = with_lock registry_mutex (fun () -> !registry) in
  List.iter (fun (_, _, clear) -> clear ()) entries

(* --- keys ---------------------------------------------------------------- *)

let key_digest key = Digest.to_hex (Digest.string (Marshal.to_string key []))

(* --- creation ------------------------------------------------------------ *)

let stats t =
  with_lock t.mutex (fun () ->
      { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses })

let clear t =
  with_lock t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0)

let create ?(schema = "1") ~name () =
  let t =
    {
      name;
      schema;
      mutex = Mutex.create ();
      filled = Condition.create ();
      table = Hashtbl.create 16;
      hits = 0;
      disk_hits = 0;
      misses = 0;
    }
  in
  register name (fun () -> stats t) (fun () -> clear t);
  t

(* --- disk tier ----------------------------------------------------------- *)

(* A payload is the marshalled pair (schema stamp, artifact). Reading
   anything unexpected — missing file, truncated payload, foreign
   schema — is a miss, never an error. *)

let payload_path ~dir t digest =
  Filename.concat dir (Printf.sprintf "%s-%s.bin" t.name digest)

(* --- size accounting and LRU eviction ------------------------------------ *)

(* The disk tier is bounded by an optional byte budget. Every payload
   file carries a recency stamp — a strictly increasing integer kept
   in a [.stamp] sidecar next to the payload, allocated from a
   [lru.next] counter file in the cache directory. mtime is useless
   here: OCaml's [Unix.stat] truncates [st_mtime] to whole seconds, so
   a hit in the same second as the write never looked more recent and
   a hot payload could be evicted as "oldest". The counter survives
   the process (it lives on disk) and is additionally floored by an
   in-process counter, so stamps are strictly monotonic within a
   process and monotone-enough across concurrent processes (a lost
   race costs at most one eviction-order tie, broken by file name).
   When the tier grows past [max_bytes] the least-recently-used
   payloads are removed first. Eviction is best-effort and crash-safe:
   losing a file to a concurrent reader, a permission error or a crash
   mid-eviction only ever costs a recomputation, never raises — and a
   payload that cannot be removed is skipped without being counted as
   freed, so the loop keeps evicting until the budget truly holds.
   Ties on the stamp break by file name so the eviction order is
   deterministic. *)

let eviction_mutex = Mutex.create ()
let stamp_mutex = Mutex.create ()
let last_stamp = ref 0

let stamp_path path = path ^ ".stamp"
let counter_path dir = Filename.concat dir "lru.next"

let read_int_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match int_of_string_opt (String.trim (input_line ic)) with
          | Some n -> n
          | None | (exception End_of_file) -> 0)

let write_int_file path n =
  match open_out path with
  | exception Sys_error _ -> ()
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (string_of_int n))

let next_stamp dir =
  with_lock stamp_mutex (fun () ->
      let n = 1 + max (read_int_file (counter_path dir)) !last_stamp in
      last_stamp := n;
      write_int_file (counter_path dir) n;
      n)

(* Refresh a payload's recency: write a fresh stamp into its sidecar.
   Called on every write and every disk hit. *)
let touch ~dir path = write_int_file (stamp_path path) (next_stamp dir)

let is_payload name = Filename.check_suffix name ".bin"

let scan_payloads dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (is_payload name) then None
             else
               let path = Filename.concat dir name in
               match Unix.stat path with
               | exception Unix.Unix_error _ -> None
               | st when st.Unix.st_kind = Unix.S_REG ->
                   (* A payload without a sidecar (crash between rename
                      and stamp) reads as stamp 0: oldest, evicted
                      first — deterministically. *)
                   Some (path, st.Unix.st_size, read_int_file (stamp_path path))
               | _ -> None)

let disk_usage_bytes () =
  match disk_dir () with
  | None -> 0
  | Some dir -> List.fold_left (fun acc (_, size, _) -> acc + size) 0 (scan_payloads dir)

(* Test hook: lets the regression suite make one payload unremovable
   (simulating a permission error / concurrent-reader race) without
   depending on filesystem permissions, which root bypasses. *)
let remove_hook : (string -> unit) option ref = ref None

let remove_payload path =
  match !remove_hook with Some f -> f path | None -> Sys.remove path

let enforce_budget () =
  match (disk_dir (), disk_max_bytes ()) with
  | Some dir, Some max_bytes ->
      with_lock eviction_mutex (fun () ->
          let entries = scan_payloads dir in
          let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
          if total > max_bytes then begin
            (* Oldest stamp first; the just-written payload is evicted
               too when it alone overflows the budget. *)
            let by_age =
              List.sort
                (fun (pa, _, ma) (pb, _, mb) ->
                  match Int.compare ma mb with 0 -> String.compare pa pb | c -> c)
                entries
            in
            let evicted = ref 0 in
            ignore
              (List.fold_left
                 (fun remaining (path, size, _) ->
                   if remaining <= max_bytes then remaining
                   else
                     (* Only bytes actually freed count against the
                        overflow: a failed removal must not stop the
                        loop early and leave the tier over budget. *)
                     match remove_payload path with
                     | () ->
                         incr evicted;
                         (try Sys.remove (stamp_path path)
                          with Sys_error _ -> ());
                         remaining - size
                     | exception Sys_error _ -> remaining)
                 total by_age);
            if !evicted > 0 then
              with_lock registry_mutex (fun () ->
                  disk_evictions := !disk_evictions + !evicted)
          end)
  | _ -> ()

let disk_stats () =
  match disk_dir () with
  | None -> None
  | Some dir ->
      Some
        {
          dir;
          bytes = disk_usage_bytes ();
          max_bytes = disk_max_bytes ();
          evictions = with_lock registry_mutex (fun () -> !disk_evictions);
        }

let disk_read t digest =
  match disk_dir () with
  | None -> None
  | Some dir -> (
      let path = payload_path ~dir t digest in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic -> (
          match
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match (Marshal.from_channel ic : string * 'v) with
                | stamp, v when String.equal stamp t.schema -> Some v
                | _ -> None
                | exception _ -> None)
          with
          | Some v ->
              (* Refresh the LRU stamp: a hit makes the payload recent. *)
              touch ~dir path;
              Some v
          | None -> None))

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let disk_write t digest v =
  match disk_dir () with
  | None -> ()
  | Some dir -> (
      ensure_dir dir;
      let path = payload_path ~dir t digest in
      let tmp = path ^ ".tmp" in
      match open_out_bin tmp with
      | exception Sys_error _ -> ()
      | oc -> (
          let ok =
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                match Marshal.to_channel oc (t.schema, v) [] with
                | () -> true
                | exception _ -> false)
          in
          if ok then begin
            (try Sys.rename tmp path with Sys_error _ -> ());
            touch ~dir path;
            enforce_budget ()
          end
          else try Sys.remove tmp with Sys_error _ -> ()))

let disk_remove t digest =
  match disk_dir () with
  | None -> ()
  | Some dir ->
      let path = payload_path ~dir t digest in
      (try Sys.remove path with Sys_error _ -> ());
      (try Sys.remove (stamp_path path) with Sys_error _ -> ())

(* --- lookup -------------------------------------------------------------- *)

let find_or_add t ~key compute =
  let digest = key_digest key in
  Mutex.lock t.mutex;
  let rec claim () =
    match Hashtbl.find_opt t.table digest with
    | Some (Ready v) ->
        t.hits <- t.hits + 1;
        `Hit v
    | Some In_flight ->
        (* Another domain is already computing this artifact: wait for
           it rather than duplicating the work. *)
        Condition.wait t.filled t.mutex;
        claim ()
    | None ->
        Hashtbl.replace t.table digest In_flight;
        `Ours
  in
  match claim () with
  | `Hit v ->
      Mutex.unlock t.mutex;
      v
  | `Ours -> (
      (* Load or compute outside the lock so independent keys can miss
         concurrently; only same-key lookups wait. *)
      Mutex.unlock t.mutex;
      let outcome =
        match disk_read t digest with
        | Some v -> Ok (v, true)
        | None -> (
            match compute () with
            | v -> Ok ((v : _), false)
            | exception exn ->
                let bt = Printexc.get_raw_backtrace () in
                Error (exn, bt))
      in
      Mutex.lock t.mutex;
      (match outcome with
      | Ok (v, from_disk) ->
          Hashtbl.replace t.table digest (Ready v);
          if from_disk then t.disk_hits <- t.disk_hits + 1
          else t.misses <- t.misses + 1
      | Error _ ->
          (* Release the claim so waiters retry (and re-raise in their
             own context if the computation is deterministic). *)
          Hashtbl.remove t.table digest);
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex;
      match outcome with
      | Ok (v, from_disk) ->
          if not from_disk then disk_write t digest v;
          v
      | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt)

module Private = struct
  let set_remove_hook h = with_lock eviction_mutex (fun () -> remove_hook := h)
end

let invalidate t ~key =
  let digest = key_digest key in
  with_lock t.mutex (fun () ->
      match Hashtbl.find_opt t.table digest with
      | Some (Ready _) | None -> Hashtbl.remove t.table digest
      | Some In_flight ->
          (* The computing domain will insert its fresh result; nothing
             stale to drop. *)
          ());
  disk_remove t digest
