(* TCP fleet worker backend. See remote.mli for the contract.

   This module is only the socket transport: listeners, connects,
   loopback exec launching and child reaping. The frame protocol,
   handshake/resync, crash recovery, bounded retries, per-task
   timeouts, work stealing and the CAS side-channel all live in
   {!Transport}, shared with {!Proc}.

   Two launch modes:
   - [Exec n]: the parent binds an ephemeral loopback listener and
     spawns [n] children of the current executable with
     [--engine-remote-worker=connect:127.0.0.1:<port>]; each child
     connects back and is handshaken over its socket. Crashed workers
     are respawned the same way. This is the same-host smoke path —
     process isolation identical to {!Proc}, but exercising the full
     TCP stack.
   - [Addrs]: workers were started out-of-band ([tiered-cli worker
     --listen PORT], typically via ssh) and the parent connects out to
     each [host:port]. A crashed worker is replaced by one reconnect
     attempt to the same address (the listener loop serves connections
     sequentially, so a restarted daemon picks the slot back up). *)

exception Spawn_failure = Transport.Spawn_failure
exception Remote_failure = Transport.Remote_failure
exception Worker_lost = Transport.Worker_lost

let worker_flag_prefix = "--engine-remote-worker="

type spec = Exec of int | Addrs of (string * int) list

let parse_spec s =
  let exec_prefix = "exec:" in
  let has_prefix p s =
    String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p
  in
  if has_prefix exec_prefix s then
    let n = String.sub s (String.length exec_prefix) (String.length s - String.length exec_prefix) in
    match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (Exec n)
    | Some _ | None -> Error "exec:N needs a positive worker count"
  else
    let parse_addr a =
      match String.rindex_opt a ':' with
      | None -> Error (Printf.sprintf "%S is not host:port" a)
      | Some i -> (
          let host = String.sub a 0 i in
          let port = String.sub a (i + 1) (String.length a - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 1 && p <= 65535 && String.length host > 0 ->
              Ok (host, p)
          | Some _ | None -> Error (Printf.sprintf "%S is not host:port" a))
    in
    let parts = String.split_on_char ',' s |> List.filter (fun p -> String.length p > 0) in
    if parts = [] then Error "empty worker list"
    else
      List.fold_left
        (fun acc part ->
          match (acc, parse_addr part) with
          | Error _, _ -> acc
          | Ok _, Error e -> Error e
          | Ok addrs, Ok a -> Ok (a :: addrs))
        (Ok []) parts
      |> Result.map (fun addrs -> Addrs (List.rev addrs))

let spec_workers = function Exec n -> max 1 n | Addrs l -> List.length l

(* --- sockets --------------------------------------------------------------- *)

let set_nodelay sock =
  (* Frames are small and request/response-shaped; Nagle would add
     40ms hiccups to every CAS round-trip. *)
  try Unix.setsockopt sock Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          raise (Spawn_failure (Printf.sprintf "cannot resolve %s" host))
      | h -> h.Unix.h_addr_list.(0))

let connect ~timeout_s host port =
  let addr = Unix.ADDR_INET (resolve host, port) in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  let fail msg =
    Transport.close_noerr sock;
    raise (Spawn_failure (Printf.sprintf "connect %s:%d: %s" host port msg))
  in
  Unix.set_nonblock sock;
  (match Unix.connect sock addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
      match
        Transport.restart_on_intr (fun () ->
            Unix.select [] [ sock ] [] timeout_s)
      with
      | _, [ _ ], _ -> (
          match Unix.getsockopt_error sock with
          | None -> ()
          | Some e -> fail (Unix.error_message e))
      | _ -> fail "timed out")
  | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e));
  Unix.clear_nonblock sock;
  set_nodelay sock;
  sock

(* --- worker side ----------------------------------------------------------- *)

let serve_connection sock =
  match Transport.serve_worker ~in_fd:sock ~out_fd:sock () with
  | () -> ()
  | exception End_of_file -> ()

let serve_forever ~port =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Printexc.record_backtrace true;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen listener 8;
  Printf.eprintf "engine remote worker: listening on port %d\n%!" port;
  let rec loop () =
    let sock, peer =
      Transport.restart_on_intr (fun () -> Unix.accept listener)
    in
    let peer_name =
      match peer with
      | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      | Unix.ADDR_UNIX p -> p
    in
    Printf.eprintf "engine remote worker: serving %s\n%!" peer_name;
    set_nodelay sock;
    (match serve_connection sock with
    | () -> ()
    | exception exn ->
        Printf.eprintf "engine remote worker: connection to %s failed: %s\n%!"
          peer_name (Printexc.to_string exn));
    Transport.close_noerr sock;
    Printf.eprintf "engine remote worker: %s disconnected\n%!" peer_name;
    loop ()
  in
  loop ()

let run_directive directive =
  (* "connect:HOST:PORT" — dial the parent's listener and serve one
     connection. "listen:PORT" — run the standalone daemon. *)
  let strip prefix =
    let plen = String.length prefix in
    if
      String.length directive > plen
      && String.equal (String.sub directive 0 plen) prefix
    then Some (String.sub directive plen (String.length directive - plen))
    else None
  in
  match (strip "connect:", strip "listen:") with
  | Some rest, _ ->
      let host, port =
        match String.rindex_opt rest ':' with
        | None -> failwith (Printf.sprintf "bad worker directive %S" directive)
        | Some i -> (
            let host = String.sub rest 0 i in
            match
              int_of_string_opt
                (String.sub rest (i + 1) (String.length rest - i - 1))
            with
            | Some p -> (host, p)
            | None ->
                failwith (Printf.sprintf "bad worker directive %S" directive))
      in
      let sock = connect ~timeout_s:10.0 host port in
      Fun.protect
        ~finally:(fun () -> Transport.close_noerr sock)
        (fun () -> serve_connection sock)
  | None, Some port -> (
      match int_of_string_opt port with
      | Some p when p >= 1 && p <= 65535 -> serve_forever ~port:p
      | Some _ | None ->
          failwith (Printf.sprintf "bad worker directive %S" directive))
  | None, None -> failwith (Printf.sprintf "bad worker directive %S" directive)

let maybe_run_worker () =
  let directive =
    Array.fold_left
      (fun acc arg ->
        match acc with
        | Some _ -> acc
        | None ->
            let plen = String.length worker_flag_prefix in
            if
              String.length arg > plen
              && String.equal (String.sub arg 0 plen) worker_flag_prefix
            then Some (String.sub arg plen (String.length arg - plen))
            else None)
      None Sys.argv
  in
  match directive with
  | None -> ()
  | Some directive -> (
      Printexc.record_backtrace true;
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      match run_directive directive with
      | () -> exit 0
      | exception exn ->
          Printf.eprintf "engine remote worker: fatal: %s\n%!"
            (Printexc.to_string exn);
          exit 125)

(* --- parent side ----------------------------------------------------------- *)

type t = {
  sched : Transport.sched;
  listener : Unix.file_descr option;
  mutable shut : bool;
}

let endpoint_of_socket ?pid sock =
  try
    Transport.write_config sock;
    Transport.handshake ~deadline_s:10.0 sock;
    {
      Transport.ep_send = sock;
      ep_recv = sock;
      ep_kill =
        (fun () ->
          match pid with
          | Some p -> Transport.kill_noerr p
          | None -> Transport.close_noerr sock);
      ep_close =
        (fun () ->
          (* One fd both ways: close once. EOF makes the worker's read
             loop return; exec children additionally get reaped. *)
          Transport.close_noerr sock;
          match pid with
          | Some p -> Transport.reap_with_grace p
          | None -> ());
    }
  with exn ->
    (match pid with
    | Some p ->
        Transport.kill_noerr p;
        Transport.reap_noerr p
    | None -> ());
    Transport.close_noerr sock;
    raise (Spawn_failure (Printexc.to_string exn))

let spawn_exec_child ~port =
  let exe = Sys.executable_name in
  let arg = Printf.sprintf "%sconnect:127.0.0.1:%d" worker_flag_prefix port in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  match
    (* stdout → stderr: init-time noise from the host executable must
       not land on the parent's stdout (the golden tables) — and unlike
       a pipe worker, the protocol channel here is the socket, so the
       child's fd 1 carries nothing we need. *)
    Unix.create_process exe [| exe; arg |] null Unix.stderr Unix.stderr
  with
  | exception exn ->
      Transport.close_noerr null;
      raise (Spawn_failure (Printexc.to_string exn))
  | pid ->
      Transport.close_noerr null;
      pid

let accept_worker listener ~timeout_s =
  match
    Transport.restart_on_intr (fun () -> Unix.select [ listener ] [] [] timeout_s)
  with
  | [], _, _ -> raise (Spawn_failure "remote worker did not connect in time")
  | _ ->
      let sock, _peer =
        Transport.restart_on_intr (fun () -> Unix.accept listener)
      in
      Unix.set_close_on_exec sock;
      set_nodelay sock;
      sock

let create ?(retries = 2) ?timeout_s spec =
  (* A dead worker must surface as EPIPE/ECONNRESET on its socket, not
     kill the parent. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match spec with
  | Exec n ->
      let n = max 1 n in
      let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_close_on_exec listener;
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen listener (n + 8);
      let port =
        match Unix.getsockname listener with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      let spawn_one () =
        let pid = spawn_exec_child ~port in
        match accept_worker listener ~timeout_s:10.0 with
        | sock -> endpoint_of_socket ~pid sock
        | exception exn ->
            Transport.kill_noerr pid;
            Transport.reap_noerr pid;
            raise exn
      in
      let endpoints = Array.make n None in
      (* The first worker must come up, otherwise the backend is
         unavailable and the caller degrades; later failures only
         shrink the fleet. *)
      (match spawn_one () with
      | ep -> endpoints.(0) <- Some ep
      | exception exn ->
          Transport.close_noerr listener;
          raise exn);
      for i = 1 to n - 1 do
        match spawn_one () with
        | ep -> endpoints.(i) <- Some ep
        | exception Spawn_failure _ -> ()
      done;
      let respawn _slot =
        match spawn_one () with
        | ep -> Some ep
        | exception Spawn_failure _ -> None
      in
      {
        sched = Transport.make_sched ~retries ?timeout_s ~respawn endpoints;
        listener = Some listener;
        shut = false;
      }
  | Addrs addr_list ->
      if addr_list = [] then raise (Spawn_failure "empty worker list");
      let addrs = Array.of_list addr_list in
      let n = Array.length addrs in
      let spawn_at (host, port) =
        endpoint_of_socket (connect ~timeout_s:5.0 host port)
      in
      let endpoints = Array.make n None in
      endpoints.(0) <- Some (spawn_at addrs.(0));
      for i = 1 to n - 1 do
        match spawn_at addrs.(i) with
        | ep -> endpoints.(i) <- Some ep
        | exception Spawn_failure _ -> ()
      done;
      let respawn slot =
        (* One reconnect attempt to the worker's own address: a
           [serve_forever] daemon accepts the next connection after its
           previous one died. *)
        match spawn_at addrs.(slot) with
        | ep -> Some ep
        | exception Spawn_failure _ -> None
      in
      {
        sched = Transport.make_sched ~retries ?timeout_s ~respawn endpoints;
        listener = None;
        shut = false;
      }

let workers t = Transport.workers t.sched
let restarts t = Transport.restarts t.sched
let busy_times t = Transport.busy_times t.sched
let store t = Transport.store t.sched
let map t f tasks = Transport.map t.sched f tasks

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Transport.shutdown t.sched;
    match t.listener with
    | Some fd -> Transport.close_noerr fd
    | None -> ()
  end
