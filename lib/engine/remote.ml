(* TCP fleet worker backend. See remote.mli for the contract.

   This module is only the socket transport: listeners, connects,
   loopback exec launching and child reaping. The frame protocol,
   handshake/resync, crash recovery, bounded retries, per-task
   timeouts, work stealing and the CAS side-channel all live in
   {!Transport}, shared with {!Proc}.

   Two launch modes:
   - [Exec n]: the parent binds an ephemeral loopback listener and
     spawns [n] children of the current executable with
     [--engine-remote-worker=connect:127.0.0.1:<port>]; each child
     connects back and is handshaken over its socket. Crashed workers
     are respawned the same way. This is the same-host smoke path —
     process isolation identical to {!Proc}, but exercising the full
     TCP stack.
   - [Addrs]: workers were started out-of-band ([tiered-cli worker
     --listen PORT], typically via ssh) and the parent connects out to
     each [host:port]. A crashed worker is replaced by one reconnect
     attempt to the same address (the listener loop serves connections
     sequentially, so a restarted daemon picks the slot back up). *)

exception Spawn_failure = Transport.Spawn_failure
exception Remote_failure = Transport.Remote_failure
exception Worker_lost = Transport.Worker_lost

let worker_flag_prefix = "--engine-remote-worker="

(* --- shared secret ---------------------------------------------------------- *)

(* Task frames execute arbitrary code in whoever accepts them (see the
   trust-model note in transport.ml), so TCP connections authenticate
   with a shared token. It travels in the environment, never on argv —
   argv is world-readable via ps. *)

let token_env = "TIERED_WORKER_TOKEN"
let bind_env = "TIERED_WORKER_BIND"

let env_token () =
  match Sys.getenv_opt token_env with Some t -> t | None -> ""

let gen_token () =
  let hex s =
    let b = Buffer.create (2 * String.length s) in
    String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
    Buffer.contents b
  in
  match open_in_bin "/dev/urandom" with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> hex (really_input_string ic 16))
  | exception Sys_error _ ->
      (* No urandom (exotic platform): loopback-only fleets still get a
         per-run token nobody off-host can observe. *)
      Digest.to_hex
        (Digest.string
           (Printf.sprintf "tiered-%d-%.9f" (Unix.getpid ())
              (Unix.gettimeofday ())))

type spec = Exec of int | Addrs of (string * int) list

let parse_spec s =
  let exec_prefix = "exec:" in
  let has_prefix p s =
    String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p
  in
  if has_prefix exec_prefix s then
    let n = String.sub s (String.length exec_prefix) (String.length s - String.length exec_prefix) in
    match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (Exec n)
    | Some _ | None -> Error "exec:N needs a positive worker count"
  else
    let parse_addr a =
      match String.rindex_opt a ':' with
      | None -> Error (Printf.sprintf "%S is not host:port" a)
      | Some i -> (
          let host = String.sub a 0 i in
          let port = String.sub a (i + 1) (String.length a - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 1 && p <= 65535 && String.length host > 0 ->
              Ok (host, p)
          | Some _ | None -> Error (Printf.sprintf "%S is not host:port" a))
    in
    let parts = String.split_on_char ',' s |> List.filter (fun p -> String.length p > 0) in
    if parts = [] then Error "empty worker list"
    else
      List.fold_left
        (fun acc part ->
          match (acc, parse_addr part) with
          | Error _, _ -> acc
          | Ok _, Error e -> Error e
          | Ok addrs, Ok a -> Ok (a :: addrs))
        (Ok []) parts
      |> Result.map (fun addrs -> Addrs (List.rev addrs))

let spec_workers = function Exec n -> max 1 n | Addrs l -> List.length l

(* --- sockets --------------------------------------------------------------- *)

let set_nodelay sock =
  (* Frames are small and request/response-shaped; Nagle would add
     40ms hiccups to every CAS round-trip. *)
  try Unix.setsockopt sock Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          raise (Spawn_failure (Printf.sprintf "cannot resolve %s" host))
      | h -> h.Unix.h_addr_list.(0))

let connect ~timeout_s host port =
  let addr = Unix.ADDR_INET (resolve host, port) in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  let fail msg =
    Transport.close_noerr sock;
    raise (Spawn_failure (Printf.sprintf "connect %s:%d: %s" host port msg))
  in
  Unix.set_nonblock sock;
  (match Unix.connect sock addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
      match
        Transport.restart_on_intr (fun () ->
            Unix.select [] [ sock ] [] timeout_s)
      with
      | _, [ _ ], _ -> (
          match Unix.getsockopt_error sock with
          | None -> ()
          | Some e -> fail (Unix.error_message e))
      | _ -> fail "timed out")
  | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e));
  Unix.clear_nonblock sock;
  set_nodelay sock;
  sock

(* --- worker side ----------------------------------------------------------- *)

let serve_connection ~token sock =
  match Transport.serve_worker ~in_fd:sock ~out_fd:sock ~token () with
  | () -> ()
  | exception End_of_file -> ()

let is_loopback addr =
  let s = Unix.string_of_inet_addr addr in
  String.equal s "::1"
  || (String.length s >= 4 && String.equal (String.sub s 0 4) "127.")

let serve_forever ?(bind = "127.0.0.1") ?token ~port =
  let token = match token with Some t -> t | None -> env_token () in
  let bind_addr = resolve bind in
  (* Loopback needs no secret (the host boundary is the trust
     boundary, same as the subprocess backend). Anything wider is
     remote code execution for whoever can reach the port, so it is
     double opt-in: an explicit bind address AND a shared token — and
     even then the port belongs on a trusted/firewalled network. *)
  if (not (is_loopback bind_addr)) && String.equal token "" then
    failwith
      (Printf.sprintf
         "refusing to listen on %s without a shared secret: task frames \
          execute arbitrary code in this daemon, so an exposed port is \
          remote code execution for anyone who can reach it. Pass \
          --token-file (or set %s) here and on the parent, and only run \
          workers on trusted networks"
         bind token_env);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Printexc.record_backtrace true;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (bind_addr, port));
  Unix.listen listener 8;
  Printf.eprintf "engine remote worker: listening on %s:%d\n%!"
    (Unix.string_of_inet_addr bind_addr)
    port;
  let rec loop () =
    let sock, peer =
      Transport.restart_on_intr (fun () -> Unix.accept listener)
    in
    let peer_name =
      match peer with
      | Unix.ADDR_INET (a, p) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      | Unix.ADDR_UNIX p -> p
    in
    Printf.eprintf "engine remote worker: serving %s\n%!" peer_name;
    set_nodelay sock;
    (match serve_connection ~token sock with
    | () -> ()
    | exception Transport.Auth_failure ->
        Printf.eprintf
          "engine remote worker: rejected %s (bad or missing shared secret)\n%!"
          peer_name
    | exception exn ->
        Printf.eprintf "engine remote worker: connection to %s failed: %s\n%!"
          peer_name (Printexc.to_string exn));
    Transport.close_noerr sock;
    Printf.eprintf "engine remote worker: %s disconnected\n%!" peer_name;
    loop ()
  in
  loop ()

let run_directive directive =
  (* "connect:HOST:PORT" — dial the parent's listener and serve one
     connection. "listen:PORT" — run the standalone daemon. Both take
     the shared secret from the environment ([token_env]); the daemon
     additionally honours [bind_env] (default loopback). *)
  let strip prefix =
    let plen = String.length prefix in
    if
      String.length directive > plen
      && String.equal (String.sub directive 0 plen) prefix
    then Some (String.sub directive plen (String.length directive - plen))
    else None
  in
  match (strip "connect:", strip "listen:") with
  | Some rest, _ ->
      let host, port =
        match String.rindex_opt rest ':' with
        | None -> failwith (Printf.sprintf "bad worker directive %S" directive)
        | Some i -> (
            let host = String.sub rest 0 i in
            match
              int_of_string_opt
                (String.sub rest (i + 1) (String.length rest - i - 1))
            with
            | Some p -> (host, p)
            | None ->
                failwith (Printf.sprintf "bad worker directive %S" directive))
      in
      let sock = connect ~timeout_s:10.0 host port in
      Fun.protect
        ~finally:(fun () -> Transport.close_noerr sock)
        (fun () -> serve_connection ~token:(env_token ()) sock)
  | None, Some port -> (
      match int_of_string_opt port with
      | Some p when p >= 1 && p <= 65535 ->
          serve_forever
            ?bind:(Sys.getenv_opt bind_env)
            ~token:(env_token ()) ~port:p
      | Some _ | None ->
          failwith (Printf.sprintf "bad worker directive %S" directive))
  | None, None -> failwith (Printf.sprintf "bad worker directive %S" directive)

let maybe_run_worker () =
  let directive =
    Array.fold_left
      (fun acc arg ->
        match acc with
        | Some _ -> acc
        | None ->
            let plen = String.length worker_flag_prefix in
            if
              String.length arg > plen
              && String.equal (String.sub arg 0 plen) worker_flag_prefix
            then Some (String.sub arg plen (String.length arg - plen))
            else None)
      None Sys.argv
  in
  match directive with
  | None -> ()
  | Some directive -> (
      Printexc.record_backtrace true;
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      match run_directive directive with
      | () -> exit 0
      | exception exn ->
          Printf.eprintf "engine remote worker: fatal: %s\n%!"
            (Printexc.to_string exn);
          exit 125)

(* --- parent side ----------------------------------------------------------- *)

type t = {
  sched : Transport.sched;
  listener : Unix.file_descr option;
  mutable shut : bool;
}

let endpoint_of_socket ?pid ?(handshake_timeout_s = 10.0) ~token sock =
  try
    Transport.write_auth sock ~token;
    Transport.write_config sock;
    Transport.handshake ~deadline_s:handshake_timeout_s ~token sock;
    {
      Transport.ep_send = sock;
      ep_recv = sock;
      ep_kill =
        (fun () ->
          match pid with
          | Some p -> Transport.kill_noerr p
          | None -> Transport.close_noerr sock);
      ep_close =
        (fun () ->
          (* One fd both ways: close once. EOF makes the worker's read
             loop return; exec children additionally get reaped. *)
          Transport.close_noerr sock;
          match pid with
          | Some p -> Transport.reap_with_grace p
          | None -> ());
    }
  with exn ->
    (match pid with
    | Some p ->
        Transport.kill_noerr p;
        Transport.reap_noerr p
    | None -> ());
    Transport.close_noerr sock;
    raise (Spawn_failure (Printexc.to_string exn))

let spawn_exec_child ~port ~token =
  let exe = Sys.executable_name in
  let arg = Printf.sprintf "%sconnect:127.0.0.1:%d" worker_flag_prefix port in
  let env =
    (* Hand the child the fleet's secret via the environment (argv
       shows in ps), shadowing any inherited value. *)
    let prefix = token_env ^ "=" in
    let plen = String.length prefix in
    let keep =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not
               (String.length kv >= plen
               && String.equal (String.sub kv 0 plen) prefix))
    in
    Array.of_list (keep @ [ prefix ^ token ])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  match
    (* stdout → stderr: init-time noise from the host executable must
       not land on the parent's stdout (the golden tables) — and unlike
       a pipe worker, the protocol channel here is the socket, so the
       child's fd 1 carries nothing we need. *)
    Unix.create_process_env exe [| exe; arg |] env null Unix.stderr Unix.stderr
  with
  | exception exn ->
      Transport.close_noerr null;
      raise (Spawn_failure (Printexc.to_string exn))
  | pid ->
      Transport.close_noerr null;
      pid

let accept_worker listener ~timeout_s =
  match
    Transport.restart_on_intr (fun () -> Unix.select [ listener ] [] [] timeout_s)
  with
  | [], _, _ -> raise (Spawn_failure "remote worker did not connect in time")
  | _ ->
      let sock, _peer =
        Transport.restart_on_intr (fun () -> Unix.accept listener)
      in
      Unix.set_close_on_exec sock;
      set_nodelay sock;
      sock

let create ?(retries = 2) ?timeout_s ?token spec =
  (* A dead worker must surface as EPIPE/ECONNRESET on its socket, not
     kill the parent. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match spec with
  | Exec n ->
      (* Loopback children: a fresh random secret per fleet, handed
         down through the environment. Anything else on this host that
         races us to the ephemeral listener port is rejected at the
         preamble, and an impostor listener cannot produce our ready
         frame. *)
      let token = match token with Some t -> t | None -> gen_token () in
      let n = max 1 n in
      let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_close_on_exec listener;
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen listener (n + 8);
      let port =
        match Unix.getsockname listener with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      let spawn_one () =
        let pid = spawn_exec_child ~port ~token in
        match accept_worker listener ~timeout_s:10.0 with
        | sock -> endpoint_of_socket ~pid ~token sock
        | exception exn ->
            Transport.kill_noerr pid;
            Transport.reap_noerr pid;
            raise exn
      in
      let endpoints = Array.make n None in
      (* The first worker must come up, otherwise the backend is
         unavailable and the caller degrades; later failures only
         shrink the fleet. *)
      (match spawn_one () with
      | ep -> endpoints.(0) <- Some ep
      | exception exn ->
          Transport.close_noerr listener;
          raise exn);
      for i = 1 to n - 1 do
        match spawn_one () with
        | ep -> endpoints.(i) <- Some ep
        | exception Spawn_failure _ -> ()
      done;
      let respawn _slot =
        match spawn_one () with
        | ep -> Some ep
        | exception Spawn_failure _ -> None
      in
      {
        sched = Transport.make_sched ~retries ?timeout_s ~respawn endpoints;
        listener = Some listener;
        shut = false;
      }
  | Addrs addr_list ->
      if addr_list = [] then raise (Spawn_failure "empty worker list");
      (* Out-of-band daemons: both ends read the secret from the
         environment by default (never argv). *)
      let token = match token with Some t -> t | None -> env_token () in
      let addrs = Array.of_list addr_list in
      let n = Array.length addrs in
      let spawn_at ?(connect_timeout_s = 5.0) ?handshake_timeout_s (host, port)
          =
        endpoint_of_socket ?handshake_timeout_s ~token
          (connect ~timeout_s:connect_timeout_s host port)
      in
      let endpoints = Array.make n None in
      endpoints.(0) <- Some (spawn_at addrs.(0));
      for i = 1 to n - 1 do
        match spawn_at addrs.(i) with
        | ep -> endpoints.(i) <- Some ep
        | exception Spawn_failure _ -> ()
      done;
      let respawn slot =
        (* Reconnect to the worker's own address: a [serve_forever]
           daemon accepts the next connection once its previous one
           died. The daemon serves one connection at a time and cannot
           abort a computation whose connection was severed (a
           --task-timeout kill only closes our end), so a reconnect
           right after a kill usually finds it still busy — fail fast
           on short timeouts and let the scheduler's deferred-respawn
           backoff retry while work remains, instead of blocking the
           dispatch loop for the full connect+handshake budget and
           abandoning the slot. *)
        match
          spawn_at ~connect_timeout_s:1.0 ~handshake_timeout_s:2.0 addrs.(slot)
        with
        | ep -> Some ep
        | exception Spawn_failure _ -> None
      in
      {
        sched = Transport.make_sched ~retries ?timeout_s ~respawn endpoints;
        listener = None;
        shut = false;
      }

let workers t = Transport.workers t.sched
let restarts t = Transport.restarts t.sched
let busy_times t = Transport.busy_times t.sched
let store t = Transport.store t.sched
let map t f tasks = Transport.map t.sched f tasks

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Transport.shutdown t.sched;
    match t.listener with
    | Some fd -> Transport.close_noerr fd
    | None -> ()
  end
