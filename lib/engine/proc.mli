(** Subprocess worker backend: a fixed-size pool of worker {e
    processes} (not domains) executing tasks shipped over pipes.

    Each worker is a fork/exec of the current executable
    ([Sys.executable_name]) re-entered through the hidden
    {!worker_flag} argument, so every entry point that may drive a
    subprocess pool must call {!maybe_run_worker} as the very first
    thing in its [main]. Tasks travel as length-prefixed [Marshal]
    frames (with [Marshal.Closures] — legal because worker and parent
    are the same binary); results come back the same way and are keyed
    by task index, so merge order is submission order and rendered
    output stays byte-identical to the domain and serial backends.

    What the process boundary buys over domains:
    - {b fault isolation}: a crashing task (segfault, OOM kill, stack
      overflow in C stubs) takes down one worker, not the whole run.
      The parent detects the death as EOF on the worker's result pipe,
      reaps it with [waitpid], requeues the in-flight task on a
      surviving worker (bounded by [retries], with a short exponential
      backoff before each replacement spawn) and only raises after
      retry exhaustion;
    - {b wedge recovery}: an optional per-task [timeout_s] SIGKILLs a
      worker stuck on one task and recovers the same way;
    - {b true parallelism on any runtime}: workers are scheduled by
      the OS, not the OCaml domain scheduler.

    The cost is that workers are cold processes: in-memory artifact
    caches start empty in every worker, so cross-process artifact
    sharing happens through the {!Cache} disk tier — the parent's disk
    cache configuration is forwarded to each worker during the spawn
    handshake.

    Tasks must therefore be pure (or idempotent): a task interrupted
    by a crash or timeout is re-executed, i.e. the backend provides
    at-least-once execution with exactly-once {e result merging}.

    {!create} raises {!Spawn_failure} when no worker at all can be
    brought up; {!Pool} uses that to degrade gracefully to the domain
    backend.

    This module is only the pipe {e transport}; the scheduler (frame
    protocol, crash recovery, retries, timeouts, work stealing, CAS
    side-channel) is {!Transport}, shared with the TCP backend
    {!Remote}. The exceptions below are aliases of {!Transport}'s, so
    matching on either module's constructors works. *)

type t

exception Spawn_failure of string
(** No worker process could be spawned (exec failure, fd exhaustion,
    handshake timeout). *)

exception Remote_failure of { message : string }
(** The task itself raised inside a worker. [message] is the printed
    form of the worker-side exception ([Printexc.to_string]); exception
    {e identity} does not survive the process boundary. Deterministic
    task failures are not retried. *)

exception Worker_lost of { attempts : int; reason : string }
(** A worker died (EOF / SIGKILL / timeout) while running the task and
    the bounded retries were exhausted; [attempts] counts executions
    attempted. *)

val worker_flag : string
(** ["--engine-worker"] — the hidden argv marker that turns the
    current executable into a worker. *)

val maybe_run_worker : unit -> unit
(** If [Sys.argv] carries {!worker_flag}, become a worker: enable
    backtrace recording, apply the parent's disk-cache configuration,
    serve task frames from stdin until EOF, then [exit 0]. Never
    returns in that case. Must be the first statement of [main] in
    every executable that may create a subprocess pool. *)

val create : ?workers:int -> ?retries:int -> ?timeout_s:float -> unit -> t
(** Spawn [workers] worker processes (default
    [max 1 (recommended_domain_count - 1)], clamped to [>= 1]).
    [retries] (default [2]) bounds how many times a task whose worker
    died is re-executed; [timeout_s] (default: none) SIGKILLs a worker
    stuck on a single task for longer. Raises {!Spawn_failure} when
    not even one worker comes up; later spawn failures merely shrink
    the pool. Side effect: [SIGPIPE] is ignored process-wide so a dead
    worker surfaces as [EPIPE] instead of killing the parent. *)

val workers : t -> int
(** Worker slots (the requested count, even if some are currently
    being respawned). *)

val restarts : t -> int
(** Worker processes lost and replaced since {!create} (crashes,
    timeouts and dispatch failures all count). *)

val busy_times : t -> float array
(** Cumulative seconds each worker slot spent with a task in flight
    (includes time wasted on attempts that ended in a crash). *)

val map : t -> ('a -> 'b) -> 'a array -> ('b, exn * string) result array
(** Run [f] over every element on the worker processes; the result
    array is in input order. Worker-side task exceptions surface as
    [Error (Remote_failure _, backtrace)]; a task whose retries were
    exhausted as [Error (Worker_lost _, "")]. Every task is attempted
    regardless of earlier failures. If at some point no worker is left
    alive and none can be respawned, the remaining tasks run on the
    calling process (same semantics, no parallelism). Not re-entrant. *)

val shutdown : t -> unit
(** Close task pipes (workers exit on EOF), reap every child, SIGKILL
    stragglers. Idempotent; the pool must not be used afterwards. *)
