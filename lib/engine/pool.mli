(** A fixed-size pool of workers with a shared work queue, behind a
    pluggable execution backend.

    The pool is the single execution substrate for grid-shaped
    computations (experiment registries, parameter sweeps, benchmark
    grids). Results are keyed by task index and merged in submission
    order, so parallel output is byte-identical to a serial run —
    callers never observe scheduling order, whatever the backend.

    Three backends:
    - {!Domains} (default): worker domains inside this process. At
      [jobs = 1] no domain is spawned and tasks run serially on the
      calling domain (the fallback for single-core hosts and for
      determinism baselines).
    - {!Procs}: worker {e processes} ({!Proc}): fork/exec of the
      current executable, tasks shipped as marshalled frames over
      pipes. Crashing or wedged workers are detected (EOF / per-task
      timeout), their in-flight task is requeued on a surviving worker
      with bounded [retries], and the dead worker is replaced with
      backoff. Requires every entry point to call
      {!Proc.maybe_run_worker} first; if no worker can be spawned the
      pool degrades to the domain backend (see {!backend} for the
      backend actually in use).
    - {!Remote}: TCP fleet workers ({!Remote}): either loopback
      children of the current executable ([Remote.Exec], the default
      when no [workers] spec is given — [jobs] sets the fleet size) or
      out-of-band daemons addressed by [host:port] ([Remote.Addrs],
      from the CLI's [--workers] list). Same scheduler as {!Procs}
      (shared {!Transport}): crash recovery, bounded retries, per-task
      timeouts, work stealing, and a CAS side-channel so workers share
      artifacts by digest. Requires every entry point to call
      {!Remote.maybe_run_worker} after {!Proc.maybe_run_worker};
      degrades to the domain backend when no worker comes up.

    [jobs] counts workers. The default is
    [Domain.recommended_domain_count () - 1], reserving one core for
    the submitting domain. *)

type t

type backend = Domains | Procs | Remote

val backend_name : backend -> string
(** ["domains"] / ["procs"] / ["remote"] — the identity threaded into
    metrics and CLI output. *)

exception Task_failed of { index : int; exn : exn; backtrace : string }
(** Raised by {!map} when a task failed. Every task is still attempted
    (the queue keeps draining; a raising task cannot deadlock or poison
    the pool) and the error reported is the one with the lowest task
    index, so the failure surfaced is deterministic. Under the
    {!Procs} backend [exn] is {!Proc.Remote_failure} (the task raised
    in a worker — not retried) or {!Proc.Worker_lost} (the worker died
    and bounded retries were exhausted). *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val create :
  ?backend:backend ->
  ?retries:int ->
  ?timeout_s:float ->
  ?jobs:int ->
  ?workers:Remote.spec ->
  unit ->
  t
(** Spawn the workers ([jobs] defaults to {!default_jobs}; values
    [< 1] are clamped to [1]). [backend] defaults to {!Domains}.
    [retries] (default [2]) and [timeout_s] (default none) only apply
    to the {!Procs} and {!Remote} backends: how many times a task
    whose worker died is re-executed, and how long one task may run
    before its worker is killed and replaced. [workers] only applies
    to {!Remote} and selects the fleet ([Remote.Exec jobs] when
    omitted); when it names remote addresses, {!jobs} reports the
    fleet size. *)

val jobs : t -> int

val backend : t -> backend
(** The backend actually in use — {!Domains} when a {!Procs} or
    {!Remote} request degraded because no worker could be brought
    up. *)

val restarts : t -> int
(** Workers lost and replaced so far ([0] under the domain backend). *)

val busy_times : t -> float array
(** Cumulative busy seconds per worker slot. For a pool with workers
    (domains or processes) the array has one slot per worker and
    excludes time spent by the calling domain on serial fast paths, so
    the max/mean ratio of these is an unskewed load-balance statistic:
    [1.0] is perfectly balanced, higher means some worker was pinned
    by long tasks. A pool without workers ([jobs = 1], domain backend)
    reports the single caller slot. Safe to call between {!map}s;
    reading it concurrently with a running [map] gives a consistent
    but mid-run snapshot. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] runs [f] over every element, in parallel when
    the pool has workers, and returns results in input order. Safe to
    call repeatedly; not re-entrant from inside a worker task. Under
    the {!Procs} backend tasks must be pure (or idempotent): crash
    recovery re-executes the in-flight task, i.e. at-least-once
    execution with exactly-once result merging. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Join all workers (reaping worker processes under {!Procs}). The
    pool must not be used afterwards. Idempotent. *)

val with_pool :
  ?backend:backend ->
  ?retries:int ->
  ?timeout_s:float ->
  ?jobs:int ->
  ?workers:Remote.spec ->
  (t -> 'a) ->
  'a
(** [create], run, then {!shutdown} (also on exception). *)
