(** A fixed-size pool of worker domains with a shared work queue.

    The pool is the single execution substrate for grid-shaped
    computations (experiment registries, parameter sweeps, benchmark
    grids). Results are keyed by task index and merged in submission
    order, so parallel output is byte-identical to a serial run —
    callers never observe scheduling order.

    [jobs] counts worker domains. At [jobs = 1] no domain is spawned
    and tasks run serially on the calling domain (the fallback for
    single-core hosts and for determinism baselines). The default is
    [Domain.recommended_domain_count () - 1], reserving one core for
    the submitting domain. *)

type t

exception Task_failed of { index : int; exn : exn; backtrace : string }
(** Raised by {!map} when a task raised. Every task is still attempted
    (the queue keeps draining; a raising task cannot deadlock or poison
    the pool) and the error reported is the one with the lowest task
    index, so the failure surfaced is deterministic. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val create : ?jobs:int -> unit -> t
(** Spawn the worker domains ([jobs] defaults to {!default_jobs};
    values [< 1] are clamped to [1], which spawns none). *)

val jobs : t -> int

val busy_times : t -> float array
(** Cumulative busy seconds per worker slot (length {!jobs}; the serial
    fallback accumulates into slot [0]). The max/mean ratio of these is
    the pool's load-balance statistic: [1.0] is perfectly balanced,
    higher means some domain was pinned by long tasks. Safe to call
    between {!map}s; reading it concurrently with a running [map] gives
    a consistent but mid-run snapshot. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] runs [f] over every element, in parallel when
    the pool has workers, and returns results in input order. Safe to
    call repeatedly and from tasks' completion; not re-entrant from
    inside a worker task. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception). *)
