(* Shared worker-transport machinery. See transport.mli for the contract.

   Wire protocol (both directions): length-prefixed Marshal frames —
   a 4-byte big-endian payload length followed by the payload bytes.
   Frames from parent to worker:
     1. one config frame (plain Marshal): the parent's disk-cache
        configuration, applied before the worker signals readiness;
     2. [down] frames: tasks ([(index, thunk)] marshalled with
        [Marshal.Closures] — valid because worker and parent run the
        same executable image, which the unmarshaller checks against
        the code-segment digest) and CAS-fetch replies.
   Frames from worker to parent:
     1. a magic byte-string, then one "ready" handshake frame (this is
        also how spawn/connect failures are detected: a peer that dies
        before the handshake reads as EOF and the transport reports
        Spawn_failure);
     2. [up] frames: task results ([(index, (Ok value | Error
        (printed_exn, bt)))]) and CAS traffic ([Cas_get] blocks the
        worker until the parent's reply; [Cas_put] is fire-and-forget).

   CAS frames can only interleave with task frames in one safe order:
   the parent never dispatches to a worker with a job in flight, and an
   idle worker has no running task to issue CAS requests from — so the
   only down-frame a busy worker can receive is the reply to its own
   [Cas_get], and the worker-side blocking read in the fetch hook
   cannot swallow a task.

   The magic resynchronizes the stream: module initializers of the
   host executable run before the worker entry point and may print to
   stdout — which, in a pipe worker, IS the result channel
   (qcheck-alcotest's seed banner does exactly this). The parent
   discards bytes until the magic, after which the worker has
   redirected fd 1 away and owns the stream exclusively.

   Crash detection needs no SIGCHLD handler: a dead worker's result
   channel reads EOF (or the task channel writes EPIPE), which is both
   prompt and race-free under [select]; process-backed endpoints reap
   the corpse with [waitpid] in their close hook. *)

exception Spawn_failure of string
exception Remote_failure of { message : string }
exception Worker_lost of { attempts : int; reason : string }
exception Frame_too_large of { bytes : int }
exception Auth_failure

let now = Unix.gettimeofday

(* --- framed IO over raw fds ---------------------------------------------- *)

(* Raw [Unix.read]/[Unix.write] loops, not channels: [select] must see
   exactly what has been consumed, and channel buffering would hide
   already-read bytes from it. *)

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let write_all fd buf pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = restart_on_intr (fun () -> Unix.write fd buf !pos !len) in
    pos := !pos + n;
    len := !len - n
  done

let read_all fd buf pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = restart_on_intr (fun () -> Unix.read fd buf !pos !len) in
    if n = 0 then raise End_of_file;
    pos := !pos + n;
    len := !len - n
  done

(* A length prefix larger than any frame we could legitimately send is
   stream corruption (a truncated header resynchronized mid-stream, or
   garbage bytes); treating it as EOF routes it into the ordinary
   crash-recovery path instead of attempting a gigantic allocation. *)
let max_frame_bytes = 1 lsl 30

let write_frame fd payload =
  let len = String.length payload in
  (* A payload past the cap would wrap the 4-byte header and corrupt
     the stream — the peer would resync into garbage and the failure
     would surface much later as inexplicable Worker_lost retries.
     Refuse before writing anything, so the channel stays usable. *)
  if len > max_frame_bytes then raise (Frame_too_large { bytes = len });
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  write_all fd hdr 0 4;
  write_all fd (Bytes.unsafe_of_string payload) 0 len

let read_frame fd =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame_bytes then raise End_of_file;
  let buf = Bytes.create len in
  read_all fd buf 0 len;
  Bytes.unsafe_to_string buf

(* Stream-resync marker the worker emits before its first frame (see
   the header comment). '\001' appears only at position 0, so the
   parent's rolling scan needs no failure table: on mismatch it
   restarts the match at 1 iff the offending byte is '\001'. *)
let magic = "\001\253tiered-engine-worker\253\002"

(* --- shared-secret auth ----------------------------------------------------- *)

(* Task frames carry [Marshal.Closures] payloads, i.e. whoever can
   speak the protocol gets arbitrary code execution in the worker. A
   pipe worker inherits its fds and needs no secret (the channel is
   private by construction), but a TCP worker must authenticate its
   parent before unmarshalling a single byte: the parent's very first
   frame is the shared token, raw bytes, never [Marshal]ed, compared in
   constant time under its own small length cap so an unauthenticated
   peer can neither probe the comparison nor force a big allocation.
   The worker proves knowledge of the same token back by folding it
   into the ready frame, which {!handshake} checks — so a parent also
   cannot be fed results by an impostor that guessed the port. *)

let max_auth_bytes = 4096

let const_time_equal a b =
  String.length a = String.length b
  &&
  let d = ref 0 in
  String.iteri (fun i c -> d := !d lor (Char.code c lxor Char.code b.[i])) a;
  !d = 0

let write_auth fd ~token = write_frame fd token

let read_auth fd ~expect =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_auth_bytes then raise Auth_failure;
  let buf = Bytes.create len in
  read_all fd buf 0 len;
  if not (const_time_equal (Bytes.unsafe_to_string buf) expect) then
    raise Auth_failure

(* --- wire frames ----------------------------------------------------------- *)

type worker_config = { disk_dir : string option; disk_max : int option }

(* A worker-side task outcome. The value travels as [Obj.t] (the
   parent knows the real type); exceptions travel as printed strings
   because exception identity does not survive unmarshalling. *)
type wire_result = (Obj.t, string * string) result

type down =
  | Task of int * (unit -> Obj.t)
  | Cas_found of string
  | Cas_missing

type up =
  | Result of int * wire_result
  | Cas_get of string * string
  | Cas_put of string * string * string

let current_config () =
  { disk_dir = Cache.disk_dir (); disk_max = Cache.disk_max_bytes () }

let write_config fd = write_frame fd (Marshal.to_string (current_config ()) [])

(* --- process helpers ------------------------------------------------------- *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
let kill_noerr pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_noerr pid =
  try ignore (restart_on_intr (fun () -> Unix.waitpid [] pid))
  with Unix.Unix_error _ -> ()

(* Wait up to ~1s for a child that was asked to exit (its task channel
   was closed); SIGKILL stragglers. *)
let reap_with_grace pid =
  let rec reap tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if tries <= 0 then begin
          kill_noerr pid;
          reap_noerr pid
        end
        else begin
          Unix.sleepf 0.01;
          reap (tries - 1)
        end
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap tries
    | exception Unix.Unix_error _ -> ()
  in
  reap 100

(* --- worker side ----------------------------------------------------------- *)

let serve_worker ~in_fd ~out_fd ?(token = "") () =
  (* Authenticate the parent before trusting anything on the stream:
     every later frame is unmarshalled, and task frames carry
     closures. *)
  read_auth in_fd ~expect:token;
  let config : worker_config = Marshal.from_string (read_frame in_fd) 0 in
  (match config.disk_dir with
  | Some dir -> Cache.enable_disk ?max_bytes:config.disk_max ~dir ()
  | None -> Cache.disable_disk ());
  (* Route cache misses through the parent: the parent answers from its
     CAS (or its in-memory artifact store), so a cell computed by any
     worker in the fleet is never recomputed by another. *)
  Cache.set_remote_tier
    (Some
       {
         Cache.fetch =
           (fun ~cache ~key_digest ->
             write_frame out_fd
               (Marshal.to_string (Cas_get (cache, key_digest))
                  [ Marshal.Closures ]);
             match (Marshal.from_string (read_frame in_fd) 0 : down) with
             | Cas_found payload -> Some payload
             | Cas_missing -> None
             | Task _ -> failwith "task frame received during CAS fetch");
         Cache.publish =
           (fun ~cache ~key_digest ~payload ->
             write_frame out_fd
               (Marshal.to_string
                  (Cas_put (cache, key_digest, payload))
                  [ Marshal.Closures ]));
       });
  Fun.protect
    ~finally:(fun () -> Cache.set_remote_tier None)
    (fun () ->
      write_all out_fd (Bytes.unsafe_of_string magic) 0 (String.length magic);
      write_frame out_fd ("ready" ^ token);
      let rec loop () =
        match read_frame in_fd with
        | exception End_of_file -> ()
        | frame ->
            (match (Marshal.from_string frame 0 : down) with
            | Task (seq, thunk) ->
                let outcome : wire_result =
                  match thunk () with
                  | v -> Ok v
                  | exception exn ->
                      Error (Printexc.to_string exn, Printexc.get_backtrace ())
                in
                let payload =
                  Marshal.to_string (Result (seq, outcome)) [ Marshal.Closures ]
                in
                let payload =
                  (* An oversize result must fail the task, not tear the
                     stream: report it as a deterministic task error. *)
                  if String.length payload <= max_frame_bytes then payload
                  else
                    Marshal.to_string
                      (Result
                         ( seq,
                           (Error
                              ( Printf.sprintf
                                  "task result frame of %d bytes exceeds the \
                                   %d-byte frame cap"
                                  (String.length payload) max_frame_bytes,
                                "" )
                             : wire_result) ))
                      [ Marshal.Closures ]
                in
                write_frame out_fd payload
            | Cas_found _ | Cas_missing ->
                (* A CAS reply with no fetch outstanding: stale frame
                   from a resynchronized stream; drop it. *)
                ());
            loop ()
      in
      loop ())

(* --- parent-side handshake ------------------------------------------------- *)

let handshake ~deadline_s ?(token = "") fd =
  (* The handshake doubles as the spawn-failure detector: a peer that
     could not exec (or crashed in init) reads as EOF. Before the
     handshake frame the peer's stdout may carry arbitrary init-time
     noise (e.g. a test harness's seed banner), so scan byte-by-byte
     until the magic marker. *)
  let deadline = now () +. deadline_s in
  let wait_readable () =
    let remaining = deadline -. now () in
    if remaining <= 0. then failwith "worker handshake timed out";
    match restart_on_intr (fun () -> Unix.select [ fd ] [] [] remaining) with
    | [], _, _ -> failwith "worker handshake timed out"
    | _ -> ()
  in
  let byte = Bytes.create 1 in
  let mlen = String.length magic in
  let rec scan matched =
    if matched < mlen then begin
      wait_readable ();
      if restart_on_intr (fun () -> Unix.read fd byte 0 1) = 0 then
        raise End_of_file;
      let c = Bytes.get byte 0 in
      if Char.equal c magic.[matched] then scan (matched + 1)
      else scan (if Char.equal c magic.[0] then 1 else 0)
    end
  in
  scan 0;
  wait_readable ();
  let r = read_frame fd in
  (* The worker folds the shared token into its ready frame, proving it
     read (and accepted) the parent's auth preamble — mutual auth for
     free, and what rejects an impostor squatting on a worker's port. *)
  if not (const_time_equal r ("ready" ^ token)) then
    failwith "bad worker handshake"

(* --- parent-side artifact store -------------------------------------------- *)

module Store = struct
  (* Where [Cas_get]/[Cas_put] frames land. Disk-backed through
     {!Cache}'s CAS when a disk tier is configured; otherwise a
     bounded in-memory table so workers still share artifacts within
     one parent process. Accessed only from the single-threaded
     scheduler loop. *)

  let mem_budget = 256 * 1024 * 1024

  type t = { mem : (string, string) Hashtbl.t; mutable bytes : int }

  let create () = { mem = Hashtbl.create 64; bytes = 0 }
  let slot ~cache ~key_digest = cache ^ "\000" ^ key_digest

  let get t ~cache ~key_digest =
    match Cache.raw_payload ~cache ~key_digest with
    | Some _ as hit -> hit
    | None -> Hashtbl.find_opt t.mem (slot ~cache ~key_digest)

  let put t ~cache ~key_digest ~payload =
    if Option.is_some (Cache.disk_dir ()) then
      Cache.store_raw_payload ~cache ~key_digest ~payload
    else begin
      let s = slot ~cache ~key_digest in
      if
        (not (Hashtbl.mem t.mem s))
        && t.bytes + String.length payload <= mem_budget
      then begin
        Hashtbl.replace t.mem s payload;
        t.bytes <- t.bytes + String.length payload
      end
    end
end

(* --- scheduler ------------------------------------------------------------- *)

(* A connected, handshaken worker as the scheduler sees it: two fds to
   select/write on and two transport-specific hooks. [kill] forces the
   peer down right now (SIGKILL for a child process, close for a bare
   socket); [close] releases everything the endpoint holds, gracefully
   where possible. The crash path runs kill-then-close; the graceful
   path runs close alone. *)
type endpoint = {
  ep_send : Unix.file_descr;
  ep_recv : Unix.file_descr;
  ep_kill : unit -> unit;
  ep_close : unit -> unit;
}

type live = { ep : endpoint; mutable job : (int * float) option }

type sched = {
  s_n : int;
  s_retries : int;
  s_timeout : float option;
  s_steal_after : float;
  s_slots : live option array;
  s_busy : float array;
  s_respawn : int -> endpoint option;
  s_respawn_at : float array;
      (* Earliest next respawn attempt per empty slot; [infinity] means
         none is scheduled. A failed respawn (e.g. a standalone daemon
         still chewing on its severed task) must not be retried in a
         tight loop from the scheduler — attempts are deferred with
         exponential backoff and retried from [map] while work is
         pending, so the slot is recovered instead of silently lost. *)
  s_respawn_backoff : float array;
  s_store : Store.t;
  mutable s_restarts : int;
  mutable s_shut : bool;
}

let make_sched ?(retries = 2) ?timeout_s ?(steal_after = 1.0) ~respawn
    endpoints =
  let n = Array.length endpoints in
  {
    s_n = n;
    s_retries = max 0 retries;
    s_timeout = timeout_s;
    s_steal_after = Float.max 0.01 steal_after;
    s_slots = Array.map (Option.map (fun ep -> { ep; job = None })) endpoints;
    s_busy = Array.make n 0.;
    s_respawn = respawn;
    s_respawn_at = Array.make n Float.infinity;
    s_respawn_backoff = Array.make n 1.0;
    s_store = Store.create ();
    s_restarts = 0;
    s_shut = false;
  }

let workers t = t.s_n
let restarts t = t.s_restarts
let busy_times t = Array.copy t.s_busy
let store t = t.s_store

let map (type a b) t (f : a -> b) (tasks : a array) :
    (b, exn * string) result array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results : (b, exn * string) result option array = Array.make n None in
    let pending = Queue.create () in
    (* Per-task bookkeeping replacing the old (index, attempt) queue
       pairs — work stealing means a task can be in flight on two
       workers at once, so attempts must be counted centrally. *)
    let queued = Array.make n false in
    let failures = Array.make n 0 in
    let copies = Array.make n 0 in
    for i = 0 to n - 1 do
      Queue.add i pending;
      queued.(i) <- true
    done;
    let completed = ref 0 in
    let crashes = ref 0 in
    let record i r =
      if Option.is_none results.(i) then begin
        results.(i) <- Some r;
        incr completed
      end
    in
    (* Last resort when every worker is gone and none respawns: run on
       the calling process with identical semantics. *)
    let run_local i =
      record i
        (match f tasks.(i) with
        | v -> Ok v
        | exception exn -> Error (exn, Printexc.get_backtrace ()))
    in
    let send_task w i =
      let x = tasks.(i) in
      let thunk () = Obj.repr (f x) in
      write_frame w.ep.ep_send
        (Marshal.to_string (Task (i, thunk)) [ Marshal.Closures ]);
      w.job <- Some (i, now ());
      copies.(i) <- copies.(i) + 1
    in
    (* Detach a worker from its in-flight task: charge busy time, drop
       the copy count. Returns the task index. *)
    let retire si w =
      match w.job with
      | None -> None
      | Some (i, started) ->
          t.s_busy.(si) <- t.s_busy.(si) +. (now () -. started);
          copies.(i) <- copies.(i) - 1;
          w.job <- None;
          Some i
    in
    let drop_worker si w =
      w.ep.ep_kill ();
      w.ep.ep_close ();
      t.s_slots.(si) <- None
    in
    let try_respawn si =
      match t.s_respawn si with
      | Some ep ->
          t.s_slots.(si) <- Some { ep; job = None };
          t.s_respawn_at.(si) <- Float.infinity;
          t.s_respawn_backoff.(si) <- 1.0
      | None ->
          t.s_respawn_at.(si) <- now () +. t.s_respawn_backoff.(si);
          t.s_respawn_backoff.(si) <-
            Float.min 10. (2. *. t.s_respawn_backoff.(si))
    in
    (* A worker died (EOF / EPIPE / timeout / garbage frames): drop it,
       requeue its in-flight task unless another copy is still running
       (bounded by max_retries), back off briefly and respawn a
       replacement into the same slot. *)
    let handle_crash si w reason =
      incr crashes;
      t.s_restarts <- t.s_restarts + 1;
      let job = retire si w in
      drop_worker si w;
      (match job with
      | Some i when Option.is_none results.(i) ->
          failures.(i) <- failures.(i) + 1;
          if copies.(i) = 0 then begin
            if failures.(i) > t.s_retries then
              record i
                (Error (Worker_lost { attempts = failures.(i); reason }, ""))
            else if not queued.(i) then begin
              Queue.add i pending;
              queued.(i) <- true
            end
          end
      | Some _ | None -> ());
      Unix.sleepf
        (Float.min 0.5 (0.02 *. (2. ** float_of_int (Stdlib.min !crashes 5))));
      try_respawn si
    in
    (* Retry deferred respawns for empty slots while work remains —
       a standalone daemon that finished (or was restarted) after a
       severed connection picks its slot back up mid-map. *)
    let retry_respawns () =
      if not (Queue.is_empty pending) then
        Array.iteri
          (fun si slot ->
            match slot with
            | Some _ -> ()
            | None -> if now () >= t.s_respawn_at.(si) then try_respawn si)
          t.s_slots
    in
    let cas_reply w hit =
      let frame =
        match hit with Some p -> Cas_found p | None -> Cas_missing
      in
      write_frame w.ep.ep_send (Marshal.to_string frame [ Marshal.Closures ])
    in
    let receive si w =
      match read_frame w.ep.ep_recv with
      | exception End_of_file -> handle_crash si w "worker exited (EOF)"
      | exception Unix.Unix_error (e, _, _) ->
          handle_crash si w (Unix.error_message e)
      | frame -> (
          match (Marshal.from_string frame 0 : up) with
          | exception _ ->
              (* Bytes that are not a Marshal frame at all: the stream
                 is corrupt, drop the worker. *)
              handle_crash si w "malformed frame"
          | Result (seq, outcome) -> (
              match w.job with
              | Some (i, _) when i = seq ->
                  ignore (retire si w : int option);
                  record seq
                    (match outcome with
                    | Ok v -> Ok (Obj.obj v : b)
                    | Error (msg, bt) ->
                        Error (Remote_failure { message = msg }, bt))
              | _ ->
                  (* A frame for a task we no longer track: the protocol
                     is out of sync, drop the worker. *)
                  handle_crash si w "protocol mismatch")
          | Cas_get (cache, key_digest) -> (
              match cas_reply w (Store.get t.s_store ~cache ~key_digest) with
              | () -> ()
              | exception (Unix.Unix_error _ | Sys_error _ | Frame_too_large _)
                ->
                  (* The worker is blocked waiting on this reply; if it
                     cannot be delivered, the only safe move is to drop
                     the worker and retry its task elsewhere. *)
                  handle_crash si w "CAS reply failed")
          | Cas_put (cache, key_digest, payload) ->
              Store.put t.s_store ~cache ~key_digest ~payload)
    in
    let next_pending () =
      let rec go () =
        match Queue.take_opt pending with
        | None -> None
        | Some i ->
            queued.(i) <- false;
            (* A duplicate may have finished while this copy waited. *)
            if Option.is_none results.(i) then Some i else go ()
      in
      go ()
    in
    let dispatch () =
      Array.iteri
        (fun si slot ->
          match slot with
          | Some w when Option.is_none w.job && not (Queue.is_empty pending)
            -> (
              match next_pending () with
              | None -> ()
              | Some i -> (
                  match send_task w i with
                  | () -> ()
                  | exception Frame_too_large { bytes } ->
                      (* The marshalled task itself exceeds the frame
                         cap: deterministic, so fail the task rather
                         than blaming (and restarting) the worker. *)
                      record i (Error (Frame_too_large { bytes }, ""))
                  | exception (Unix.Unix_error _ | Sys_error _) ->
                      (* The worker died while idle; the task never
                         reached it, so requeue without charging an
                         attempt. *)
                      Queue.add i pending;
                      queued.(i) <- true;
                      handle_crash si w "task dispatch failed"))
          | _ -> ())
        t.s_slots
    in
    (* Work stealing as speculative tail duplication: once the queue is
       drained, an idle worker re-runs the oldest single-copy in-flight
       task (age-gated so short tasks never duplicate) instead of
       sitting out the tail behind one slow host. First result wins;
       the laggard's late frame is matched against its own job and
       merging stays exactly-once. *)
    let steal () =
      if Queue.is_empty pending then begin
        let tnow = now () in
        Array.iteri
          (fun si slot ->
            match slot with
            | Some w when Option.is_none w.job -> (
                let victim = ref None in
                Array.iter
                  (fun other ->
                    match other with
                    | Some o -> (
                        match o.job with
                        | Some (i, started)
                          when copies.(i) = 1
                               && Option.is_none results.(i)
                               && tnow -. started >= t.s_steal_after -> (
                            match !victim with
                            | Some (_, s0) when s0 <= started -> ()
                            | _ -> victim := Some (i, started))
                        | _ -> ())
                    | None -> ())
                  t.s_slots;
                match !victim with
                | None -> ()
                | Some (i, _) -> (
                    match send_task w i with
                    | () -> ()
                    | exception Frame_too_large _ ->
                        (* Cannot have happened on the victim's copy
                           without failing there first; skip the steal. *)
                        ()
                    | exception (Unix.Unix_error _ | Sys_error _) ->
                        (* The task is still running elsewhere; only the
                           thief is lost. *)
                        handle_crash si w "task dispatch failed"))
            | _ -> ())
          t.s_slots
      end
    in
    while !completed < n do
      retry_respawns ();
      dispatch ();
      steal ();
      let in_flight =
        Array.to_seq t.s_slots
        |> Seq.filter_map (function
             | Some w when Option.is_some w.job -> Some w
             | _ -> None)
        |> List.of_seq
      in
      if in_flight = [] then begin
        (* Nothing is running. If workers survive, the next loop
           iteration dispatches; if none are left, drain locally. *)
        if Array.for_all Option.is_none t.s_slots then
          while not (Queue.is_empty pending) do
            match next_pending () with
            | Some i -> run_local i
            | None -> ()
          done
      end
      else begin
        let tnow = now () in
        let has_idle =
          Array.exists
            (function Some w -> Option.is_none w.job | None -> false)
            t.s_slots
        in
        let tmo =
          let acc =
            match t.s_timeout with
            | None -> Float.infinity
            | Some ts ->
                List.fold_left
                  (fun acc w ->
                    match w.job with
                    | Some (_, started) ->
                        Float.min acc
                          (Float.max 0.001 (started +. ts -. tnow))
                    | None -> acc)
                  ts in_flight
          in
          (* Also wake when the oldest single-copy task crosses the
             steal age, so an idle worker picks it up promptly. *)
          let acc =
            if has_idle then
              List.fold_left
                (fun acc w ->
                  match w.job with
                  | Some (i, started) when copies.(i) = 1 ->
                      Float.min acc
                        (Float.max 0.001
                           (started +. t.s_steal_after -. tnow))
                  | _ -> acc)
                acc in_flight
            else acc
          in
          (* And for deferred respawn retries, so a recovered daemon
             rejoins promptly while tasks are still pending. *)
          let acc =
            let a = ref acc in
            if not (Queue.is_empty pending) then
              Array.iteri
                (fun si slot ->
                  match slot with
                  | None when Float.is_finite t.s_respawn_at.(si) ->
                      a :=
                        Float.min !a
                          (Float.max 0.001 (t.s_respawn_at.(si) -. tnow))
                  | _ -> ())
                t.s_slots;
            !a
          in
          if Float.is_finite acc then acc else -1.
        in
        let fds = List.map (fun w -> w.ep.ep_recv) in_flight in
        match restart_on_intr (fun () -> Unix.select fds [] [] tmo) with
        | [], _, _ -> (
            (* Timer wake-up: either a steal just became possible (the
               next loop iteration handles it) or a task exceeded its
               timeout — kill every worker over the limit. *)
            match t.s_timeout with
            | None -> ()
            | Some ts ->
                let tnow = now () in
                Array.iteri
                  (fun si slot ->
                    match slot with
                    | Some w -> (
                        match w.job with
                        | Some (_, started) when tnow -. started >= ts ->
                            handle_crash si w
                              (Printf.sprintf "task exceeded %.3fs timeout" ts)
                        | _ -> ())
                    | None -> ())
                  t.s_slots)
        | readable, _, _ ->
            Array.iteri
              (fun si slot ->
                match slot with
                | Some w when List.memq w.ep.ep_recv readable -> receive si w
                | _ -> ())
              t.s_slots
      end
    done;
    (* Laggards: workers still chewing on a task whose duplicate
       already won. Their eventual result frame would cross into the
       next map's protocol stream, so replace them now. Not counted as
       restarts — nothing failed. *)
    Array.iteri
      (fun si slot ->
        match slot with
        | Some w when Option.is_some w.job ->
            ignore (retire si w : int option);
            drop_worker si w;
            (match t.s_respawn si with
            | Some ep -> t.s_slots.(si) <- Some { ep; job = None }
            | None -> ())
        | _ -> ())
      t.s_slots;
    Array.map (function Some r -> r | None -> assert false) results
  end

let shutdown t =
  if not t.s_shut then begin
    t.s_shut <- true;
    Array.iteri
      (fun si slot ->
        match slot with
        | None -> ()
        | Some w ->
            t.s_slots.(si) <- None;
            w.ep.ep_close ())
      t.s_slots
  end
