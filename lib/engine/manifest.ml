(* Declarative, resumable sweep manifests. See manifest.mli.

   File format (plain text, one record per line):

     tiered-sweep-manifest v1
     grid <hex digest of the cell table>
     cells <count>
     cell <index> <input key digest> <name>
     ...
     done <index> <artifact content digest>
     ...

   The header and cell table are written once, atomically (tmp +
   rename); [done] records are appended and flushed one line at a
   time as cells land. A crash can therefore only lose or tear the
   final [done] line — the loader ignores unparsable or truncated
   trailing records, and a lost record merely means one CAS probe
   finds the artifact anyway on resume. Re-recording an index
   overrides (last record wins). *)

type cell = { index : int; name : string; input_digest : string }

type t = {
  path : string;
  cells : cell array;
  completed : (int, string) Hashtbl.t;
  mutable oc : out_channel option;
}

let header_line = "tiered-sweep-manifest v1"

let valid_name n =
  String.length n > 0
  && String.for_all (fun c -> c > ' ' && Char.code c < 127) n

let cell_line c = Printf.sprintf "cell %d %s %s" c.index c.input_digest c.name

let grid_digest cells =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map cell_line cells)))

let render cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b header_line;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "grid %s\n" (grid_digest cells));
  Buffer.add_string b (Printf.sprintf "cells %d\n" (List.length cells));
  List.iter
    (fun c ->
      Buffer.add_string b (cell_line c);
      Buffer.add_char b '\n')
    cells;
  Buffer.contents b

let write_initial ~path cells =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render cells));
  Sys.rename tmp path

let fail path fmt =
  Printf.ksprintf (fun msg -> failwith (Printf.sprintf "manifest %s: %s" path msg)) fmt

let check_cells path cells =
  if cells = [] then fail path "empty cell table";
  List.iteri
    (fun i c ->
      if c.index <> i then fail path "cell %d carries index %d" i c.index;
      if not (valid_name c.name) then
        fail path "cell %d has an invalid name %S (no spaces/control chars)" i c.name;
      if not (Cas.is_digest c.input_digest) then
        fail path "cell %d has an invalid input digest %S" i c.input_digest)
    cells

let load ~path cells =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  let lines = List.rev !lines in
  let expect_grid = grid_digest cells in
  let carr = Array.of_list cells in
  let n_cells = Array.length carr in
  (match lines with
  | first :: _ when String.equal first header_line -> ()
  | _ -> fail path "not a sweep manifest (bad header)");
  let completed = Hashtbl.create 16 in
  let seen_grid = ref None in
  let seen_count = ref None in
  let cell_seen = Array.make n_cells false in
  let n_lines = List.length lines in
  List.iteri
    (fun lineno line ->
      match String.split_on_char ' ' line with
      | [ "grid"; d ] -> seen_grid := Some d
      | [ "cells"; n ] -> seen_count := int_of_string_opt n
      | [ "cell"; i; d; name ] -> (
          match int_of_string_opt i with
          | Some i when i >= 0 && i < n_cells ->
              let expect = carr.(i) in
              if
                not
                  (String.equal d expect.input_digest
                  && String.equal name expect.name)
              then
                fail path
                  "cell %d does not match this sweep (manifest %s %s, sweep %s %s) — \
                   the manifest belongs to a different grid"
                  i d name expect.input_digest expect.name;
              cell_seen.(i) <- true
          | Some i -> fail path "cell index %d out of range" i
          | None -> fail path "unreadable cell record on line %d" (lineno + 1))
      | [ "done"; i; d ] -> (
          (* Appended records: tolerate tears — a truncated or garbled
             trailing line is skipped, the CAS probe recovers it. *)
          match int_of_string_opt i with
          | Some i when i >= 0 && i < n_cells && Cas.is_digest d ->
              Hashtbl.replace completed i d
          | Some _ | None -> ())
      | _ when String.equal line header_line -> ()
      | _ ->
          (* Unknown or torn record: ignore if it looks like an
             appended tail, otherwise it is structural corruption. A
             tear can cut "done <i> <digest>\n" anywhere, including
             inside the keyword itself — so the final line is also
             tolerated when it is any proper prefix of "done " (e.g. a
             bare "done"). *)
          let keyword = "done " in
          let starts_with_done =
            String.length line >= String.length keyword
            && String.equal (String.sub line 0 (String.length keyword)) keyword
          in
          let torn_trailing_prefix =
            lineno = n_lines - 1
            && String.length line < String.length keyword
            && String.equal line (String.sub keyword 0 (String.length line))
          in
          if starts_with_done || torn_trailing_prefix then ()
          else fail path "unrecognized record on line %d: %S" (lineno + 1) line)
    lines;
  (match !seen_grid with
  | Some d when String.equal d expect_grid -> ()
  | Some _ ->
      fail path
        "grid digest mismatch — the manifest was written for different sweep \
         parameters; pass a fresh manifest file"
  | None -> fail path "missing grid record");
  (match !seen_count with
  | Some n when n = n_cells -> ()
  | Some n -> fail path "cell count mismatch (manifest %d, sweep %d)" n n_cells
  | None -> fail path "missing cells record");
  Array.iteri
    (fun i seen -> if not seen then fail path "cell %d missing from manifest" i)
    cell_seen;
  { path; cells = carr; completed; oc = None }

let load_or_create ~path cells =
  check_cells path cells;
  if Sys.file_exists path then load ~path cells
  else begin
    write_initial ~path cells;
    {
      path;
      cells = Array.of_list cells;
      completed = Hashtbl.create 16;
      oc = None;
    }
  end

let cells t = t.cells
let completed t = Hashtbl.length t.completed
let artifact t index = Hashtbl.find_opt t.completed index

let record_done t ~index ~artifact =
  let fresh =
    match Hashtbl.find_opt t.completed index with
    | Some d when String.equal d artifact -> false
    | Some _ | None -> true
  in
  if fresh then begin
    Hashtbl.replace t.completed index artifact;
    let oc =
      match t.oc with
      | Some oc -> oc
      | None ->
          let oc =
            open_out_gen [ Open_append; Open_creat ] 0o644 t.path
          in
          t.oc <- Some oc;
          oc
    in
    output_string oc (Printf.sprintf "done %d %s\n" index artifact);
    (* One line per record, flushed as it lands: an interrupted sweep
       keeps every completed cell. *)
    flush oc
  end

let close t =
  match t.oc with
  | Some oc ->
      t.oc <- None;
      close_out_noerr oc
  | None -> ()
