exception Task_failed of { index : int; exn : exn; backtrace : string }

type backend = Domains | Procs | Remote

let backend_name = function
  | Domains -> "domains"
  | Procs -> "procs"
  | Remote -> "remote"

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  busy : float array;
      (* Cumulative per-worker-domain busy seconds, one slot per worker
         domain. Guarded by [mutex]. *)
  mutable caller_busy : float;
      (* Busy seconds accumulated on the calling domain by the serial
         fast path. Kept out of [busy] so small maps on a multi-worker
         pool cannot skew the max/mean load-balance statistic towards
         slot 0. Guarded by [mutex]. *)
  proc : Proc.t option;
      (* [Some _] when the subprocess backend is active; the domain
         machinery above is then unused. *)
  remote : Remote.t option;
      (* [Some _] when the TCP fleet backend is active; mutually
         exclusive with [proc]. *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let jobs t = t.n_jobs
let backend t =
  match (t.proc, t.remote) with
  | Some _, _ -> Procs
  | None, Some _ -> Remote
  | None, None -> Domains

let restarts t =
  match (t.proc, t.remote) with
  | Some p, _ -> Proc.restarts p
  | None, Some r -> Remote.restarts r
  | None, None -> 0

let add_busy t idx dt =
  Mutex.lock t.mutex;
  t.busy.(idx) <- t.busy.(idx) +. dt;
  Mutex.unlock t.mutex

let add_caller_busy t dt =
  Mutex.lock t.mutex;
  t.caller_busy <- t.caller_busy +. dt;
  Mutex.unlock t.mutex

let busy_times t =
  match (t.proc, t.remote) with
  | Some p, _ -> Proc.busy_times p
  | None, Some r -> Remote.busy_times r
  | None, None ->
      Mutex.lock t.mutex;
      (* A pool without worker domains has exactly one execution slot —
         the caller — so report that; a pooled run reports only the
         worker slots (caller time is dispatch bookkeeping, not load). *)
      let copy =
        if t.domains = [] then [| t.caller_busy |] else Array.copy t.busy
      in
      Mutex.unlock t.mutex;
      copy

(* Workers loop forever: wait for a thunk, run it, repeat. Thunks are
   pre-wrapped by [map] and never raise, so a raising task can neither
   kill a worker nor leave the queue stuck. *)
let worker t idx =
  (* Without this, [Task_failed.backtrace] would always be empty:
     backtrace recording is per-domain state and fresh domains start
     with it disabled. *)
  Printexc.record_backtrace true;
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          `Run task
      | None ->
          if t.stop then begin
            Mutex.unlock t.mutex;
            `Stop
          end
          else begin
            Condition.wait t.nonempty t.mutex;
            wait ()
          end
    in
    match wait () with
    | `Stop -> ()
    | `Run task ->
        let t0 = Unix.gettimeofday () in
        task ();
        add_busy t idx (Unix.gettimeofday () -. t0);
        next ()
  in
  next ()

let create ?(backend = Domains) ?retries ?timeout_s ?jobs ?workers () =
  let n_jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let proc =
    match backend with
    | Domains | Remote -> None
    | Procs -> (
        match Proc.create ~workers:n_jobs ?retries ?timeout_s () with
        | p -> Some p
        | exception exn ->
            (* Graceful degradation: a host where fork/exec fails (or
               the executable vanished) still runs, just in-process. *)
            Printf.eprintf
              "engine: subprocess backend unavailable (%s); falling back to \
               the domain backend\n\
               %!"
              (Printexc.to_string exn);
            None)
  in
  let remote =
    match backend with
    | Domains | Procs -> None
    | Remote -> (
        let spec =
          match workers with Some s -> s | None -> Remote.Exec n_jobs
        in
        match Remote.create ?retries ?timeout_s spec with
        | r -> Some r
        | exception exn ->
            (* Same degradation story as Procs: a host where the fleet
               cannot come up (no loopback, exec failure, dead remote
               addresses) still runs, just in-process. *)
            Printf.eprintf
              "engine: remote backend unavailable (%s); falling back to the \
               domain backend\n\
               %!"
              (Printexc.to_string exn);
            None)
  in
  let n_jobs = match remote with Some r -> Remote.workers r | None -> n_jobs in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      busy = Array.make n_jobs 0.;
      caller_busy = 0.;
      proc;
      remote;
    }
  in
  (match (proc, remote) with
  | Some _, _ | _, Some _ -> ()
  | None, None ->
      if n_jobs > 1 then
        t.domains <-
          List.init n_jobs (fun i -> Domain.spawn (fun () -> worker t i)));
  t

let shutdown t =
  (match t.proc with Some p -> Proc.shutdown p | None -> ());
  (match t.remote with Some r -> Remote.shutdown r | None -> ());
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?backend ?retries ?timeout_s ?jobs ?workers f =
  let t = create ?backend ?retries ?timeout_s ?jobs ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_task f x =
  match f x with
  | y -> Ok y
  | exception exn ->
      let backtrace = Printexc.get_backtrace () in
      Error (exn, backtrace)

(* Merge in submission order; surface the lowest-index failure so the
   reported error does not depend on scheduling. *)
let collect results =
  Array.iteri
    (fun index slot ->
      match slot with
      | Some (Error (exn, backtrace)) ->
          raise (Task_failed { index; exn; backtrace })
      | Some (Ok _) | None -> ())
    results;
  Array.map
    (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
    results

let map t f tasks =
  match (t.proc, t.remote) with
  | Some p, _ ->
      (* Subprocess backend: Proc merges by task index already; reuse
         [collect] for the deterministic lowest-index failure report. *)
      collect (Array.map (fun r -> Some r) (Proc.map p f tasks))
  | None, Some r ->
      collect (Array.map (fun res -> Some res) (Remote.map r f tasks))
  | None, None ->
      let n = Array.length tasks in
      let results = Array.make n None in
      if t.n_jobs <= 1 || n <= 1 || t.domains = [] then begin
        (* Serial fallback: identical semantics (attempt everything,
           then report the first failure), no domains involved. Busy
           time is attributed to the caller slot, never to worker
           slot 0. *)
        let t0 = Unix.gettimeofday () in
        Array.iteri (fun i x -> results.(i) <- Some (run_task f x)) tasks;
        add_caller_busy t (Unix.gettimeofday () -. t0);
        collect results
      end
      else begin
        let done_mutex = Mutex.create () in
        let all_done = Condition.create () in
        let remaining = ref n in
        let task i () =
          let r = run_task f tasks.(i) in
          Mutex.lock done_mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_mutex
        in
        Mutex.lock t.mutex;
        for i = 0 to n - 1 do
          Queue.add (task i) t.queue
        done;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.mutex;
        Mutex.lock done_mutex;
        while !remaining > 0 do
          Condition.wait all_done done_mutex
        done;
        Mutex.unlock done_mutex;
        collect results
      end

let map_list t f tasks = Array.to_list (map t f (Array.of_list tasks))
