(** Declarative, resumable sweep manifests.

    A manifest names every cell of a sweep grid {e before} anything
    runs: a deterministic plain-text file with one [cell] record per
    grid point, carrying the cell's index, its {e input digest} (the
    {!Cache.key_digest} of everything that determines the cell's
    output) and a human-readable name. As cells complete, [done]
    records are appended — one flushed line per cell, each naming the
    cell's {e artifact digest} in the content-addressed store.

    Resume semantics: on re-invocation with the same grid, the runner
    probes the CAS for each cell's artifact ({!Cache.disk_get} by the
    cell's input key) and schedules {e only} the cells whose artifacts
    are missing — the [done] records are an audit trail, not the
    source of truth, so a manifest that lost its tail to a crash (the
    loader tolerates torn trailing records) or even one whose [done]
    lines were deleted still resumes with zero recomputation as long
    as the CAS holds the artifacts.

    A manifest is bound to its grid: the header pins a digest of the
    full cell table, and loading a manifest against a different grid
    (changed parameter ranges, different strategy, …) fails loudly
    rather than silently mixing sweeps. *)

type t

type cell = { index : int; name : string; input_digest : string }
(** [index] is the cell's position in the sweep's serial order (and in
    the assembled output); [name] a short space-free label like
    ["alpha=2.5"]; [input_digest] the structural digest of the cell's
    inputs. *)

val load_or_create : path:string -> cell list -> t
(** Validate the cell list (indices must be [0..n-1] in order, names
    space-free, digests hex) and either write a fresh manifest
    (atomically) or load an existing one, verifying it describes
    exactly this grid. Raises [Failure] with a descriptive message on
    any mismatch or structural corruption. *)

val cells : t -> cell array

val completed : t -> int
(** Number of cells with a (possibly re-recorded) [done] record. *)

val artifact : t -> int -> string option
(** The recorded artifact digest of a cell, if any (last record wins). *)

val record_done : t -> index:int -> artifact:string -> unit
(** Append-and-flush a [done] record. Recording the same digest for
    the same index again is a no-op, so restored cells can be
    re-recorded idempotently on every resume. *)

val close : t -> unit
(** Close the append channel (records already written are on disk). *)
