(** Content-addressed object files: the storage primitive under
    {!Cache}'s disk tier.

    An {e object} is an immutable file named by the MD5 digest of its
    own bytes ([cas-<digest>.bin]); a {e reference} is a tiny text
    file ([<cache>-<keydigest>.ref]) mapping a cache's structural key
    digest to an object digest. Identical payloads written under any
    number of keys (or by any number of caches/hosts) share one
    object, so a sweep cell computed anywhere is stored — and
    byte-budgeted — exactly once. All writes are atomic (tmp +
    rename); reads verify the object's digest against its name and
    self-repair (remove, report miss) on mismatch, so corruption can
    only ever cost a recomputation.

    This module is pure file plumbing: no locking, no budgets, no
    schema stamps — {!Cache} layers LRU stamps, eviction and schema
    checks on top. *)

val digest_hex : string -> string
(** MD5 of the payload bytes, in hex — the object's identity. *)

val object_name : string -> string
(** [object_name digest] is ["cas-<digest>.bin"]. *)

val object_path : dir:string -> string -> string
val ref_path : dir:string -> cache:string -> key_digest:string -> string

val is_object : string -> bool
(** Filename test: is this directory entry an object file? *)

val is_digest : string -> bool
(** 32 lowercase hex chars — validated before a digest read from disk
    or the wire is used as a file-name component. *)

val read_object : dir:string -> string -> string option
(** The object's payload bytes, or [None] when missing, unreadable or
    failing digest verification (the corrupt file is removed
    best-effort). *)

val write_object : dir:string -> payload:string -> string option
(** Store the payload under its digest (atomic; a no-op when an object
    of that digest and size already exists). Returns the digest, or
    [None] when the write failed. *)

val read_ref : dir:string -> cache:string -> key_digest:string -> string option
(** The object digest a key points at; [None] when absent or malformed. *)

val write_ref :
  dir:string -> cache:string -> key_digest:string -> digest:string -> unit
(** Point a key at an object (atomic, best-effort). *)

val remove_ref : dir:string -> cache:string -> key_digest:string -> unit

val prune_refs : dir:string -> unit
(** Drop references whose object no longer exists (after evictions),
    best-effort — a dangling reference is harmless (it reads as a
    miss) but accumulates. *)
