(* Subprocess worker backend. See proc.mli for the contract.

   Wire protocol (both directions): length-prefixed Marshal frames —
   a 4-byte big-endian payload length followed by the payload bytes.
   Frames from parent to worker:
     1. one config frame (plain Marshal): the parent's disk-cache
        configuration, applied before the worker signals readiness;
     2. task frames: [(index, thunk)] marshalled with
        [Marshal.Closures] — valid because worker and parent run the
        same executable image, which the unmarshaller checks against
        the code-segment digest.
   Frames from worker to parent:
     1. a magic byte-string, then one "ready" handshake frame (this is
        also how exec failures are detected: a child that dies before
        the handshake reads as EOF and create/spawn reports
        Spawn_failure);
     2. result frames: [(index, (Ok value | Error (printed_exn, bt)))].

   The magic resynchronizes the stream: module initializers of the
   host executable run before [maybe_run_worker] and may print to
   stdout — which, in a worker, IS the result pipe (qcheck-alcotest's
   seed banner does exactly this). The parent discards bytes until the
   magic, after which the worker has redirected fd 1 away and owns the
   stream exclusively.

   Crash detection needs no SIGCHLD handler: a dead worker's result
   pipe reads EOF (or the task pipe writes EPIPE), which is both
   prompt and race-free under [select]; the corpse is reaped with
   [waitpid] afterwards. *)

exception Spawn_failure of string
exception Remote_failure of { message : string }
exception Worker_lost of { attempts : int; reason : string }

let worker_flag = "--engine-worker"
let now = Unix.gettimeofday

(* --- framed IO over raw fds ---------------------------------------------- *)

(* Raw [Unix.read]/[Unix.write] loops, not channels: [select] must see
   exactly what has been consumed, and channel buffering would hide
   already-read bytes from it. *)

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let write_all fd buf pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = restart_on_intr (fun () -> Unix.write fd buf !pos !len) in
    pos := !pos + n;
    len := !len - n
  done

let read_all fd buf pos len =
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let n = restart_on_intr (fun () -> Unix.read fd buf !pos !len) in
    if n = 0 then raise End_of_file;
    pos := !pos + n;
    len := !len - n
  done

let write_frame fd payload =
  let len = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  write_all fd hdr 0 4;
  write_all fd (Bytes.unsafe_of_string payload) 0 len

let read_frame fd =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 then raise End_of_file;
  let buf = Bytes.create len in
  read_all fd buf 0 len;
  Bytes.unsafe_to_string buf

(* Stream-resync marker the worker emits before its first frame (see
   the header comment). '\001' appears only at position 0, so the
   parent's rolling scan needs no failure table: on mismatch it
   restarts the match at 1 iff the offending byte is '\001'. *)
let magic = "\001\253tiered-engine-worker\253\002"

(* --- worker side ---------------------------------------------------------- *)

type worker_config = { disk_dir : string option; disk_max : int option }

(* A worker-side task outcome. The value travels as [Obj.t] (the
   parent knows the real type); exceptions travel as printed strings
   because exception identity does not survive unmarshalling. *)
type wire_result = (Obj.t, string * string) result

let serve_worker () =
  Printexc.record_backtrace true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Keep the result pipe private: stray [print_string]s from task
     code go to stderr instead of corrupting the protocol stream. *)
  (* lint: allow D001 — claiming the result pipe: dup the real stdout away before task code can touch it. *)
  let out_fd = Unix.dup Unix.stdout in
  (* lint: allow D001 — point further stdout writes at stderr so stray prints cannot corrupt the protocol. *)
  Unix.dup2 Unix.stderr Unix.stdout;
  let in_fd = Unix.stdin in
  let config : worker_config = Marshal.from_string (read_frame in_fd) 0 in
  (match config.disk_dir with
  | Some dir -> Cache.enable_disk ?max_bytes:config.disk_max ~dir ()
  | None -> ());
  write_all out_fd (Bytes.unsafe_of_string magic) 0 (String.length magic);
  write_frame out_fd "ready";
  let rec loop () =
    match read_frame in_fd with
    | exception End_of_file -> exit 0
    | frame ->
        let (seq, thunk) : int * (unit -> Obj.t) =
          Marshal.from_string frame 0
        in
        let outcome : wire_result =
          match thunk () with
          | v -> Ok v
          | exception exn ->
              Error (Printexc.to_string exn, Printexc.get_backtrace ())
        in
        write_frame out_fd (Marshal.to_string (seq, outcome) [ Marshal.Closures ]);
        loop ()
  in
  loop ()

let maybe_run_worker () =
  if Array.exists (String.equal worker_flag) Sys.argv then
    match serve_worker () with
    | _ -> exit 0
    | exception End_of_file -> exit 0
    | exception exn ->
        Printf.eprintf "engine worker: fatal: %s\n%!" (Printexc.to_string exn);
        exit 125

(* --- parent side ---------------------------------------------------------- *)

type worker = {
  pid : int;
  to_w : Unix.file_descr;  (* parent writes task frames *)
  from_w : Unix.file_descr;  (* parent reads result frames *)
  mutable job : (int * int * float) option;
      (* in-flight (task index, prior attempts, dispatch time) *)
}

type t = {
  n_workers : int;
  max_retries : int;
  timeout_s : float option;
  slots : worker option array;
  busy : float array;
  mutable restarts : int;
  mutable shut : bool;
}

let current_config () =
  { disk_dir = Cache.disk_dir (); disk_max = Cache.disk_max_bytes () }

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
let kill_noerr pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_noerr pid =
  try ignore (restart_on_intr (fun () -> Unix.waitpid [] pid))
  with Unix.Unix_error _ -> ()

let spawn_worker () =
  let exe = Sys.executable_name in
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  Unix.set_close_on_exec task_w;
  Unix.set_close_on_exec res_r;
  match Unix.create_process exe [| exe; worker_flag |] task_r res_w Unix.stderr with
  | exception exn ->
      List.iter close_noerr [ task_r; task_w; res_r; res_w ];
      raise (Spawn_failure (Printexc.to_string exn))
  | pid -> (
      close_noerr task_r;
      close_noerr res_w;
      try
        write_frame task_w (Marshal.to_string (current_config ()) []);
        (* The handshake doubles as the exec-failure detector: a child
           that could not exec (or crashed in init) reads as EOF.
           Before the handshake frame the child's stdout may carry
           arbitrary init-time noise (e.g. a test harness's seed
           banner), so scan byte-by-byte until the magic marker. *)
        let deadline = now () +. 10.0 in
        let wait_readable () =
          let remaining = deadline -. now () in
          if remaining <= 0. then failwith "worker handshake timed out";
          match restart_on_intr (fun () -> Unix.select [ res_r ] [] [] remaining) with
          | [], _, _ -> failwith "worker handshake timed out"
          | _ -> ()
        in
        let byte = Bytes.create 1 in
        let mlen = String.length magic in
        let rec scan matched =
          if matched < mlen then begin
            wait_readable ();
            if restart_on_intr (fun () -> Unix.read res_r byte 0 1) = 0 then
              raise End_of_file;
            let c = Bytes.get byte 0 in
            if Char.equal c magic.[matched] then scan (matched + 1)
            else scan (if Char.equal c magic.[0] then 1 else 0)
          end
        in
        scan 0;
        wait_readable ();
        let r = read_frame res_r in
        if not (String.equal r "ready") then failwith "bad worker handshake";
        { pid; to_w = task_w; from_w = res_r; job = None }
      with exn ->
        kill_noerr pid;
        reap_noerr pid;
        close_noerr task_w;
        close_noerr res_r;
        raise (Spawn_failure (Printexc.to_string exn)))

let create ?workers ?(retries = 2) ?timeout_s () =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* A dead worker must surface as EPIPE on the task pipe, not kill
     the parent. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let slots = Array.make workers None in
  (* The first worker must come up, otherwise the backend is
     unavailable and the caller degrades; later failures only shrink
     the pool. *)
  slots.(0) <- Some (spawn_worker ());
  for i = 1 to workers - 1 do
    match spawn_worker () with
    | w -> slots.(i) <- Some w
    | exception Spawn_failure _ -> ()
  done;
  {
    n_workers = workers;
    max_retries = max 0 retries;
    timeout_s;
    slots;
    busy = Array.make workers 0.;
    restarts = 0;
    shut = false;
  }

let workers t = t.n_workers
let restarts t = t.restarts
let busy_times t = Array.copy t.busy

let dispose w =
  close_noerr w.to_w;
  close_noerr w.from_w;
  reap_noerr w.pid

let map (type a b) t (f : a -> b) (tasks : a array) :
    (b, exn * string) result array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results : (b, exn * string) result option array = Array.make n None in
    let pending = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add (i, 0) pending
    done;
    let completed = ref 0 in
    let crashes = ref 0 in
    let record i r =
      if results.(i) = None then begin
        results.(i) <- Some r;
        incr completed
      end
    in
    (* Last resort when every worker is gone and none respawns: run on
       the calling process with identical semantics. *)
    let run_local i =
      record i
        (match f tasks.(i) with
        | v -> Ok v
        | exception exn -> Error (exn, Printexc.get_backtrace ()))
    in
    let send_task w (i, att) =
      let x = tasks.(i) in
      let thunk () = Obj.repr (f x) in
      write_frame w.to_w (Marshal.to_string (i, thunk) [ Marshal.Closures ]);
      w.job <- Some (i, att, now ())
    in
    (* A worker died (EOF / EPIPE / timeout): reap it, requeue its
       in-flight task (bounded by max_retries), back off briefly and
       spawn a replacement into the same slot. *)
    let handle_crash si w reason =
      incr crashes;
      t.restarts <- t.restarts + 1;
      kill_noerr w.pid;
      dispose w;
      t.slots.(si) <- None;
      (match w.job with
      | Some (i, att, started) ->
          t.busy.(si) <- t.busy.(si) +. (now () -. started);
          if att >= t.max_retries then
            record i (Error (Worker_lost { attempts = att + 1; reason }, ""))
          else Queue.add (i, att + 1) pending
      | None -> ());
      Unix.sleepf
        (Float.min 0.5 (0.02 *. (2. ** float_of_int (Stdlib.min !crashes 5))));
      match spawn_worker () with
      | w' -> t.slots.(si) <- Some w'
      | exception Spawn_failure _ -> ()
    in
    let receive si w =
      match read_frame w.from_w with
      | exception End_of_file -> handle_crash si w "worker exited (EOF)"
      | exception Unix.Unix_error (e, _, _) ->
          handle_crash si w (Unix.error_message e)
      | frame -> (
          let (seq, outcome) : int * wire_result =
            Marshal.from_string frame 0
          in
          match w.job with
          | Some (i, _, started) when i = seq ->
              t.busy.(si) <- t.busy.(si) +. (now () -. started);
              w.job <- None;
              record seq
                (match outcome with
                | Ok v -> Ok (Obj.obj v : b)
                | Error (msg, bt) -> Error (Remote_failure { message = msg }, bt))
          | _ ->
              (* A frame for a task we no longer track: the protocol is
                 out of sync, drop the worker. *)
              handle_crash si w "protocol mismatch")
    in
    while !completed < n do
      (* 1. Fill every idle live worker from the pending queue. *)
      Array.iteri
        (fun si slot ->
          match slot with
          | Some w when w.job = None && not (Queue.is_empty pending) -> (
              let (i, att) = Queue.take pending in
              match send_task w (i, att) with
              | () -> ()
              | exception (Unix.Unix_error _ | Sys_error _) ->
                  (* The worker died while idle; the task never reached
                     it, so requeue without charging an attempt. *)
                  Queue.add (i, att) pending;
                  handle_crash si w "task dispatch failed")
          | _ -> ())
        t.slots;
      let in_flight =
        Array.to_seq t.slots
        |> Seq.filter_map (function
             | Some w when w.job <> None -> Some w
             | _ -> None)
        |> List.of_seq
      in
      if in_flight = [] then begin
        (* Nothing is running. If workers survive, the next loop
           iteration dispatches; if none are left, drain locally. *)
        if Array.for_all (fun s -> s = None) t.slots then
          while not (Queue.is_empty pending) do
            let (i, _) = Queue.take pending in
            run_local i
          done
      end
      else begin
        let tmo =
          match t.timeout_s with
          | None -> -1.
          | Some ts ->
              let tnow = now () in
              List.fold_left
                (fun acc w ->
                  match w.job with
                  | Some (_, _, started) ->
                      Float.min acc (Float.max 0.001 (started +. ts -. tnow))
                  | None -> acc)
                ts in_flight
        in
        let fds = List.map (fun w -> w.from_w) in_flight in
        match restart_on_intr (fun () -> Unix.select fds [] [] tmo) with
        | [], _, _ -> (
            (* Only reachable with a timeout configured: kill every
               worker whose task exceeded it. *)
            match t.timeout_s with
            | None -> ()
            | Some ts ->
                let tnow = now () in
                Array.iteri
                  (fun si slot ->
                    match slot with
                    | Some w -> (
                        match w.job with
                        | Some (_, _, started) when tnow -. started >= ts ->
                            handle_crash si w
                              (Printf.sprintf "task exceeded %.3fs timeout" ts)
                        | _ -> ())
                    | None -> ())
                  t.slots)
        | readable, _, _ ->
            Array.iteri
              (fun si slot ->
                match slot with
                | Some w when List.memq w.from_w readable -> receive si w
                | _ -> ())
              t.slots
      end
    done;
    Array.map (function Some r -> r | None -> assert false) results
  end

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Array.iteri
      (fun si slot ->
        match slot with
        | None -> ()
        | Some w ->
            t.slots.(si) <- None;
            (* EOF on the task pipe makes the worker exit cleanly... *)
            close_noerr w.to_w;
            let rec reap tries =
              match Unix.waitpid [ Unix.WNOHANG ] w.pid with
              | 0, _ ->
                  if tries <= 0 then begin
                    (* ... and stragglers are killed. *)
                    kill_noerr w.pid;
                    reap_noerr w.pid
                  end
                  else begin
                    Unix.sleepf 0.01;
                    reap (tries - 1)
                  end
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap tries
              | exception Unix.Unix_error _ -> ()
            in
            reap 100;
            close_noerr w.from_w)
      t.slots
  end
