(* Subprocess worker backend. See proc.mli for the contract.

   This module is now only the pipe transport: fork/exec of the
   current executable, stdin/stdout plumbing, and child reaping. The
   frame protocol, handshake/resync, crash recovery, bounded retries,
   per-task timeouts and work stealing all live in {!Transport}, which
   this backend shares with {!Remote}. *)

exception Spawn_failure = Transport.Spawn_failure
exception Remote_failure = Transport.Remote_failure
exception Worker_lost = Transport.Worker_lost

let worker_flag = "--engine-worker"

(* --- worker side ---------------------------------------------------------- *)

let serve_worker () =
  Printexc.record_backtrace true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Keep the result pipe private: stray [print_string]s from task
     code go to stderr instead of corrupting the protocol stream. *)
  (* lint: allow D001 — claiming the result pipe: dup the real stdout away before task code can touch it. *)
  let out_fd = Unix.dup Unix.stdout in
  (* lint: allow D001 — point further stdout writes at stderr so stray prints cannot corrupt the protocol. *)
  Unix.dup2 Unix.stderr Unix.stdout;
  Transport.serve_worker ~in_fd:Unix.stdin ~out_fd ()

let maybe_run_worker () =
  if Array.exists (String.equal worker_flag) Sys.argv then
    match serve_worker () with
    | () -> exit 0
    | exception End_of_file -> exit 0
    | exception exn ->
        Printf.eprintf "engine worker: fatal: %s\n%!" (Printexc.to_string exn);
        exit 125

(* --- parent side ---------------------------------------------------------- *)

type t = { sched : Transport.sched }

let spawn_endpoint () =
  let exe = Sys.executable_name in
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  Unix.set_close_on_exec task_w;
  Unix.set_close_on_exec res_r;
  match
    Unix.create_process exe [| exe; worker_flag |] task_r res_w Unix.stderr
  with
  | exception exn ->
      List.iter Transport.close_noerr [ task_r; task_w; res_r; res_w ];
      raise (Spawn_failure (Printexc.to_string exn))
  | pid -> (
      Transport.close_noerr task_r;
      Transport.close_noerr res_w;
      try
        (* Pipe fds are private by construction, so the empty token is
           the whole preamble here; TCP endpoints carry a real secret. *)
        Transport.write_auth task_w ~token:"";
        Transport.write_config task_w;
        Transport.handshake ~deadline_s:10.0 res_r;
        {
          Transport.ep_send = task_w;
          ep_recv = res_r;
          ep_kill = (fun () -> Transport.kill_noerr pid);
          ep_close =
            (fun () ->
              (* EOF on the task pipe makes the worker exit cleanly
                 (its read loop returns), so close that first, give it
                 a moment, and SIGKILL stragglers. *)
              Transport.close_noerr task_w;
              Transport.reap_with_grace pid;
              Transport.close_noerr res_r);
        }
      with exn ->
        Transport.kill_noerr pid;
        Transport.reap_noerr pid;
        Transport.close_noerr task_w;
        Transport.close_noerr res_r;
        raise (Spawn_failure (Printexc.to_string exn)))

let create ?workers ?(retries = 2) ?timeout_s () =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* A dead worker must surface as EPIPE on the task pipe, not kill
     the parent. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let endpoints = Array.make workers None in
  (* The first worker must come up, otherwise the backend is
     unavailable and the caller degrades; later failures only shrink
     the pool. *)
  endpoints.(0) <- Some (spawn_endpoint ());
  for i = 1 to workers - 1 do
    match spawn_endpoint () with
    | ep -> endpoints.(i) <- Some ep
    | exception Spawn_failure _ -> ()
  done;
  let respawn _slot =
    match spawn_endpoint () with
    | ep -> Some ep
    | exception Spawn_failure _ -> None
  in
  { sched = Transport.make_sched ~retries ?timeout_s ~respawn endpoints }

let workers t = Transport.workers t.sched
let restarts t = Transport.restarts t.sched
let busy_times t = Transport.busy_times t.sched
let map t f tasks = Transport.map t.sched f tasks
let shutdown t = Transport.shutdown t.sched
