(** Keyed artifact cache: memoizes expensive intermediate artifacts
    (calibrated workloads, fitted markets, per-network flow arrays)
    under a structural key.

    A key is any marshal-able OCaml value — tuples of network name,
    alpha, p0, cost model, theta, seed, … — digested to a fixed-size
    identifier, so call sites never hand-build string keys.

    Two tiers:
    - an in-memory tier (domain-safe hash table) that returns the
      {e physically} same artifact on repeat lookups, and
    - an optional on-disk tier ([Marshal] under a key digest inside a
      cache directory, [_cache/] by default), shared across processes
      and invalidated by a per-cache schema version stamp: a payload
      written under a different schema is ignored and recomputed.

    The disk tier is off by default and switched on globally with
    {!enable_disk} (the CLI's [--cache] flag). Corrupt or unreadable
    payloads are treated as misses, never as errors.

    The disk tier can additionally be bounded by a byte budget
    ([~max_bytes], the CLI's [--cache-max-bytes]): payloads carry a
    strictly monotonic recency stamp (an integer in a [.stamp] sidecar
    backed by a per-directory counter file — {e not} mtime, which
    OCaml truncates to whole seconds and therefore cannot tell a
    same-second hit from the original write), refreshed on every write
    and every disk hit. When the tier overflows, the
    least-recently-used payloads are evicted first — deterministically
    (stamp, then file name) and best-effort (losing a race with a
    reader only costs a recomputation; a payload that cannot be
    removed is skipped without being counted as freed, so the tier
    still converges to the budget). *)

type 'v t

type stats = {
  hits : int;  (** in-memory tier hits *)
  disk_hits : int;  (** disk tier hits (memory tier missed) *)
  misses : int;  (** both tiers missed: the artifact was computed *)
}

type disk_stats = {
  dir : string;
  bytes : int;  (** total payload bytes currently on disk *)
  max_bytes : int option;  (** configured budget, if any *)
  evictions : int;  (** payloads evicted since {!enable_disk} *)
}

val create : ?schema:string -> name:string -> unit -> 'v t
(** A new cache holding artifacts of one type. [name] namespaces disk
    payloads and labels the cache in {!all_stats}; [schema] (default
    ["1"]) stamps disk payloads — bump it whenever the artifact's
    representation changes. Caches register themselves for
    {!all_stats} / {!clear_all}. *)

val find_or_add : 'v t -> key:'k -> (unit -> 'v) -> 'v
(** Memory tier, then disk tier (when enabled), then compute — and
    populate the tiers that missed. A missing key is claimed before
    computing: concurrent lookups of the same key block on the single
    in-flight computation instead of duplicating it, so every artifact
    is computed once and repeat lookups stay physically equal.
    Independent keys never wait on each other. If the computation
    raises, the claim is released (waiters retry) and the exception
    propagates. *)

val invalidate : 'v t -> key:'k -> unit
(** Drop one key from both tiers; the next lookup recomputes. *)

val clear : 'v t -> unit
(** Drop the whole in-memory tier (disk payloads are kept). *)

val stats : 'v t -> stats

val key_digest : 'k -> string
(** The structural digest (hex) used to identify keys. Exposed for
    logging/tests. *)

(** {2 Global registry} *)

val enable_disk : ?max_bytes:int -> dir:string -> unit -> unit
(** Enable the on-disk tier for every cache, storing payloads under
    [dir] (created on demand). When [max_bytes] is given the tier
    never holds more than that many payload bytes: every write that
    overflows the budget evicts least-recently-used payloads (and the
    eviction counter resets). *)

val disable_disk : unit -> unit

val disk_dir : unit -> string option
val disk_max_bytes : unit -> int option

val disk_usage_bytes : unit -> int
(** Total bytes of payload files currently in the disk tier ([0] when
    the tier is disabled). *)

val disk_stats : unit -> disk_stats option
(** Size accounting and eviction counters for the disk tier; [None]
    when disabled. *)

val all_stats : unit -> (string * stats) list
(** Per-cache counters, in cache-creation order. *)

val clear_all : unit -> unit
(** {!clear} every registered cache and reset its counters (used to
    re-run a grid cold, e.g. for serial-vs-parallel benchmarks). *)

(** {2 Test hooks} *)

module Private : sig
  val set_remove_hook : (string -> unit) option -> unit
  (** Replace [Sys.remove] for payload {e eviction} only. The
      regression suite uses this to simulate an unremovable payload
      (permission error, concurrent-reader race) portably — filesystem
      permissions are useless for this when the tests run as root.
      Pass [None] to restore the default. Not for production use. *)
end
