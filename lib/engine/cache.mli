(** Keyed artifact cache: memoizes expensive intermediate artifacts
    (calibrated workloads, fitted markets, per-network flow arrays)
    under a structural key.

    A key is any marshal-able OCaml value — tuples of network name,
    alpha, p0, cost model, theta, seed, … — digested to a fixed-size
    identifier, so call sites never hand-build string keys.

    Three tiers:
    - an in-memory tier (domain-safe hash table) that returns the
      {e physically} same artifact on repeat lookups;
    - an optional on-disk tier — a {e content-addressed store} (see
      {!Cas}): each payload lives in an immutable object file named by
      the digest of its own bytes ([_cas/cas-<digest>.bin], written
      atomically via tmp + rename), and the key digest points at it
      through a tiny reference file, so identical artifacts written
      under any number of keys, by any number of processes or hosts,
      occupy one object. Payloads carry a per-cache schema version
      stamp: a payload written under a different schema is ignored and
      recomputed. Objects are digest-verified on read and corrupt ones
      self-repair (removed, reported as a miss);
    - an optional {e remote} tier: inside a fleet worker,
      {!Transport.serve_worker} installs a {!remote_tier} hook that
      forwards misses to the parent process over the worker's task
      channel and publishes fresh artifacts back, so a cell computed
      on one host is never recomputed on another.

    The disk tier is off by default and switched on globally with
    {!enable_disk} (the CLI's [--cache] flag). Corrupt or unreadable
    payloads are treated as misses, never as errors.

    The disk tier can additionally be bounded by a byte budget
    ([~max_bytes], the CLI's [--cache-max-bytes]): objects carry a
    strictly monotonic recency stamp (an integer in a [.stamp] sidecar
    backed by a per-directory counter file — {e not} mtime, which
    OCaml truncates to whole seconds and therefore cannot tell a
    same-second hit from the original write), refreshed on every write
    and every disk hit. When the tier overflows, the
    least-recently-used objects are evicted first — deterministically
    (stamp, then file name) and best-effort (losing a race with a
    reader only costs a recomputation; an object that cannot be
    removed is skipped without being counted as freed, so the tier
    still converges to the budget). References left dangling by an
    eviction read as misses and are pruned opportunistically. *)

type 'v t

type stats = {
  hits : int;  (** in-memory tier hits *)
  disk_hits : int;  (** disk tier hits (memory tier missed) *)
  remote_hits : int;
      (** artifacts fetched from the parent over the worker channel *)
  misses : int;  (** every tier missed: the artifact was computed *)
}

type disk_stats = {
  dir : string;
  bytes : int;  (** total object bytes currently on disk *)
  max_bytes : int option;  (** configured budget, if any *)
  evictions : int;  (** objects evicted since {!enable_disk} *)
}

type remote_tier = {
  fetch : cache:string -> key_digest:string -> string option;
      (** raw payload bytes for a key, or [None] *)
  publish : cache:string -> key_digest:string -> payload:string -> unit;
      (** offer a freshly computed payload to the far side *)
}

val create : ?schema:string -> name:string -> unit -> 'v t
(** A new cache holding artifacts of one type. [name] namespaces disk
    references and labels the cache in {!all_stats}; [schema] (default
    ["1"]) stamps payloads — bump it whenever the artifact's
    representation changes. Caches register themselves for
    {!all_stats} / {!clear_all}. *)

val find_or_add : 'v t -> key:'k -> (unit -> 'v) -> 'v
(** Memory tier, then disk tier (when enabled), then remote tier (when
    hooked), then compute — and populate the tiers that missed. A
    missing key is claimed before computing: concurrent lookups of the
    same key block on the single in-flight computation instead of
    duplicating it, so every artifact is computed once and repeat
    lookups stay physically equal. Independent keys never wait on each
    other. If the computation raises, the claim is released (waiters
    retry) and the exception propagates. *)

val invalidate : 'v t -> key:'k -> unit
(** Drop one key: the in-memory entry and the disk {e reference} (the
    content object may be shared and is left to the LRU budget). The
    next lookup recomputes. *)

val clear : 'v t -> unit
(** Drop the whole in-memory tier (disk payloads are kept). *)

val stats : 'v t -> stats

val key_digest : 'k -> string
(** The structural digest (hex) used to identify keys. Exposed for
    logging/tests. *)

(** {2 Global registry} *)

val enable_disk : ?max_bytes:int -> dir:string -> unit -> unit
(** Enable the on-disk tier for every cache, storing objects under
    [dir] (created on demand). When [max_bytes] is given the tier
    never holds more than that many object bytes: every write that
    overflows the budget evicts least-recently-used objects (and the
    eviction counter resets). *)

val disable_disk : unit -> unit
val disk_dir : unit -> string option
val disk_max_bytes : unit -> int option

val disk_usage_bytes : unit -> int
(** Total bytes of object files currently in the disk tier ([0] when
    the tier is disabled). *)

val disk_stats : unit -> disk_stats option
(** Size accounting and eviction counters for the disk tier; [None]
    when disabled. *)

val all_stats : unit -> (string * stats) list
(** Per-cache counters, in cache-creation order. *)

val clear_all : unit -> unit
(** {!clear} every registered cache and reset its counters (used to
    re-run a grid cold, e.g. for serial-vs-parallel benchmarks). *)

(** {2 Remote tier} *)

val set_remote_tier : remote_tier option -> unit
(** Install (or remove) the process-wide remote tier hook. Installed
    by {!Transport.serve_worker} for the duration of a worker
    connection; [None] everywhere else. *)

(** {2 Raw payload access}

    The parent side of the worker CAS channel ({!Transport.Store})
    answers fetches with payload bytes without knowing artifact types. *)

val raw_payload : cache:string -> key_digest:string -> string option
(** The payload bytes a key points at, digest-verified; [None] when
    the disk tier is off or the key is absent. Refreshes the object's
    LRU stamp. *)

val store_raw_payload : cache:string -> key_digest:string -> payload:string -> unit
(** Store payload bytes under their content digest and point the key
    at them. No-op when the disk tier is off. *)

(** {2 Manifest support}

    Direct disk-tier probes used by resumable sweep manifests: decide
    whether a cell's artifact is already in the CAS without running
    the compute path (no counters are touched). *)

val disk_get : 'v t -> key:'k -> ('v * string) option
(** The artifact and its content digest, when the disk tier holds a
    schema-valid payload for [key]. *)

val disk_put : 'v t -> key:'k -> 'v -> string option
(** Write an artifact for [key]; returns its content digest ([None]
    when the disk tier is off or the write failed). *)

(** {2 Test hooks} *)

module Private : sig
  val set_remove_hook : (string -> unit) option -> unit
  (** Replace [Sys.remove] for object {e eviction} only. The
      regression suite uses this to simulate an unremovable object
      (permission error, concurrent-reader race) portably — filesystem
      permissions are useless for this when the tests run as root.
      Pass [None] to restore the default. Not for production use. *)

  val payload_digest : 'v t -> 'v -> string
  (** The content digest the disk tier would store this artifact
      under (schema-stamped payload bytes hashed). For tests. *)

  val payload_of_value : 'v t -> 'v -> string
  (** The exact schema-stamped payload bytes the disk tier would
      store — what a pre-seeded {!Transport.Store} must hold for a
      remote worker's fetch of this artifact to succeed. For tests. *)
end
